// Package extract turns raw extractor output into curated message fields:
// a multi-format timestamp parser standing in for Python's dateparser
// (§3.2 "Timestamp"), plus assembly of text/sender/URL fields from an
// extraction. Messaging apps show times in wildly different formats — some
// without a date at all — and the parser reports exactly what it could
// recover so the metadata analysis (§3.3.2) can exclude date-less stamps.
package extract

import (
	"errors"
	"strings"
	"time"
)

// ParsedTime is the outcome of parsing a screenshot timestamp.
type ParsedTime struct {
	Time    time.Time
	HasDate bool // false for clock-only stamps like "14:32"
}

// ErrUnparsable is returned when no known format matches.
var ErrUnparsable = errors.New("extract: unparsable timestamp")

// dateFormats are tried in order; first hit wins. The list covers the
// renderer's app formats plus common international spellings.
var dateFormats = []string{
	"Mon, 2 Jan 2006 15:04",
	"Mon, 2 Jan 2006 3:04 PM",
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02T15:04:05Z07:00",
	"Jan 2, 2006 3:04 PM",
	"Jan 2, 2006 15:04",
	"2 Jan 2006 15:04",
	"2 January 2006 15:04",
	"02/01/2006 15:04", // EU day-first
	"01/02/2006 3:04 PM",
	"02.01.2006 15:04",
	"Monday, January 2, 2006 3:04 PM",
	"Mon 2 Jan 15:04",
	"2 Jan, 15:04",
	"Jan 2, 3:04 PM",
}

// timeOnlyFormats carry no date.
var timeOnlyFormats = []string{
	"15:04:05",
	"15:04",
	"3:04 PM",
	"3:04PM",
	"3.04 PM",
}

// relativeWords map day words to offsets from the reference date.
var relativeWords = map[string]int{
	"today":     0,
	"yesterday": -1,
}

// ParseTimestamp parses a screenshot time string. ref anchors formats that
// omit the year (the renderer's "Mon 2 Jan 15:04") and relative words
// ("Yesterday 14:32"); pass the report time. Clock-only stamps return
// HasDate=false with the clock applied to ref's date.
func ParseTimestamp(s string, ref time.Time) (ParsedTime, error) {
	s = strings.TrimSpace(collapseSpaces(s))
	if s == "" {
		return ParsedTime{}, ErrUnparsable
	}
	lower := strings.ToLower(s)
	for word, offset := range relativeWords {
		if strings.HasPrefix(lower, word) {
			rest := strings.TrimSpace(s[len(word):])
			rest = strings.TrimPrefix(rest, ",")
			rest = strings.TrimSpace(rest)
			pt, err := parseClock(rest, ref.AddDate(0, 0, offset))
			if err != nil {
				return ParsedTime{}, err
			}
			pt.HasDate = true
			return pt, nil
		}
	}
	for _, layout := range dateFormats {
		t, err := time.Parse(layout, s)
		if err != nil {
			continue
		}
		if t.Year() == 0 {
			// Year-less layout: adopt the reference year, stepping back a
			// year if that would land in the future relative to ref.
			t = t.AddDate(ref.Year(), 0, 0)
			if t.After(ref.AddDate(0, 0, 1)) {
				t = t.AddDate(-1, 0, 0)
			}
		}
		return ParsedTime{Time: t, HasDate: true}, nil
	}
	return parseClock(s, ref)
}

func parseClock(s string, day time.Time) (ParsedTime, error) {
	for _, layout := range timeOnlyFormats {
		t, err := time.Parse(layout, s)
		if err != nil {
			continue
		}
		combined := time.Date(day.Year(), day.Month(), day.Day(),
			t.Hour(), t.Minute(), t.Second(), 0, day.Location())
		return ParsedTime{Time: combined, HasDate: false}, nil
	}
	return ParsedTime{}, ErrUnparsable
}

func collapseSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
