package smishkit

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestStudyEndToEnd(t *testing.T) {
	study, err := NewStudy(Options{Seed: 7, Messages: 600})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("empty dataset")
	}
	var buf bytes.Buffer
	WriteReport(&buf, ds)
	if !strings.Contains(buf.String(), "Table 10: scam categories") {
		t.Error("report missing scam categories")
	}
}

func TestGenerateWorldDeterministic(t *testing.T) {
	a := GenerateWorld(WorldConfig{Seed: 3, Messages: 100})
	b := GenerateWorld(WorldConfig{Seed: 3, Messages: 100})
	if len(a.Messages) != len(b.Messages) || a.Messages[0].Text != b.Messages[0].Text {
		t.Error("world generation not deterministic")
	}
}

func TestExtractorLadderExported(t *testing.T) {
	for _, e := range []struct {
		name string
		ext  interface{ Name() string }
	}{
		{"naive-ocr", ExtractorNaiveOCR},
		{"vision-ocr", ExtractorVisionOCR},
		{"structured-vision", ExtractorStructuredVision},
	} {
		if e.ext.Name() != e.name {
			t.Errorf("extractor name = %q, want %q", e.ext.Name(), e.name)
		}
	}
}

func TestMitigationFacade(t *testing.T) {
	w := GenerateWorld(WorldConfig{Seed: 81, Messages: 1500})
	docs := TrainingDocs(w, 82, 300)
	model, err := TrainDetector(docs, true)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFilter(FilterConfig{Classifier: model, BlockBadSenders: true})
	v, err := f.Check(context.Background(), "+447700900123",
		"HSBC alert: your account has been suspended. Verify at https://hsbc-verify.top/kyc within 24 hours")
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != "block" {
		t.Errorf("smish verdict = %+v", v)
	}
	v, _ = f.Check(context.Background(), "+447700900123", "running late, see you at 7")
	if v.Action != "allow" {
		t.Errorf("ham verdict = %+v", v)
	}
}

func TestAnalysisFacade(t *testing.T) {
	study, err := NewStudy(Options{Seed: 85, Messages: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	campaigns := ClusterCampaigns(ds, DefaultClusterOptions())
	if len(campaigns) == 0 || campaigns[0].Size() == 0 {
		t.Fatal("no campaigns clustered")
	}

	var buf bytes.Buffer
	n, err := WriteRelease(&buf, study.World)
	if err != nil || n != 500 {
		t.Fatalf("release write: n=%d err=%v", n, err)
	}
	records, err := ReadRelease(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRelease(records); err != nil {
		t.Fatal(err)
	}
	if len(GenerateHam(1, 10)) != 10 {
		t.Error("ham generation broken")
	}
}
