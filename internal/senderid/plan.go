package senderid

import "strings"

// NumberType is the HLR-style classification of a phone number (Table 3).
type NumberType string

// Number types as reported by HLR lookups.
const (
	TypeMobile           NumberType = "mobile"
	TypeMobileOrLandline NumberType = "mobile_or_landline"
	TypeVOIP             NumberType = "voip"
	TypeTollFree         NumberType = "toll_free"
	TypePager            NumberType = "pager"
	TypeUAN              NumberType = "universal_access"
	TypePersonal         NumberType = "personal_number"
	TypeLandline         NumberType = "landline"
	TypeVoicemail        NumberType = "voicemail_only"
	TypePremium          NumberType = "premium_rate"
	TypeBadFormat        NumberType = "bad_format"
	TypeOther            NumberType = "other"
)

// Valid reports whether t denotes a number that can legitimately originate
// SMS traffic. Landlines, voicemail-only and malformed sender IDs cannot and
// are the paper's "likely spoofed" bucket (§4.1).
func (t NumberType) Valid() bool {
	switch t {
	case TypeBadFormat, TypeLandline, TypeVoicemail:
		return false
	}
	return true
}

// ClassifyNumber applies per-country numbering-plan rules to a parsed
// number. This is the offline fallback the HLR service uses for numbers
// missing from its registry; real HLRs have authoritative data.
func ClassifyNumber(n Number) NumberType {
	if n.Country == "" || n.NSN == "" {
		return TypeBadFormat
	}
	lo, hi := nsnRange(n.Country)
	if len(n.NSN) < lo || len(n.NSN) > hi {
		return TypeBadFormat
	}
	switch n.Country {
	case "USA":
		return classifyNANP(n.NSN)
	case "GBR":
		return classifyGBR(n.NSN)
	case "IND":
		return classifyIND(n.NSN)
	case "NLD":
		return classifyNLD(n.NSN)
	case "ESP":
		return classifyESP(n.NSN)
	case "FRA":
		return classifyFRA(n.NSN)
	case "AUS":
		return classifyAUS(n.NSN)
	case "DEU":
		return classifyDEU(n.NSN)
	case "BEL":
		return classifyBEL(n.NSN)
	case "IDN":
		return classifyIDN(n.NSN)
	default:
		return classifyGenericPlan(n.NSN)
	}
}

// classifyNANP: the North American plan does not segregate mobile ranges, so
// every geographic number is "mobile or landline" — the reason Table 3 has
// that category. 800/888/877/866/855/844/833 are toll-free; 900 premium.
func classifyNANP(nsn string) NumberType {
	if len(nsn) != 10 {
		return TypeBadFormat
	}
	npa := nsn[:3]
	switch npa {
	case "800", "888", "877", "866", "855", "844", "833", "822":
		return TypeTollFree
	case "900":
		return TypePremium
	case "500", "521", "522", "533", "544", "566", "577", "588":
		return TypePersonal
	}
	if npa[0] == '0' || npa[0] == '1' {
		return TypeBadFormat
	}
	return TypeMobileOrLandline
}

func classifyGBR(nsn string) NumberType {
	switch {
	case strings.HasPrefix(nsn, "76"):
		// 7640-76x: radiopaging (except 7624, Isle of Man mobile).
		if strings.HasPrefix(nsn, "7624") {
			return TypeMobile
		}
		return TypePager
	case strings.HasPrefix(nsn, "70"):
		return TypePersonal
	case strings.HasPrefix(nsn, "7"):
		return TypeMobile
	case strings.HasPrefix(nsn, "1"), strings.HasPrefix(nsn, "2"):
		return TypeLandline
	case strings.HasPrefix(nsn, "80"):
		return TypeTollFree
	case strings.HasPrefix(nsn, "84"), strings.HasPrefix(nsn, "87"):
		return TypeUAN
	case strings.HasPrefix(nsn, "9"):
		return TypePremium
	case strings.HasPrefix(nsn, "56"):
		return TypeVOIP
	default:
		return TypeOther
	}
}

func classifyIND(nsn string) NumberType {
	if len(nsn) != 10 {
		return TypeBadFormat
	}
	switch nsn[0] {
	case '9', '8', '7', '6':
		return TypeMobile
	case '1', '2', '3', '4', '5':
		return TypeLandline
	default:
		return TypeOther
	}
}

func classifyNLD(nsn string) NumberType {
	switch {
	case strings.HasPrefix(nsn, "6"):
		return TypeMobile
	case strings.HasPrefix(nsn, "800"):
		return TypeTollFree
	case strings.HasPrefix(nsn, "90"):
		return TypePremium
	case strings.HasPrefix(nsn, "85"), strings.HasPrefix(nsn, "88"):
		return TypeVOIP
	case strings.HasPrefix(nsn, "84"):
		return TypeVoicemail
	default:
		return TypeLandline
	}
}

func classifyESP(nsn string) NumberType {
	switch {
	case nsn[0] == '6', strings.HasPrefix(nsn, "7") && len(nsn) > 1 && nsn[1] >= '1' && nsn[1] <= '4':
		return TypeMobile
	case nsn[0] == '9', nsn[0] == '8':
		if strings.HasPrefix(nsn, "900") {
			return TypeTollFree
		}
		if strings.HasPrefix(nsn, "803") || strings.HasPrefix(nsn, "806") || strings.HasPrefix(nsn, "807") {
			return TypePremium
		}
		return TypeLandline
	default:
		return TypeOther
	}
}

func classifyFRA(nsn string) NumberType {
	switch {
	case nsn[0] == '6', nsn[0] == '7':
		return TypeMobile
	case nsn[0] == '8':
		if strings.HasPrefix(nsn, "80") {
			return TypeTollFree
		}
		return TypePremium
	case nsn[0] == '9':
		return TypeVOIP
	case nsn[0] >= '1' && nsn[0] <= '5':
		return TypeLandline
	default:
		return TypeOther
	}
}

func classifyAUS(nsn string) NumberType {
	switch {
	case nsn[0] == '4':
		return TypeMobile
	case nsn[0] == '2', nsn[0] == '3', nsn[0] == '7', nsn[0] == '8':
		return TypeLandline
	case strings.HasPrefix(nsn, "1800"), strings.HasPrefix(nsn, "1300"):
		return TypeTollFree
	case nsn[0] == '5':
		return TypeVOIP
	default:
		return TypeOther
	}
}

func classifyDEU(nsn string) NumberType {
	switch {
	case strings.HasPrefix(nsn, "15"), strings.HasPrefix(nsn, "16"), strings.HasPrefix(nsn, "17"):
		return TypeMobile
	case strings.HasPrefix(nsn, "800"):
		return TypeTollFree
	case strings.HasPrefix(nsn, "900"):
		return TypePremium
	case strings.HasPrefix(nsn, "700"):
		return TypePersonal
	case strings.HasPrefix(nsn, "32"):
		return TypeVOIP
	default:
		return TypeLandline
	}
}

func classifyBEL(nsn string) NumberType {
	switch {
	case strings.HasPrefix(nsn, "4"):
		return TypeMobile
	case strings.HasPrefix(nsn, "800"):
		return TypeTollFree
	case strings.HasPrefix(nsn, "90"):
		return TypePremium
	default:
		return TypeLandline
	}
}

func classifyIDN(nsn string) NumberType {
	switch {
	case strings.HasPrefix(nsn, "8"):
		return TypeMobile
	case strings.HasPrefix(nsn, "21"), strings.HasPrefix(nsn, "22"), strings.HasPrefix(nsn, "24"), strings.HasPrefix(nsn, "31"):
		return TypeLandline
	default:
		return TypeOther
	}
}

// classifyGenericPlan covers the long tail: leading 9/8/7/6 reads as mobile
// in most ITU plans; low leading digits as geographic landline.
func classifyGenericPlan(nsn string) NumberType {
	switch {
	case nsn == "":
		return TypeBadFormat
	case nsn[0] >= '6':
		return TypeMobile
	case nsn[0] >= '1':
		return TypeLandline
	default:
		return TypeOther
	}
}
