package report

import (
	"encoding/base64"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/core"
)

// QueryView is the serving-side index over the projected dataset: the
// projection's merge worker feeds it every batch it folds in, so the
// /query/* endpoints answer from an always-current in-memory view without
// copying the full dataset per request. It keeps a compact per-record
// projection (id, forum, time, domain, sender, annotation labels) plus
// inverted indexes by domain and sender, and clusters records into
// campaigns with an incremental union-find over shared infrastructure —
// the same linkage rule as internal/cluster (records sharing a domain or
// a sender belong to one campaign), maintained online instead of
// recomputed per render. A campaign's stable label is "c-" plus the
// smallest record ID in the cluster.
type QueryView struct {
	mu       sync.Mutex
	recs     []queryRec
	byDomain map[string][]int // lowercased domain -> indexes into recs
	bySender map[string][]int // lowercased sender -> indexes into recs

	// Union-find over cluster keys: "d:"+domain, "s:"+sender, "r:"+id for
	// records with neither. minID tracks each root's smallest record ID —
	// the campaign label source.
	parent map[string]string
	minID  map[string]string
}

// queryRec is the compact serving projection of one core.Record.
type queryRec struct {
	ID         string    `json:"id"`
	Forum      string    `json:"forum"`
	PostedAt   time.Time `json:"posted_at"`
	Domain     string    `json:"domain,omitempty"`
	Sender     string    `json:"sender,omitempty"`
	SenderKind string    `json:"sender_kind,omitempty"`
	Campaign   string    `json:"campaign"`
	ScamType   string    `json:"scam_type,omitempty"`
	Brand      string    `json:"brand,omitempty"`
	Text       string    `json:"text,omitempty"`
}

// NewQueryView returns an empty view.
func NewQueryView() *QueryView {
	return &QueryView{
		byDomain: make(map[string][]int),
		bySender: make(map[string][]int),
		parent:   make(map[string]string),
		minID:    make(map[string]string),
	}
}

// Add indexes a merged batch. Called by the projection worker with every
// batch it folds into the dataset, under no external lock.
func (v *QueryView) Add(records []core.Record) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, r := range records {
		idx := len(v.recs)
		qr := queryRec{
			ID:         r.ID,
			Forum:      string(r.Forum),
			PostedAt:   r.PostedAt,
			Domain:     strings.ToLower(r.Domain),
			Sender:     strings.ToLower(r.SenderRaw),
			SenderKind: string(r.SenderKind),
			ScamType:   string(r.Annotation.ScamType),
			Brand:      r.Annotation.Brand,
			Text:       r.Text,
		}
		v.recs = append(v.recs, qr)
		keys := []string{"r:" + r.ID}
		if qr.Domain != "" {
			v.byDomain[qr.Domain] = append(v.byDomain[qr.Domain], idx)
			keys = append(keys, "d:"+qr.Domain)
		}
		if qr.Sender != "" {
			v.bySender[qr.Sender] = append(v.bySender[qr.Sender], idx)
			keys = append(keys, "s:"+qr.Sender)
		}
		for _, k := range keys {
			v.noteLocked(k, r.ID)
		}
		for i := 1; i < len(keys); i++ {
			v.unionLocked(keys[0], keys[i])
		}
	}
}

// noteLocked ensures a key exists in the union-find and folds the record
// ID into its root's minimum.
func (v *QueryView) noteLocked(key, recID string) {
	root := v.findLocked(key)
	if cur, ok := v.minID[root]; !ok || recID < cur {
		v.minID[root] = recID
	}
}

func (v *QueryView) findLocked(key string) string {
	p, ok := v.parent[key]
	if !ok {
		v.parent[key] = key
		return key
	}
	if p == key {
		return key
	}
	root := v.findLocked(p)
	v.parent[key] = root // path compression
	return root
}

func (v *QueryView) unionLocked(a, b string) {
	ra, rb := v.findLocked(a), v.findLocked(b)
	if ra == rb {
		return
	}
	// Attach the lexicographically larger root under the smaller so the
	// surviving root is deterministic regardless of merge order.
	if rb < ra {
		ra, rb = rb, ra
	}
	v.parent[rb] = ra
	if id, ok := v.minID[rb]; ok {
		if cur, ok2 := v.minID[ra]; !ok2 || id < cur {
			v.minID[ra] = id
		}
		delete(v.minID, rb)
	}
}

// campaignLocked returns the record's campaign label.
func (v *QueryView) campaignLocked(r queryRec) string {
	key := "r:" + r.ID
	if r.Domain != "" {
		key = "d:" + r.Domain
	} else if r.Sender != "" {
		key = "s:" + r.Sender
	}
	return "c-" + v.minID[v.findLocked(key)]
}

// ReportsQuery filters /query/reports. Zero values mean "no constraint";
// Limit <= 0 selects the default of 100 (capped at MaxQueryLimit).
type ReportsQuery struct {
	Domain   string
	Sender   string
	Campaign string
	Since    time.Time // inclusive, against PostedAt
	Until    time.Time // exclusive, against PostedAt
	Limit    int
	// After resumes a paginated walk strictly after this (PostedAt, ID)
	// position — the decoded form of a ?cursor= token. Zero means "from
	// the start".
	After Cursor
}

// Cursor is an opaque pagination position in the (posted_at, id) order
// /query/reports returns. The encoded form is URL-safe base64 over
// "<RFC3339Nano posted_at>|<id>"; clients must treat it as opaque.
type Cursor struct {
	PostedAt time.Time
	ID       string
}

// IsZero reports whether the cursor is unset.
func (c Cursor) IsZero() bool { return c.PostedAt.IsZero() && c.ID == "" }

// Encode renders the cursor as its opaque token.
func (c Cursor) Encode() string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(c.PostedAt.UTC().Format(time.RFC3339Nano) + "|" + c.ID))
}

// DecodeCursor parses an opaque cursor token.
func DecodeCursor(token string) (Cursor, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return Cursor{}, fmt.Errorf("not base64: %w", err)
	}
	ts, id, ok := strings.Cut(string(raw), "|")
	if !ok {
		return Cursor{}, fmt.Errorf("malformed cursor payload")
	}
	t, err := time.Parse(time.RFC3339Nano, ts)
	if err != nil {
		return Cursor{}, fmt.Errorf("bad cursor timestamp: %w", err)
	}
	return Cursor{PostedAt: t, ID: id}, nil
}

// Query limits: the serving layer is for slicing, not bulk export.
const (
	DefaultQueryLimit = 100
	MaxQueryLimit     = 1000
)

// ReportsResult is the /query/reports response body.
type ReportsResult struct {
	TotalMatched int        `json:"total_matched"`
	Returned     int        `json:"returned"`
	Reports      []queryRec `json:"reports"`
	// NextCursor is the opaque token resuming after the last returned
	// report; empty when this page exhausted the matches. TotalMatched
	// counts matches after the request's cursor, so a full walk sums each
	// page's Returned, not any one TotalMatched.
	NextCursor string `json:"next_cursor,omitempty"`
}

// Reports answers a filtered slice of the indexed records, ordered by
// (posted_at, id) ascending, truncated to the query limit.
func (v *QueryView) Reports(q ReportsQuery) ReportsResult {
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultQueryLimit
	}
	if limit > MaxQueryLimit {
		limit = MaxQueryLimit
	}
	v.mu.Lock()
	defer v.mu.Unlock()

	// Narrow the candidate set with the most selective index available.
	var candidates []int
	switch {
	case q.Domain != "":
		candidates = v.byDomain[strings.ToLower(q.Domain)]
	case q.Sender != "":
		candidates = v.bySender[strings.ToLower(q.Sender)]
	default:
		candidates = make([]int, len(v.recs))
		for i := range v.recs {
			candidates[i] = i
		}
	}

	var matched []queryRec
	for _, i := range candidates {
		r := v.recs[i]
		if q.Domain != "" && r.Domain != strings.ToLower(q.Domain) {
			continue
		}
		if q.Sender != "" && r.Sender != strings.ToLower(q.Sender) {
			continue
		}
		if !q.Since.IsZero() && r.PostedAt.Before(q.Since) {
			continue
		}
		if !q.Until.IsZero() && !r.PostedAt.Before(q.Until) {
			continue
		}
		r.Campaign = v.campaignLocked(r)
		if q.Campaign != "" && r.Campaign != q.Campaign {
			continue
		}
		if !q.After.IsZero() {
			// Strictly after the cursor position in (posted_at, id) order —
			// the record the cursor encodes is the last one already served.
			if r.PostedAt.Before(q.After.PostedAt) {
				continue
			}
			if r.PostedAt.Equal(q.After.PostedAt) && r.ID <= q.After.ID {
				continue
			}
		}
		matched = append(matched, r)
	}
	sort.Slice(matched, func(a, b int) bool {
		if !matched[a].PostedAt.Equal(matched[b].PostedAt) {
			return matched[a].PostedAt.Before(matched[b].PostedAt)
		}
		return matched[a].ID < matched[b].ID
	})
	res := ReportsResult{TotalMatched: len(matched)}
	if len(matched) > limit {
		matched = matched[:limit]
		last := matched[len(matched)-1]
		res.NextCursor = Cursor{PostedAt: last.PostedAt, ID: last.ID}.Encode()
	}
	res.Reports = matched
	res.Returned = len(matched)
	if res.Reports == nil {
		res.Reports = []queryRec{}
	}
	return res
}

// NameCount is one leaderboard row in the summary.
type NameCount struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// Summary is the /query/summary response body. Leaderboards are sorted by
// count descending, name ascending — deterministic, so two views over the
// same records (e.g. pre-kill and post-restart) serialize identically.
type Summary struct {
	Records      int         `json:"records"`
	Domains      int         `json:"domains"`
	Senders      int         `json:"senders"`
	Campaigns    int         `json:"campaigns"`
	TopDomains   []NameCount `json:"top_domains"`
	TopSenders   []NameCount `json:"top_senders"`
	TopCampaigns []NameCount `json:"top_campaigns"`
}

// DefaultSummaryTop is how many leaderboard rows Summarize returns when
// the caller does not say.
const DefaultSummaryTop = 10

// Summarize computes the dataset roll-up: distinct domain/sender/campaign
// counts plus top-N leaderboards for each.
func (v *QueryView) Summarize(top int) Summary {
	if top <= 0 {
		top = DefaultSummaryTop
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	s := Summary{
		Records: len(v.recs),
		Domains: len(v.byDomain),
		Senders: len(v.bySender),
	}
	s.TopDomains = topOf(v.byDomain, top)
	s.TopSenders = topOf(v.bySender, top)

	camps := make(map[string]int)
	for _, r := range v.recs {
		camps[v.campaignLocked(r)]++
	}
	s.Campaigns = len(camps)
	s.TopCampaigns = topOfCounts(camps, top)
	return s
}

func topOf(index map[string][]int, top int) []NameCount {
	counts := make(map[string]int, len(index))
	for name, idxs := range index {
		counts[name] = len(idxs)
	}
	return topOfCounts(counts, top)
}

func topOfCounts(counts map[string]int, top int) []NameCount {
	rows := make([]NameCount, 0, len(counts))
	for name, n := range counts {
		rows = append(rows, NameCount{Name: name, Count: n})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Count != rows[b].Count {
			return rows[a].Count > rows[b].Count
		}
		return rows[a].Name < rows[b].Name
	})
	if len(rows) > top {
		rows = rows[:top]
	}
	return rows
}

// ReportsHandler serves GET /query/reports: parameters domain, sender,
// campaign, since/until (RFC 3339, inclusive/exclusive against the post
// time), limit (default 100, max 1000), cursor (opaque, from a previous
// response's next_cursor), and format (json, the default, or csv). Unknown
// parameters and malformed values are a 400, not a silent full-table
// answer.
func (v *QueryView) ReportsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		qs := r.URL.Query()
		for key := range qs {
			switch key {
			case "domain", "sender", "campaign", "since", "until", "limit", "cursor", "format":
			default:
				http.Error(w, fmt.Sprintf("unknown query parameter %q", key), http.StatusBadRequest)
				return
			}
		}
		q := ReportsQuery{
			Domain:   qs.Get("domain"),
			Sender:   qs.Get("sender"),
			Campaign: qs.Get("campaign"),
		}
		var err error
		if raw := qs.Get("since"); raw != "" {
			if q.Since, err = time.Parse(time.RFC3339, raw); err != nil {
				http.Error(w, fmt.Sprintf("bad since: %v", err), http.StatusBadRequest)
				return
			}
		}
		if raw := qs.Get("until"); raw != "" {
			if q.Until, err = time.Parse(time.RFC3339, raw); err != nil {
				http.Error(w, fmt.Sprintf("bad until: %v", err), http.StatusBadRequest)
				return
			}
		}
		if raw := qs.Get("limit"); raw != "" {
			if q.Limit, err = strconv.Atoi(raw); err != nil || q.Limit < 1 {
				http.Error(w, fmt.Sprintf("bad limit %q", raw), http.StatusBadRequest)
				return
			}
		}
		if raw := qs.Get("cursor"); raw != "" {
			if q.After, err = DecodeCursor(raw); err != nil {
				http.Error(w, fmt.Sprintf("bad cursor: %v", err), http.StatusBadRequest)
				return
			}
		}
		format := qs.Get("format")
		switch format {
		case "", "json":
			writeJSON(w, v.Reports(q))
		case "csv":
			writeReportsCSV(w, v.Reports(q))
		default:
			http.Error(w, fmt.Sprintf("bad format %q (json or csv)", format), http.StatusBadRequest)
		}
	})
}

// writeReportsCSV renders a reports page as CSV for analysis tooling. The
// pagination cursor rides in the X-Next-Cursor header, since CSV has no
// envelope to carry it.
func writeReportsCSV(w http.ResponseWriter, res ReportsResult) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	if res.NextCursor != "" {
		w.Header().Set("X-Next-Cursor", res.NextCursor)
	}
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"id", "forum", "posted_at", "domain", "sender", "sender_kind", "campaign", "scam_type", "brand", "text"})
	for _, r := range res.Reports {
		_ = cw.Write([]string{
			r.ID, r.Forum, r.PostedAt.UTC().Format(time.RFC3339Nano),
			r.Domain, r.Sender, r.SenderKind, r.Campaign, r.ScamType, r.Brand, r.Text,
		})
	}
	cw.Flush()
}

// SummaryHandler serves GET /query/summary: parameter top (default 10)
// sizes the leaderboards.
func (v *QueryView) SummaryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		top := 0
		if raw := r.URL.Query().Get("top"); raw != "" {
			var err error
			if top, err = strconv.Atoi(raw); err != nil || top < 1 {
				http.Error(w, fmt.Sprintf("bad top %q", raw), http.StatusBadRequest)
				return
			}
		}
		writeJSON(w, v.Summarize(top))
	})
}

func writeJSON(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body) //nolint:errcheck // network write; nothing to do on failure
}
