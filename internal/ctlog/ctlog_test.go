package ctlog

import (
	"context"
	"net/http/httptest"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)

func TestAppendAssignsIDs(t *testing.T) {
	s := NewStore()
	a := s.Append(Certificate{Domain: "a.com"})
	b := s.Append(Certificate{Domain: "b.com"})
	if a.ID == b.ID || a.ID == 0 {
		t.Errorf("ids: %d, %d", a.ID, b.ID)
	}
}

func TestIssueChain(t *testing.T) {
	s := NewStore()
	s.IssueChain("evil.top", "Let's Encrypt", 123, t0, 90*24*time.Hour, 4)
	certs := s.Search("evil.top")
	if len(certs) != 4 {
		t.Fatalf("chain length = %d", len(certs))
	}
	for i := 1; i < len(certs); i++ {
		if !certs[i].NotBefore.Equal(certs[i-1].NotAfter) {
			t.Errorf("renewal gap between cert %d and %d", i-1, i)
		}
	}
	sum := s.Summarize("evil.top")
	if sum.Certs != 4 || sum.Issuers["Let's Encrypt"] != 4 {
		t.Errorf("summary = %+v", sum)
	}
	if !sum.FirstSeen.Equal(t0) {
		t.Errorf("first seen = %v", sum.FirstSeen)
	}
}

func TestSearchIsCaseInsensitiveAndSorted(t *testing.T) {
	s := NewStore()
	s.Append(Certificate{Domain: "Mixed.Com", NotBefore: t0.Add(time.Hour)})
	s.Append(Certificate{Domain: "mixed.com", NotBefore: t0})
	certs := s.Search("MIXED.COM")
	if len(certs) != 2 {
		t.Fatalf("len = %d", len(certs))
	}
	if !certs[0].NotBefore.Equal(t0) {
		t.Error("not sorted oldest-first")
	}
}

func TestSearchUnknownDomain(t *testing.T) {
	s := NewStore()
	if got := s.Search("ghost.example"); len(got) != 0 {
		t.Errorf("phantom certs: %v", got)
	}
	sum := s.Summarize("ghost.example")
	if sum.Certs != 0 {
		t.Errorf("phantom summary: %+v", sum)
	}
}

func TestTotals(t *testing.T) {
	s := NewStore()
	s.IssueChain("a.com", "DigiCert", 1, t0, 365*24*time.Hour, 2)
	s.IssueChain("b.com", "Sectigo", 2, t0, 365*24*time.Hour, 3)
	certs, domains := s.Totals()
	if certs != 5 || domains != 2 {
		t.Errorf("totals = %d certs, %d domains", certs, domains)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	store := NewStore()
	store.IssueChain("evil.top", "Let's Encrypt", IssuerID("Let's Encrypt"), t0, 90*24*time.Hour, 3)
	srv := httptest.NewServer(NewServer(store, 0).Handler())
	defer srv.Close()

	c := NewClient(srv.URL)
	certs, err := c.Search(context.Background(), "evil.top")
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) != 3 {
		t.Fatalf("search = %d certs", len(certs))
	}
	sum, err := c.Summary(context.Background(), "evil.top")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Certs != 3 || sum.Issuers["Let's Encrypt"] != 3 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestHTTPMissingParam(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), 0).Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.Search(context.Background(), ""); err == nil {
		t.Error("empty domain accepted")
	}
}

// Property: summaries agree with full searches.
func TestSummaryMatchesSearchProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		s := NewStore()
		issuers := []string{"Let's Encrypt", "DigiCert", "Sectigo"}
		for i, c := range counts {
			n := int(c%7) + 1
			s.IssueChain("d.com", issuers[i%len(issuers)], i, t0.Add(time.Duration(i)*time.Hour), 24*time.Hour, n)
		}
		sum := s.Summarize("d.com")
		certs := s.Search("d.com")
		if sum.Certs != len(certs) {
			return false
		}
		total := 0
		for _, n := range sum.Issuers {
			total += n
		}
		return total == len(certs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIssuerIDStable(t *testing.T) {
	if IssuerID("Let's Encrypt") != IssuerID("Let's Encrypt") {
		t.Error("IssuerID unstable")
	}
	if IssuerID("Let's Encrypt") == IssuerID("DigiCert") {
		t.Error("issuer collision between major CAs")
	}
}
