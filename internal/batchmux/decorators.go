package batchmux

import (
	"context"
	"strings"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Mux is one shared batching tier: a per-service set of windowed batchers
// that decorate the core.Services seam. Build one per study and attach it
// with WrapServices.
type Mux struct {
	cfg        Config
	sem        chan struct{}
	perService map[string]*metrics
}

// New builds a mux recording into reg (nil is allowed: counters become
// no-ops and Stats still works off zero values — but pair it with the
// study's registry so batching effectiveness lands next to the client
// metrics).
func New(cfg Config, reg *telemetry.Registry) *Mux {
	cfg = cfg.withDefaults()
	m := &Mux{
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.MaxInFlight),
		perService: make(map[string]*metrics, 3),
	}
	for _, name := range []string{"hlr", "dnsdb", "avscan"} {
		m.perService[name] = newMetrics(reg, name)
	}
	return m
}

// WrapServices decorates every batchable non-nil service. Services with
// no bulk form (whois, ctlog, shortener) pass through untouched; batchable
// services whose client lacks the core.Bulk* seam get a counting
// fallthrough wrapper so the gap is visible in telemetry.
func (m *Mux) WrapServices(s core.Services) core.Services {
	if s.HLR != nil {
		s.HLR = m.HLR(s.HLR)
	}
	if s.DNSDB != nil {
		s.DNSDB = m.DNSDB(s.DNSDB)
	}
	if s.AVScan != nil {
		s.AVScan = m.AVScan(s.AVScan)
	}
	return s
}

// HLR batches next's lookups by normalized MSISDN when next implements
// core.BulkHLRLookuper, else counts per-key fallthrough.
func (m *Mux) HLR(next core.HLRLookuper) core.HLRLookuper {
	met := m.perService["hlr"]
	bulk, ok := next.(core.BulkHLRLookuper)
	if !ok {
		return &fallthroughHLR{next: next, met: met}
	}
	sc := m.cfg.forService("hlr")
	return &batchedHLR{
		next: next,
		b: newBatcher(sc, m.cfg.BatchTimeout, m.sem, met,
			func(ctx context.Context, keys []string) ([]hlr.Result, []error) {
				return bulk.LookupBatch(ctx, keys)
			}),
	}
}

// DNSDB batches next's pDNS resolutions by normalized domain when next
// implements core.BulkDNSResolver; ASOf always passes through per-key
// (the IP chain fans out from each domain's own observations).
func (m *Mux) DNSDB(next core.DNSResolver) core.DNSResolver {
	met := m.perService["dnsdb"]
	bulk, ok := next.(core.BulkDNSResolver)
	if !ok {
		return &fallthroughDNS{next: next, met: met}
	}
	sc := m.cfg.forService("dnsdb")
	return &batchedDNS{
		next: next,
		b: newBatcher(sc, m.cfg.BatchTimeout, m.sem, met,
			func(ctx context.Context, keys []string) ([][]dnsdb.Observation, []error) {
				return bulk.ResolutionsBatch(ctx, keys)
			}),
	}
}

// AVScan batches next's vendor-aggregate scans and Safe Browsing lookups
// (separate windows, shared scoreboard) when next implements
// core.BulkAVScanner; Transparency always passes through per-key — the
// transparency site refuses automation, so there is nothing to batch.
func (m *Mux) AVScan(next core.AVScanner) core.AVScanner {
	met := m.perService["avscan"]
	bulk, ok := next.(core.BulkAVScanner)
	if !ok {
		return &fallthroughAV{next: next, met: met}
	}
	sc := m.cfg.forService("avscan")
	return &batchedAV{
		next: next,
		scan: newBatcher(sc, m.cfg.BatchTimeout, m.sem, met,
			func(ctx context.Context, keys []string) ([]avscan.Report, []error) {
				return bulk.ScanBatch(ctx, keys)
			}),
		gsb: newBatcher(sc, m.cfg.BatchTimeout, m.sem, met,
			func(ctx context.Context, keys []string) ([]avscan.GSBResult, []error) {
				return bulk.GSBLookupBatch(ctx, keys)
			}),
	}
}

// Stats snapshots every service's counters.
func (m *Mux) Stats() Stats {
	out := make(Stats, len(m.perService))
	for name, met := range m.perService {
		out[name] = ServiceStats{
			Flushes:     met.flushes.Value(),
			BatchedKeys: met.batchSize.Value(),
			Coalesced:   met.coalesced.Value(),
			Fallthrough: met.fellThrough.Value(),
		}
	}
	return out
}

// normalizeKey folds case and whitespace, matching the cache tier above
// and the case-insensitive stores below, so a window never carries two
// spellings of one key.
func normalizeKey(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

type batchedHLR struct {
	next core.HLRLookuper
	b    *batcher[hlr.Result]
}

func (d *batchedHLR) Lookup(ctx context.Context, msisdn string) (hlr.Result, error) {
	return d.b.get(ctx, normalizeKey(msisdn))
}

type batchedDNS struct {
	next core.DNSResolver
	b    *batcher[[]dnsdb.Observation]
}

func (d *batchedDNS) Resolutions(ctx context.Context, domain string) ([]dnsdb.Observation, error) {
	return d.b.get(ctx, normalizeKey(domain))
}

func (d *batchedDNS) ASOf(ctx context.Context, ip string) (dnsdb.ASInfo, error) {
	return d.next.ASOf(ctx, ip)
}

type batchedAV struct {
	next core.AVScanner
	scan *batcher[avscan.Report]
	gsb  *batcher[avscan.GSBResult]
}

func (d *batchedAV) Scan(ctx context.Context, u string) (avscan.Report, error) {
	return d.scan.get(ctx, u)
}

func (d *batchedAV) GSBLookup(ctx context.Context, u string) (avscan.GSBResult, error) {
	return d.gsb.get(ctx, u)
}

func (d *batchedAV) Transparency(ctx context.Context, u string) (avscan.TransparencyResult, bool, error) {
	return d.next.Transparency(ctx, u)
}

type fallthroughHLR struct {
	next core.HLRLookuper
	met  *metrics
}

func (d *fallthroughHLR) Lookup(ctx context.Context, msisdn string) (hlr.Result, error) {
	d.met.fellThrough.Inc()
	return d.next.Lookup(ctx, msisdn)
}

type fallthroughDNS struct {
	next core.DNSResolver
	met  *metrics
}

func (d *fallthroughDNS) Resolutions(ctx context.Context, domain string) ([]dnsdb.Observation, error) {
	d.met.fellThrough.Inc()
	return d.next.Resolutions(ctx, domain)
}

func (d *fallthroughDNS) ASOf(ctx context.Context, ip string) (dnsdb.ASInfo, error) {
	return d.next.ASOf(ctx, ip)
}

type fallthroughAV struct {
	next core.AVScanner
	met  *metrics
}

func (d *fallthroughAV) Scan(ctx context.Context, u string) (avscan.Report, error) {
	d.met.fellThrough.Inc()
	return d.next.Scan(ctx, u)
}

func (d *fallthroughAV) GSBLookup(ctx context.Context, u string) (avscan.GSBResult, error) {
	d.met.fellThrough.Inc()
	return d.next.GSBLookup(ctx, u)
}

func (d *fallthroughAV) Transparency(ctx context.Context, u string) (avscan.TransparencyResult, bool, error) {
	return d.next.Transparency(ctx, u)
}
