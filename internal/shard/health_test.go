package shard

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/smishkit/smishkit/internal/telemetry"
)

// probeTarget is an enricher whose health the test flips at will.
type probeTarget struct {
	markEnricher

	hmu  sync.Mutex
	herr error
}

func (p *probeTarget) Healthy(context.Context) error {
	p.hmu.Lock()
	defer p.hmu.Unlock()
	return p.herr
}

func (p *probeTarget) setHealth(err error) {
	p.hmu.Lock()
	p.herr = err
	p.hmu.Unlock()
}

func TestProberStateMachine(t *testing.T) {
	reg := telemetry.NewRegistry()
	targets := []*probeTarget{{}, {}}
	p := NewProber(2, ProbeConfig{DownAfter: 2}, reg)
	p.SetSource(func() []Enricher { return []Enricher{targets[0], targets[1]} })

	for i := 0; i < 2; i++ {
		if !p.Up(i) {
			t.Fatalf("shard %d not up initially", i)
		}
	}
	ctx := context.Background()

	// One failure is below DownAfter=2: still up.
	targets[1].setHealth(errors.New("unreachable"))
	p.ProbeOnce(ctx)
	if !p.Up(1) {
		t.Fatal("shard 1 went down after 1 failure with DownAfter=2")
	}
	// Second consecutive failure crosses the threshold.
	p.ProbeOnce(ctx)
	if p.Up(1) {
		t.Fatal("shard 1 still up after DownAfter consecutive failures")
	}
	if p.Up(0) != true {
		t.Fatal("healthy shard 0 was marked down")
	}
	if got := p.Flaps(1); got != 1 {
		t.Errorf("Flaps(1) = %d, want 1", got)
	}
	snap := reg.Snapshot()
	if snap.Gauges["shard.1.health"] != 0 {
		t.Errorf("shard.1.health gauge = %v, want 0", snap.Gauges["shard.1.health"])
	}
	if snap.Gauges["shard.0.health"] != 1 {
		t.Errorf("shard.0.health gauge = %v, want 1", snap.Gauges["shard.0.health"])
	}

	// A single success marks it back up.
	targets[1].setHealth(nil)
	p.ProbeOnce(ctx)
	if !p.Up(1) {
		t.Fatal("shard 1 not back up after a successful probe")
	}
	if got := p.Flaps(1); got != 2 {
		t.Errorf("Flaps(1) = %d after recovery, want 2", got)
	}
	mask := p.AliveMask()
	if len(mask) != 2 || !mask[0] || !mask[1] {
		t.Errorf("AliveMask = %v, want all up", mask)
	}
}

func TestProberMarkDownMarkUp(t *testing.T) {
	p := NewProber(2, ProbeConfig{}, telemetry.NewRegistry())
	p.MarkDown(0)
	if p.Up(0) {
		t.Fatal("MarkDown did not take effect immediately")
	}
	if mask := p.AliveMask(); mask[0] || !mask[1] {
		t.Errorf("AliveMask = %v, want [false true]", mask)
	}
	p.MarkUp(0)
	if !p.Up(0) {
		t.Fatal("MarkUp did not take effect immediately")
	}
	if got := p.Flaps(0); got != 2 {
		t.Errorf("Flaps(0) = %d, want 2 (one down, one up)", got)
	}
	// Out-of-range indexes are ignored, not a panic.
	p.MarkDown(-1)
	p.MarkDown(99)
	p.MarkUp(-1)
	if p.Up(99) {
		t.Error("Up(out of range) reported true")
	}
}

func TestProberTreatsUnprobeableTargetsAsUp(t *testing.T) {
	// A target without the HealthChecker interface (a bare enricher) is
	// always up: the probe loop even recovers it from a forced MarkDown.
	p := NewProber(1, ProbeConfig{}, telemetry.NewRegistry())
	p.SetSource(func() []Enricher { return []Enricher{&markEnricher{}} })
	p.MarkDown(0)
	if p.Up(0) {
		t.Fatal("MarkDown ignored")
	}
	p.ProbeOnce(context.Background())
	if !p.Up(0) {
		t.Fatal("unprobeable target not restored to up by the probe loop")
	}
}
