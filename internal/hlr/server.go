package hlr

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Server exposes the registry over HTTP:
//
//	GET  /v1/lookup?msisdn=+447700900123
//	POST /v1/bulk   {"msisdns": ["+44...", ...]}  (max 500 per call)
//
// Requests require the configured API key and are rate limited.
type Server struct {
	store   *Store
	apiKey  string
	limiter *netutil.TokenBucket
}

// MaxBulk is the largest accepted bulk-lookup batch.
const MaxBulk = 500

// NewServer wires a Store into an HTTP service. ratePerSec <= 0 disables
// rate limiting.
func NewServer(store *Store, apiKey string, ratePerSec float64) *Server {
	s := &Server{store: store, apiKey: apiKey}
	if ratePerSec > 0 {
		s.limiter = netutil.NewTokenBucket(int(ratePerSec*2)+1, ratePerSec)
	}
	return s
}

// Handler returns the routed, authenticated handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/lookup", s.handleLookup)
	mux.HandleFunc("POST /v1/bulk", s.handleBulk)
	return netutil.RequireKey(s.apiKey, mux)
}

func (s *Server) allow(w http.ResponseWriter, n int) bool {
	if s.limiter == nil || s.limiter.AllowN(n) {
		return true
	}
	netutil.WriteRateLimited(w, s.limiter.RetryAfter(n))
	return false
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	if !s.allow(w, 1) {
		return
	}
	msisdn := r.URL.Query().Get("msisdn")
	if msisdn == "" {
		netutil.WriteError(w, http.StatusBadRequest, "missing msisdn parameter")
		return
	}
	netutil.WriteJSON(w, http.StatusOK, s.store.Lookup(msisdn))
}

type bulkRequest struct {
	MSISDNs []string `json:"msisdns"`
}

// bulkResponse carries partial-result semantics: Results[i] answers
// MSISDNs[i], and a non-empty Errors[i] marks that one slot as failed
// without poisoning the rest of the batch.
type bulkResponse struct {
	Results []Result `json:"results"`
	Errors  []string `json:"errors,omitempty"`
}

func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) {
	var req bulkRequest
	if err := netutil.ReadJSON(r, &req); err != nil {
		netutil.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.MSISDNs) == 0 {
		netutil.WriteError(w, http.StatusBadRequest, "empty msisdn list")
		return
	}
	if len(req.MSISDNs) > MaxBulk {
		netutil.WriteError(w, http.StatusRequestEntityTooLarge, "batch exceeds limit")
		return
	}
	if !s.allow(w, len(req.MSISDNs)) {
		return
	}
	resp := bulkResponse{
		Results: make([]Result, len(req.MSISDNs)),
		Errors:  make([]string, len(req.MSISDNs)),
	}
	for i, m := range req.MSISDNs {
		if strings.TrimSpace(m) == "" {
			resp.Errors[i] = "empty msisdn"
			continue
		}
		resp.Results[i] = s.store.Lookup(m)
	}
	netutil.WriteJSON(w, http.StatusOK, resp)
}

// Client is the HLR API consumer used by the enrichment pipeline.
type Client struct {
	API netutil.Client
}

// NewClient builds a client for the service at baseURL.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{API: netutil.Client{BaseURL: baseURL, APIKey: apiKey}}
}

// Instrument records this client's calls, errors, retries, 429s, and
// latency into reg under the "hlr" service name. Returns c for chaining.
func (c *Client) Instrument(reg *telemetry.Registry) *Client {
	c.API.Metrics = telemetry.NewClientMetrics(reg, "hlr")
	return c
}

// Lookup resolves a single MSISDN.
func (c *Client) Lookup(ctx context.Context, msisdn string) (Result, error) {
	var out Result
	err := c.API.GetJSON(ctx, "/v1/lookup?msisdn="+urlEscape(msisdn), &out)
	return out, err
}

// BulkLookup resolves msisdns in MaxBulk-sized batches, preserving order.
// The first failed slot (or transport error) fails the whole call; use
// LookupBatch for per-key error demultiplexing.
func (c *Client) BulkLookup(ctx context.Context, msisdns []string) ([]Result, error) {
	results, errs := c.LookupBatch(ctx, msisdns)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// LookupBatch resolves msisdns in MaxBulk-sized batches with partial-result
// semantics: results[i] and errs[i] answer msisdns[i], and a transport-level
// failure fans out to every slot of its chunk without touching the others.
func (c *Client) LookupBatch(ctx context.Context, msisdns []string) ([]Result, []error) {
	results := make([]Result, len(msisdns))
	errs := make([]error, len(msisdns))
	for start := 0; start < len(msisdns); start += MaxBulk {
		end := start + MaxBulk
		if end > len(msisdns) {
			end = len(msisdns)
		}
		chunk := msisdns[start:end]
		var resp bulkResponse
		if err := c.API.PostJSON(ctx, "/v1/bulk", bulkRequest{MSISDNs: chunk}, &resp); err != nil {
			for i := start; i < end; i++ {
				errs[i] = err
			}
			continue
		}
		for i := range chunk {
			switch {
			case i < len(resp.Errors) && resp.Errors[i] != "":
				errs[start+i] = fmt.Errorf("hlr: bulk lookup %q: %s", chunk[i], resp.Errors[i])
			case i < len(resp.Results):
				results[start+i] = resp.Results[i]
			default:
				errs[start+i] = fmt.Errorf("hlr: bulk response missing slot %d", i)
			}
		}
	}
	return results, errs
}

// urlEscape percent-encodes the characters that appear in MSISDNs.
func urlEscape(s string) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '+':
			b = append(b, '%', '2', 'B')
		case c == ' ':
			b = append(b, '%', '2', '0')
		default:
			b = append(b, c)
		}
	}
	return string(b)
}
