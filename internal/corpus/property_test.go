package corpus

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/smishkit/smishkit/internal/stats"
)

// Property: any (seed, size) configuration yields a structurally consistent
// world — counts honored, cross-references resolvable, timestamps ordered.
func TestGenerateFuzzConfig(t *testing.T) {
	f := func(seed int64, rawSize uint16) bool {
		size := int(rawSize%600) + 1
		w := Generate(Config{Seed: seed, Messages: size})
		if len(w.Messages) != size {
			return false
		}
		for _, m := range w.Messages {
			if m.Text == "" || m.ID == "" || m.Campaign == "" {
				return false
			}
			if m.ReportedAt.Before(m.SentAt) {
				return false
			}
			if m.Domain != "" {
				if _, ok := w.Domains[m.Domain]; !ok {
					return false
				}
			}
			if m.Shortener != "" {
				key := strings.TrimPrefix(m.URL, "https://")
				if _, ok := w.Links[key]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: GenerateHam is deterministic per seed and never emits empties.
func TestGenerateHamProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%50) + 1
		a := GenerateHam(seed, n)
		b := GenerateHam(seed, n)
		if len(a) != n || len(b) != n {
			return false
		}
		for i := range a {
			if a[i] != b[i] || strings.TrimSpace(a[i]) == "" {
				return false
			}
			if strings.Contains(a[i], "{") {
				return false // unexpanded slot
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: campaign sizes sum to the message count and every campaign's
// start falls inside the configured window (SBI campaign excepted: it is
// pinned to Aug 2021, inside the default window).
func TestCampaignAccounting(t *testing.T) {
	w := Generate(Config{Seed: 29, Messages: 2500})
	perCampaign := stats.NewCounter()
	for _, m := range w.Messages {
		perCampaign.Add(m.Campaign)
	}
	from := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC)
	for _, c := range w.Campaigns {
		if got := perCampaign.Count(c.ID); got == 0 {
			// Tail campaigns can be truncated to zero by the message cap
			// only if they were never recorded; Size must still be >= 1.
			if c.Size > 0 {
				t.Fatalf("campaign %s has size %d but no messages", c.ID, c.Size)
			}
		}
		if c.Start.Before(from) || c.Start.After(to) {
			t.Fatalf("campaign %s starts outside window: %v", c.ID, c.Start)
		}
	}
	if perCampaign.Total() != len(w.Messages) {
		t.Fatalf("campaign attribution lost messages")
	}
}
