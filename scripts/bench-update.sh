#!/usr/bin/env bash
# bench-update.sh — promote a benchmark run's summary.json to the committed
# baseline the CI bench-gate compares against.
#
# Usage: scripts/bench-update.sh [summary.json]
#
# Defaults to bench/out/summary.json (where run_benchmark.sh leaves it).
# Refuses to promote a failing run: the baseline must always describe a
# configuration that met its own SLOs. Commit the updated
# bench/baseline_summary.json alongside the change that earned it.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

SRC="${1:-bench/out/summary.json}"
DST="bench/baseline_summary.json"
[ -f "$SRC" ] || { echo "summary not found: $SRC (run scripts/run_benchmark.sh first)" >&2; exit 1; }
grep -q '"pass": true' "$SRC" || { echo "refusing to promote $SRC: pass is not true" >&2; exit 1; }

cp "$SRC" "$DST"
echo "baseline updated: $DST"
echo "review and commit it: git add $DST"
