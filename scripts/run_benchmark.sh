#!/usr/bin/env bash
# run_benchmark.sh — the closed-loop benchmark: daemon + loadgen + benchwatch.
#
# Usage: scripts/run_benchmark.sh [profile.env] [outdir]
#
#   profile.env  benchmark profile (default scripts/benchmark_profiles/smoke_1k.env)
#   outdir       artifacts directory (default bench/out): samples.csv,
#                summary.json, daemon.log, loadgen.log
#
# Set BENCH_BASELINE=bench/baseline_summary.json to also gate the run on
# baseline regressions (BENCH_MAX_REGRESSION_PCT, default 5).
#
# Exit codes mirror benchwatch: 0 pass, 1 operational error,
# 2 SLO verdict failed, 3 baseline regression.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

PROFILE="${1:-scripts/benchmark_profiles/smoke_1k.env}"
OUT="${2:-bench/out}"
[ -f "$PROFILE" ] || { echo "profile not found: $PROFILE" >&2; exit 1; }

# Daemon-side knobs come from the same profile file. It stays valid POSIX
# shell by contract; the Go side re-parses it strictly, so a typo fails
# loadgen/benchwatch loudly even though sourcing here is permissive.
BENCH_WORLD_MESSAGES=1000
BENCH_CHAOS=0
BENCH_POLL_MS=500
BENCH_SEED=1
BENCH_SHARDS=0
BENCH_SHARD_FAILOVER=0
BENCH_SHARD_PROBE_MS=1000
# shellcheck disable=SC1090
. "$PROFILE"

# Failover flags expand unquoted below (a plain string, not an array, so
# set -u stays happy when it is empty).
SHARD_FAILOVER_FLAGS=""
if [ "$BENCH_SHARD_FAILOVER" = "1" ]; then
    SHARD_FAILOVER_FLAGS="-shard-failover -shard-probe-interval ${BENCH_SHARD_PROBE_MS}ms"
fi

mkdir -p "$OUT"
BIN="$OUT/bin"
echo "== building smishctl, loadgen, benchwatch"
go build -o "$BIN/" ./cmd/smishctl ./cmd/loadgen ./cmd/benchwatch

STATUS_FILE="$OUT/status_url"
DAEMON_LOG="$OUT/daemon.log"
# The benchmark runs with durability on: every committed round is fsynced
# into the record log, so the SLO gate also covers the write-ahead cost.
# Fresh directory each run — replaying a previous run's log would skew the
# projection numbers.
DATA_DIR="$OUT/data"
rm -f "$STATUS_FILE"
rm -rf "$DATA_DIR"

echo "== starting daemon (world=$BENCH_WORLD_MESSAGES chaos=$BENCH_CHAOS poll=${BENCH_POLL_MS}ms shards=$BENCH_SHARDS failover=$BENCH_SHARD_FAILOVER data=$DATA_DIR)"
# shellcheck disable=SC2086  # SHARD_FAILOVER_FLAGS is a deliberate word-split
"$BIN/smishctl" -serve -seed "$BENCH_SEED" -messages "$BENCH_WORLD_MESSAGES" \
    -chaos "$BENCH_CHAOS" -poll-interval "${BENCH_POLL_MS}ms" \
    -shards "$BENCH_SHARDS" $SHARD_FAILOVER_FLAGS \
    -data-dir "$DATA_DIR" \
    -status-file "$STATUS_FILE" >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!
cleanup() {
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
}
trap cleanup EXIT

# The daemon writes its status URL to STATUS_FILE once it is listening.
for _ in $(seq 1 150); do
    [ -s "$STATUS_FILE" ] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "daemon exited before serving; log follows" >&2
        cat "$DAEMON_LOG" >&2
        exit 1
    fi
    sleep 0.2
done
[ -s "$STATUS_FILE" ] || { echo "daemon never published a status URL" >&2; cat "$DAEMON_LOG" >&2; exit 1; }
STATUS_URL="$(cat "$STATUS_FILE")"
echo "== daemon up at $STATUS_URL (pid $DAEMON_PID)"

echo "== starting loadgen"
"$BIN/loadgen" -profile "$PROFILE" -status "$STATUS_URL" >"$OUT/loadgen.log" 2>&1 &
LOADGEN_PID=$!

BENCHWATCH_ARGS=(-profile "$PROFILE" -status "$STATUS_URL" -out "$OUT")
if [ -n "${BENCH_BASELINE:-}" ]; then
    [ -f "$BENCH_BASELINE" ] || { echo "baseline not found: $BENCH_BASELINE" >&2; exit 1; }
    BENCHWATCH_ARGS+=(-baseline "$BENCH_BASELINE")
fi
echo "== watching"
set +e
"$BIN/benchwatch" "${BENCHWATCH_ARGS[@]}"
VERDICT=$?
wait "$LOADGEN_PID"
LOADGEN_RC=$?
set -e

echo "== loadgen log"
cat "$OUT/loadgen.log"
if [ "$LOADGEN_RC" -ne 0 ]; then
    echo "loadgen failed (rc=$LOADGEN_RC)" >&2
    exit 1
fi
echo "== artifacts in $OUT: samples.csv summary.json daemon.log loadgen.log"
exit "$VERDICT"
