// Package shard partitions the measurement pipeline by stable enrichment
// key across N shard instances, each owning its own cache, breaker set,
// and batchmux windows.
//
// The paper's workload is embarrassingly partitionable: every enrichment
// service is keyed by the infrastructure a record points at (registrable
// domain, sender phone number, shortener host), so routing records with
// the same key to the same shard keeps each cache/batch window dense while
// removing the cross-shard lock contention a single global tier pays for.
// A consistent-hash ring makes the assignment stable: resizing from N to
// N+1 shards remaps only the keys the new shard captures (~1/(N+1) of
// them), not a full reshuffle.
//
// Determinism is the package's contract: records are curated once by a
// front pipeline, routed by key to per-shard enrichers that run
// concurrently, and scattered back into their curation-order slots — so
// shards=1 and shards=N produce record-identical output, and both match
// the unsharded barrier pipeline.
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/smishkit/smishkit/internal/core"
)

// DefaultReplicas is the virtual-node count per shard when the caller does
// not say. 128 points per shard keeps the key distribution within a few
// tens of percent of uniform while the ring stays small enough to build in
// microseconds.
const DefaultReplicas = 128

// ringPoint is one virtual node: a position on the hash circle owned by a
// shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash ring over shard indexes 0..N-1.
// Safe for concurrent use: after construction it is never mutated.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

// NewRing builds a ring of n shards with the given virtual-node count per
// shard (0 selects DefaultReplicas).
func NewRing(shards, replicas int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: ring needs at least one shard (got %d)", shards)
	}
	if replicas < 0 {
		return nil, fmt.Errorf("shard: replicas must not be negative (got %d)", replicas)
	}
	if replicas == 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			// The virtual-node label depends only on (shard, replica), never
			// on the total shard count — that independence is what bounds the
			// remap fraction on resize.
			label := "vn-" + strconv.Itoa(s) + "/" + strconv.Itoa(v)
			r.points = append(r.points, ringPoint{hash: hashKey(label), shard: s})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare with 64-bit FNV) break toward the
		// lower shard index so the ring stays deterministic.
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Shard maps a key to its owning shard: the first virtual node at or after
// the key's hash, wrapping at the top of the circle.
func (r *Ring) Shard(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// ShardAlive maps a key to its owning shard among the alive ones: the
// first virtual node at or after the key's hash whose shard is marked
// alive, wrapping at the top of the circle. With every shard alive it
// agrees with Shard exactly; with some down it is the "next-alive"
// failover mapping — keys owned by a dead shard slide forward to the next
// surviving virtual node, so each survivor absorbs roughly its
// proportional share (~1/(N-1) of the dead shard's keys each) instead of
// one neighbour absorbing everything. Returns -1 when no shard is alive.
// Like Shard, it is a pure function of (key, alive), so every caller —
// and every process — computes the same re-dispatch target.
func (r *Ring) ShardAlive(key string, alive []bool) int {
	any := false
	for s := 0; s < r.shards && s < len(alive); s++ {
		if alive[s] {
			any = true
			break
		}
	}
	if !any {
		return -1
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for off := 0; off < len(r.points); off++ {
		i := start + off
		if i >= len(r.points) {
			i -= len(r.points)
		}
		if s := r.points[i].shard; s < len(alive) && alive[s] {
			return s
		}
	}
	return -1
}

// hashKey is FNV-1a over the key bytes, pushed through a 64-bit avalanche
// finalizer. Raw FNV-1a leaves the upper bits poorly mixed on short inputs
// — sequential virtual-node labels then clump on the circle and shard
// shares drift far from uniform — so the finalizer (the murmur3 fmix64
// constants) spreads every input bit across the word. Allocation-free and
// a pure function of the key, so it is stable across processes: the
// multi-process mode relies on parent and workers routing identically.
func hashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// KeyOf returns a record's stable routing key: the registrable domain of
// the shown URL when curation extracted one, else the sender ID, else the
// record's own ID. The prefixes keep the key spaces disjoint (a domain
// that happens to equal a phone number must not collide), mirroring the
// "d:"/"s:" key scheme of the campaign union-find.
//
// The key uses only fields curation fills in — never enrichment output —
// so routing is decided before any service call and is identical on every
// run and across process boundaries.
func KeyOf(rec *core.Record) string {
	if d := rec.URLInfo.Domain; d != "" {
		return "d:" + strings.ToLower(d)
	}
	if s := strings.ToLower(strings.TrimSpace(rec.SenderRaw)); s != "" {
		return "s:" + s
	}
	return "r:" + rec.ID
}
