package avscan

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/smishkit/smishkit/internal/corpus"
)

func TestVendorRosterSize(t *testing.T) {
	if len(Vendors) < 70 {
		t.Errorf("roster = %d vendors, want >= 70 (VirusTotal lists 70+)", len(Vendors))
	}
	seen := map[string]bool{}
	for _, v := range Vendors {
		if seen[v.Name] {
			t.Errorf("duplicate vendor %q", v.Name)
		}
		seen[v.Name] = true
	}
}

func TestScanDeterministic(t *testing.T) {
	s := NewStore()
	s.SetDetectability("evil.top", 0.8)
	a := s.Scan("https://evil.top/x")
	b := s.Scan("https://evil.top/x")
	if a.Stats != b.Stats {
		t.Errorf("scan not deterministic: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Stats.Malicious+a.Stats.Suspicious+a.Stats.Harmless != len(Vendors) {
		t.Errorf("verdict counts don't sum to roster size")
	}
}

func TestScanZeroDetectability(t *testing.T) {
	s := NewStore()
	s.SetDetectability("fresh.top", 0.0)
	rep := s.Scan("https://fresh.top/a")
	if rep.Stats.Malicious != 0 {
		t.Errorf("fresh URL got %d malicious flags", rep.Stats.Malicious)
	}
}

func TestScanHighDetectability(t *testing.T) {
	s := NewStore()
	s.SetDetectability("ancient-phish.com", 1.0)
	rep := s.Scan("https://ancient-phish.com/kit")
	if rep.Stats.Malicious < 5 {
		t.Errorf("maximally detectable URL got only %d malicious flags", rep.Stats.Malicious)
	}
}

func TestScanSubdomainInheritsDomain(t *testing.T) {
	s := NewStore()
	s.SetDetectability("evil.top", 1.0)
	a := s.Scan("https://secure.evil.top/x")
	if a.Stats.Malicious < 5 {
		t.Errorf("subdomain did not inherit detectability: %+v", a.Stats)
	}
}

// Calibration: over a corpus-shaped URL population the detection tiers must
// follow Table 9's shape.
func TestDetectionTierShape(t *testing.T) {
	s := NewStore()
	w := corpus.Generate(corpus.Config{Seed: 31, Messages: 9000})
	var urls []string
	for _, m := range w.Messages {
		if m.FinalURL == "" {
			continue
		}
		if _, ok := w.Domains[m.Domain]; ok {
			s.SetDetectability(m.Domain, w.Domains[m.Domain].Detectability)
			urls = append(urls, m.FinalURL)
		}
	}
	if len(urls) < 2000 {
		t.Fatalf("only %d URLs", len(urls))
	}
	var zero, ge1, ge3, ge5, ge10, ge15, susp1 int
	for _, u := range urls {
		rep := s.Scan(u)
		m := rep.Stats.Malicious
		if m == 0 && rep.Stats.Suspicious == 0 {
			zero++
		}
		if m >= 1 {
			ge1++
		}
		if m >= 3 {
			ge3++
		}
		if m >= 5 {
			ge5++
		}
		if m >= 10 {
			ge10++
		}
		if m >= 15 {
			ge15++
		}
		if rep.Stats.Suspicious >= 1 {
			susp1++
		}
	}
	n := float64(len(urls))
	share := func(c int) float64 { return float64(c) / n }
	// Paper Table 9: 44.9% / 49.6% / 25.9% / 16.3% / 3.7% / 0.3% / 18.0%.
	within := func(name string, got, want, tol float64) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s share = %.3f, want %.3f±%.3f", name, got, want, tol)
		}
	}
	within("undetected", share(zero), 0.449, 0.12)
	within("malicious>=1", share(ge1), 0.496, 0.12)
	within("malicious>=3", share(ge3), 0.259, 0.10)
	within("malicious>=5", share(ge5), 0.163, 0.09)
	within("malicious>=10", share(ge10), 0.037, 0.05)
	if share(ge15) > 0.03 {
		t.Errorf("malicious>=15 share = %.4f, want < 0.03 (paper: 0.3%%)", share(ge15))
	}
	within("suspicious>=1", share(susp1), 0.18, 0.10)
	// Ordering must hold regardless of calibration drift.
	if !(ge1 >= ge3 && ge3 >= ge5 && ge5 >= ge10 && ge10 >= ge15) {
		t.Error("detection tiers not monotone")
	}
}

// GSB's API must detect far fewer URLs than the VT aggregate, and the
// transparency site must block roughly half of the queries (Table 18).
func TestGSBShape(t *testing.T) {
	s := NewStore()
	w := corpus.Generate(corpus.Config{Seed: 32, Messages: 9000})
	var urls []string
	for _, m := range w.Messages {
		if m.FinalURL != "" && m.Domain != "" {
			s.SetDetectability(m.Domain, w.Domains[m.Domain].Detectability)
			urls = append(urls, m.FinalURL)
		}
	}
	var api, vtgsb, blocked, unsafe, partial, nodata int
	for _, u := range urls {
		if s.GSBLookup(u).Matched {
			api++
		}
		if s.Scan(u).Verdicts["GoogleSafebrowsing"] == VerdictMalicious {
			vtgsb++
		}
		res, b := s.Transparency(u)
		if b {
			blocked++
			continue
		}
		switch res.Status {
		case TransparencyUnsafe:
			unsafe++
		case TransparencyPartial:
			partial++
		case TransparencyNoData:
			nodata++
		}
	}
	n := float64(len(urls))
	if float64(api)/n > 0.04 {
		t.Errorf("GSB API detection = %.3f, want ~0.01", float64(api)/n)
	}
	if api >= vtgsb {
		t.Errorf("GSB API (%d) should detect fewer than the stale VT mirror (%d)... inverted", api, vtgsb)
	}
	if b := float64(blocked) / n; b < 0.40 || b > 0.60 {
		t.Errorf("transparency blocked = %.3f, want ~0.50", b)
	}
	queried := n - float64(blocked)
	if u := float64(unsafe) / queried; u < 0.02 || u > 0.20 {
		t.Errorf("transparency unsafe = %.3f of queried, want ~0.08", u)
	}
	if p := float64(partial) / queried; p > 0.15 {
		t.Errorf("transparency partial = %.3f, want ~0.044", p)
	}
	if nd := float64(nodata) / queried; nd < 0.15 || nd > 0.45 {
		t.Errorf("transparency no-data = %.3f, want ~0.285", nd)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	store := NewStore()
	store.SetDetectability("evil.top", 0.95)
	srv := httptest.NewServer(NewServer(store, "vt-key", 0).Handler())
	defer srv.Close()

	c := NewClient(srv.URL, "vt-key")
	ctx := context.Background()

	rep, err := c.Scan(ctx, "https://evil.top/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdicts) != len(Vendors) {
		t.Errorf("verdicts = %d", len(rep.Verdicts))
	}

	if _, err := c.GSBLookup(ctx, "https://evil.top/x"); err != nil {
		t.Fatal(err)
	}

	// Transparency: find one blocked and one queryable URL.
	var sawBlocked, sawOpen bool
	for i := 0; i < 40 && (!sawBlocked || !sawOpen); i++ {
		_, blocked, err := c.Transparency(ctx, fmt.Sprintf("https://evil.top/p%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if blocked {
			sawBlocked = true
		} else {
			sawOpen = true
		}
	}
	if !sawBlocked || !sawOpen {
		t.Errorf("transparency blocking not exercised: blocked=%v open=%v", sawBlocked, sawOpen)
	}
}

func TestHTTPAuth(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), "right", 0).Handler())
	defer srv.Close()
	if _, err := NewClient(srv.URL, "wrong").Scan(context.Background(), "https://x.com"); err == nil {
		t.Fatal("expected auth error")
	}
}

func TestHashUnitRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		u := hashUnit("a", fmt.Sprint(i))
		if u < 0 || u >= 1 {
			t.Fatalf("hashUnit out of range: %v", u)
		}
	}
	if hashUnit("x") != hashUnit("x") {
		t.Error("hashUnit unstable")
	}
	if hashUnit("x", "y") == hashUnit("xy") {
		t.Error("hashUnit ignores separators")
	}
}
