// Benchmark for the key-sharded pipeline: the same seeded corpus is
// enriched through 1, 2, and 4 shard instances — each owning its own
// cache, batchmux windows, and breaker set — and the headline metrics are
// enrichment throughput (records/sec through one batch round) and the
// round-duration p95. Run with:
//
//	go test -run=NONE -bench=ShardedPipeline -benchtime=5x .
//
// When BENCH_SHARD_JSON names a file, BenchmarkShardedPipeline writes a
// machine-readable baseline there (per shard count: records/sec, round
// p95); CI uploads it next to BENCH_enrich.json and BENCH_batch.json.
package smishkit

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"
)

// shardBenchResult is one shard count's scoreboard row.
type shardBenchResult struct {
	Shards        int     `json:"shards"`
	Rounds        int     `json:"rounds"`
	RecordsPerRun int     `json:"records_per_round"`
	RecordsPerSec float64 `json:"records_per_sec"`
	RoundP95Ms    float64 `json:"round_p95_ms"`
}

// runShardRound builds a fresh study at the given shard count (so no round
// inherits a warm cache from the last — every round pays the same misses),
// runs one collect+enrich batch, and returns the batch duration and record
// count. The tier configs mirror the serve daemon's defaults: cache,
// batching, and breakers all on.
func runShardRound(tb testing.TB, shards int) (time.Duration, int) {
	tb.Helper()
	opts := Options{
		Seed:       21,
		Messages:   2000,
		Cache:      &CacheConfig{},
		Batch:      &BatchConfig{},
		Resilience: &ResilienceConfig{},
	}
	if shards > 0 {
		opts.Shards = &ShardConfig{Shards: shards}
	}
	study, err := NewStudy(opts)
	if err != nil {
		tb.Fatal(err)
	}
	defer study.Close()
	reports, err := study.Collect(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	ds, err := study.runBatch(context.Background(), reports)
	if err != nil {
		tb.Fatal(err)
	}
	return time.Since(start), len(ds.Records)
}

// BenchmarkShardedPipeline measures 1/2/4-shard enrichment throughput on
// the facade's seeded corpus. Wall time per round is what the serve loop's
// round p95 sees, so the same number feeds the BENCH_shard.json baseline.
func BenchmarkShardedPipeline(b *testing.B) {
	// Keyed by shard count because the harness runs each sub-benchmark
	// more than once (an N=1 probe before the timed run) — the last, real
	// run wins.
	results := make(map[int]shardBenchResult)
	counts := []int{1, 2, 4}
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			durs := make([]time.Duration, 0, b.N)
			records := 0
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, n := runShardRound(b, shards)
				durs = append(durs, d)
				records += n
				total += d
			}
			b.StopTimer()
			if total <= 0 || len(durs) == 0 {
				return
			}
			recPerSec := float64(records) / total.Seconds()
			sort.Slice(durs, func(a, c int) bool { return durs[a] < durs[c] })
			p95 := durs[(len(durs)*95+99)/100-1]
			b.ReportMetric(recPerSec, "rec/s")
			b.ReportMetric(float64(p95.Milliseconds()), "round-p95-ms")
			results[shards] = shardBenchResult{
				Shards:        shards,
				Rounds:        len(durs),
				RecordsPerRun: records / len(durs),
				RecordsPerSec: recPerSec,
				RoundP95Ms:    float64(p95.Microseconds()) / 1000,
			}
		})
	}
	if len(results) == len(counts) {
		rows := make([]shardBenchResult, len(counts))
		for i, c := range counts {
			rows[i] = results[c]
		}
		b.Logf("throughput: 1-shard=%.0f rec/s, 2-shard=%.0f rec/s, 4-shard=%.0f rec/s",
			rows[0].RecordsPerSec, rows[1].RecordsPerSec, rows[2].RecordsPerSec)
		writeBenchShardJSON(b, rows)
	}
}

// writeBenchShardJSON emits the machine-readable baseline when the
// BENCH_SHARD_JSON environment variable names a destination file.
func writeBenchShardJSON(b *testing.B, results []shardBenchResult) {
	path := os.Getenv("BENCH_SHARD_JSON")
	if path == "" {
		return
	}
	doc := struct {
		Corpus  int                `json:"corpus_messages"`
		Results []shardBenchResult `json:"results"`
	}{2000, results}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Errorf("writing %s: %v", path, err)
	}
}
