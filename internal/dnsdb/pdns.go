package dnsdb

import (
	"context"
	"fmt"
	"net/http"
	"net/netip"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Observation is one passive-DNS sighting: domain resolved to IP during
// [FirstSeen, LastSeen].
type Observation struct {
	Domain    string    `json:"domain"`
	IP        string    `json:"ip"`
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
}

// Store combines the passive-DNS history with the IP->AS database.
type Store struct {
	mu    sync.RWMutex
	byDom map[string][]Observation
	asdb  *RadixTable
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byDom: make(map[string][]Observation), asdb: NewRadixTable()}
}

// AddObservation records a pDNS sighting.
func (s *Store) AddObservation(o Observation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(o.Domain)
	s.byDom[key] = append(s.byDom[key], o)
}

// AddPrefix registers a CIDR prefix with its AS.
func (s *Store) AddPrefix(cidr string, info ASInfo) error {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.asdb.Insert(p, info)
}

// Resolutions returns a domain's sightings, oldest first.
func (s *Store) Resolutions(domain string) []Observation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obs := s.byDom[strings.ToLower(strings.TrimSpace(domain))]
	out := make([]Observation, len(obs))
	copy(out, obs)
	sort.Slice(out, func(i, j int) bool { return out[i].FirstSeen.Before(out[j].FirstSeen) })
	return out
}

// ASOf maps an IP to its autonomous system.
func (s *Store) ASOf(ip string) (ASInfo, error) {
	addr, err := netip.ParseAddr(strings.TrimSpace(ip))
	if err != nil {
		return ASInfo{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.asdb.Lookup(addr)
}

// MaxBulk is the largest accepted bulk-resolution batch.
const MaxBulk = 500

// Server exposes:
//
//	GET  /v1/pdns?domain=x                 -> []Observation
//	GET  /v1/ip?addr=a.b.c.d               -> ASInfo
//	POST /v1/pdns/bulk {"domains": [...]}  -> per-domain results (max 500)
type Server struct {
	store   *Store
	apiKey  string
	limiter *netutil.TokenBucket
}

// NewServer wires the store into the HTTP API.
func NewServer(store *Store, apiKey string, ratePerSec float64) *Server {
	s := &Server{store: store, apiKey: apiKey}
	if ratePerSec > 0 {
		s.limiter = netutil.NewTokenBucket(int(ratePerSec*2)+1, ratePerSec)
	}
	return s
}

// Handler returns the routed, authenticated handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/pdns", func(w http.ResponseWriter, r *http.Request) {
		if !s.allow(w) {
			return
		}
		domain := r.URL.Query().Get("domain")
		if domain == "" {
			netutil.WriteError(w, http.StatusBadRequest, "missing domain parameter")
			return
		}
		netutil.WriteJSON(w, http.StatusOK, s.store.Resolutions(domain))
	})
	mux.HandleFunc("POST /v1/pdns/bulk", func(w http.ResponseWriter, r *http.Request) {
		var req bulkRequest
		if err := netutil.ReadJSON(r, &req); err != nil {
			netutil.WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		if len(req.Domains) == 0 {
			netutil.WriteError(w, http.StatusBadRequest, "empty domain list")
			return
		}
		if len(req.Domains) > MaxBulk {
			netutil.WriteError(w, http.StatusRequestEntityTooLarge, "batch exceeds limit")
			return
		}
		if !s.allowN(w, len(req.Domains)) {
			return
		}
		resp := bulkResponse{Results: make([]bulkItem, len(req.Domains))}
		for i, d := range req.Domains {
			if strings.TrimSpace(d) == "" {
				resp.Results[i] = bulkItem{Domain: d, Error: "empty domain"}
				continue
			}
			resp.Results[i] = bulkItem{Domain: d, Observations: s.store.Resolutions(d)}
		}
		netutil.WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/ip", func(w http.ResponseWriter, r *http.Request) {
		if !s.allow(w) {
			return
		}
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			netutil.WriteError(w, http.StatusBadRequest, "missing addr parameter")
			return
		}
		info, err := s.store.ASOf(addr)
		if err != nil {
			netutil.WriteError(w, http.StatusNotFound, err.Error())
			return
		}
		netutil.WriteJSON(w, http.StatusOK, info)
	})
	return netutil.RequireKey(s.apiKey, mux)
}

func (s *Server) allow(w http.ResponseWriter) bool { return s.allowN(w, 1) }

func (s *Server) allowN(w http.ResponseWriter, n int) bool {
	if s.limiter == nil || s.limiter.AllowN(n) {
		return true
	}
	netutil.WriteRateLimited(w, s.limiter.RetryAfter(n))
	return false
}

// bulkRequest / bulkResponse are the bulk-resolution wire shapes;
// Results[i] answers Domains[i], with a non-empty Error marking that one
// slot as failed without poisoning the batch.
type bulkRequest struct {
	Domains []string `json:"domains"`
}

type bulkItem struct {
	Domain       string        `json:"domain"`
	Observations []Observation `json:"observations"`
	Error        string        `json:"error,omitempty"`
}

type bulkResponse struct {
	Results []bulkItem `json:"results"`
}

// Client consumes the API.
type Client struct {
	API netutil.Client
}

// NewClient builds a client for the service at baseURL.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{API: netutil.Client{BaseURL: baseURL, APIKey: apiKey}}
}

// Instrument records this client's calls, errors, retries, 429s, and
// latency into reg under the "dnsdb" service name. Returns c for chaining.
func (c *Client) Instrument(reg *telemetry.Registry) *Client {
	c.API.Metrics = telemetry.NewClientMetrics(reg, "dnsdb")
	return c
}

// Resolutions fetches a domain's pDNS history.
func (c *Client) Resolutions(ctx context.Context, domain string) ([]Observation, error) {
	var out []Observation
	err := c.API.GetJSON(ctx, "/v1/pdns?domain="+url.QueryEscape(domain), &out)
	return out, err
}

// ResolutionsBatch fetches many domains' pDNS histories in MaxBulk-sized
// batches with partial-result semantics: results[i] and errs[i] answer
// domains[i], and a transport-level failure fans out to every slot of its
// chunk without touching the others.
func (c *Client) ResolutionsBatch(ctx context.Context, domains []string) ([][]Observation, []error) {
	results := make([][]Observation, len(domains))
	errs := make([]error, len(domains))
	for start := 0; start < len(domains); start += MaxBulk {
		end := start + MaxBulk
		if end > len(domains) {
			end = len(domains)
		}
		chunk := domains[start:end]
		var resp bulkResponse
		if err := c.API.PostJSON(ctx, "/v1/pdns/bulk", bulkRequest{Domains: chunk}, &resp); err != nil {
			for i := start; i < end; i++ {
				errs[i] = err
			}
			continue
		}
		for i := range chunk {
			switch {
			case i >= len(resp.Results):
				errs[start+i] = fmt.Errorf("dnsdb: bulk response missing slot %d", i)
			case resp.Results[i].Error != "":
				errs[start+i] = fmt.Errorf("dnsdb: bulk resolutions %q: %s", chunk[i], resp.Results[i].Error)
			default:
				results[start+i] = resp.Results[i].Observations
			}
		}
	}
	return results, errs
}

// ASOf resolves an IP to its AS. A 404 maps to ErrNoRoute.
func (c *Client) ASOf(ctx context.Context, ip string) (ASInfo, error) {
	var out ASInfo
	err := c.API.GetJSON(ctx, "/v1/ip?addr="+url.QueryEscape(ip), &out)
	if netutil.IsStatus(err, http.StatusNotFound) {
		return ASInfo{}, ErrNoRoute
	}
	return out, err
}
