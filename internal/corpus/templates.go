package corpus

import (
	"fmt"
	"strings"
)

// template text uses these slots:
//   {BRAND}  impersonated organization
//   {URL}    the phishing URL (omitted when the message carries none)
//   {AMOUNT} a currency amount
//   {CODE}   a fake tracking/reference code
//   {NAME}   a first name (conversation scams)
//
// Each language carries per-scam-type banks plus lure suffixes. English
// (“en”) is the fallback bank; §5.3 notes scammers frequently use English
// even for non-English markets.

// tpl couples a template string with its author-annotated lure labels —
// the ground truth a human rater would assign to texts rendered from it
// (the role the paper's two annotators played in §3.4).
type tpl struct {
	text  string
	lures []Lure
}

// T builds a lure-annotated template.
func T(text string, lures ...Lure) tpl { return tpl{text: text, lures: lures} }

type langBank struct {
	templates map[ScamType][]tpl
	generic   []tpl // used when a scam type has no bank
	lureTails map[Lure][]string
}

var langBanks = map[string]*langBank{
	"en": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("{BRAND} alert: your account has been suspended due to unusual activity. Verify your details at {URL}"),
				T("Dear customer, your {BRAND} net banking will be blocked today. Update your KYC at {URL}", LureUrgency),
				T("{BRAND}: a new device signed in to your account. If this wasn't you, secure it now at {URL}", LureUrgency),
				T("Your {BRAND} card has been temporarily locked. Confirm your identity: {URL}", LureUrgency),
				T("{BRAND} security notice: unusual login attempt detected. Review at {URL} or your account will be closed", LureUrgency),
			},
			ScamDelivery: {
				T("{BRAND}: your parcel {CODE} is held at our depot. Pay the {AMOUNT} redelivery fee at {URL}"),
				T("{BRAND}: we attempted delivery of parcel {CODE} but no one was home. Reschedule: {URL}", LureDistraction),
				T("Your {BRAND} package could not be delivered due to an incomplete address. Update it at {URL}", LureDistraction),
				T("{BRAND} notice: customs fee of {AMOUNT} is due for shipment {CODE}. Settle now: {URL}", LureUrgency),
			},
			ScamGovernment: {
				T("{BRAND}: you are owed a tax refund of {AMOUNT}. Claim it before it expires at {URL}", LureUrgency, LureNeedGreed),
				T("{BRAND} notice: an outstanding penalty of {AMOUNT} is recorded against you. Pay at {URL} to avoid prosecution", LureUrgency),
				T("Final reminder from {BRAND}: your benefit claim requires verification at {URL}", LureUrgency),
				T("{BRAND}: your vehicle tax payment failed. Update your details at {URL} to avoid a {AMOUNT} fine", LureUrgency),
			},
			ScamTelecom: {
				T("{BRAND}: your latest bill payment failed. Update your payment method at {URL} to avoid disconnection", LureUrgency),
				T("{BRAND}: your SIM card will be deactivated within 24 hours. Re-register at {URL}", LureUrgency),
				T("{BRAND} reward: your loyalty points worth {AMOUNT} expire today. Redeem at {URL}", LureUrgency, LureNeedGreed),
			},
			ScamWrongNumber: {
				T("Hi {NAME}, are we still on for dinner tomorrow night?", LureDistraction),
				T("Hello, is this {NAME}? I got your number from Jenny about the apartment", LureDistraction),
				T("Hey {NAME}! Long time no see, how have you been since the conference?", LureDistraction),
				T("Sorry to bother you, is this {NAME} from the tennis club?", LureDistraction),
			},
			ScamHeyMumDad: {
				T("Hi mum, I dropped my phone down the toilet, this is my new number. Can you text me back on WhatsApp? {URL}", LureDistraction, LureKindness),
				T("Hey dad, my phone broke so I'm using a friend's. I need to pay a bill today, can you help?", LureDistraction, LureKindness, LureUrgency),
				T("Hi mum it's me, I lost my phone. Message me on this number please, it's urgent", LureDistraction, LureKindness, LureUrgency),
			},
			ScamOthers: {
				T("{BRAND}: your subscription payment failed. Renew now at {URL} to keep watching", LureUrgency),
				T("{BRAND}: your account will be deleted due to inactivity. Reactivate at {URL}"),
				T("Part-time job offer: earn {AMOUNT} per day working from your phone. Apply: {URL}", LureNeedGreed),
				T("Your crypto wallet received {AMOUNT}. Confirm the withdrawal at {URL}", LureNeedGreed),
				T("{BRAND} security: unusual sign-in detected. Verify at {URL}"),
			},
			ScamSpam: {
				T("Congratulations! You have won {AMOUNT} in our weekly draw. Thousands have already claimed: {URL}", LureNeedGreed, LureHerd),
				T("Hot deals this weekend only! Up to 80% off everything at {URL}", LureNeedGreed),
				T("Your casino bonus of {AMOUNT} is waiting. Join the winners now: {URL}", LureUrgency, LureNeedGreed, LureHerd),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency:   {" Act within 24 hours.", " This expires today.", " Immediate action required."},
			LureNeedGreed: {" A bonus of {AMOUNT} awaits.", " Claim your refund now."},
			LureHerd:      {" Join 10,000 others who already claimed.", " Everyone is switching."},
		},
	},
	"es": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("{BRAND}: su cuenta ha sido suspendida por actividad inusual. Verifique sus datos en {URL}"),
				T("Estimado cliente, su tarjeta {BRAND} ha sido bloqueada temporalmente. Confirme su identidad: {URL}"),
				T("{BRAND}: un nuevo dispositivo ha accedido a su cuenta. Si no fue usted, asegúrela en {URL}"),
			},
			ScamDelivery: {
				T("{BRAND}: su paquete {CODE} está retenido en nuestro almacén. Pague la tasa de {AMOUNT} en {URL}"),
				T("{BRAND}: no pudimos entregar su pedido por dirección incompleta. Actualícela en {URL}", LureDistraction),
			},
			ScamGovernment: {
				T("{BRAND}: tiene derecho a una devolución de {AMOUNT}. Reclámela antes de que caduque en {URL}", LureNeedGreed),
				T("Aviso de {BRAND}: tiene una multa pendiente de {AMOUNT}. Pague en {URL} para evitar recargos", LureUrgency),
			},
			ScamTelecom: {
				T("{BRAND}: el pago de su factura ha fallado. Actualice su método de pago en {URL} para evitar el corte", LureUrgency),
			},
			ScamWrongNumber: {
				T("Hola, ¿eres {NAME}? Me dio tu número Carmen por lo del piso", LureDistraction),
				T("Hola {NAME}, ¿seguimos quedando mañana para cenar?", LureDistraction),
			},
			ScamHeyMumDad: {
				T("Hola mamá, se me cayó el móvil al agua, este es mi número nuevo. Escríbeme por WhatsApp", LureDistraction, LureKindness),
			},
			ScamOthers: {
				T("{BRAND}: el pago de su suscripción ha fallado. Renueve ahora en {URL}", LureUrgency),
				T("Oferta de trabajo: gane {AMOUNT} al día desde su móvil. Solicite en {URL}", LureNeedGreed),
			},
			ScamSpam: {
				T("¡Enhorabuena! Ha ganado {AMOUNT} en nuestro sorteo semanal. Miles ya lo han reclamado: {URL}", LureNeedGreed, LureHerd),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency:   {" Actúe en 24 horas.", " Caduca hoy."},
			LureNeedGreed: {" Le espera un bono de {AMOUNT}."},
		},
	},
	"nl": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("{BRAND}: uw rekening is geblokkeerd wegens verdachte activiteit. Verifieer uw gegevens op {URL}"),
				T("Beste klant, uw {BRAND} bankpas verloopt vandaag. Vraag een nieuwe aan via {URL}", LureUrgency),
			},
			ScamDelivery: {
				T("{BRAND}: uw pakket {CODE} staat vast bij de douane. Betaal {AMOUNT} invoerkosten via {URL}"),
				T("{BRAND}: wij konden uw pakket niet bezorgen. Plan een nieuwe bezorging via {URL}", LureDistraction),
			},
			ScamGovernment: {
				T("{BRAND}: u heeft recht op een teruggave van {AMOUNT}. Claim deze via {URL}", LureNeedGreed),
				T("{BRAND}: er staat een openstaande boete van {AMOUNT} geregistreerd. Betaal via {URL}"),
			},
			ScamTelecom: {
				T("{BRAND}: uw laatste betaling is mislukt. Werk uw betaalgegevens bij via {URL}"),
			},
			ScamHeyMumDad: {
				T("Hoi mam, mijn telefoon is kapot, dit is mijn nieuwe nummer. Stuur me een appje terug", LureDistraction, LureKindness),
			},
			ScamWrongNumber: {
				T("Hoi, ben jij {NAME}? Ik kreeg je nummer van Lisa over de woning", LureDistraction),
			},
			ScamOthers: {
				T("{BRAND}: uw abonnementsbetaling is mislukt. Verleng nu via {URL}"),
			},
			ScamSpam: {
				T("Gefeliciteerd! U heeft {AMOUNT} gewonnen in onze wekelijkse trekking: {URL}", LureNeedGreed),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency: {" Reageer binnen 24 uur.", " Dit verloopt vandaag."},
		},
	},
	"fr": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("{BRAND} : votre compte a été suspendu suite à une activité inhabituelle. Vérifiez vos informations sur {URL}"),
				T("Cher client, votre carte {BRAND} a été bloquée. Confirmez votre identité : {URL}"),
			},
			ScamDelivery: {
				T("{BRAND} : votre colis {CODE} est en attente. Réglez les frais de {AMOUNT} sur {URL}"),
				T("{BRAND} : livraison impossible, adresse incomplète. Mettez à jour sur {URL}", LureDistraction),
			},
			ScamGovernment: {
				T("{BRAND} : un remboursement de {AMOUNT} vous est dû. Réclamez-le sur {URL}", LureNeedGreed),
				T("{BRAND} : une amende impayée de {AMOUNT} est enregistrée. Payez sur {URL} pour éviter une majoration"),
			},
			ScamTelecom: {
				T("{BRAND} : le paiement de votre facture a échoué. Mettez à jour votre moyen de paiement sur {URL}"),
				T("{BRAND} : votre forfait sera suspendu sous 24h. Régularisez sur {URL}", LureUrgency),
			},
			ScamHeyMumDad: {
				T("Coucou maman, j'ai cassé mon téléphone, voici mon nouveau numéro. Réponds-moi vite", LureDistraction, LureKindness),
			},
			ScamWrongNumber: {
				T("Bonjour, c'est bien {NAME} ? J'ai eu votre numéro par Sophie pour l'appartement", LureDistraction),
			},
			ScamOthers: {
				T("{BRAND} : le paiement de votre abonnement a échoué. Renouvelez sur {URL}"),
			},
			ScamSpam: {
				T("Félicitations ! Vous avez gagné {AMOUNT} à notre tirage hebdomadaire : {URL}", LureNeedGreed),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency: {" Agissez sous 24 heures.", " Expire aujourd'hui."},
		},
	},
	"de": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("{BRAND}: Ihr Konto wurde wegen ungewöhnlicher Aktivität gesperrt. Bestätigen Sie Ihre Daten unter {URL}"),
				T("Sehr geehrter Kunde, Ihre {BRAND} Karte wurde vorübergehend gesperrt. Identität bestätigen: {URL}"),
			},
			ScamDelivery: {
				T("{BRAND}: Ihr Paket {CODE} wartet im Depot. Zahlen Sie die Gebühr von {AMOUNT} unter {URL}"),
				T("{BRAND}: Zustellung fehlgeschlagen, Adresse unvollständig. Aktualisieren unter {URL}", LureDistraction),
			},
			ScamGovernment: {
				T("{BRAND}: Ihnen steht eine Steuererstattung von {AMOUNT} zu. Fordern Sie sie an unter {URL}", LureNeedGreed),
			},
			ScamTelecom: {
				T("{BRAND}: Ihre letzte Zahlung ist fehlgeschlagen. Zahlungsdaten aktualisieren: {URL}"),
			},
			ScamHeyMumDad: {
				T("Hallo Mama, mein Handy ist kaputt, das ist meine neue Nummer. Schreib mir bitte zurück", LureDistraction, LureKindness),
			},
			ScamWrongNumber: {
				T("Hallo, bist du {NAME}? Ich habe deine Nummer von Anna wegen der Wohnung", LureDistraction),
			},
			ScamOthers: {
				T("{BRAND}: Ihre Abozahlung ist fehlgeschlagen. Jetzt verlängern unter {URL}"),
			},
			ScamSpam: {
				T("Glückwunsch! Sie haben {AMOUNT} in unserer Verlosung gewonnen: {URL}", LureNeedGreed),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency: {" Handeln Sie innerhalb von 24 Stunden.", " Läuft heute ab."},
		},
	},
	"it": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("{BRAND}: il suo conto è stato sospeso per attività insolita. Verifichi i suoi dati su {URL}"),
				T("Gentile cliente, la sua carta {BRAND} è stata bloccata. Confermi la sua identità: {URL}"),
			},
			ScamDelivery: {
				T("{BRAND}: il suo pacco {CODE} è in giacenza. Paghi la tassa di {AMOUNT} su {URL}"),
			},
			ScamGovernment: {
				T("{BRAND}: le spetta un rimborso di {AMOUNT}. Lo richieda su {URL}", LureNeedGreed),
			},
			ScamTelecom: {
				T("{BRAND}: il pagamento della sua bolletta non è andato a buon fine. Aggiorni su {URL}"),
			},
			ScamHeyMumDad: {
				T("Ciao mamma, ho rotto il telefono, questo è il mio nuovo numero. Scrivimi appena puoi", LureDistraction, LureKindness),
			},
			ScamWrongNumber: {
				T("Ciao, sei {NAME}? Ho avuto il tuo numero da Giulia per l'appartamento", LureDistraction),
			},
			ScamOthers: {
				T("{BRAND}: il pagamento dell'abbonamento è fallito. Rinnovi ora su {URL}"),
			},
			ScamSpam: {
				T("Congratulazioni! Ha vinto {AMOUNT} alla nostra estrazione settimanale: {URL}", LureNeedGreed),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency: {" Agisca entro 24 ore.", " Scade oggi."},
		},
	},
	"id": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("{BRAND}: rekening Anda diblokir karena aktivitas mencurigakan. Verifikasi data Anda di {URL}"),
			},
			ScamDelivery: {
				T("{BRAND}: paket Anda {CODE} tertahan di gudang. Bayar biaya {AMOUNT} di {URL}"),
			},
			ScamWrongNumber: {
				T("Halo, apakah ini {NAME}? Saya dapat nomor Anda dari Dewi soal kontrakan", LureDistraction),
				T("Hai {NAME}, jadi kita ketemu besok?", LureDistraction),
			},
			ScamOthers: {
				T("Lowongan kerja paruh waktu: dapatkan {AMOUNT} per hari dari ponsel Anda. Daftar: {URL}", LureNeedGreed),
				T("{BRAND}: akun Anda akan dihapus karena tidak aktif. Aktifkan kembali di {URL}"),
			},
			ScamSpam: {
				T("Selamat! Anda memenangkan {AMOUNT} dalam undian mingguan kami: {URL}", LureNeedGreed),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency: {" Segera bertindak dalam 24 jam."},
		},
	},
	"pt": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("{BRAND}: a sua conta foi suspensa por atividade invulgar. Verifique os seus dados em {URL}"),
			},
			ScamDelivery: {
				T("{BRAND}: a sua encomenda {CODE} está retida. Pague a taxa de {AMOUNT} em {URL}"),
			},
			ScamGovernment: {
				T("{BRAND}: tem direito a um reembolso de {AMOUNT}. Reclame em {URL}", LureNeedGreed),
			},
			ScamHeyMumDad: {
				T("Oi mãe, meu celular quebrou, este é meu número novo. Me responde aqui", LureDistraction, LureKindness),
			},
			ScamOthers: {
				T("{BRAND}: o pagamento da sua assinatura falhou. Renove em {URL}"),
			},
			ScamSpam: {
				T("Parabéns! Ganhou {AMOUNT} no nosso sorteio semanal: {URL}", LureNeedGreed),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency: {" Aja dentro de 24 horas."},
		},
	},
	"ja": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("【{BRAND}】お客様の口座で不審な取引を確認しました。こちらでご確認ください {URL}"),
			},
			ScamDelivery: {
				T("【{BRAND}】お荷物のお届けにあがりましたが不在の為持ち帰りました。ご確認ください {URL}"),
			},
			ScamTelecom: {
				T("【{BRAND}】ご利用料金のお支払いが確認できません。至急こちらから {URL}", LureUrgency),
			},
			ScamWrongNumber: {
				T("こんにちは、{NAME}さんですか？先日のセミナーでお会いした件です", LureDistraction),
				T("{NAME}さん、明日の予定はまだ大丈夫ですか？", LureDistraction),
			},
			ScamOthers: {
				T("【{BRAND}】アカウントの確認が必要です。こちらから {URL}"),
			},
			ScamSpam: {
				T("おめでとうございます！{AMOUNT}が当選しました。今すぐ受け取る: {URL}", LureNeedGreed),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency: {"本日中にご対応ください。"},
		},
	},
	"hi": {
		templates: map[ScamType][]tpl{
			ScamBanking: {
				T("प्रिय ग्राहक, आपका {BRAND} खाता निलंबित कर दिया गया है। अपना KYC अपडेट करें {URL}"),
				T("{BRAND}: आपके खाते में संदिग्ध गतिविधि देखी गई। तुरंत सत्यापित करें {URL}", LureUrgency),
			},
			ScamDelivery: {
				T("{BRAND}: आपका पार्सल {CODE} रोक दिया गया है। {AMOUNT} शुल्क का भुगतान करें {URL}"),
			},
			ScamGovernment: {
				T("{BRAND}: आपको {AMOUNT} का रिफंड देय है। यहां दावा करें {URL}", LureNeedGreed),
			},
			ScamTelecom: {
				T("{BRAND}: आपका सिम 24 घंटे में बंद हो जाएगा। पुनः पंजीकरण करें {URL}", LureUrgency),
			},
			ScamOthers: {
				T("घर बैठे कमाएं {AMOUNT} प्रतिदिन। अभी आवेदन करें {URL}", LureNeedGreed),
			},
			ScamSpam: {
				T("बधाई हो! आपने हमारे साप्ताहिक ड्रॉ में {AMOUNT} जीते हैं: {URL}", LureNeedGreed),
			},
		},
		lureTails: map[Lure][]string{
			LureUrgency: {" आज ही कार्रवाई करें।"},
		},
	},
	"cs": {
		templates: map[ScamType][]tpl{
			ScamDelivery: {
				T("{BRAND}: Vaše zásilka {CODE} čeká na doručení. Uhraďte poplatek {AMOUNT} na {URL}"),
			},
			ScamBanking: {
				T("{BRAND}: Váš účet byl pozastaven kvůli podezřelé aktivitě. Ověřte své údaje na {URL}"),
			},
		},
		generic: []tpl{
			T("{BRAND}: vaše platba se nezdařila. Aktualizujte údaje na {URL}"),
		},
	},
	"tl": {
		templates: map[ScamType][]tpl{
			ScamOthers: {
				T("Part-time job: kumita ng {AMOUNT} kada araw gamit ang iyong cellphone. Mag-apply: {URL}", LureNeedGreed),
			},
			ScamSpam: {
				T("Binabati kita! Nanalo ka ng {AMOUNT} sa aming weekly raffle: {URL}", LureNeedGreed),
			},
		},
		generic: []tpl{
			T("{BRAND}: may problema sa iyong account. I-verify dito {URL}"),
		},
	},
	"zh": {
		templates: map[ScamType][]tpl{
			ScamWrongNumber: {
				T("你好，请问是{NAME}吗？我是上次展会认识的小王", LureDistraction),
			},
			ScamOthers: {
				T("【{BRAND}】您的账户存在异常，请尽快核实 {URL}"),
			},
		},
		generic: []tpl{
			T("【{BRAND}】温馨提示：您的账户需要验证，请点击 {URL}"),
		},
	},
	"tr": {
		generic: []tpl{
			T("{BRAND}: hesabınız askıya alındı. Bilgilerinizi doğrulayın {URL}", LureUrgency),
			T("{BRAND}: kargonuz {CODE} beklemede. {AMOUNT} ücreti ödeyin {URL}"),
		},
	},
	"pl": {
		generic: []tpl{
			T("{BRAND}: Twoja paczka {CODE} oczekuje. Dopłać {AMOUNT} na {URL}"),
			T("{BRAND}: Twoje konto zostało zablokowane. Zweryfikuj dane na {URL}"),
		},
	},
	"ru": {
		generic: []tpl{
			T("{BRAND}: ваш аккаунт заблокирован из-за подозрительной активности. Подтвердите данные {URL}"),
			T("Поздравляем! Вы выиграли {AMOUNT} в нашем розыгрыше: {URL}", LureNeedGreed),
		},
	},
	"ko": {
		generic: []tpl{
			T("[{BRAND}] 고객님의 계정에서 비정상 접속이 감지되었습니다. 확인: {URL}"),
			T("[{BRAND}] 택배가 보관 중입니다. 확인해주세요 {URL}"),
		},
	},
	"sv": {
		generic: []tpl{
			T("{BRAND}: ditt paket {CODE} väntar på leverans. Betala avgiften {AMOUNT} på {URL}"),
			T("{BRAND}: ditt konto har spärrats. Verifiera dina uppgifter på {URL}"),
		},
	},
	"hu": {
		generic: []tpl{
			T("{BRAND}: csomagja {CODE} vámkezelésre vár. Fizesse be a {AMOUNT} díjat itt: {URL}"),
		},
	},
	"ro": {
		generic: []tpl{
			T("{BRAND}: contul dvs. a fost suspendat. Verificați datele la {URL}"),
		},
	},
	"uk": {
		generic: []tpl{
			T("{BRAND}: ваш рахунок заблоковано через підозрілу активність. Підтвердіть дані {URL}"),
		},
	},
	"ar": {
		generic: []tpl{
			T("{BRAND}: تم تعليق حسابك بسبب نشاط غير معتاد. تحقق من بياناتك عبر {URL}"),
		},
	},
	"ur": {
		generic: []tpl{
			T("{BRAND}: آپ کا اکاؤنٹ معطل کر دیا گیا ہے۔ اپنی تفصیلات کی تصدیق کریں {URL}"),
		},
	},
	"sw": {
		generic: []tpl{
			T("{BRAND}: akaunti yako imesimamishwa. Thibitisha taarifa zako kwa {URL}"),
		},
	},
	"af": {
		generic: []tpl{
			T("{BRAND}: jou rekening is opgeskort weens verdagte aktiwiteit. Verifieer by {URL}"),
		},
	},
	"si": {
		generic: []tpl{
			T("{BRAND}: ඔබගේ ගිණුම අත්හිටුවා ඇත. විස්තර තහවුරු කරන්න {URL}"),
		},
	}, "da": {generic: []tpl{
		T("{BRAND}: din pakke {CODE} afventer levering. Betal gebyret {AMOUNT} på {URL}", LureUrgency),
	}},
	"no": {generic: []tpl{
		T("{BRAND}: kontoen din er sperret på grunn av mistenkelig aktivitet. Bekreft på {URL}", LureUrgency),
	}},
	"fi": {generic: []tpl{
		T("{BRAND}: pakettisi {CODE} odottaa toimitusta. Maksa {AMOUNT} maksu osoitteessa {URL}", LureUrgency),
	}},
	"el": {generic: []tpl{
		T("{BRAND}: ο λογαριασμός σας έχει ανασταλεί. Επιβεβαιώστε τα στοιχεία σας στο {URL}", LureUrgency),
	}},
	"he": {generic: []tpl{
		T("{BRAND}: חשבונך הושעה עקב פעילות חשודה. אמת את פרטיך בכתובת {URL}", LureUrgency),
	}},
	"th": {generic: []tpl{
		T("{BRAND}: บัญชีของคุณถูกระงับ กรุณายืนยันข้อมูลที่ {URL}", LureUrgency),
	}},
	"vi": {generic: []tpl{
		T("{BRAND}: tài khoản của bạn đã bị tạm khóa. Xác minh thông tin tại {URL}", LureUrgency),
	}},
	"ms": {generic: []tpl{
		T("{BRAND}: akaun anda telah digantung. Sahkan maklumat anda di {URL}", LureUrgency),
	}},
	"bn": {generic: []tpl{
		T("{BRAND}: আপনার অ্যাকাউন্ট স্থগিত করা হয়েছে। বিবরণ যাচাই করুন {URL}", LureUrgency),
	}},
	"ta": {generic: []tpl{
		T("{BRAND}: உங்கள் கணக்கு முடக்கப்பட்டுள்ளது. விவரங்களை உறுதிப்படுத்தவும் {URL}", LureUrgency),
	}},
	"te": {generic: []tpl{
		T("{BRAND}: మీ ఖాతా నిలిపివేయబడింది. వివరాలను ధృవీకరించండి {URL}", LureUrgency),
	}},
	"mr": {generic: []tpl{
		T("{BRAND}: तुमचे खाते निलंबित केले आहे. तपशील सत्यापित करा {URL}", LureUrgency),
	}},
	"fa": {generic: []tpl{
		T("{BRAND}: حساب شما مسدود شده است. اطلاعات خود را تایید کنید {URL}", LureUrgency),
	}},
	"am": {generic: []tpl{
		T("{BRAND}: መለያዎ ታግዷል። ዝርዝሮችዎን ያረጋግጡ {URL}", LureUrgency),
	}},
	"ka": {generic: []tpl{
		T("{BRAND}: თქვენი ანგარიში შეჩერებულია. დაადასტურეთ მონაცემები {URL}", LureUrgency),
	}},
}

// englishGloss renders a rough English version for non-English messages by
// re-generating from the English bank with the same slots. The paper's
// pipeline asks the vision model for a translation; ours substitutes the
// canonical English template of the same scam type.
func englishGloss(rng rngT, scam ScamType, slots map[string]string) string {
	bank := langBanks["en"]
	templates := bank.templates[scam]
	if len(templates) == 0 {
		templates = bank.templates[ScamOthers]
	}
	return fillSlots(templates[rng.Intn(len(templates))].text, slots)
}

// renderText produces the message body for (language, scam type) with the
// given slots. The returned lures are the materialized ground truth: the
// chosen template's author labels plus the labels of any appended tail.
// sampled (from lureProfile) only steers which optional tails get added.
func renderText(rng rngT, lang string, scam ScamType, sampled []Lure, slots map[string]string) (string, []Lure) {
	bank := langBanks[lang]
	if bank == nil {
		bank = langBanks["en"]
	}
	templates := bank.templates[scam]
	if len(templates) == 0 {
		if len(bank.generic) > 0 {
			templates = bank.generic
		} else {
			templates = langBanks["en"].templates[scam]
			if len(templates) == 0 {
				templates = langBanks["en"].templates[ScamOthers]
			}
		}
	}
	chosen := templates[rng.Intn(len(templates))]
	text := fillSlots(chosen.text, slots)
	lureSet := make(map[Lure]bool, len(chosen.lures)+1)
	for _, l := range chosen.lures {
		lureSet[l] = true
	}
	// Append at most one lure tail so texts stay SMS-sized.
	if bank.lureTails != nil {
		for _, l := range sampled {
			if lureSet[l] {
				continue
			}
			tails := bank.lureTails[l]
			if len(tails) > 0 {
				text += " " + fillSlots(tails[rng.Intn(len(tails))], slots)
				lureSet[l] = true
				break
			}
		}
	}
	out := make([]Lure, 0, len(lureSet))
	for _, l := range Lures {
		if lureSet[l] {
			out = append(out, l)
		}
	}
	return strings.TrimSpace(text), out
}

func fillSlots(tpl string, slots map[string]string) string {
	out := tpl
	for k, v := range slots {
		out = strings.ReplaceAll(out, "{"+k+"}", v)
	}
	// Drop orphan slots (e.g. {URL} when the message has none), then tidy.
	for _, slot := range []string{"{BRAND}", "{URL}", "{AMOUNT}", "{CODE}", "{NAME}"} {
		out = strings.ReplaceAll(out, slot, "")
	}
	return strings.Join(strings.Fields(out), " ")
}

// obfuscateBrand applies the evasion tricks of §3.3.6 to a brand mention
// with some probability: leetspeak or inserted punctuation.
func obfuscateBrand(rng rngT, brand string) string {
	if brand == "" || rng.Float64() > 0.12 {
		return brand
	}
	switch rng.Intn(3) {
	case 0: // leetspeak single substitution
		replacements := []struct{ from, to string }{
			{"e", "3"}, {"a", "4"}, {"i", "!"}, {"o", "0"}, {"s", "$"}, {"t", "7"},
		}
		r := replacements[rng.Intn(len(replacements))]
		return strings.Replace(brand, r.from, r.to, 1)
	case 1: // inner punctuation
		if len(brand) > 3 {
			pos := 1 + rng.Intn(len(brand)-2)
			return brand[:pos] + "-" + brand[pos:]
		}
		return brand
	default: // casing mangle
		return strings.ToUpper(brand)
	}
}

// amounts and codes

var currencies = map[string]string{
	"USA": "$", "GBR": "£", "IND": "₹", "AUS": "$", "NZL": "$",
	"JPN": "¥", "CHN": "¥",
}

func fakeAmount(rng rngT, country string) string {
	symbol, ok := currencies[country]
	if !ok {
		symbol = "€"
	}
	cents := []string{".00", ".50", ".99", ".49", ""}
	return fmt.Sprintf("%s%d%s", symbol, 1+rng.Intn(499), cents[rng.Intn(len(cents))])
}

func fakeCode(rng rngT) string {
	const letters = "ABCDEFGHJKLMNPQRSTUVWXYZ"
	b := make([]byte, 2)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return fmt.Sprintf("%s%07d", b, rng.Intn(10000000))
}

var firstNames = []string{
	"Alex", "Sam", "Jamie", "Chris", "Taylor", "Jordan", "Maria", "Anna",
	"David", "Laura", "Kenji", "Yuki", "Dewi", "Putri", "Carlos", "Sofia",
}

func fakeName(rng rngT) string { return firstNames[rng.Intn(len(firstNames))] }

// Languages returns every language code the template bank can emit.
func Languages() []string {
	out := make([]string, 0, len(langBanks))
	for code := range langBanks {
		out = append(out, code)
	}
	return out
}

// othersSubBanks hold subtype-specific template banks for the Others
// category (the §5.2 clusters). Languages without a subtype bank fall back
// to English; subtypes without a bank fall back to the flat Others bank.
var othersSubBanks = map[string]map[OtherSubType][]tpl{
	"en": {
		SubTech: {
			T("{BRAND}: your subscription payment failed. Renew now at {URL} to keep watching", LureUrgency),
			T("{BRAND}: your account will be deleted due to inactivity. Reactivate at {URL}", LureUrgency),
			T("{BRAND} security: unusual sign-in detected. Verify at {URL}"),
			T("{BRAND}: your membership expires today. Extend it at {URL}", LureUrgency),
		},
		SubJob: {
			T("Part-time job offer: earn {AMOUNT} per day working from your phone. Apply: {URL}", LureNeedGreed),
			T("We reviewed your resume and would like to offer flexible remote work, {AMOUNT} daily. Interested?", LureNeedGreed, LureDistraction),
			T("HR here - we still have openings for online product reviewers paying {AMOUNT}/day. Reply YES", LureNeedGreed),
		},
		SubCrypto: {
			T("Your crypto wallet received {AMOUNT}. Confirm the withdrawal at {URL}", LureNeedGreed),
			T("BTC alert: your wallet will be suspended. Validate your seed at {URL}", LureUrgency),
			T("You have {AMOUNT} of unclaimed mining rewards. Claim before settlement closes: {URL}", LureNeedGreed, LureUrgency),
		},
		SubInvestment: {
			T("My trading group made 40% returns last week. I can add one more member, interested?", LureNeedGreed, LureHerd, LureDistraction),
			T("Aunt May said you wanted in on the investment plan - minimum {AMOUNT}, guaranteed returns", LureNeedGreed, LureDistraction),
		},
		SubOTPCallback: {
			T("Your verification code is {CODE}. If you did not request this, call us immediately", LureUrgency),
			T("Security code {CODE} for your account. Did not request it? Call support now", LureUrgency),
		},
	},
	"es": {
		SubJob: {
			T("Oferta de trabajo: gane {AMOUNT} al día desde su móvil. Solicite en {URL}", LureNeedGreed),
		},
		SubCrypto: {
			T("Su billetera cripto recibió {AMOUNT}. Confirme el retiro en {URL}", LureNeedGreed),
		},
		SubTech: {
			T("{BRAND}: el pago de su suscripción ha fallado. Renueve ahora en {URL}", LureUrgency),
		},
	},
	"id": {
		SubJob: {
			T("Lowongan kerja paruh waktu: dapatkan {AMOUNT} per hari dari ponsel Anda. Daftar: {URL}", LureNeedGreed),
		},
		SubInvestment: {
			T("Grup trading kami untung 40% minggu lalu. Mau bergabung? Modal minimal {AMOUNT}", LureNeedGreed, LureHerd),
		},
		SubTech: {
			T("{BRAND}: akun Anda akan dihapus karena tidak aktif. Aktifkan kembali di {URL}", LureUrgency),
		},
	},
}

// otherSubTypeWeights shapes the Others mix the paper's manual sampling
// found: tech impersonation dominates, then job/crypto conversations.
var otherSubTypeWeights = newWeighted[OtherSubType]().
	add(SubTech, 45).
	add(SubJob, 20).
	add(SubCrypto, 15).
	add(SubInvestment, 10).
	add(SubOTPCallback, 10)

// renderOthersText renders an Others message for the given subtype,
// falling back to the flat Others bank when no subtype bank exists.
func renderOthersText(rng rngT, lang string, sub OtherSubType, sampled []Lure, slots map[string]string) (string, []Lure) {
	banks := othersSubBanks[lang]
	if banks == nil {
		banks = othersSubBanks["en"]
	}
	templates := banks[sub]
	if len(templates) == 0 {
		if enBank := othersSubBanks["en"][sub]; len(enBank) > 0 && lang == "en" {
			templates = enBank
		} else {
			return renderText(rng, lang, ScamOthers, sampled, slots)
		}
	}
	chosen := templates[rng.Intn(len(templates))]
	text := fillSlots(chosen.text, slots)
	lureSet := make(map[Lure]bool, len(chosen.lures))
	for _, l := range chosen.lures {
		lureSet[l] = true
	}
	out := make([]Lure, 0, len(lureSet))
	for _, l := range Lures {
		if lureSet[l] {
			out = append(out, l)
		}
	}
	return strings.TrimSpace(text), out
}
