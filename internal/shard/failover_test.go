package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/smishkit/smishkit/internal/telemetry"
)

// failoverGroup builds a 3-shard group with an attached prober; enricher
// fail errors are passed per index (nil = healthy).
func failoverGroup(t *testing.T, fails [3]error) (*Group, *Prober, []*markEnricher, *telemetry.Registry) {
	t.Helper()
	front := mustFront(t)
	marks := make([]*markEnricher, 3)
	enrichers := make([]Enricher, 3)
	for i := range enrichers {
		marks[i] = &markEnricher{index: i, fail: fails[i]}
		enrichers[i] = marks[i]
	}
	reg := telemetry.NewRegistry()
	g, err := NewGroup(front, enrichers, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProber(3, ProbeConfig{}, reg)
	g.AttachProber(p)
	return g, p, marks, reg
}

func TestGroupFailoverRedispatchesFailedShard(t *testing.T) {
	g, p, marks, reg := failoverGroup(t, [3]error{nil, errors.New("shard 1 dead"), nil})
	ds, err := g.Run(context.Background(), testReports(200))
	if err != nil {
		t.Fatalf("Run failed despite two surviving shards: %v", err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("no records")
	}
	// Every record landed on the shard the next-alive mapping names, and
	// the round preserved curation order.
	want := mustFront(t).Curate(testReports(200))
	alive := []bool{true, false, true}
	for i := range ds.Records {
		rec := &ds.Records[i]
		if rec.ID != want.Records[i].ID {
			t.Fatalf("record %d: merged ID %q, curation order wants %q", i, rec.ID, want.Records[i].ID)
		}
		wantShard := g.ring.ShardAlive(KeyOf(rec), alive)
		if got := rec.GSBStatus; got != fmt.Sprintf("shard-%d", wantShard) {
			t.Errorf("record %q: enriched by %q, next-alive mapping says shard %d", rec.ID, got, wantShard)
		}
	}
	if marks[1].seen != 0 {
		t.Errorf("dead shard 1 still enriched %d records", marks[1].seen)
	}
	if !p.Up(0) || p.Up(1) || !p.Up(2) {
		t.Errorf("prober state after failover: up=[%v %v %v], want [true false true]",
			p.Up(0), p.Up(1), p.Up(2))
	}

	st := g.Stats()
	if !st.Failover {
		t.Error("Stats.Failover = false with a prober attached")
	}
	if st.Redispatched == 0 {
		t.Error("Stats.Redispatched = 0 after a shard failed mid-round")
	}
	if st.PerShard[1].Failures != 1 {
		t.Errorf("shard 1 failures = %d, want 1", st.PerShard[1].Failures)
	}
	if h := st.PerShard[1].Healthy; h == nil || *h {
		t.Error("shard 1 not reported unhealthy in Stats")
	}
	snap := reg.Snapshot()
	if snap.Counters["shard.failover.waves"] != 1 {
		t.Errorf("shard.failover.waves = %d, want 1", snap.Counters["shard.failover.waves"])
	}
	if snap.Counters["shard.1.failures"] != 1 {
		t.Errorf("shard.1.failures = %d, want 1", snap.Counters["shard.1.failures"])
	}
}

func TestGroupFailoverErrorsWhenEveryShardDies(t *testing.T) {
	g, _, _, _ := failoverGroup(t, [3]error{
		errors.New("dead 0"), errors.New("dead 1"), errors.New("dead 2"),
	})
	_, err := g.Run(context.Background(), testReports(60))
	if err == nil {
		t.Fatal("Run succeeded with every shard dead")
	}
	if !strings.Contains(err.Error(), "no survivor") {
		t.Errorf("error %q does not name the no-survivor condition", err)
	}
}

func TestGroupFailoverPreRoutesAroundProbeDownShard(t *testing.T) {
	g, p, marks, _ := failoverGroup(t, [3]error{nil, nil, nil})
	p.MarkDown(2)
	ds, err := g.Run(context.Background(), testReports(200))
	if err != nil {
		t.Fatal(err)
	}
	if marks[2].seen != 0 {
		t.Errorf("probe-down shard 2 still enriched %d records", marks[2].seen)
	}
	alive := []bool{true, true, false}
	for i := range ds.Records {
		rec := &ds.Records[i]
		wantShard := g.ring.ShardAlive(KeyOf(rec), alive)
		if got := rec.GSBStatus; got != fmt.Sprintf("shard-%d", wantShard) {
			t.Errorf("record %q: enriched by %q, next-alive mapping says shard %d", rec.ID, got, wantShard)
		}
	}
	if st := g.Stats(); st.Redispatched == 0 {
		t.Error("Stats.Redispatched = 0 after pre-routing around a down shard")
	}
}

func TestGroupFailoverIgnoresAllDownMask(t *testing.T) {
	// A wholly-down probe view is treated as a probe outage: routing goes
	// to the primaries, which succeed.
	g, p, marks, _ := failoverGroup(t, [3]error{nil, nil, nil})
	for i := 0; i < 3; i++ {
		p.MarkDown(i)
	}
	ds, err := g.Run(context.Background(), testReports(120))
	if err != nil {
		t.Fatalf("Run failed on an all-down mask with healthy shards: %v", err)
	}
	total := 0
	for _, m := range marks {
		total += m.seen
	}
	if total != len(ds.Records) {
		t.Errorf("shards saw %d records, want %d", total, len(ds.Records))
	}
}

func TestGroupRestartAccounting(t *testing.T) {
	g, p, _, reg := failoverGroup(t, [3]error{nil, nil, nil})
	p.MarkDown(1)
	if err := g.SetEnricher(1, &markEnricher{index: 1}, true); err != nil {
		t.Fatal(err)
	}
	if !p.Up(1) {
		t.Error("SetEnricher did not mark the shard back up")
	}
	g.NoteRestart(1)
	g.NoteRestart(1)
	st := g.Stats()
	if st.PerShard[1].Restarts != 2 {
		t.Errorf("shard 1 restarts = %d, want 2", st.PerShard[1].Restarts)
	}
	if snap := reg.Snapshot(); snap.Counters["shard.1.restarts"] != 2 {
		t.Errorf("shard.1.restarts counter = %d, want 2", snap.Counters["shard.1.restarts"])
	}
	if err := g.SetEnricher(7, &markEnricher{}, true); err == nil {
		t.Error("SetEnricher accepted an out-of-range index")
	}
	g.NoteRestart(-1) // must not panic
}
