// Package corpus generates the synthetic smishing world every other
// subsystem runs against. The paper measured real traffic mined from five
// forums; offline we substitute a seeded generator whose joint distributions
// (scam mix, languages, brands, sender infrastructure, web infrastructure,
// send times, lures, forum routing) are calibrated to the marginals the
// paper publishes, so the measurement pipeline reproduces each table's
// *shape*. The generator also emits ground truth, which the evaluation
// harness uses to score extractors and annotators.
package corpus

import (
	"time"

	"github.com/smishkit/smishkit/internal/senderid"
)

// ScamType is one of the paper's eight message categories (Table 10).
type ScamType string

// The scam categories from Agarwal et al.'s SMS scam taxonomy.
const (
	ScamBanking     ScamType = "banking"
	ScamDelivery    ScamType = "delivery"
	ScamGovernment  ScamType = "government"
	ScamTelecom     ScamType = "telecom"
	ScamWrongNumber ScamType = "wrong_number"
	ScamHeyMumDad   ScamType = "hey_mum_dad"
	ScamOthers      ScamType = "others"
	ScamSpam        ScamType = "spam"
)

// ScamTypes lists every category in presentation order.
var ScamTypes = []ScamType{
	ScamBanking, ScamDelivery, ScamGovernment, ScamTelecom,
	ScamWrongNumber, ScamHeyMumDad, ScamOthers, ScamSpam,
}

// OtherSubType differentiates the "Others" category (§5.2 marks this as
// future work; the paper's manual sampling found these five clusters).
type OtherSubType string

// Others-category subtypes.
const (
	SubTech        OtherSubType = "tech_impersonation"
	SubJob         OtherSubType = "job_conversation"
	SubCrypto      OtherSubType = "crypto"
	SubInvestment  OtherSubType = "investment_conversation"
	SubOTPCallback OtherSubType = "otp_callback"
)

// OtherSubTypes lists the subtypes in presentation order.
var OtherSubTypes = []OtherSubType{SubTech, SubJob, SubCrypto, SubInvestment, SubOTPCallback}

// Lure is one of Stajano & Wilson's seven persuasion principles (Table 13).
type Lure string

// The seven lure principles.
const (
	LureAuthority   Lure = "authority"
	LureDishonesty  Lure = "dishonesty"
	LureDistraction Lure = "distraction"
	LureNeedGreed   Lure = "need_greed"
	LureHerd        Lure = "herd"
	LureKindness    Lure = "kindness"
	LureUrgency     Lure = "time_urgency"
)

// Lures lists every lure principle in presentation order.
var Lures = []Lure{
	LureAuthority, LureDishonesty, LureDistraction, LureNeedGreed,
	LureHerd, LureKindness, LureUrgency,
}

// Forum identifies one of the five collection sources (Table 1).
type Forum string

// The five forums.
const (
	ForumTwitter    Forum = "twitter"
	ForumReddit     Forum = "reddit"
	ForumSmishtank  Forum = "smishtank"
	ForumSmishingEU Forum = "smishing.eu"
	ForumPastebin   Forum = "pastebin"
)

// Forums lists every forum in Table 1 order.
var Forums = []Forum{ForumTwitter, ForumReddit, ForumSmishtank, ForumSmishingEU, ForumPastebin}

// Sender is a fully resolved sender identity with its HLR ground truth.
type Sender struct {
	Kind       senderid.Kind
	Value      string // raw sender ID as displayed ("+4477...", "SBIBNK", "x@icloud.com")
	Country    string // ISO alpha-3 of the originating MNO ("" for non-phone)
	MNO        string // originating operator ("" for non-phone)
	NumberType senderid.NumberType
	Live       bool // current HLR status at lookup time
}

// Domain is a phishing landing domain with its infrastructure ground truth.
type Domain struct {
	Name          string    // registrable domain, e.g. "sbi-kyc.top"
	TLD           string    // last label
	FreeHost      bool      // hosted on a free website-building platform
	Registrar     string    // sponsoring registrar ("" for free hosting)
	CA            string    // certificate authority issuing its TLS certs
	CertCount     int       // total certs ever issued (renewals inflate this)
	FirstCert     time.Time // first issuance
	IPs           []string  // resolved IPs over the past year ("" slice if never seen in pDNS)
	ASN           int
	ASName        string
	ASCountry     string
	Registered    time.Time
	TakedownAfter time.Duration // how long the page lives
	Detectability float64       // 0..1 how widely AV vendors flag it
	ServesAPK     bool          // drive-by APK for Android UAs (§6)
	APKHash       string        // SHA-256 hex of the dropped APK
	MalwareFamily string        // unified family name (Euphony output)
}

// ShortLink is one entry in a URL shortener's table.
type ShortLink struct {
	Service   string // shortener service host, e.g. "bit.ly"
	Code      string // path code
	Target    string // full destination URL
	CreatedAt time.Time
	TakenDown bool // disabled by the service or the scammer
}

// Short returns the short URL string.
func (l ShortLink) Short() string { return "https://" + l.Service + "/" + l.Code }

// Message is a single smishing (or spam) text with complete ground truth.
type Message struct {
	ID       string
	Campaign string

	ScamType ScamType
	SubType  OtherSubType // set when ScamType == ScamOthers
	Language string       // ISO 639-1 code of the original text
	Brand    string       // impersonated entity ("" for conversation scams)
	Lures    []Lure

	Text      string // original-language SMS body, including any URL
	English   string // English rendering (equals Text when Language == "en")
	URL       string // URL as placed in the text ("" if none); may be a short URL
	FinalURL  string // landing URL after shortener resolution ("" if none)
	Domain    string // registrable domain of FinalURL
	Shortener string // shortener service name ("" if not shortened)
	Sender    Sender
	SentAt    time.Time

	// Reporting metadata.
	Forum          Forum
	ReportedAt     time.Time
	HasScreenshot  bool // reported as an image attachment
	ScreenshotTime bool // the screenshot shows a full timestamp
	RedactSender   bool // reporter censored the sender ID
	RedactURL      bool // reporter censored the URL
}

// HasURL reports whether the message carries a (non-redacted) URL.
func (m Message) HasURL() bool { return m.URL != "" && !m.RedactURL }

// Campaign groups messages sharing actor infrastructure.
type Campaign struct {
	ID       string
	ScamType ScamType
	SubType  OtherSubType // set when ScamType == ScamOthers
	Country  string       // primary target country
	Language string
	Brand    string
	Domains  []string // registrable domains used
	Size     int      // messages sent
	Start    time.Time
}

// World is the complete synthetic ground truth.
type World struct {
	Seed      int64
	Messages  []Message
	Campaigns []Campaign
	Domains   map[string]Domain    // by registrable domain
	Numbers   map[string]Sender    // by E.164 value, phone senders only
	Links     map[string]ShortLink // by short URL "service/code"
	// NoisePosts is how many non-smishing decoy posts each forum carries
	// (awareness posters, unrelated chatter matching the keywords).
	NoisePosts map[Forum]int
}

// Config controls generation scale and epoch.
type Config struct {
	Seed     int64
	Messages int // target message count (paper: 33,869)
	// Epoch bounds for campaign start times; zero values default to the
	// paper's 2017-01-01 .. 2023-09-30 window.
	From, To time.Time
	// NoiseFraction is decoy posts as a fraction of real reports
	// (default 0.12).
	NoiseFraction float64
	// IncludeSBICampaign injects the Aug 3 2021 Indian banking campaign
	// that §5.1 removes from Fig. 2 (default true at >= 5000 messages).
	IncludeSBICampaign bool
}

func (c Config) withDefaults() Config {
	if c.Messages <= 0 {
		c.Messages = 4000
	}
	if c.From.IsZero() {
		c.From = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.To.IsZero() {
		c.To = time.Date(2023, 9, 30, 0, 0, 0, 0, time.UTC)
	}
	if c.NoiseFraction == 0 {
		c.NoiseFraction = 0.12
	}
	return c
}
