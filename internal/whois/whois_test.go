package whois

import (
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"
)

func sample() Record {
	return Record{
		Domain:     "sbi-kyc.top",
		Registrar:  "GoDaddy",
		Registered: time.Date(2021, 7, 20, 0, 0, 0, 0, time.UTC),
		Expires:    time.Date(2022, 7, 20, 0, 0, 0, 0, time.UTC),
		NameServer: "ns1.parkingcrew.net",
		Status:     "clientTransferProhibited",
	}
}

func TestStoreLookupCaseInsensitive(t *testing.T) {
	s := NewStore()
	s.Add(sample())
	if _, ok := s.Lookup("SBI-KYC.TOP"); !ok {
		t.Error("uppercase lookup missed")
	}
	if _, ok := s.Lookup(" sbi-kyc.top "); !ok {
		t.Error("whitespace lookup missed")
	}
	if _, ok := s.Lookup("other.com"); ok {
		t.Error("phantom record")
	}
}

func TestTCPServerRoundTrip(t *testing.T) {
	store := NewStore()
	store.Add(sample())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(store, ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rec, found, err := QueryTCP(ctx, ln.Addr().String(), "sbi-kyc.top")
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("record not found over TCP")
	}
	if rec.Registrar != "GoDaddy" {
		t.Errorf("registrar = %q", rec.Registrar)
	}
	if !rec.Registered.Equal(sample().Registered) {
		t.Errorf("registered = %v", rec.Registered)
	}
	if rec.Domain != "sbi-kyc.top" {
		t.Errorf("domain = %q", rec.Domain)
	}
}

func TestTCPServerNoMatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(NewStore(), ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, found, err := QueryTCP(ctx, ln.Addr().String(), "missing.example")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("phantom match")
	}
}

func TestTCPServerConcurrentQueries(t *testing.T) {
	store := NewStore()
	store.Add(sample())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(store, ln)
	defer srv.Close()

	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, found, err := QueryTCP(ctx, ln.Addr().String(), "sbi-kyc.top")
			if err == nil && !found {
				err = context.DeadlineExceeded
			}
			errs <- err
		}()
	}
	for i := 0; i < 20; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHTTPAPIRoundTrip(t *testing.T) {
	store := NewStore()
	store.Add(sample())
	srv := httptest.NewServer(NewServer(store, "wkey", 0).Handler())
	defer srv.Close()

	c := NewClient(srv.URL, "wkey")
	rec, found, err := c.Lookup(context.Background(), "sbi-kyc.top")
	if err != nil {
		t.Fatal(err)
	}
	if !found || rec.Registrar != "GoDaddy" {
		t.Errorf("rec = %+v found = %v", rec, found)
	}

	_, found, err = c.Lookup(context.Background(), "nope.invalid")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("phantom record over HTTP")
	}
}

func TestHTTPAPIAuth(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), "right", 0).Handler())
	defer srv.Close()
	_, _, err := NewClient(srv.URL, "wrong").Lookup(context.Background(), "x.com")
	if err == nil {
		t.Fatal("expected auth error")
	}
}
