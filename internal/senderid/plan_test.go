package senderid

import "testing"

// Per-country plan coverage: every branch of every modeled numbering plan.
func TestClassifyNumberAllPlans(t *testing.T) {
	cases := []struct {
		country, nsn string
		want         NumberType
	}{
		// Netherlands
		{"NLD", "612345678", TypeMobile},
		{"NLD", "101234567", TypeLandline},
		{"NLD", "800123456", TypeTollFree},
		{"NLD", "901234567", TypePremium},
		{"NLD", "851234567", TypeVOIP},
		{"NLD", "881234567", TypeVOIP},
		{"NLD", "841234567", TypeVoicemail},
		// Spain
		{"ESP", "612345678", TypeMobile},
		{"ESP", "712345678", TypeMobile},
		{"ESP", "912345678", TypeLandline},
		{"ESP", "900123456", TypeTollFree},
		{"ESP", "803123456", TypePremium},
		{"ESP", "806123456", TypePremium},
		{"ESP", "807123456", TypePremium},
		// France
		{"FRA", "612345678", TypeMobile},
		{"FRA", "712345678", TypeMobile},
		{"FRA", "112345678", TypeLandline},
		{"FRA", "412345678", TypeLandline},
		{"FRA", "801234567", TypeTollFree},
		{"FRA", "891234567", TypePremium},
		{"FRA", "912345678", TypeVOIP},
		// Australia
		{"AUS", "412345678", TypeMobile},
		{"AUS", "212345678", TypeLandline},
		{"AUS", "812345678", TypeLandline},
		{"AUS", "512345678", TypeVOIP},
		// Germany
		{"DEU", "15123456789", TypeMobile},
		{"DEU", "1601234567", TypeMobile},
		{"DEU", "1701234567", TypeMobile},
		{"DEU", "800123456", TypeTollFree},
		{"DEU", "900123456", TypePremium},
		{"DEU", "700123456", TypePersonal},
		{"DEU", "321234567", TypeVOIP},
		{"DEU", "301234567", TypeLandline},
		// Belgium
		{"BEL", "412345678", TypeMobile},
		{"BEL", "800123456", TypeTollFree},
		{"BEL", "901234567", TypePremium},
		{"BEL", "21234567", TypeLandline},
		// Indonesia
		{"IDN", "81234567890", TypeMobile},
		{"IDN", "211234567", TypeLandline},
		{"IDN", "511234567", TypeOther},
		// Generic-plan country (Kenya)
		{"KEN", "712345678", TypeMobile},
		{"KEN", "201234567", TypeLandline},
		// UK UAN + premium
		{"GBR", "8412345678", TypeUAN},
		{"GBR", "8712345678", TypeUAN},
	}
	for _, c := range cases {
		got := ClassifyNumber(Number{Country: c.country, NSN: c.nsn})
		if got != c.want {
			t.Errorf("%s %s = %q, want %q", c.country, c.nsn, got, c.want)
		}
	}
}

func TestClassifyNumberLengthBounds(t *testing.T) {
	// Each plan rejects NSNs outside its length window.
	for _, c := range []struct{ country, nsn string }{
		{"NLD", "61234"},
		{"ESP", "6123456789012"},
		{"USA", "123"},
		{"FRA", "6"},
	} {
		if got := ClassifyNumber(Number{Country: c.country, NSN: c.nsn}); got != TypeBadFormat {
			t.Errorf("%s %s = %q, want bad_format", c.country, c.nsn, got)
		}
	}
}

func TestParsePhoneFormattingVariants(t *testing.T) {
	variants := []string{
		"+44 7700 900123",
		"+44-7700-900123",
		"+44 (7700) 900123",
		"+447700900123",
		"0044 7700 900123",
	}
	for _, v := range variants {
		n, err := ParsePhone(v)
		if err != nil {
			t.Errorf("ParsePhone(%q): %v", v, err)
			continue
		}
		if n.E164 != "+447700900123" {
			t.Errorf("ParsePhone(%q).E164 = %q", v, n.E164)
		}
	}
}

func TestNSNRangeFallback(t *testing.T) {
	lo, hi := NSNRange("ZZZ")
	if lo != 7 || hi != 12 {
		t.Errorf("default NSN range = %d..%d", lo, hi)
	}
	lo, hi = NSNRange("GBR")
	if lo != 9 || hi != 10 {
		t.Errorf("GBR NSN range = %d..%d", lo, hi)
	}
}

func TestDialCodeForUnknown(t *testing.T) {
	if got := DialCodeFor("XXX"); got != "" {
		t.Errorf("DialCodeFor(XXX) = %q", got)
	}
	// Shared-plan countries return their canonical (shortest) code.
	if got := DialCodeFor("USA"); got != "1" {
		t.Errorf("DialCodeFor(USA) = %q", got)
	}
}
