package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeWorkerCtl lets a test kill the fake worker a starter handed out.
type fakeWorkerCtl struct {
	exited chan error
	once   sync.Once
}

func (c *fakeWorkerCtl) kill(err error) {
	c.once.Do(func() {
		c.exited <- err
		close(c.exited)
	})
}

// fakeStarter builds goroutine-backed worker handles and remembers the
// controls so the test can kill any incarnation.
type fakeStarter struct {
	mu     sync.Mutex
	starts int
	live   map[int]*fakeWorkerCtl
	fail   map[int]error // index -> error returned instead of a handle
}

func newFakeStarter() *fakeStarter {
	return &fakeStarter{live: make(map[int]*fakeWorkerCtl), fail: make(map[int]error)}
}

func (f *fakeStarter) start(_ context.Context, index int) (WorkerHandle, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.fail[index]; err != nil {
		return WorkerHandle{}, err
	}
	f.starts++
	ctl := &fakeWorkerCtl{exited: make(chan error, 1)}
	f.live[index] = ctl
	return WorkerHandle{
		URL:    fmt.Sprintf("http://fake-%d-gen%d", index, f.starts),
		Exited: ctl.exited,
		Stop:   func() { ctl.kill(nil) },
	}, nil
}

func (f *fakeStarter) kill(index int, err error) {
	f.mu.Lock()
	ctl := f.live[index]
	f.mu.Unlock()
	if ctl != nil {
		ctl.kill(err)
	}
}

func fastSupervisorConfig() SupervisorConfig {
	return SupervisorConfig{InitialBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSupervisorRestartsDeadWorker(t *testing.T) {
	starter := newFakeStarter()
	var (
		mu        sync.Mutex
		reregs    []string
		reregIdxs []int
	)
	cfg := fastSupervisorConfig()
	cfg.OnRestart = func(index int, url string) error {
		mu.Lock()
		reregs = append(reregs, url)
		reregIdxs = append(reregIdxs, index)
		mu.Unlock()
		return nil
	}
	sup, err := NewSupervisor(2, starter.start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	urls, err := sup.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 || urls[0] == urls[1] {
		t.Fatalf("Start returned %v", urls)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); sup.Run(ctx) }()

	starter.kill(0, errors.New("worker crashed"))
	waitFor(t, "worker 0 restart", func() bool { return sup.Restarts()[0] == 1 })
	mu.Lock()
	gotReregs, gotIdxs := len(reregs), append([]int(nil), reregIdxs...)
	var newURL string
	if gotReregs > 0 {
		newURL = reregs[0]
	}
	mu.Unlock()
	if gotReregs != 1 || gotIdxs[0] != 0 {
		t.Fatalf("OnRestart calls: %d for indexes %v, want one for index 0", gotReregs, gotIdxs)
	}
	if newURL == urls[0] {
		t.Errorf("restarted worker reused the old URL %q", newURL)
	}
	if sup.Restarts()[1] != 0 {
		t.Errorf("worker 1 restarted %d times, want 0", sup.Restarts()[1])
	}
	if sup.GaveUp(0) {
		t.Error("worker 0 marked given up after a successful restart")
	}

	cancel()
	<-runDone
	sup.Stop()
}

func TestSupervisorGivesUpAfterBudget(t *testing.T) {
	// Every incarnation dies instantly: the supervisor must stop retrying
	// after MaxRestarts instead of spinning forever.
	var mu sync.Mutex
	starts := 0
	start := func(context.Context, int) (WorkerHandle, error) {
		mu.Lock()
		starts++
		n := starts
		mu.Unlock()
		exited := make(chan error, 1)
		exited <- errors.New("instant death")
		close(exited)
		return WorkerHandle{URL: fmt.Sprintf("http://dead-%d", n), Exited: exited, Stop: func() {}}, nil
	}
	cfg := fastSupervisorConfig()
	cfg.MaxRestarts = 3
	sup, err := NewSupervisor(1, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() { defer close(runDone); sup.Run(ctx) }()
	// Run returns on its own once the only worker is abandoned.
	select {
	case <-runDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after the restart budget was exhausted")
	}
	if !sup.GaveUp(0) {
		t.Error("GaveUp(0) = false after budget exhaustion")
	}
	if got := sup.Restarts()[0]; got != 3 {
		t.Errorf("Restarts()[0] = %d, want 3", got)
	}
}

func TestSupervisorAbandonsOnRestartRejection(t *testing.T) {
	starter := newFakeStarter()
	cfg := fastSupervisorConfig()
	cfg.OnRestart = func(int, string) error { return errors.New("health check failed") }
	sup, err := NewSupervisor(1, starter.start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() { defer close(runDone); sup.Run(ctx) }()
	starter.kill(0, errors.New("crash"))
	select {
	case <-runDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after re-registration was rejected")
	}
	if !sup.GaveUp(0) {
		t.Error("GaveUp(0) = false after OnRestart rejection")
	}
}

func TestSupervisorStartFailureStopsStartedWorkers(t *testing.T) {
	starter := newFakeStarter()
	starter.fail[1] = errors.New("no port")
	sup, err := NewSupervisor(2, starter.start, fastSupervisorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Start(context.Background()); err == nil {
		t.Fatal("Start succeeded with a failing worker")
	}
	// Worker 0 was started before worker 1 failed; Start's cleanup must
	// have stopped it (its Exited channel is closed by kill(nil)).
	starter.mu.Lock()
	ctl := starter.live[0]
	starter.mu.Unlock()
	select {
	case <-ctl.exited:
	case <-time.After(time.Second):
		t.Fatal("worker 0 not stopped after Start failure")
	}
}

func TestSupervisorValidation(t *testing.T) {
	if _, err := NewSupervisor(0, func(context.Context, int) (WorkerHandle, error) {
		return WorkerHandle{}, nil
	}, SupervisorConfig{}); err == nil {
		t.Error("NewSupervisor accepted zero workers")
	}
	if _, err := NewSupervisor(1, nil, SupervisorConfig{}); err == nil {
		t.Error("NewSupervisor accepted a nil starter")
	}
}
