// Chaosdrill runs the same study twice — once clean, once with every
// enrichment service failing 30% of the time behind circuit breakers —
// and diffs the outcome. The point of the resilience layer is that the
// second run still finishes: records lose individual fields (each loss
// recorded on the record), breakers shed load from the worst services,
// and the report still renders from what survived.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"github.com/smishkit/smishkit"
)

func main() {
	log.SetFlags(0)

	const seed, messages = 21, 1500
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	clean := runStudy(ctx, smishkit.Options{Seed: seed, Messages: messages})
	fmt.Printf("clean run: %d records, %d degraded\n\n", len(clean.Records), countDegraded(clean))

	// The chaos run reuses the seed: same world, plus a deterministic 30%
	// fault mix on every service. Breakers wrap the (absent) cache slot
	// outside-in; budgets bound hung calls.
	chaotic := runStudyWithStats(ctx, smishkit.Options{
		Seed:     seed,
		Messages: messages,
		Faults: &smishkit.FaultConfig{
			Seed: seed,
			Default: smishkit.ServiceFaults{
				ErrorRate: 0.15,
				Rate5xx:   0.08,
				Rate429:   0.05,
				HangRate:  0.02,
				SlowRate:  0.10,
				Latency:   time.Millisecond,
			},
		},
		Resilience: &smishkit.ResilienceConfig{
			Breaker:      smishkit.BreakerConfig{FailureThreshold: 5, OpenTimeout: 100 * time.Millisecond},
			CallTimeout:  500 * time.Millisecond,
			RecordBudget: 10 * time.Second,
		},
	})

	fmt.Printf("chaos run: %d records, %d degraded\n\n", len(chaotic.Records), countDegraded(chaotic))

	// Which fields were lost, and to which services?
	lost := map[string]int{}
	for _, r := range chaotic.Records {
		for _, e := range r.EnrichmentErrors {
			lost[e.Service+" -> "+e.Field]++
		}
	}
	keys := make([]string, 0, len(lost))
	for k := range lost {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("fields lost to failures:")
	for _, k := range keys {
		fmt.Printf("  %-22s %4d\n", k, lost[k])
	}
	fmt.Println()
}

func runStudy(ctx context.Context, opts smishkit.Options) *smishkit.Dataset {
	study, err := smishkit.NewStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()
	ds, err := study.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}

func runStudyWithStats(ctx context.Context, opts smishkit.Options) *smishkit.Dataset {
	study, err := smishkit.NewStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()
	ds, err := study.Run(ctx)
	if err != nil {
		log.Fatal(err) // a 30% outage must degrade, not abort
	}
	if err := smishkit.WriteStats(os.Stdout, study.Stats(), smishkit.SectionResilience); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	return ds
}

func countDegraded(ds *smishkit.Dataset) int {
	n := 0
	for _, r := range ds.Records {
		if r.Degraded() {
			n++
		}
	}
	return n
}
