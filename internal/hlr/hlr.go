// Package hlr simulates the Home Location Register lookup service the paper
// used (HLRLookup.com, §3.3.1). The service holds an authoritative registry
// of MSISDNs with their number type, original and current mobile network
// operator, origin country, and live status; unknown but well-formed numbers
// fall back to numbering-plan classification. The client mirrors the
// one-time bulk lookup workflow the paper ran over its 12,299 numbers.
package hlr

import (
	"strings"
	"sync"

	"github.com/smishkit/smishkit/internal/senderid"
)

// Status is the reachability state of a subscriber number.
type Status string

// HLR statuses: live numbers are currently registered; inactive numbers are
// provisioned but unreachable; dead numbers were never issued or have been
// retired; undetermined covers spoofed/malformed sender IDs.
const (
	StatusLive         Status = "live"
	StatusInactive     Status = "inactive"
	StatusDead         Status = "dead"
	StatusUndetermined Status = "undetermined"
)

// Record is the authoritative registry entry for one MSISDN.
type Record struct {
	MSISDN      string              `json:"msisdn"`
	NumberType  senderid.NumberType `json:"number_type"`
	OriginalMNO string              `json:"original_mno"`
	CurrentMNO  string              `json:"current_mno"`
	Country     string              `json:"country"` // ISO alpha-3
	Status      Status              `json:"status"`
}

// Result is what a lookup returns. Source distinguishes registry hits from
// plan-rule fallbacks ("registry" vs "plan").
type Result struct {
	Record
	Known  bool   `json:"known"`
	Source string `json:"source"`
}

// Store is the in-memory HLR database. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	records map[string]Record
}

// NewStore returns an empty registry.
func NewStore() *Store {
	return &Store{records: make(map[string]Record)}
}

// Add upserts a record keyed by normalized MSISDN.
func (s *Store) Add(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[normalize(r.MSISDN)] = r
}

// Len returns the registry size.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Lookup resolves one MSISDN. Registry hits return authoritative data;
// misses fall back to E.164 parsing plus numbering-plan classification,
// which mirrors how commercial HLR providers respond for unknown ranges.
func (s *Store) Lookup(msisdn string) Result {
	key := normalize(msisdn)
	s.mu.RLock()
	rec, ok := s.records[key]
	s.mu.RUnlock()
	if ok {
		return Result{Record: rec, Known: true, Source: "registry"}
	}
	n, err := senderid.ParsePhone(msisdn)
	if err != nil {
		return Result{
			Record: Record{MSISDN: msisdn, NumberType: senderid.TypeBadFormat, Status: StatusUndetermined},
			Source: "plan",
		}
	}
	return Result{
		Record: Record{
			MSISDN:     n.E164,
			NumberType: senderid.ClassifyNumber(n),
			Country:    n.Country,
			Status:     StatusUndetermined,
		},
		Source: "plan",
	}
}

// normalize strips formatting so "+44 7700 900123" and "+447700900123"
// address the same record.
func normalize(msisdn string) string {
	var b strings.Builder
	for _, r := range msisdn {
		if r >= '0' && r <= '9' || r == '+' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
