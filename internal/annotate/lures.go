package annotate

import (
	"strings"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/textnorm"
)

// lureLexicons hold multilingual trigger phrases per Stajano–Wilson
// principle (Table 13). Matched against folded text.
var lureLexicons = map[corpus.Lure][]string{
	corpus.LureUrgency: {
		"24 hours", "today", "immediately", "now", "expires", "final reminder",
		"within", "avoid disconnection", "temporarily", "urgent", "asap",
		"24 horas", "caduca", "hoy", "ahora",
		"24 uur", "vandaag", "verloopt",
		"24 heures", "sous 24h", "aujourd'hui", "expire",
		"24 stunden", "heute", "läuft heute ab", "lauft heute ab",
		"24 ore", "oggi", "scade",
		"24 jam", "segera",
		"24 horas", "aja dentro",
		"आज", "तुरंत", "24 घंटे",
		"本日中", "至急",
	},
	corpus.LureNeedGreed: {
		"refund", "reward", "prize", "bonus", "win", "won", "earn", "free",
		"loyalty points", "claim", "owed",
		"devolución", "devolucion", "gane", "ganado", "bono",
		"teruggave", "gewonnen",
		"remboursement", "gagné", "gagne",
		"erstattung", "gewonnen", "steuererstattung",
		"rimborso", "vinto",
		"dapatkan", "memenangkan",
		"reembolso", "ganhou",
		"रिफंड", "कमाएं", "जीते",
		"当選",
	},
	corpus.LureKindness: {
		"hi mum", "hey mum", "hi mom", "hi dad", "hey dad", "can you help",
		"help me", "need your help",
		"hola mamá", "hola mama",
		"hoi mam",
		"coucou maman",
		"hallo mama",
		"ciao mamma",
		"oi mãe", "oi mae",
	},
	corpus.LureDistraction: {
		"wrong number", "is this", "are we still", "long time no see",
		"got your number", "about the apartment", "from the tennis",
		"no one was home", "incomplete address", "sorry to bother",
		"eres", "quedando",
		"ben jij",
		"c'est bien",
		"bist du",
		"apakah ini",
		"さんですか", "予定はまだ",
		"请问是",
	},
	corpus.LureHerd: {
		"thousands have", "join 10,000", "everyone is", "others who already",
		"winners", "miles ya lo han",
		"join the winners",
	},
	corpus.LureDishonesty: {
		"off the books", "no questions asked", "between us", "don't tell",
	},
}

// authorityScams presume a trusted-entity framing: when such a message
// names a brand (or claims official standing), the authority principle
// applies — the annotation prompt's "references to legitimate entities".
var authorityScams = map[corpus.ScamType]bool{
	corpus.ScamBanking:    true,
	corpus.ScamDelivery:   true,
	corpus.ScamGovernment: true,
	corpus.ScamTelecom:    true,
}

// DetectLures labels a message with its persuasion principles, given the
// already-detected scam type and brand.
func DetectLures(text string, scam corpus.ScamType, brand string) []corpus.Lure {
	folded := textnorm.Fold(text)
	set := make(map[corpus.Lure]bool)
	for lure, phrases := range lureLexicons {
		for _, p := range phrases {
			if strings.Contains(folded, p) {
				set[lure] = true
				break
			}
		}
	}
	if authorityScams[scam] && brand != "" {
		set[corpus.LureAuthority] = true
	}
	// "Hey mum/dad" and wrong-number scams distract by construction: the
	// scenario itself is the unrelated detail.
	if scam == corpus.ScamHeyMumDad || scam == corpus.ScamWrongNumber {
		set[corpus.LureDistraction] = true
	}
	out := make([]corpus.Lure, 0, len(set))
	for _, l := range corpus.Lures { // fixed order for determinism
		if set[l] {
			out = append(out, l)
		}
	}
	return out
}
