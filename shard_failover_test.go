package smishkit

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTestWorkers launches n shard workers as goroutines (the same
// RunShardWorker seam smishctl's -shard-worker mode uses) and returns
// their URLs plus a per-worker kill switch. The cleanup stops survivors.
func startTestWorkers(t *testing.T, study *Study, n int) (urls []string, kill []context.CancelFunc) {
	t.Helper()
	urls = make([]string, n)
	kill = make([]context.CancelFunc, n)
	var wg sync.WaitGroup
	t.Cleanup(func() {
		for _, k := range kill {
			k()
		}
		wg.Wait()
	})
	for i := 0; i < n; i++ {
		spec, err := json.Marshal(study.ShardWorkerSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		wctx, cancel := context.WithCancel(context.Background())
		kill[i] = cancel
		pr, pw := io.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pw.Close()
			_ = RunShardWorker(wctx, bytes.NewReader(spec), pw)
		}()
		line, err := bufio.NewReader(pr).ReadString('\n')
		if err != nil {
			t.Fatalf("worker %d printed no URL: %v", i, err)
		}
		urls[i] = strings.TrimSpace(line)
	}
	return urls, kill
}

// TestShardFailoverDeterminism is the lifecycle layer's acceptance test:
// kill one of three workers, and the round must still complete — with the
// dead shard's records re-dispatched to survivors — producing a dataset
// and /query/summary byte-identical to the unsharded baseline.
func TestShardFailoverDeterminism(t *testing.T) {
	baseline := runStudy(t, nil)

	const shards = 3
	study, err := NewStudy(Options{Seed: 7, Messages: 600, Shards: &ShardConfig{
		Shards:        shards,
		Failover:      true,
		WorkerTimeout: 10 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	urls, kill := startTestWorkers(t, study, shards)
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ccancel()
	if err := study.ConnectShardWorkers(cctx, urls); err != nil {
		t.Fatal(err)
	}

	// Kill worker 1 before the round: its dispatch fails (connection
	// refused), the group marks it down, and its routed subset slides to
	// the ring's next-alive shards.
	kill[1]()

	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatalf("Run did not survive one dead worker of three: %v", err)
	}
	raw, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseline, raw) {
		t.Error("failover dataset differs from unsharded baseline")
	}
	if s0, s1 := summaryBytes(t, baseline), summaryBytes(t, raw); !bytes.Equal(s0, s1) {
		t.Errorf("/query/summary diverges after failover:\n%s\n----\n%s", s0, s1)
	}

	st := study.ShardStats()
	if st == nil {
		t.Fatal("ShardStats nil")
	}
	if !st.Failover {
		t.Error("ShardStats.Failover = false with Shards.Failover on")
	}
	if st.Redispatched == 0 {
		t.Error("ShardStats.Redispatched = 0 after a worker died mid-round")
	}
	if st.PerShard[1].Failures == 0 {
		t.Error("dead shard 1 shows zero failures")
	}
	if h := st.PerShard[1].Healthy; h == nil || *h {
		t.Error("dead shard 1 not reported unhealthy")
	}
	if h := st.PerShard[0].Healthy; h == nil || !*h {
		t.Error("surviving shard 0 not reported healthy")
	}
}

// TestShardSupervisorRestart pins the supervisor loop end to end: a killed
// worker is restarted with a fresh URL, re-registered with the routing
// group (ShardStats counts the restart), and the next round runs through
// the new worker, byte-identical to the unsharded baseline.
func TestShardSupervisorRestart(t *testing.T) {
	baseline := runStudy(t, nil)

	const shards = 2
	study, err := NewStudy(Options{Seed: 7, Messages: 600, Shards: &ShardConfig{
		Shards:   shards,
		Failover: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	// Goroutine-backed starter: each incarnation is a RunShardWorker
	// goroutine with its own cancel, exactly what smishctl does with
	// processes.
	var (
		mu    sync.Mutex
		stops = make(map[int]context.CancelFunc)
	)
	starter := func(_ context.Context, index int) (ShardWorkerHandle, error) {
		spec, err := json.Marshal(study.ShardWorkerSpec(index))
		if err != nil {
			return ShardWorkerHandle{}, err
		}
		wctx, stop := context.WithCancel(context.Background())
		pr, pw := io.Pipe()
		exited := make(chan error, 1)
		go func() {
			err := RunShardWorker(wctx, bytes.NewReader(spec), pw)
			pw.Close()
			exited <- err
			close(exited)
		}()
		line, err := bufio.NewReader(pr).ReadString('\n')
		if err != nil {
			stop()
			return ShardWorkerHandle{}, fmt.Errorf("worker %d printed no URL: %w", index, err)
		}
		mu.Lock()
		stops[index] = stop
		mu.Unlock()
		return ShardWorkerHandle{URL: strings.TrimSpace(line), Exited: exited, Stop: stop}, nil
	}

	sup, err := study.StartShardSupervisor(context.Background(), starter, ShardSupervisorConfig{
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancelRun := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); sup.Run(runCtx) }()
	defer func() {
		cancelRun()
		<-runDone
		sup.Stop()
	}()

	// Kill worker 0; the supervisor restarts it and re-registers the new
	// URL before the round below runs.
	mu.Lock()
	stops[0]()
	mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := study.ShardStats(); st != nil && st.PerShard[0].Restarts == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker 0 never restarted; stats: %+v", study.ShardStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := sup.Restarts()[0]; got != 1 {
		t.Errorf("supervisor restarts[0] = %d, want 1", got)
	}
	if sup.GaveUp(0) {
		t.Error("supervisor gave up on worker 0 after one restart")
	}

	// The round runs through the restarted worker's fresh URL.
	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatalf("Run after restart: %v", err)
	}
	raw, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseline, raw) {
		t.Error("post-restart dataset differs from unsharded baseline")
	}
	st := study.ShardStats()
	if st.PerShard[0].Restarts != 1 {
		t.Errorf("shard 0 restarts = %d, want 1", st.PerShard[0].Restarts)
	}
	if h := st.PerShard[0].Healthy; h == nil || !*h {
		t.Error("restarted shard 0 not reported healthy")
	}
}

func TestShardFailoverConfigValidation(t *testing.T) {
	bad := []Options{
		{Shards: &ShardConfig{Shards: 2, ProbeInterval: time.Second}}, // probe knob without Failover
		{Shards: &ShardConfig{Shards: 2, ProbeTimeout: time.Second}},  // probe knob without Failover
		{Shards: &ShardConfig{Shards: 2, Failover: true, ProbeInterval: -time.Second}},
		{Shards: &ShardConfig{Shards: 2, Failover: true, ProbeTimeout: -time.Second}},
		{Shards: &ShardConfig{Shards: 2, WorkerTimeout: -time.Second}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o.Shards)
		}
	}
	ok := Options{Shards: &ShardConfig{
		Shards: 2, Failover: true,
		ProbeInterval: 500 * time.Millisecond, ProbeTimeout: 100 * time.Millisecond,
		WorkerTimeout: time.Minute,
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected a sane failover config: %v", err)
	}
	// A supervisor needs a sharded study.
	plain, err := NewStudy(Options{Seed: 2, Messages: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.StartShardSupervisor(context.Background(), func(context.Context, int) (ShardWorkerHandle, error) {
		return ShardWorkerHandle{}, nil
	}, ShardSupervisorConfig{}); err == nil {
		t.Error("StartShardSupervisor accepted an unsharded study")
	}
}
