package extract

import (
	"errors"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/screenshot"
	"github.com/smishkit/smishkit/internal/senderid"
)

var ref = time.Date(2023, 6, 10, 18, 0, 0, 0, time.UTC)

func TestParseTimestampFullFormats(t *testing.T) {
	cases := []struct {
		in   string
		want time.Time
	}{
		{"Tue, 2 May 2023 14:32", time.Date(2023, 5, 2, 14, 32, 0, 0, time.UTC)},
		{"2023-05-02 14:32", time.Date(2023, 5, 2, 14, 32, 0, 0, time.UTC)},
		{"May 2, 2023 2:32 PM", time.Date(2023, 5, 2, 14, 32, 0, 0, time.UTC)},
		{"02/05/2023 14:32", time.Date(2023, 5, 2, 14, 32, 0, 0, time.UTC)},
		{"02.05.2023 14:32", time.Date(2023, 5, 2, 14, 32, 0, 0, time.UTC)},
		{"2 May 2023 14:32", time.Date(2023, 5, 2, 14, 32, 0, 0, time.UTC)},
	}
	for _, c := range cases {
		pt, err := ParseTimestamp(c.in, ref)
		if err != nil {
			t.Errorf("ParseTimestamp(%q): %v", c.in, err)
			continue
		}
		if !pt.HasDate {
			t.Errorf("%q: HasDate = false", c.in)
		}
		if !pt.Time.Equal(c.want) {
			t.Errorf("%q -> %v, want %v", c.in, pt.Time, c.want)
		}
	}
}

func TestParseTimestampClockOnly(t *testing.T) {
	pt, err := ParseTimestamp("14:32", ref)
	if err != nil {
		t.Fatal(err)
	}
	if pt.HasDate {
		t.Error("clock-only stamp claims a date")
	}
	if pt.Time.Hour() != 14 || pt.Time.Day() != ref.Day() {
		t.Errorf("time = %v", pt.Time)
	}
	pt, err = ParseTimestamp("2:32 PM", ref)
	if err != nil || pt.Time.Hour() != 14 {
		t.Errorf("12h clock: %v %v", pt, err)
	}
}

func TestParseTimestampRelative(t *testing.T) {
	pt, err := ParseTimestamp("Yesterday 09:15", ref)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.HasDate {
		t.Error("relative stamp lost its date")
	}
	want := time.Date(2023, 6, 9, 9, 15, 0, 0, time.UTC)
	if !pt.Time.Equal(want) {
		t.Errorf("yesterday = %v, want %v", pt.Time, want)
	}
	pt, err = ParseTimestamp("Today, 10:00", ref)
	if err != nil || pt.Time.Day() != 10 {
		t.Errorf("today = %v, %v", pt, err)
	}
}

func TestParseTimestampYearless(t *testing.T) {
	pt, err := ParseTimestamp("Sat 10 Jun 12:30", ref)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Time.Year() != 2023 {
		t.Errorf("year = %d", pt.Time.Year())
	}
	// A yearless date after ref rolls back a year.
	pt, err = ParseTimestamp("25 Dec, 23:59", ref)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Time.Year() != 2022 {
		t.Errorf("future yearless year = %d, want 2022", pt.Time.Year())
	}
}

func TestParseTimestampGarbage(t *testing.T) {
	for _, bad := range []string{"", "not a time", "99:99", "snakes"} {
		if _, err := ParseTimestamp(bad, ref); !errors.Is(err, ErrUnparsable) {
			t.Errorf("ParseTimestamp(%q) err = %v", bad, err)
		}
	}
}

// Every format the screenshot renderer emits must be parsable.
func TestParseTimestampCoversRendererFormats(t *testing.T) {
	base := time.Date(2023, 5, 2, 14, 32, 0, 0, time.UTC)
	for sec := 0; sec < 4; sec++ {
		spec := screenshot.Spec{
			Sender:    "X",
			Timestamp: base.Add(time.Duration(sec) * time.Second),
			Body:      "hello",
			Theme:     screenshot.Themes[0],
		}
		img := screenshot.Render(spec)
		stamp := img.TruthTimestamp
		pt, err := ParseTimestamp(stamp, ref)
		if err != nil {
			t.Errorf("renderer stamp %q unparsable: %v", stamp, err)
			continue
		}
		if !pt.HasDate {
			t.Errorf("stamp %q lost its date", stamp)
		}
		if pt.Time.Hour() != 14 || pt.Time.Minute() != 32 {
			t.Errorf("stamp %q -> %v", stamp, pt.Time)
		}
	}
	// Time-only renderer format.
	spec := screenshot.Spec{Sender: "X", Timestamp: base, TimeOnly: true, Body: "hi", Theme: screenshot.Themes[0]}
	img := screenshot.Render(spec)
	pt, err := ParseTimestamp(img.TruthTimestamp, ref)
	if err != nil || pt.HasDate {
		t.Errorf("time-only stamp: %+v, %v", pt, err)
	}
}

func TestAssemble(t *testing.T) {
	f := Assemble(
		"SBI alert: verify at https://sbi-kyc.top/verify now",
		"+919876543210",
		"2023-05-02 14:32",
		"",
		ref,
	)
	if f.SenderKind != senderid.KindPhone {
		t.Errorf("sender kind = %s", f.SenderKind)
	}
	if len(f.URLs) != 1 || f.PrimaryURL() != "https://sbi-kyc.top/verify" {
		t.Errorf("urls = %v", f.URLs)
	}
	if !f.Timestamp.HasDate {
		t.Error("timestamp lost")
	}
}

func TestAssembleMergesExtractorURL(t *testing.T) {
	f := Assemble("pay the fee now", "DHL", "", "hxxps://dhl-fee[.]top/pay", ref)
	if len(f.URLs) != 1 || f.URLs[0] != "https://dhl-fee.top/pay" {
		t.Errorf("urls = %v", f.URLs)
	}
	if f.SenderKind != senderid.KindAlphanumeric {
		t.Errorf("kind = %s", f.SenderKind)
	}
}

func TestAssembleDedupsURLs(t *testing.T) {
	f := Assemble("visit https://a.com/x", "X", "", "https://a.com/x", ref)
	if len(f.URLs) != 1 {
		t.Errorf("urls = %v", f.URLs)
	}
}

func TestAssembleEmpty(t *testing.T) {
	f := Assemble("", "", "", "", ref)
	if f.PrimaryURL() != "" || f.SenderKind != senderid.KindUnknown {
		t.Errorf("fields = %+v", f)
	}
}
