package netutil

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTokenBucketBasics(t *testing.T) {
	b := NewTokenBucket(2, 1000)
	if !b.Allow() || !b.Allow() {
		t.Fatal("full bucket refused tokens")
	}
	// Freeze the clock: the third take must fail.
	frozen := time.Now()
	b.SetClock(func() time.Time { return frozen })
	if b.Allow() {
		t.Fatal("empty bucket granted a token")
	}
	// Advance clock: tokens refill.
	frozen = frozen.Add(10 * time.Millisecond) // 1000/s * 10ms = 10 tokens, capped at 2
	if !b.AllowN(2) {
		t.Fatal("refilled bucket refused tokens")
	}
}

func TestTokenBucketRetryAfter(t *testing.T) {
	b := NewTokenBucket(1, 10)
	frozen := time.Now()
	b.SetClock(func() time.Time { return frozen })
	b.Allow()
	after := b.RetryAfter(1)
	if after <= 0 || after > 200*time.Millisecond {
		t.Errorf("RetryAfter = %v, want ~100ms", after)
	}
	if b.RetryAfter(0) != 0 {
		t.Error("RetryAfter(0) != 0")
	}
}

func TestClientGetJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Api-Key") != "sekrit" {
			WriteError(w, http.StatusUnauthorized, "no key")
			return
		}
		WriteJSON(w, http.StatusOK, map[string]string{"hello": "world"})
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, APIKey: "sekrit"}
	var out map[string]string
	if err := c.GetJSON(context.Background(), "/x", &out); err != nil {
		t.Fatal(err)
	}
	if out["hello"] != "world" {
		t.Errorf("body = %v", out)
	}
}

func TestClientRetriesOn429(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			WriteRateLimited(w, time.Millisecond)
			return
		}
		WriteJSON(w, http.StatusOK, map[string]int{"ok": 1})
	}))
	defer srv.Close()

	c := &Client{
		BaseURL: srv.URL,
		Backoff: time.Millisecond,
		Sleep:   func(ctx context.Context, d time.Duration) error { return nil },
	}
	var out map[string]int
	if err := c.GetJSON(context.Background(), "/y", &out); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
}

// TestClientHonorsRetryAfter pins the contract the package doc promises:
// when a 429 carries Retry-After, the next sleep is max(Retry-After,
// computed backoff), observed through the swappable Sleep clock.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			WriteError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		WriteJSON(w, http.StatusOK, map[string]int{"ok": 1})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL: srv.URL,
		Backoff: time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	if err := c.GetJSON(context.Background(), "/ra", nil); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(slept))
	}
	// Retry-After: 7 dominates the ~1.5ms computed backoff exactly.
	if slept[0] != 7*time.Second {
		t.Errorf("slept %v, want 7s from Retry-After", slept[0])
	}
}

// TestClientRetryAfterBelowBackoffKeepsBackoff: a tiny Retry-After must not
// shrink the exponential floor.
func TestClientRetryAfterBelowBackoffKeepsBackoff(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			WriteRateLimited(w, 0) // Retry-After: 1
			return
		}
		WriteJSON(w, http.StatusOK, map[string]int{"ok": 1})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL: srv.URL,
		Backoff: 10 * time.Second,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	if err := c.GetJSON(context.Background(), "/ra-low", nil); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] < 10*time.Second {
		t.Errorf("slept %v, want >= 10s computed backoff", slept)
	}
}

// TestClientRetryAfterMalformed: unparseable header values fall through to
// the computed backoff instead of stalling or panicking.
func TestClientRetryAfterMalformed(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "soon-ish")
			WriteError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		WriteJSON(w, http.StatusOK, map[string]int{"ok": 1})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{
		BaseURL: srv.URL,
		Backoff: time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	if err := c.GetJSON(context.Background(), "/ra-bad", nil); err != nil {
		t.Fatal(err)
	}
	// Computed backoff (1ms base + up to 50% jitter) — nowhere near the
	// seconds scale a parsed header would produce.
	if len(slept) != 1 || slept[0] > 100*time.Millisecond {
		t.Errorf("slept %v, want small computed backoff", slept)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{" 12 ", 12 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"garbage", 0},
		{"Mon, 02 Jan 2006 15:04:05 GMT", 0}, // long past
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// A future HTTP-date yields roughly the remaining interval.
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got < 20*time.Second || got > 31*time.Second {
		t.Errorf("parseRetryAfter(future date) = %v, want ~30s", got)
	}
}

func TestClientNoRetryOn404(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusNotFound, "nope")
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	err := c.GetJSON(context.Background(), "/z", nil)
	if !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (no retry)", calls.Load())
	}
}

func TestClientGivesUpAfterRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusInternalServerError, "boom")
	}))
	defer srv.Close()

	c := &Client{
		BaseURL:    srv.URL,
		MaxRetries: 2,
		Sleep:      func(ctx context.Context, d time.Duration) error { return nil },
	}
	if err := c.GetJSON(context.Background(), "/w", nil); err == nil {
		t.Fatal("expected failure after retries")
	}
}

func TestClientNegativeMaxRetriesDisablesRetrying(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusInternalServerError, "boom")
	}))
	defer srv.Close()

	c := &Client{
		BaseURL:    srv.URL,
		MaxRetries: -1,
		Sleep:      func(ctx context.Context, d time.Duration) error { return nil },
	}
	if err := c.GetJSON(context.Background(), "/w", nil); err == nil {
		t.Fatal("expected failure")
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (negative MaxRetries disables retrying)", calls.Load())
	}
}

func TestClientZeroMaxRetriesMeansDefault(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusInternalServerError, "boom")
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	if err := c.GetJSON(context.Background(), "/w", nil); err == nil {
		t.Fatal("expected failure")
	}
	if calls.Load() != 4 {
		t.Errorf("calls = %d, want 4 (default 3 retries)", calls.Load())
	}
}

// TestClientJitterConcurrency exercises the lazily seeded per-client
// jitter source from many goroutines; run under -race in CI.
func TestClientJitterConcurrency(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			WriteError(w, http.StatusInternalServerError, "flaky")
			return
		}
		WriteJSON(w, http.StatusOK, map[string]int{"ok": 1})
	}))
	defer srv.Close()

	c := &Client{
		BaseURL: srv.URL,
		Backoff: time.Nanosecond,
		Sleep:   func(ctx context.Context, d time.Duration) error { return nil },
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Hammer the shared source directly...
			for j := 0; j < 100; j++ {
				if d := c.jitter(int64(time.Second)); d < 0 || d > time.Second {
					t.Errorf("jitter out of range: %v", d)
				}
			}
			// ...and through the retry path (first upstream call 500s).
			var out map[string]int
			if err := c.GetJSON(context.Background(), "/j", &out); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if c.jitter(0) != 0 || c.jitter(-5) != 0 {
		t.Error("jitter(<=0) must be 0")
	}
}

func TestClientContextCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusInternalServerError, "boom")
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{BaseURL: srv.URL}
	err := c.GetJSON(ctx, "/w", nil)
	if err == nil {
		t.Fatal("expected context error")
	}
}

func TestClientPostJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in map[string]string
		if r.Method != http.MethodPost {
			t.Errorf("method = %s", r.Method)
		}
		if err := ReadJSON(r, &in); err != nil {
			WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		WriteJSON(w, http.StatusOK, map[string]string{"echo": in["msg"]})
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	var out map[string]string
	if err := c.PostJSON(context.Background(), "/p", map[string]string{"msg": "hi"}, &out); err != nil {
		t.Fatal(err)
	}
	if out["echo"] != "hi" {
		t.Errorf("echo = %q", out["echo"])
	}
}

func TestRequireKey(t *testing.T) {
	h := RequireKey("k", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no key status = %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("X-Api-Key", "k")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("keyed status = %d", resp.StatusCode)
	}
}
