package forum

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/netutil"
)

// ctxType keeps collector signatures compact.
type ctxType = context.Context

// Collector is one forum's collection client. Collect streams every report
// into sink; returning an error from sink aborts the run.
type Collector interface {
	Name() corpus.Forum
	Collect(ctx context.Context, sink func(RawReport) error) error
}

// CollectAll drains every collector sequentially (the paper's collectors
// ran as independent jobs; sequential keeps per-forum rate limits simple)
// and returns all reports plus per-forum counts.
func CollectAll(ctx context.Context, collectors []Collector) ([]RawReport, map[corpus.Forum]int, error) {
	var all []RawReport
	counts := make(map[corpus.Forum]int)
	for _, c := range collectors {
		err := c.Collect(ctx, func(r RawReport) error {
			all = append(all, r)
			counts[c.Name()]++
			return nil
		})
		if err != nil {
			return all, counts, fmt.Errorf("forum: collect %s: %w", c.Name(), err)
		}
	}
	return all, counts, nil
}

// fetchBytes downloads a raw resource (media, paste) relative to the
// client's BaseURL, with the client's auth headers and bounded retries.
func fetchBytes(ctx context.Context, api *netutil.Client, path string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(attempt) * 50 * time.Millisecond):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, api.BaseURL+path, nil)
		if err != nil {
			return nil, err
		}
		if api.APIKey != "" {
			req.Header.Set("X-Api-Key", api.APIKey)
		}
		for k, v := range api.Headers {
			req.Header.Set(k, v)
		}
		client := api.HTTPClient
		if client == nil {
			client = &http.Client{Timeout: 10 * time.Second}
		}
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, readErr := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && readErr == nil:
			return data, nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
			continue
		default:
			if readErr != nil {
				return nil, readErr
			}
			return nil, fmt.Errorf("forum: fetch %s: status %d", path, resp.StatusCode)
		}
	}
	return nil, fmt.Errorf("forum: fetch %s failed: %w", path, lastErr)
}
