package corpus

import (
	"testing"

	"github.com/smishkit/smishkit/internal/stats"
)

// Table 5's headline — bit.ly is the most-abused shortener — must be robust
// across seeds, not a single-seed accident.
func TestShortenerTopStableAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 2, 10, 404, 1861} {
		w := Generate(Config{Seed: seed, Messages: 10000})
		c := stats.NewCounter()
		for _, m := range w.Messages {
			if m.Shortener != "" {
				c.Add(m.Shortener)
			}
		}
		if top := c.TopK(1); top[0].Key != "bit.ly" {
			t.Errorf("seed %d: top shortener = %q, want bit.ly", seed, top[0].Key)
		}
	}
}
