module github.com/smishkit/smishkit

go 1.22
