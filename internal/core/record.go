// Package core orchestrates the paper's full pipeline: collect raw reports
// from the five forums, extract SMS fields from screenshots and structured
// reports, curate (reject decoys, normalize), enrich through the HLR /
// WHOIS / CT-log / passive-DNS / AV-scan services and shortener expansion,
// annotate scam type / language / brand / lures, and hand the resulting
// records to the measurement layer. It also provides a Simulation that
// boots every substrate server from a synthetic world on loopback.
package core

import (
	"time"

	"github.com/smishkit/smishkit/internal/annotate"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/extract"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/urlinfo"
	"github.com/smishkit/smishkit/internal/whois"
)

// EnrichmentError records one enrichment field lost to a service failure.
// The record keeps every field that did resolve and the run keeps going;
// the error string survives JSON round-trips so degraded datasets stay
// auditable.
type EnrichmentError struct {
	Field   string `json:"field"`   // record field that was degraded (e.g. "whois")
	Service string `json:"service"` // telemetry name of the failing service
	Err     string `json:"err"`     // the failure, stringified
}

// Record is one fully curated, enriched, annotated smishing report — the
// unit every table and figure is computed from.
type Record struct {
	ID         string
	Forum      corpus.Forum
	PostedAt   time.Time
	FromImage  bool // extracted from a screenshot attachment
	Text       string
	SenderRaw  string
	SenderKind senderid.Kind
	Timestamp  extract.ParsedTime

	// URL facts.
	ShownURL  string       // as it appeared in the text (may be shortened)
	FinalURL  string       // after shortener expansion ("" if unresolvable)
	URLInfo   urlinfo.Info // parsed from the shown URL
	Shortener string       // shortener service name ("" if none)
	Domain    string       // registrable domain of the landing URL

	// Enrichment.
	HLR          hlr.Result // phone senders only (zero otherwise)
	HLRDone      bool
	Whois        whois.Record
	WhoisFound   bool
	CT           ctlog.Summary
	PDNS         []dnsdb.Observation
	ASNames      []string // resolved AS names for PDNS IPs
	ASCountries  []string
	VTMalicious  int // VirusTotal-style malicious count
	VTSuspicious int
	GSBMatched   bool
	GSBBlocked   bool // transparency site refused the query
	GSBStatus    string

	Annotation annotate.Annotation

	// EnrichmentErrors lists the fields lost to service failures during
	// enrichment (nil on a fully enriched record).
	EnrichmentErrors []EnrichmentError
}

// HasURL reports whether the record carries a usable URL.
func (r Record) HasURL() bool { return r.ShownURL != "" }

// Degraded reports whether any enrichment field was lost to a service
// failure.
func (r Record) Degraded() bool { return len(r.EnrichmentErrors) > 0 }

// Dataset is the curated corpus plus collection bookkeeping.
type Dataset struct {
	Records []Record
	// Collection stats for Table 1.
	PostsByForum  map[corpus.Forum]int // raw posts collected
	ImagesByForum map[corpus.Forum]int // image attachments collected
	// Curation stats.
	DecoysRejected int // attachments rejected as non-SMS
	EmptyDropped   int // reports with no recoverable text
}
