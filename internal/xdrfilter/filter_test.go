package xdrfilter

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/detect"
	"github.com/smishkit/smishkit/internal/shortener"
)

func TestBadSenderBlocked(t *testing.T) {
	f := New(Config{BlockBadSenders: true})
	v, err := f.Check(context.Background(), "+99912345678901234", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != ActionBlock || v.Reason != ReasonBadSender {
		t.Errorf("verdict = %+v", v)
	}
	// Landlines cannot send SMS: likely spoofed (§4.1).
	v, _ = f.Check(context.Background(), "+442079460000", "hello")
	if v.Action != ActionBlock {
		t.Errorf("landline sender allowed: %+v", v)
	}
	// A valid mobile passes the sender stage.
	v, _ = f.Check(context.Background(), "+447700900123", "hello")
	if v.Action != ActionAllow {
		t.Errorf("valid mobile blocked: %+v", v)
	}
}

func TestBlocklistedDomain(t *testing.T) {
	f := New(Config{Blocklist: []string{"sbi-kyc.top"}})
	v, err := f.Check(context.Background(), "SBIBNK", "verify at https://secure.sbi-kyc.top/login now")
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != ActionBlock || v.Reason != ReasonBlockedDomain {
		t.Errorf("verdict = %+v", v)
	}
}

func TestShortenerExpansionCatchesHiddenRedirect(t *testing.T) {
	svc := shortener.NewService()
	svc.Add(shortener.Link{Service: "bit.ly", Code: "abc", Target: "https://evil-bank.top/kyc"})
	svc.Add(shortener.Link{Service: "bit.ly", Code: "dead", Target: "https://x.top/", TakenDown: true})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	f := New(Config{
		Blocklist: []string{"evil-bank.top"},
		Expander:  shortener.NewClient(srv.URL),
	})
	// Without expansion the text contains no blocked domain.
	v, err := f.Check(context.Background(), "X", "pay now https://bit.ly/abc")
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != ActionBlock || v.Reason != ReasonHiddenRedirect {
		t.Errorf("verdict = %+v", v)
	}
	if v.ExpandedURL != "https://evil-bank.top/kyc" {
		t.Errorf("expanded = %q", v.ExpandedURL)
	}
	// Dead shorteners get flagged, not dropped.
	v, _ = f.Check(context.Background(), "X", "click https://bit.ly/dead")
	if v.Action != ActionFlag || v.Reason != ReasonDeadShortener {
		t.Errorf("dead-link verdict = %+v", v)
	}
}

func TestWithoutExpanderMisses(t *testing.T) {
	// The status-quo baseline the paper criticizes: no redirect checking.
	f := New(Config{Blocklist: []string{"evil-bank.top"}})
	v, err := f.Check(context.Background(), "X", "pay now https://bit.ly/abc")
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != ActionAllow {
		t.Errorf("expander-less filter should miss the redirect: %+v", v)
	}
}

func TestClassifierStage(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 31, Messages: 2000})
	var docs []detect.Doc
	for _, m := range w.Messages {
		docs = append(docs, detect.Doc{Text: m.Text, Label: string(m.ScamType)})
	}
	for _, ham := range corpus.GenerateHam(32, 500) {
		docs = append(docs, detect.Doc{Text: ham, Label: "ham"})
	}
	model, err := detect.Train(docs, true)
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Classifier: model})

	v, err := f.Check(context.Background(), "X", "Royal Mail: your parcel is held at our depot. Pay the redelivery fee at https://rm-fee.top/pay")
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != ActionBlock || v.Reason != ReasonClassifier {
		t.Errorf("smish verdict = %+v", v)
	}
	v, _ = f.Check(context.Background(), "Mum", "Hey, running 10 minutes late, see you soon")
	if v.Action != ActionAllow {
		t.Errorf("ham verdict = %+v", v)
	}
}

// End-to-end block-rate measurement over a corpus: the three-stage filter
// must block the bulk of smishing while passing nearly all ham.
func TestFilterEffectiveness(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 33, Messages: 3000})

	// Train on half the corpus; filter the other half plus ham.
	var docs []detect.Doc
	for _, m := range w.Messages[:1500] {
		docs = append(docs, detect.Doc{Text: m.Text, Label: string(m.ScamType)})
	}
	for _, ham := range corpus.GenerateHam(34, 400) {
		docs = append(docs, detect.Doc{Text: ham, Label: "ham"})
	}
	model, err := detect.Train(docs, true)
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Classifier: model, BlockBadSenders: true})

	var smish, ham []struct{ Sender, Text string }
	for _, m := range w.Messages[1500:] {
		smish = append(smish, struct{ Sender, Text string }{m.Sender.Value, m.Text})
	}
	for _, h := range corpus.GenerateHam(35, 400) {
		ham = append(ham, struct{ Sender, Text string }{"+447700900123", h})
	}

	smishStats, err := f.Run(context.Background(), smish)
	if err != nil {
		t.Fatal(err)
	}
	hamStats, err := f.Run(context.Background(), ham)
	if err != nil {
		t.Fatal(err)
	}
	blockRate := float64(smishStats.Blocked) / float64(smishStats.Total)
	fpRate := float64(hamStats.Blocked) / float64(hamStats.Total)
	t.Logf("smish block rate = %.3f (flagged %.3f), ham false-positive rate = %.3f",
		blockRate, float64(smishStats.Flagged)/float64(smishStats.Total), fpRate)
	if blockRate < 0.85 {
		t.Errorf("block rate = %.3f, want >= 0.85", blockRate)
	}
	if fpRate > 0.02 {
		t.Errorf("ham false-positive rate = %.3f, want <= 0.02", fpRate)
	}
}

func TestRuntimeBlocklistUpdate(t *testing.T) {
	f := New(Config{})
	ctx := context.Background()
	v, _ := f.Check(ctx, "X", "see https://fresh-threat.top/x")
	if v.Action != ActionAllow {
		t.Fatalf("pre-update verdict = %+v", v)
	}
	f.AddToBlocklist("fresh-threat.top")
	v, _ = f.Check(ctx, "X", "see https://fresh-threat.top/x")
	if v.Action != ActionBlock {
		t.Errorf("post-update verdict = %+v", v)
	}
}
