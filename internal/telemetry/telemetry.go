// Package telemetry is a dependency-free metrics layer for the measurement
// pipeline and its simulated service clients: atomic counters and gauges,
// fixed-bucket latency histograms with percentile summaries, and named
// spans for pipeline stages. A Registry aggregates instruments by name and
// produces immutable JSON-serializable Snapshots; hot-path increments are
// allocation-free and safe under concurrent use.
//
// Every instrument tolerates a nil receiver (all operations no-op), so
// instrumented code never needs to branch on whether telemetry is wired.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards increments.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op on a nil counter).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (e.g. busy workers). The zero
// value is ready to use; a nil *Gauge discards updates.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// spanStat accumulates completions of one named span.
type spanStat struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
	last  atomic.Int64 // nanoseconds
}

// Span is one in-flight timed region. End it exactly once.
type Span struct {
	stat  *spanStat
	start time.Time
}

// End records the span's duration and returns it. On a span from a nil
// registry it only returns the elapsed time.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.stat != nil {
		s.stat.count.Add(1)
		s.stat.total.Add(int64(d))
		s.stat.last.Store(int64(d))
	}
	return d
}

// Registry is a named collection of instruments. Instruments are created
// on first use and shared thereafter; all methods are safe for concurrent
// use. A nil *Registry hands out nil instruments, which discard updates.
//
// A Registry is a (possibly prefixed) view over shared instrument state:
// Prefixed returns a view that prepends a fixed prefix to every instrument
// name but records into the same underlying maps, so a sharded component
// can label its instruments "shard.0.cache.hits" while one snapshot (and
// one /debug/telemetry endpoint) still sees everything.
type Registry struct {
	prefix string
	s      *regState
}

// regState is the instrument storage every prefixed view of one registry
// shares.
type regState struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanStat
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		s: &regState{
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*Histogram),
			spans:    make(map[string]*spanStat),
		},
	}
}

// Prefixed returns a view of the same registry that prepends prefix to
// every instrument name. Views nest (r.Prefixed("a.").Prefixed("b.")
// records under "a.b.") and share state with r: instruments created
// through any view appear in every view's Snapshot. A nil registry yields
// a nil (discard-everything) view.
func (r *Registry) Prefixed(prefix string) *Registry {
	if r == nil || r.s == nil {
		return nil
	}
	return &Registry{prefix: r.prefix + prefix, s: r.s}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil || r.s == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.RLock()
	c, ok := r.s.counters[name]
	r.s.mu.RUnlock()
	if ok {
		return c
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if c, ok = r.s.counters[name]; !ok {
		c = &Counter{}
		r.s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil || r.s == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.RLock()
	g, ok := r.s.gauges[name]
	r.s.mu.RUnlock()
	if ok {
		return g
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if g, ok = r.s.gauges[name]; !ok {
		g = &Gauge{}
		r.s.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil || r.s == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.RLock()
	h, ok := r.s.hists[name]
	r.s.mu.RUnlock()
	if ok {
		return h
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if h, ok = r.s.hists[name]; !ok {
		h = newHistogram()
		r.s.hists[name] = h
	}
	return h
}

// StartSpan begins a named timed region; call End on the result.
func (r *Registry) StartSpan(name string) Span {
	if r == nil || r.s == nil {
		return Span{start: time.Now()}
	}
	name = r.prefix + name
	r.s.mu.RLock()
	st, ok := r.s.spans[name]
	r.s.mu.RUnlock()
	if !ok {
		r.s.mu.Lock()
		if st, ok = r.s.spans[name]; !ok {
			st = &spanStat{}
			r.s.spans[name] = st
		}
		r.s.mu.Unlock()
	}
	return Span{stat: st, start: time.Now()}
}

// Snapshot is a point-in-time copy of every instrument, suitable for JSON
// encoding and rendering.
type Snapshot struct {
	TakenAt    time.Time                 `json:"taken_at"`
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
	Spans      map[string]SpanStats      `json:"spans"`
}

// SpanStats summarizes completions of one named span.
type SpanStats struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Last  time.Duration `json:"last_ns"`
}

// CounterValue returns the named counter's value, or 0 when the snapshot
// never recorded it — the lookup shape external pollers (benchwatch) need
// after decoding a /debug/telemetry response, where a quiet instrument is
// simply absent from the maps.
func (s Snapshot) CounterValue(name string) int64 { return s.Counters[name] }

// GaugeValue returns the named gauge's level, or 0 when absent.
func (s Snapshot) GaugeValue(name string) int64 { return s.Gauges[name] }

// Hist returns the named histogram summary and whether it was present;
// absent histograms decode as the zero HistogramStats.
func (s Snapshot) Hist(name string) (HistogramStats, bool) {
	h, ok := s.Histograms[name]
	return h, ok
}

// Snapshot copies the current state of every instrument. A nil registry
// yields an empty (but usable) snapshot. A prefixed view snapshots the
// full shared state, not only its own prefix — there is one registry
// underneath, and the snapshot reflects all of it.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		TakenAt:    time.Now().UTC(),
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStats{},
		Spans:      map[string]SpanStats{},
	}
	if r == nil || r.s == nil {
		return snap
	}
	r.s.mu.RLock()
	defer r.s.mu.RUnlock()
	for name, c := range r.s.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.s.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.s.hists {
		snap.Histograms[name] = h.Stats()
	}
	for name, st := range r.s.spans {
		snap.Spans[name] = SpanStats{
			Count: st.count.Load(),
			Total: time.Duration(st.total.Load()),
			Last:  time.Duration(st.last.Load()),
		}
	}
	return snap
}
