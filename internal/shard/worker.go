package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/batchmux"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/enrichcache"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/resilience"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/whois"
)

// Multi-process mode: each shard runs as a separate OS process hosting a
// Worker — its own Stack (cache, batchmux, breakers, pipeline) over HTTP
// clients dialed at the parent's simulated services — and the parent's
// Group routes record slices to it over localhost as JSON. core.Record
// round-trips JSON losslessly (the record log depends on the same
// property), so a remote shard's merged output is byte-identical to a
// local one's.

// ServiceAddr locates one upstream enrichment service for a worker.
type ServiceAddr struct {
	URL string `json:"url"`
	Key string `json:"key,omitempty"`
}

// WorkerPipeline is the serializable subset of core.Options a worker's
// pipeline needs. Durations ride as nanoseconds (encoding/json's default
// for time.Duration).
type WorkerPipeline struct {
	EnrichWorkers    int           `json:"enrich_workers,omitempty"`
	StepWorkers      int           `json:"step_workers,omitempty"`
	RecordBudget     time.Duration `json:"record_budget,omitempty"`
	CallTimeout      time.Duration `json:"call_timeout,omitempty"`
	AbortFailureRate float64       `json:"abort_failure_rate,omitempty"`
	MinAbortCalls    int           `json:"min_abort_calls,omitempty"`
}

// WorkerSpec is everything a shard worker process needs to build its
// stack: upstream service addresses, pipeline tuning, and which tiers to
// enable. It is the JSON document the parent writes to the worker's stdin.
type WorkerSpec struct {
	// Index is the shard's position on the parent's ring; the worker's
	// telemetry records under "shard.<Index>.*".
	Index int `json:"index"`

	HLR       ServiceAddr `json:"hlr"`
	Whois     ServiceAddr `json:"whois"`
	CTLog     ServiceAddr `json:"ctlog"`
	DNSDB     ServiceAddr `json:"dnsdb"`
	AVScan    ServiceAddr `json:"avscan"`
	Shortener ServiceAddr `json:"shortener"`

	Pipeline WorkerPipeline `json:"pipeline"`

	// Cache/Batch/Resilience enable the worker's private tiers with their
	// documented defaults (the parent mirrors its own Options here).
	Cache      bool `json:"cache,omitempty"`
	Batch      bool `json:"batch,omitempty"`
	Resilience bool `json:"resilience,omitempty"`
	// ServeStale carries the cache's serve-stale flag when Cache is set.
	ServeStale bool `json:"serve_stale,omitempty"`

	// MaxEnrichBytes caps one POST /enrich request body; larger bodies are
	// rejected with 413 before decoding (0 selects DefaultMaxEnrichBytes).
	MaxEnrichBytes int64 `json:"max_enrich_bytes,omitempty"`
	// DrainTimeout bounds the graceful-shutdown drain on SIGTERM: in-flight
	// /enrich responses get this long to finish before the listener is
	// closed hard (0 selects 5s).
	DrainTimeout time.Duration `json:"drain_timeout,omitempty"`
}

// DefaultMaxEnrichBytes is the POST /enrich body cap when the spec does
// not say: sized for the largest routed subset a parent sends in practice
// (thousands of records at a few KiB of JSON each) with an order of
// magnitude of headroom.
const DefaultMaxEnrichBytes int64 = 32 << 20

// defaultDrainTimeout bounds Worker.Serve's graceful shutdown.
const defaultDrainTimeout = 5 * time.Second

// enrichEnvelope frames a routed record slice on the wire, both ways.
type enrichEnvelope struct {
	Records []core.Record `json:"records"`
}

// Worker hosts one shard's stack in its own process, behind a localhost
// HTTP surface:
//
//	POST /enrich          routed records in, enriched records out (JSON)
//	GET  /healthz         readiness probe
//	GET  /stats           StackStats snapshot
//	GET  /debug/telemetry the worker's registry snapshot
type Worker struct {
	stack   workerBackend
	reg     *telemetry.Registry
	maxBody int64
	drain   time.Duration
}

// workerBackend is what the worker's HTTP surface needs from its stack —
// an interface so tests can substitute slow or failing backends without
// building a full tier set.
type workerBackend interface {
	Enricher
	StatsProvider
}

// NewWorker builds a worker from its spec, dialing clients at the spec's
// service addresses.
func NewWorker(spec WorkerSpec) (*Worker, error) {
	if spec.Index < 0 {
		return nil, fmt.Errorf("shard: worker index must not be negative (got %d)", spec.Index)
	}
	for _, a := range []struct {
		name string
		addr ServiceAddr
	}{
		{"hlr", spec.HLR}, {"whois", spec.Whois}, {"ctlog", spec.CTLog},
		{"dnsdb", spec.DNSDB}, {"avscan", spec.AVScan}, {"shortener", spec.Shortener},
	} {
		if a.addr.URL == "" {
			return nil, fmt.Errorf("shard: worker spec missing %s URL", a.name)
		}
	}
	reg := telemetry.NewRegistry()
	base := core.Services{
		HLR:       hlr.NewClient(spec.HLR.URL, spec.HLR.Key).Instrument(reg),
		Whois:     whois.NewClient(spec.Whois.URL, spec.Whois.Key).Instrument(reg),
		CTLog:     ctlog.NewClient(spec.CTLog.URL).Instrument(reg),
		DNSDB:     dnsdb.NewClient(spec.DNSDB.URL, spec.DNSDB.Key).Instrument(reg),
		AVScan:    avscan.NewClient(spec.AVScan.URL, spec.AVScan.Key).Instrument(reg),
		Shortener: shortener.NewClient(spec.Shortener.URL).Instrument(reg),
	}
	cfg := StackConfig{
		Pipeline: core.Options{
			EnrichWorkers:    spec.Pipeline.EnrichWorkers,
			StepWorkers:      spec.Pipeline.StepWorkers,
			RecordBudget:     spec.Pipeline.RecordBudget,
			CallTimeout:      spec.Pipeline.CallTimeout,
			AbortFailureRate: spec.Pipeline.AbortFailureRate,
			MinAbortCalls:    spec.Pipeline.MinAbortCalls,
		},
	}
	if spec.Cache {
		cfg.Cache = &enrichcache.Config{ServeStale: spec.ServeStale}
	}
	if spec.Batch {
		cfg.Batch = &batchmux.Config{}
	}
	if spec.Resilience {
		cfg.Resilience = &resilience.Config{}
	}
	stack, err := NewStack(base, cfg, reg.Prefixed("shard."+strconv.Itoa(spec.Index)+"."))
	if err != nil {
		return nil, err
	}
	maxBody := spec.MaxEnrichBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxEnrichBytes
	}
	drain := spec.DrainTimeout
	if drain <= 0 {
		drain = defaultDrainTimeout
	}
	return &Worker{stack: stack, reg: reg, maxBody: maxBody, drain: drain}, nil
}

// Serve runs the worker on an ephemeral loopback listener, reports the
// base URL via onReady, and blocks until ctx is cancelled.
func (wk *Worker) Serve(ctx context.Context, onReady func(url string)) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("shard: bind worker listener: %w", err)
	}
	srv := &http.Server{Handler: wk.Handler(), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	if onReady != nil {
		onReady("http://" + ln.Addr().String())
	}
	select {
	case <-ctx.Done():
		// Graceful teardown: stop accepting, let in-flight /enrich responses
		// finish writing their bodies (a SIGTERM mid-round must not hand the
		// parent a truncated JSON stream), and only slam the door when the
		// drain deadline expires.
		sdCtx, cancel := context.WithTimeout(context.Background(), wk.drain)
		defer cancel()
		if err := srv.Shutdown(sdCtx); err != nil {
			_ = srv.Close()
		}
		<-done
		return nil
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// Handler returns the worker's HTTP surface.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /enrich", func(w http.ResponseWriter, r *http.Request) {
		// Bound the decode: an unbounded body would let one oversized (or
		// malicious, once workers are reachable off-box) request balloon the
		// worker's heap before JSON parsing even fails.
		r.Body = http.MaxBytesReader(w, r.Body, wk.maxBody)
		var in enrichEnvelope
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeWorkerError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeWorkerError(w, http.StatusBadRequest, fmt.Errorf("decode records: %w", err))
			return
		}
		out, err := wk.stack.EnrichAnnotate(r.Context(), in.Records)
		if err != nil {
			writeWorkerError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(enrichEnvelope{Records: out})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st, _ := wk.stack.Stats()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.Handle("GET /debug/telemetry", telemetry.Handler(wk.reg))
	return mux
}

func writeWorkerError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// RunWorker is the whole worker process: decode a WorkerSpec from r
// (stdin), serve on an ephemeral loopback port, print the base URL as one
// line to w (stdout — the parent reads it), and block until ctx ends.
func RunWorker(ctx context.Context, r io.Reader, w io.Writer) error {
	var spec WorkerSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return fmt.Errorf("shard: decode worker spec: %w", err)
	}
	wk, err := NewWorker(spec)
	if err != nil {
		return err
	}
	return wk.Serve(ctx, func(url string) { fmt.Fprintln(w, url) })
}

// DefaultWorkerTimeout bounds one remote /enrich request when the caller
// does not say. It exists so a hung worker can never stall Group.Run
// forever when the round context itself has no deadline (batch-mode Run
// with context.Background was exactly that trap); it is generous because
// a cold cache plus a large routed subset legitimately takes a while.
const DefaultWorkerTimeout = 2 * time.Minute

// remoteRetryDelay separates the two connection attempts.
const remoteRetryDelay = 100 * time.Millisecond

// RemoteEnricher is the Group-side client for one worker process.
type RemoteEnricher struct {
	base    string
	hc      *http.Client
	timeout time.Duration
}

// NewRemoteEnricher returns a client for the worker at baseURL (as printed
// by RunWorker), with DefaultWorkerTimeout per request.
func NewRemoteEnricher(baseURL string) *RemoteEnricher {
	return &RemoteEnricher{base: baseURL, hc: &http.Client{}, timeout: DefaultWorkerTimeout}
}

// WithTimeout sets the per-request deadline (0 restores the default) and
// returns the enricher for chaining.
func (re *RemoteEnricher) WithTimeout(d time.Duration) *RemoteEnricher {
	if d <= 0 {
		d = DefaultWorkerTimeout
	}
	re.timeout = d
	return re
}

// reqCtx derives the per-attempt request context: the caller's ctx capped
// by the client's own timeout, so a hung worker fails the attempt even
// when the round context has no deadline.
func (re *RemoteEnricher) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, re.timeout)
}

// Healthy probes the worker's readiness endpoint.
func (re *RemoteEnricher) Healthy(ctx context.Context) error {
	rctx, cancel := re.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, re.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := re.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: worker %s health: %s", re.base, resp.Status)
	}
	return nil
}

// EnrichAnnotate ships the routed slice to the worker and returns its
// enriched output. Each attempt is bounded by the client timeout, and a
// connection-level failure (dial refused, reset, per-attempt deadline —
// anything where no HTTP status came back) is retried once: enrichment is
// key-deterministic and the worker handler has no side effects beyond its
// own caches, so replaying the request is safe. HTTP-level errors are
// never retried — the worker answered, and its answer is authoritative.
func (re *RemoteEnricher) EnrichAnnotate(ctx context.Context, recs []core.Record) ([]core.Record, error) {
	body, err := json.Marshal(enrichEnvelope{Records: recs})
	if err != nil {
		return nil, err
	}
	const attempts = 2
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, lastErr
			case <-time.After(remoteRetryDelay):
			}
		}
		out, err := re.enrichOnce(ctx, body)
		if err == nil {
			return out, nil
		}
		lastErr = err
		var connErr *connectionError
		if !errors.As(err, &connErr) || ctx.Err() != nil {
			// The worker answered (status error, decode error) or the round
			// itself is over — retrying cannot help.
			return nil, err
		}
	}
	return nil, fmt.Errorf("shard: worker %s unreachable after %d attempts: %w", re.base, attempts, lastErr)
}

// connectionError wraps transport-level failures so the retry loop can
// tell them apart from worker-reported errors.
type connectionError struct{ err error }

func (e *connectionError) Error() string { return e.err.Error() }
func (e *connectionError) Unwrap() error { return e.err }

// enrichOnce performs one /enrich round trip.
func (re *RemoteEnricher) enrichOnce(ctx context.Context, body []byte) ([]core.Record, error) {
	rctx, cancel := re.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, re.base+"/enrich", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := re.hc.Do(req)
	if err != nil {
		return nil, &connectionError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var werr struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&werr)
		if werr.Error == "" {
			werr.Error = resp.Status
		}
		return nil, fmt.Errorf("shard: worker %s enrich: %s", re.base, werr.Error)
	}
	var out enrichEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("shard: decode worker %s response: %w", re.base, err)
	}
	return out.Records, nil
}

// Stats fetches the worker's tier scoreboard; ok is false when the worker
// is unreachable.
func (re *RemoteEnricher) Stats() (StackStats, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, re.base+"/stats", nil)
	if err != nil {
		return StackStats{}, false
	}
	resp, err := re.hc.Do(req)
	if err != nil {
		return StackStats{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return StackStats{}, false
	}
	var st StackStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return StackStats{}, false
	}
	return st, true
}

var _ Enricher = (*RemoteEnricher)(nil)
var _ StatsProvider = (*RemoteEnricher)(nil)
