package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"
)

// SummarySchemaVersion identifies the summary.json layout.
const SummarySchemaVersion = 1

// Thresholds are a run's pass/fail gates. The backlog ceiling is the
// primary KPI (the run fails the moment its p95 reaches the target);
// RoundP95Ms is optional; MinReports guards against an idle "pass".
type Thresholds struct {
	BacklogP95Seconds float64 `json:"projection_backlog_p95_seconds_lt"`
	RoundP95Ms        float64 `json:"round_p95_ms_lt,omitempty"`
	MinReports        int     `json:"min_reports,omitempty"`
}

// Summary is the aggregate verdict of one benchmark run — summary.json.
type Summary struct {
	SchemaVersion int       `json:"schema_version"`
	Profile       string    `json:"profile"`
	StartedAt     time.Time `json:"started_at"`
	EndedAt       time.Time `json:"ended_at"`
	Samples       int       `json:"samples"`

	// Primary KPI: projection backlog percentiles across samples.
	ProjectionBacklogP50Seconds float64 `json:"projection_backlog_p50_seconds"`
	ProjectionBacklogP95Seconds float64 `json:"projection_backlog_p95_seconds"`
	ProjectionBacklogP99Seconds float64 `json:"projection_backlog_p99_seconds"`
	ProjectionBacklogMaxSeconds float64 `json:"projection_backlog_max_seconds"`

	// Round-duration and enrichment latency, worst p95 observed.
	RoundP95Ms     float64 `json:"round_p95_ms"`
	EnrichP95MsMax float64 `json:"enrich_p95_ms_max"`

	// Throughput.
	ReportsPerSecAvg  float64 `json:"reports_per_sec_avg"`
	ReportsPerSecMax  float64 `json:"reports_per_sec_max"`
	Reports1mTotalAvg float64 `json:"reports_1m_total_avg"`
	Reports1mTotalMax int     `json:"reports_1m_total_max"`
	ReportsTotal      int     `json:"reports_total"`
	RecordsTotal      int     `json:"records_total"`
	InjectedPosts     int     `json:"injected_posts"`

	// Saturation.
	StreamQueueDepthMax int64   `json:"stream_queue_depth_max"`
	CursorLagMaxSeconds float64 `json:"cursor_lag_max_seconds"`
	PendingBatchesMax   int     `json:"pending_batches_max"`

	Thresholds Thresholds `json:"thresholds"`
	// Pass is the verdict; Failures lists every violated gate.
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// Summarize aggregates a run's samples against its thresholds. At least
// one sample is required — an empty timeseries means the harness never
// reached the daemon, which must read as failure, not a vacuous pass.
func Summarize(profile string, samples []Sample, th Thresholds) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, fmt.Errorf("bench: no samples to summarize")
	}
	s := Summary{
		SchemaVersion: SummarySchemaVersion,
		Profile:       profile,
		StartedAt:     samples[0].At,
		EndedAt:       samples[len(samples)-1].At,
		Samples:       len(samples),
		Thresholds:    th,
	}

	backlogs := make([]float64, 0, len(samples))
	var rpsSum, r1mSum float64
	for _, sm := range samples {
		backlogs = append(backlogs, sm.BacklogSeconds)
		s.ProjectionBacklogMaxSeconds = math.Max(s.ProjectionBacklogMaxSeconds, sm.BacklogSeconds)
		s.RoundP95Ms = math.Max(s.RoundP95Ms, sm.RoundP95Ms)
		s.EnrichP95MsMax = math.Max(s.EnrichP95MsMax, sm.EnrichP95Ms)
		rpsSum += sm.ReportsPerSec
		s.ReportsPerSecMax = math.Max(s.ReportsPerSecMax, sm.ReportsPerSec)
		r1mSum += float64(sm.Reports1mTotal)
		if sm.Reports1mTotal > s.Reports1mTotalMax {
			s.Reports1mTotalMax = sm.Reports1mTotal
		}
		if sm.StreamQueueDepth > s.StreamQueueDepthMax {
			s.StreamQueueDepthMax = sm.StreamQueueDepth
		}
		s.CursorLagMaxSeconds = math.Max(s.CursorLagMaxSeconds, sm.CursorLagMaxSeconds)
		if sm.PendingBatches > s.PendingBatchesMax {
			s.PendingBatchesMax = sm.PendingBatches
		}
	}
	last := samples[len(samples)-1]
	s.ReportsTotal = last.ReportsTotal
	s.RecordsTotal = last.Records
	s.InjectedPosts = last.InjectedPosts
	s.ReportsPerSecAvg = rpsSum / float64(len(samples))
	s.Reports1mTotalAvg = r1mSum / float64(len(samples))
	s.ProjectionBacklogP50Seconds = Percentile(backlogs, 0.50)
	s.ProjectionBacklogP95Seconds = Percentile(backlogs, 0.95)
	s.ProjectionBacklogP99Seconds = Percentile(backlogs, 0.99)

	// Verdict: the primary KPI is strict — "projection_backlog_p95_seconds
	// < target" — so hitting the target exactly fails.
	if th.BacklogP95Seconds > 0 && s.ProjectionBacklogP95Seconds >= th.BacklogP95Seconds {
		s.Failures = append(s.Failures, fmt.Sprintf(
			"projection_backlog_p95_seconds %.3f >= target %.3f",
			s.ProjectionBacklogP95Seconds, th.BacklogP95Seconds))
	}
	if th.RoundP95Ms > 0 && s.RoundP95Ms >= th.RoundP95Ms {
		s.Failures = append(s.Failures, fmt.Sprintf(
			"round_p95_ms %.3f >= target %.3f", s.RoundP95Ms, th.RoundP95Ms))
	}
	if th.MinReports > 0 && s.ReportsTotal < th.MinReports {
		s.Failures = append(s.Failures, fmt.Sprintf(
			"reports_total %d < min %d", s.ReportsTotal, th.MinReports))
	}
	s.Pass = len(s.Failures) == 0
	return s, nil
}

// Percentile returns the q-th quantile (0..1) of vals by linear
// interpolation between closest ranks; an empty slice yields 0.
func Percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// WriteSummary writes a summary as indented JSON.
func WriteSummary(w io.Writer, s Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LoadSummary reads a summary.json.
func LoadSummary(path string) (Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return Summary{}, fmt.Errorf("bench: open summary: %w", err)
	}
	defer f.Close()
	var s Summary
	if err := json.NewDecoder(f).Decode(&s); err != nil {
		return Summary{}, fmt.Errorf("bench: decode summary %s: %w", path, err)
	}
	if s.SchemaVersion != SummarySchemaVersion {
		return Summary{}, fmt.Errorf("bench: summary %s: schema_version %d, want %d",
			path, s.SchemaVersion, SummarySchemaVersion)
	}
	return s, nil
}
