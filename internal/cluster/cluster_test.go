package cluster

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/smishkit/smishkit/internal/annotate"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/extract"
)

func rec(text, sender, domain string) core.Record {
	return core.Record{
		Text:      text,
		SenderRaw: sender,
		Domain:    domain,
		PostedAt:  time.Date(2023, 5, 1, 12, 0, 0, 0, time.UTC),
		Annotation: annotate.Annotation{
			ScamType: "banking",
			Brand:    "State Bank of India",
		},
	}
}

func TestTemplateKeyCollapsesVariants(t *testing.T) {
	a := TemplateKey("SBI: your account is blocked, pay ₹450 at https://sbi-kyc.top/verify?id=12345")
	b := TemplateKey("SBI: your account is blocked, pay ₹99 at https://sbi-kyc.top/confirm?id=99999")
	if a != b {
		t.Errorf("variants do not share a key:\n%q\n%q", a, b)
	}
	c := TemplateKey("Royal Mail: your parcel is held, pay the fee")
	if a == c {
		t.Error("distinct templates collide")
	}
}

func TestTemplateKeyDeterministic(t *testing.T) {
	s := "Verify 123 at https://a.b/c now"
	if TemplateKey(s) != TemplateKey(s) {
		t.Error("unstable key")
	}
}

func TestClusterBySharedDomain(t *testing.T) {
	records := []core.Record{
		rec("text one about your account 111", "+441", "evil.top"),
		rec("completely different wording 222", "+442", "evil.top"),
		rec("unrelated campaign text 333", "+443", "other.top"),
	}
	campaigns := Cluster(records, DefaultOptions())
	if len(campaigns) != 2 {
		t.Fatalf("campaigns = %d, want 2", len(campaigns))
	}
	if campaigns[0].Size() != 2 {
		t.Errorf("largest campaign size = %d", campaigns[0].Size())
	}
}

func TestClusterBySharedSender(t *testing.T) {
	records := []core.Record{
		rec("alpha text 1", "+44777", "a.top"),
		rec("beta text 2", "+44777", "b.top"),
	}
	campaigns := Cluster(records, DefaultOptions())
	if len(campaigns) != 1 {
		t.Fatalf("campaigns = %d, want 1 (shared sender)", len(campaigns))
	}
	if len(campaigns[0].Domains) != 2 {
		t.Errorf("domains = %d", len(campaigns[0].Domains))
	}
}

func TestClusterTransitiveLinking(t *testing.T) {
	// A-B share a sender; B-C share a domain: all one campaign.
	records := []core.Record{
		rec("one 1", "+44777", "a.top"),
		rec("two 2", "+44777", "b.top"),
		rec("three 3", "+44888", "b.top"),
	}
	campaigns := Cluster(records, DefaultOptions())
	if len(campaigns) != 1 || campaigns[0].Size() != 3 {
		t.Fatalf("campaigns = %v", campaigns)
	}
}

func TestClusterOptionsDisableSignals(t *testing.T) {
	records := []core.Record{
		rec("one 1", "+44777", "a.top"),
		rec("two 2", "+44777", "b.top"),
	}
	campaigns := Cluster(records, Options{ByDomain: true}) // sender off
	if len(campaigns) != 2 {
		t.Fatalf("campaigns = %d, want 2 with sender linking off", len(campaigns))
	}
	// Template linking merges them back: both texts share no template, so
	// still 2; but identical templates would merge (kit-level view).
	kit := Cluster([]core.Record{
		rec("pay 123 at https://a.top/x", "+1", "a.top"),
		rec("pay 999 at https://b.top/y", "+2", "b.top"),
	}, Options{ByTemplate: true})
	if len(kit) != 1 {
		t.Fatalf("kit-level clustering = %d campaigns, want 1", len(kit))
	}
}

func TestClusterEmptyFieldsDoNotLink(t *testing.T) {
	records := []core.Record{
		rec("one 1", "", ""),
		rec("two 2", "", ""),
	}
	campaigns := Cluster(records, Options{ByDomain: true, BySender: true}) // template off
	if len(campaigns) != 2 {
		t.Fatalf("empty keys linked records: %d campaigns", len(campaigns))
	}
}

func TestClusterPluralityLabels(t *testing.T) {
	records := []core.Record{
		rec("a 1", "+44777", "x.top"),
		rec("b 2", "+44777", "x.top"),
	}
	records[1].Annotation.Brand = "HSBC"
	campaigns := Cluster(records, DefaultOptions())
	if campaigns[0].ScamType != "banking" {
		t.Errorf("scam = %q", campaigns[0].ScamType)
	}
	// Tie between brands resolves deterministically (sorted keys).
	if campaigns[0].Brand == "" {
		t.Error("no plurality brand")
	}
}

// Against a full pipeline run, clustering must recover campaign structure:
// far fewer clusters than records, with the biggest clusters matching the
// world's biggest campaigns in brand.
func TestClusterRecoversWorldCampaigns(t *testing.T) {
	records := pipelineRecords(t)
	campaigns := Cluster(records, DefaultOptions())
	if len(campaigns) >= len(records)/2 {
		t.Fatalf("%d campaigns from %d records: no consolidation", len(campaigns), len(records))
	}
	if campaigns[0].Size() < 10 {
		t.Errorf("largest campaign has %d reports", campaigns[0].Size())
	}
	if campaigns[0].Span() < 0 {
		t.Error("negative campaign span")
	}
	// Infra-only clustering should land near the world's true campaign
	// count (within 2x), while kit-level (template) clustering collapses
	// much further.
	w := generateWorld(t)
	trueCampaigns := len(w.Campaigns)
	if len(campaigns) > trueCampaigns*2 || len(campaigns) < trueCampaigns/4 {
		t.Errorf("recovered %d campaigns vs %d true", len(campaigns), trueCampaigns)
	}
	kits := Cluster(records, Options{ByTemplate: true, ByDomain: true, BySender: true})
	if len(kits) >= len(campaigns) {
		t.Errorf("kit-level clusters (%d) not fewer than infra clusters (%d)", len(kits), len(campaigns))
	}
}

// pipelineRecords builds lightweight records straight from a world (no
// network round trip needed for clustering behavior).
func pipelineRecords(t *testing.T) []core.Record {
	t.Helper()
	w := generateWorld(t)
	records := make([]core.Record, 0, len(w.Messages))
	for _, m := range w.Messages {
		records = append(records, core.Record{
			Text:      m.Text,
			SenderRaw: m.Sender.Value,
			Domain:    m.Domain,
			PostedAt:  m.ReportedAt,
			Timestamp: extract.ParsedTime{Time: m.SentAt, HasDate: true},
			Annotation: annotate.Annotation{
				ScamType: m.ScamType,
				Brand:    m.Brand,
			},
		})
	}
	return records
}

func generateWorld(t *testing.T) *corpus.World {
	t.Helper()
	return corpus.Generate(corpus.Config{Seed: 73, Messages: 3000})
}

// Property: TemplateKey is idempotent and invariant to digit/URL-path
// substitutions.
func TestTemplateKeyProperties(t *testing.T) {
	f := func(s string) bool {
		k := TemplateKey(s)
		return TemplateKey(k) == TemplateKey(k) && k == TemplateKey(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: clustering is a partition — every record lands in exactly one
// campaign, and campaign sizes sum to the input size.
func TestClusterPartitionProperty(t *testing.T) {
	records := pipelineRecords(t)
	campaigns := Cluster(records, DefaultOptions())
	seen := make([]bool, len(records))
	total := 0
	for _, c := range campaigns {
		for _, idx := range c.Records {
			if idx < 0 || idx >= len(records) || seen[idx] {
				t.Fatalf("record %d misassigned", idx)
			}
			seen[idx] = true
			total++
		}
	}
	if total != len(records) {
		t.Fatalf("partition covers %d of %d", total, len(records))
	}
}
