package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Sample is one benchwatch poll of the daemon: the /status scoreboard plus
// the few /debug/telemetry instruments the harness tracks. One Sample is
// one samples.csv row.
type Sample struct {
	// At is when the poll happened.
	At time.Time
	// Rounds/ReportsTotal/Records/PendingBatches/BacklogSeconds mirror the
	// /status fields of the same names.
	Rounds         int
	ReportsTotal   int
	Records        int
	PendingBatches int
	BacklogSeconds float64
	// Reports1mTotal is the daemon's trailing-60s committed-report count.
	Reports1mTotal int
	// ReportsPerSec is the committed-report rate since the previous sample
	// (0 on the first).
	ReportsPerSec float64
	// RoundP95Ms is the round-duration p95 from /status.
	RoundP95Ms float64
	// EnrichP95Ms is the per-record enrichment latency p95
	// (pipeline.enrich.record histogram), 0 until records flow.
	EnrichP95Ms float64
	// StreamQueueDepth is the streaming pipeline's queue-depth gauge.
	StreamQueueDepth int64
	// CursorLagMaxSeconds is the worst per-forum collection cursor lag.
	CursorLagMaxSeconds float64
	// InjectedPosts is the cumulative load-injection post count.
	InjectedPosts int
}

// csvHeader is the samples.csv column layout, in order.
var csvHeader = []string{
	"at", "rounds", "reports_total", "records", "pending_batches",
	"backlog_seconds", "reports_1m_total", "reports_per_sec", "round_p95_ms",
	"enrich_p95_ms", "stream_queue_depth", "cursor_lag_max_seconds",
	"injected_posts",
}

// WriteCSVHeader writes the samples.csv header row.
func WriteCSVHeader(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVRow appends one sample as a CSV row. Rows are written one at a
// time (and the writer flushed) so a crashed run still leaves a usable
// timeseries behind.
func WriteCSVRow(w io.Writer, s Sample) error {
	cw := csv.NewWriter(w)
	row := []string{
		s.At.UTC().Format(time.RFC3339Nano),
		strconv.Itoa(s.Rounds),
		strconv.Itoa(s.ReportsTotal),
		strconv.Itoa(s.Records),
		strconv.Itoa(s.PendingBatches),
		formatFloat(s.BacklogSeconds),
		strconv.Itoa(s.Reports1mTotal),
		formatFloat(s.ReportsPerSec),
		formatFloat(s.RoundP95Ms),
		formatFloat(s.EnrichP95Ms),
		strconv.FormatInt(s.StreamQueueDepth, 10),
		formatFloat(s.CursorLagMaxSeconds),
		strconv.Itoa(s.InjectedPosts),
	}
	if err := cw.Write(row); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a samples.csv produced by WriteCSVHeader/WriteCSVRow.
func ReadCSV(r io.Reader) ([]Sample, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("bench: read samples: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != "at" {
		return nil, fmt.Errorf("bench: samples: unexpected header %v", rows[0])
	}
	out := make([]Sample, 0, len(rows)-1)
	for i, row := range rows[1:] {
		s, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("bench: samples row %d: %w", i+2, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseRow(row []string) (Sample, error) {
	if len(row) != len(csvHeader) {
		return Sample{}, fmt.Errorf("want %d columns, got %d", len(csvHeader), len(row))
	}
	var s Sample
	var err error
	if s.At, err = time.Parse(time.RFC3339Nano, row[0]); err != nil {
		return Sample{}, err
	}
	ints := []struct {
		dst *int
		col int
	}{
		{&s.Rounds, 1}, {&s.ReportsTotal, 2}, {&s.Records, 3},
		{&s.PendingBatches, 4}, {&s.Reports1mTotal, 6}, {&s.InjectedPosts, 12},
	}
	for _, f := range ints {
		if *f.dst, err = strconv.Atoi(row[f.col]); err != nil {
			return Sample{}, fmt.Errorf("column %s: %w", csvHeader[f.col], err)
		}
	}
	floats := []struct {
		dst *float64
		col int
	}{
		{&s.BacklogSeconds, 5}, {&s.ReportsPerSec, 7}, {&s.RoundP95Ms, 8},
		{&s.EnrichP95Ms, 9}, {&s.CursorLagMaxSeconds, 11},
	}
	for _, f := range floats {
		if *f.dst, err = strconv.ParseFloat(row[f.col], 64); err != nil {
			return Sample{}, fmt.Errorf("column %s: %w", csvHeader[f.col], err)
		}
	}
	if s.StreamQueueDepth, err = strconv.ParseInt(row[10], 10, 64); err != nil {
		return Sample{}, fmt.Errorf("column %s: %w", csvHeader[10], err)
	}
	return s, nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
