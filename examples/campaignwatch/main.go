// Campaignwatch demonstrates streaming use of the collectors: instead of
// batch-collecting and then analyzing, it consumes reports as they arrive
// from the Twitter firehose, clusters them into live campaigns by
// (brand, scam type, domain), and prints a rolling situation board — the
// "automated algorithms to identify and share user-reported smishing
// texts with stakeholders" the paper recommends (§7.2).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/smishkit/smishkit"
	"github.com/smishkit/smishkit/internal/annotate"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/screenshot"
	"github.com/smishkit/smishkit/internal/urlinfo"
)

// campaign is a live cluster of related reports.
type campaign struct {
	Brand    string
	ScamType string
	Domains  map[string]bool
	Senders  map[string]bool
	Reports  int
	First    time.Time
	Last     time.Time
}

func main() {
	log.SetFlags(0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	world := smishkit.GenerateWorld(smishkit.WorldConfig{Seed: 9, Messages: 2500})
	sim, err := core.StartSimulation(world)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	extractor := screenshot.StructuredVision{}
	campaigns := map[string]*campaign{}
	processed := 0

	// Stream straight out of the collector sink: no batch step.
	collector := forum.NewTwitterCollector(sim.TwitterURL, sim.TwitterBearer)
	err = collector.Collect(ctx, func(rep forum.RawReport) error {
		text, sender := "", ""
		if rep.HasAttachment() {
			img, err := screenshot.Decode(rep.Attachment)
			if err != nil {
				return nil // skip broken media, keep streaming
			}
			ext, err := extractor.Extract(img)
			if err != nil || !ext.OK {
				return nil
			}
			text, sender = ext.Text, ext.Sender
		} else if t, s, ok := quoted(rep.Body); ok {
			text, sender = t, s
		} else {
			return nil
		}

		ann := annotate.Annotate(text, "")
		domain := ""
		if urls := urlinfo.ExtractURLs(text); len(urls) > 0 {
			if info, err := urlinfo.Parse(urls[0]); err == nil {
				domain = info.Domain
			}
		}
		key := ann.Brand + "|" + string(ann.ScamType)
		c, ok := campaigns[key]
		if !ok {
			c = &campaign{
				Brand: ann.Brand, ScamType: string(ann.ScamType),
				Domains: map[string]bool{}, Senders: map[string]bool{},
				First: rep.PostedAt,
			}
			campaigns[key] = c
		}
		c.Reports++
		c.Last = rep.PostedAt
		if domain != "" {
			c.Domains[domain] = true
		}
		if sender != "" {
			c.Senders[sender] = true
		}
		processed++
		if processed%500 == 0 {
			fmt.Printf("... %d reports streamed, %d live campaigns\n", processed, len(campaigns))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Final situation board: top campaigns by report volume.
	type row struct {
		key string
		c   *campaign
	}
	rows := make([]row, 0, len(campaigns))
	for k, c := range campaigns {
		rows = append(rows, row{k, c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].c.Reports > rows[j].c.Reports })

	fmt.Printf("\nsituation board: %d reports, %d campaigns\n", processed, len(campaigns))
	fmt.Printf("%-28s %-12s %8s %8s %8s\n", "brand", "type", "reports", "domains", "senders")
	for i, r := range rows {
		if i == 12 {
			break
		}
		brand := r.c.Brand
		if brand == "" {
			brand = "(unbranded)"
		}
		fmt.Printf("%-28s %-12s %8d %8d %8d\n",
			brand, r.c.ScamType, r.c.Reports, len(r.c.Domains), len(r.c.Senders))
	}
}

// quoted parses `commentary: "SMS" from SENDER` post bodies.
func quoted(body string) (text, sender string, ok bool) {
	start := -1
	for i, r := range body {
		if r == '"' {
			start = i
			break
		}
	}
	if start < 0 {
		return "", "", false
	}
	end := -1
	for i := len(body) - 1; i > start; i-- {
		if body[i] == '"' {
			end = i
			break
		}
	}
	if end <= start {
		return "", "", false
	}
	text = body[start+1 : end]
	rest := body[end+1:]
	const fromMark = " from "
	if i := len(rest) - len(fromMark); i >= 0 {
		for j := 0; j+len(fromMark) <= len(rest); j++ {
			if rest[j:j+len(fromMark)] == fromMark {
				sender = rest[j+len(fromMark):]
				break
			}
		}
	}
	return text, sender, true
}
