package avscan

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Report is a VirusTotal-style aggregate scan result.
type Report struct {
	URL      string             `json:"url"`
	Verdicts map[string]Verdict `json:"verdicts"` // vendor -> verdict
	Stats    ReportStats        `json:"stats"`
}

// ReportStats counts verdicts by class.
type ReportStats struct {
	Malicious  int `json:"malicious"`
	Suspicious int `json:"suspicious"`
	Harmless   int `json:"harmless"`
}

// Store holds per-domain ground-truth detectability, fed from the corpus.
type Store struct {
	mu            sync.RWMutex
	detectability map[string]float64 // by registrable domain
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{detectability: make(map[string]float64)} }

// SetDetectability registers a domain's ground-truth detectability.
func (s *Store) SetDetectability(domain string, d float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detectability[strings.ToLower(domain)] = d
}

// detectabilityOf resolves the detectability for a URL: the registered
// value of the longest matching domain suffix, else a deterministic
// pseudo-value.
func (s *Store) detectabilityOf(rawURL string) float64 {
	host := hostOf(rawURL)
	s.mu.RLock()
	defer s.mu.RUnlock()
	labels := strings.Split(host, ".")
	for i := 0; i < len(labels)-1; i++ {
		if d, ok := s.detectability[strings.Join(labels[i:], ".")]; ok {
			return d
		}
	}
	return DefaultDetectability(rawURL)
}

func hostOf(rawURL string) string {
	s := rawURL
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return strings.ToLower(rawURL)
	}
	return strings.ToLower(u.Hostname())
}

// Scan produces the full multi-vendor report for a URL.
func (s *Store) Scan(rawURL string) Report {
	d := s.detectabilityOf(rawURL)
	rep := Report{URL: rawURL, Verdicts: make(map[string]Verdict, len(Vendors))}
	for _, v := range Vendors {
		verdict := verdictFor(v, rawURL, d)
		rep.Verdicts[v.Name] = verdict
		switch verdict {
		case VerdictMalicious:
			rep.Stats.Malicious++
		case VerdictSuspicious:
			rep.Stats.Suspicious++
		default:
			rep.Stats.Harmless++
		}
	}
	return rep
}

// GSBResult is the Safe Browsing API answer for one URL.
type GSBResult struct {
	URL     string `json:"url"`
	Matched bool   `json:"matched"`
	Threat  string `json:"threat,omitempty"` // SOCIAL_ENGINEERING when matched
}

// GSBLookup runs the Safe Browsing check.
func (s *Store) GSBLookup(rawURL string) GSBResult {
	d := s.detectabilityOf(rawURL)
	res := GSBResult{URL: rawURL, Matched: GSBAPIDetects(rawURL, d)}
	if res.Matched {
		res.Threat = "SOCIAL_ENGINEERING"
	}
	return res
}

// TransparencyResult is the transparency-report site's answer.
type TransparencyResult struct {
	URL    string             `json:"url"`
	Status TransparencyStatus `json:"status"`
}

// Transparency runs the transparency-report check; blocked reports whether
// the site refused the automated query.
func (s *Store) Transparency(rawURL string) (TransparencyResult, bool) {
	if TransparencyBlocked(rawURL) {
		return TransparencyResult{URL: rawURL}, true
	}
	d := s.detectabilityOf(rawURL)
	return TransparencyResult{URL: rawURL, Status: TransparencyLookup(rawURL, d)}, false
}

// MaxBulk is the largest accepted bulk-scan batch.
const MaxBulk = 500

// Server exposes the endpoints mirroring the paper's three data paths:
//
//	GET  /vt/v1/scan?url=...                VirusTotal-style aggregate
//	POST /vt/v1/scan/bulk {"urls": [...]}   bulk aggregate (max 500)
//	GET  /gsb/v4/lookup?url=...             Safe Browsing API
//	POST /gsb/v4/lookup/bulk {"urls":[...]} bulk Safe Browsing (max 500)
//	GET  /transparency/report?url=...       GSB transparency site (often 403)
//
// The transparency site has no bulk form: it refuses automation, which is
// the point of that data path.
type Server struct {
	store   *Store
	apiKey  string
	limiter *netutil.TokenBucket
}

// NewServer wires the store into the HTTP service.
func NewServer(store *Store, apiKey string, ratePerSec float64) *Server {
	s := &Server{store: store, apiKey: apiKey}
	if ratePerSec > 0 {
		s.limiter = netutil.NewTokenBucket(int(ratePerSec*2)+1, ratePerSec)
	}
	return s
}

// Handler returns the routed handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /vt/v1/scan", s.withURL(func(w http.ResponseWriter, u string) {
		netutil.WriteJSON(w, http.StatusOK, s.store.Scan(u))
	}))
	mux.HandleFunc("GET /gsb/v4/lookup", s.withURL(func(w http.ResponseWriter, u string) {
		netutil.WriteJSON(w, http.StatusOK, s.store.GSBLookup(u))
	}))
	mux.HandleFunc("GET /transparency/report", s.withURL(func(w http.ResponseWriter, u string) {
		res, blocked := s.store.Transparency(u)
		if blocked {
			netutil.WriteError(w, http.StatusForbidden, "automated queries are not permitted")
			return
		}
		netutil.WriteJSON(w, http.StatusOK, res)
	}))
	mux.HandleFunc("POST /vt/v1/scan/bulk", s.withBulk(func(u string) (any, string) {
		return s.store.Scan(u), ""
	}))
	mux.HandleFunc("POST /gsb/v4/lookup/bulk", s.withBulk(func(u string) (any, string) {
		return s.store.GSBLookup(u), ""
	}))
	return netutil.RequireKey(s.apiKey, mux)
}

// bulkRequest / bulkResponse are the bulk wire shapes shared by the VT and
// GSB bulk endpoints; Results[i] answers URLs[i], with a non-empty Error
// marking that one slot as failed without poisoning the batch.
type bulkRequest struct {
	URLs []string `json:"urls"`
}

type bulkItem struct {
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

type bulkResponse struct {
	Results []bulkItem `json:"results"`
}

func (s *Server) withBulk(fn func(u string) (any, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req bulkRequest
		if err := netutil.ReadJSON(r, &req); err != nil {
			netutil.WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		if len(req.URLs) == 0 {
			netutil.WriteError(w, http.StatusBadRequest, "empty url list")
			return
		}
		if len(req.URLs) > MaxBulk {
			netutil.WriteError(w, http.StatusRequestEntityTooLarge, "batch exceeds limit")
			return
		}
		if s.limiter != nil && !s.limiter.AllowN(len(req.URLs)) {
			netutil.WriteRateLimited(w, s.limiter.RetryAfter(len(req.URLs)))
			return
		}
		resp := bulkResponse{Results: make([]bulkItem, len(req.URLs))}
		for i, u := range req.URLs {
			if strings.TrimSpace(u) == "" {
				resp.Results[i] = bulkItem{Error: "empty url"}
				continue
			}
			res, errMsg := fn(u)
			if errMsg != "" {
				resp.Results[i] = bulkItem{Error: errMsg}
				continue
			}
			resp.Results[i] = bulkItem{Result: res}
		}
		netutil.WriteJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) withURL(fn func(w http.ResponseWriter, u string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil && !s.limiter.Allow() {
			netutil.WriteRateLimited(w, s.limiter.RetryAfter(1))
			return
		}
		u := r.URL.Query().Get("url")
		if u == "" {
			netutil.WriteError(w, http.StatusBadRequest, "missing url parameter")
			return
		}
		fn(w, u)
	}
}

// ErrBlocked is returned by the transparency client when the site refuses
// an automated query.
var ErrBlocked = &netutil.APIError{Status: http.StatusForbidden, Body: "blocked"}

// Client consumes all three endpoints.
type Client struct {
	API netutil.Client
}

// NewClient builds a client for the service at baseURL.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{API: netutil.Client{BaseURL: baseURL, APIKey: apiKey}}
}

// Instrument records this client's calls, errors, retries, 429s, and
// latency into reg under the "avscan" service name. Returns c for chaining.
func (c *Client) Instrument(reg *telemetry.Registry) *Client {
	c.API.Metrics = telemetry.NewClientMetrics(reg, "avscan")
	return c
}

// Scan fetches the multi-vendor report.
func (c *Client) Scan(ctx context.Context, u string) (Report, error) {
	var out Report
	err := c.API.GetJSON(ctx, "/vt/v1/scan?url="+url.QueryEscape(u), &out)
	return out, err
}

// GSBLookup queries the Safe Browsing API.
func (c *Client) GSBLookup(ctx context.Context, u string) (GSBResult, error) {
	var out GSBResult
	err := c.API.GetJSON(ctx, "/gsb/v4/lookup?url="+url.QueryEscape(u), &out)
	return out, err
}

// ScanBatch fetches many multi-vendor reports in MaxBulk-sized batches
// with partial-result semantics: results[i] and errs[i] answer urls[i].
func (c *Client) ScanBatch(ctx context.Context, urls []string) ([]Report, []error) {
	return postBulk[Report](ctx, &c.API, "/vt/v1/scan/bulk", "scan", urls)
}

// GSBLookupBatch queries the Safe Browsing status of many URLs in
// MaxBulk-sized batches with partial-result semantics.
func (c *Client) GSBLookupBatch(ctx context.Context, urls []string) ([]GSBResult, []error) {
	return postBulk[GSBResult](ctx, &c.API, "/gsb/v4/lookup/bulk", "gsb lookup", urls)
}

// postBulk drives one bulk endpoint chunk by chunk: a transport-level
// failure fans out to every slot of its chunk, a per-item error lands on
// its slot alone.
func postBulk[V any](ctx context.Context, api *netutil.Client, path, label string, urls []string) ([]V, []error) {
	results := make([]V, len(urls))
	errs := make([]error, len(urls))
	type wireItem struct {
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	}
	for start := 0; start < len(urls); start += MaxBulk {
		end := start + MaxBulk
		if end > len(urls) {
			end = len(urls)
		}
		chunk := urls[start:end]
		var resp struct {
			Results []wireItem `json:"results"`
		}
		if err := api.PostJSON(ctx, path, bulkRequest{URLs: chunk}, &resp); err != nil {
			for i := start; i < end; i++ {
				errs[i] = err
			}
			continue
		}
		for i := range chunk {
			switch {
			case i >= len(resp.Results):
				errs[start+i] = fmt.Errorf("avscan: bulk response missing slot %d", i)
			case resp.Results[i].Error != "":
				errs[start+i] = fmt.Errorf("avscan: bulk %s %q: %s", label, chunk[i], resp.Results[i].Error)
			default:
				if err := json.Unmarshal(resp.Results[i].Result, &results[start+i]); err != nil {
					errs[start+i] = fmt.Errorf("avscan: decode bulk %s slot %d: %w", label, i, err)
				}
			}
		}
	}
	return results, errs
}

// Transparency queries the transparency report. blocked is true when the
// site refused the query (HTTP 403), mirroring the paper's inability to
// script half its URLs.
func (c *Client) Transparency(ctx context.Context, u string) (res TransparencyResult, blocked bool, err error) {
	err = c.API.GetJSON(ctx, "/transparency/report?url="+url.QueryEscape(u), &res)
	if netutil.IsStatus(err, http.StatusForbidden) {
		return TransparencyResult{URL: u}, true, nil
	}
	return res, false, err
}
