// Package bench is the closed-loop benchmark harness's math and config
// layer: env-file load profiles (cmd/loadgen), the samples.csv timeseries
// codec and summary.json aggregation (cmd/benchwatch), and the
// baseline-vs-latest regression comparison the CI gate runs. Keeping it
// all here — instead of inside the two commands — makes every piece unit
// testable and lets the commands stay thin flag-parsers.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Profile is one benchmark configuration, parsed from an env file
// (scripts/benchmark_profiles/*.env). The same file is sourced by
// scripts/run_benchmark.sh for the daemon-side knobs, so it must stay
// valid POSIX shell: KEY=VALUE lines and # comments only.
type Profile struct {
	// Name labels the run in summary.json (defaults to the file basename).
	Name string

	// Duration is how long loadgen drives traffic (BENCH_DURATION_SECONDS,
	// default 60).
	Duration time.Duration
	// BaseRPS is the steady synthetic report rate (BENCH_BASE_RPS,
	// default 5).
	BaseRPS float64
	// BurstRPS replaces BaseRPS during burst windows (BENCH_BURST_RPS,
	// default = BaseRPS, i.e. no pressure change).
	BurstRPS float64
	// BurstEvery is the burst cadence (BENCH_BURST_EVERY_SECONDS, 0 =
	// bursts disabled).
	BurstEvery time.Duration
	// BurstLen is each burst window's length (BENCH_BURST_LEN_SECONDS,
	// default 5 when bursts are enabled).
	BurstLen time.Duration
	// WaveMessages is how many synthetic reports one POST /inject carries
	// (BENCH_WAVE_MESSAGES, default 25): the RPS budget is spent in waves
	// of this size.
	WaveMessages int
	// Forums restricts injection to a subset of sources (BENCH_FORUMS,
	// comma-separated; empty = all five).
	Forums []string
	// NoiseFraction is the injected waves' decoy share (BENCH_NOISE_FRACTION,
	// 0 = generator default).
	NoiseFraction float64
	// Seed is the base seed for injected waves; wave i uses Seed+i
	// (BENCH_SEED, default 1).
	Seed int64

	// Daemon-side knobs, consumed by scripts/run_benchmark.sh when it
	// launches smishctl -serve (parsed here so a malformed profile fails
	// fast and loudly rather than half-applying):
	// WorldMessages is the daemon's initial corpus size
	// (BENCH_WORLD_MESSAGES, default 1000).
	WorldMessages int
	// Chaos is the daemon's injected fault mix rate (BENCH_CHAOS,
	// default 0).
	Chaos float64
	// PollInterval is the daemon's collection cadence
	// (BENCH_POLL_MS, default 500ms).
	PollInterval time.Duration
	// Shards is the daemon's key-shard count (BENCH_SHARDS, default 0 =
	// unsharded), passed through as smishctl -shards.
	Shards int
	// ShardFailover enables the daemon's shard lifecycle layer
	// (BENCH_SHARD_FAILOVER, 0/1, default 0), passed through as smishctl
	// -shard-failover. Requires Shards > 0.
	ShardFailover bool
	// ShardProbe is the daemon's shard health-probe cadence
	// (BENCH_SHARD_PROBE_MS, default 1s), passed through as smishctl
	// -shard-probe-interval when ShardFailover is on.
	ShardProbe time.Duration

	// Benchwatch knobs:
	// SampleInterval is the poll cadence (BENCH_SAMPLE_INTERVAL_SECONDS,
	// default 1s).
	SampleInterval time.Duration
	// WatchGrace extends watching past loadgen's end so the drain is
	// observed (BENCH_WATCH_GRACE_SECONDS, default 10).
	WatchGrace time.Duration

	// SLO thresholds:
	// TargetBacklogP95 is the primary KPI ceiling in seconds — the run
	// passes only while projection_backlog_p95_seconds stays strictly
	// below it (BENCH_TARGET_PROJECTION_BACKLOG_P95_SECONDS, default 30).
	TargetBacklogP95 float64
	// TargetRoundP95Ms caps the daemon's round-duration p95 in
	// milliseconds (BENCH_TARGET_ROUND_P95_MS, 0 = not enforced).
	TargetRoundP95Ms float64
	// MinReports is the least committed-report total a run must reach to
	// pass — the guard against a "fast" run that ingested nothing
	// (BENCH_MIN_REPORTS, default 1).
	MinReports int
}

// defaultProfile is the documented baseline every profile starts from.
func defaultProfile(name string) Profile {
	return Profile{
		Name:             name,
		Duration:         60 * time.Second,
		BaseRPS:          5,
		BurstRPS:         0, // resolved to BaseRPS in withDefaults
		BurstLen:         5 * time.Second,
		WaveMessages:     25,
		Seed:             1,
		WorldMessages:    1000,
		PollInterval:     500 * time.Millisecond,
		ShardProbe:       time.Second,
		SampleInterval:   time.Second,
		WatchGrace:       10 * time.Second,
		TargetBacklogP95: 30,
		MinReports:       1,
	}
}

func (p Profile) withDefaults() Profile {
	if p.BurstRPS == 0 {
		p.BurstRPS = p.BaseRPS
	}
	return p
}

// Thresholds extracts the profile's pass/fail gates.
func (p Profile) Thresholds() Thresholds {
	return Thresholds{
		BacklogP95Seconds: p.TargetBacklogP95,
		RoundP95Ms:        p.TargetRoundP95Ms,
		MinReports:        p.MinReports,
	}
}

// RateAt returns the target injection rate at elapsed time t: BurstRPS
// inside burst windows, BaseRPS otherwise. Burst windows open every
// BurstEvery and stay open for BurstLen.
func (p Profile) RateAt(t time.Duration) float64 {
	if p.BurstEvery <= 0 {
		return p.BaseRPS
	}
	if t < 0 {
		t = 0
	}
	if t%p.BurstEvery < p.BurstLen {
		return p.BurstRPS
	}
	return p.BaseRPS
}

// LoadProfile reads and parses one profile env file.
func LoadProfile(path string) (Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, fmt.Errorf("bench: open profile: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ParseProfile(f, name)
}

// ParseProfile parses an env-file profile: KEY=VALUE lines, # comments,
// blank lines. Unknown BENCH_* keys, non-BENCH keys, and malformed values
// are rejected — a typoed knob must fail the run, not silently fall back
// to a default.
func ParseProfile(r io.Reader, name string) (Profile, error) {
	p := defaultProfile(name)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return Profile{}, fmt.Errorf("bench: profile line %d: not KEY=VALUE: %q", lineNo, line)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(strings.Trim(strings.TrimSpace(value), `"'`))
		if err := p.set(key, value); err != nil {
			return Profile{}, fmt.Errorf("bench: profile line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return Profile{}, fmt.Errorf("bench: read profile: %w", err)
	}
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// set applies one KEY=VALUE pair.
func (p *Profile) set(key, value string) error {
	seconds := func(dst *time.Duration) error {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("%s: want a non-negative number of seconds, got %q", key, value)
		}
		*dst = time.Duration(v * float64(time.Second))
		return nil
	}
	millis := func(dst *time.Duration) error {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("%s: want a non-negative number of milliseconds, got %q", key, value)
		}
		*dst = time.Duration(v * float64(time.Millisecond))
		return nil
	}
	float := func(dst *float64) error {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("%s: want a non-negative number, got %q", key, value)
		}
		*dst = v
		return nil
	}
	integer := func(dst *int) error {
		v, err := strconv.Atoi(value)
		if err != nil || v < 0 {
			return fmt.Errorf("%s: want a non-negative integer, got %q", key, value)
		}
		*dst = v
		return nil
	}

	switch key {
	case "BENCH_DURATION_SECONDS":
		return seconds(&p.Duration)
	case "BENCH_BASE_RPS":
		return float(&p.BaseRPS)
	case "BENCH_BURST_RPS":
		return float(&p.BurstRPS)
	case "BENCH_BURST_EVERY_SECONDS":
		return seconds(&p.BurstEvery)
	case "BENCH_BURST_LEN_SECONDS":
		return seconds(&p.BurstLen)
	case "BENCH_WAVE_MESSAGES":
		return integer(&p.WaveMessages)
	case "BENCH_FORUMS":
		p.Forums = nil
		for _, f := range strings.Split(value, ",") {
			if f = strings.TrimSpace(f); f != "" {
				p.Forums = append(p.Forums, f)
			}
		}
		return nil
	case "BENCH_NOISE_FRACTION":
		if err := float(&p.NoiseFraction); err != nil {
			return err
		}
		if p.NoiseFraction > 1 {
			return fmt.Errorf("%s: want a fraction in [0,1], got %q", key, value)
		}
		return nil
	case "BENCH_SEED":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("%s: want an integer, got %q", key, value)
		}
		p.Seed = v
		return nil
	case "BENCH_WORLD_MESSAGES":
		return integer(&p.WorldMessages)
	case "BENCH_CHAOS":
		if err := float(&p.Chaos); err != nil {
			return err
		}
		if p.Chaos > 1 {
			return fmt.Errorf("%s: want a rate in [0,1], got %q", key, value)
		}
		return nil
	case "BENCH_POLL_MS":
		return millis(&p.PollInterval)
	case "BENCH_SHARDS":
		return integer(&p.Shards)
	case "BENCH_SHARD_FAILOVER":
		switch value {
		case "0":
			p.ShardFailover = false
		case "1":
			p.ShardFailover = true
		default:
			return fmt.Errorf("%s: want 0 or 1, got %q", key, value)
		}
		return nil
	case "BENCH_SHARD_PROBE_MS":
		return millis(&p.ShardProbe)
	case "BENCH_SAMPLE_INTERVAL_SECONDS":
		return seconds(&p.SampleInterval)
	case "BENCH_WATCH_GRACE_SECONDS":
		return seconds(&p.WatchGrace)
	case "BENCH_TARGET_PROJECTION_BACKLOG_P95_SECONDS":
		return float(&p.TargetBacklogP95)
	case "BENCH_TARGET_ROUND_P95_MS":
		return float(&p.TargetRoundP95Ms)
	case "BENCH_MIN_REPORTS":
		return integer(&p.MinReports)
	default:
		return fmt.Errorf("unknown profile key %q", key)
	}
}

// validate rejects combinations no run can execute.
func (p Profile) validate() error {
	if p.Duration <= 0 {
		return fmt.Errorf("bench: profile %s: BENCH_DURATION_SECONDS must be positive", p.Name)
	}
	if p.BaseRPS <= 0 {
		return fmt.Errorf("bench: profile %s: BENCH_BASE_RPS must be positive", p.Name)
	}
	if p.WaveMessages <= 0 {
		return fmt.Errorf("bench: profile %s: BENCH_WAVE_MESSAGES must be positive", p.Name)
	}
	if p.SampleInterval <= 0 {
		return fmt.Errorf("bench: profile %s: BENCH_SAMPLE_INTERVAL_SECONDS must be positive", p.Name)
	}
	if p.BurstEvery > 0 && p.BurstLen > p.BurstEvery {
		return fmt.Errorf("bench: profile %s: BENCH_BURST_LEN_SECONDS (%v) exceeds BENCH_BURST_EVERY_SECONDS (%v)",
			p.Name, p.BurstLen, p.BurstEvery)
	}
	if p.TargetBacklogP95 <= 0 {
		return fmt.Errorf("bench: profile %s: BENCH_TARGET_PROJECTION_BACKLOG_P95_SECONDS must be positive", p.Name)
	}
	if p.ShardFailover && p.Shards == 0 {
		return fmt.Errorf("bench: profile %s: BENCH_SHARD_FAILOVER=1 requires BENCH_SHARDS > 0", p.Name)
	}
	return nil
}
