package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/smishkit/smishkit/internal/senderid"
)

type generator struct {
	cfg   Config
	rng   *rand.Rand
	world *World
	msgID int
}

// Generate builds a complete synthetic world from cfg. The same Config
// always produces the same World.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		world: &World{
			Seed:       cfg.Seed,
			Domains:    make(map[string]Domain),
			Numbers:    make(map[string]Sender),
			Links:      make(map[string]ShortLink),
			NoisePosts: make(map[Forum]int),
		},
	}

	includeSBI := cfg.IncludeSBICampaign || cfg.Messages >= 5000
	if includeSBI {
		g.sbiCampaign()
	}
	for len(g.world.Messages) < cfg.Messages {
		g.campaign()
	}
	// Trim overshoot deterministically from the tail.
	if len(g.world.Messages) > cfg.Messages {
		g.world.Messages = g.world.Messages[:cfg.Messages]
	}
	for _, f := range Forums {
		share := forumWeights.weightOf(f) / forumWeights.total
		g.world.NoisePosts[f] = int(float64(cfg.Messages) * share * cfg.NoiseFraction)
	}
	return g.world
}

// weightOf returns the weight recorded for value v (comparable T only).
func (w *weighted[T]) weightOf(v T) float64 {
	for i := range w.values {
		if any(w.values[i]) == any(v) {
			return w.weights[i]
		}
	}
	return 0
}

// campaign synthesizes one campaign and its messages.
func (g *generator) campaign() {
	rng := g.rng
	scam := scamTypeWeights.sample(rng)
	country := g.pickCountry(scam)
	lang := g.pickLanguage(scam, country)
	brand := pickBrand(rng, scam, country)
	var sub OtherSubType
	if scam == ScamOthers {
		sub = otherSubTypeWeights.sample(rng)
		if sub == SubTech {
			// Tech impersonation needs a brand; resample until one lands.
			for attempt := 0; brand.Name == "" && attempt < 8; attempt++ {
				brand = pickBrand(rng, scam, country)
			}
			if brand.Name == "" {
				brand = BrandInfo{"Netflix", ScamOthers, "netflix"}
			}
		} else {
			brand = BrandInfo{} // conversation/crypto scams carry no brand
		}
	}

	// Heavy-tailed campaign size.
	size := 1 + int(math.Exp(rng.NormFloat64()*1.2+1.0))
	if size > 400 {
		size = 400
	}
	remaining := g.cfg.Messages - len(g.world.Messages)
	if size > remaining {
		size = remaining
	}
	if size <= 0 {
		return
	}

	start := g.campaignStart()
	camp := Campaign{
		ID:       fmt.Sprintf("c%05d", len(g.world.Campaigns)+1),
		ScamType: scam,
		SubType:  sub,
		Country:  country,
		Language: lang,
		Brand:    brand.Name,
		Start:    start,
		Size:     size,
	}

	// Infrastructure: one or two domains when the campaign sends URLs.
	p := urlProb[scam]
	if scam == ScamOthers {
		p = othersURLProb[sub]
	}
	usesURLs := rng.Float64() < p
	var domains []Domain
	if usesURLs {
		n := 1
		if size > 20 && rng.Float64() < 0.35 {
			n = 2
		}
		for i := 0; i < n; i++ {
			d := g.makeDomain(scam, brand.Slug, start)
			if (scam == ScamBanking || scam == ScamDelivery) && rng.Float64() < apkCampaignProb {
				g.attachAPK(&d)
			}
			g.world.Domains[d.Name] = d
			domains = append(domains, d)
			camp.Domains = append(camp.Domains, d.Name)
		}
	}
	useWaMe := scam == ScamHeyMumDad && rng.Float64() < 0.5

	shorten := usesURLs && rng.Float64() < shortenedProb[scam]
	shortener := ""
	if shorten {
		shortener = pickShortener(rng, scam)
	}

	// Sender pool shared across the campaign.
	nSenders := 1 + rng.Intn(6)
	if nSenders > size {
		nSenders = size
	}
	senders := make([]Sender, nSenders)
	for i := range senders {
		senders[i] = g.makeSender(scam, country, brand)
	}

	spanDays := 1 + rng.Intn(14)
	for i := 0; i < size; i++ {
		m := g.message(camp, scam, country, lang, brand, senders, domains, shortener, useWaMe, start, spanDays)
		g.world.Messages = append(g.world.Messages, m)
	}
	g.world.Campaigns = append(g.world.Campaigns, camp)
}

// sbiCampaign injects the Aug 3 2021 11:34 State Bank of India campaign
// that §5.1 identifies (850 near-simultaneous messages) and removes from
// Fig. 2. Size scales down with small corpora.
func (g *generator) sbiCampaign() {
	rng := g.rng
	// The campaign was 850 of the paper's 33,869 messages (~2.5%); scale
	// with the corpus so the global scam mix stays calibrated.
	size := g.cfg.Messages / 40
	if size > 850 {
		size = 850
	}
	if size < 10 {
		return
	}
	start := time.Date(2021, 8, 3, 11, 34, 0, 0, time.UTC)
	brand := BrandInfo{"State Bank of India", ScamBanking, "sbi"}
	camp := Campaign{
		ID:       "c-sbi-2021",
		ScamType: ScamBanking,
		Country:  "IND",
		Language: "en",
		Brand:    brand.Name,
		Start:    start,
		Size:     size,
	}
	d := g.makeDomain(ScamBanking, "sbi", start)
	g.world.Domains[d.Name] = d
	camp.Domains = []string{d.Name}

	nSenders := 12
	senders := make([]Sender, nSenders)
	for i := range senders {
		senders[i] = g.makeSender(ScamBanking, "IND", brand)
	}
	for i := 0; i < size; i++ {
		m := g.message(camp, ScamBanking, "IND", "en", brand, senders, []Domain{d}, "", false, start, 0)
		// The campaign broadcast within a single minute.
		m.SentAt = start.Add(time.Duration(rng.Intn(60)) * time.Second)
		g.world.Messages = append(g.world.Messages, m)
	}
	g.world.Campaigns = append(g.world.Campaigns, camp)
}

func (g *generator) message(camp Campaign, scam ScamType, country, lang string, brand BrandInfo,
	senders []Sender, domains []Domain, shortener string, useWaMe bool, start time.Time, spanDays int) Message {
	rng := g.rng
	g.msgID++

	sender := senders[rng.Intn(len(senders))]
	sentAt := g.sendTime(start, spanDays)

	var fullURL, shownURL, domainName, usedShortener string
	if len(domains) > 0 {
		d := domains[rng.Intn(len(domains))]
		domainName = d.Name
		path := "x"
		if kws := pathKeywords[scam]; len(kws) > 0 {
			path = kws[rng.Intn(len(kws))]
		}
		sub := ""
		if rng.Float64() < 0.3 {
			sub = pick(rng, "www.", "secure.", "m.", "app.")
		}
		fullURL = fmt.Sprintf("https://%s%s/%s", sub, d.Name, path)
		if rng.Float64() < 0.5 {
			fullURL += fmt.Sprintf("?id=%d", 10000+rng.Intn(90000))
		}
		shownURL = fullURL
		if shortener != "" && rng.Float64() < 0.9 {
			code := shortCode(rng)
			link := ShortLink{
				Service:   shortener,
				Code:      code,
				Target:    fullURL,
				CreatedAt: sentAt.Add(-time.Duration(rng.Intn(72)) * time.Hour),
				TakenDown: rng.Float64() < 0.35,
			}
			g.world.Links[shortener+"/"+code] = link
			shownURL = link.Short()
			usedShortener = shortener
		}
	} else if useWaMe {
		shownURL = fmt.Sprintf("https://wa.me/%d", 10000000000+rng.Int63n(899999999999))
		fullURL = shownURL
	}

	sampled := g.pickLures(scam)
	slots := map[string]string{
		"BRAND":  obfuscateBrand(rng, brand.Name),
		"URL":    shownURL,
		"AMOUNT": fakeAmount(rng, country),
		"CODE":   fakeCode(rng),
		"NAME":   fakeName(rng),
	}
	var text string
	var lures []Lure
	if scam == ScamOthers && camp.SubType != "" {
		text, lures = renderOthersText(rng, lang, camp.SubType, sampled, slots)
	} else {
		text, lures = renderText(rng, lang, scam, sampled, slots)
	}
	// Authority is structural: impersonating a trusted entity in an
	// institutional scam invokes the principle regardless of wording.
	if brand.Name != "" {
		switch scam {
		case ScamBanking, ScamDelivery, ScamGovernment, ScamTelecom:
			lures = append([]Lure{LureAuthority}, lures...)
		}
	}
	// Some conversation-scam templates have no {URL} slot; a campaign that
	// carries a link always places it in the text.
	if shownURL != "" && !strings.Contains(text, shownURL) {
		text += " " + shownURL
	}
	english := text
	if lang != "en" {
		english = englishGloss(rng, scam, slots)
		if shownURL != "" && !strings.Contains(english, shownURL) {
			english += " " + shownURL
		}
	}

	forum := forumWeights.sample(rng)
	hasShot := false
	switch forum {
	case ForumTwitter:
		hasShot = rng.Float64() < 0.92
	case ForumReddit:
		hasShot = rng.Float64() < 0.80
	case ForumSmishtank:
		hasShot = rng.Float64() < 0.85
	default: // smishing.eu and pastebin are text-only reports
		hasShot = false
	}

	m := Message{
		ID:             fmt.Sprintf("m%06d", g.msgID),
		Campaign:       camp.ID,
		ScamType:       scam,
		SubType:        camp.SubType,
		Language:       lang,
		Brand:          brand.Name,
		Lures:          lures,
		Text:           text,
		English:        english,
		URL:            shownURL,
		FinalURL:       fullURL,
		Domain:         domainName,
		Shortener:      usedShortener,
		Sender:         sender,
		SentAt:         sentAt,
		Forum:          forum,
		ReportedAt:     sentAt.Add(time.Duration(1+rng.Intn(96)) * time.Hour),
		HasScreenshot:  hasShot,
		ScreenshotTime: hasShot && rng.Float64() < 0.62,
		RedactSender:   rng.Float64() < 0.08,
		RedactURL:      shownURL != "" && rng.Float64() < 0.05,
	}
	return m
}

// pickCountry samples the campaign's target country given the scam type,
// combining the Table 14 base weights with the Fig. 3 affinities.
func (g *generator) pickCountry(scam ScamType) string {
	aff := scamCountryAffinity[scam]
	w := newWeighted[string]()
	for country, base := range countryBase {
		mult := 1.0
		if aff != nil {
			if m, ok := aff[country]; ok {
				mult = m
			}
		}
		w.add(country, base*mult)
	}
	// Map iteration order is random; rebuild deterministically by sorting.
	return sampleSorted(g.rng, w)
}

// sampleSorted samples from w with its entries sorted by value so that map
// construction order does not perturb determinism.
func sampleSorted(rng *rand.Rand, w *weighted[string]) string {
	type pair struct {
		v  string
		wt float64
	}
	pairs := make([]pair, len(w.values))
	for i := range w.values {
		pairs[i] = pair{w.values[i], w.weights[i]}
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].v < pairs[j-1].v; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	x := rng.Float64() * w.total
	for _, p := range pairs {
		x -= p.wt
		if x < 0 {
			return p.v
		}
	}
	return pairs[len(pairs)-1].v
}

func (g *generator) pickLanguage(scam ScamType, country string) string {
	rng := g.rng
	if rng.Float64() < englishBias[scam] {
		return "en"
	}
	if w, ok := countryLanguages[country]; ok {
		return w.sample(rng)
	}
	return "en"
}

func (g *generator) pickLures(scam ScamType) []Lure {
	profile := lureProfile[scam]
	var out []Lure
	for _, l := range Lures {
		if p, ok := profile[l]; ok && g.rng.Float64() < p {
			out = append(out, l)
		}
	}
	return out
}

// campaignStart samples a start instant honoring Table 15's year growth.
func (g *generator) campaignStart() time.Time {
	rng := g.rng
	for {
		year := yearWeights.sample(rng)
		day := rng.Intn(365)
		t := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, day)
		if !t.Before(g.cfg.From) && !t.After(g.cfg.To) {
			return t
		}
	}
}

// sendTime places a message inside the campaign window with Fig. 2's
// diurnal/weekday profile: weekday-biased, bulk between 09:00 and 20:00.
func (g *generator) sendTime(start time.Time, spanDays int) time.Time {
	rng := g.rng
	day := start
	if spanDays > 0 {
		day = start.AddDate(0, 0, rng.Intn(spanDays+1))
	}
	// Prefer weekdays: resample weekend days half the time.
	if wd := day.Weekday(); (wd == time.Saturday || wd == time.Sunday) && rng.Float64() < 0.5 {
		day = day.AddDate(0, 0, 2)
	}
	// Hour: normal around a per-weekday mean (Fig. 2's medians differ by
	// day — Mon 12:38 vs Wed 14:36 vs Sat 14:38 — which is what makes the
	// paper's KS tests significant), sigma 3.2h, clipped to [0,24).
	hourF := rng.NormFloat64()*3.2 + weekdayMeanHour[day.Weekday()]
	for hourF < 0 {
		hourF += 24
	}
	for hourF >= 24 {
		hourF -= 24
	}
	h := int(hourF)
	m := int((hourF - float64(h)) * 60)
	return time.Date(day.Year(), day.Month(), day.Day(), h, m, rng.Intn(60), 0, time.UTC)
}

// makeSender fabricates one sender identity and registers phone numbers in
// the world's HLR ground truth.
func (g *generator) makeSender(scam ScamType, country string, brand BrandInfo) Sender {
	rng := g.rng
	switch senderKindWeights.sample(rng) {
	case "email":
		return Sender{
			Kind:  senderid.KindEmail,
			Value: fmt.Sprintf("%s%d@%s", pick(rng, "info", "alert", "notice", "support"), rng.Intn(10000), pick(rng, "icloud.com", "gmail.com", "outlook.com")),
		}
	case "alphanumeric":
		return Sender{
			Kind:  senderid.KindAlphanumeric,
			Value: alphanumericID(rng, brand),
		}
	default:
		return g.makePhoneSender(country)
	}
}

func alphanumericID(rng rngT, brand BrandInfo) string {
	slug := strings.ToUpper(brand.Slug)
	if slug == "" {
		slug = pick(rng, "INFO", "ALERT", "NOTICE", "PROMO")
	}
	if len(slug) > 7 {
		slug = slug[:7]
	}
	// Aggregator-routed shortcodes vary widely per campaign (the paper saw
	// 5,762 distinct alphanumeric IDs); mix route prefixes, type suffixes
	// and per-campaign digits.
	switch rng.Intn(5) {
	case 0:
		return slug
	case 1:
		return pick(rng, "AD-", "VM-", "TX-", "BZ-", "JD-", "VK-") + slug
	case 2:
		return slug + pick(rng, "BNK", "MSG", "ALR", "OTP", "INF")
	case 3:
		return pick(rng, "AX", "BP", "CP", "DM", "TM", "QP") + "-" + slug
	default:
		return slug + fmt.Sprint(rng.Intn(1000))
	}
}

func (g *generator) makePhoneSender(country string) Sender {
	rng := g.rng
	class := numberClassWeights.sample(rng)
	if class == "bad_format" {
		return g.badFormatSender()
	}
	country, class = adaptClass(rng, country, class)
	prefix, nsnLen := mobilePrefix(rng, country, class)
	dial := senderid.DialCodeFor(country)
	if dial == "" {
		dial = "44"
		country = "GBR"
	}
	for attempt := 0; attempt < 100; attempt++ {
		nsn := prefix
		for len(nsn) < nsnLen {
			nsn += fmt.Sprint(rng.Intn(10))
		}
		value := "+" + dial + nsn
		if _, exists := g.world.Numbers[value]; exists {
			continue
		}
		s := Sender{
			Kind:       senderid.KindPhone,
			Value:      value,
			Country:    country,
			NumberType: senderid.NumberType(classToType(class)),
			Live:       rng.Float64() < 0.28,
		}
		if s.NumberType == senderid.TypeMobile || s.NumberType == senderid.TypeMobileOrLandline {
			s.MNO = pickMNO(rng, country)
		}
		g.world.Numbers[value] = s
		return s
	}
	return g.badFormatSender()
}

func classToType(class string) string { return class }

// badFormatSender emits the spoofed/malformed sender IDs of §4.1: overlong
// digit strings, unknown dial codes, or stubby numbers.
func (g *generator) badFormatSender() Sender {
	rng := g.rng
	var value string
	switch rng.Intn(3) {
	case 0: // too many digits
		digits := make([]byte, 17+rng.Intn(4))
		for i := range digits {
			digits[i] = byte('0' + rng.Intn(10))
		}
		value = "+" + string(digits)
	case 1: // unknown dial code
		value = fmt.Sprintf("+999%09d", rng.Intn(1e9))
	default: // stubby
		value = fmt.Sprintf("+%05d", rng.Intn(100000))
	}
	s := Sender{
		Kind:       senderid.KindPhone,
		Value:      value,
		NumberType: senderid.TypeBadFormat,
	}
	g.world.Numbers[value] = s
	return s
}

// weekdayMeanHour shifts the diurnal profile per weekday to match Fig. 2's
// medians (Mon 12:38, Tue 12:26, Wed 14:36, Thu 14:24, Fri 13:17,
// Sat 14:38, Sun 13:19).
var weekdayMeanHour = map[time.Weekday]float64{
	time.Monday:    12.6,
	time.Tuesday:   12.4,
	time.Wednesday: 14.6,
	time.Thursday:  14.4,
	time.Friday:    13.3,
	time.Saturday:  14.6,
	time.Sunday:    13.3,
}
