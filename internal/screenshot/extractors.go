package screenshot

import (
	"errors"
	"hash/fnv"
	"sort"
	"strings"
)

// Extraction is what an engine pulls out of an image — the four variables
// §3.2 needs: message text, timestamp, sender ID, and URL.
type Extraction struct {
	OK        bool   // false: not an SMS screenshot (engine rejected it)
	Text      string // message body as read
	Sender    string
	Timestamp string
	URL       string
}

// Extractor is one rung of the extraction ladder.
type Extractor interface {
	// Name identifies the engine in reports.
	Name() string
	// Extract reads an image. A nil error with OK=false means the engine
	// decided the image is not an SMS screenshot; engines that cannot make
	// that call return OK=true with whatever they read.
	Extract(img Image) (Extraction, error)
}

// ErrUnreadable is returned when an engine cannot read the image at all.
var ErrUnreadable = errors.New("screenshot: image unreadable for this engine")

// --- Rung 1: NaiveOCR (pytesseract-style) ---

// NaiveOCR reads glyphs row-major with no layout model. It fails outright
// on low-contrast custom themes, confuses visually similar characters
// (l/I/1, 0/O, 5/S), and cannot tell screenshots from posters.
type NaiveOCR struct {
	// ContrastFloor below which the engine returns ErrUnreadable
	// (default 0.5, the custom-theme failure from §3.2).
	ContrastFloor float64
}

// Name implements Extractor.
func (NaiveOCR) Name() string { return "naive-ocr" }

// confusions maps characters to what naive OCR misreads them as.
var confusions = map[rune]rune{
	'l': 'I', 'I': 'l', '1': 'l', '0': 'O', 'O': '0', '5': 'S', 'S': '5',
	'8': 'B', 'g': 'q', 'u': 'v',
}

// Extract implements Extractor.
func (o NaiveOCR) Extract(img Image) (Extraction, error) {
	floor := o.ContrastFloor
	if floor == 0 {
		floor = 0.5
	}
	if img.Theme.Contrast < floor {
		return Extraction{}, ErrUnreadable
	}
	var b strings.Builder
	for i, l := range img.Lines {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(garble(l.Text, img.Theme.Contrast))
	}
	// No layout model: everything is "text", sender/timestamp/URL are not
	// separated, and posters pass straight through (OK always true).
	return Extraction{OK: true, Text: b.String()}, nil
}

// garble applies deterministic per-position confusions; lower contrast
// garbles more.
func garble(s string, contrast float64) string {
	rate := (1 - contrast) * 0.6 // 0.95 contrast -> 3% of confusable glyphs
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		if sub, ok := confusions[r]; ok && unitHash(s, i) < rate {
			r = sub
		}
		b.WriteRune(r)
	}
	return b.String()
}

func unitHash(s string, i int) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	_, _ = h.Write([]byte{byte(i), byte(i >> 8)})
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x>>11) / float64(1<<53)
}

// --- Rung 2: VisionOCR (Google-Vision-style) ---

// VisionOCR recognizes individual characters perfectly on any theme, but
// orders detected text blocks by detection geometry (left edge, then
// longest first) instead of reading order — so wrapped URL fragments
// detach from their first line, exactly the failure §3.2 reports. It also
// cannot reject non-SMS images.
type VisionOCR struct{}

// Name implements Extractor.
func (VisionOCR) Name() string { return "vision-ocr" }

// Extract implements Extractor.
func (VisionOCR) Extract(img Image) (Extraction, error) {
	lines := make([]Line, len(img.Lines))
	copy(lines, img.Lines)
	// Block detection sorts by left edge, then by line length descending —
	// a stand-in for confidence-ordered output.
	sort.SliceStable(lines, func(i, j int) bool {
		if lines[i].Left != lines[j].Left {
			return lines[i].Left < lines[j].Left
		}
		return len(lines[i].Text) > len(lines[j].Text)
	})
	parts := make([]string, len(lines))
	for i, l := range lines {
		parts[i] = l.Text
	}
	return Extraction{OK: true, Text: strings.Join(parts, "\n")}, nil
}

// --- Rung 3: StructuredVision (LLM-vision-style) ---

// StructuredVision follows the paper's custom prompt (Appendix D.1): it
// classifies whether the image is an SMS screenshot at all, and if so
// returns the four fields in reading order with the URL reassembled across
// wrapped lines.
type StructuredVision struct{}

// Name implements Extractor.
func (StructuredVision) Name() string { return "structured-vision" }

// Extract implements Extractor.
func (StructuredVision) Extract(img Image) (Extraction, error) {
	if img.Kind != KindSMS {
		// "Do not extract the details if it is not a screenshot of the
		// SMS message and return the below parameters empty."
		return Extraction{OK: false}, nil
	}
	var body []string
	ext := Extraction{OK: true}
	for _, l := range img.Lines {
		switch l.Region {
		case "header":
			ext.Timestamp = l.Text
		case "sender":
			ext.Sender = l.Text
		default:
			body = append(body, l.Text)
		}
	}
	ext.Text = joinWrapped(body)
	ext.URL = firstURL(ext.Text)
	return ext, nil
}

// joinWrapped reconstitutes the original text from bubble lines: lines that
// were hard-split mid-token (no trailing space possible in wrap output) are
// rejoined when the break is inside a URL-looking token.
func joinWrapped(lines []string) string {
	var b strings.Builder
	for i, l := range lines {
		if i > 0 {
			prev := lines[i-1]
			if splitMidToken(prev, l) {
				// Continuation of a hard-split token: no space.
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString(l)
	}
	return b.String()
}

// splitMidToken detects a hard-split: the previous line ends without
// sentence punctuation in the middle of a long token (URL), and the next
// line starts with a URL-ish continuation.
func splitMidToken(prev, next string) bool {
	if prev == "" || next == "" {
		return false
	}
	last := prev[len(prev)-1]
	first := next[0]
	lastTok := prev
	if i := strings.LastIndexByte(prev, ' '); i >= 0 {
		lastTok = prev[i+1:]
	}
	urlish := strings.Contains(lastTok, "://") || strings.Contains(lastTok, ".") && strings.Contains(lastTok, "/")
	return urlish && last != '.' && last != '!' && last != '?' &&
		(isWordByte(first) || first == '/' || first == '?' || first == '=' || first == '-' || first == '.')
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// firstURL pulls the first URL-looking token from text.
func firstURL(text string) string {
	for _, tok := range strings.Fields(text) {
		tok = strings.TrimRight(tok, ".,;:!?)")
		if strings.HasPrefix(tok, "http://") || strings.HasPrefix(tok, "https://") {
			return tok
		}
		if strings.Count(tok, ".") >= 1 && strings.Contains(tok, "/") && !strings.ContainsAny(tok, "@") {
			if len(tok) > 5 && !strings.HasPrefix(tok, "/") {
				return tok
			}
		}
	}
	return ""
}
