// Package smishkit is a research toolkit that reproduces "Fishing for
// Smishing: Understanding SMS Phishing Infrastructure and Strategies by
// Mining Public User Reports" (IMC 2025) as a runnable system.
//
// The toolkit has three layers:
//
//   - A synthetic world generator calibrated to the paper's published
//     distributions: smishing campaigns, sender infrastructure (phone
//     numbers, operators, spoofed IDs), and web infrastructure (domains,
//     registrars, TLS certificates, hosting ASes, URL shorteners).
//   - A simulation that boots that world as real network services on
//     loopback: five report forums (Twitter-, Reddit-, Smishtank-,
//     smishing.eu- and Pastebin-shaped), an HLR lookup service, WHOIS, a
//     CT-log search, passive DNS with IP-to-ASN, a multi-vendor URL
//     scanner with a Safe-Browsing API, URL shorteners, and the scammers'
//     own hosting (with Android drive-by downloads).
//   - The measurement pipeline from the paper: collect -> extract fields
//     from screenshots -> curate -> enrich -> annotate -> report, ending
//     in typed reproductions of the paper's Tables 1-19 and Figures 2-3.
//
// Quick start:
//
//	study, err := smishkit.NewStudy(smishkit.Options{Seed: 1, Messages: 4000})
//	if err != nil { ... }
//	defer study.Close()
//	ds, err := study.Run(ctx)
//	if err != nil { ... }
//	smishkit.WriteReport(os.Stdout, ds)
package smishkit

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/smishkit/smishkit/internal/batchmux"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/enrichcache"
	"github.com/smishkit/smishkit/internal/faultinject"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/recordlog"
	"github.com/smishkit/smishkit/internal/report"
	"github.com/smishkit/smishkit/internal/resilience"
	"github.com/smishkit/smishkit/internal/screenshot"
	"github.com/smishkit/smishkit/internal/shard"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Re-exported core types so downstream users never import internal paths.
type (
	// World is the synthetic ground truth a simulation is seeded from.
	World = corpus.World
	// WorldConfig controls world generation (seed, scale, epoch).
	WorldConfig = corpus.Config
	// Message is one ground-truth smishing message.
	Message = corpus.Message
	// Simulation is the set of booted loopback servers.
	Simulation = core.Simulation
	// Dataset is the curated, enriched, annotated record set.
	Dataset = core.Dataset
	// Record is one curated report.
	Record = core.Record
	// Services bundles enrichment clients.
	Services = core.Services
	// PipelineOptions tunes extraction and enrichment.
	PipelineOptions = core.Options
	// RawReport is one collected forum post.
	RawReport = forum.RawReport

	// Collector aggregates telemetry from a study: pipeline stage spans,
	// per-record curation outcomes, and per-service client call metrics.
	Collector = telemetry.Registry
	// Telemetry is a point-in-time snapshot of a Collector.
	Telemetry = telemetry.Snapshot
	// HistogramStats summarizes one latency histogram in a Telemetry
	// snapshot (count, min/mean/max, p50/p90/p99).
	HistogramStats = telemetry.HistogramStats
	// SpanStats summarizes one named pipeline-stage span.
	SpanStats = telemetry.SpanStats
	// ClientMetrics is the per-service instrument bundle recorded by every
	// enrichment client.
	ClientMetrics = telemetry.ClientMetrics

	// CacheConfig tunes the shared enrichment cache (Options.Cache):
	// positive/negative TTLs, the per-service LRU bound, the
	// serve-stale-on-5xx degraded mode, and per-service overrides.
	// &CacheConfig{} selects the documented defaults.
	CacheConfig = enrichcache.Config
	// CacheServiceConfig overrides the cache bounds of one service
	// (keyed "hlr", "whois", "ctlog", "dnsdb", "avscan", "shortener").
	CacheServiceConfig = enrichcache.ServiceConfig
	// CacheStats maps each enrichment service to its cache scoreboard.
	CacheStats = enrichcache.Stats
	// CacheServiceStats is one service's hit/miss/coalesced/negative/
	// stale/eviction counts plus the live entry count.
	CacheServiceStats = enrichcache.ServiceStats

	// BatchConfig tunes the windowed batching tier (Options.Batch): window
	// size, partial-window flush interval, the detached bulk-call timeout,
	// the cross-service in-flight cap, and per-service overrides.
	// &BatchConfig{} selects the documented defaults.
	BatchConfig = batchmux.Config
	// BatchServiceConfig overrides the batching bounds of one service
	// (keyed "hlr", "dnsdb", "avscan").
	BatchServiceConfig = batchmux.ServiceConfig
	// BatchStats maps each batchable service to its batching scoreboard.
	BatchStats = batchmux.Stats
	// BatchServiceStats is one service's flush/batched-keys/coalesced/
	// fallthrough counts.
	BatchServiceStats = batchmux.ServiceStats

	// FaultConfig seeds the deterministic chaos layer (Options.Faults):
	// per-service error / 429 / 5xx / hang / latency rates and flapping
	// windows, all driven by one seed so a failing run reproduces exactly.
	FaultConfig = faultinject.Config
	// ServiceFaults is the fault mix for one service (FaultConfig.Default
	// or a FaultConfig.PerService entry).
	ServiceFaults = faultinject.ServiceFaults

	// ResilienceConfig tunes the resilience layer (Options.Resilience):
	// per-service circuit breakers plus the pipeline's per-record deadline
	// budget, per-call timeout, and run-level failure-rate abort.
	// &ResilienceConfig{} selects the documented defaults.
	ResilienceConfig = resilience.Config
	// BreakerConfig tunes one circuit breaker (failure threshold, open
	// timeout, half-open probe budget).
	BreakerConfig = resilience.BreakerConfig
	// ResilienceStats maps each enrichment service to its breaker
	// scoreboard (state, opens, short-circuits, probes, outcomes).
	ResilienceStats = resilience.Stats
	// BreakerStats is one service's breaker scoreboard.
	BreakerStats = resilience.BreakerStats
	// EnrichmentError records one record field lost to a service failure
	// during a degraded (partial) enrichment.
	EnrichmentError = core.EnrichmentError

	// DurabilityConfig tunes the durable record log (Options.Durability):
	// the data directory, the snapshot refresh interval, and the log size
	// that triggers compaction. Only Dir is required.
	DurabilityConfig = recordlog.Config
	// DurabilityStats is the record log scoreboard: appends, replayed
	// records, dedup hits, snapshots, compactions, and damage counters.
	DurabilityStats = recordlog.Stats

	// ShardStats is the sharding scoreboard (Study.ShardStats,
	// Stats().Shards): routed-record totals and per-shard tier stats.
	ShardStats = shard.GroupStats
	// ShardWorkerSpec is the JSON document a shard worker process builds
	// its stack from (Study.ShardWorkerSpec emits it, RunShardWorker
	// consumes it).
	ShardWorkerSpec = shard.WorkerSpec
)

// NewCollector returns an empty telemetry collector, for sharing one
// registry across several studies or wiring external instrumentation via
// Options.Collector.
func NewCollector() *Collector { return telemetry.NewRegistry() }

// Extractor engines for PipelineOptions.Extractor, in ladder order.
var (
	// ExtractorNaiveOCR is the pytesseract-style rung: fails on custom
	// themes and confuses similar glyphs.
	ExtractorNaiveOCR screenshot.Extractor = screenshot.NaiveOCR{}
	// ExtractorVisionOCR is the Google-Vision-style rung: perfect glyphs,
	// scrambled reading order.
	ExtractorVisionOCR screenshot.Extractor = screenshot.VisionOCR{}
	// ExtractorStructuredVision is the rung the paper settled on.
	ExtractorStructuredVision screenshot.Extractor = screenshot.StructuredVision{}
)

// GenerateWorld builds a deterministic synthetic world.
func GenerateWorld(cfg WorldConfig) *World { return corpus.Generate(cfg) }

// StartSimulation boots every forum and intelligence service for a world.
func StartSimulation(w *World) (*Simulation, error) { return core.StartSimulation(w) }

// Options configures a Study end to end.
type Options struct {
	// Seed drives every random draw in world generation (default 0, a
	// valid deterministic seed).
	Seed int64
	// Messages is the synthetic corpus size (default 4000; negative is a
	// construction error).
	Messages int
	// Pipeline tunes extraction, enrichment, and streaming; its zero value
	// selects the documented per-field defaults.
	Pipeline PipelineOptions
	// Collector, when non-nil, receives every metric the study produces:
	// the four pipeline stage spans (collect/curate/enrich/annotate),
	// curation outcomes, and per-service client call/error/retry/429/
	// latency instruments. When nil a private collector is created; either
	// way Study.Telemetry and the simulation's /debug/telemetry endpoint
	// observe the same registry.
	Collector *Collector
	// Cache, when non-nil, inserts the shared enrichment cache between
	// the pipeline and every service client: singleflight-coalesced
	// lookups, per-service TTL + LRU bounds, negative-result caching,
	// and (when CacheConfig.ServeStale is set) stale answers instead of
	// hard failures on upstream 5xx. Hit/miss/coalesced counters land in
	// the study's collector under "cache.<service>.*"; Study.CacheStats
	// reads the same numbers as a typed snapshot.
	Cache *CacheConfig
	// Batch, when non-nil, inserts the windowed batching tier between the
	// cache and the fault layer: cache misses for batchable services (HLR,
	// passive DNS, the VT aggregate, GSB status) accumulate in per-service
	// windows and flush as one bulk request on size or timer, with in-window
	// dedup and per-key error demultiplexing. Services whose client has no
	// bulk seam fall through to per-key calls, counted. Flush/batch-size/
	// coalesced/fallthrough counters land in the collector under
	// "batch.<service>.*"; Study.BatchStats reads the same numbers as a
	// typed snapshot.
	Batch *BatchConfig
	// Faults, when non-nil, injects deterministic faults (errors, 429/5xx
	// bursts, hangs, latency spikes, flapping windows) between the cache
	// and the real service clients — chaos testing for the pipeline's
	// degraded paths. Injections land in the collector under
	// "fault.<service>.*".
	Faults *FaultConfig
	// Resilience, when non-nil, adds per-service circuit breakers outside
	// the cache (so serve-stale still sees upstream 5xx) and applies the
	// config's record budget / call timeout / abort-threshold knobs to the
	// pipeline. Breaker state lands in the collector under
	// "breaker.<service>.*"; Study.ResilienceStats reads the same numbers
	// as a typed snapshot.
	Resilience *ResilienceConfig
	// Service, when non-nil, configures Study.Serve — the long-running
	// daemon mode that polls the forums incrementally, maintains the report
	// projection, and exposes a status endpoint. Service mode requires
	// Pipeline.Streaming (the daemon feeds each round through the streaming
	// pipeline); see ServiceConfig for the per-field defaults.
	Service *ServiceConfig
	// Durability, when non-nil, makes the served dataset survive process
	// death: every committed round's enriched records are appended to a
	// CRC-framed log under DurabilityConfig.Dir (fsynced before the
	// round's cursors commit), injected waves are journaled, and periodic
	// snapshots plus size-triggered compaction bound restart cost to one
	// snapshot + log tail. A restarted study replays the log into its
	// projection instead of re-enriching history, and replays the inject
	// journal into its fresh simulation so durable cursors stay resolvable.
	// Requires Options.Service. Metrics land in the collector under
	// "recordlog.*"; Study.Stats().Durability is the typed snapshot.
	Durability *DurabilityConfig
	// Shards, when non-nil, partitions enrichment by stable key across N
	// shard instances: records are curated once, routed by a
	// consistent-hash ring over their registrable domain (falling back to
	// sender ID, then record ID), enriched by per-shard tier stacks — each
	// shard owns its own cache, batchmux windows, and breaker set,
	// recording under "shard.<i>.*" — and scattered back into curation
	// order, so shards=1 and shards=N produce record-identical output.
	// With sharding on, the Cache/Batch/Faults/Resilience configs build
	// each shard's private tiers instead of one global set, and
	// Study.Stats().Cache/Batch/Resilience are nil — Stats().Shards
	// carries the per-shard scoreboards. Batch runs route through the
	// shards too (Pipeline.Streaming only shapes the unsharded path).
	Shards *ShardConfig
}

// ShardConfig tunes Options.Shards.
type ShardConfig struct {
	// Shards is the shard count (>= 1; 1 is a valid single-shard ring,
	// useful for like-for-like comparisons against N > 1).
	Shards int
	// Replicas is the ring's virtual-node count per shard (0 selects the
	// default of 128).
	Replicas int
	// WorkerURLs, when set, makes every shard remote: element i is the
	// base URL of an already-running shard worker process (see
	// RunShardWorker). Must have exactly Shards elements. Leave empty for
	// in-process shards; Study.ConnectShardWorkers can switch a study to
	// remote workers after construction (the order cmd/smishctl needs,
	// since workers dial the study's own simulation).
	WorkerURLs []string
	// Failover turns on the shard lifecycle layer: a background prober
	// tracks each shard's health ("shard.<i>.health" gauges), and when a
	// shard's dispatch fails or its probe marks it down, its routed subset
	// is re-dispatched to surviving shards via the ring's next-alive
	// mapping. Output stays record-identical because enrichment is a pure
	// function of the routing key — only the executing stack changes. With
	// Failover off (the default), any shard failure fails the round, the
	// original contract.
	Failover bool
	// ProbeInterval is the health-probe cadence (0 selects 2s). Requires
	// Failover.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0 selects 1s). Requires
	// Failover.
	ProbeTimeout time.Duration
	// WorkerTimeout bounds one remote /enrich request (0 selects 2m). Only
	// meaningful with remote workers (WorkerURLs or ConnectShardWorkers).
	WorkerTimeout time.Duration
}

// Validate checks the options for combinations that cannot work, returning
// a descriptive error instead of deferring the blowup (or a silent clamp)
// to run time. NewStudy calls it first; callers building Options
// programmatically can call it directly.
func (o Options) Validate() error {
	if o.Messages < 0 {
		return fmt.Errorf("smishkit: Messages must not be negative (got %d)", o.Messages)
	}
	p := o.Pipeline
	if p.EnrichWorkers < 0 {
		return fmt.Errorf("smishkit: Pipeline.EnrichWorkers must not be negative (got %d)", p.EnrichWorkers)
	}
	if p.StepWorkers < 0 {
		return fmt.Errorf("smishkit: Pipeline.StepWorkers must not be negative (got %d)", p.StepWorkers)
	}
	if p.StageWorkers < 0 {
		return fmt.Errorf("smishkit: Pipeline.StageWorkers must not be negative (got %d)", p.StageWorkers)
	}
	if p.StreamBuffer < 0 {
		return fmt.Errorf("smishkit: Pipeline.StreamBuffer must not be negative (got %d; 0 selects the default)", p.StreamBuffer)
	}
	if p.StreamBuffer > 0 && !p.Streaming {
		return fmt.Errorf("smishkit: Pipeline.StreamBuffer is set (%d) but Pipeline.Streaming is off — the buffer only exists in streaming mode", p.StreamBuffer)
	}
	if s := o.Service; s != nil {
		if !p.Streaming {
			return fmt.Errorf("smishkit: Options.Service is set but Pipeline.Streaming is off — service mode feeds every round through the streaming pipeline")
		}
		if s.PollInterval < 0 {
			return fmt.Errorf("smishkit: Service.PollInterval must not be negative (got %v)", s.PollInterval)
		}
		if s.DrainTimeout < 0 {
			return fmt.Errorf("smishkit: Service.DrainTimeout must not be negative (got %v)", s.DrainTimeout)
		}
		if s.MaxRounds < 0 {
			return fmt.Errorf("smishkit: Service.MaxRounds must not be negative (got %d)", s.MaxRounds)
		}
		if s.LiveWaves < 0 {
			return fmt.Errorf("smishkit: Service.LiveWaves must not be negative (got %d)", s.LiveWaves)
		}
		if s.ProjectionQueue < 0 {
			return fmt.Errorf("smishkit: Service.ProjectionQueue must not be negative (got %d)", s.ProjectionQueue)
		}
		if s.InitialShare < 0 || s.InitialShare > 1 {
			return fmt.Errorf("smishkit: Service.InitialShare must be in [0,1] (got %v; 0 selects the default of 0.5)", s.InitialShare)
		}
	}
	if sh := o.Shards; sh != nil {
		if sh.Shards < 1 {
			return fmt.Errorf("smishkit: Shards.Shards must be at least 1 (got %d)", sh.Shards)
		}
		if sh.Replicas < 0 {
			return fmt.Errorf("smishkit: Shards.Replicas must not be negative (got %d; 0 selects the default)", sh.Replicas)
		}
		if len(sh.WorkerURLs) > 0 && len(sh.WorkerURLs) != sh.Shards {
			return fmt.Errorf("smishkit: Shards.WorkerURLs has %d entries for %d shards — every shard is remote or none is", len(sh.WorkerURLs), sh.Shards)
		}
		if sh.ProbeInterval < 0 {
			return fmt.Errorf("smishkit: Shards.ProbeInterval must not be negative (got %v; 0 selects the default)", sh.ProbeInterval)
		}
		if sh.ProbeTimeout < 0 {
			return fmt.Errorf("smishkit: Shards.ProbeTimeout must not be negative (got %v; 0 selects the default)", sh.ProbeTimeout)
		}
		if sh.WorkerTimeout < 0 {
			return fmt.Errorf("smishkit: Shards.WorkerTimeout must not be negative (got %v; 0 selects the default)", sh.WorkerTimeout)
		}
		if !sh.Failover && (sh.ProbeInterval > 0 || sh.ProbeTimeout > 0) {
			return fmt.Errorf("smishkit: Shards.ProbeInterval/ProbeTimeout are set but Shards.Failover is off — the prober only runs in failover mode")
		}
	}
	if d := o.Durability; d != nil {
		if o.Service == nil {
			return fmt.Errorf("smishkit: Options.Durability is set but Options.Service is nil — the record log is written by Serve at commit time")
		}
		if d.Dir == "" {
			return fmt.Errorf("smishkit: Durability.Dir must not be empty")
		}
		if d.SnapshotInterval < 0 {
			return fmt.Errorf("smishkit: Durability.SnapshotInterval must not be negative (got %v; 0 selects the default)", d.SnapshotInterval)
		}
		if d.CompactThreshold < 0 {
			return fmt.Errorf("smishkit: Durability.CompactThreshold must not be negative (got %d; 0 selects the default)", d.CompactThreshold)
		}
	}
	return nil
}

// Study bundles a world, its simulation, and the pipeline — the one-stop
// entry point for reproducing the paper.
type Study struct {
	World *World
	Sim   *Simulation
	Pipe  *core.Pipeline

	cache    *enrichcache.Cache   // nil when Options.Cache was nil
	batch    *batchmux.Mux        // nil when Options.Batch was nil
	breakers *resilience.Breakers // nil when Options.Resilience was nil
	rlog     *recordlog.Log       // nil when Options.Durability was nil
	group    *shard.Group         // nil when Options.Shards was nil

	proberStop context.CancelFunc // stops the health-probe loop (nil without Shards.Failover)

	opts Options     // the validated options the study was built from
	svc  *serveState // live Serve state (nil until Serve runs)
}

// NewStudy generates a world and boots its simulation. On any failure
// after the simulation has bound its listeners — pipeline construction
// included — the simulation is closed before returning, so a non-nil error
// never leaks sockets.
func NewStudy(opts Options) (*Study, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	reg := opts.Collector
	if reg == nil {
		reg = NewCollector()
	}
	// The record log opens before the simulation boots: its replayed state
	// decides the holdback question below, and its inject journal must be
	// replayed into the fresh servers before any collector runs.
	var rlog *recordlog.Log
	if opts.Durability != nil {
		var err error
		if rlog, err = recordlog.Open(*opts.Durability, reg); err != nil {
			return nil, fmt.Errorf("smishkit: open record log: %w", err)
		}
	}
	w := corpus.Generate(corpus.Config{Seed: opts.Seed, Messages: opts.Messages})
	var simCfg core.SimConfig
	if opts.Service != nil {
		simCfg.HoldbackWaves = opts.Service.LiveWaves
		simCfg.InitialShare = opts.Service.InitialShare
		// A daemon resuming from committed cursors restarts into a world
		// whose held-back posts were already published before it went down;
		// re-staging them as future waves would make the forums appear to
		// republish content the cursors have consumed. Seed everything up
		// front instead so a restarted daemon collects nothing twice. The
		// same applies when the record log carries prior state: its inject
		// journal is replayed below, and holdback waves released after
		// injections would land on the injection timeline in a different
		// order than the original run observed them.
		if st := opts.Service.Checkpoints; st != nil {
			if all, err := st.All(); err == nil && len(all) > 0 {
				simCfg.HoldbackWaves = 0
			}
		}
		if rlog != nil {
			if rst := rlog.Stats(); rst.Records > 0 || rst.Injects > 0 {
				simCfg.HoldbackWaves = 0
			}
		}
	}
	sim, err := core.StartSimulationCfg(w, reg, simCfg)
	if err != nil {
		cerr := closeLog(rlog)
		return nil, errors.Join(fmt.Errorf("smishkit: start simulation: %w", err), cerr)
	}
	// Replay journaled injections so the fresh forum servers regain every
	// post the durable cursors already point past. Injection is
	// deterministic given the spec sequence, so the replayed posts carry
	// the same namespaced IDs the original run committed.
	for i, spec := range rlogInjects(rlog) {
		if _, err := sim.Inject(spec); err != nil {
			cerr := errors.Join(sim.Close(), closeLog(rlog))
			return nil, errors.Join(fmt.Errorf("smishkit: replay injection %d: %w", i+1, err), cerr)
		}
	}
	// Decorator order, innermost first: instrumented client <- faults <-
	// batchmux <- cache <- breaker <- pipeline. Faults sit inside the
	// batching tier so a flapping window degrades individual slots of a
	// batch, not the tier itself; batchmux sits inside the cache so only
	// cache misses reach a window and every flushed answer is cached on the
	// way back out; breakers sit outside the cache so hits cost them
	// nothing and upstream 5xx reach the serve-stale path before being
	// counted.
	base := sim.Services()
	popts := opts.Pipeline
	popts.Telemetry = reg
	if r := opts.Resilience; r != nil {
		// The resilience config's budget knobs flow into the pipeline
		// unless the caller already set them explicitly.
		if popts.RecordBudget == 0 {
			popts.RecordBudget = r.RecordBudget
		}
		if popts.CallTimeout == 0 {
			popts.CallTimeout = r.CallTimeout
		}
		if popts.AbortFailureRate == 0 {
			popts.AbortFailureRate = r.AbortFailureRate
		}
		if popts.MinAbortCalls == 0 {
			popts.MinAbortCalls = r.MinAbortCalls
		}
	}

	if sh := opts.Shards; sh != nil {
		// Sharded: the tier configs build each shard's private stack (its
		// own cache, batchmux windows, and breakers, labeled "shard.<i>.*")
		// around the shared instrumented base clients — so the global
		// "client.<svc>.*" counters still measure real upstream traffic.
		// The front pipeline only curates and routes; it never enriches.
		pipe, err := core.NewPipeline(base, popts)
		if err != nil {
			cerr := errors.Join(sim.Close(), closeLog(rlog))
			return nil, errors.Join(fmt.Errorf("smishkit: build pipeline: %w", err), cerr)
		}
		enrichers := make([]shard.Enricher, sh.Shards)
		for i := range enrichers {
			if len(sh.WorkerURLs) > 0 {
				enrichers[i] = shard.NewRemoteEnricher(sh.WorkerURLs[i]).WithTimeout(sh.WorkerTimeout)
				continue
			}
			stack, err := shard.NewStack(base, shard.StackConfig{
				Faults:     opts.Faults,
				Batch:      opts.Batch,
				Cache:      opts.Cache,
				Resilience: opts.Resilience,
				Pipeline:   opts.Pipeline,
			}, reg.Prefixed(fmt.Sprintf("shard.%d.", i)))
			if err != nil {
				cerr := errors.Join(sim.Close(), closeLog(rlog))
				return nil, errors.Join(fmt.Errorf("smishkit: build shard %d: %w", i, err), cerr)
			}
			enrichers[i] = stack
		}
		group, err := shard.NewGroup(pipe, enrichers, sh.Replicas, reg)
		if err != nil {
			cerr := errors.Join(sim.Close(), closeLog(rlog))
			return nil, errors.Join(fmt.Errorf("smishkit: build shard group: %w", err), cerr)
		}
		if len(sh.WorkerURLs) > 0 {
			if err := group.SetEnrichers(enrichers, true); err != nil {
				cerr := errors.Join(sim.Close(), closeLog(rlog))
				return nil, errors.Join(err, cerr)
			}
		}
		st := &Study{World: w, Sim: sim, Pipe: pipe, group: group, rlog: rlog, opts: opts}
		if sh.Failover {
			prober := shard.NewProber(sh.Shards, shard.ProbeConfig{
				Interval: sh.ProbeInterval,
				Timeout:  sh.ProbeTimeout,
			}, reg)
			group.AttachProber(prober)
			pctx, cancel := context.WithCancel(context.Background())
			st.proberStop = cancel
			go prober.Run(pctx)
		}
		return st, nil
	}

	services := base
	if opts.Faults != nil {
		services = faultinject.New(*opts.Faults, reg).WrapServices(services)
	}
	var batch *batchmux.Mux
	if opts.Batch != nil {
		batch = batchmux.New(*opts.Batch, reg)
		services = batch.WrapServices(services)
	}
	var cache *enrichcache.Cache
	if opts.Cache != nil {
		cache = enrichcache.New(*opts.Cache, reg)
		services = cache.WrapServices(services)
	}
	var breakers *resilience.Breakers
	if opts.Resilience != nil {
		breakers = resilience.New(*opts.Resilience, reg)
		services = breakers.WrapServices(services)
	}
	pipe, err := core.NewPipeline(services, popts)
	if err != nil {
		cerr := errors.Join(sim.Close(), closeLog(rlog))
		return nil, errors.Join(fmt.Errorf("smishkit: build pipeline: %w", err), cerr)
	}
	return &Study{World: w, Sim: sim, Pipe: pipe, cache: cache, batch: batch, breakers: breakers, rlog: rlog, opts: opts}, nil
}

// closeLog closes a possibly-nil record log.
func closeLog(l *recordlog.Log) error {
	if l == nil {
		return nil
	}
	return l.Close()
}

// rlogInjects returns a possibly-nil log's inject journal.
func rlogInjects(l *recordlog.Log) []core.InjectSpec {
	if l == nil {
		return nil
	}
	return l.Injects()
}

// Collect drains all five forums.
func (s *Study) Collect(ctx context.Context) ([]RawReport, error) {
	sp := s.Pipe.Telemetry().StartSpan("collect")
	defer sp.End()
	reports, _, err := forum.CollectAll(ctx, s.Sim.Collectors())
	if err == nil {
		s.Pipe.Telemetry().Counter("pipeline.collect.reports").Add(int64(len(reports)))
	}
	return reports, err
}

// Run collects, curates, enriches, and annotates.
func (s *Study) Run(ctx context.Context) (*Dataset, error) {
	reports, err := s.Collect(ctx)
	if err != nil {
		return nil, err
	}
	return s.runBatch(ctx, reports)
}

// runBatch pushes one report batch through the pipeline: the shard router
// when the study is sharded, the single pipeline otherwise. Both paths
// return records in a deterministic order for a given input (the router
// scatters results back into curation order).
func (s *Study) runBatch(ctx context.Context, reports []RawReport) (*Dataset, error) {
	if s.group != nil {
		return s.group.Run(ctx, reports)
	}
	return s.Pipe.Run(ctx, reports)
}

// ShardStats reports the sharding scoreboard: per-shard routed-record
// totals plus each shard's cache/batch/breaker stats. Returns nil when the
// study was built without Options.Shards. Safe to call concurrently with
// Run or Serve.
func (s *Study) ShardStats() *ShardStats {
	if s.group == nil {
		return nil
	}
	st := s.group.Stats()
	return &st
}

// ShardWorkerSpec builds the spec a shard worker process for this study
// needs: the study's own simulated service addresses plus the pipeline and
// tier flags mirroring the study's Options. Write its JSON to the worker's
// stdin (see RunShardWorker). Index is the shard the worker will serve.
// Faults are deliberately absent: the chaos layer is seeded per process,
// so injecting it in workers would break the shards=1 vs shards=N
// record-identity contract.
func (s *Study) ShardWorkerSpec(index int) ShardWorkerSpec {
	spec := ShardWorkerSpec{
		Index:     index,
		HLR:       shard.ServiceAddr{URL: s.Sim.HLRURL, Key: s.Sim.HLRKey},
		Whois:     shard.ServiceAddr{URL: s.Sim.WhoisURL, Key: s.Sim.WhoisKey},
		CTLog:     shard.ServiceAddr{URL: s.Sim.CTLogURL},
		DNSDB:     shard.ServiceAddr{URL: s.Sim.DNSDBURL, Key: s.Sim.DNSDBKey},
		AVScan:    shard.ServiceAddr{URL: s.Sim.AVScanURL, Key: s.Sim.AVScanKey},
		Shortener: shard.ServiceAddr{URL: s.Sim.ShortenerURL},
		Pipeline: shard.WorkerPipeline{
			EnrichWorkers: s.opts.Pipeline.EnrichWorkers,
			StepWorkers:   s.opts.Pipeline.StepWorkers,
		},
		Cache:      s.opts.Cache != nil,
		Batch:      s.opts.Batch != nil,
		Resilience: s.opts.Resilience != nil,
	}
	if c := s.opts.Cache; c != nil {
		spec.ServeStale = c.ServeStale
	}
	if r := s.opts.Resilience; r != nil {
		spec.Pipeline.RecordBudget = r.RecordBudget
		spec.Pipeline.CallTimeout = r.CallTimeout
		spec.Pipeline.AbortFailureRate = r.AbortFailureRate
		spec.Pipeline.MinAbortCalls = r.MinAbortCalls
	}
	return spec
}

// ConnectShardWorkers switches a sharded study to remote shard workers:
// urls[i] is the base URL worker i printed on startup (one per shard).
// Each worker is health-checked before the swap; on any failure the study
// keeps its current (local) shards. This is the multi-process bring-up
// order cmd/smishctl uses — the study must exist first, because workers
// dial its simulation.
func (s *Study) ConnectShardWorkers(ctx context.Context, urls []string) error {
	if s.group == nil {
		return fmt.Errorf("smishkit: ConnectShardWorkers needs Options.Shards")
	}
	if len(urls) != s.group.Shards() {
		return fmt.Errorf("smishkit: study has %d shards, got %d worker URLs", s.group.Shards(), len(urls))
	}
	enrichers := make([]shard.Enricher, len(urls))
	for i, u := range urls {
		re := shard.NewRemoteEnricher(u).WithTimeout(s.workerTimeout())
		if err := re.Healthy(ctx); err != nil {
			return fmt.Errorf("smishkit: shard worker %d: %w", i, err)
		}
		enrichers[i] = re
	}
	return s.group.SetEnrichers(enrichers, true)
}

// workerTimeout returns the configured per-request worker timeout (0 when
// the study is unsharded — NewRemoteEnricher's default applies).
func (s *Study) workerTimeout() time.Duration {
	if sh := s.opts.Shards; sh != nil {
		return sh.WorkerTimeout
	}
	return 0
}

// RunShardWorker runs one shard worker process end to end: decode a
// ShardWorkerSpec (JSON) from r, serve the shard on an ephemeral loopback
// port, print the base URL as a single line to w, and block until ctx is
// cancelled. cmd/smishctl's hidden -shard-worker mode is exactly this
// call over stdin/stdout.
func RunShardWorker(ctx context.Context, r io.Reader, w io.Writer) error {
	return shard.RunWorker(ctx, r, w)
}

// Shard lifecycle re-exports, so supervisor callers (cmd/smishctl, tests)
// never import internal paths.
type (
	// ShardWorkerHandle is one running shard worker as the supervisor sees
	// it: its URL, an exit channel, and a stop function.
	ShardWorkerHandle = shard.WorkerHandle
	// ShardStarter launches (or re-launches) worker index and returns its
	// handle — an OS process for cmd/smishctl, a goroutine in tests.
	ShardStarter = shard.Starter
	// ShardSupervisorConfig tunes restart backoff and budget.
	ShardSupervisorConfig = shard.SupervisorConfig
	// ShardSupervisor keeps shard workers alive, restarting the dead with
	// capped exponential backoff.
	ShardSupervisor = shard.Supervisor
)

// StartShardSupervisor brings up one worker per shard through start,
// connects the study to them, and returns a supervisor wired so that every
// restarted worker is health-checked and swapped back into the routing
// group (with ShardStats().PerShard[i].Restarts counting the swap). The
// caller owns the supervisor's lifecycle: run `go sup.Run(ctx)` to enable
// restarts, then on teardown cancel that ctx and call sup.Stop(). Requires
// a sharded study; any OnRestart already set in cfg runs after the study's
// own re-registration.
func (s *Study) StartShardSupervisor(ctx context.Context, start ShardStarter, cfg ShardSupervisorConfig) (*ShardSupervisor, error) {
	if s.group == nil {
		return nil, fmt.Errorf("smishkit: StartShardSupervisor needs Options.Shards")
	}
	chain := cfg.OnRestart
	cfg.OnRestart = func(index int, url string) error {
		re := shard.NewRemoteEnricher(url).WithTimeout(s.workerTimeout())
		hctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := re.Healthy(hctx)
		cancel()
		if err != nil {
			return fmt.Errorf("smishkit: restarted shard worker %d: %w", index, err)
		}
		if err := s.group.SetEnricher(index, re, true); err != nil {
			return err
		}
		s.group.NoteRestart(index)
		if chain != nil {
			return chain(index, url)
		}
		return nil
	}
	sup, err := shard.NewSupervisor(s.group.Shards(), start, cfg)
	if err != nil {
		return nil, err
	}
	urls, err := sup.Start(ctx)
	if err != nil {
		return nil, err
	}
	if err := s.ConnectShardWorkers(ctx, urls); err != nil {
		sup.Stop()
		return nil, err
	}
	return sup, nil
}

// Telemetry snapshots everything the study has recorded so far: stage
// spans, curation counters, and per-service client metrics. Safe to call
// concurrently with Run, and after Close.
//
// Deprecated: use Study.Stats().Telemetry, which bundles every stats
// surface in one call. This wrapper is slated for removal in v2 — no
// in-tree caller remains.
func (s *Study) Telemetry() Telemetry { return s.Pipe.Telemetry().Snapshot() }

// CacheStats snapshots the enrichment cache per service: hits, misses,
// coalesced in-flight waits, negative hits, stale serves, evictions, and
// live entries. Returns nil when the study was built without
// Options.Cache. Safe to call concurrently with Run, and after Close.
//
// Deprecated: use Study.Stats().Cache. Slated for removal in v2 — no
// in-tree caller remains.
func (s *Study) CacheStats() CacheStats {
	if s.cache == nil {
		return nil
	}
	return s.cache.Stats()
}

// BatchStats snapshots the batching tier per service: flushes, cumulative
// batched keys, in-window coalesced duplicates, and counted per-key
// fallthroughs. Returns nil when the study was built without
// Options.Batch. Safe to call concurrently with Run, and after Close.
//
// Deprecated: use Study.Stats().Batch. Slated for removal in v2 — no
// in-tree caller remains.
func (s *Study) BatchStats() BatchStats {
	if s.batch == nil {
		return nil
	}
	return s.batch.Stats()
}

// ResilienceStats snapshots every circuit breaker: current state plus
// open / short-circuit / probe / outcome counts. Returns nil when the
// study was built without Options.Resilience. Safe to call concurrently
// with Run, and after Close.
//
// Deprecated: use Study.Stats().Resilience. Slated for removal in v2 —
// no in-tree caller remains.
func (s *Study) ResilienceStats() ResilienceStats {
	if s.breakers == nil {
		return nil
	}
	return s.breakers.Stats()
}

// Close shuts the simulation down, releases every loopback listener, and
// closes the record log (writing its final snapshot) when the study has
// one. It is idempotent — only the first call closes; every call reports
// that close's (joined) error. After Close the study's servers are gone,
// so Collect and Run fail, but World, datasets already produced, and
// Telemetry snapshots remain valid.
func (s *Study) Close() error {
	if s.Sim == nil {
		return nil
	}
	if s.proberStop != nil {
		s.proberStop()
	}
	return errors.Join(s.Sim.Close(), closeLog(s.rlog))
}

// WriteReport renders every table and figure of the paper to w, returning
// the first write error (earlier versions swallowed it).
func WriteReport(w io.Writer, ds *Dataset) error { return report.RenderAll(w, ds) }

// WriteTelemetry renders a telemetry snapshot as human-readable text:
// stage spans, counters, gauges, and latency percentiles.
//
// Deprecated: use WriteStats(w, stats, SectionTelemetry). Slated for
// removal in v2 — no in-tree caller remains.
func WriteTelemetry(w io.Writer, snap Telemetry) error { return telemetry.Write(w, snap) }

// WriteCacheStats renders a CacheStats snapshot as an aligned text table,
// one row per service, with per-service hit rates.
//
// Deprecated: use WriteStats(w, stats, SectionCache). Slated for
// removal in v2 — no in-tree caller remains.
func WriteCacheStats(w io.Writer, stats CacheStats) error { return enrichcache.Write(w, stats) }

// WriteBatchStats renders a BatchStats snapshot as an aligned text table,
// one row per batchable service, with mean keys per flush.
//
// Deprecated: use WriteStats(w, stats, SectionBatch). Slated for
// removal in v2 — no in-tree caller remains.
func WriteBatchStats(w io.Writer, stats BatchStats) error { return batchmux.Write(w, stats) }

// WriteResilienceStats renders a ResilienceStats snapshot as an aligned
// text table, one breaker per row.
//
// Deprecated: use WriteStats(w, stats, SectionResilience). Slated for
// removal in v2 — no in-tree caller remains.
func WriteResilienceStats(w io.Writer, stats ResilienceStats) error {
	return resilience.Write(w, stats)
}
