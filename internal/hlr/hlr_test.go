package hlr

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/senderid"
)

func TestStoreLookupRegistry(t *testing.T) {
	s := NewStore()
	s.Add(Record{
		MSISDN:      "+447700900123",
		NumberType:  senderid.TypeMobile,
		OriginalMNO: "Vodafone",
		CurrentMNO:  "O2",
		Country:     "GBR",
		Status:      StatusLive,
	})
	res := s.Lookup("+44 7700 900123") // formatted differently
	if !res.Known || res.Source != "registry" {
		t.Fatalf("lookup missed registry: %+v", res)
	}
	if res.OriginalMNO != "Vodafone" || res.Country != "GBR" {
		t.Errorf("record = %+v", res.Record)
	}
}

func TestStoreLookupPlanFallback(t *testing.T) {
	s := NewStore()
	res := s.Lookup("+447700900999")
	if res.Known || res.Source != "plan" {
		t.Fatalf("unexpected registry hit: %+v", res)
	}
	if res.NumberType != senderid.TypeMobile || res.Country != "GBR" {
		t.Errorf("fallback = %+v", res.Record)
	}
	if res.Status != StatusUndetermined {
		t.Errorf("status = %q", res.Status)
	}
}

func TestStoreLookupBadFormat(t *testing.T) {
	s := NewStore()
	res := s.Lookup("+99912345678901234")
	if res.NumberType != senderid.TypeBadFormat {
		t.Errorf("type = %q, want bad_format", res.NumberType)
	}
}

func TestServerEndToEnd(t *testing.T) {
	store := NewStore()
	store.Add(Record{
		MSISDN: "+919876543210", NumberType: senderid.TypeMobile,
		OriginalMNO: "AirTel", Country: "IND", Status: StatusLive,
	})
	srv := httptest.NewServer(NewServer(store, "key123", 0).Handler())
	defer srv.Close()

	c := NewClient(srv.URL, "key123")
	res, err := c.Lookup(context.Background(), "+919876543210")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Known || res.OriginalMNO != "AirTel" {
		t.Errorf("result = %+v", res)
	}
}

func TestServerRejectsBadKey(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), "right", 0).Handler())
	defer srv.Close()
	_, err := NewClient(srv.URL, "wrong").Lookup(context.Background(), "+447700900123")
	if err == nil {
		t.Fatal("expected auth failure")
	}
}

func TestServerMissingParam(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), "", 0).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/lookup")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestBulkLookup(t *testing.T) {
	store := NewStore()
	nums := make([]string, 0, 1200)
	for i := 0; i < 1200; i++ {
		m := "+9198765" + pad5(i)
		store.Add(Record{MSISDN: m, NumberType: senderid.TypeMobile, OriginalMNO: "Jio", Country: "IND", Status: StatusLive})
		nums = append(nums, m)
	}
	srv := httptest.NewServer(NewServer(store, "", 0).Handler())
	defer srv.Close()

	c := NewClient(srv.URL, "")
	results, err := c.BulkLookup(context.Background(), nums)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1200 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.MSISDN != nums[i] {
			t.Fatalf("order broken at %d: %q != %q", i, r.MSISDN, nums[i])
		}
		if !r.Known {
			t.Fatalf("bulk miss for %q", nums[i])
		}
	}
}

func TestBulkRejectsOversizedBatch(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), "", 0).Handler())
	defer srv.Close()
	big := bulkRequest{MSISDNs: make([]string, MaxBulk+1)}
	for i := range big.MSISDNs {
		big.MSISDNs[i] = "+447700900123"
	}
	c := NewClient(srv.URL, "")
	var resp bulkResponse
	err := c.API.PostJSON(context.Background(), "/v1/bulk", big, &resp)
	if err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestServerRateLimit(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store, "", 1).Handler()) // ~1 rps, burst 3
	defer srv.Close()

	limited := false
	for i := 0; i < 10; i++ {
		resp, err := http.Get(srv.URL + "/v1/lookup?msisdn=%2B447700900123")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			limited = true
			break
		}
	}
	if !limited {
		t.Error("rate limiter never engaged")
	}
}

// Loading a corpus world into the store reproduces Table 4's shape.
func TestStoreFromWorld(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 20, Messages: 6000})
	store := NewStore()
	for msisdn, s := range w.Numbers {
		status := StatusInactive
		if s.Live {
			status = StatusLive
		}
		store.Add(Record{
			MSISDN:      msisdn,
			NumberType:  s.NumberType,
			OriginalMNO: s.MNO,
			Country:     s.Country,
			Status:      status,
		})
	}
	if store.Len() != len(w.Numbers) {
		t.Fatalf("store len = %d, want %d", store.Len(), len(w.Numbers))
	}
	// Every generated number must resolve as a registry hit.
	hits := 0
	for msisdn := range w.Numbers {
		if res := store.Lookup(msisdn); res.Known {
			hits++
		}
	}
	if hits != len(w.Numbers) {
		t.Errorf("registry hits = %d / %d", hits, len(w.Numbers))
	}
}

func pad5(i int) string {
	d := [5]byte{'0', '0', '0', '0', '0'}
	for p := 4; p >= 0 && i > 0; p-- {
		d[p] = byte('0' + i%10)
		i /= 10
	}
	return string(d[:])
}
