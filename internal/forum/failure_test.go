package forum

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/netutil"
)

// flaky wraps a handler, failing a deterministic fraction of requests with
// the given status before letting them through on retry.
type flaky struct {
	next      http.Handler
	status    int
	failEvery int32 // every Nth request fails
	counter   atomic.Int32
	failures  atomic.Int32
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.counter.Add(1)
	if n%f.failEvery == 0 {
		f.failures.Add(1)
		netutil.WriteError(w, f.status, "injected failure")
		return
	}
	f.next.ServeHTTP(w, r)
}

func TestTwitterCollectorSurvives5xxStorm(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 61, Messages: 600})
	f := BuildFixtures(w)
	wrapped := &flaky{
		next:      NewTwitterServer(f.Twitter, "", 0).Handler(),
		status:    http.StatusInternalServerError,
		failEvery: 3, // every third request 500s
	}
	srv := httptest.NewServer(wrapped)
	defer srv.Close()

	c := NewTwitterCollector(srv.URL, "")
	c.API.MaxRetries = 6
	c.API.Sleep = func(ctx context.Context, d time.Duration) error { return nil }
	count := 0
	if err := c.Collect(context.Background(), func(RawReport) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != len(f.Twitter) {
		t.Errorf("collected %d of %d under 5xx storm", count, len(f.Twitter))
	}
	if wrapped.failures.Load() == 0 {
		t.Fatal("no failures injected; test is vacuous")
	}
}

func TestSmishtankCollectorSurvives429(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 62, Messages: 3000})
	f := BuildFixtures(w)
	if len(f.Smishtank) == 0 {
		t.Skip("no smishtank posts")
	}
	wrapped := &flaky{
		next:      NewSmishtankServer(f.Smishtank).Handler(),
		status:    http.StatusTooManyRequests,
		failEvery: 4,
	}
	srv := httptest.NewServer(wrapped)
	defer srv.Close()

	c := NewSmishtankCollector(srv.URL)
	c.API.MaxRetries = 6
	count := 0
	if err := c.Collect(context.Background(), func(RawReport) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != len(f.Smishtank) {
		t.Errorf("collected %d of %d under 429 storm", count, len(f.Smishtank))
	}
}

func TestCollectorGivesUpOnPersistentOutage(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		netutil.WriteError(w, http.StatusServiceUnavailable, "maintenance")
	}))
	defer down.Close()

	c := NewTwitterCollector(down.URL, "")
	c.API.MaxRetries = 2
	err := c.Collect(context.Background(), func(RawReport) error { return nil })
	if err == nil {
		t.Fatal("collector succeeded against a dead service")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Errorf("error does not surface status: %v", err)
	}
}

func TestPastebinCollectorSkipsTruncatedLines(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/archive"):
			fmt.Fprintln(w, "p000001")
		default:
			// One good line, one truncated, one empty.
			fmt.Fprintln(w, "+447700900123 | 2023-01-02 | your parcel is held")
			fmt.Fprintln(w, "+44770090 | truncated-no-third-field")
			fmt.Fprintln(w, "")
			fmt.Fprintln(w, "+447700900124 | 2023-01-03 | verify your account")
		}
	}))
	defer srv.Close()

	c := NewPastebinCollector(srv.URL)
	var got []RawReport
	if err := c.Collect(context.Background(), func(r RawReport) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d reports, want 2 (truncated skipped)", len(got))
	}
	if got[0].SMSText != "your parcel is held" {
		t.Errorf("text = %q", got[0].SMSText)
	}
}

func TestSmishingEUCollectorHandlesEmptySite(t *testing.T) {
	srv := httptest.NewServer(NewSmishingEUServer(nil).Handler())
	defer srv.Close()
	count := 0
	if err := NewSmishingEUCollector(srv.URL).Collect(context.Background(), func(RawReport) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("phantom reports from empty site: %d", count)
	}
}

func TestRedditCollectorCorruptMediaAborts(t *testing.T) {
	// A listing that points at a 404 image must error out, not hang.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/img/") {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `{"kind":"Listing","data":{"after":"","children":[
			{"kind":"t3","data":{"id":"x1","title":"smishing","selftext":"smishing report","url":"/img/x1","created_utc":1680000000,"subreddit":"Scams"}}
		]}}`)
	}))
	defer srv.Close()

	c := NewRedditCollector(srv.URL)
	err := c.Collect(context.Background(), func(RawReport) error { return nil })
	if err == nil {
		t.Fatal("missing media did not surface an error")
	}
}
