// Package report computes the paper's tables and figures from enriched
// pipeline records. Each builder mirrors one numbered exhibit of the
// evaluation (Tables 1, 3-19; Figures 2-3) and returns typed rows the CLI
// renders and the benchmarks assert shape properties on.
package report

import (
	"sort"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/stats"
	"github.com/smishkit/smishkit/internal/urlinfo"
)

// Table1Row is one forum's dataset overview (Table 1).
type Table1Row struct {
	Forum        corpus.Forum
	Posts        int
	Images       int
	UniqueTexts  int
	TotalTexts   int
	UniqueSender int
	TotalSender  int
	UniqueURLs   int
	TotalURLs    int
}

// Table1 builds the per-forum dataset overview.
func Table1(ds *core.Dataset) []Table1Row {
	type agg struct {
		texts, senders, urls   map[string]bool
		totalT, totalS, totalU int
	}
	byForum := map[corpus.Forum]*agg{}
	get := func(f corpus.Forum) *agg {
		a, ok := byForum[f]
		if !ok {
			a = &agg{texts: map[string]bool{}, senders: map[string]bool{}, urls: map[string]bool{}}
			byForum[f] = a
		}
		return a
	}
	for _, r := range ds.Records {
		a := get(r.Forum)
		a.texts[r.Text] = true
		a.totalT++
		if r.SenderRaw != "" && r.SenderKind != senderid.KindRedacted {
			a.senders[r.SenderRaw] = true
			a.totalS++
		}
		if r.ShownURL != "" {
			a.urls[r.ShownURL] = true
			a.totalU++
		}
	}
	var rows []Table1Row
	for _, f := range corpus.Forums {
		a := byForum[f]
		row := Table1Row{Forum: f, Posts: ds.PostsByForum[f], Images: ds.ImagesByForum[f]}
		if a != nil {
			row.UniqueTexts, row.TotalTexts = len(a.texts), a.totalT
			row.UniqueSender, row.TotalSender = len(a.senders), a.totalS
			row.UniqueURLs, row.TotalURLs = len(a.urls), a.totalU
		}
		rows = append(rows, row)
	}
	return rows
}

// Table3 counts phone-number types across unique phone senders (Table 3).
func Table3(records []core.Record) *stats.Counter {
	c := stats.NewCounter()
	seen := map[string]bool{}
	for _, r := range records {
		if !r.HLRDone || seen[r.SenderRaw] {
			continue
		}
		seen[r.SenderRaw] = true
		c.Add(string(r.HLR.NumberType))
	}
	return c
}

// MNORow is one operator's abuse summary (Table 4).
type MNORow struct {
	MNO       string
	Numbers   int
	Countries []string
}

// Table4 ranks mobile network operators by abused unique mobile numbers.
func Table4(records []core.Record, topK int) []MNORow {
	counts := stats.NewCounter()
	countries := map[string]map[string]bool{}
	seen := map[string]bool{}
	for _, r := range records {
		if !r.HLRDone || r.HLR.OriginalMNO == "" || seen[r.SenderRaw] {
			continue
		}
		if r.HLR.NumberType != senderid.TypeMobile && r.HLR.NumberType != senderid.TypeMobileOrLandline {
			continue
		}
		seen[r.SenderRaw] = true
		mno := r.HLR.OriginalMNO
		counts.Add(mno)
		if countries[mno] == nil {
			countries[mno] = map[string]bool{}
		}
		if r.HLR.Country != "" {
			countries[mno][r.HLR.Country] = true
		}
	}
	var rows []MNORow
	for _, e := range counts.TopK(topK) {
		cs := make([]string, 0, len(countries[e.Key]))
		for c := range countries[e.Key] {
			cs = append(cs, c)
		}
		sort.Strings(cs)
		rows = append(rows, MNORow{MNO: e.Key, Numbers: e.Count, Countries: cs})
	}
	return rows
}

// Table5 cross-tabulates URL shorteners against scam types (Table 5),
// counting unique shortened URLs.
func Table5(records []core.Record) *stats.CrossTab {
	ct := stats.NewCrossTab()
	seen := map[string]bool{}
	for _, r := range records {
		if r.Shortener == "" || seen[r.ShownURL] {
			continue
		}
		seen[r.ShownURL] = true
		ct.Add(r.Shortener, string(r.Annotation.ScamType))
	}
	return ct
}

// Table6 counts TLDs of unique landing URLs and of unique shortened URLs
// separately, mirroring Table 6's two columns.
func Table6(records []core.Record) (landing, shortened *stats.Counter) {
	landing, shortened = stats.NewCounter(), stats.NewCounter()
	seenLanding, seenShort := map[string]bool{}, map[string]bool{}
	for _, r := range records {
		if r.Shortener != "" && r.ShownURL != "" && !seenShort[r.ShownURL] {
			seenShort[r.ShownURL] = true
			shortened.Add(r.URLInfo.TLD)
		}
		if r.FinalURL == "" || seenLanding[r.FinalURL] {
			continue
		}
		seenLanding[r.FinalURL] = true
		if info, err := urlinfo.Parse(r.FinalURL); err == nil {
			landing.Add(info.TLD)
		}
	}
	return landing, shortened
}

// CARow is one certificate authority's abuse summary (Table 7).
type CARow struct {
	CA           string
	Certificates int
	Domains      int
}

// Table7 ranks certificate authorities by issued certificates and served
// domains.
func Table7(records []core.Record, topK int) []CARow {
	certs := stats.NewCounter()
	domains := map[string]map[string]bool{}
	seen := map[string]bool{}
	for _, r := range records {
		if r.Domain == "" || seen[r.Domain] || r.CT.Certs == 0 {
			continue
		}
		seen[r.Domain] = true
		for ca, n := range r.CT.Issuers {
			certs.AddN(ca, n)
			if domains[ca] == nil {
				domains[ca] = map[string]bool{}
			}
			domains[ca][r.Domain] = true
		}
	}
	var rows []CARow
	for _, e := range certs.TopK(topK) {
		rows = append(rows, CARow{CA: e.Key, Certificates: e.Count, Domains: len(domains[e.Key])})
	}
	return rows
}

// ASRow is one autonomous system's abuse summary (Table 8).
type ASRow struct {
	ASName    string
	IPs       int
	Countries []string
}

// Table8 ranks ASes by distinct hosting IPs seen in passive DNS.
func Table8(records []core.Record, topK int) []ASRow {
	ips := map[string]map[string]bool{}
	countries := map[string]map[string]bool{}
	seenDomain := map[string]bool{}
	for _, r := range records {
		if r.Domain == "" || seenDomain[r.Domain] || len(r.PDNS) == 0 {
			continue
		}
		seenDomain[r.Domain] = true
		for i, as := range r.ASNames {
			if ips[as] == nil {
				ips[as] = map[string]bool{}
				countries[as] = map[string]bool{}
			}
			if i < len(r.ASCountries) {
				countries[as][r.ASCountries[i]] = true
			}
		}
		for _, obs := range r.PDNS {
			// Attribute each IP to its AS via the record's AS list; with
			// one AS per domain in the corpus this is exact.
			if len(r.ASNames) > 0 {
				ips[r.ASNames[0]][obs.IP] = true
			}
		}
	}
	counter := stats.NewCounter()
	for as, set := range ips {
		counter.AddN(as, len(set))
	}
	var rows []ASRow
	for _, e := range counter.TopK(topK) {
		cs := make([]string, 0, len(countries[e.Key]))
		for c := range countries[e.Key] {
			cs = append(cs, c)
		}
		sort.Strings(cs)
		rows = append(rows, ASRow{ASName: e.Key, IPs: e.Count, Countries: cs})
	}
	return rows
}

// Table9Result is the VirusTotal detection-tier summary (Table 9).
type Table9Result struct {
	URLs         int
	Undetected   int // malicious == 0 and suspicious == 0
	MaliciousGE  map[int]int
	SuspiciousGE map[int]int
}

// Table9 computes VirusTotal detection tiers over unique landing URLs.
func Table9(records []core.Record) Table9Result {
	res := Table9Result{
		MaliciousGE:  map[int]int{1: 0, 3: 0, 5: 0, 10: 0, 15: 0},
		SuspiciousGE: map[int]int{1: 0, 3: 0, 5: 0},
	}
	seen := map[string]bool{}
	for _, r := range records {
		if r.FinalURL == "" || seen[r.FinalURL] {
			continue
		}
		seen[r.FinalURL] = true
		res.URLs++
		if r.VTMalicious == 0 && r.VTSuspicious == 0 {
			res.Undetected++
		}
		for _, k := range []int{1, 3, 5, 10, 15} {
			if r.VTMalicious >= k {
				res.MaliciousGE[k]++
			}
		}
		for _, k := range []int{1, 3, 5} {
			if r.VTSuspicious >= k {
				res.SuspiciousGE[k]++
			}
		}
	}
	return res
}

// Table10 distributes messages over scam categories with per-category top
// languages (Table 10).
func Table10(records []core.Record) (*stats.Counter, map[string][]string) {
	c := stats.NewCounter()
	langs := map[string]*stats.Counter{}
	for _, r := range records {
		scam := string(r.Annotation.ScamType)
		c.Add(scam)
		if langs[scam] == nil {
			langs[scam] = stats.NewCounter()
		}
		langs[scam].Add(r.Annotation.Language)
	}
	top := map[string][]string{}
	for scam, lc := range langs {
		top[scam] = lc.Keys()
		if len(top[scam]) > 4 {
			top[scam] = top[scam][:4]
		}
	}
	return c, top
}

// OthersBreakdown differentiates the Others category into the §5.2
// clusters — the analysis the paper marks as future work.
func OthersBreakdown(records []core.Record) *stats.Counter {
	c := stats.NewCounter()
	for _, r := range records {
		if r.Annotation.ScamType != corpus.ScamOthers {
			continue
		}
		sub := string(r.Annotation.SubType)
		if sub == "" {
			sub = "undifferentiated"
		}
		c.Add(sub)
	}
	return c
}

// Table11 counts message languages (Table 11).
func Table11(records []core.Record) *stats.Counter {
	c := stats.NewCounter()
	for _, r := range records {
		c.Add(r.Annotation.Language)
	}
	return c
}

// Table12 counts impersonated brands (Table 12).
func Table12(records []core.Record) *stats.Counter {
	c := stats.NewCounter()
	for _, r := range records {
		if r.Annotation.Brand != "" {
			c.Add(r.Annotation.Brand)
		}
	}
	return c
}

// Table13 cross-tabulates lure principles against scam types (Table 13).
func Table13(records []core.Record) *stats.CrossTab {
	ct := stats.NewCrossTab()
	for _, r := range records {
		for _, l := range r.Annotation.Lures {
			ct.Add(string(l), string(r.Annotation.ScamType))
		}
	}
	return ct
}

// CountryRow is one origin country's summary (Table 14).
type CountryRow struct {
	Country string
	MNOs    int
	Numbers int
	Live    int
}

// Table14 ranks sender-ID origin countries by unique mobile numbers.
func Table14(records []core.Record, topK int) []CountryRow {
	numbers := stats.NewCounter()
	live := stats.NewCounter()
	mnos := map[string]map[string]bool{}
	seen := map[string]bool{}
	for _, r := range records {
		if !r.HLRDone || r.HLR.Country == "" || seen[r.SenderRaw] {
			continue
		}
		if r.HLR.NumberType != senderid.TypeMobile && r.HLR.NumberType != senderid.TypeMobileOrLandline {
			continue
		}
		seen[r.SenderRaw] = true
		country := r.HLR.Country
		numbers.Add(country)
		if r.HLR.Status == "live" {
			live.Add(country)
		}
		if mnos[country] == nil {
			mnos[country] = map[string]bool{}
		}
		if r.HLR.OriginalMNO != "" {
			mnos[country][r.HLR.OriginalMNO] = true
		}
	}
	var rows []CountryRow
	for _, e := range numbers.TopK(topK) {
		rows = append(rows, CountryRow{
			Country: e.Key,
			MNOs:    len(mnos[e.Key]),
			Numbers: e.Count,
			Live:    live.Count(e.Key),
		})
	}
	return rows
}

// Table15 gives the yearly distribution of posts and image attachments for
// one forum (Table 15 reports Twitter).
func Table15(records []core.Record, forum corpus.Forum) (posts, images map[int]int) {
	posts, images = map[int]int{}, map[int]int{}
	for _, r := range records {
		if r.Forum != forum || r.PostedAt.IsZero() {
			continue
		}
		y := r.PostedAt.Year()
		posts[y]++
		if r.FromImage {
			images[y]++
		}
	}
	return posts, images
}

// Table16 classifies unique landing-URL TLDs into IANA groups (Table 16).
func Table16(records []core.Record) (urls *stats.Counter, tlds map[urlinfo.TLDClass]int) {
	urls = stats.NewCounter()
	tldSets := map[urlinfo.TLDClass]map[string]bool{}
	seen := map[string]bool{}
	for _, r := range records {
		if r.FinalURL == "" || seen[r.FinalURL] {
			continue
		}
		seen[r.FinalURL] = true
		info, err := urlinfo.Parse(r.FinalURL)
		if err != nil {
			continue
		}
		urls.Add(string(info.Class))
		if tldSets[info.Class] == nil {
			tldSets[info.Class] = map[string]bool{}
		}
		tldSets[info.Class][info.TLD] = true
	}
	tlds = map[urlinfo.TLDClass]int{}
	for class, set := range tldSets {
		tlds[class] = len(set)
	}
	return urls, tlds
}

// Table17 counts registrars over unique registered domains (Table 17).
func Table17(records []core.Record) *stats.Counter {
	c := stats.NewCounter()
	seen := map[string]bool{}
	for _, r := range records {
		if !r.WhoisFound || seen[r.Domain] {
			continue
		}
		seen[r.Domain] = true
		c.Add(r.Whois.Registrar)
	}
	return c
}

// Table18Result summarizes the three Google Safe Browsing views (Table 18).
type Table18Result struct {
	URLs        int
	APIUnsafe   int
	TRUnsafe    int
	TRPartial   int
	TRNoData    int
	TRUndetect  int
	TRBlocked   int // not queryable programmatically
	VTGSBUnsafe int // the GoogleSafebrowsing vendor row on VirusTotal
}

// Table18 computes GSB coverage over unique landing URLs. The VT-mirror
// column needs the raw vendor verdicts, which the pipeline does not store
// per vendor; it is approximated by matched API count at build time and
// measured precisely in the avscan benchmarks.
func Table18(records []core.Record) Table18Result {
	var res Table18Result
	seen := map[string]bool{}
	for _, r := range records {
		if r.FinalURL == "" || seen[r.FinalURL] {
			continue
		}
		seen[r.FinalURL] = true
		res.URLs++
		if r.GSBMatched {
			res.APIUnsafe++
		}
		if r.GSBBlocked {
			res.TRBlocked++
			continue
		}
		switch r.GSBStatus {
		case "unsafe":
			res.TRUnsafe++
		case "partially_unsafe":
			res.TRPartial++
		case "no_available_data":
			res.TRNoData++
		default:
			res.TRUndetect++
		}
	}
	return res
}

// Fig2Result holds the weekday box distributions and KS comparisons of
// send times (Fig. 2).
type Fig2Result struct {
	N         int
	ByWeekday map[time.Weekday]stats.FiveNumber
	// SignificantPairs lists weekday pairs whose send-time distributions
	// differ at p < 0.05 (two-sample KS).
	SignificantPairs [][2]time.Weekday
}

// Fig2 analyzes send times from screenshot timestamps. Records without a
// dated timestamp are excluded (§3.3.2). excludeCampaignSpike drops the
// dominant single-minute burst (the 2021 SBI campaign) the way §5.1 does.
func Fig2(records []core.Record, excludeCampaignSpike bool) Fig2Result {
	byDay := map[time.Weekday][]float64{}
	minuteCounts := map[string]int{}
	type obs struct {
		wd   time.Weekday
		hour float64
		key  string
	}
	var all []obs
	for _, r := range records {
		if !r.Timestamp.HasDate || r.Timestamp.Time.IsZero() {
			continue
		}
		t := r.Timestamp.Time
		key := t.Format("2006-01-02 15:04")
		minuteCounts[key]++
		all = append(all, obs{wd: t.Weekday(), hour: float64(t.Hour()) + float64(t.Minute())/60, key: key})
	}
	spike := ""
	if excludeCampaignSpike {
		max := 0
		for k, n := range minuteCounts {
			if n > max {
				max, spike = n, k
			}
		}
		if max < 20 {
			spike = "" // no campaign-scale burst
		}
	}
	n := 0
	for _, o := range all {
		if spike != "" && o.key == spike {
			continue
		}
		byDay[o.wd] = append(byDay[o.wd], o.hour)
		n++
	}
	res := Fig2Result{N: n, ByWeekday: map[time.Weekday]stats.FiveNumber{}}
	for wd, xs := range byDay {
		if s, err := stats.Summarize(xs); err == nil {
			res.ByWeekday[wd] = s
		}
	}
	days := []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday, time.Saturday, time.Sunday}
	for i := 0; i < len(days); i++ {
		for j := i + 1; j < len(days); j++ {
			a, b := byDay[days[i]], byDay[days[j]]
			if len(a) == 0 || len(b) == 0 {
				continue
			}
			if ks, err := stats.KolmogorovSmirnov(a, b); err == nil && ks.Significant(0.05) {
				res.SignificantPairs = append(res.SignificantPairs, [2]time.Weekday{days[i], days[j]})
			}
		}
	}
	return res
}

// Fig3 gives the scam-type percentage mix for the top-K sender origin
// countries (Fig. 3).
func Fig3(records []core.Record, topK int) map[string]map[string]float64 {
	byCountry := map[string]*stats.Counter{}
	totals := stats.NewCounter()
	for _, r := range records {
		if !r.HLRDone || r.HLR.Country == "" {
			continue
		}
		c := r.HLR.Country
		totals.Add(c)
		if byCountry[c] == nil {
			byCountry[c] = stats.NewCounter()
		}
		byCountry[c].Add(string(r.Annotation.ScamType))
	}
	out := map[string]map[string]float64{}
	for _, e := range totals.TopK(topK) {
		mix := map[string]float64{}
		for _, scam := range corpus.ScamTypes {
			mix[string(scam)] = byCountry[e.Key].Share(string(scam))
		}
		out[e.Key] = mix
	}
	return out
}

// SenderKinds counts sender-ID kinds over unique senders (§4.1).
func SenderKinds(records []core.Record) *stats.Counter {
	c := stats.NewCounter()
	seen := map[string]bool{}
	for _, r := range records {
		if r.SenderRaw == "" || seen[r.SenderRaw] || r.SenderKind == senderid.KindRedacted {
			continue
		}
		seen[r.SenderRaw] = true
		c.Add(string(r.SenderKind))
	}
	return c
}
