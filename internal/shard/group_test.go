package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// markEnricher tags each record it sees so the test can tell which shard
// processed it — and checks the affinity invariant: every record a shard
// receives in one batch must share the shard per the group's ring.
type markEnricher struct {
	index int
	fail  error

	mu   sync.Mutex
	seen int
}

func (m *markEnricher) EnrichAnnotate(_ context.Context, recs []core.Record) ([]core.Record, error) {
	if m.fail != nil {
		return nil, m.fail
	}
	m.mu.Lock()
	m.seen += len(recs)
	m.mu.Unlock()
	out := make([]core.Record, len(recs))
	for i, r := range recs {
		r.GSBStatus = fmt.Sprintf("shard-%d", m.index)
		out[i] = r
	}
	return out, nil
}

// shortEnricher drops a record — the length mismatch the group must catch.
type shortEnricher struct{}

func (shortEnricher) EnrichAnnotate(_ context.Context, recs []core.Record) ([]core.Record, error) {
	return recs[:len(recs)-1], nil
}

func testReports(n int) []forum.RawReport {
	base := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	reports := make([]forum.RawReport, n)
	for i := range reports {
		reports[i] = forum.RawReport{
			Forum:    corpus.ForumSmishtank,
			PostID:   fmt.Sprintf("grp-%03d", i),
			PostedAt: base.Add(time.Duration(i) * time.Minute),
			SMSText:  fmt.Sprintf("Account locked, verify: https://evil-clinic-%d.xyz/login", i%37),
			SenderID: "EVILCO",
		}
	}
	return reports
}

func mustFront(t *testing.T) *core.Pipeline {
	t.Helper()
	// Curation never touches services, so the front pipeline runs on an
	// empty Services set.
	pipe, err := core.NewPipeline(core.Services{}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

func TestGroupRoutesByKeyAndMergesInOrder(t *testing.T) {
	front := mustFront(t)
	enrichers := make([]Enricher, 4)
	marks := make([]*markEnricher, 4)
	for i := range enrichers {
		marks[i] = &markEnricher{index: i}
		enrichers[i] = marks[i]
	}
	reg := telemetry.NewRegistry()
	g, err := NewGroup(front, enrichers, 0, reg)
	if err != nil {
		t.Fatal(err)
	}

	ds, err := g.Run(context.Background(), testReports(120))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("curation produced no records")
	}
	// The baseline: what an unsharded curate of the same reports yields.
	want := front.Curate(testReports(120))
	if len(want.Records) != len(ds.Records) {
		t.Fatalf("sharded run has %d records, unsharded curate has %d", len(ds.Records), len(want.Records))
	}
	ring := g.ring
	total := 0
	for i := range ds.Records {
		rec := &ds.Records[i]
		// Merge preserved curation order.
		if rec.ID != want.Records[i].ID {
			t.Fatalf("record %d: merged ID %q, curation order wants %q", i, rec.ID, want.Records[i].ID)
		}
		// The shard that marked the record is the one the ring routes its
		// key to — key affinity held.
		wantShard := ring.Shard(KeyOf(rec))
		if got := rec.GSBStatus; got != fmt.Sprintf("shard-%d", wantShard) {
			t.Errorf("record %q (key %q): marked %q, ring says shard %d", rec.ID, KeyOf(rec), got, wantShard)
		}
	}
	for _, m := range marks {
		total += m.seen
	}
	if total != len(ds.Records) {
		t.Errorf("shards saw %d records in total, want %d (each record exactly once)", total, len(ds.Records))
	}

	st := g.Stats()
	if st.Shards != 4 || st.Batches != 1 {
		t.Errorf("Stats: shards=%d batches=%d, want 4/1", st.Shards, st.Batches)
	}
	var routed int64
	for _, sh := range st.PerShard {
		routed += sh.Routed
	}
	if routed != int64(len(ds.Records)) {
		t.Errorf("Stats routed total %d, want %d", routed, len(ds.Records))
	}
	snap := reg.Snapshot()
	if snap.Counters["shard.batches"] != 1 {
		t.Errorf("shard.batches counter = %d, want 1", snap.Counters["shard.batches"])
	}
}

func TestGroupSurfacesLowestIndexedShardError(t *testing.T) {
	front := mustFront(t)
	boom := errors.New("breaker open")
	enrichers := []Enricher{
		&markEnricher{index: 0},
		&markEnricher{index: 1, fail: boom},
		&markEnricher{index: 2, fail: errors.New("other failure")},
		&markEnricher{index: 3},
	}
	g, err := NewGroup(front, enrichers, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Run(context.Background(), testReports(200))
	if err == nil {
		t.Fatal("Run swallowed a shard failure")
	}
	if !errors.Is(err, boom) && !strings.Contains(err.Error(), "other failure") {
		t.Errorf("error %q does not surface a shard failure", err)
	}
}

func TestGroupRejectsLengthMismatch(t *testing.T) {
	front := mustFront(t)
	g, err := NewGroup(front, []Enricher{shortEnricher{}}, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(context.Background(), testReports(40)); err == nil {
		t.Fatal("Run accepted an enricher that dropped records")
	}
}

func TestGroupConstructionAndSwap(t *testing.T) {
	front := mustFront(t)
	if _, err := NewGroup(nil, []Enricher{&markEnricher{}}, 0, telemetry.NewRegistry()); err == nil {
		t.Error("NewGroup accepted a nil front pipeline")
	}
	if _, err := NewGroup(front, nil, 0, telemetry.NewRegistry()); err == nil {
		t.Error("NewGroup accepted zero enrichers")
	}
	g, err := NewGroup(front, []Enricher{&markEnricher{}, &markEnricher{index: 1}}, 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetEnrichers([]Enricher{&markEnricher{}}, true); err == nil {
		t.Error("SetEnrichers accepted a count mismatch")
	}
	if err := g.SetEnrichers([]Enricher{&markEnricher{}, &markEnricher{index: 1}}, true); err != nil {
		t.Errorf("SetEnrichers rejected a matching swap: %v", err)
	}
	if st := g.Stats(); len(st.PerShard) != 2 || !st.PerShard[0].Remote {
		t.Errorf("Stats after remote swap: %+v", st)
	}
}
