// Package gateway is the deployment surface for the §7.2 mitigations: an
// SMS message center front end that accepts submissions (an SMPP-like JSON
// API), runs every message through the XDR filter inline, delivers clean
// traffic to subscriber inboxes, quarantines blocks, and exposes the 7726
// reporting flow — subscribers forward suspicious texts and the gateway
// feeds confirmed domains back into the filter's blocklist, closing the
// loop the paper asks operators to build.
package gateway

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/urlinfo"
	"github.com/smishkit/smishkit/internal/xdrfilter"
)

// Message is one SMS in flight.
type Message struct {
	ID     string    `json:"id"`
	From   string    `json:"from"`
	To     string    `json:"to"`
	Text   string    `json:"text"`
	At     time.Time `json:"at"`
	Action string    `json:"action"` // delivered | blocked | flagged
	Reason string    `json:"reason"`
}

// DefaultRetention is the keep-last-N cap applied to every inbox, the
// quarantine, and the 7726 report log unless WithRetention overrides it.
const DefaultRetention = 1024

// ring is a fixed-capacity keep-last-N message buffer: once full, each
// push overwrites the oldest entry. It grows lazily, so an idle inbox
// costs a map slot, not a full allocation.
type ring struct {
	cap   int
	buf   []Message
	start int // index of the oldest entry once the buffer has wrapped
}

// push appends m, reporting whether an older message was evicted.
func (r *ring) push(m Message) bool {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, m)
		return false
	}
	r.buf[r.start] = m
	r.start = (r.start + 1) % r.cap
	return true
}

// snapshot copies the retained messages, oldest first.
func (r *ring) snapshot() []Message {
	out := make([]Message, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// Gateway filters and routes SMS traffic. Safe for concurrent use.
type Gateway struct {
	filter *xdrfilter.Filter
	met    gatewayMetrics

	mu         sync.Mutex
	nextID     int
	retain     int              // per-ring keep-last-N cap
	inboxes    map[string]*ring // by recipient
	quarantine ring
	reports    ring // 7726 submissions
	stats      Stats
}

// gatewayMetrics holds the pre-resolved instruments Submit and Report
// record into. All fields are nil (discarding) until Instrument is called.
type gatewayMetrics struct {
	submitted  *telemetry.Counter
	delivered  *telemetry.Counter
	blocked    *telemetry.Counter
	flagged    *telemetry.Counter
	reports    *telemetry.Counter
	dropped    *telemetry.Counter
	submitLat  *telemetry.Histogram
	deliverLat *telemetry.Histogram
	blockLat   *telemetry.Histogram
	reportLat  *telemetry.Histogram
}

// Instrument records submit/deliver/block/report counts and latencies into
// reg under "gateway.*". Call before serving traffic.
func (g *Gateway) Instrument(reg *telemetry.Registry) *Gateway {
	g.met = gatewayMetrics{
		submitted:  reg.Counter("gateway.submitted"),
		delivered:  reg.Counter("gateway.delivered"),
		blocked:    reg.Counter("gateway.blocked"),
		flagged:    reg.Counter("gateway.flagged"),
		reports:    reg.Counter("gateway.user_reports"),
		dropped:    reg.Counter("gateway.dropped"),
		submitLat:  reg.Histogram("gateway.submit.latency"),
		deliverLat: reg.Histogram("gateway.deliver.latency"),
		blockLat:   reg.Histogram("gateway.block.latency"),
		reportLat:  reg.Histogram("gateway.report.latency"),
	}
	return g
}

// Stats summarizes gateway traffic.
type Stats struct {
	Submitted   int `json:"submitted"`
	Delivered   int `json:"delivered"`
	Blocked     int `json:"blocked"`
	Flagged     int `json:"flagged"`
	UserReports int `json:"user_reports"`
	FeedbackAdd int `json:"feedback_blocklist_additions"`
	// Dropped counts messages evicted from capped inbox / quarantine /
	// report buffers under sustained traffic. Routing stats above still
	// count every message ever processed.
	Dropped int `json:"dropped"`
}

// New builds a gateway around a configured filter. Inboxes, the
// quarantine, and the report log each retain the last DefaultRetention
// messages; see WithRetention.
func New(filter *xdrfilter.Filter) *Gateway {
	g := &Gateway{filter: filter, inboxes: make(map[string]*ring)}
	return g.WithRetention(DefaultRetention)
}

// WithRetention caps each inbox, the quarantine, and the 7726 report log
// at the last n messages (n <= 0 restores DefaultRetention). Call before
// serving traffic: already-buffered messages keep their old cap.
func (g *Gateway) WithRetention(n int) *Gateway {
	if n <= 0 {
		n = DefaultRetention
	}
	g.mu.Lock()
	g.retain = n
	g.quarantine.cap = n
	g.reports.cap = n
	g.mu.Unlock()
	return g
}

// pushDropped folds one ring push into the eviction bookkeeping; callers
// hold g.mu.
func (g *Gateway) pushDropped(r *ring, m Message) {
	if r.push(m) {
		g.stats.Dropped++
		g.met.dropped.Inc()
	}
}

// inbox returns the recipient's ring, creating it at the current cap.
// Callers hold g.mu.
func (g *Gateway) inbox(to string) *ring {
	r := g.inboxes[to]
	if r == nil {
		r = &ring{cap: g.retain}
		g.inboxes[to] = r
	}
	return r
}

// Submit runs one message through the filter and routes it.
func (g *Gateway) Submit(ctx context.Context, from, to, text string) (Message, error) {
	start := time.Now()
	g.met.submitted.Inc()
	verdict, err := g.filter.Check(ctx, from, text)
	if err != nil {
		g.met.submitLat.Observe(time.Since(start))
		return Message{}, err
	}
	g.mu.Lock()
	g.nextID++
	m := Message{
		ID:   idString(g.nextID),
		From: from, To: to, Text: text,
		At:     time.Now().UTC(),
		Reason: string(verdict.Reason),
	}
	g.stats.Submitted++
	switch verdict.Action {
	case xdrfilter.ActionBlock:
		m.Action = "blocked"
		g.stats.Blocked++
		g.pushDropped(&g.quarantine, m)
	case xdrfilter.ActionFlag:
		m.Action = "flagged"
		g.stats.Flagged++
		g.pushDropped(g.inbox(to), m) // delivered with a warning
	default:
		m.Action = "delivered"
		g.stats.Delivered++
		g.pushDropped(g.inbox(to), m)
	}
	g.mu.Unlock()

	elapsed := time.Since(start)
	g.met.submitLat.Observe(elapsed)
	switch m.Action {
	case "blocked":
		g.met.blocked.Inc()
		g.met.blockLat.Observe(elapsed)
	case "flagged":
		g.met.flagged.Inc()
		g.met.deliverLat.Observe(elapsed)
	default:
		g.met.delivered.Inc()
		g.met.deliverLat.Observe(elapsed)
	}
	return m, nil
}

// Report handles a 7726 forward: the subscriber reports a delivered text.
// Domains in reported texts join the blocklist once reported, so later
// copies of the campaign are blocked — the paper's feedback loop.
func (g *Gateway) Report(from, text string) int {
	start := time.Now()
	defer func() { g.met.reportLat.Observe(time.Since(start)) }()
	g.met.reports.Inc()
	g.mu.Lock()
	g.stats.UserReports++
	g.pushDropped(&g.reports, Message{From: from, Text: text, At: time.Now().UTC()})
	g.mu.Unlock()

	added := 0
	for _, raw := range urlinfo.ExtractURLs(text) {
		info, err := urlinfo.Parse(raw)
		if err != nil || info.Domain == "" {
			continue
		}
		if _, isShort := urlinfo.Shorteners[info.Domain]; isShort {
			continue // never blocklist a shared shortener domain
		}
		g.filter.AddToBlocklist(info.Domain)
		added++
	}
	g.mu.Lock()
	g.stats.FeedbackAdd += added
	g.mu.Unlock()
	return added
}

// Inbox returns a copy of a subscriber's retained messages, oldest first.
func (g *Gateway) Inbox(subscriber string) []Message {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.inboxes[subscriber]
	if r == nil {
		return []Message{}
	}
	return r.snapshot()
}

// Quarantine returns the retained blocked messages, oldest first.
func (g *Gateway) Quarantine() []Message {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quarantine.snapshot()
}

// Snapshot returns current stats.
func (g *Gateway) Snapshot() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

func idString(n int) string {
	const digits = "0123456789"
	buf := [12]byte{'s', 'm', 's', '-', '0', '0', '0', '0', '0', '0', '0', '0'}
	for i := 11; i >= 4 && n > 0; i-- {
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf[:])
}

// Handler exposes the gateway over HTTP:
//
//	POST /v1/sms           {"from","to","text"}            -> routed Message
//	POST /v1/report        {"from","text"}                 -> {"blocklisted": n}   (7726)
//	GET  /v1/inbox?to=...                                  -> []Message
//	GET  /v1/quarantine                                    -> []Message
//	GET  /v1/stats                                         -> Stats
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sms", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ From, To, Text string }
		if err := netutil.ReadJSON(r, &req); err != nil {
			netutil.WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		if strings.TrimSpace(req.To) == "" || strings.TrimSpace(req.Text) == "" {
			netutil.WriteError(w, http.StatusBadRequest, "to and text are required")
			return
		}
		m, err := g.Submit(r.Context(), req.From, req.To, req.Text)
		if err != nil {
			netutil.WriteError(w, http.StatusBadGateway, err.Error())
			return
		}
		netutil.WriteJSON(w, http.StatusOK, m)
	})
	mux.HandleFunc("POST /v1/report", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ From, Text string }
		if err := netutil.ReadJSON(r, &req); err != nil {
			netutil.WriteError(w, http.StatusBadRequest, err.Error())
			return
		}
		n := g.Report(req.From, req.Text)
		netutil.WriteJSON(w, http.StatusOK, map[string]int{"blocklisted": n})
	})
	mux.HandleFunc("GET /v1/inbox", func(w http.ResponseWriter, r *http.Request) {
		to := r.URL.Query().Get("to")
		if to == "" {
			netutil.WriteError(w, http.StatusBadRequest, "missing to parameter")
			return
		}
		netutil.WriteJSON(w, http.StatusOK, g.Inbox(to))
	})
	mux.HandleFunc("GET /v1/quarantine", func(w http.ResponseWriter, r *http.Request) {
		netutil.WriteJSON(w, http.StatusOK, g.Quarantine())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		netutil.WriteJSON(w, http.StatusOK, g.Snapshot())
	})
	return mux
}
