package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/smishkit/smishkit/internal/annotate"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/extract"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/screenshot"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/urlinfo"
)

// Options tunes the pipeline.
type Options struct {
	// Extractor reads screenshot attachments; defaults to StructuredVision
	// (the rung the paper settled on in §3.2).
	Extractor screenshot.Extractor
	// EnrichWorkers is the record-level enrichment fan-out width (default
	// 8; negative is a construction error).
	EnrichWorkers int
	// StepWorkers bounds intra-record enrichment parallelism. After
	// shortener expansion settles (the only true sequencing edge — it
	// produces FinalURL/Domain), the independent enrichment families (HLR,
	// WHOIS, CT, the pDNS→AS chain, and the three AV endpoints) run
	// concurrently under at most this many goroutines per record. 0 selects
	// the default (4); 1 reproduces the historical fully sequential order;
	// negative is a construction error.
	StepWorkers int
	// StageWorkers bounds the worker pools of the CPU stages (screenshot
	// extraction in Curate, annotation in Annotate). 0 selects GOMAXPROCS;
	// negative is a construction error.
	StageWorkers int
	// Streaming makes Run overlap its stages: curated records flow through
	// a bounded channel into the enrich worker pool and are annotated on
	// completion, so curation, enrichment, and annotation proceed
	// concurrently. Record order in the resulting Dataset is completion
	// order; the default barrier mode keeps bit-identical output ordering.
	Streaming bool
	// StreamBuffer is the capacity of the bounded channel between the
	// streaming curate producers and the enrich pool. 0 selects the default
	// (2×EnrichWorkers, minimum 2); negative is a construction error. Only
	// meaningful with Streaming.
	StreamBuffer int
	// Telemetry receives per-stage spans, per-record curation outcomes,
	// and enrichment latency. Nil gets a private registry so
	// Pipeline.Telemetry always works.
	Telemetry *telemetry.Registry

	// RecordBudget bounds one record's total enrichment wall time; past it
	// the record's remaining service calls fail fast and degrade their
	// fields (0 = unbounded).
	RecordBudget time.Duration
	// CallTimeout bounds each individual service call, so one hung
	// connection can't consume a whole record budget (0 = unbounded).
	CallTimeout time.Duration
	// AbortFailureRate aborts the run once more than this fraction of all
	// service calls have failed — degradation is for partial outages, not
	// a world where every service is down. 0 selects the default (0.9);
	// negative disables the abort.
	AbortFailureRate float64
	// MinAbortCalls is the minimum call sample before the failure-rate
	// abort can trigger (default 50).
	MinAbortCalls int
}

func (o Options) withDefaults() Options {
	if o.Extractor == nil {
		o.Extractor = screenshot.StructuredVision{}
	}
	if o.EnrichWorkers == 0 {
		o.EnrichWorkers = 8
	}
	if o.StepWorkers == 0 {
		o.StepWorkers = 4
	}
	if o.StageWorkers == 0 {
		o.StageWorkers = runtime.GOMAXPROCS(0)
	}
	if o.Telemetry == nil {
		o.Telemetry = telemetry.NewRegistry()
	}
	if o.AbortFailureRate == 0 {
		o.AbortFailureRate = 0.9
	}
	if o.MinAbortCalls == 0 {
		o.MinAbortCalls = 50
	}
	return o
}

// Pipeline runs collection output through curation, enrichment, and
// annotation.
type Pipeline struct {
	services Services
	opts     Options
	tel      *telemetry.Registry
	met      pipelineMetrics
}

// pipelineMetrics pre-resolves the hot-path instruments so per-record
// increments are pointer-chasing only (no registry lookups, no allocs).
type pipelineMetrics struct {
	curateOK    *telemetry.Counter
	curateDecoy *telemetry.Counter
	curateEmpty *telemetry.Counter
	enriched    *telemetry.Counter
	annotated   *telemetry.Counter
	busyWorkers *telemetry.Gauge
	recordLat   *telemetry.Histogram

	degradedFields *telemetry.Counter
	degradedRecs   *telemetry.Counter

	// stepPar tracks how many intra-record enrichment families are in
	// flight across the whole pool — the live parallelism the DAG scatter
	// achieves on top of the record-level fan-out.
	stepPar *telemetry.Gauge
	// queueDepth is the number of curated records waiting in the streaming
	// channel between the curate producer and the enrich workers.
	queueDepth *telemetry.Gauge
	// famLat holds one latency histogram per enrichment family
	// ("pipeline.enrich.family.<name>"). Built once at construction and
	// never mutated, so concurrent reads are lock-free.
	famLat map[string]*telemetry.Histogram
}

// familyNames are the independent arms of the per-record enrichment DAG.
// The slice order is the historical sequential call order, which scatter
// preserves exactly when StepWorkers is 1.
var familyNames = []string{"hlr", "whois", "ct", "pdns", "vt", "gsb", "gsb_status"}

// NewPipeline builds a pipeline over the given services. It fails on
// invalid options (currently negative worker counts) so facades can tear
// down already-booted resources instead of deferring the blowup to Run.
func NewPipeline(services Services, opts Options) (*Pipeline, error) {
	if opts.EnrichWorkers < 0 {
		return nil, errors.New("core: EnrichWorkers must not be negative")
	}
	if opts.StepWorkers < 0 {
		return nil, errors.New("core: StepWorkers must not be negative")
	}
	if opts.StageWorkers < 0 {
		return nil, errors.New("core: StageWorkers must not be negative")
	}
	if opts.StreamBuffer < 0 {
		return nil, errors.New("core: StreamBuffer must not be negative")
	}
	opts = opts.withDefaults()
	tel := opts.Telemetry
	famLat := make(map[string]*telemetry.Histogram, len(familyNames))
	for _, name := range familyNames {
		famLat[name] = tel.Histogram("pipeline.enrich.family." + name)
	}
	return &Pipeline{
		services: services,
		opts:     opts,
		tel:      tel,
		met: pipelineMetrics{
			curateOK:    tel.Counter("pipeline.curate.ok"),
			curateDecoy: tel.Counter("pipeline.curate.decoy"),
			curateEmpty: tel.Counter("pipeline.curate.empty"),
			enriched:    tel.Counter("pipeline.enrich.records"),
			annotated:   tel.Counter("pipeline.annotate.records"),
			busyWorkers: tel.Gauge("pipeline.enrich.busy_workers"),
			recordLat:   tel.Histogram("pipeline.enrich.record_latency"),

			degradedFields: tel.Counter("pipeline.enrich.degraded_fields"),
			degradedRecs:   tel.Counter("pipeline.enrich.degraded_records"),

			stepPar:    tel.Gauge("pipeline.record.step_par"),
			queueDepth: tel.Gauge("pipeline.stream.queue_depth"),
			famLat:     famLat,
		},
	}, nil
}

// Telemetry returns the registry the pipeline records into.
func (p *Pipeline) Telemetry() *telemetry.Registry { return p.tel }

// Curate turns raw forum reports into records: it reads screenshot
// attachments with the configured extractor, rejects non-SMS decoys, pulls
// quoted SMS texts out of post bodies, and normalizes the four variables
// (§3.2). Reports whose attachment is unreadable for the extractor count
// as EmptyDropped — the pytesseract failure mode.
//
// Extraction (screenshot decode + OCR) dominates curation and is pure per
// report, so it fans out over Options.StageWorkers into an index-addressed
// scratch slice; the reduce below stays sequential, which keeps record
// order and counter totals bit-identical to a serial sweep.
func (p *Pipeline) Curate(reports []forum.RawReport) *Dataset {
	sp := p.tel.StartSpan("curate")
	defer sp.End()
	ds := &Dataset{
		// One up-front allocation sized for the common case (most reports
		// curate OK), so the reduce loop never regrows the record slice.
		Records:       make([]Record, 0, len(reports)),
		PostsByForum:  make(map[corpus.Forum]int, len(corpus.Forums)),
		ImagesByForum: make(map[corpus.Forum]int, len(corpus.Forums)),
	}
	results := make([]curateResult, len(reports))
	parallelFor(context.Background(), len(reports), p.opts.StageWorkers, func(i int) {
		results[i].rec, results[i].status = p.curateOne(reports[i])
	})
	for i := range reports {
		p.reduceCurated(ds, &reports[i], &results[i])
	}
	return ds
}

// curateResult is one report's curation outcome, produced by the parallel
// extraction pass and folded into the Dataset by the sequential reduce.
type curateResult struct {
	rec    Record
	status curationStatus
}

// reduceCurated folds one curated report into the dataset — the
// order-sensitive half of Curate, also reused by the streaming producer.
func (p *Pipeline) reduceCurated(ds *Dataset, rep *forum.RawReport, res *curateResult) {
	ds.PostsByForum[rep.Forum]++
	switch res.status {
	case curatedOK:
		p.met.curateOK.Inc()
		ds.Records = append(ds.Records, res.rec)
		if res.rec.FromImage {
			ds.ImagesByForum[rep.Forum]++
		}
	case curatedDecoy:
		p.met.curateDecoy.Inc()
		if rep.HasAttachment() {
			ds.ImagesByForum[rep.Forum]++
		}
		ds.DecoysRejected++
	case curatedEmpty:
		p.met.curateEmpty.Inc()
		ds.EmptyDropped++
	}
}

// parallelFor runs fn(0..n-1) across at most workers goroutines. Work is
// handed out by an atomic cursor, so the per-item overhead is one atomic
// add — no channel send per index. A dead ctx stops workers between
// iterations; the indexes already started still complete.
func parallelFor(ctx context.Context, n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n && ctx.Err() == nil; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

type curationStatus int

const (
	curatedOK curationStatus = iota
	curatedDecoy
	curatedEmpty
)

func (p *Pipeline) curateOne(rep forum.RawReport) (Record, curationStatus) {
	var text, sender, stamp, rawURL string
	fromImage := false

	switch {
	case rep.HasAttachment():
		img, err := screenshot.Decode(rep.Attachment)
		if err != nil {
			return Record{}, curatedEmpty
		}
		ext, err := p.opts.Extractor.Extract(img)
		if err != nil {
			return Record{}, curatedEmpty // engine could not read the image
		}
		if !ext.OK {
			return Record{}, curatedDecoy // not an SMS screenshot
		}
		text, sender, stamp, rawURL = ext.Text, ext.Sender, ext.Timestamp, ext.URL
		fromImage = true
		// Naive engines return the whole grid as text with no structure;
		// a purely-poster text yields no usable SMS either way.
	case rep.SMSText != "":
		text, sender, stamp = rep.SMSText, rep.SenderID, rep.Timestamp
	default:
		// Twitter/Reddit text post: the SMS may be quoted in the body.
		text, sender = parseQuotedBody(rep.Body)
		if text == "" {
			return Record{}, curatedEmpty // awareness post / chatter
		}
	}
	if strings.TrimSpace(text) == "" {
		return Record{}, curatedEmpty
	}

	fields := extract.Assemble(text, sender, stamp, rawURL, rep.PostedAt)
	rec := Record{
		ID:         rep.PostID,
		Forum:      rep.Forum,
		PostedAt:   rep.PostedAt,
		FromImage:  fromImage,
		Text:       fields.Text,
		SenderRaw:  fields.Sender,
		SenderKind: fields.SenderKind,
		Timestamp:  fields.Timestamp,
		ShownURL:   fields.PrimaryURL(),
	}
	if rec.ShownURL != "" {
		if info, err := urlinfo.Parse(rec.ShownURL); err == nil {
			rec.URLInfo = info
			rec.Shortener = info.Shortener
		}
	}
	return rec, curatedOK
}

// parseQuotedBody recovers `commentary: "SMS TEXT" from SENDER` bodies.
func parseQuotedBody(body string) (text, sender string) {
	start := strings.Index(body, `"`)
	if start < 0 {
		return "", ""
	}
	end := strings.LastIndex(body, `"`)
	if end <= start {
		return "", ""
	}
	text = body[start+1 : end]
	rest := body[end+1:]
	if i := strings.Index(rest, " from "); i >= 0 {
		sender = strings.TrimSpace(rest[i+len(" from "):])
	}
	return text, sender
}

// enrichState is one Enrich run's shared failure accounting: the
// run-level abort threshold is computed over every service call that
// actually reached a service (short-circuited calls are excluded — see
// ErrShortCircuited).
type enrichState struct {
	calls atomic.Int64
	fails atomic.Int64
}

// abortErr reports whether the run has crossed the failure-rate abort
// threshold. Degradation is for partial outages; when essentially every
// call fails, finishing the sweep would only produce an empty dataset.
func (p *Pipeline) abortErr(st *enrichState) error {
	rate := p.opts.AbortFailureRate
	if rate < 0 {
		return nil
	}
	calls := st.calls.Load()
	if calls < int64(p.opts.MinAbortCalls) {
		return nil
	}
	if fails := st.fails.Load(); float64(fails)/float64(calls) > rate {
		return fmt.Errorf("core: enrichment aborted: %d of %d service calls failed (rate above %.2f)",
			fails, calls, rate)
	}
	return nil
}

// Enrich fans records out over the service clients: shortener expansion,
// HLR lookups on phone senders, and WHOIS / CT / passive-DNS / AV lookups
// on landing URLs. A failing service degrades that record's fields
// (recorded in Record.EnrichmentErrors), not the run; the run aborts only
// when ctx dies or the overall call failure rate crosses
// Options.AbortFailureRate.
func (p *Pipeline) Enrich(ctx context.Context, ds *Dataset) error {
	sp := p.tel.StartSpan("enrich")
	defer sp.End()
	jobs := make(chan int)
	var wg sync.WaitGroup
	errOnce := sync.Once{}
	var firstErr error
	abort := make(chan struct{})
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(abort)
		})
	}

	st := &enrichState{}
	for w := 0; w < p.opts.EnrichWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				p.met.busyWorkers.Add(1)
				start := time.Now()
				err := p.enrichOne(ctx, st, &ds.Records[idx])
				p.met.recordLat.Observe(time.Since(start))
				p.met.busyWorkers.Add(-1)
				if err == nil {
					err = p.abortErr(st)
				}
				if err != nil {
					fail(err)
					return
				}
				if ds.Records[idx].Degraded() {
					p.met.degradedRecs.Inc()
				}
				p.met.enriched.Inc()
			}
		}()
	}
loop:
	for i := range ds.Records {
		select {
		case jobs <- i:
		case <-abort:
			break loop
		case <-ctx.Done():
			fail(ctx.Err())
			break loop
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// enrichStep runs one service call under the per-call timeout. A failure
// degrades the record's field — appended to Record.EnrichmentErrors under
// the record's mutex and counted in telemetry — instead of propagating;
// the return value reports whether the field resolved. mu serializes the
// only record state shared between concurrently scattered families; every
// other field a step writes belongs to exactly one family.
func (p *Pipeline) enrichStep(ctx context.Context, st *enrichState, rec *Record, mu *sync.Mutex, field, service string, fn func(context.Context) error) bool {
	callCtx, cancel := ctx, context.CancelFunc(nil)
	if p.opts.CallTimeout > 0 {
		callCtx, cancel = context.WithTimeout(ctx, p.opts.CallTimeout)
	}
	err := fn(callCtx)
	if cancel != nil {
		cancel()
	}
	if err == nil {
		st.calls.Add(1)
		return true
	}
	// A short-circuited call never reached the service: the field is still
	// lost, but the failure it echoes was counted when the guard tripped,
	// so it stays out of the abort ratio — an open breaker shedding load
	// must not read as "everything is failing".
	if !errors.Is(err, ErrShortCircuited) {
		st.calls.Add(1)
		st.fails.Add(1)
	}
	p.met.degradedFields.Inc()
	mu.Lock()
	rec.EnrichmentErrors = append(rec.EnrichmentErrors, EnrichmentError{
		Field: field, Service: service, Err: err.Error(),
	})
	mu.Unlock()
	return false
}

// enrichFamily is one independent arm of the per-record enrichment DAG.
// Everything run touches depends only on state settled before the scatter
// (the committed FinalURL/Domain and immutable curation fields), so
// families are safe to execute concurrently: each writes a disjoint set of
// record fields and routes the shared EnrichmentErrors slice through
// enrichStep's lock.
type enrichFamily struct {
	name string
	run  func(context.Context)
}

// scatter executes the record's enrichment families under at most
// Options.StepWorkers goroutines. Width 1 (or a single family) runs them
// inline in slice order — the historical sequential behavior, kept exact
// so barrier-mode output with StepWorkers=1 is bit-identical to the
// pre-DAG pipeline. parent is checked between launches so a dead run stops
// scheduling new service calls; families already launched finish (failing
// fast against their dead contexts and degrading their fields).
func (p *Pipeline) scatter(ctx, parent context.Context, fams []enrichFamily) {
	width := p.opts.StepWorkers
	if width > len(fams) {
		width = len(fams)
	}
	if width <= 1 {
		for i := range fams {
			if parent.Err() != nil {
				return
			}
			p.runFamily(ctx, &fams[i])
		}
		return
	}
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	for i := range fams {
		if parent.Err() != nil {
			break
		}
		f := &fams[i]
		sem <- struct{}{} // bounds in-flight families, keeps launch order
		wg.Add(1)
		go func() {
			defer func() { <-sem; wg.Done() }()
			p.runFamily(ctx, f)
		}()
	}
	wg.Wait()
}

// runFamily times one family and tracks the live intra-record parallelism.
func (p *Pipeline) runFamily(ctx context.Context, f *enrichFamily) {
	p.met.stepPar.Add(1)
	start := time.Now()
	f.run(ctx)
	p.met.famLat[f.name].Observe(time.Since(start))
	p.met.stepPar.Add(-1)
}

// enrichOne resolves every enrichment source for one record. A failing
// service degrades the record's field, not the run; only the parent
// context dying aborts. Options.RecordBudget bounds the record's total
// enrichment time — past it, the remaining calls fail fast and degrade,
// which is why the budget context is distinguished from parent here. The
// budget spans the whole record regardless of StepWorkers: families
// running in parallel share one deadline, so widening the scatter never
// widens the time box.
//
// Sequencing is an explicit two-phase DAG: shortener expansion is the only
// true edge (it produces FinalURL/Domain, which every domain- and
// URL-keyed family reads), so it runs first and commits once; the
// remaining families are mutually independent and scatter under
// Options.StepWorkers.
func (p *Pipeline) enrichOne(parent context.Context, st *enrichState, rec *Record) error {
	ctx := parent
	if p.opts.RecordBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, p.opts.RecordBudget)
		defer cancel()
	}
	var mu sync.Mutex // guards rec.EnrichmentErrors across scattered families

	// 1. Shortener expansion: resolve into a local, commit once. A failed
	// expansion must not leave FinalURL/Domain half-rewritten, so the
	// record's URL fields only change after the expansion settles.
	finalURL := rec.ShownURL
	if rec.Shortener != "" && p.services.Shortener != nil {
		if service, code := splitShort(rec.ShownURL); service != "" && code != "" {
			ok := p.enrichStep(ctx, st, rec, &mu, "final_url", "shortener", func(c context.Context) error {
				target, err := p.services.Shortener.Expand(c, service, code)
				switch {
				case err == nil:
					finalURL = target
				case errors.Is(err, shortener.ErrNotFound), errors.Is(err, shortener.ErrTakenDown):
					finalURL = "" // chain lost (§3.3.5)
				default:
					return err
				}
				return nil
			})
			if !ok {
				// Unknown landing URL: degrade rather than mislabel the
				// shortener host as the landing domain.
				finalURL = ""
			}
		}
	}
	rec.FinalURL = finalURL
	if rec.FinalURL != "" {
		if info, err := urlinfo.Parse(rec.FinalURL); err == nil {
			rec.Domain = info.Domain
		}
	}
	if err := parent.Err(); err != nil {
		return err
	}

	// 2. The independent families, scattered up to StepWorkers wide.
	fams := make([]enrichFamily, 0, len(familyNames))
	if rec.SenderKind == senderid.KindPhone && p.services.HLR != nil {
		fams = append(fams, enrichFamily{"hlr", func(c context.Context) {
			p.enrichStep(c, st, rec, &mu, "hlr", "hlr", func(c context.Context) error {
				res, err := p.services.HLR.Lookup(c, rec.SenderRaw)
				if err != nil {
					return err
				}
				rec.HLR = res
				rec.HLRDone = true
				return nil
			})
		}})
	}
	if rec.Domain != "" && !isSharedPlatform(rec) {
		if p.services.Whois != nil {
			fams = append(fams, enrichFamily{"whois", func(c context.Context) {
				p.enrichStep(c, st, rec, &mu, "whois", "whois", func(c context.Context) error {
					w, found, err := p.services.Whois.Lookup(c, rec.Domain)
					if err != nil {
						return err
					}
					rec.Whois, rec.WhoisFound = w, found
					return nil
				})
			}})
		}
		if p.services.CTLog != nil {
			fams = append(fams, enrichFamily{"ct", func(c context.Context) {
				p.enrichStep(c, st, rec, &mu, "ct", "ctlog", func(c context.Context) error {
					sum, err := p.services.CTLog.Summary(c, rec.Domain)
					if err != nil {
						return err
					}
					rec.CT = sum
					return nil
				})
			}})
		}
		if p.services.DNSDB != nil {
			// The pDNS→AS chain is internally sequential (the AS lookups
			// need the resolutions) but independent of every other family.
			fams = append(fams, enrichFamily{"pdns", func(c context.Context) {
				ok := p.enrichStep(c, st, rec, &mu, "pdns", "dnsdb", func(c context.Context) error {
					obs, err := p.services.DNSDB.Resolutions(c, rec.Domain)
					if err != nil {
						return err
					}
					rec.PDNS = obs
					return nil
				})
				if !ok {
					return
				}
				// Cross-record IP dedup lives in the enrichcache layer (the
				// same IP resolved for every record sharing a domain used to
				// re-query here); within one record a linear pair scan keeps
				// the AS list unique without a per-record map allocation.
				for _, o := range rec.PDNS {
					if !p.enrichStep(c, st, rec, &mu, "as_names", "dnsdb", func(c context.Context) error {
						info, err := p.services.DNSDB.ASOf(c, o.IP)
						if errors.Is(err, dnsdb.ErrNoRoute) {
							return nil // unrouted IP: an answer, not a failure
						}
						if err != nil {
							return err
						}
						if !hasASPair(rec.ASNames, rec.ASCountries, info.Name, info.Country) {
							rec.ASNames = append(rec.ASNames, info.Name)
							rec.ASCountries = append(rec.ASCountries, info.Country)
						}
						return nil
					}) {
						return // one degraded AS list; don't hammer a failing service per IP
					}
				}
			}})
		}
	}
	// AV verdicts on the landing URL — three independent endpoints; each
	// degrades alone.
	if rec.FinalURL != "" && p.services.AVScan != nil {
		fams = append(fams, enrichFamily{"vt", func(c context.Context) {
			p.enrichStep(c, st, rec, &mu, "vt", "avscan", func(c context.Context) error {
				scan, err := p.services.AVScan.Scan(c, rec.FinalURL)
				if err != nil {
					return err
				}
				rec.VTMalicious = scan.Stats.Malicious
				rec.VTSuspicious = scan.Stats.Suspicious
				return nil
			})
		}})
		fams = append(fams, enrichFamily{"gsb", func(c context.Context) {
			p.enrichStep(c, st, rec, &mu, "gsb", "avscan", func(c context.Context) error {
				gsb, err := p.services.AVScan.GSBLookup(c, rec.FinalURL)
				if err != nil {
					return err
				}
				rec.GSBMatched = gsb.Matched
				return nil
			})
		}})
		fams = append(fams, enrichFamily{"gsb_status", func(c context.Context) {
			p.enrichStep(c, st, rec, &mu, "gsb_status", "avscan", func(c context.Context) error {
				tr, blocked, err := p.services.AVScan.Transparency(c, rec.FinalURL)
				if err != nil {
					return err
				}
				rec.GSBBlocked = blocked
				if !blocked {
					rec.GSBStatus = string(tr.Status)
				}
				return nil
			})
		}})
	}
	p.scatter(ctx, parent, fams)
	return parent.Err()
}

// hasASPair reports whether the parallel name/country lists already hold
// the pair; records see at most a handful of ASes, so a scan beats a map.
func hasASPair(names, countries []string, name, country string) bool {
	for i := range names {
		if names[i] == name && countries[i] == country {
			return true
		}
	}
	return false
}

// isSharedPlatform reports whether the record's domain belongs to someone
// else's infrastructure (shorteners, chat deep links), where WHOIS/CT/pDNS
// describe the platform rather than the scammer.
func isSharedPlatform(rec *Record) bool {
	if rec.URLInfo.Messaging != "" {
		return true
	}
	_, isShort := urlinfo.Shorteners[rec.Domain]
	return isShort
}

// splitShort decomposes "https://bit.ly/abc" into ("bit.ly", "abc"),
// dropping any query string or fragment after the code.
func splitShort(u string) (service, code string) {
	s := u
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	host, rest, ok := strings.Cut(s, "/")
	if !ok {
		return "", ""
	}
	code, _, _ = strings.Cut(rest, "?")
	code, _, _ = strings.Cut(code, "#")
	return strings.ToLower(host), code
}

// Annotate labels every record (§3.3.6). Annotation is pure CPU over the
// whole dataset, so it fans out over Options.StageWorkers; each worker
// checks ctx between records, so a dead run stops burning CPU on records
// it will discard and the first context error is returned.
func (p *Pipeline) Annotate(ctx context.Context, ds *Dataset) error {
	sp := p.tel.StartSpan("annotate")
	defer sp.End()
	parallelFor(ctx, len(ds.Records), p.opts.StageWorkers, func(i int) {
		rec := &ds.Records[i]
		rec.Annotation = annotate.Annotate(rec.Text, rec.ShownURL)
		p.met.annotated.Inc()
	})
	return ctx.Err()
}

// Run executes curate -> enrich -> annotate over collected reports. In the
// default barrier mode the stages run to completion in turn, so record
// order (and therefore every rendered table) is bit-identical run to run;
// with Options.Streaming the stages overlap and records land in
// completion order instead.
func (p *Pipeline) Run(ctx context.Context, reports []forum.RawReport) (*Dataset, error) {
	if p.opts.Streaming {
		return p.runStreaming(ctx, reports)
	}
	ds := p.Curate(reports)
	if err := p.Enrich(ctx, ds); err != nil {
		return ds, err
	}
	if err := p.Annotate(ctx, ds); err != nil {
		return ds, err
	}
	return ds, nil
}
