// Command benchwatch is the closed-loop benchmark harness's read side: it
// polls a running smishkit daemon's GET /status and GET /debug/telemetry,
// records a samples.csv timeseries, aggregates it into summary.json with
// a pass/fail verdict against the profile's SLO thresholds, and — given a
// baseline summary — fails on regressions beyond BENCH_MAX_REGRESSION_PCT.
//
// Usage:
//
//	benchwatch -profile scripts/benchmark_profiles/smoke_1k.env \
//	           -status http://127.0.0.1:PORT -out bench/out \
//	           [-duration D] [-baseline bench/baseline_summary.json] \
//	           [-max-regression-pct 5]
//
// Exit codes: 0 pass, 1 operational error, 2 SLO verdict failed,
// 3 baseline regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/smishkit/smishkit"
	"github.com/smishkit/smishkit/internal/bench"
	"github.com/smishkit/smishkit/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchwatch: ")
	code, err := run()
	if err != nil {
		log.Print(err)
	}
	os.Exit(code)
}

func run() (int, error) {
	profilePath := flag.String("profile", "", "benchmark profile env file (required)")
	status := flag.String("status", "", "daemon status URL, e.g. http://127.0.0.1:PORT (required)")
	outDir := flag.String("out", "bench/out", "directory for samples.csv and summary.json")
	duration := flag.Duration("duration", 0, "override the watch window (default: profile duration + grace)")
	baseline := flag.String("baseline", "", "baseline summary.json to compare against (optional)")
	maxRegression := flag.Float64("max-regression-pct", regressionPctFromEnv(),
		"allowed regression vs baseline, percent (env BENCH_MAX_REGRESSION_PCT)")
	flag.Parse()
	if *profilePath == "" || *status == "" {
		return 1, fmt.Errorf("both -profile and -status are required")
	}
	p, err := bench.LoadProfile(*profilePath)
	if err != nil {
		return 1, err
	}
	window := p.Duration + p.WatchGrace
	if *duration > 0 {
		window = *duration
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return 1, err
	}

	samples, err := watch(strings.TrimRight(*status, "/"), p, window, filepath.Join(*outDir, "samples.csv"))
	if err != nil {
		return 1, err
	}
	summary, err := bench.Summarize(p.Name, samples, p.Thresholds())
	if err != nil {
		return 1, err
	}
	sumPath := filepath.Join(*outDir, "summary.json")
	f, err := os.Create(sumPath)
	if err != nil {
		return 1, err
	}
	werr := bench.WriteSummary(f, summary)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return 1, werr
	}
	_ = bench.WriteSummary(os.Stdout, summary)

	if !summary.Pass {
		return 2, fmt.Errorf("SLO verdict: FAIL (%s)", strings.Join(summary.Failures, "; "))
	}
	log.Printf("SLO verdict: pass (backlog p95 %.2fs < %.2fs, %d reports)",
		summary.ProjectionBacklogP95Seconds, summary.Thresholds.BacklogP95Seconds, summary.ReportsTotal)

	if *baseline != "" {
		bl, err := bench.LoadSummary(*baseline)
		if err != nil {
			return 1, err
		}
		regs := bench.Compare(bl, summary, *maxRegression)
		if len(regs) > 0 {
			for _, r := range regs {
				log.Printf("regression: %s", r)
			}
			return 3, fmt.Errorf("%d metric(s) regressed beyond %.1f%% vs %s",
				len(regs), *maxRegression, *baseline)
		}
		log.Printf("baseline %s: no regression beyond %.1f%%", *baseline, *maxRegression)
	}
	return 0, nil
}

// regressionPctFromEnv resolves the flag default from BENCH_MAX_REGRESSION_PCT.
func regressionPctFromEnv() float64 {
	if v := os.Getenv("BENCH_MAX_REGRESSION_PCT"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 0 {
			return f
		}
	}
	return bench.DefaultMaxRegressionPct
}

// watch polls the daemon every SampleInterval for the window, streaming
// each sample to csvPath as it lands so a crashed run keeps its timeseries.
func watch(base string, p bench.Profile, window time.Duration, csvPath string) ([]bench.Sample, error) {
	f, err := os.Create(csvPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := bench.WriteCSVHeader(f); err != nil {
		return nil, err
	}

	client := &http.Client{Timeout: 10 * time.Second}
	log.Printf("watching %s every %v for %v -> %s", base, p.SampleInterval, window, csvPath)
	var samples []bench.Sample
	var prev *bench.Sample
	consecutiveFailures := 0
	deadline := time.Now().Add(window)
	tick := time.NewTicker(p.SampleInterval)
	defer tick.Stop()
	for now := time.Now(); now.Before(deadline); now = <-tick.C {
		s, err := poll(client, base, now, prev)
		if err != nil {
			consecutiveFailures++
			log.Printf("poll: %v", err)
			// The daemon disappearing mid-run is a hard failure; a few
			// dropped polls (GC pause, port churn) are tolerated.
			if consecutiveFailures >= 10 {
				return nil, fmt.Errorf("daemon unreachable for %d consecutive polls", consecutiveFailures)
			}
			continue
		}
		consecutiveFailures = 0
		if err := bench.WriteCSVRow(f, s); err != nil {
			return nil, err
		}
		samples = append(samples, s)
		prev = &samples[len(samples)-1]
	}
	log.Printf("collected %d samples", len(samples))
	return samples, nil
}

// poll takes one sample from /status and /debug/telemetry.
func poll(client *http.Client, base string, now time.Time, prev *bench.Sample) (bench.Sample, error) {
	var st smishkit.ServiceStats
	if err := getJSON(client, base+"/status", &st); err != nil {
		return bench.Sample{}, err
	}
	if st.SchemaVersion != smishkit.ServiceStatsSchemaVersion {
		return bench.Sample{}, fmt.Errorf("/status schema_version %d, want %d",
			st.SchemaVersion, smishkit.ServiceStatsSchemaVersion)
	}
	var snap telemetry.Snapshot
	if err := getJSON(client, base+"/debug/telemetry", &snap); err != nil {
		return bench.Sample{}, err
	}

	s := bench.Sample{
		At:               now,
		Rounds:           st.Rounds,
		ReportsTotal:     st.Reports,
		Records:          st.Records,
		PendingBatches:   st.PendingBatches,
		BacklogSeconds:   st.BacklogSeconds,
		Reports1mTotal:   st.Reports1mTotal,
		RoundP95Ms:       st.RoundMS.P95,
		InjectedPosts:    st.InjectedPosts,
		StreamQueueDepth: snap.GaugeValue("pipeline.stream.queue_depth"),
	}
	if h, ok := snap.Hist("pipeline.enrich.record_latency"); ok {
		s.EnrichP95Ms = float64(h.P95) / float64(time.Millisecond)
	}
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "collect.cursor_lag.") && float64(v) > s.CursorLagMaxSeconds {
			s.CursorLagMaxSeconds = float64(v)
		}
	}
	if prev != nil {
		if dt := s.At.Sub(prev.At).Seconds(); dt > 0 {
			s.ReportsPerSec = float64(s.ReportsTotal-prev.ReportsTotal) / dt
		}
	}
	return s, nil
}

func getJSON(client *http.Client, url string, dst any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		return fmt.Errorf("GET %s: decode: %w", url, err)
	}
	return nil
}
