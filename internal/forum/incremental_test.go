package forum

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/smishkit/smishkit/internal/checkpoint"
	"github.com/smishkit/smishkit/internal/netutil"
)

// fingerprint identifies a report by content, not PostID: pastebin paste
// grouping (and thus PostIDs) legitimately differs between a one-shot seed
// and an initial+waves seed, but the reported content must not.
func fingerprint(r RawReport) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%d", r.Forum, r.Body, r.SMSText, r.SenderID, r.Timestamp, len(r.Attachment))
}

func collectSince(t *testing.T, c IncrementalCollector, cur checkpoint.Cursor) (checkpoint.Cursor, []RawReport) {
	t.Helper()
	var got []RawReport
	next, err := c.CollectSince(context.Background(), cur, func(r RawReport) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("CollectSince(%s): %v", c.Name(), err)
	}
	return next, got
}

// TestIncrementalCollectorsRoundTrip drives every collector through the
// daemon's life cycle: full sync from a zero cursor, two append+resync
// rounds, and an idle round — asserting the union of the incremental
// rounds equals a one-shot drain of the fully-seeded forum, with no report
// delivered twice.
func TestIncrementalCollectorsRoundTrip(t *testing.T) {
	w := testWorld(t, 2000)
	full := BuildFixtures(w)
	initial, waves := SplitFixtures(full, 0.5, 2)

	cases := []struct {
		name string
		boot func(seed *Fixtures) (http.Handler, func(base string) IncrementalCollector, func(wave *Fixtures))
	}{
		{"twitter", func(seed *Fixtures) (http.Handler, func(string) IncrementalCollector, func(*Fixtures)) {
			s := NewTwitterServer(seed.Twitter, "b", 0)
			return s.Handler(),
				func(base string) IncrementalCollector { return NewTwitterCollector(base, "b") },
				func(wv *Fixtures) { s.Append(wv.Twitter) }
		}},
		{"reddit", func(seed *Fixtures) (http.Handler, func(string) IncrementalCollector, func(*Fixtures)) {
			s := NewRedditServer(seed.Reddit, 0)
			return s.Handler(),
				func(base string) IncrementalCollector { return NewRedditCollector(base) },
				func(wv *Fixtures) { s.Append(wv.Reddit) }
		}},
		{"smishtank", func(seed *Fixtures) (http.Handler, func(string) IncrementalCollector, func(*Fixtures)) {
			s := NewSmishtankServer(seed.Smishtank)
			return s.Handler(),
				func(base string) IncrementalCollector { return NewSmishtankCollector(base) },
				func(wv *Fixtures) { s.Append(wv.Smishtank) }
		}},
		{"smishing.eu", func(seed *Fixtures) (http.Handler, func(string) IncrementalCollector, func(*Fixtures)) {
			s := NewSmishingEUServer(seed.SmishingEU)
			return s.Handler(),
				func(base string) IncrementalCollector { return NewSmishingEUCollector(base) },
				func(wv *Fixtures) { s.Append(wv.SmishingEU) }
		}},
		{"pastebin", func(seed *Fixtures) (http.Handler, func(string) IncrementalCollector, func(*Fixtures)) {
			s := NewPastebinServer(seed.Pastebin)
			return s.Handler(),
				func(base string) IncrementalCollector { return NewPastebinCollector(base) },
				func(wv *Fixtures) { s.Append(wv.Pastebin) }
		}},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Reference: one-shot drain of a forum seeded with everything.
			refHandler, mkColl, _ := tc.boot(full)
			refSrv := httptest.NewServer(refHandler)
			defer refSrv.Close()
			_, want := collectSince(t, mkColl(refSrv.URL), checkpoint.Cursor{})

			// Live forum: initial backlog, then one wave per round.
			liveHandler, mkColl2, appendWave := tc.boot(initial)
			liveSrv := httptest.NewServer(liveHandler)
			defer liveSrv.Close()
			coll := mkColl2(liveSrv.URL)

			counts := make(map[string]int)
			cur, got := collectSince(t, coll, checkpoint.Cursor{})
			if cur.Updated.IsZero() {
				t.Fatal("successful sync did not stamp Updated")
			}
			for _, r := range got {
				counts[fingerprint(r)]++
			}
			for _, wv := range waves {
				appendWave(wv)
				var round []RawReport
				cur, round = collectSince(t, coll, cur)
				if len(round) == 0 {
					t.Fatal("wave produced no new reports")
				}
				for _, r := range round {
					counts[fingerprint(r)]++
				}
			}
			// Idle round: nothing new, but the cursor still advances Updated.
			idleCur, idle := collectSince(t, coll, cur)
			if len(idle) != 0 {
				t.Fatalf("idle round re-delivered %d reports", len(idle))
			}
			if idleCur.Updated.Before(cur.Updated) {
				t.Fatal("idle sync regressed Updated")
			}

			wantCounts := make(map[string]int)
			for _, r := range want {
				wantCounts[fingerprint(r)]++
			}
			if len(counts) != len(wantCounts) {
				t.Fatalf("incremental union has %d distinct reports, one-shot %d", len(counts), len(wantCounts))
			}
			for fp, n := range wantCounts {
				if counts[fp] != n {
					t.Fatalf("report %.80q: incremental saw %d, one-shot %d", fp, counts[fp], n)
				}
			}
		})
	}
}

// TestRedditEmptyAfterMidListing pins the pagination bugfix: Reddit may
// omit the `after` token on a page that still carries children (a
// mid-listing short page). The collector must keep paging off the last
// child it saw and stop only at a genuinely empty page.
func TestRedditEmptyAfterMidListing(t *testing.T) {
	pages := map[string]redditListing{}
	mk := func(after string, ids ...string) redditListing {
		var l redditListing
		l.Kind = "Listing"
		l.Data.After = after
		l.Data.Children = []redditChild{}
		for _, id := range ids {
			l.Data.Children = append(l.Data.Children, redditChild{
				Kind: "t3",
				Data: redditPost{ID: id, SelfText: "smishing report " + id},
			})
		}
		return l
	}
	// Page 1 has children but NO after token — the buggy collector stopped
	// here and silently dropped c.
	pages[""] = mk("", "a", "b")
	pages["t3_b"] = mk("", "c")
	pages["t3_c"] = mk("")

	requests := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		l, ok := pages[r.URL.Query().Get("after")]
		if !ok {
			l = mk("")
		}
		netutil.WriteJSON(w, http.StatusOK, l)
	}))
	defer srv.Close()

	c := NewRedditCollector(srv.URL)
	var got []string
	seen := map[string]bool{}
	cur, err := c.CollectSince(context.Background(), checkpoint.Cursor{}, func(r RawReport) error {
		if !seen[r.PostID] {
			seen[r.PostID] = true
			got = append(got, r.PostID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("collected %v, want [a b c]: empty after mid-listing truncated the drain", got)
	}
	// Every keyword's cursor must land on the last child actually consumed.
	for _, kw := range Keywords {
		if cur.Token(kw) != "c" {
			t.Fatalf("keyword %q cursor = %q, want c", kw, cur.Token(kw))
		}
	}
	// One extra (empty) request per keyword is the price of correctness;
	// anything beyond 3 pages per keyword means the loop failed to stop.
	if requests > 3*len(Keywords) {
		t.Fatalf("%d requests for %d keywords: pagination did not terminate promptly", requests, len(Keywords))
	}
}

// TestCollectSinceErrorKeepsCursor pins the atomicity contract: a failed
// round returns the input cursor untouched so callers never commit a
// half-synced position.
func TestCollectSinceErrorKeepsCursor(t *testing.T) {
	w := testWorld(t, 600)
	f := BuildFixtures(w)
	srv := httptest.NewServer(NewSmishtankServer(f.Smishtank).Handler())
	defer srv.Close()

	c := NewSmishtankCollector(srv.URL)
	in := checkpoint.Cursor{Source: "smishtank", Offset: 1}
	boom := fmt.Errorf("sink exploded")
	out, err := c.CollectSince(context.Background(), in, func(RawReport) error { return boom })
	if err == nil {
		t.Fatal("sink error not propagated")
	}
	if out.Offset != in.Offset || !out.Updated.Equal(in.Updated) {
		t.Fatalf("failed round advanced the cursor: in=%+v out=%+v", in, out)
	}
}

// TestSplitFixturesChronology checks the split invariants the append-only
// servers rely on: shares add up, and no wave post predates the rounds
// before it.
func TestSplitFixturesChronology(t *testing.T) {
	w := testWorld(t, 1500)
	f := BuildFixtures(w)
	initial, waves := SplitFixtures(f, 0.5, 3)
	if len(waves) != 3 {
		t.Fatalf("got %d waves, want 3", len(waves))
	}
	forums := func(x *Fixtures) [][]post {
		return [][]post{x.Twitter, x.Reddit, x.Smishtank, x.SmishingEU, x.Pastebin}
	}
	totals := make([]int, 5)
	for i, ps := range forums(initial) {
		totals[i] += len(ps)
	}
	for _, wv := range waves {
		for i, ps := range forums(wv) {
			totals[i] += len(ps)
		}
	}
	fullSizes := forums(f)
	for i, n := range totals {
		if n != len(fullSizes[i]) {
			t.Fatalf("forum %d: split total %d != %d", i, n, len(fullSizes[i]))
		}
	}
	// Chronology: last post of each stage <= first post of the next.
	for i := 0; i < 5; i++ {
		prev := forums(initial)[i]
		for _, wv := range waves {
			cur := forums(wv)[i]
			if len(prev) > 0 && len(cur) > 0 {
				if cur[0].CreatedAt.Before(prev[len(prev)-1].CreatedAt) {
					t.Fatalf("forum %d: wave post predates earlier stage", i)
				}
			}
			if len(cur) > 0 {
				prev = cur
			}
		}
	}
}
