// Package xdrfilter simulates the operator-side SMS filtering the paper
// recommends (§7.2): "Mobile network operators should implement checks for
// shortened URLs in texts for redirection to abused domains in their XDR
// filtering solutions". The filter combines three signals before a message
// reaches a subscriber: sender plausibility (malformed/spoofed IDs),
// shortened-URL expansion against a domain blocklist, and a trained
// content classifier. Each verdict records which rule fired, so operators
// can tune stages independently.
package xdrfilter

import (
	"context"
	"errors"
	"strings"
	"sync"

	"github.com/smishkit/smishkit/internal/detect"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/urlinfo"
)

// Action is the filter's decision.
type Action string

// Filter decisions.
const (
	ActionAllow Action = "allow"
	ActionBlock Action = "block"
	ActionFlag  Action = "flag" // deliver but mark (grey zone)
)

// Reason identifies which stage decided.
type Reason string

// Decision reasons.
const (
	ReasonClean          Reason = "clean"
	ReasonBadSender      Reason = "bad_sender_format"
	ReasonBlockedDomain  Reason = "blocklisted_domain"
	ReasonHiddenRedirect Reason = "shortener_to_blocked_domain"
	ReasonClassifier     Reason = "content_classifier"
	ReasonDeadShortener  Reason = "shortener_unresolvable"
)

// Verdict is the outcome for one message.
type Verdict struct {
	Action Action
	Reason Reason
	// ScamType is the classifier's label when it fired.
	ScamType string
	// ExpandedURL is the landing URL when a shortener was expanded.
	ExpandedURL string
}

// Expander resolves short-link codes to their landing URLs. Satisfied by
// *shortener.Client, core.ShortExpander decorators (so operators can put
// the enrichment cache in front of expansion), or any test fake.
type Expander interface {
	Expand(ctx context.Context, service, code string) (string, error)
}

// Config assembles a Filter.
type Config struct {
	// Blocklist of registrable domains known abusive.
	Blocklist []string
	// Expander resolves short links; nil disables redirect checking (the
	// status quo the paper criticizes).
	Expander Expander
	// Classifier labels message content; nil disables the content stage.
	Classifier *detect.Model
	// ClassifierThreshold is the minimum posterior for a scam label to
	// block (default 0.9); between 0.6 and the threshold the message is
	// flagged.
	ClassifierThreshold float64
	// BlockBadSenders drops malformed/landline-origin sender IDs (§4.1
	// calls them "easy fodder to block").
	BlockBadSenders bool
}

// Filter is a configured XDR pipeline stage. Safe for concurrent use.
type Filter struct {
	cfg       Config
	blocklist map[string]bool
	mu        sync.RWMutex
}

// New builds a filter.
func New(cfg Config) *Filter {
	if cfg.ClassifierThreshold == 0 {
		cfg.ClassifierThreshold = 0.9
	}
	f := &Filter{cfg: cfg, blocklist: make(map[string]bool, len(cfg.Blocklist))}
	for _, d := range cfg.Blocklist {
		f.blocklist[strings.ToLower(d)] = true
	}
	return f
}

// AddToBlocklist registers another abusive domain at runtime (threat-intel
// feed updates).
func (f *Filter) AddToBlocklist(domain string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocklist[strings.ToLower(domain)] = true
}

func (f *Filter) blocked(domain string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.blocklist[strings.ToLower(domain)]
}

// Check runs one SMS through the filter.
func (f *Filter) Check(ctx context.Context, sender, text string) (Verdict, error) {
	// Stage 1: sender plausibility.
	if f.cfg.BlockBadSenders && senderid.Classify(sender) == senderid.KindPhone {
		if n, err := senderid.ParsePhone(sender); err == nil || errors.Is(err, senderid.ErrBadFormat) {
			switch {
			case errors.Is(err, senderid.ErrBadFormat):
				return Verdict{Action: ActionBlock, Reason: ReasonBadSender}, nil
			case !senderid.ClassifyNumber(n).Valid():
				return Verdict{Action: ActionBlock, Reason: ReasonBadSender}, nil
			}
		}
	}

	// Stage 2: URL checks, with shortener expansion.
	for _, raw := range urlinfo.ExtractURLs(text) {
		info, err := urlinfo.Parse(raw)
		if err != nil {
			continue
		}
		if f.blocked(info.Domain) {
			return Verdict{Action: ActionBlock, Reason: ReasonBlockedDomain}, nil
		}
		if info.Shortener != "" && f.cfg.Expander != nil {
			service, code := splitShort(info)
			if service == "" {
				continue
			}
			target, err := f.cfg.Expander.Expand(ctx, service, code)
			switch {
			case errors.Is(err, shortener.ErrNotFound), errors.Is(err, shortener.ErrTakenDown):
				// Dead redirector: suspicious but deliverable.
				return Verdict{Action: ActionFlag, Reason: ReasonDeadShortener}, nil
			case err != nil:
				return Verdict{}, err
			}
			if tinfo, err := urlinfo.Parse(target); err == nil && f.blocked(tinfo.Domain) {
				return Verdict{
					Action: ActionBlock, Reason: ReasonHiddenRedirect, ExpandedURL: target,
				}, nil
			}
		}
	}

	// Stage 3: content classification.
	if f.cfg.Classifier != nil {
		label, scores, err := f.cfg.Classifier.Predict(text)
		if err != nil {
			return Verdict{}, err
		}
		if label != "ham" && len(scores) > 0 {
			p := scores[0].Prob
			switch {
			case p >= f.cfg.ClassifierThreshold:
				return Verdict{Action: ActionBlock, Reason: ReasonClassifier, ScamType: label}, nil
			case p >= 0.6:
				return Verdict{Action: ActionFlag, Reason: ReasonClassifier, ScamType: label}, nil
			}
		}
	}
	return Verdict{Action: ActionAllow, Reason: ReasonClean}, nil
}

func splitShort(info urlinfo.Info) (service, code string) {
	path := strings.TrimPrefix(info.URL.Path, "/")
	path = strings.SplitN(path, "?", 2)[0]
	if path == "" {
		return "", ""
	}
	return info.Host, path
}

// Stats aggregates filter outcomes over a traffic sample.
type Stats struct {
	Total   int
	Blocked int
	Flagged int
	Allowed int
	ByStage map[Reason]int
}

// Run filters a batch and aggregates outcomes.
func (f *Filter) Run(ctx context.Context, msgs []struct{ Sender, Text string }) (Stats, error) {
	st := Stats{ByStage: map[Reason]int{}}
	for _, m := range msgs {
		v, err := f.Check(ctx, m.Sender, m.Text)
		if err != nil {
			return st, err
		}
		st.Total++
		st.ByStage[v.Reason]++
		switch v.Action {
		case ActionBlock:
			st.Blocked++
		case ActionFlag:
			st.Flagged++
		default:
			st.Allowed++
		}
	}
	return st, nil
}
