package smishkit

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/report"
)

// runStudy builds a study with the given shard config, runs one batch, and
// returns the dataset's canonical JSON — the byte sequence the determinism
// contract is pinned on.
func runStudy(t *testing.T, shards *ShardConfig) []byte {
	t.Helper()
	study, err := NewStudy(Options{Seed: 7, Messages: 600, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("empty dataset")
	}
	raw, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// summaryBytes serves GET /query/summary from a view over the dataset and
// returns the response body.
func summaryBytes(t *testing.T, rawDataset []byte) []byte {
	t.Helper()
	var ds Dataset
	if err := json.Unmarshal(rawDataset, &ds); err != nil {
		t.Fatal(err)
	}
	view := report.NewQueryView()
	view.Add(ds.Records)
	rec := httptest.NewRecorder()
	view.SummaryHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/query/summary?top=10", nil))
	if rec.Code != 200 {
		t.Fatalf("/query/summary returned %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// TestShardMergeDeterminism is the tentpole's acceptance test: the same
// seed must produce a byte-identical dataset unsharded, with a one-shard
// ring, and with a four-shard ring — and the /query/summary built over
// each must match byte for byte. CI runs this test by name next to the
// durability gate.
func TestShardMergeDeterminism(t *testing.T) {
	unsharded := runStudy(t, nil)
	one := runStudy(t, &ShardConfig{Shards: 1})
	four := runStudy(t, &ShardConfig{Shards: 4})

	if !bytes.Equal(unsharded, one) {
		t.Error("shards=1 dataset differs from unsharded dataset")
	}
	if !bytes.Equal(unsharded, four) {
		t.Error("shards=4 dataset differs from unsharded dataset")
	}
	if s0, s4 := summaryBytes(t, unsharded), summaryBytes(t, four); !bytes.Equal(s0, s4) {
		t.Errorf("/query/summary diverges between unsharded and shards=4:\n%s\n----\n%s", s0, s4)
	}
}

// TestShardStatsSurface checks the scoreboard plumbing: Stats().Shards
// appears exactly when the study is sharded, every record is accounted
// for, and the shards section renders.
func TestShardStatsSurface(t *testing.T) {
	study, err := NewStudy(Options{Seed: 3, Messages: 400, Shards: &ShardConfig{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	st := study.Stats()
	if st.Shards == nil {
		t.Fatal("Stats().Shards nil on a sharded study")
	}
	if st.Cache != nil || st.Batch != nil || st.Resilience != nil {
		t.Error("sharded study leaked global tier stats (documented as per-shard only)")
	}
	if st.Shards.Shards != 3 || st.Shards.Batches != 1 {
		t.Errorf("shard scoreboard: shards=%d batches=%d, want 3/1", st.Shards.Shards, st.Shards.Batches)
	}
	var routed, enriched int64
	for _, sh := range st.Shards.PerShard {
		routed += sh.Routed
		if sh.Stack != nil {
			enriched += sh.Stack.Enriched
		}
	}
	if routed != int64(len(ds.Records)) {
		t.Errorf("routed %d records, dataset has %d", routed, len(ds.Records))
	}
	if enriched != int64(len(ds.Records)) {
		t.Errorf("per-shard stacks enriched %d records, dataset has %d", enriched, len(ds.Records))
	}

	var buf bytes.Buffer
	if err := WriteStats(&buf, st, SectionShards); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shards (n=3") {
		t.Errorf("WriteStats shards section missing:\n%s", buf.String())
	}

	// Per-shard telemetry landed under the shard.<i>. prefix.
	snap := study.Stats().Telemetry
	if snap.Counters["shard.batches"] != 1 {
		t.Errorf("shard.batches = %d, want 1", snap.Counters["shard.batches"])
	}
	var prefixed int64
	for i := 0; i < 3; i++ {
		prefixed += snap.Counters["shard."+string(rune('0'+i))+".routed"]
	}
	if prefixed != int64(len(ds.Records)) {
		t.Errorf("shard.<i>.routed counters sum to %d, want %d", prefixed, len(ds.Records))
	}

	// Unsharded studies must not grow a shards section.
	plain, err := NewStudy(Options{Seed: 3, Messages: 400})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Stats().Shards != nil || plain.ShardStats() != nil {
		t.Error("unsharded study reports shard stats")
	}
}

func TestShardConfigValidation(t *testing.T) {
	bad := []Options{
		{Shards: &ShardConfig{Shards: 0}},
		{Shards: &ShardConfig{Shards: -2}},
		{Shards: &ShardConfig{Shards: 2, Replicas: -1}},
		{Shards: &ShardConfig{Shards: 3, WorkerURLs: []string{"http://127.0.0.1:1"}}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o.Shards)
		}
	}
	ok := Options{Shards: &ShardConfig{Shards: 2, Replicas: 64}}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected a sane shard config: %v", err)
	}
}

// TestShardWorkersInProcess drives the multi-process seam without spawning
// processes: each worker runs as a goroutine on RunShardWorker with its
// spec piped to stdin, exactly as smishctl -shard-worker would, and the
// parent connects over localhost HTTP. Output must match the unsharded
// baseline byte for byte — this is what pins core.Record's lossless JSON
// round-trip through the worker wire format.
func TestShardWorkersInProcess(t *testing.T) {
	baseline := runStudy(t, nil)

	const shards = 2
	study, err := NewStudy(Options{Seed: 7, Messages: 600, Shards: &ShardConfig{Shards: shards}})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		spec, err := json.Marshal(study.ShardWorkerSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		pr, pw := io.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pw.Close()
			if err := RunShardWorker(ctx, bytes.NewReader(spec), pw); err != nil && ctx.Err() == nil {
				t.Errorf("worker: %v", err)
			}
		}()
		line, err := bufio.NewReader(pr).ReadString('\n')
		if err != nil {
			t.Fatalf("worker %d printed no URL: %v", i, err)
		}
		urls[i] = strings.TrimSpace(line)
	}

	cctx, ccancel := context.WithTimeout(ctx, 10*time.Second)
	defer ccancel()
	if err := study.ConnectShardWorkers(cctx, urls); err != nil {
		t.Fatal(err)
	}

	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseline, raw) {
		t.Error("remote-worker dataset differs from unsharded baseline")
	}

	st := study.ShardStats()
	if st == nil {
		t.Fatal("ShardStats nil after remote run")
	}
	for _, sh := range st.PerShard {
		if !sh.Remote {
			t.Errorf("shard %d not marked remote", sh.Index)
		}
		if sh.Routed > 0 && sh.Stack == nil {
			t.Errorf("shard %d: no stack stats from live worker", sh.Index)
		}
	}

	// Mismatched URL count is rejected before any connection attempt.
	if err := study.ConnectShardWorkers(cctx, urls[:1]); err == nil {
		t.Error("ConnectShardWorkers accepted a short URL list")
	}
	cancel()
	wg.Wait()
}
