// Benchmarks for the intra-record enrichment DAG and the streaming
// pipeline mode, against fake services with fixed simulated latencies
// (so the numbers measure orchestration, not the loopback HTTP stack).
// Run with:
//
//	go test -run=NONE -bench='EnrichSequentialVsDAG|RunStreaming' -benchtime=1x -count=5 .
//
// When BENCH_ENRICH_JSON names a file, BenchmarkEnrichSequentialVsDAG
// writes a machine-readable baseline there; CI uploads it as an artifact
// and benchstat-compares the text output against bench/baseline_enrich.txt.
package smishkit

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/urlinfo"
	"github.com/smishkit/smishkit/internal/whois"
)

const (
	// benchRTT is the simulated per-call service round trip. Sequential
	// enrichment of a phone+URL record costs 9 RTTs (hlr, whois, ct,
	// pdns + 2 AS lookups, and three AV endpoints); the DAG's critical
	// path at StepWorkers=4 is the 3-RTT pdns chain.
	benchRTT = time.Millisecond

	benchRecords = 96
	benchWorkers = 8
)

// Fixed-latency fakes, one type per service so HLR's and whois's Lookup
// methods don't collide on a shared receiver.

type benchHLR struct{ rtt time.Duration }

func (s benchHLR) Lookup(context.Context, string) (hlr.Result, error) {
	time.Sleep(s.rtt)
	return hlr.Result{Known: true}, nil
}

type benchWhois struct{ rtt time.Duration }

func (s benchWhois) Lookup(context.Context, string) (whois.Record, bool, error) {
	time.Sleep(s.rtt)
	return whois.Record{}, true, nil
}

type benchCT struct{ rtt time.Duration }

func (s benchCT) Summary(context.Context, string) (ctlog.Summary, error) {
	time.Sleep(s.rtt)
	return ctlog.Summary{}, nil
}

type benchDNS struct{ rtt time.Duration }

func (s benchDNS) Resolutions(_ context.Context, domain string) ([]dnsdb.Observation, error) {
	time.Sleep(s.rtt)
	return []dnsdb.Observation{
		{Domain: domain, IP: "192.0.2.10"},
		{Domain: domain, IP: "198.51.100.20"},
	}, nil
}

func (s benchDNS) ASOf(context.Context, string) (dnsdb.ASInfo, error) {
	time.Sleep(s.rtt)
	return dnsdb.ASInfo{ASN: 64500, Name: "BENCH-NET", Country: "US"}, nil
}

type benchAV struct{ rtt time.Duration }

func (s benchAV) Scan(_ context.Context, u string) (avscan.Report, error) {
	time.Sleep(s.rtt)
	return avscan.Report{URL: u, Stats: avscan.ReportStats{Malicious: 3}}, nil
}

func (s benchAV) GSBLookup(_ context.Context, u string) (avscan.GSBResult, error) {
	time.Sleep(s.rtt)
	return avscan.GSBResult{URL: u, Matched: true}, nil
}

func (s benchAV) Transparency(_ context.Context, u string) (avscan.TransparencyResult, bool, error) {
	time.Sleep(s.rtt)
	return avscan.TransparencyResult{URL: u}, false, nil
}

func benchLatencyServices(rtt time.Duration) core.Services {
	return core.Services{
		HLR:    benchHLR{rtt},
		Whois:  benchWhois{rtt},
		CTLog:  benchCT{rtt},
		DNSDB:  benchDNS{rtt},
		AVScan: benchAV{rtt},
	}
}

// benchEnrichSet builds records that trigger all seven enrichment
// families: a phone sender plus a dedicated (non-shared-platform) domain.
func benchEnrichSet(n int) []core.Record {
	recs := make([]core.Record, n)
	for i := range recs {
		u := fmt.Sprintf("https://evil-clinic-%d.xyz/login", i)
		info, err := urlinfo.Parse(u)
		if err != nil {
			panic(err)
		}
		recs[i] = core.Record{
			ID:         fmt.Sprintf("bench-%d", i),
			Forum:      corpus.ForumSmishtank,
			Text:       "Your appointment is cancelled, rebook: " + u,
			SenderRaw:  "+447700900123",
			SenderKind: senderid.KindPhone,
			ShownURL:   u,
			URLInfo:    info,
		}
	}
	return recs
}

// benchEnrich runs Enrich over the standard record set at the given
// intra-record width and returns the mean per-record enrichment latency
// from the pipeline's own histogram.
func benchEnrich(b *testing.B, stepWorkers int) time.Duration {
	b.Helper()
	template := benchEnrichSet(benchRecords)
	reg := telemetry.NewRegistry()
	pipe, err := core.NewPipeline(benchLatencyServices(benchRTT), core.Options{
		EnrichWorkers: benchWorkers,
		StepWorkers:   stepWorkers,
		Telemetry:     reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ds := &core.Dataset{Records: append([]core.Record(nil), template...)}
		b.StartTimer()
		if err := pipe.Enrich(context.Background(), ds); err != nil {
			b.Fatal(err)
		}
		if got := len(ds.Records[0].EnrichmentErrors); got != 0 {
			b.Fatalf("benchmark services degraded %d fields", got)
		}
	}
	b.StopTimer()
	h := reg.Snapshot().Histograms["pipeline.enrich.record_latency"]
	if h.Count == 0 {
		b.Fatal("no per-record latency observations")
	}
	b.ReportMetric(float64(h.Mean), "ns/record")
	return h.Mean
}

// BenchmarkEnrichSequentialVsDAG pins the tentpole claim: at the default
// simulated service latencies, scattering the independent families under
// StepWorkers=4 cuts per-record enrichment latency by >= 2x versus the
// historical sequential order (StepWorkers=1).
func BenchmarkEnrichSequentialVsDAG(b *testing.B) {
	var seq, dag time.Duration
	b.Run("sequential", func(b *testing.B) { seq = benchEnrich(b, 1) })
	b.Run("dag-4", func(b *testing.B) { dag = benchEnrich(b, 4) })
	if seq == 0 || dag == 0 {
		return
	}
	speedup := float64(seq) / float64(dag)
	b.Logf("per-record enrichment: sequential=%v dag-4=%v speedup=%.2fx", seq, dag, speedup)
	writeBenchEnrichJSON(b, seq, dag, speedup)
}

// writeBenchEnrichJSON emits the machine-readable baseline when the
// BENCH_ENRICH_JSON environment variable names a destination file.
func writeBenchEnrichJSON(b *testing.B, seq, dag time.Duration, speedup float64) {
	path := os.Getenv("BENCH_ENRICH_JSON")
	if path == "" {
		return
	}
	doc := struct {
		Records               int     `json:"records"`
		EnrichWorkers         int     `json:"enrich_workers"`
		ServiceRTTNs          int64   `json:"service_rtt_ns"`
		SequentialNsPerRecord int64   `json:"sequential_ns_per_record"`
		DAG4NsPerRecord       int64   `json:"dag4_ns_per_record"`
		SpeedupSeqOverDAG     float64 `json:"speedup_seq_over_dag"`
	}{benchRecords, benchWorkers, int64(benchRTT), int64(seq), int64(dag), speedup}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Errorf("writing %s: %v", path, err)
	}
}

// benchStreamReports synthesizes structured text reports (no screenshots,
// so curation cost is parsing, not OCR) whose records exercise the full
// enrichment DAG.
func benchStreamReports(n int) []forum.RawReport {
	base := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	reports := make([]forum.RawReport, n)
	for i := range reports {
		u := fmt.Sprintf("https://evil-clinic-%d.xyz/login", i)
		reports[i] = forum.RawReport{
			Forum:    corpus.ForumSmishtank,
			PostID:   fmt.Sprintf("bench-stream-%d", i),
			PostedAt: base.Add(time.Duration(i) * time.Minute),
			SMSText:  "Your parcel is held, pay the fee: " + u,
			SenderID: "+447700900123",
		}
	}
	return reports
}

// BenchmarkRunStreaming compares the barrier pipeline (curate everything,
// then enrich everything, then annotate everything) against the streaming
// mode that overlaps the stages through bounded channels.
func BenchmarkRunStreaming(b *testing.B) {
	reports := benchStreamReports(benchRecords)
	for _, mode := range []struct {
		name      string
		streaming bool
	}{
		{"barrier", false},
		{"streaming", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			pipe, err := core.NewPipeline(benchLatencyServices(benchRTT), core.Options{
				EnrichWorkers: benchWorkers,
				StepWorkers:   4,
				Streaming:     mode.streaming,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds, err := pipe.Run(context.Background(), reports)
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Records) != len(reports) {
					b.Fatalf("curated %d of %d reports", len(ds.Records), len(reports))
				}
			}
		})
	}
}
