package forum

import (
	"fmt"
	"html"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/netutil"
)

func unixTime(sec float64) time.Time { return time.Unix(int64(sec), 0).UTC() }

// --- Smishtank (§3.1.5): JSON submissions API + screenshots ---

// SmishtankServer serves the crowdsourced submission list.
type SmishtankServer struct {
	posts []post
}

// NewSmishtankServer seeds the server.
func NewSmishtankServer(posts []post) *SmishtankServer {
	sorted := make([]post, len(posts))
	copy(sorted, posts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CreatedAt.Before(sorted[j].CreatedAt) })
	return &SmishtankServer{posts: sorted}
}

type smishtankSubmission struct {
	ID         string `json:"id"`
	Submitted  string `json:"submitted_at"`
	Sender     string `json:"sender"`
	Text       string `json:"text"`
	Timestamp  string `json:"sms_timestamp,omitempty"`
	Screenshot string `json:"screenshot,omitempty"` // path
}

type smishtankPage struct {
	Submissions []smishtankSubmission `json:"submissions"`
	Total       int                   `json:"total"`
	Offset      int                   `json:"offset"`
}

// Handler returns the API routes.
func (s *SmishtankServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/submissions", func(w http.ResponseWriter, r *http.Request) {
		offset, _ := strconv.Atoi(r.URL.Query().Get("offset"))
		limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
		if limit <= 0 || limit > 200 {
			limit = 50
		}
		if offset < 0 || offset > len(s.posts) {
			offset = len(s.posts)
		}
		page := smishtankPage{Total: len(s.posts), Offset: offset, Submissions: []smishtankSubmission{}}
		for i := offset; i < len(s.posts) && len(page.Submissions) < limit; i++ {
			p := s.posts[i]
			sub := smishtankSubmission{
				ID:        p.ID,
				Submitted: p.CreatedAt.Format(time.RFC3339),
				Sender:    p.SenderID,
				Text:      p.SMSText,
				Timestamp: p.Timestamp,
			}
			if len(p.Attachment) > 0 {
				sub.Screenshot = "/screenshots/" + p.ID
			}
			page.Submissions = append(page.Submissions, sub)
		}
		netutil.WriteJSON(w, http.StatusOK, page)
	})
	mux.HandleFunc("GET /screenshots/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		for _, p := range s.posts {
			if p.ID == id && len(p.Attachment) > 0 {
				_, _ = w.Write(p.Attachment)
				return
			}
		}
		http.NotFound(w, r)
	})
	return mux
}

// SmishtankCollector pages through the submission API.
type SmishtankCollector struct {
	API netutil.Client
}

// NewSmishtankCollector builds a collector for the API at baseURL.
func NewSmishtankCollector(baseURL string) *SmishtankCollector {
	return &SmishtankCollector{API: netutil.Client{BaseURL: baseURL}}
}

// Name implements Collector.
func (c *SmishtankCollector) Name() corpus.Forum { return corpus.ForumSmishtank }

// Collect implements Collector.
func (c *SmishtankCollector) Collect(ctx ctxType, sink func(RawReport) error) error {
	offset := 0
	for {
		var page smishtankPage
		if err := c.API.GetJSON(ctx, fmt.Sprintf("/api/submissions?offset=%d&limit=100", offset), &page); err != nil {
			return fmt.Errorf("forum: smishtank page %d: %w", offset, err)
		}
		for _, sub := range page.Submissions {
			posted, _ := time.Parse(time.RFC3339, sub.Submitted)
			rep := RawReport{
				Forum:     corpus.ForumSmishtank,
				PostID:    sub.ID,
				PostedAt:  posted,
				SMSText:   sub.Text,
				SenderID:  sub.Sender,
				Timestamp: sub.Timestamp,
			}
			if sub.Screenshot != "" {
				data, err := fetchBytes(ctx, &c.API, sub.Screenshot)
				if err != nil {
					return fmt.Errorf("forum: smishtank screenshot %s: %w", sub.ID, err)
				}
				rep.Attachment = data
			}
			if err := sink(rep); err != nil {
				return err
			}
		}
		offset += len(page.Submissions)
		if len(page.Submissions) == 0 || offset >= page.Total {
			return nil
		}
	}
}

// --- Smishing.eu (§3.1.3): HTML report tables, scraped weekly ---

// SmishingEUServer renders paginated HTML tables of user reports.
type SmishingEUServer struct {
	posts    []post
	pageSize int
}

// NewSmishingEUServer seeds the server.
func NewSmishingEUServer(posts []post) *SmishingEUServer {
	sorted := make([]post, len(posts))
	copy(sorted, posts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CreatedAt.Before(sorted[j].CreatedAt) })
	return &SmishingEUServer{posts: sorted, pageSize: 25}
}

// Handler returns the web routes.
func (s *SmishingEUServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /reports", func(w http.ResponseWriter, r *http.Request) {
		page, _ := strconv.Atoi(r.URL.Query().Get("page"))
		if page < 1 {
			page = 1
		}
		start := (page - 1) * s.pageSize
		end := start + s.pageSize
		if start > len(s.posts) {
			start = len(s.posts)
		}
		if end > len(s.posts) {
			end = len(s.posts)
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<html><body><h1>Reported smishing</h1><table id=\"reports\">\n")
		fmt.Fprint(w, "<tr><th>Date</th><th>Country</th><th>Sender</th><th>Brand</th><th>Message</th></tr>\n")
		for _, p := range s.posts[start:end] {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(p.Timestamp), html.EscapeString(p.Country),
				html.EscapeString(p.SenderID), html.EscapeString(p.Brand),
				html.EscapeString(p.SMSText))
		}
		fmt.Fprint(w, "</table>")
		if end < len(s.posts) {
			fmt.Fprintf(w, `<a href="/reports?page=%d" rel="next">older</a>`, page+1)
		}
		fmt.Fprint(w, "</body></html>")
	})
	return mux
}

// rowRe captures one table row of the report page.
var rowRe = regexp.MustCompile(`<tr><td>(.*?)</td><td>(.*?)</td><td>(.*?)</td><td>(.*?)</td><td>(.*?)</td></tr>`)

// SmishingEUCollector scrapes the HTML tables page by page — the paper's
// custom weekly scraper (§3.1.3).
type SmishingEUCollector struct {
	API netutil.Client
}

// NewSmishingEUCollector builds a scraper for the site at baseURL.
func NewSmishingEUCollector(baseURL string) *SmishingEUCollector {
	return &SmishingEUCollector{API: netutil.Client{BaseURL: baseURL}}
}

// Name implements Collector.
func (c *SmishingEUCollector) Name() corpus.Forum { return corpus.ForumSmishingEU }

// Collect implements Collector.
func (c *SmishingEUCollector) Collect(ctx ctxType, sink func(RawReport) error) error {
	for page := 1; ; page++ {
		body, err := fetchBytes(ctx, &c.API, fmt.Sprintf("/reports?page=%d", page))
		if err != nil {
			return fmt.Errorf("forum: smishing.eu page %d: %w", page, err)
		}
		doc := string(body)
		rows := rowRe.FindAllStringSubmatch(doc, -1)
		n := 0
		for _, row := range rows {
			date, country, sender, brand, msg := row[1], row[2], row[3], row[4], row[5]
			if date == "Date" || strings.Contains(row[0], "<th>") {
				continue
			}
			n++
			rep := RawReport{
				Forum:     corpus.ForumSmishingEU,
				PostID:    fmt.Sprintf("smishing.eu-p%d-r%d", page, n),
				SMSText:   html.UnescapeString(msg),
				SenderID:  html.UnescapeString(sender),
				Timestamp: date,
				Brand:     html.UnescapeString(brand),
				Country:   country,
			}
			if t, err := time.Parse("2006-01-02", date); err == nil {
				rep.PostedAt = t
			}
			if err := sink(rep); err != nil {
				return err
			}
		}
		if !strings.Contains(doc, `rel="next"`) {
			return nil
		}
	}
}

// --- Pastebin (§3.1.4): analyst pastes, one smish per line ---

// PastebinServer serves an archive listing and raw pastes. Each paste packs
// several reports as "sender | date | message" lines, the format of the
// abuseipdb-mirroring analyst the paper found.
type PastebinServer struct {
	pastes map[string][]post
	order  []string
}

// NewPastebinServer groups posts into pastes of up to 10 reports.
func NewPastebinServer(posts []post) *PastebinServer {
	sorted := make([]post, len(posts))
	copy(sorted, posts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CreatedAt.Before(sorted[j].CreatedAt) })
	s := &PastebinServer{pastes: make(map[string][]post)}
	for i := 0; i < len(sorted); i += 10 {
		end := i + 10
		if end > len(sorted) {
			end = len(sorted)
		}
		id := fmt.Sprintf("p%06x", i/10+1)
		s.pastes[id] = sorted[i:end]
		s.order = append(s.order, id)
	}
	return s
}

// Handler returns the web routes.
func (s *PastebinServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /archive", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, id := range s.order {
			fmt.Fprintln(w, id)
		}
	})
	mux.HandleFunc("GET /raw/{id}", func(w http.ResponseWriter, r *http.Request) {
		posts, ok := s.pastes[r.PathValue("id")]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, p := range posts {
			msg := strings.ReplaceAll(p.SMSText, "|", "/")
			fmt.Fprintf(w, "%s | %s | %s\n", p.SenderID, p.Timestamp, msg)
		}
	})
	return mux
}

// PastebinCollector lists the archive and parses each paste.
type PastebinCollector struct {
	API netutil.Client
}

// NewPastebinCollector builds a collector for the site at baseURL.
func NewPastebinCollector(baseURL string) *PastebinCollector {
	return &PastebinCollector{API: netutil.Client{BaseURL: baseURL}}
}

// Name implements Collector.
func (c *PastebinCollector) Name() corpus.Forum { return corpus.ForumPastebin }

// Collect implements Collector.
func (c *PastebinCollector) Collect(ctx ctxType, sink func(RawReport) error) error {
	index, err := fetchBytes(ctx, &c.API, "/archive")
	if err != nil {
		return fmt.Errorf("forum: pastebin archive: %w", err)
	}
	for _, id := range strings.Fields(string(index)) {
		body, err := fetchBytes(ctx, &c.API, "/raw/"+id)
		if err != nil {
			return fmt.Errorf("forum: pastebin paste %s: %w", id, err)
		}
		for n, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			parts := strings.SplitN(line, " | ", 3)
			if len(parts) != 3 {
				continue // truncated line: skip, don't abort the paste
			}
			rep := RawReport{
				Forum:     corpus.ForumPastebin,
				PostID:    fmt.Sprintf("%s-%d", id, n),
				SMSText:   parts[2],
				SenderID:  parts[0],
				Timestamp: parts[1],
			}
			if t, err := time.Parse("2006-01-02", parts[1]); err == nil {
				rep.PostedAt = t
			}
			if err := sink(rep); err != nil {
				return err
			}
		}
	}
	return nil
}
