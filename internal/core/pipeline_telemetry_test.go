package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/telemetry"
)

func mustPipeline(t *testing.T, services Services, opts Options) *Pipeline {
	t.Helper()
	pipe, err := NewPipeline(services, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

func TestNewPipelineRejectsNegativeWorkers(t *testing.T) {
	if _, err := NewPipeline(Services{}, Options{EnrichWorkers: -1}); err == nil {
		t.Fatal("negative EnrichWorkers accepted")
	}
}

// TestSplitShortStripsFragment is the regression for the shortener-lookup
// miss: codes must not retain ?query or #fragment suffixes.
func TestSplitShortStripsFragment(t *testing.T) {
	cases := []struct{ url, service, code string }{
		{"https://bit.ly/abc#x", "bit.ly", "abc"},
		{"https://bit.ly/abc?utm=1#frag", "bit.ly", "abc"},
		{"https://bit.ly/abc#", "bit.ly", "abc"},
		{"https://t.co/Zz9#sec:2", "t.co", "Zz9"},
		{"https://bit.ly/abc", "bit.ly", "abc"},
	}
	for _, c := range cases {
		service, code := splitShort(c.url)
		if service != c.service || code != c.code {
			t.Errorf("splitShort(%q) = (%q, %q), want (%q, %q)",
				c.url, service, code, c.service, c.code)
		}
	}
}

// TestEnrichAbortsOnTransportError drives the worker pool into its abort
// path: the HLR client points at a dead address, so the first record fails
// at the transport level and the whole pool must shut down promptly
// (run under -race in CI to catch shutdown races).
func TestEnrichAbortsOnTransportError(t *testing.T) {
	reg := telemetry.NewRegistry()
	dead := hlr.NewClient("http://127.0.0.1:1", "k").Instrument(reg)
	dead.API.MaxRetries = 1
	dead.API.Backoff = time.Millisecond
	pipe := mustPipeline(t, Services{HLR: dead}, Options{EnrichWorkers: 8, Telemetry: reg})

	ds := &Dataset{}
	for i := 0; i < 64; i++ {
		ds.Records = append(ds.Records, Record{
			SenderKind: senderid.KindPhone,
			SenderRaw:  "+447700900123",
		})
	}

	done := make(chan error, 1)
	go func() { done <- pipe.Enrich(context.Background(), ds) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("transport failure did not surface")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Enrich did not return after transport error (worker pool hung)")
	}

	snap := pipe.Telemetry().Snapshot()
	if snap.Counters["client.hlr.errors"] == 0 {
		t.Error("instrumented HLR client recorded no errors")
	}
	if snap.Gauges["pipeline.enrich.busy_workers"] != 0 {
		t.Errorf("busy_workers gauge = %d after shutdown, want 0",
			snap.Gauges["pipeline.enrich.busy_workers"])
	}
}

func TestEnrichAbortUsesInstrumentedClientTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	dead := hlr.NewClient("http://127.0.0.1:1", "k").Instrument(reg)
	dead.API.MaxRetries = 2
	dead.API.Backoff = time.Millisecond
	if _, err := dead.Lookup(context.Background(), "+447700900123"); err == nil {
		t.Fatal("lookup against dead address succeeded")
	}
	snap := reg.Snapshot()
	if snap.Counters["client.hlr.calls"] != 1 {
		t.Errorf("calls = %d, want 1", snap.Counters["client.hlr.calls"])
	}
	if snap.Counters["client.hlr.retries"] != 2 {
		t.Errorf("retries = %d, want 2", snap.Counters["client.hlr.retries"])
	}
	if snap.Counters["client.hlr.errors"] != 1 {
		t.Errorf("errors = %d, want 1", snap.Counters["client.hlr.errors"])
	}
	if snap.Histograms["client.hlr.latency"].Count != 1 {
		t.Errorf("latency observations = %d, want 1",
			snap.Histograms["client.hlr.latency"].Count)
	}
}

// TestPipelineRecordsStageSpans runs curate/enrich/annotate directly and
// checks the spans and curation-outcome counters land in the registry.
func TestPipelineRecordsStageSpans(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := mustPipeline(t, Services{}, Options{Telemetry: reg})
	ds := pipe.Curate(nil)
	if err := pipe.Enrich(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	pipe.Annotate(ds)

	snap := reg.Snapshot()
	for _, stage := range []string{"curate", "enrich", "annotate"} {
		if snap.Spans[stage].Count != 1 {
			t.Errorf("span %q count = %d, want 1", stage, snap.Spans[stage].Count)
		}
	}
	for name := range snap.Counters {
		if strings.HasPrefix(name, "pipeline.curate.") && snap.Counters[name] != 0 {
			t.Errorf("empty curate recorded %s = %d", name, snap.Counters[name])
		}
	}
}
