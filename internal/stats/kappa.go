package stats

import "errors"

// ErrLengthMismatch is returned when two rating slices differ in length.
var ErrLengthMismatch = errors.New("stats: rating slices have different lengths")

// CohenKappa computes Cohen's kappa between two raters' nominal labels, the
// inter-rater reliability metric used in §3.4 to evaluate both author
// agreement and the model-vs-human agreement on scam type, brand, and lure.
//
// The result is in [-1, 1]; 1 is perfect agreement, 0 is chance-level.
// Degenerate inputs where both raters always emit the same single label
// return kappa = 1 (observed == expected == 1).
func CohenKappa(a, b []string) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	n := float64(len(a))
	agree := 0
	ca := NewCounter()
	cb := NewCounter()
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
		ca.Add(a[i])
		cb.Add(b[i])
	}
	po := float64(agree) / n
	pe := 0.0
	for label, na := range ca.counts {
		pe += (float64(na) / n) * (float64(cb.Count(label)) / n)
	}
	if pe >= 1 {
		// Both raters constant and identical: define as perfect agreement.
		if po >= 1 {
			return 1, nil
		}
		return 0, nil
	}
	return (po - pe) / (1 - pe), nil
}

// KappaBand translates a kappa value into the Landis–Koch qualitative band
// the paper uses ("near-perfect", "substantial", ...).
func KappaBand(k float64) string {
	switch {
	case k >= 0.81:
		return "near-perfect"
	case k >= 0.61:
		return "substantial"
	case k >= 0.41:
		return "moderate"
	case k >= 0.21:
		return "fair"
	case k > 0:
		return "slight"
	default:
		return "poor"
	}
}

// MultiLabelKappa computes Cohen's kappa over set-valued annotations (such
// as the lure-principle lists) by binarizing per label and averaging the
// per-label kappas weighted by label prevalence. Labels present in neither
// rater's output are ignored.
func MultiLabelKappa(a, b [][]string) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	labels := make(map[string]int)
	for i := range a {
		for _, l := range a[i] {
			labels[l]++
		}
		for _, l := range b[i] {
			labels[l]++
		}
	}
	if len(labels) == 0 {
		return 0, ErrEmpty
	}
	var weighted, totalWeight float64
	for label, prevalence := range labels {
		ra := make([]string, len(a))
		rb := make([]string, len(b))
		for i := range a {
			ra[i] = boolLabel(contains(a[i], label))
			rb[i] = boolLabel(contains(b[i], label))
		}
		k, err := CohenKappa(ra, rb)
		if err != nil {
			return 0, err
		}
		w := float64(prevalence)
		weighted += k * w
		totalWeight += w
	}
	return weighted / totalWeight, nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func boolLabel(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
