package annotate

import (
	"strings"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/textnorm"
)

// Multilingual keyword lexicons per scam category. Matching happens on
// folded text (homoglyphs collapsed, lowercased), so "N3tfl!x"-style
// evasion inside keywords is partially neutralized by the skeleton pass.
var scamLexicons = map[corpus.ScamType][]string{
	corpus.ScamBanking: {
		// en
		"account", "bank", "banking", "kyc", "card", "net banking", "signed in",
		"suspended", "locked", "login attempt", "netbank",
		// es
		"cuenta", "tarjeta", "bloqueada", "dispositivo",
		// nl
		"rekening", "bankpas",
		// fr
		"compte", "carte",
		// de
		"konto", "karte", "gesperrt",
		// it
		"conto", "carta",
		// id
		"rekening anda", "diblokir",
		// pt
		"conta", "cartão", "cartao",
		// hi (devanagari keywords kept verbatim)
		"खाता", "बैंक",
		// ja
		"口座", "取引",
		// cs/tr/pl/sv/ro/uk/ru generic "account"
		"účet", "ucet", "hesabınız", "hesabiniz", "konto suspendowane", "rachunek",
		"contul", "рахунок", "аккаунт",
	},
	corpus.ScamDelivery: {
		"parcel", "package", "delivery", "depot", "redelivery", "customs", "shipment", "courier", "tracking",
		"paquete", "entrega", "almacén", "almacen", "pedido",
		"pakket", "bezorgen", "bezorging", "douane",
		"colis", "livraison",
		"paket", "zustellung", "sendung",
		"pacco", "giacenza",
		"paket anda", "tertahan", "gudang",
		"encomenda",
		"पार्सल",
		"お荷物", "お届け", "不在",
		"zásilka", "zasilka", "doručení", "doruceni",
		"kargonuz", "paczka", "csomagja", "paket väntar",
	},
	corpus.ScamGovernment: {
		"tax refund", "tax", "hmrc", "irs", "penalty", "prosecution", "benefit", "vehicle tax", "fine", "rebate",
		"devolución", "devolucion", "multa", "tributaria", "seguridad social",
		"teruggave", "boete", "belastingdienst", "digid",
		"remboursement", "amende", "impots", "impôts",
		"steuererstattung", "steuer",
		"rimborso",
		"reembolso",
		"रिफंड",
		"myGov", "ato", "dvla", "nhs",
	},
	corpus.ScamTelecom: {
		"bill payment", "sim card", "sim", "disconnection", "loyalty points", "re-register", "bill",
		"factura", "corte",
		"betaling is mislukt", "betaalgegevens",
		"forfait", "facture",
		"zahlung ist fehlgeschlagen",
		"bolletta",
		"tagihan",
		"सिम",
		"ご利用料金",
	},
	corpus.ScamWrongNumber: {
		"is this", "are we still", "long time no see", "got your number", "wrong number",
		"sorry to bother", "from the tennis", "about the apartment",
		"eres", "me dio tu número", "me dio tu numero", "quedando",
		"ben jij", "kreeg je nummer",
		"c'est bien", "j'ai eu votre numéro", "j'ai eu votre numero",
		"bist du", "deine nummer",
		"sei", "il tuo numero",
		"apakah ini", "dapat nomor",
		"さんですか", "お会いした", "予定はまだ",
		"请问是", "认识的",
	},
	corpus.ScamHeyMumDad: {
		"hi mum", "hey mum", "hi mom", "hey mom", "hi dad", "hey dad", "mum,", "dad,",
		"dropped my phone", "phone broke", "new number", "lost my phone",
		"hola mamá", "hola mama", "se me cayó el móvil", "numero nuevo", "número nuevo",
		"hoi mam", "telefoon is kapot",
		"coucou maman", "cassé mon téléphone", "casse mon telephone",
		"hallo mama", "handy ist kaputt",
		"ciao mamma", "rotto il telefono",
		"oi mãe", "oi mae", "celular quebrou",
	},
	corpus.ScamSpam: {
		"congratulations", "won", "weekly draw", "casino", "bonus", "deals", "% off", "winners", "raffle",
		"enhorabuena", "ganado", "sorteo",
		"gefeliciteerd", "gewonnen", "trekking",
		"félicitations", "felicitations", "gagné", "gagne", "tirage",
		"glückwunsch", "gluckwunsch", "verlosung",
		"congratulazioni", "estrazione",
		"selamat", "memenangkan", "undian",
		"parabéns", "parabens", "sorteio",
		"binabati", "nanalo",
		"बधाई", "जीते",
		"当選", "おめでとう",
		"поздравляем", "выиграли",
	},
	corpus.ScamOthers: {
		"subscription", "keep watching", "reactivate", "inactivity", "part-time job", "crypto", "wallet",
		"withdrawal", "earn", "sign-in detected", "apply",
		"suscripción", "suscripcion", "oferta de trabajo",
		"abonnement", "abonnements",
		"abozahlung",
		"abbonamento",
		"lowongan kerja", "dihapus",
		"assinatura",
		"part-time", "kumita",
		"कमाएं", "आवेदन",
		"アカウント",
		"账户", "核实",
	},
}

// scamPriority orders categories for tie-breaking: the conversation scams
// have distinctive openings and win when matched at all; spam markers beat
// the broad "others" bucket.
var scamPriority = []corpus.ScamType{
	corpus.ScamHeyMumDad,
	corpus.ScamWrongNumber,
	corpus.ScamDelivery,
	corpus.ScamGovernment,
	corpus.ScamTelecom,
	corpus.ScamBanking,
	corpus.ScamSpam,
	corpus.ScamOthers,
}

// ClassifyScamType labels a message with one of the eight categories.
func ClassifyScamType(text string) corpus.ScamType {
	folded := textnorm.Fold(text)
	bestType := corpus.ScamOthers
	bestScore := 0
	for _, scam := range scamPriority {
		score := 0
		for _, kw := range scamLexicons[scam] {
			if strings.Contains(folded, kw) {
				score += 1 + strings.Count(kw, " ") // multiword hits weigh more
			}
		}
		// Conversation scams: a single distinctive phrase is decisive.
		if (scam == corpus.ScamHeyMumDad || scam == corpus.ScamWrongNumber) && score > 0 {
			score += 2
		}
		if score > bestScore {
			bestType, bestScore = scam, score
		}
	}
	return bestType
}
