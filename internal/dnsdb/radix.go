// Package dnsdb simulates the passive-DNS feed (Spamhaus) and the IP
// geolocation/ASN database (ipinfo.io) the paper combines in §3.3.3/§4.6:
// a domain's historical resolutions feed a longest-prefix-match IP-to-ASN
// lookup, yielding the abused autonomous systems and their countries.
package dnsdb

import (
	"errors"
	"fmt"
	"net/netip"
)

// ASInfo describes the autonomous system owning a prefix.
type ASInfo struct {
	ASN     int    `json:"asn"`
	Name    string `json:"name"`
	Country string `json:"country"`
}

// PrefixEntry binds a CIDR prefix to its AS.
type PrefixEntry struct {
	Prefix netip.Prefix
	Info   ASInfo
}

// ErrNoRoute is returned when no prefix covers an address.
var ErrNoRoute = errors.New("dnsdb: address not covered by any prefix")

// RadixTable performs longest-prefix matching over IPv4 space using a
// binary trie keyed on address bits — the structure real BGP/geo databases
// use. Insertions are not safe for concurrent use with lookups; load fully,
// then query.
type RadixTable struct {
	root *radixNode
	size int
}

type radixNode struct {
	child [2]*radixNode
	info  *ASInfo // set when a prefix terminates here
}

// NewRadixTable returns an empty table.
func NewRadixTable() *RadixTable { return &RadixTable{root: &radixNode{}} }

// Len returns the number of inserted prefixes.
func (t *RadixTable) Len() int { return t.size }

// Insert adds prefix -> info. IPv4 only; longer (more specific) prefixes
// win at lookup. Re-inserting a prefix overwrites its info.
func (t *RadixTable) Insert(prefix netip.Prefix, info ASInfo) error {
	addr := prefix.Addr()
	if !addr.Is4() {
		return fmt.Errorf("dnsdb: only IPv4 prefixes supported, got %v", prefix)
	}
	bits := ipv4Bits(addr)
	n := t.root
	for i := 0; i < prefix.Bits(); i++ {
		b := (bits >> (31 - i)) & 1
		if n.child[b] == nil {
			n.child[b] = &radixNode{}
		}
		n = n.child[b]
	}
	if n.info == nil {
		t.size++
	}
	infoCopy := info
	n.info = &infoCopy
	return nil
}

// Lookup finds the most specific prefix covering addr.
func (t *RadixTable) Lookup(addr netip.Addr) (ASInfo, error) {
	if !addr.Is4() {
		return ASInfo{}, fmt.Errorf("dnsdb: only IPv4 lookups supported, got %v", addr)
	}
	bits := ipv4Bits(addr)
	n := t.root
	var best *ASInfo
	for i := 0; i < 32 && n != nil; i++ {
		if n.info != nil {
			best = n.info
		}
		b := (bits >> (31 - i)) & 1
		n = n.child[b]
	}
	if n != nil && n.info != nil {
		best = n.info
	}
	if best == nil {
		return ASInfo{}, ErrNoRoute
	}
	return *best, nil
}

func ipv4Bits(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// LinearTable is the naive scan baseline used by the ablation bench
// (DESIGN.md §6 item 5): correct but O(prefixes) per lookup.
type LinearTable struct {
	entries []PrefixEntry
}

// Insert appends prefix -> info.
func (t *LinearTable) Insert(prefix netip.Prefix, info ASInfo) error {
	if !prefix.Addr().Is4() {
		return fmt.Errorf("dnsdb: only IPv4 prefixes supported, got %v", prefix)
	}
	t.entries = append(t.entries, PrefixEntry{Prefix: prefix, Info: info})
	return nil
}

// Lookup scans all prefixes for the longest match.
func (t *LinearTable) Lookup(addr netip.Addr) (ASInfo, error) {
	best := -1
	bestBits := -1
	for i, e := range t.entries {
		// >= so a re-inserted (duplicate) prefix overrides the earlier
		// entry, matching RadixTable's overwrite semantics.
		if e.Prefix.Contains(addr) && e.Prefix.Bits() >= bestBits {
			best, bestBits = i, e.Prefix.Bits()
		}
	}
	if best < 0 {
		return ASInfo{}, ErrNoRoute
	}
	return t.entries[best].Info, nil
}
