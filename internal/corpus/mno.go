package corpus

import (
	"math/rand"

	"github.com/smishkit/smishkit/internal/senderid"
)

// rngT is the generator handle threaded through all sampling helpers.
type rngT = *rand.Rand

// mnosByCountry is the mobile-network-operator registry driving Table 4:
// Vodafone operates in 18 markets and tops the abuse chart; Airtel spans
// India plus African markets; BSNL/Jio are India-only.
var mnosByCountry = map[string]*weighted[string]{
	"IND": newWeighted[string]().
		add("Vodafone", 16).add("AirTel", 30).add("BSNL Mobile", 25).
		add("Reliance Jio", 18).add("Vi India", 8),
	"USA": newWeighted[string]().
		add("T-Mobile", 35).add("Verizon", 28).add("AT&T", 27).add("US Cellular", 6),
	"GBR": newWeighted[string]().
		add("Vodafone", 24).add("O2", 30).add("EE Limited", 26).add("Three UK", 14),
	"NLD": newWeighted[string]().
		add("Vodafone", 18).add("T-Mobile", 22).add("Lycamobile", 20).
		add("KPN Mobile", 32).add("Odido", 6),
	"ESP": newWeighted[string]().
		add("Vodafone", 38).add("Movistar", 30).add("Lycamobile", 14).add("Orange", 16),
	"AUS": newWeighted[string]().
		add("Vodafone", 26).add("Telstra", 38).add("Optus", 24).add("Lycamobile", 8),
	"FRA": newWeighted[string]().
		add("SFR", 32).add("Orange", 30).add("Lycamobile", 16).add("Bouygues Telecom", 16),
	"BEL": newWeighted[string]().
		add("Proximus", 38).add("Lycamobile", 26).add("Orange Belgium", 20).add("BASE", 12),
	"IDN": newWeighted[string]().
		add("Telkomsel", 42).add("Indosat Ooredoo", 28).add("XL Axiata", 20),
	"DEU": newWeighted[string]().
		add("Vodafone", 24).add("O2", 28).add("Telekom", 30).add("Lycamobile", 10),
	"ITA": newWeighted[string]().
		add("Vodafone", 30).add("TIM", 32).add("WindTre", 22).add("Iliad", 10),
	"IRL": newWeighted[string]().
		add("Vodafone", 34).add("O2", 22).add("Three Ireland", 24).add("Lycamobile", 12),
	"CZE": newWeighted[string]().
		add("Vodafone", 30).add("T-Mobile", 34).add("O2 Czech", 26),
	"PRT": newWeighted[string]().add("Vodafone", 36).add("MEO", 34).add("NOS", 24),
	"JPN": newWeighted[string]().add("NTT Docomo", 40).add("SoftBank", 30).add("KDDI", 26),
	"BRA": newWeighted[string]().add("Vivo", 36).add("Claro", 30).add("TIM Brasil", 24),
	"MEX": newWeighted[string]().add("Telcel", 50).add("AT&T Mexico", 28).add("Movistar", 18),
	"PHL": newWeighted[string]().add("Globe Telecom", 44).add("Smart", 42),
	"NGA": newWeighted[string]().add("AirTel", 30).add("MTN Nigeria", 40).add("Glo", 20),
	"KEN": newWeighted[string]().add("AirTel", 28).add("Safaricom", 58),
	"ZAF": newWeighted[string]().add("Vodafone", 30).add("MTN", 34).add("Cell C", 18),
	"TUR": newWeighted[string]().add("Vodafone", 28).add("Turkcell", 44).add("Turk Telekom", 24),
	"PAK": newWeighted[string]().add("Jazz", 38).add("Telenor Pakistan", 28).add("Zong", 22),
	"LKA": newWeighted[string]().add("AirTel", 22).add("Dialog", 48).add("SLT-Mobitel", 24),
	"NZL": newWeighted[string]().add("Vodafone", 38).add("Spark", 36).add("2degrees", 20),
	"QAT": newWeighted[string]().add("Vodafone", 44).add("Ooredoo", 50),
	"HUN": newWeighted[string]().add("Vodafone", 34).add("Magyar Telekom", 36).add("Yettel", 24),
	"ROU": newWeighted[string]().add("Vodafone", 32).add("Orange Romania", 36).add("Digi", 22),
	"UKR": newWeighted[string]().add("Vodafone", 34).add("Kyivstar", 40).add("lifecell", 20),
	"GHA": newWeighted[string]().add("Vodafone", 34).add("MTN Ghana", 44),
	"MWI": newWeighted[string]().add("AirTel", 48).add("TNM", 40),
	"COD": newWeighted[string]().add("AirTel", 40).add("Vodacom Congo", 36),
	"GLP": newWeighted[string]().add("SFR", 44).add("Orange Caraïbe", 40),
	"CHN": newWeighted[string]().add("China Mobile", 50).add("China Unicom", 26).add("China Telecom", 22),
	"HKG": newWeighted[string]().add("HKT", 36).add("SmarTone", 28).add("China Mobile HK", 24),
	"SGP": newWeighted[string]().add("Singtel", 42).add("StarHub", 28).add("M1", 22),
	"KOR": newWeighted[string]().add("SK Telecom", 44).add("KT", 30).add("LG U+", 22),
	"POL": newWeighted[string]().add("Orange Polska", 32).add("Play", 30).add("Plus", 22),
	"RUS": newWeighted[string]().add("MTS", 36).add("MegaFon", 30).add("Beeline", 24),
	"SWE": newWeighted[string]().add("Telia", 40).add("Tele2", 30).add("Telenor", 22),
	"ARG": newWeighted[string]().add("Claro", 36).add("Movistar", 32).add("Personal", 26),
	"COL": newWeighted[string]().add("Claro", 44).add("Movistar", 28).add("Tigo", 22),
	"CHL": newWeighted[string]().add("Entel", 36).add("Movistar", 30).add("WOM", 22),
	"PER": newWeighted[string]().add("Claro", 38).add("Movistar", 32).add("Entel", 22),
}

// genericMNO is used for countries missing above.
var genericMNO = newWeighted[string]().add("Vodafone", 30).add("Orange", 25).add("Local Telecom", 45)

// pickMNO samples the originating operator for a phone number in country.
func pickMNO(rng rngT, country string) string {
	if w, ok := mnosByCountry[country]; ok {
		return w.sample(rng)
	}
	return genericMNO.sample(rng)
}

// mobilePrefix returns a plan-conforming national-number prefix for the
// requested number class in the given country, plus the NSN length to pad
// to. Classes map to internal/senderid's ClassifyNumber rules so HLR-style
// classification of generated numbers recovers the intended class.
func mobilePrefix(rng rngT, country, class string) (prefix string, nsnLen int) {
	switch country {
	case "USA":
		switch class {
		case "toll_free":
			return pick(rng, "800", "888", "877", "866"), 10
		case "personal_number":
			return "500", 10
		default:
			// NANP geographic: NPA 2xx-9xx
			return string(rune('2'+rng.Intn(8))) + twoDigits(rng), 10
		}
	case "GBR":
		switch class {
		case "mobile":
			return "7" + pick(rng, "4", "5", "7", "8", "9"), 10
		case "landline":
			return pick(rng, "20", "161", "121", "113"), 10
		case "toll_free":
			return "80", 10
		case "voip":
			return "56", 10
		case "pager":
			return "76", 10
		case "universal_access":
			return pick(rng, "84", "87"), 10
		case "personal_number":
			return "70", 10
		default:
			return "7", 10
		}
	case "IND":
		if class == "landline" {
			return pick(rng, "11", "22", "33", "44"), 10
		}
		return pick(rng, "9", "8", "7", "6"), 10
	case "NLD":
		switch class {
		case "mobile":
			return "6", 9
		case "landline":
			return pick(rng, "10", "20", "30"), 9
		case "voip":
			return pick(rng, "85", "88"), 9
		case "voicemail_only":
			return "84", 9
		case "toll_free":
			return "800", 9
		default:
			return "6", 9
		}
	case "ESP":
		switch class {
		case "mobile":
			return pick(rng, "6", "71", "72"), 9
		case "landline":
			return "91", 9
		case "toll_free":
			return "900", 9
		default:
			return "6", 9
		}
	case "FRA":
		switch class {
		case "mobile":
			return pick(rng, "6", "7"), 9
		case "landline":
			return pick(rng, "1", "2", "4"), 9
		case "voip":
			return "9", 9
		case "toll_free":
			return "80", 9
		default:
			return "6", 9
		}
	case "AUS":
		switch class {
		case "mobile":
			return "4", 9
		case "landline":
			return pick(rng, "2", "3", "7", "8"), 9
		case "voip":
			return "5", 9
		default:
			return "4", 9
		}
	case "DEU":
		switch class {
		case "mobile":
			return pick(rng, "151", "160", "170", "175"), 10
		case "landline":
			return pick(rng, "30", "40", "89"), 9
		case "toll_free":
			return "800", 9
		case "voip":
			return "32", 9
		default:
			return "17", 10
		}
	case "BEL":
		switch class {
		case "mobile":
			return "4", 9
		case "landline":
			return "2", 8
		default:
			return "4", 9
		}
	case "IDN":
		if class == "landline" {
			return "21", 9
		}
		return "8", 10
	default:
		// Generic plan: mobile starts high, landline starts low. Use the
		// country's real NSN length so generated numbers parse.
		lo, _ := senderid.NSNRange(country)
		if class == "landline" {
			return pick(rng, "1", "2", "3"), lo
		}
		return pick(rng, "9", "8", "7"), lo
	}
}

func pick(rng rngT, options ...string) string {
	return options[rng.Intn(len(options))]
}

func twoDigits(rng rngT) string {
	return string(rune('0'+rng.Intn(10))) + string(rune('0'+rng.Intn(10)))
}

// classSupport lists which number classes each modeled country plan can
// actually mint. Sampled classes outside a country's plan are re-homed to a
// country that supports them (adaptClass), mirroring how rare number types
// cluster in specific markets.
var classSupport = map[string]map[string]bool{
	"USA": {"mobile": true, "mobile_or_landline": true, "toll_free": true, "personal_number": true},
	"GBR": {"mobile": true, "landline": true, "toll_free": true, "voip": true, "pager": true, "universal_access": true, "personal_number": true},
	"IND": {"mobile": true, "landline": true},
	"NLD": {"mobile": true, "landline": true, "voip": true, "voicemail_only": true, "toll_free": true},
	"ESP": {"mobile": true, "landline": true, "toll_free": true},
	"FRA": {"mobile": true, "landline": true, "voip": true, "toll_free": true},
	"AUS": {"mobile": true, "landline": true, "voip": true},
	"DEU": {"mobile": true, "landline": true, "toll_free": true, "voip": true, "personal_number": true},
	"BEL": {"mobile": true, "landline": true},
	"IDN": {"mobile": true, "landline": true},
}

// classHomes gives a fallback country for classes most plans lack.
var classHomes = map[string][]string{
	"mobile_or_landline": {"USA"},
	"voicemail_only":     {"NLD"},
	"pager":              {"GBR"},
	"universal_access":   {"GBR"},
	"personal_number":    {"GBR", "DEU"},
	"voip":               {"GBR", "FRA", "NLD"},
	"toll_free":          {"USA", "GBR", "FRA"},
}

// adaptClass reconciles a sampled (country, class) pair against the plan
// tables. "other" stays wherever it lands: the HLR registry is
// authoritative for it even though no plan rule can produce it.
func adaptClass(rng rngT, country, class string) (string, string) {
	if class == "other" {
		return country, class
	}
	if sup, ok := classSupport[country]; ok && sup[class] {
		return country, class
	}
	if !hasPlanEntry(country) && (class == "mobile" || class == "landline") {
		return country, class // generic plan mints these everywhere
	}
	if homes, ok := classHomes[class]; ok {
		return homes[rng.Intn(len(homes))], class
	}
	return country, "mobile"
}

func hasPlanEntry(country string) bool {
	_, ok := classSupport[country]
	return ok
}
