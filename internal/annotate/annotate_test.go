package annotate

import (
	"testing"

	"github.com/smishkit/smishkit/internal/corpus"
)

func TestDetectLanguageBasics(t *testing.T) {
	cases := map[string]string{
		"Your account has been suspended, verify now":                   "en",
		"Su cuenta ha sido suspendida por actividad inusual":            "es",
		"Uw pakket staat vast bij de douane, betaal via":                "nl",
		"Votre compte a été suspendu suite à une activité inhabituelle": "fr",
		"Ihr Konto wurde wegen ungewöhnlicher Aktivität gesperrt":       "de",
		"Il suo conto è stato sospeso per attività insolita":            "it",
		"Rekening Anda diblokir karena aktivitas mencurigakan":          "id",
		"A sua conta foi suspensa por atividade invulgar":               "pt",
		"【ゆうちょ銀行】お客様の口座で不審な取引を確認しました":                                   "ja",
		"प्रिय ग्राहक, आपका खाता निलंबित कर दिया गया है":                "hi",
		"您的账户存在异常，请尽快核实":                                                "zh",
		"Поздравляем! Вы выиграли приз":                                 "ru",
		"Ваш рахунок заблоковано через підозрілу активність":            "uk",
		"": "en",
	}
	for text, want := range cases {
		if got := DetectLanguage(text); got != want {
			t.Errorf("DetectLanguage(%.30q) = %q, want %q", text, got, want)
		}
	}
}

func TestClassifyScamTypeBasics(t *testing.T) {
	cases := map[string]corpus.ScamType{
		"SBI alert: your account has been suspended. Update your KYC":          corpus.ScamBanking,
		"Royal Mail: your parcel is held at our depot. Pay the redelivery fee": corpus.ScamDelivery,
		"HMRC: you are owed a tax refund of £240. Claim before it expires":     corpus.ScamGovernment,
		"O2: your SIM card will be deactivated within 24 hours":                corpus.ScamTelecom,
		"Hi mum, I dropped my phone down the toilet, this is my new number":    corpus.ScamHeyMumDad,
		"Hello, is this Sam? I got your number from Jenny about the apartment": corpus.ScamWrongNumber,
		"Congratulations! You have won $500 in our weekly draw":                corpus.ScamSpam,
		"Netflix: your subscription payment failed. Renew now":                 corpus.ScamOthers,
		"Su paquete está retenido en nuestro almacén, pague la tasa":           corpus.ScamDelivery,
		"Uw rekening is geblokkeerd wegens verdachte activiteit":               corpus.ScamBanking,
		"Votre colis est en attente, réglez les frais de livraison":            corpus.ScamDelivery,
		"random text with no scam markers at all":                              corpus.ScamOthers,
	}
	for text, want := range cases {
		if got := ClassifyScamType(text); got != want {
			t.Errorf("ClassifyScamType(%.40q) = %q, want %q", text, got, want)
		}
	}
}

func TestDetectBrandText(t *testing.T) {
	cases := []struct {
		text, url, want string
	}{
		{"SBI alert: verify your account", "", "State Bank of India"},
		{"Your HSBC card has been locked", "", "HSBC"},
		{"Royal Mail: parcel held", "", "Royal Mail"},
		{"N3tfl!x: your subscription failed", "", "Netflix"},
		{"Ａｍａｚｏｎ: unusual sign-in", "", "Amazon"},
		{"P-a-y-P-a-l account limited", "", "PayPal"},
		{"no brand in this text", "", ""},
		{"verify your details now", "https://secure-santander-login.top/x", "Santander"},
		{"pay the fee", "https://royalmail-redelivery.co.uk/pay", "Royal Mail"},
	}
	for _, c := range cases {
		if got := DetectBrand(c.text, c.url); got != c.want {
			t.Errorf("DetectBrand(%.35q, %q) = %q, want %q", c.text, c.url, got, c.want)
		}
	}
}

func TestDetectLures(t *testing.T) {
	lures := DetectLures(
		"HSBC alert: your account is locked. Verify within 24 hours to claim your refund",
		corpus.ScamBanking, "HSBC")
	want := map[corpus.Lure]bool{
		corpus.LureAuthority: true,
		corpus.LureUrgency:   true,
		corpus.LureNeedGreed: true,
	}
	got := map[corpus.Lure]bool{}
	for _, l := range lures {
		got[l] = true
	}
	for l := range want {
		if !got[l] {
			t.Errorf("missing lure %s in %v", l, lures)
		}
	}
	if got[corpus.LureKindness] || got[corpus.LureDishonesty] {
		t.Errorf("spurious lures: %v", lures)
	}
}

func TestDetectLuresConversation(t *testing.T) {
	lures := DetectLures("Hi mum, my phone broke, can you help", corpus.ScamHeyMumDad, "")
	got := map[corpus.Lure]bool{}
	for _, l := range lures {
		got[l] = true
	}
	if !got[corpus.LureKindness] || !got[corpus.LureDistraction] {
		t.Errorf("hey mum lures = %v", lures)
	}
	if got[corpus.LureAuthority] {
		t.Error("conversation scam tagged with authority")
	}
}

func TestAnnotateEndToEnd(t *testing.T) {
	a := Annotate("SBI alert: your account has been suspended. Verify at https://sbi-kyc.top/verify within 24 hours", "https://sbi-kyc.top/verify")
	if a.ScamType != corpus.ScamBanking {
		t.Errorf("scam = %s", a.ScamType)
	}
	if a.Brand != "State Bank of India" {
		t.Errorf("brand = %q", a.Brand)
	}
	if a.Language != "en" {
		t.Errorf("lang = %q", a.Language)
	}
	if len(a.Lures) == 0 {
		t.Error("no lures detected")
	}
}

// The headline evaluation: annotator vs corpus ground truth must land in
// the paper's agreement bands (§3.4: scam κ=0.93, brand κ=0.85, lure κ=0.7).
func TestAnnotatorAgreementOnCorpus(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 77, Messages: 1500})
	var golden, predicted []Annotation
	for _, m := range w.Messages {
		golden = append(golden, Annotation{
			ScamType: m.ScamType,
			Language: m.Language,
			Brand:    m.Brand,
			Lures:    m.Lures,
		})
		predicted = append(predicted, Annotate(m.Text, m.URL))
	}
	agr, err := Evaluate(golden, predicted)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scam κ=%.3f brand κ=%.3f lang κ=%.3f lure κ=%.3f (n=%d)",
		agr.ScamKappa, agr.BrandKappa, agr.LangKappa, agr.LureKappa, agr.N)
	if agr.ScamKappa < 0.75 {
		t.Errorf("scam kappa = %.3f, want >= 0.75", agr.ScamKappa)
	}
	if agr.BrandKappa < 0.70 {
		t.Errorf("brand kappa = %.3f, want >= 0.70", agr.BrandKappa)
	}
	if agr.LangKappa < 0.80 {
		t.Errorf("language kappa = %.3f, want >= 0.80", agr.LangKappa)
	}
	if agr.LureKappa < 0.55 {
		t.Errorf("lure kappa = %.3f, want >= 0.55", agr.LureKappa)
	}
}

func TestEvaluateMismatch(t *testing.T) {
	if _, err := Evaluate(make([]Annotation, 2), make([]Annotation, 1)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestClassifyOthersSubType(t *testing.T) {
	cases := []struct {
		text, brand string
		want        corpus.OtherSubType
	}{
		{"Part-time job offer: earn $80 per day working from your phone. Apply: https://x.top/a", "", corpus.SubJob},
		{"Your crypto wallet received $420. Confirm the withdrawal at https://x.top/w", "", corpus.SubCrypto},
		{"My trading group made 40% returns last week. I can add one more member", "", corpus.SubInvestment},
		{"Your verification code is 123456. If you did not request this, call us immediately", "", corpus.SubOTPCallback},
		{"Netflix: your subscription payment failed. Renew now", "Netflix", corpus.SubTech},
		{"random chatter with no markers", "", corpus.OtherSubType("")},
	}
	for _, c := range cases {
		if got := ClassifyOthersSubType(c.text, c.brand); got != c.want {
			t.Errorf("ClassifyOthersSubType(%.40q) = %q, want %q", c.text, got, c.want)
		}
	}
}

// Subtype ground truth vs annotation agreement over the corpus.
func TestOthersSubTypeAgreement(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 91, Messages: 4000})
	match, total := 0, 0
	for _, m := range w.Messages {
		if m.ScamType != corpus.ScamOthers || m.SubType == "" {
			continue
		}
		a := Annotate(m.Text, m.URL)
		if a.ScamType != corpus.ScamOthers {
			continue // scam-type disagreement measured elsewhere
		}
		total++
		if a.SubType == m.SubType {
			match++
		}
	}
	if total < 100 {
		t.Fatalf("only %d others messages", total)
	}
	acc := float64(match) / float64(total)
	t.Logf("others subtype agreement = %.3f (n=%d)", acc, total)
	if acc < 0.7 {
		t.Errorf("subtype agreement = %.3f, want >= 0.7", acc)
	}
}

func TestDetectLanguageExtendedScripts(t *testing.T) {
	cases := map[string]string{
		"บัญชีของคุณถูกระงับ กรุณายืนยันข้อมูล":             "th",
		"חשבונך הושעה עקב פעילות חשודה":                     "he",
		"ο λογαριασμός σας έχει ανασταλεί":                  "el",
		"আপনার অ্যাকাউন্ট স্থগিত করা হয়েছে":                "bn",
		"உங்கள் கணக்கு முடக்கப்பட்டுள்ளது":                  "ta",
		"మీ ఖాతా నిలిపివేయబడింది":                           "te",
		"መለያዎ ታግዷል። ዝርዝሮችዎን ያረጋግጡ":                          "am",
		"თქვენი ანგარიში შეჩერებულია":                       "ka",
		"حساب شما مسدود شده است. اطلاعات خود را تایید کنید": "fa",
		"آپ کا اکاؤنٹ معطل کر دیا گیا ہے":                   "ur",
		"akaun anda telah digantung, sahkan maklumat":       "ms",
		"din pakke afventer levering, betal gebyret":        "da",
		"kontoen din er sperret, bekreft":                   "no",
		"pakettisi odottaa toimitusta, maksa maksu":         "fi",
	}
	for text, want := range cases {
		if got := DetectLanguage(text); got != want {
			t.Errorf("DetectLanguage(%.25q) = %q, want %q", text, got, want)
		}
	}
}

func TestCorpusLanguageBreadth(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 87, Messages: 20000})
	langs := map[string]bool{}
	for _, m := range w.Messages {
		langs[m.Language] = true
	}
	if len(langs) < 25 {
		t.Errorf("corpus emits %d languages, want >= 25", len(langs))
	}
}
