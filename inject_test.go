package smishkit

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestInjectWave pins the load-injection facade: a valid wave appends
// posts the daemon then collects, and invalid specs are rejected before
// touching the simulation.
func TestInjectWave(t *testing.T) {
	study, err := NewStudy(Options{
		Seed:     41,
		Messages: 300,
		Pipeline: PipelineOptions{Streaming: true},
		Service: &ServiceConfig{
			PollInterval: 10 * time.Millisecond,
			MaxRounds:    2,
			LiveWaves:    0,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	n, err := study.InjectWave(InjectSpec{Seed: 9, Messages: 30})
	if err != nil {
		t.Fatalf("InjectWave: %v", err)
	}
	if n <= 0 {
		t.Fatalf("InjectWave appended %d posts, want > 0", n)
	}

	for name, spec := range map[string]InjectSpec{
		"zero messages":  {Seed: 1, Messages: 0},
		"over cap":       {Seed: 1, Messages: MaxInjectMessages + 1},
		"unknown forum":  {Seed: 1, Messages: 5, Forums: []string{"myspace"}},
		"noise above 1":  {Seed: 1, Messages: 5, NoiseFraction: 1.5},
		"negative noise": {Seed: 1, Messages: 5, NoiseFraction: -0.1},
	} {
		if _, err := study.InjectWave(spec); err == nil {
			t.Errorf("InjectWave accepted %s: %+v", name, spec)
		}
	}

	// A second wave must namespace its IDs independently of the first —
	// append succeeding is the observable contract (colliding IDs would
	// corrupt the ID-resolving cursors and fail the round below).
	n2, err := study.InjectWave(InjectSpec{Seed: 9, Messages: 30})
	if err != nil || n2 <= 0 {
		t.Fatalf("second InjectWave: n=%d err=%v", n2, err)
	}

	ds, err := study.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("no records after serving an injected world")
	}
	st := study.Stats()
	if st.Service == nil {
		t.Fatal("Stats().Service nil after Serve")
	}
	if st.Service.InjectedPosts != n+n2 {
		t.Fatalf("InjectedPosts = %d, want %d", st.Service.InjectedPosts, n+n2)
	}
}

// TestServeStatusSchema drives the daemon the way the benchmark harness
// does — OnReady for the URL, POST /inject over HTTP mid-run, GET /status
// decoded against the versioned schema — and pins the schema's contract:
// schema_version present, all five forums in reports_1m, round
// percentiles populated after rounds complete.
func TestServeStatusSchema(t *testing.T) {
	var readyURL atomic.Value // string
	var injected atomic.Int64
	var study *Study
	var once atomic.Bool
	opts := Options{
		Seed:     43,
		Messages: 300,
		Pipeline: PipelineOptions{Streaming: true},
		Service: &ServiceConfig{
			PollInterval: 10 * time.Millisecond,
			MaxRounds:    3,
			LiveWaves:    1,
			OnReady: func(statusURL string) {
				readyURL.Store(statusURL)
			},
			OnRound: func(info RoundInfo) {
				if info.Err != nil {
					t.Errorf("round %d: %v", info.Round, info.Err)
				}
				if !once.CompareAndSwap(false, true) {
					return
				}
				base, _ := readyURL.Load().(string)
				if base == "" {
					t.Error("OnReady had not fired by the first round")
					return
				}

				// Inject a wave over HTTP, exactly as cmd/loadgen does.
				body, _ := json.Marshal(InjectSpec{Seed: 7, Messages: 20})
				resp, err := http.Post(base+"/inject", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("POST /inject: %v", err)
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("POST /inject status = %s", resp.Status)
					return
				}
				var out struct {
					AppendedPosts int `json:"appended_posts"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.AppendedPosts <= 0 {
					t.Errorf("POST /inject response: appended=%d err=%v", out.AppendedPosts, err)
					return
				}
				injected.Store(int64(out.AppendedPosts))

				// A malformed spec must be a 400, not a daemon wobble.
				bad, _ := json.Marshal(InjectSpec{Seed: 1, Messages: -5})
				bresp, err := http.Post(base+"/inject", "application/json", bytes.NewReader(bad))
				if err != nil {
					t.Errorf("POST /inject (bad): %v", err)
					return
				}
				bresp.Body.Close()
				if bresp.StatusCode != http.StatusBadRequest {
					t.Errorf("POST /inject with bad spec: status = %s, want 400", bresp.Status)
				}

				// The status document honors the versioned schema.
				sresp, err := http.Get(base + "/status")
				if err != nil {
					t.Errorf("GET /status: %v", err)
					return
				}
				defer sresp.Body.Close()
				var raw map[string]json.RawMessage
				if err := json.NewDecoder(sresp.Body).Decode(&raw); err != nil {
					t.Errorf("status decode: %v", err)
					return
				}
				for _, field := range []string{
					"schema_version", "rounds", "reports", "records",
					"pending_batches", "backlog_seconds", "reports_1m",
					"reports_1m_total", "injected_posts", "round_ms", "cursors",
				} {
					if _, ok := raw[field]; !ok {
						t.Errorf("/status missing field %q", field)
					}
				}
				var ver int
				if err := json.Unmarshal(raw["schema_version"], &ver); err != nil || ver != ServiceStatsSchemaVersion {
					t.Errorf("schema_version = %d (err %v), want %d", ver, err, ServiceStatsSchemaVersion)
				}
				var perForum map[string]int
				if err := json.Unmarshal(raw["reports_1m"], &perForum); err != nil || len(perForum) != 5 {
					t.Errorf("reports_1m = %v (err %v), want all five forums present", perForum, err)
				}
			},
		},
	}
	var err error
	study, err = NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	if _, err := study.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !once.Load() {
		t.Fatal("OnRound never fired")
	}

	st := study.Stats()
	if st.Service == nil {
		t.Fatal("Stats().Service nil after Serve")
	}
	if got, want := st.Service.InjectedPosts, int(injected.Load()); got != want {
		t.Errorf("InjectedPosts = %d, want %d", got, want)
	}
	// Injected posts were collected and committed: the trailing-60s window
	// must have registered them, and round percentiles are populated.
	if st.Service.Reports1mTotal <= 0 {
		t.Errorf("Reports1mTotal = %d, want > 0", st.Service.Reports1mTotal)
	}
	if st.Service.RoundMS.Count < 3 || st.Service.RoundMS.P95 <= 0 {
		t.Errorf("RoundMS = %+v, want >=3 completed rounds with positive p95", st.Service.RoundMS)
	}
	sum := 0
	for _, n := range st.Service.Reports1m {
		sum += n
	}
	if sum != st.Service.Reports1mTotal {
		t.Errorf("reports_1m sums to %d, total says %d", sum, st.Service.Reports1mTotal)
	}

	// The rendered service section carries the new throughput line.
	var out bytes.Buffer
	if err := WriteStats(&out, st, SectionService); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"schema v1", "reports_1m=", "injected="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("WriteStats service section missing %q:\n%s", want, out.String())
		}
	}
}
