// Command smishctl runs the full smishing measurement pipeline against a
// simulated world and prints the paper's tables and figures.
//
// Usage:
//
//	smishctl [-seed N] [-messages N] [-workers N] [-extractor structured|vision|naive] [-telemetry] [-cache] [-cache-stats] [-chaos RATE]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/smishkit/smishkit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smishctl: ")

	seed := flag.Int64("seed", 1, "world generation seed")
	messages := flag.Int("messages", 4000, "synthetic corpus size")
	workers := flag.Int("workers", 8, "enrichment fan-out width")
	extractor := flag.String("extractor", "structured", "screenshot extractor: structured|vision|naive")
	telemetry := flag.Bool("telemetry", false, "print per-stage spans and per-service client metrics after the report")
	cache := flag.Bool("cache", true, "coalesce and cache enrichment lookups (singleflight + TTL/LRU + negative caching)")
	cacheStats := flag.Bool("cache-stats", false, "print per-service cache hit/miss/coalesced counts after the report")
	chaos := flag.Float64("chaos", 0, "inject faults into this fraction of service calls (0 disables; seeded by -seed) and enable circuit breakers")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	flag.Parse()
	if *chaos < 0 || *chaos > 1 {
		log.Fatalf("-chaos %v out of range [0, 1]", *chaos)
	}

	opts := smishkit.Options{Seed: *seed, Messages: *messages}
	if *cache {
		opts.Cache = &smishkit.CacheConfig{ServeStale: true}
	}
	if *chaos > 0 {
		// Split the rate across fault kinds: mostly transport errors and
		// 5xx, a sliver of rate limits and hangs, plus latency spikes.
		opts.Faults = &smishkit.FaultConfig{
			Seed: *seed,
			Default: smishkit.ServiceFaults{
				ErrorRate: *chaos * 0.5,
				Rate5xx:   *chaos * 0.3,
				Rate429:   *chaos * 0.15,
				HangRate:  *chaos * 0.05,
				SlowRate:  *chaos,
				Latency:   2 * time.Millisecond,
			},
		}
		opts.Resilience = &smishkit.ResilienceConfig{
			CallTimeout:  2 * time.Second,
			RecordBudget: 30 * time.Second,
		}
	}
	opts.Pipeline.EnrichWorkers = *workers
	switch *extractor {
	case "structured":
		opts.Pipeline.Extractor = smishkit.ExtractorStructuredVision
	case "vision":
		opts.Pipeline.Extractor = smishkit.ExtractorVisionOCR
	case "naive":
		opts.Pipeline.Extractor = smishkit.ExtractorNaiveOCR
	default:
		log.Fatalf("unknown extractor %q", *extractor)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	study, err := smishkit.NewStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()
	log.Printf("world: %d messages, %d domains, %d numbers, %d short links",
		len(study.World.Messages), len(study.World.Domains),
		len(study.World.Numbers), len(study.World.Links))

	ds, err := study.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pipeline: %d records in %v (decoys rejected: %d)",
		len(ds.Records), time.Since(start).Round(time.Millisecond), ds.DecoysRejected)
	if *chaos > 0 {
		degraded := 0
		for _, r := range ds.Records {
			if r.Degraded() {
				degraded++
			}
		}
		log.Printf("chaos: %d of %d records degraded", degraded, len(ds.Records))
	}

	if err := smishkit.WriteReport(os.Stdout, ds); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	if *telemetry {
		if err := smishkit.WriteTelemetry(os.Stdout, study.Telemetry()); err != nil {
			log.Fatal(err)
		}
		log.Printf("live snapshot: %s/debug/telemetry", study.Sim.DebugURL)
	}

	if *cacheStats {
		stats := study.CacheStats()
		if stats == nil {
			log.Print("cache stats requested but -cache=false; nothing to print")
			return
		}
		if err := smishkit.WriteCacheStats(os.Stdout, stats); err != nil {
			log.Fatal(err)
		}
	}

	if *chaos > 0 {
		if err := smishkit.WriteResilienceStats(os.Stdout, study.ResilienceStats()); err != nil {
			log.Fatal(err)
		}
	}
}
