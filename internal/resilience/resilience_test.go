package resilience

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/telemetry"
)

var errBoom = errors.New("boom")

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(cfg BreakerConfig, reg *telemetry.Registry) (*Breaker, *fakeClock) {
	b := NewBreaker("test", cfg, reg)
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b.SetClock(clk.now)
	return b, clk
}

// call runs one Allow/Record round and reports whether it was admitted.
func call(b *Breaker, err error) bool {
	if b.Allow() != nil {
		return false
	}
	b.Record(err)
	return true
}

// TestBreakerStateMachine walks the full closed -> open -> half-open
// cycle as a transition table.
func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second, HalfOpenProbes: 1, ProbeSuccesses: 2}

	type step struct {
		name      string
		advance   time.Duration
		err       error // call outcome (ignored when admitted=false expected)
		admitted  bool  // want Allow to admit the call
		wantState State // state after the step
	}
	steps := []step{
		{name: "fresh breaker is closed", err: nil, admitted: true, wantState: StateClosed},
		{name: "failure 1 stays closed", err: errBoom, admitted: true, wantState: StateClosed},
		{name: "failure 2 stays closed", err: errBoom, admitted: true, wantState: StateClosed},
		{name: "success resets the streak", err: nil, admitted: true, wantState: StateClosed},
		{name: "failure 1 again", err: errBoom, admitted: true, wantState: StateClosed},
		{name: "failure 2 again", err: errBoom, admitted: true, wantState: StateClosed},
		{name: "failure 3 trips open", err: errBoom, admitted: true, wantState: StateOpen},
		{name: "open short-circuits", admitted: false, wantState: StateOpen},
		{name: "still open just before timeout", advance: 999 * time.Millisecond, admitted: false, wantState: StateOpen},
		{name: "timeout admits a probe; probe fails -> reopen", advance: time.Millisecond, err: errBoom, admitted: true, wantState: StateOpen},
		{name: "reopened short-circuits again", admitted: false, wantState: StateOpen},
		{name: "probe success 1 stays half-open", advance: time.Second, err: nil, admitted: true, wantState: StateHalfOpen},
		{name: "probe success 2 closes", err: nil, admitted: true, wantState: StateClosed},
		{name: "closed again passes traffic", err: nil, admitted: true, wantState: StateClosed},
	}

	b, clk := newTestBreaker(cfg, nil)
	for i, s := range steps {
		clk.advance(s.advance)
		admitted := call(b, s.err)
		if admitted != s.admitted {
			t.Fatalf("step %d (%s): admitted = %v, want %v", i, s.name, admitted, s.admitted)
		}
		if got := b.State(); got != s.wantState {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.name, got, s.wantState)
		}
	}
}

// TestBreakerIgnoredOutcomesDontMoveState: caller cancellation must not
// count for or against the service.
func TestBreakerIgnoredOutcomesDontMoveState(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 2}, nil)
	for i := 0; i < 10; i++ {
		if !call(b, context.Canceled) {
			t.Fatal("cancelled call was not admitted")
		}
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 10 cancellations = %v, want closed", got)
	}
	// One real failure streak still trips at the threshold.
	call(b, errBoom)
	call(b, errBoom)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 2 failures = %v, want open", got)
	}
}

// TestBreakerHalfOpenProbeBudget: after the open timeout, concurrent
// callers racing Allow must be admitted exactly HalfOpenProbes at a time.
// Run under -race; this is the probe-accounting contract.
func TestBreakerHalfOpenProbeBudget(t *testing.T) {
	const budget = 3
	b, clk := newTestBreaker(BreakerConfig{
		FailureThreshold: 1, OpenTimeout: time.Second, HalfOpenProbes: budget, ProbeSuccesses: 100,
	}, nil)
	call(b, errBoom) // trip
	clk.advance(time.Second)

	const goroutines = 32
	var admitted, rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			err := b.Allow()
			mu.Lock()
			if err == nil {
				admitted++
			} else {
				rejected++
			}
			mu.Unlock()
			// Admitted probes stay in flight (no Record) so the budget is
			// the only thing limiting admissions.
		}()
	}
	close(start)
	wg.Wait()
	if admitted != budget {
		t.Errorf("admitted %d concurrent probes, want exactly %d", admitted, budget)
	}
	if rejected != goroutines-budget {
		t.Errorf("rejected %d, want %d", rejected, goroutines-budget)
	}
	// Finishing one probe successfully frees one probe slot.
	b.Record(nil)
	if err := b.Allow(); err != nil {
		t.Errorf("Allow after a completed probe = %v, want admission", err)
	}
}

// TestClassify pins the default failure taxonomy.
func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want Outcome
	}{
		{"nil", nil, OutcomeSuccess},
		{"canceled", context.Canceled, OutcomeIgnore},
		{"wrapped canceled", errors.Join(errors.New("ctx"), context.Canceled), OutcomeIgnore},
		{"open breaker", ErrOpen, OutcomeIgnore},
		{"shortener not found", shortener.ErrNotFound, OutcomeSuccess},
		{"shortener taken down", shortener.ErrTakenDown, OutcomeSuccess},
		{"dnsdb no route", dnsdb.ErrNoRoute, OutcomeSuccess},
		{"http 404", &netutil.APIError{Status: 404}, OutcomeSuccess},
		{"http 429", &netutil.APIError{Status: 429}, OutcomeFailure},
		{"http 503", &netutil.APIError{Status: 503}, OutcomeFailure},
		{"deadline", context.DeadlineExceeded, OutcomeFailure},
		{"transport", errBoom, OutcomeFailure},
	} {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// failingHLR always returns a transport error.
type failingHLR struct{ calls int }

func (f *failingHLR) Lookup(context.Context, string) (hlr.Result, error) {
	f.calls++
	return hlr.Result{}, errBoom
}

// TestWrapServicesShortCircuits: a wrapped service trips its breaker and
// subsequent calls never reach the downstream; stats and telemetry agree.
func TestWrapServicesShortCircuits(t *testing.T) {
	reg := telemetry.NewRegistry()
	bs := New(Config{Breaker: BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Hour}}, reg)
	next := &failingHLR{}
	s := bs.WrapServices(core.Services{HLR: next})
	if s.Whois != nil || s.Shortener != nil {
		t.Fatal("nil services did not stay nil")
	}

	for i := 0; i < 10; i++ {
		_, err := s.HLR.Lookup(context.Background(), "+447700900123")
		if err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
		if i >= 3 && !errors.Is(err, ErrOpen) {
			t.Fatalf("call %d: err = %v, want ErrOpen after trip", i, err)
		}
	}
	if next.calls != 3 {
		t.Errorf("downstream saw %d calls, want 3 (rest short-circuited)", next.calls)
	}

	st := bs.Stats()
	h := st["hlr"]
	if h.State != "open" || h.Opens != 1 || h.Failures != 3 || h.ShortCircuits != 7 {
		t.Errorf("hlr stats = %+v, want open/1 open/3 failures/7 short-circuits", h)
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["breaker.hlr.state"]; got != int64(StateOpen) {
		t.Errorf("breaker.hlr.state gauge = %d, want %d", got, StateOpen)
	}
	if got := snap.Counters["breaker.hlr.opens"]; got != 1 {
		t.Errorf("breaker.hlr.opens = %d, want 1", got)
	}

	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"resilience breakers", "hlr", "open", "dnsdb"} {
		if !strings.Contains(out, want) {
			t.Errorf("Write output missing %q:\n%s", want, out)
		}
	}
}

// TestPerServiceBreakerConfig: a PerService override applies to that
// service only.
func TestPerServiceBreakerConfig(t *testing.T) {
	bs := New(Config{
		Breaker:    BreakerConfig{FailureThreshold: 100},
		PerService: map[string]BreakerConfig{"whois": {FailureThreshold: 1}},
	}, nil)
	bs.Breaker("whois").Record(errBoom)
	if got := bs.Breaker("whois").State(); got != StateOpen {
		t.Errorf("whois state = %v, want open after 1 failure (threshold 1)", got)
	}
	bs.Breaker("hlr").Record(errBoom)
	if got := bs.Breaker("hlr").State(); got != StateClosed {
		t.Errorf("hlr state = %v, want closed (threshold 100)", got)
	}
}
