package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("a") != c {
		t.Fatal("counter not shared by name")
	}
	g := reg.Gauge("busy")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestNilRegistryAndInstrumentsNoop(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(9)
	reg.Histogram("z").Observe(time.Millisecond)
	sp := reg.StartSpan("s")
	if sp.End() < 0 {
		t.Fatal("nil-registry span returned negative duration")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	if NewClientMetrics(nil, "svc") != nil {
		t.Fatal("NewClientMetrics(nil) should be nil")
	}
}

// TestConcurrentIncrementsAndSnapshots hammers one registry from many
// goroutines while snapshotting concurrently; totals must be exact at the
// end and snapshots must never observe more than the final value.
func TestConcurrentIncrementsAndSnapshots(t *testing.T) {
	const workers, perWorker = 8, 5000
	reg := NewRegistry()
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})

	reader.Add(1)
	go func() { // concurrent snapshot reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot()
			if n := snap.Counters["hits"]; n > workers*perWorker {
				t.Errorf("snapshot overshot: %d", n)
				return
			}
			if h := snap.Histograms["lat"]; h.Count > 0 && (h.P50 < h.Min || h.P99 > h.Max) {
				t.Errorf("inconsistent histogram stats: %+v", h)
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			c := reg.Counter("hits")
			h := reg.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(time.Duration(rng.Intn(10_000_000)))
				sp := reg.StartSpan("stage")
				sp.End()
			}
		}(int64(w))
	}
	writers.Wait()
	close(stop)
	reader.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["hits"]; got != workers*perWorker {
		t.Fatalf("final count = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Histograms["lat"].Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Spans["stage"].Count; got != workers*perWorker {
		t.Fatalf("span count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramPercentiles checks the percentile estimates against known
// distributions: estimates must land within the bucket that truly contains
// the quantile.
func TestHistogramPercentiles(t *testing.T) {
	t.Run("uniform-1..100ms", func(t *testing.T) {
		reg := NewRegistry()
		h := reg.Histogram("u")
		for i := 1; i <= 100; i++ {
			h.Observe(time.Duration(i) * time.Millisecond)
		}
		st := h.Stats()
		if st.Count != 100 || st.Min != time.Millisecond || st.Max != 100*time.Millisecond {
			t.Fatalf("bad stats: %+v", st)
		}
		wantMean := 50500 * time.Microsecond
		if st.Mean != wantMean {
			t.Errorf("mean = %v, want %v", st.Mean, wantMean)
		}
		// True p50 = 50ms, inside the (25ms,50ms] bucket.
		if st.P50 <= 25*time.Millisecond || st.P50 > 50*time.Millisecond {
			t.Errorf("p50 = %v, want in (25ms,50ms]", st.P50)
		}
		// True p90 = 90ms, inside the (50ms,100ms] bucket.
		if st.P90 <= 50*time.Millisecond || st.P90 > 100*time.Millisecond {
			t.Errorf("p90 = %v, want in (50ms,100ms]", st.P90)
		}
		// True p99 = 99ms; the top bucket is interpolated against max.
		if st.P99 <= 50*time.Millisecond || st.P99 > 100*time.Millisecond {
			t.Errorf("p99 = %v, want in (50ms,100ms]", st.P99)
		}
	})
	t.Run("constant", func(t *testing.T) {
		reg := NewRegistry()
		h := reg.Histogram("c")
		for i := 0; i < 1000; i++ {
			h.Observe(3 * time.Millisecond)
		}
		st := h.Stats()
		// Every percentile is clamped into [min,max] = [3ms,3ms].
		if st.P50 != 3*time.Millisecond || st.P90 != 3*time.Millisecond || st.P99 != 3*time.Millisecond {
			t.Errorf("constant-distribution percentiles drifted: %+v", st)
		}
	})
	t.Run("bimodal", func(t *testing.T) {
		reg := NewRegistry()
		h := reg.Histogram("b")
		for i := 0; i < 95; i++ {
			h.Observe(200 * time.Microsecond)
		}
		for i := 0; i < 5; i++ {
			h.Observe(2 * time.Second)
		}
		st := h.Stats()
		if st.P50 > time.Millisecond {
			t.Errorf("p50 = %v, want fast mode (<=1ms)", st.P50)
		}
		if st.P99 < time.Second {
			t.Errorf("p99 = %v, want slow mode (>=1s)", st.P99)
		}
	})
	t.Run("overflow", func(t *testing.T) {
		reg := NewRegistry()
		h := reg.Histogram("o")
		h.Observe(30 * time.Second) // above the last bound
		st := h.Stats()
		if st.P99 != 30*time.Second {
			t.Errorf("overflow p99 = %v, want clamped to max 30s", st.P99)
		}
	})
}

func TestZeroAllocHotPath(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	reg := NewRegistry()
	c := reg.Counter("hot")
	g := reg.Gauge("hotg")
	h := reg.Histogram("hoth")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { reg.Counter("hot").Inc() }); n != 0 {
		t.Errorf("Registry.Counter lookup+Inc allocates %.1f/op, want 0", n)
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("client.hlr.calls").Add(7)
	sp := reg.StartSpan("curate")
	sp.End()

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["client.hlr.calls"] != 7 {
		t.Errorf("snapshot counters = %+v", snap.Counters)
	}
	if snap.Spans["curate"].Count != 1 {
		t.Errorf("snapshot spans = %+v", snap.Spans)
	}
}

func TestWriteRendererAndErrorPropagation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pipeline.curate.ok").Add(12)
	reg.Histogram("client.whois.latency").Observe(4 * time.Millisecond)
	reg.StartSpan("enrich").End()

	var buf bytes.Buffer
	if err := Write(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pipeline.curate.ok", "client.whois.latency", "enrich", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered snapshot missing %q:\n%s", want, out)
		}
	}

	if err := Write(failWriter{}, reg.Snapshot()); err == nil {
		t.Fatal("Write should surface writer errors")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

// TestPrefixedViews pins the Prefixed contract: a prefixed view is a name
// rewrite over the SAME shared state — instruments land in the parent's
// maps under the prefixed name, snapshots from any view see everything,
// and prefixes compose by concatenation.
func TestPrefixedViews(t *testing.T) {
	reg := NewRegistry()
	shard0 := reg.Prefixed("shard.0.")
	shard0.Counter("routed").Add(7)
	reg.Counter("shard.batches").Inc()

	// Same name through the view and spelled out on the root: one counter.
	if shard0.Counter("routed") != reg.Counter("shard.0.routed") {
		t.Fatal("prefixed counter is not the root counter under the full name")
	}
	if got := reg.Counter("shard.0.routed").Value(); got != 7 {
		t.Fatalf("shard.0.routed = %d, want 7", got)
	}

	// Prefixes nest by concatenation.
	nested := shard0.Prefixed("cache.")
	nested.Counter("hits").Add(3)
	if got := reg.Counter("shard.0.cache.hits").Value(); got != 3 {
		t.Fatalf("nested prefix wrote %d to shard.0.cache.hits, want 3", got)
	}

	// Every view snapshots the full shared state, not its own slice.
	snap := shard0.Snapshot()
	for _, name := range []string{"shard.0.routed", "shard.batches", "shard.0.cache.hits"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("prefixed view snapshot missing %q: %v", name, snap.Counters)
		}
	}

	// Gauges, histograms, and spans route through the prefix too.
	shard0.Gauge("inflight").Set(2)
	shard0.Histogram("latency").Observe(5 * time.Millisecond)
	shard0.StartSpan("route").End()
	snap = reg.Snapshot()
	if snap.Gauges["shard.0.inflight"] != 2 {
		t.Errorf("gauge missing under prefixed name: %v", snap.Gauges)
	}
	if snap.Histograms["shard.0.latency"].Count != 1 {
		t.Errorf("histogram missing under prefixed name: %v", snap.Histograms)
	}
	if snap.Spans["shard.0.route"].Count != 1 {
		t.Errorf("span missing under prefixed name: %v", snap.Spans)
	}

	// A nil registry's prefixed view stays a safe no-op.
	var nilReg *Registry
	view := nilReg.Prefixed("x.")
	view.Counter("c").Inc()
	if len(view.Snapshot().Counters) != 0 {
		t.Error("nil registry's prefixed view recorded data")
	}
}
