package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Handler serves the registry as a JSON snapshot:
//
//	GET /debug/telemetry -> Snapshot
//
// The snapshot is taken per request, so polling observes live counters.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	return mux
}

// Write renders a snapshot as aligned human-readable text: counters,
// gauges, histogram percentiles, and span timings, each sorted by name.
// The first write error aborts rendering and is returned.
func Write(w io.Writer, snap Snapshot) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "telemetry snapshot @ %s\n", snap.TakenAt.Format(time.RFC3339))

	if len(snap.Spans) > 0 {
		fmt.Fprintf(ew, "\nspans\n")
		for _, name := range sortedKeys(snap.Spans) {
			s := snap.Spans[name]
			fmt.Fprintf(ew, "  %-34s runs=%-4d total=%-12s last=%s\n",
				name, s.Count, round(s.Total), round(s.Last))
		}
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintf(ew, "\ncounters\n")
		for _, name := range sortedKeys(snap.Counters) {
			fmt.Fprintf(ew, "  %-34s %d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintf(ew, "\ngauges\n")
		for _, name := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(ew, "  %-34s %d\n", name, snap.Gauges[name])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintf(ew, "\nlatencies\n")
		for _, name := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[name]
			fmt.Fprintf(ew, "  %-34s n=%-6d p50=%-10s p90=%-10s p99=%-10s max=%s\n",
				name, h.Count, round(h.P50), round(h.P90), round(h.P99), round(h.Max))
		}
	}
	return ew.err
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// errWriter latches the first write error and short-circuits later writes.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}
