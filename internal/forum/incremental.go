package forum

import (
	"context"

	"github.com/smishkit/smishkit/internal/checkpoint"
)

// IncrementalCollector is a Collector that can resume from a durable
// cursor instead of re-draining its forum from the beginning. All five
// collectors implement it; their one-shot Collect is CollectSince from a
// zero cursor, so the batch path and the daemon path share one code path.
//
// Contract:
//
//   - CollectSince streams only reports that arrived after cur, in the
//     forum's native order, and returns the advanced cursor to commit.
//   - A zero cursor collects the forum's full history.
//   - On error the returned cursor is the input cursor unchanged: callers
//     must discard the partial batch and retry the whole round later, so a
//     half-synced position is never committed (per-round atomicity is how
//     Serve keeps exactly-once delivery across graceful restarts).
//   - The advanced cursor's Updated field is stamped on every successful
//     sync, including empty ones; its age is the source's cursor lag.
type IncrementalCollector interface {
	Collector
	CollectSince(ctx context.Context, cur checkpoint.Cursor, sink func(RawReport) error) (checkpoint.Cursor, error)
}

// Sources lists the checkpoint source names of the five forums, in
// collection order. They double as telemetry label suffixes
// (collect.cursor_lag.<source>).
var Sources = []string{"twitter", "reddit", "smishtank", "smishing.eu", "pastebin"}
