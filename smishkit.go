// Package smishkit is a research toolkit that reproduces "Fishing for
// Smishing: Understanding SMS Phishing Infrastructure and Strategies by
// Mining Public User Reports" (IMC 2025) as a runnable system.
//
// The toolkit has three layers:
//
//   - A synthetic world generator calibrated to the paper's published
//     distributions: smishing campaigns, sender infrastructure (phone
//     numbers, operators, spoofed IDs), and web infrastructure (domains,
//     registrars, TLS certificates, hosting ASes, URL shorteners).
//   - A simulation that boots that world as real network services on
//     loopback: five report forums (Twitter-, Reddit-, Smishtank-,
//     smishing.eu- and Pastebin-shaped), an HLR lookup service, WHOIS, a
//     CT-log search, passive DNS with IP-to-ASN, a multi-vendor URL
//     scanner with a Safe-Browsing API, URL shorteners, and the scammers'
//     own hosting (with Android drive-by downloads).
//   - The measurement pipeline from the paper: collect -> extract fields
//     from screenshots -> curate -> enrich -> annotate -> report, ending
//     in typed reproductions of the paper's Tables 1-19 and Figures 2-3.
//
// Quick start:
//
//	study, err := smishkit.NewStudy(smishkit.Options{Seed: 1, Messages: 4000})
//	if err != nil { ... }
//	defer study.Close()
//	ds, err := study.Run(ctx)
//	if err != nil { ... }
//	smishkit.WriteReport(os.Stdout, ds)
package smishkit

import (
	"context"
	"fmt"
	"io"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/report"
	"github.com/smishkit/smishkit/internal/screenshot"
)

// Re-exported core types so downstream users never import internal paths.
type (
	// World is the synthetic ground truth a simulation is seeded from.
	World = corpus.World
	// WorldConfig controls world generation (seed, scale, epoch).
	WorldConfig = corpus.Config
	// Message is one ground-truth smishing message.
	Message = corpus.Message
	// Simulation is the set of booted loopback servers.
	Simulation = core.Simulation
	// Dataset is the curated, enriched, annotated record set.
	Dataset = core.Dataset
	// Record is one curated report.
	Record = core.Record
	// Services bundles enrichment clients.
	Services = core.Services
	// PipelineOptions tunes extraction and enrichment.
	PipelineOptions = core.Options
	// RawReport is one collected forum post.
	RawReport = forum.RawReport
)

// Extractor engines for PipelineOptions.Extractor, in ladder order.
var (
	// ExtractorNaiveOCR is the pytesseract-style rung: fails on custom
	// themes and confuses similar glyphs.
	ExtractorNaiveOCR screenshot.Extractor = screenshot.NaiveOCR{}
	// ExtractorVisionOCR is the Google-Vision-style rung: perfect glyphs,
	// scrambled reading order.
	ExtractorVisionOCR screenshot.Extractor = screenshot.VisionOCR{}
	// ExtractorStructuredVision is the rung the paper settled on.
	ExtractorStructuredVision screenshot.Extractor = screenshot.StructuredVision{}
)

// GenerateWorld builds a deterministic synthetic world.
func GenerateWorld(cfg WorldConfig) *World { return corpus.Generate(cfg) }

// StartSimulation boots every forum and intelligence service for a world.
func StartSimulation(w *World) (*Simulation, error) { return core.StartSimulation(w) }

// Options configures a Study end to end.
type Options struct {
	Seed     int64
	Messages int // synthetic corpus size (default 4000)
	Pipeline PipelineOptions
}

// Study bundles a world, its simulation, and the pipeline — the one-stop
// entry point for reproducing the paper.
type Study struct {
	World *World
	Sim   *Simulation
	Pipe  *core.Pipeline
}

// NewStudy generates a world and boots its simulation.
func NewStudy(opts Options) (*Study, error) {
	w := corpus.Generate(corpus.Config{Seed: opts.Seed, Messages: opts.Messages})
	sim, err := core.StartSimulation(w)
	if err != nil {
		return nil, fmt.Errorf("smishkit: start simulation: %w", err)
	}
	return &Study{
		World: w,
		Sim:   sim,
		Pipe:  core.NewPipeline(sim.Services(), opts.Pipeline),
	}, nil
}

// Collect drains all five forums.
func (s *Study) Collect(ctx context.Context) ([]RawReport, error) {
	reports, _, err := forum.CollectAll(ctx, s.Sim.Collectors())
	return reports, err
}

// Run collects, curates, enriches, and annotates.
func (s *Study) Run(ctx context.Context) (*Dataset, error) {
	reports, err := s.Collect(ctx)
	if err != nil {
		return nil, err
	}
	return s.Pipe.Run(ctx, reports)
}

// Close shuts the simulation down.
func (s *Study) Close() {
	if s.Sim != nil {
		s.Sim.Close()
	}
}

// WriteReport renders every table and figure of the paper to w.
func WriteReport(w io.Writer, ds *Dataset) { report.RenderAll(w, ds) }
