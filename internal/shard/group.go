package shard

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Group routes curated records across N shard enrichers and merges their
// output deterministically. One batch flows through it as:
//
//	reports -> front.Curate -> ring-route by KeyOf -> N concurrent
//	EnrichAnnotate calls -> scatter results back into curation order
//
// Because curation is deterministic and every record returns to the index
// it was curated at, the merged Dataset is byte-identical for any shard
// count — and identical to the unsharded barrier pipeline. Downstream
// consumers (report projections, the union-find campaign view) therefore
// need no shard-aware merge of their own: they see the same record
// sequence they always did.
// When a Prober is attached (AttachProber), the group additionally runs
// the failover protocol: shards whose probe is down are skipped at
// routing time (their keys slide to the ring's next-alive shard), and a
// shard whose EnrichAnnotate fails mid-round has its routed subset
// re-dispatched to the survivors. Output stays byte-identical because
// enrichment is key-deterministic — which stack executes a record never
// changes the record, only cache locality — so failover is invisible in
// the dataset and visible only in the per-shard telemetry.
type Group struct {
	ring         *Ring
	front        *core.Pipeline
	mu           sync.RWMutex
	enrichers    []Enricher
	remote       bool
	prober       *Prober
	routed       []*telemetry.Counter
	failures     []*telemetry.Counter
	restartsC    []*telemetry.Counter
	restartsN    []int64
	batches      *telemetry.Counter
	redispatched *telemetry.Counter
	failoverWav  *telemetry.Counter
}

// NewGroup builds a router over the given enrichers. front curates each
// incoming batch (its services are never called — curation is offline);
// replicas tunes the ring's virtual-node count (0 = DefaultReplicas). The
// per-shard "shard.<i>.routed" counters land in reg.
func NewGroup(front *core.Pipeline, enrichers []Enricher, replicas int, reg *telemetry.Registry) (*Group, error) {
	if front == nil {
		return nil, fmt.Errorf("shard: group needs a front pipeline")
	}
	if len(enrichers) == 0 {
		return nil, fmt.Errorf("shard: group needs at least one enricher")
	}
	ring, err := NewRing(len(enrichers), replicas)
	if err != nil {
		return nil, err
	}
	g := &Group{
		ring:         ring,
		front:        front,
		enrichers:    enrichers,
		routed:       make([]*telemetry.Counter, len(enrichers)),
		failures:     make([]*telemetry.Counter, len(enrichers)),
		restartsC:    make([]*telemetry.Counter, len(enrichers)),
		restartsN:    make([]int64, len(enrichers)),
		batches:      reg.Counter("shard.batches"),
		redispatched: reg.Counter("shard.failover.redispatched"),
		failoverWav:  reg.Counter("shard.failover.waves"),
	}
	for i := range g.routed {
		g.routed[i] = reg.Counter("shard." + strconv.Itoa(i) + ".routed")
		g.failures[i] = reg.Counter("shard." + strconv.Itoa(i) + ".failures")
		g.restartsC[i] = reg.Counter("shard." + strconv.Itoa(i) + ".restarts")
	}
	return g, nil
}

// AttachProber wires a health prober to the group and enables failover:
// routing starts consulting the prober's alive mask, a failed dispatch is
// re-dispatched to survivors instead of failing the round, and the prober
// pulls its targets from the group's current enricher set. The prober must
// have been built for the group's shard count.
func (g *Group) AttachProber(p *Prober) {
	g.mu.Lock()
	g.prober = p
	g.mu.Unlock()
	p.SetSource(g.enrichersSnapshot)
}

// Prober returns the attached health prober (nil when failover is off).
func (g *Group) Prober() *Prober {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.prober
}

// enrichersSnapshot returns the current enricher slice (copy-on-write, so
// the returned slice is never mutated).
func (g *Group) enrichersSnapshot() []Enricher {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.enrichers
}

// Shards returns the group's shard count.
func (g *Group) Shards() int { return g.ring.Shards() }

// SetEnrichers swaps the group's enrichers — the seam the multi-process
// mode uses to replace local stacks with remote workers after the worker
// processes have reported their URLs. The count must match the ring.
func (g *Group) SetEnrichers(enrichers []Enricher, remote bool) error {
	if len(enrichers) != g.ring.Shards() {
		return fmt.Errorf("shard: group has %d shards, got %d enrichers", g.ring.Shards(), len(enrichers))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.enrichers = enrichers
	g.remote = remote
	return nil
}

// SetEnricher swaps a single shard's enricher — the seam the worker
// supervisor uses to re-register a restarted worker's fresh URL. The swap
// is copy-on-write so a Run holding the previous snapshot is unaffected;
// a fresh enricher is marked up in the prober immediately (the supervisor
// health-checks it before calling).
func (g *Group) SetEnricher(i int, e Enricher, remote bool) error {
	g.mu.Lock()
	if i < 0 || i >= len(g.enrichers) {
		n := len(g.enrichers)
		g.mu.Unlock()
		return fmt.Errorf("shard: enricher index %d out of range (group has %d shards)", i, n)
	}
	next := make([]Enricher, len(g.enrichers))
	copy(next, g.enrichers)
	next[i] = e
	g.enrichers = next
	g.remote = g.remote || remote
	p := g.prober
	g.mu.Unlock()
	if p != nil {
		p.MarkUp(i)
	}
	return nil
}

// NoteRestart records one supervisor restart of shard i's worker, counted
// in "shard.<i>.restarts" and surfaced as ShardInfo.Restarts.
func (g *Group) NoteRestart(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i < 0 || i >= len(g.restartsN) {
		return
	}
	g.restartsN[i]++
	g.restartsC[i].Inc()
}

// Run curates one batch, routes it, and returns the merged dataset.
// Without an attached prober a shard failure fails the round: the
// lowest-indexed error is returned and the dataset must be discarded (the
// serve loop treats the round as failed, mirroring the unsharded
// pipeline's contract). With a prober attached the round survives partial
// shard death instead: shards the probe reports down are skipped up
// front, and a shard that fails mid-round has its routed subset
// re-dispatched to the ring's next-alive shards — only when every shard
// has failed does Run return an error.
func (g *Group) Run(ctx context.Context, reports []forum.RawReport) (*core.Dataset, error) {
	g.mu.RLock()
	prober := g.prober
	g.mu.RUnlock()
	g.batches.Inc()

	sp := g.front.Telemetry().StartSpan("shard.route")
	ds := g.front.Curate(reports)
	n := g.ring.Shards()

	// The alive mask starts from the prober's current view (all-up without
	// one). If the probe claims everything is down, route optimistically to
	// the primaries anyway — a wholly-down mask is more likely a probe
	// outage than N simultaneous worker deaths, and the dispatch errors
	// will say so authoritatively.
	alive := make([]bool, n)
	if prober != nil {
		copy(alive, prober.AliveMask())
		any := false
		for _, a := range alive {
			any = any || a
		}
		if !any {
			for i := range alive {
				alive[i] = true
			}
		}
	} else {
		for i := range alive {
			alive[i] = true
		}
	}

	// Routing keys are computed once and reused by every re-dispatch wave:
	// KeyOf depends only on curated fields, so the key survives (and is
	// identical after) enrichment attempts.
	keys := make([]string, len(ds.Records))
	assign := make([][]int, n)
	preRouted := 0
	for i := range ds.Records {
		keys[i] = KeyOf(&ds.Records[i])
		s := g.ring.Shard(keys[i])
		if prober != nil && !alive[s] {
			if s2 := g.ring.ShardAlive(keys[i], alive); s2 >= 0 {
				s = s2
				preRouted++
			}
		}
		assign[s] = append(assign[s], i)
	}
	if preRouted > 0 {
		g.redispatched.Add(int64(preRouted))
	}
	sp.End()

	// Dispatch waves: the first covers every record; each later wave only
	// the subsets of shards that failed the previous one. Every wave
	// removes at least one shard from the alive mask, so the loop runs at
	// most n times.
	for {
		enrichers := g.enrichersSnapshot()
		var wg sync.WaitGroup
		errs := make([]error, n)
		for s := 0; s < n; s++ {
			if len(assign[s]) == 0 {
				continue
			}
			g.routed[s].Add(int64(len(assign[s])))
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				idxs := assign[s]
				subset := make([]core.Record, len(idxs))
				for j, idx := range idxs {
					subset[j] = ds.Records[idx]
				}
				out, err := enrichers[s].EnrichAnnotate(ctx, subset)
				if err != nil {
					errs[s] = fmt.Errorf("shard %d: %w", s, err)
					return
				}
				if len(out) != len(idxs) {
					errs[s] = fmt.Errorf("shard %d: returned %d records for %d routed", s, len(out), len(idxs))
					return
				}
				// Scatter back into the curation-order slots — the merge that
				// makes shard count invisible in the output.
				for j, idx := range idxs {
					ds.Records[idx] = out[j]
				}
			}(s)
		}
		wg.Wait()

		var failed []int
		var firstErr error
		for s, err := range errs {
			if err != nil {
				failed = append(failed, s)
				if firstErr == nil {
					firstErr = err
				}
			}
		}
		if len(failed) == 0 {
			return ds, nil
		}
		if prober == nil || ctx.Err() != nil {
			// No failover, or the whole round's context is gone (re-trying
			// against a dead context would just re-fail every shard).
			return nil, firstErr
		}

		// Failover: mark the failed shards down (routing and the next probe
		// tick both see it) and slide their subsets to the next-alive shards.
		for _, f := range failed {
			alive[f] = false
			prober.MarkDown(f)
			g.failures[f].Inc()
		}
		next := make([][]int, n)
		moved := 0
		for _, f := range failed {
			for _, idx := range assign[f] {
				s2 := g.ring.ShardAlive(keys[idx], alive)
				if s2 < 0 {
					return nil, fmt.Errorf("shard: every shard failed, no survivor to re-dispatch to: %w", firstErr)
				}
				next[s2] = append(next[s2], idx)
				moved++
			}
		}
		g.redispatched.Add(int64(moved))
		g.failoverWav.Inc()
		assign = next
	}
}

// ShardInfo is one shard's row in GroupStats.
type ShardInfo struct {
	// Index is the shard's position on the ring.
	Index int `json:"index"`
	// Routed counts records routed to this shard since start (re-dispatched
	// records count against the shard that actually ran them).
	Routed int64 `json:"routed"`
	// Remote is set when the shard is a separate worker process.
	Remote bool `json:"remote,omitempty"`
	// Healthy is the prober's current up/down view (nil when the group has
	// no prober attached).
	Healthy *bool `json:"healthy,omitempty"`
	// Flaps counts the shard's up<->down transitions.
	Flaps int64 `json:"flaps,omitempty"`
	// Failures counts EnrichAnnotate failures that marked the shard down.
	Failures int64 `json:"failures,omitempty"`
	// Restarts counts supervisor restarts of the shard's worker process.
	Restarts int64 `json:"restarts,omitempty"`
	// Stack is the shard's tier scoreboard (nil when unavailable, e.g. an
	// unreachable remote worker).
	Stack *StackStats `json:"stack,omitempty"`
}

// GroupStats is the sharding scoreboard Study.ShardStats surfaces.
type GroupStats struct {
	// Shards is the configured shard count.
	Shards int `json:"shards"`
	// Batches counts routed batches since start.
	Batches int64 `json:"batches"`
	// Failover reports whether the lifecycle layer (prober + re-dispatch)
	// is enabled.
	Failover bool `json:"failover,omitempty"`
	// Redispatched counts records routed away from their primary shard
	// because it was down or failed mid-round.
	Redispatched int64 `json:"redispatched,omitempty"`
	// PerShard has one row per shard, in index order.
	PerShard []ShardInfo `json:"per_shard"`
}

// Stats reports routing totals and, where available, per-shard tier
// scoreboards. Safe to call concurrently with Run.
func (g *Group) Stats() GroupStats {
	g.mu.RLock()
	enrichers := g.enrichers
	remote := g.remote
	prober := g.prober
	restarts := make([]int64, len(g.restartsN))
	copy(restarts, g.restartsN)
	g.mu.RUnlock()
	out := GroupStats{
		Shards:       g.ring.Shards(),
		Batches:      g.batches.Value(),
		Failover:     prober != nil,
		Redispatched: g.redispatched.Value(),
		PerShard:     make([]ShardInfo, len(enrichers)),
	}
	for i, e := range enrichers {
		info := ShardInfo{
			Index:    i,
			Routed:   g.routed[i].Value(),
			Remote:   remote,
			Failures: g.failures[i].Value(),
			Restarts: restarts[i],
		}
		if prober != nil {
			up := prober.Up(i)
			info.Healthy = &up
			info.Flaps = prober.Flaps(i)
		}
		if sp, ok := e.(StatsProvider); ok {
			if st, ok := sp.Stats(); ok {
				info.Stack = &st
			}
		}
		out.PerShard[i] = info
	}
	return out
}

// Write renders a GroupStats snapshot as aligned text, one shard per row.
func Write(w io.Writer, st GroupStats) error {
	head := fmt.Sprintf("shards (n=%d, batches=%d", st.Shards, st.Batches)
	if st.Failover {
		head += fmt.Sprintf(", failover on, redispatched=%d", st.Redispatched)
	}
	if _, err := fmt.Fprintln(w, head+")"); err != nil {
		return err
	}
	for _, sh := range st.PerShard {
		mode := "local"
		if sh.Remote {
			mode = "remote"
		}
		line := fmt.Sprintf("  shard %-3d %-6s routed=%-8d", sh.Index, mode, sh.Routed)
		if sh.Healthy != nil {
			state := "up"
			if !*sh.Healthy {
				state = "DOWN"
			}
			line += fmt.Sprintf(" %-4s flaps=%-3d failures=%-3d restarts=%-3d", state, sh.Flaps, sh.Failures, sh.Restarts)
		}
		if sh.Stack != nil {
			line += fmt.Sprintf(" enriched=%-8d", sh.Stack.Enriched)
			var hits, misses int64
			for _, cs := range sh.Stack.Cache {
				hits += cs.Hits
				misses += cs.Misses
			}
			if hits+misses > 0 {
				line += fmt.Sprintf(" cache=%.0f%%", 100*float64(hits)/float64(hits+misses))
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
