package corpus

import "math/rand"

// weighted is an ordered list of (value, weight) pairs for deterministic
// sampling. Order matters for reproducibility across runs of the same seed.
type weighted[T any] struct {
	values  []T
	weights []float64
	total   float64
}

func newWeighted[T any]() *weighted[T] { return &weighted[T]{} }

func (w *weighted[T]) add(v T, weight float64) *weighted[T] {
	if weight <= 0 {
		return w
	}
	w.values = append(w.values, v)
	w.weights = append(w.weights, weight)
	w.total += weight
	return w
}

func (w *weighted[T]) sample(rng *rand.Rand) T {
	if len(w.values) == 0 {
		var zero T
		return zero
	}
	x := rng.Float64() * w.total
	for i, wt := range w.weights {
		x -= wt
		if x < 0 {
			return w.values[i]
		}
	}
	return w.values[len(w.values)-1]
}

// scamTypeWeights reproduces Table 10's global distribution.
var scamTypeWeights = newWeighted[ScamType]().
	add(ScamBanking, 45.1).
	add(ScamDelivery, 11.3).
	add(ScamGovernment, 9.6).
	add(ScamTelecom, 6.6).
	add(ScamWrongNumber, 0.9).
	add(ScamHeyMumDad, 0.8).
	add(ScamOthers, 20.6).
	add(ScamSpam, 5.0)

// countryBase reproduces Table 14's sender-origin weights, with a tail for
// the long tail of the 66-language corpus.
var countryBase = map[string]float64{
	"IND": 2722, "USA": 1369, "NLD": 801, "GBR": 767, "ESP": 700,
	"AUS": 392, "FRA": 387, "BEL": 271, "IDN": 216, "DEU": 187,
	"ITA": 160, "IRL": 95, "CZE": 80, "PRT": 75, "JPN": 110,
	"BRA": 60, "MEX": 100, "PHL": 50, "NGA": 45, "KEN": 40,
	"ZAF": 38, "TUR": 35, "PAK": 32, "LKA": 28, "NZL": 26,
	"QAT": 18, "HUN": 16, "ROU": 15, "UKR": 14, "GHA": 13,
	"MWI": 9, "COD": 8, "GLP": 7, "CHN": 12, "HKG": 10,
	"SGP": 14, "KOR": 11, "POL": 20, "RUS": 15, "SWE": 14,
	"ARG": 240, "COL": 200, "CHL": 110, "PER": 140,
	"DNK": 10, "NOR": 9, "FIN": 8, "GRC": 12, "ISR": 9, "THA": 14,
	"VNM": 12, "MYS": 16, "BGD": 10, "IRN": 8, "ETH": 5, "GEO": 4,
}

// scamCountryAffinity biases country choice per scam type so Fig. 3's
// per-country scam mixes emerge: India is banking-dominated, the US skews
// to "others", Indonesia to "others"/conversation scams, and the
// conversation scams live in Western/JP/ID markets.
var scamCountryAffinity = map[ScamType]map[string]float64{
	ScamBanking: {
		"IND": 3.2, "ESP": 1.6, "NLD": 1.4, "GBR": 1.1, "ITA": 1.5,
		"BRA": 1.2, "USA": 0.45, "IDN": 0.3, "JPN": 0.4,
	},
	ScamDelivery: {
		"USA": 1.3, "GBR": 1.4, "ESP": 1.3, "DEU": 1.4, "FRA": 1.3,
		"CZE": 1.6, "NLD": 1.1, "IND": 0.25, "AUS": 1.2,
	},
	ScamGovernment: {
		"USA": 1.4, "GBR": 1.3, "FRA": 1.6, "AUS": 1.3, "NLD": 1.1,
		"IND": 0.35, "ESP": 1.0,
	},
	ScamTelecom: {
		"FRA": 1.7, "GBR": 1.2, "ESP": 1.1, "NLD": 1.1, "IND": 0.9,
		"USA": 0.8,
	},
	ScamWrongNumber: {
		"USA": 2.0, "JPN": 2.6, "IDN": 2.2, "ESP": 0.9, "IND": 0.1,
		"CHN": 1.8, "GBR": 0.7,
	},
	ScamHeyMumDad: {
		"GBR": 2.4, "DEU": 2.0, "ESP": 1.3, "NLD": 1.8, "AUS": 1.6,
		"IND": 0.02, "USA": 0.9, "IRL": 1.5,
	},
	ScamOthers: {
		"USA": 2.2, "IDN": 2.6, "IND": 0.5, "PHL": 1.8, "JPN": 1.3,
		"GBR": 0.9, "NGA": 1.4,
	},
	ScamSpam: {
		"USA": 1.5, "IDN": 1.8, "PHL": 2.2, "IND": 0.8, "GBR": 0.9,
	},
}

// countryLanguages gives per-country language mixes. English dominance in
// globally-operating sectors (§5.3) comes from the englishBias applied on
// top for banking/others/government texts.
var countryLanguages = map[string]*weighted[string]{
	"IND": newWeighted[string]().add("en", 88).add("hi", 12),
	"USA": newWeighted[string]().add("en", 93).add("es", 7),
	"NLD": newWeighted[string]().add("nl", 72).add("en", 28),
	"GBR": newWeighted[string]().add("en", 100),
	"ESP": newWeighted[string]().add("es", 88).add("en", 12),
	"AUS": newWeighted[string]().add("en", 100),
	"FRA": newWeighted[string]().add("fr", 82).add("en", 18),
	"BEL": newWeighted[string]().add("nl", 48).add("fr", 40).add("en", 12),
	"IDN": newWeighted[string]().add("id", 78).add("en", 22),
	"DEU": newWeighted[string]().add("de", 76).add("en", 24),
	"ITA": newWeighted[string]().add("it", 82).add("en", 18),
	"IRL": newWeighted[string]().add("en", 100),
	"CZE": newWeighted[string]().add("cs", 70).add("en", 30),
	"PRT": newWeighted[string]().add("pt", 80).add("en", 20),
	"JPN": newWeighted[string]().add("ja", 85).add("en", 15),
	"BRA": newWeighted[string]().add("pt", 90).add("en", 10),
	"MEX": newWeighted[string]().add("es", 92).add("en", 8),
	"PHL": newWeighted[string]().add("tl", 55).add("en", 45),
	"NGA": newWeighted[string]().add("en", 100),
	"KEN": newWeighted[string]().add("en", 90).add("sw", 10),
	"ZAF": newWeighted[string]().add("en", 95).add("af", 5),
	"TUR": newWeighted[string]().add("tr", 85).add("en", 15),
	"PAK": newWeighted[string]().add("en", 70).add("ur", 30),
	"LKA": newWeighted[string]().add("en", 85).add("si", 15),
	"NZL": newWeighted[string]().add("en", 100),
	"QAT": newWeighted[string]().add("en", 70).add("ar", 30),
	"HUN": newWeighted[string]().add("hu", 70).add("en", 30),
	"ROU": newWeighted[string]().add("ro", 75).add("en", 25),
	"UKR": newWeighted[string]().add("uk", 70).add("en", 30),
	"GHA": newWeighted[string]().add("en", 100),
	"MWI": newWeighted[string]().add("en", 100),
	"COD": newWeighted[string]().add("fr", 85).add("en", 15),
	"GLP": newWeighted[string]().add("fr", 95).add("en", 5),
	"CHN": newWeighted[string]().add("zh", 85).add("en", 15),
	"HKG": newWeighted[string]().add("zh", 60).add("en", 40),
	"SGP": newWeighted[string]().add("en", 85).add("zh", 15),
	"KOR": newWeighted[string]().add("ko", 80).add("en", 20),
	"POL": newWeighted[string]().add("pl", 80).add("en", 20),
	"RUS": newWeighted[string]().add("ru", 85).add("en", 15),
	"SWE": newWeighted[string]().add("sv", 70).add("en", 30),
	"ARG": newWeighted[string]().add("es", 95).add("en", 5),
	"COL": newWeighted[string]().add("es", 95).add("en", 5),
	"CHL": newWeighted[string]().add("es", 95).add("en", 5),
	"PER": newWeighted[string]().add("es", 95).add("en", 5),
	"DNK": newWeighted[string]().add("da", 70).add("en", 30),
	"NOR": newWeighted[string]().add("no", 70).add("en", 30),
	"FIN": newWeighted[string]().add("fi", 70).add("en", 30),
	"GRC": newWeighted[string]().add("el", 75).add("en", 25),
	"ISR": newWeighted[string]().add("he", 70).add("en", 30),
	"THA": newWeighted[string]().add("th", 80).add("en", 20),
	"VNM": newWeighted[string]().add("vi", 80).add("en", 20),
	"MYS": newWeighted[string]().add("ms", 60).add("en", 40),
	"BGD": newWeighted[string]().add("bn", 80).add("en", 20),
	"IRN": newWeighted[string]().add("fa", 85).add("en", 15),
	"ETH": newWeighted[string]().add("am", 80).add("en", 20),
	"GEO": newWeighted[string]().add("ka", 75).add("en", 25),
}

// englishBias: probability that a campaign in a non-English market still
// uses English, by scam type — global organizations text in English (§5.3).
var englishBias = map[ScamType]float64{
	ScamBanking:     0.35,
	ScamDelivery:    0.15,
	ScamGovernment:  0.15,
	ScamTelecom:     0.15,
	ScamWrongNumber: 0.30,
	ScamHeyMumDad:   0.25,
	ScamOthers:      0.38,
	ScamSpam:        0.40,
}

// senderKindWeights reproduces §4.1's unique-sender split: 65.6% phone
// numbers, 30.7% alphanumeric shortcodes, 3.7% email addresses.
var senderKindWeights = newWeighted[string]().
	add("phone", 65.6).
	add("alphanumeric", 30.7).
	add("email", 3.7)

// numberClassWeights reproduces Table 3's phone-number type distribution.
// "mobile" is redistributed to "mobile_or_landline" automatically for NANP
// countries by the generator.
var numberClassWeights = newWeighted[string]().
	add("mobile", 66.7).
	add("bad_format", 24.3).
	add("landline", 3.8).
	add("mobile_or_landline", 2.3).
	add("voip", 2.0).
	add("toll_free", 0.6).
	add("pager", 0.1).
	add("universal_access", 0.05).
	add("personal_number", 0.02).
	add("other", 0.1).
	add("voicemail_only", 0.02)

// shortenerWeights reproduces Table 5's shortener popularity. The
// per-scam-type preferences (is.gd for banking, cutt.ly for delivery and
// government) are applied as multipliers in pickShortener.
var shortenerWeights = newWeighted[string]().
	add("bit.ly", 34.0).
	add("is.gd", 17.2).
	add("cutt.ly", 8.7).
	add("tinyurl.com", 7.4).
	add("bit.do", 6.8).
	add("shrtco.de", 4.5).
	add("rb.gy", 3.9).
	add("t.ly", 2.9).
	add("bitly.ws", 2.7).
	add("t.co", 2.6).
	add("ow.ly", 1.6).
	add("rebrand.ly", 1.3).
	add("tiny.cc", 1.1).
	add("s.id", 0.9).
	add("v.gd", 0.8).
	add("gg.gg", 0.7).
	add("clck.ru", 0.6).
	add("shorturl.at", 0.6).
	add("u.to", 0.5).
	add("x.co", 0.5)

// shortenerScamAffinity shapes Table 5's per-scam-type columns.
var shortenerScamAffinity = map[ScamType]map[string]float64{
	ScamBanking:    {"is.gd": 1.8, "shrtco.de": 2.0, "bitly.ws": 1.6, "rb.gy": 1.2},
	ScamDelivery:   {"cutt.ly": 2.0, "bit.do": 1.3, "tinyurl.com": 1.1, "t.co": 1.6, "is.gd": 0.15},
	ScamGovernment: {"cutt.ly": 1.8, "bit.do": 1.4, "t.ly": 1.6, "is.gd": 0.1},
	ScamTelecom:    {"bit.do": 1.6, "bit.ly": 1.2, "is.gd": 0.12},
}

// shortenedProb is the probability a URL-bearing message uses a shortener,
// by scam type (banking campaigns shorten heavily to evade MNO filters).
var shortenedProb = map[ScamType]float64{
	ScamBanking:    0.42,
	ScamDelivery:   0.28,
	ScamGovernment: 0.30,
	ScamTelecom:    0.25,
	ScamOthers:     0.20,
	ScamSpam:       0.15,
}

// urlProb is the probability a message carries a URL at all. Conversation
// scams ask for a reply instead; "hey mum/dad" occasionally uses wa.me.
var urlProb = map[ScamType]float64{
	ScamBanking:     0.88,
	ScamDelivery:    0.92,
	ScamGovernment:  0.85,
	ScamTelecom:     0.82,
	ScamWrongNumber: 0.05,
	ScamHeyMumDad:   0.12,
	ScamOthers:      0.70,
	ScamSpam:        0.60,
}

// othersURLProb gives per-subtype URL probability for Others campaigns:
// conversation scams fish for replies, not clicks.
var othersURLProb = map[OtherSubType]float64{
	SubTech:        0.85,
	SubJob:         0.55,
	SubCrypto:      0.80,
	SubInvestment:  0.10,
	SubOTPCallback: 0.0,
}

// tldWeights reproduces Table 6's landing-domain TLD column.
var tldWeights = newWeighted[string]().
	add("com", 47.5).
	add("info", 5.5).
	add("in", 3.9).
	add("me", 2.8).
	add("net", 2.7).
	add("co", 2.2).
	add("top", 2.2).
	add("us", 1.9).
	add("online", 1.9).
	add("xyz", 1.5).
	add("org", 1.4).
	add("site", 1.2).
	add("club", 1.0).
	add("live", 0.9).
	add("icu", 0.8).
	add("shop", 0.8).
	add("vip", 0.7).
	add("work", 0.6).
	add("link", 0.6).
	add("buzz", 0.5).
	add("cc", 0.5).
	add("uk", 1.4).
	add("es", 0.9).
	add("fr", 0.8).
	add("de", 0.8).
	add("nl", 0.7).
	add("it", 0.6).
	add("ru", 0.6).
	add("br", 0.5).
	add("cn", 0.5).
	add("id", 0.4).
	add("jp", 0.4).
	add("au", 0.4).
	add("biz", 0.3).
	add("pro", 0.2).
	add("asia", 0.15).
	add("tel", 0.05)

// freeHostProb is the chance a campaign uses a free hosting platform
// instead of registering a domain (§4.3: web.app, ngrok.io, ...).
const freeHostProb = 0.08

var freeHostWeights = newWeighted[string]().
	add("web.app", 303).
	add("ngrok.io", 186).
	add("firebaseapp.com", 60).
	add("vercel.app", 45).
	add("herokuapp.com", 42).
	add("netlify.app", 37)

// registrarWeights reproduces Table 17.
var registrarWeights = newWeighted[string]().
	add("GoDaddy", 464).
	add("NameCheap", 153).
	add("Gname", 98).
	add("Dynadot", 79).
	add("Tucows", 74).
	add("PublicDomainRegistry", 71).
	add("NameSilo", 64).
	add("Key-Systems", 60).
	add("MarkMonitor", 53).
	add("Gandi", 52).
	add("Hostinger", 40).
	add("IONOS", 35).
	add("OVH", 30).
	add("Porkbun", 28).
	add("Alibaba Cloud", 25)

// registrarScamAffinity: Gname over-indexes on government scams (§4.4).
var registrarScamAffinity = map[ScamType]map[string]float64{
	ScamGovernment: {"Gname": 3.0, "GoDaddy": 0.8},
}

// caWeights reproduces Table 7's issuing organizations weighted by the
// number of *domains* they serve; per-domain certificate counts are then
// drawn from the CA's renewal policy.
var caWeights = newWeighted[string]().
	add("Let's Encrypt", 4773).
	add("Sectigo", 1372).
	add("Google Trust Services", 957).
	add("cPanel", 915).
	add("DigiCert", 736).
	add("Cloudflare", 683).
	add("Amazon", 273).
	add("Comodo", 250).
	add("GlobalSign", 144).
	add("Entrust", 73)

// caRenewalDays is the certificate validity driving renewal counts: short
// validity inflates issuance exactly as §4.5 observes for Let's Encrypt.
var caRenewalDays = map[string]int{
	"Let's Encrypt":         90,
	"cPanel":                90,
	"Google Trust Services": 90,
	"Cloudflare":            90,
	"Amazon":                395,
	"DigiCert":              365,
	"Sectigo":               365,
	"Comodo":                365,
	"GlobalSign":            365,
	"Entrust":               365,
}

// asEntry describes an autonomous system in Table 8's population.
type asEntry struct {
	Name    string
	ASNs    []int
	Country string
	Proxy   bool // CDN/proxy provider hiding origin (Cloudflare)
	BHP     bool // bulletproof hosting provider
}

// asWeights reproduces Table 8 plus the Cloudflare share from §4.6
// (Cloudflare fronted 18.8% of resolving domains) and the BHP tail.
var asWeights = func() *weighted[asEntry] {
	w := newWeighted[asEntry]()
	w.add(asEntry{Name: "Cloudflare", ASNs: []int{13335}, Country: "US", Proxy: true}, 487)
	w.add(asEntry{Name: "Amazon", ASNs: []int{16509, 14618}, Country: "US"}, 188)
	w.add(asEntry{Name: "Akamai", ASNs: []int{63949}, Country: "US"}, 147)
	w.add(asEntry{Name: "Google", ASNs: []int{15169, 396982}, Country: "US"}, 59)
	w.add(asEntry{Name: "Multacom", ASNs: []int{35916}, Country: "US"}, 49)
	w.add(asEntry{Name: "SEDO GmbH", ASNs: []int{47846}, Country: "DE"}, 31)
	w.add(asEntry{Name: "Alibaba", ASNs: []int{45102, 37963}, Country: "HK"}, 16)
	w.add(asEntry{Name: "Tencent", ASNs: []int{132203}, Country: "US"}, 15)
	w.add(asEntry{Name: "FranTech Solutions", ASNs: []int{53667}, Country: "US", BHP: true}, 11)
	w.add(asEntry{Name: "HKBN Enterprise", ASNs: []int{17444}, Country: "HK"}, 11)
	w.add(asEntry{Name: "The Constant Company", ASNs: []int{20473}, Country: "US"}, 11)
	w.add(asEntry{Name: "Proton66 OOO", ASNs: []int{198953}, Country: "RU", BHP: true}, 8)
	w.add(asEntry{Name: "Stark Industries", ASNs: []int{44477}, Country: "NL", BHP: true}, 7)
	w.add(asEntry{Name: "OVH SAS", ASNs: []int{16276}, Country: "FR"}, 10)
	w.add(asEntry{Name: "Hetzner", ASNs: []int{24940}, Country: "DE"}, 9)
	w.add(asEntry{Name: "DigitalOcean", ASNs: []int{14061}, Country: "US"}, 9)
	return w
}()

// pdnsProb: only a minority of domains appear in passive DNS within the
// lookback year (466 of the corpus's domains resolved, §4.6).
const pdnsProb = 0.30

// forumWeights reproduces Table 1's message-source split.
var forumWeights = newWeighted[Forum]().
	add(ForumTwitter, 92.1).
	add(ForumReddit, 1.1).
	add(ForumSmishtank, 6.0).
	add(ForumSmishingEU, 0.4).
	add(ForumPastebin, 0.4)

// yearWeights reproduces Table 15's growth in reports 2017-2023.
var yearWeights = newWeighted[int]().
	add(2017, 2.9).
	add(2018, 4.6).
	add(2019, 7.6).
	add(2020, 15.9).
	add(2021, 21.1).
	add(2022, 23.9).
	add(2023, 23.9)

// lureProfile gives per-scam-type lure probabilities (Table 13's matrix).
var lureProfile = map[ScamType]map[Lure]float64{
	ScamBanking: {
		LureAuthority: 0.92, LureUrgency: 0.80, LureNeedGreed: 0.10,
		LureDistraction: 0.05, LureHerd: 0.01, LureDishonesty: 0.004,
	},
	ScamDelivery: {
		LureAuthority: 0.90, LureUrgency: 0.72, LureNeedGreed: 0.12,
		LureDistraction: 0.25, LureHerd: 0.01,
	},
	ScamGovernment: {
		LureAuthority: 0.94, LureUrgency: 0.70, LureNeedGreed: 0.35,
		LureHerd: 0.01, LureDishonesty: 0.005,
	},
	ScamTelecom: {
		LureAuthority: 0.88, LureUrgency: 0.60, LureNeedGreed: 0.40,
		LureHerd: 0.02,
	},
	ScamWrongNumber: {
		LureDistraction: 0.85, LureKindness: 0.55, LureDishonesty: 0.01,
	},
	ScamHeyMumDad: {
		LureKindness: 0.95, LureUrgency: 0.75, LureDistraction: 0.60,
	},
	ScamOthers: {
		LureAuthority: 0.45, LureUrgency: 0.50, LureNeedGreed: 0.45,
		LureHerd: 0.05, LureDistraction: 0.15, LureDishonesty: 0.01,
	},
	ScamSpam: {
		LureNeedGreed: 0.70, LureHerd: 0.25, LureUrgency: 0.25,
	},
}

// malwareFamilyWeights reproduces Table 19: SMSspy dominates the APK drops.
var malwareFamilyWeights = newWeighted[string]().
	add("SMSspy", 15).
	add("HQWar", 1).
	add("Rewardsteal", 1).
	add("Artemis", 1)

// apkCampaignProb is the fraction of URL-bearing banking/delivery campaigns
// that stage an Android drive-by download (§6 found 18 in 145 URLs).
const apkCampaignProb = 0.10
