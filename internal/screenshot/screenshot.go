// Package screenshot substitutes for the paper's image-attachment corpus
// (§3.2). Real screenshots are pixel grids; offline we render SMS
// conversations into a glyph-grid "image" format that preserves exactly the
// properties the paper's extraction ladder stumbled on: per-app themes with
// low-contrast custom backgrounds (plain OCR fails), multi-line wrapped
// URLs and scrambled reading order (Google-Vision-style OCR fails), and
// non-screenshot decoy images (awareness posters) that must be rejected.
// Three extractor engines reproduce the ladder: NaiveOCR, VisionOCR, and
// StructuredVision.
package screenshot

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Theme describes the messaging app's rendering style.
type Theme struct {
	Name     string  `json:"name"`
	Contrast float64 `json:"contrast"` // glyph/background contrast, 0..1
	Decor    bool    `json:"decor"`    // decorative bubbles/emoji rails
}

// Themes available to the renderer; weights reflect popularity. The custom
// themes are the "custom background colors and designs" pytesseract could
// not read (§3.2).
var Themes = []Theme{
	{Name: "ios-messages", Contrast: 0.95},
	{Name: "android-messages", Contrast: 0.92},
	{Name: "samsung-messages", Contrast: 0.85},
	{Name: "whatsapp", Contrast: 0.75, Decor: true},
	{Name: "custom-dark", Contrast: 0.40, Decor: true},
	{Name: "custom-gradient", Contrast: 0.30, Decor: true},
}

// Kind tags what an image actually shows.
type Kind string

// Image kinds: real SMS screenshots, awareness posters, and unrelated
// pictures all circulate under the same report keywords.
const (
	KindSMS       Kind = "sms_screenshot"
	KindPoster    Kind = "awareness_poster"
	KindUnrelated Kind = "unrelated"
)

// Line is one rendered text row with its layout ground truth.
type Line struct {
	Text   string `json:"text"`
	Left   int    `json:"left"`   // left edge column
	Row    int    `json:"row"`    // grid row
	Region string `json:"region"` // "header" | "sender" | "body"
}

// Image is the serialized glyph-grid screenshot.
type Image struct {
	Kind  Kind   `json:"kind"`
	Theme Theme  `json:"theme"`
	Width int    `json:"width"`
	Lines []Line `json:"lines"`
	// Ground truth for evaluation; a real image would not carry these,
	// and extractors other than the test harness must not read them.
	TruthText      string `json:"truth_text"`
	TruthSender    string `json:"truth_sender"`
	TruthTimestamp string `json:"truth_timestamp"`
	TruthURL       string `json:"truth_url"`
}

// Spec configures a render.
type Spec struct {
	Sender    string
	Timestamp time.Time // zero means no timestamp shown
	TimeOnly  bool      // screenshot shows clock time without a date
	Body      string
	URL       string // ground truth URL within Body ("" if none)
	Theme     Theme
	Width     int // wrap width in columns (default 34, a phone's worth)
}

// Render lays out an SMS conversation screenshot.
func Render(spec Spec) Image {
	width := spec.Width
	if width <= 0 {
		width = 34
	}
	img := Image{
		Kind:        KindSMS,
		Theme:       spec.Theme,
		Width:       width,
		TruthText:   spec.Body,
		TruthSender: spec.Sender,
		TruthURL:    spec.URL,
	}
	row := 0
	if !spec.Timestamp.IsZero() {
		stamp := formatStamp(spec.Timestamp, spec.TimeOnly)
		img.TruthTimestamp = stamp
		img.Lines = append(img.Lines, Line{Text: stamp, Left: (width - len(stamp)) / 2, Row: row, Region: "header"})
		row++
	}
	if spec.Sender != "" {
		img.Lines = append(img.Lines, Line{Text: spec.Sender, Left: 2, Row: row, Region: "sender"})
		row++
	}
	indent := 3 // bubble padding
	for _, l := range wrap(spec.Body, width-indent) {
		img.Lines = append(img.Lines, Line{Text: l, Left: indent, Row: row, Region: "body"})
		row++
	}
	return img
}

// stampFormats vary by messaging app; dateparse must handle all of them.
func formatStamp(t time.Time, timeOnly bool) string {
	if timeOnly {
		return t.Format("15:04")
	}
	switch t.Second() % 4 { // deterministic per message, varied across corpus
	case 0:
		return t.Format("Mon, 2 Jan 2006 15:04")
	case 1:
		return t.Format("2006-01-02 15:04")
	case 2:
		return t.Format("Jan 2, 2006 3:04 PM")
	default:
		return t.Format("02/01/2006 15:04")
	}
}

// RenderPoster produces an awareness-poster decoy (not an SMS screenshot).
func RenderPoster(headline string) Image {
	lines := []Line{
		{Text: "!! SCAM ALERT !!", Left: 4, Row: 0, Region: "body"},
		{Text: headline, Left: 0, Row: 2, Region: "body"},
		{Text: "Never click links in texts", Left: 0, Row: 4, Region: "body"},
		{Text: "Report to 7726", Left: 6, Row: 6, Region: "body"},
	}
	return Image{Kind: KindPoster, Theme: Themes[0], Width: 40, Lines: lines}
}

// RenderUnrelated produces a non-text decoy image.
func RenderUnrelated(seed int) Image {
	return Image{
		Kind:  KindUnrelated,
		Theme: Themes[seed%len(Themes)],
		Width: 40,
		Lines: []Line{{Text: fmt.Sprintf("IMG_%04d", seed), Left: 0, Row: 0, Region: "body"}},
	}
}

// Encode serializes an image to attachment bytes.
func (img Image) Encode() []byte {
	b, _ := json.Marshal(img)
	return b
}

// Decode parses attachment bytes back into an Image.
func Decode(b []byte) (Image, error) {
	var img Image
	if err := json.Unmarshal(b, &img); err != nil {
		return Image{}, fmt.Errorf("screenshot: decode image: %w", err)
	}
	return img, nil
}

// wrap breaks text into lines at word boundaries, splitting overlong words
// (URLs!) mid-token exactly like a phone's message bubble does.
func wrap(text string, width int) []string {
	if width < 4 {
		width = 4
	}
	var lines []string
	current := ""
	for _, word := range strings.Fields(text) {
		for len(word) > width {
			// Hard-split an overlong token (the multi-line URL case).
			if current != "" {
				lines = append(lines, current)
				current = ""
			}
			lines = append(lines, word[:width])
			word = word[width:]
		}
		switch {
		case current == "":
			current = word
		case len(current)+1+len(word) <= width:
			current += " " + word
		default:
			lines = append(lines, current)
			current = word
		}
	}
	if current != "" {
		lines = append(lines, current)
	}
	return lines
}
