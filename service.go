package smishkit

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/checkpoint"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/report"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Checkpoint types, re-exported so daemon callers never import internal
// paths.
type (
	// Cursor is one forum's durable collection position.
	Cursor = checkpoint.Cursor
	// CheckpointStore persists cursors across daemon restarts.
	CheckpointStore = checkpoint.Store
)

// NewMemCheckpoints returns an in-memory cursor store (lost on exit).
func NewMemCheckpoints() CheckpointStore { return checkpoint.NewMemStore() }

// NewFileCheckpoints returns a cursor store persisting one JSON file per
// forum under dir, creating it if needed — the store a restarted daemon
// resumes from.
func NewFileCheckpoints(dir string) (CheckpointStore, error) { return checkpoint.NewFileStore(dir) }

// ServiceConfig tunes Study.Serve, the long-running service mode.
type ServiceConfig struct {
	// PollInterval is the idle time between collection rounds (default 2s).
	PollInterval time.Duration
	// Checkpoints persists each forum's cursor after every successful
	// round. Default: an in-memory store, which survives repeated Serve
	// calls on one Study but not a process restart; use NewFileCheckpoints
	// for durability.
	Checkpoints CheckpointStore
	// MaxRounds stops the daemon after that many rounds (0 = run until ctx
	// is cancelled).
	MaxRounds int
	// LiveWaves > 0 holds back that many chronological fixture waves at
	// simulation boot and releases one before each round after the first,
	// so the daemon observes reports arriving over time. 0 publishes all
	// fixtures up front.
	LiveWaves int
	// InitialShare is the fraction of fixtures seeded up front when
	// LiveWaves is set (0 selects the default of 0.5).
	InitialShare float64
	// DrainTimeout bounds how long a cancelled Serve keeps processing the
	// in-flight round before giving up on it (default 30s).
	DrainTimeout time.Duration
	// ProjectionQueue bounds how many processed batches may wait for the
	// projection worker (0 selects the default of 16).
	ProjectionQueue int
	// OnRound, when non-nil, is called after every round with that round's
	// outcome — the seam tests use to cancel or inspect mid-flight.
	OnRound func(RoundInfo)
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.PollInterval == 0 {
		c.PollInterval = 2 * time.Second
	}
	if c.Checkpoints == nil {
		c.Checkpoints = checkpoint.NewMemStore()
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// RoundInfo is one Serve round's outcome.
type RoundInfo struct {
	// Round numbers from 1.
	Round int
	// NewReports is how many raw reports this round's collectors returned.
	NewReports int
	// Records is the cumulative record count in the projection after this
	// round's batch was submitted (the projection merges asynchronously, so
	// a just-submitted batch may not be folded in yet).
	Records int
	// Err is the round's first collection or processing error (nil on a
	// clean round). A failed round commits nothing; its reports are
	// re-collected next round.
	Err error
}

// ServiceStats is a point-in-time reading of a serving Study.
type ServiceStats struct {
	// Rounds completed (failed rounds included).
	Rounds int `json:"rounds"`
	// Reports collected and committed across all rounds.
	Reports int `json:"reports"`
	// Records in the merged projection dataset.
	Records int `json:"records"`
	// PendingBatches counts processed batches not yet merged.
	PendingBatches int `json:"pending_batches"`
	// BacklogSeconds is the age of the oldest batch still waiting to be
	// merged into the projection (0 when caught up).
	BacklogSeconds float64 `json:"backlog_seconds"`
	// Cursors maps each forum source to its committed cursor.
	Cursors map[string]Cursor `json:"cursors"`
	// StatusURL is the daemon's status endpoint ("" when not serving).
	StatusURL string `json:"status_url"`
}

// serveState is the live state one Serve call maintains and the status
// endpoint reads.
type serveState struct {
	mu        sync.Mutex
	rounds    int
	reports   int
	statusURL string
	proj      *report.Projection
	store     CheckpointStore
}

func (st *serveState) stats() ServiceStats {
	st.mu.Lock()
	out := ServiceStats{
		Rounds:    st.rounds,
		Reports:   st.reports,
		StatusURL: st.statusURL,
		Cursors:   map[string]Cursor{},
	}
	proj, store := st.proj, st.store
	st.mu.Unlock()
	if proj != nil {
		ps := proj.Stats()
		out.Records = ps.Records
		out.PendingBatches = ps.Pending
		out.BacklogSeconds = ps.BacklogSeconds
	}
	if store != nil {
		if all, err := store.All(); err == nil {
			out.Cursors = all
		}
	}
	return out
}

// StatusURL returns the base URL of the serving Study's status endpoint
// (GET /status for ServiceStats, GET /debug/telemetry for the metrics
// snapshot), or "" when Serve is not running.
func (s *Study) StatusURL() string {
	st := s.svc
	if st == nil {
		return ""
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.statusURL
}

// Serve runs the study as a long-running daemon: every PollInterval it
// asks each forum collector for reports newer than its durable cursor,
// pushes the new batch through the streaming pipeline, folds the result
// into the incrementally-maintained report projection, and commits the
// advanced cursors. Rounds are atomic — a collector or pipeline failure
// discards the round's partial progress and leaves every cursor where it
// was, so an interrupted daemon resumed from the same CheckpointStore
// re-collects exactly the reports it never committed (no duplicates, no
// holes).
//
// Cancelling ctx is the clean shutdown: the in-flight round is drained
// (bounded by DrainTimeout), the projection is flushed, and the merged
// dataset so far is returned with a nil error. Serve requires
// Options.Pipeline.Streaming.
func (s *Study) Serve(ctx context.Context) (*Dataset, error) {
	if !s.opts.Pipeline.Streaming {
		return nil, fmt.Errorf("smishkit: Serve requires Options.Pipeline.Streaming")
	}
	var cfg ServiceConfig
	if s.opts.Service != nil {
		cfg = *s.opts.Service
	}
	cfg = cfg.withDefaults()

	reg := s.Pipe.Telemetry()
	st := &serveState{store: cfg.Checkpoints}
	st.proj = report.NewProjection(reg, cfg.ProjectionQueue)
	defer st.proj.Close()
	s.svc = st

	// Status endpoint: /status + /debug/telemetry on an ephemeral loopback
	// port, alive for the duration of this Serve call.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st.stats())
	})
	mux.Handle("GET /debug/telemetry", telemetry.Handler(reg))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("smishkit: bind status endpoint: %w", err)
	}
	statusSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = statusSrv.Serve(ln) }()
	defer func() { _ = statusSrv.Close() }()
	st.mu.Lock()
	st.statusURL = "http://" + ln.Addr().String()
	st.mu.Unlock()

	collectors, err := s.incrementalCollectors()
	if err != nil {
		return nil, err
	}

	// Load the resume point for every source up front; the loop keeps the
	// live cursors in memory and the store holds only committed positions.
	cursors := make(map[string]Cursor, len(collectors))
	for _, src := range forum.Sources {
		if cur, ok, err := cfg.Checkpoints.Load(src); err != nil {
			return nil, fmt.Errorf("smishkit: load checkpoint %s: %w", src, err)
		} else if ok {
			cursors[src] = cur
		}
	}

	// drainCtx survives ctx cancellation so a cancelled round finishes
	// processing and commits instead of tearing mid-batch; DrainTimeout per
	// round bounds the overstay.
	drainBase := context.WithoutCancel(ctx)
	lagGauges := make(map[string]*telemetry.Gauge, len(forum.Sources))
	for _, src := range forum.Sources {
		lagGauges[src] = reg.Gauge("collect.cursor_lag." + src)
	}
	setLag := func() {
		now := time.Now()
		for _, src := range forum.Sources {
			if cur, ok := cursors[src]; ok && !cur.Updated.IsZero() {
				lag := now.Sub(cur.Updated)
				if lag < 0 {
					lag = 0
				}
				lagGauges[src].Set(int64(lag / time.Second))
			}
		}
	}

	released := 0
	for round := 1; ; round++ {
		if cfg.LiveWaves > 0 && round > 1 && released < cfg.LiveWaves {
			if s.Sim.ReleaseWave() {
				released++
			}
		}

		info := RoundInfo{Round: round}
		sp := reg.StartSpan("serve.round")

		// Collect each forum as an independent atomic stage: a failing
		// collector contributes nothing this round and keeps its cursor.
		var batch []RawReport
		staged := make(map[string]Cursor, len(collectors))
		for i, ic := range collectors {
			src := forum.Sources[i]
			var stage []RawReport
			next, err := ic.CollectSince(ctx, cursors[src], func(r RawReport) error {
				stage = append(stage, r)
				return nil
			})
			if err != nil {
				reg.Counter("collect." + src + ".errors").Inc()
				if info.Err == nil {
					info.Err = fmt.Errorf("smishkit: collect %s: %w", src, err)
				}
				continue
			}
			reg.Counter("collect." + src + ".new_reports").Add(int64(len(stage)))
			batch = append(batch, stage...)
			staged[src] = next
		}

		if ctx.Err() != nil {
			// Cancelled mid-collection: the round never completed, so none
			// of its stages commit; a resumed daemon re-collects them.
			sp.End()
			break
		}

		// Process the round's batch and commit its cursors together. An
		// empty batch still commits: the cursors' Updated stamps are what
		// the lag gauges measure.
		collectedAt := time.Now()
		committed := true
		if len(batch) > 0 {
			procCtx, cancel := context.WithTimeout(drainBase, cfg.DrainTimeout)
			ds, err := s.Pipe.Run(procCtx, batch)
			if err == nil {
				err = st.proj.Submit(procCtx, ds, collectedAt)
			}
			cancel()
			if err != nil {
				committed = false
				if info.Err == nil {
					info.Err = fmt.Errorf("smishkit: round %d: %w", round, err)
				}
			}
		}
		if committed {
			info.NewReports = len(batch)
			for src, cur := range staged {
				if err := cfg.Checkpoints.Save(cur); err != nil {
					if info.Err == nil {
						info.Err = fmt.Errorf("smishkit: save checkpoint %s: %w", src, err)
					}
					continue
				}
				cursors[src] = cur
			}
			st.mu.Lock()
			st.reports += len(batch)
			st.mu.Unlock()
		}
		setLag()
		sp.End()

		st.mu.Lock()
		st.rounds = round
		st.mu.Unlock()
		info.Records = st.proj.Stats().Records
		if cfg.OnRound != nil {
			cfg.OnRound(info)
		}

		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(cfg.PollInterval):
		}
		if ctx.Err() != nil {
			break
		}
	}

	// Graceful drain: flush every submitted batch into the projection.
	drainCtx, cancel := context.WithTimeout(drainBase, cfg.DrainTimeout)
	defer cancel()
	if err := st.proj.Wait(drainCtx); err != nil {
		return st.proj.Dataset(), fmt.Errorf("smishkit: drain projection: %w", err)
	}
	return st.proj.Dataset(), nil
}

// incrementalCollectors returns the simulation's collectors as
// IncrementalCollectors, in forum.Sources order.
func (s *Study) incrementalCollectors() ([]forum.IncrementalCollector, error) {
	cols := s.Sim.Collectors()
	out := make([]forum.IncrementalCollector, 0, len(cols))
	for _, c := range cols {
		ic, ok := c.(forum.IncrementalCollector)
		if !ok {
			return nil, fmt.Errorf("smishkit: collector %s is not incremental", c.Name())
		}
		out = append(out, ic)
	}
	return out, nil
}
