package corpus

import (
	"math"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/stats"
)

func genWorld(t testing.TB, n int, seed int64) *World {
	t.Helper()
	return Generate(Config{Seed: seed, Messages: n})
}

func TestGenerateDeterministic(t *testing.T) {
	a := genWorld(t, 500, 42)
	b := genWorld(t, 500, 42)
	if len(a.Messages) != len(b.Messages) {
		t.Fatalf("message counts differ: %d vs %d", len(a.Messages), len(b.Messages))
	}
	for i := range a.Messages {
		if a.Messages[i].Text != b.Messages[i].Text ||
			a.Messages[i].Sender.Value != b.Messages[i].Sender.Value ||
			!a.Messages[i].SentAt.Equal(b.Messages[i].SentAt) {
			t.Fatalf("message %d differs between runs with same seed", i)
		}
	}
	if len(a.Domains) != len(b.Domains) || len(a.Links) != len(b.Links) {
		t.Fatalf("infrastructure differs: %d/%d domains, %d/%d links",
			len(a.Domains), len(b.Domains), len(a.Links), len(b.Links))
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := genWorld(t, 200, 1)
	b := genWorld(t, 200, 2)
	same := 0
	for i := range a.Messages {
		if a.Messages[i].Text == b.Messages[i].Text {
			same++
		}
	}
	if same == len(a.Messages) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateCount(t *testing.T) {
	for _, n := range []int{1, 10, 333, 2000} {
		w := Generate(Config{Seed: 7, Messages: n})
		if len(w.Messages) != n {
			t.Errorf("Messages = %d, want %d", len(w.Messages), n)
		}
	}
}

func TestScamTypeMarginal(t *testing.T) {
	w := genWorld(t, 8000, 3)
	c := stats.NewCounter()
	for _, m := range w.Messages {
		c.Add(string(m.ScamType))
	}
	// Paper Table 10: banking 45.1%, others 20.6%, delivery 11.3%.
	if got := c.Share(string(ScamBanking)); math.Abs(got-0.451) > 0.06 {
		t.Errorf("banking share = %.3f, want ~0.451", got)
	}
	if got := c.Share(string(ScamOthers)); math.Abs(got-0.206) > 0.06 {
		t.Errorf("others share = %.3f, want ~0.206", got)
	}
	top := c.TopK(1)
	if top[0].Key != string(ScamBanking) {
		t.Errorf("dominant scam type = %q, want banking", top[0].Key)
	}
}

func TestLanguageMarginal(t *testing.T) {
	w := genWorld(t, 8000, 4)
	c := stats.NewCounter()
	for _, m := range w.Messages {
		c.Add(m.Language)
	}
	// Paper Table 11: English 65.2%, Spanish 13.7% — check the ordering and
	// the English dominance band.
	enShare := c.Share("en")
	if enShare < 0.5 || enShare > 0.8 {
		t.Errorf("en share = %.3f, want in [0.5, 0.8]", enShare)
	}
	top := c.TopK(2)
	if top[0].Key != "en" {
		t.Errorf("top language = %q, want en", top[0].Key)
	}
	if top[1].Key != "es" {
		t.Errorf("second language = %q, want es", top[1].Key)
	}
	if c.Len() < 10 {
		t.Errorf("only %d languages in corpus", c.Len())
	}
}

func TestSenderKindMarginal(t *testing.T) {
	w := genWorld(t, 8000, 5)
	c := stats.NewCounter()
	for _, m := range w.Messages {
		c.Add(string(m.Sender.Kind))
	}
	// §4.1: phone 65.6%, alphanumeric 30.7%, email 3.7%.
	if got := c.Share(string(senderid.KindPhone)); math.Abs(got-0.656) > 0.06 {
		t.Errorf("phone share = %.3f, want ~0.656", got)
	}
	if got := c.Share(string(senderid.KindAlphanumeric)); math.Abs(got-0.307) > 0.06 {
		t.Errorf("alnum share = %.3f, want ~0.307", got)
	}
	if got := c.Share(string(senderid.KindEmail)); math.Abs(got-0.037) > 0.03 {
		t.Errorf("email share = %.3f, want ~0.037", got)
	}
}

func TestNumberTypeMarginal(t *testing.T) {
	w := genWorld(t, 10000, 6)
	c := stats.NewCounter()
	for _, s := range w.Numbers {
		c.Add(string(s.NumberType))
	}
	// Table 3: mobile 66.7%, bad format 24.3%, landline 3.8%.
	if got := c.Share(string(senderid.TypeMobile)); math.Abs(got-0.667) > 0.08 {
		t.Errorf("mobile share = %.3f, want ~0.667", got)
	}
	if got := c.Share(string(senderid.TypeBadFormat)); math.Abs(got-0.243) > 0.06 {
		t.Errorf("bad-format share = %.3f, want ~0.243", got)
	}
	top := c.TopK(2)
	if top[0].Key != string(senderid.TypeMobile) || top[1].Key != string(senderid.TypeBadFormat) {
		t.Errorf("type order = %v", top)
	}
}

// Generated phone numbers must be classifiable back to their intended type
// by the numbering-plan rules (except classes the plan folds together).
func TestGeneratedNumbersRoundTrip(t *testing.T) {
	w := genWorld(t, 4000, 7)
	checked, mismatched := 0, 0
	for value, s := range w.Numbers {
		if s.NumberType == senderid.TypeBadFormat {
			n, err := senderid.ParsePhone(value)
			if err == nil && senderid.ClassifyNumber(n) != senderid.TypeBadFormat {
				t.Errorf("bad-format number %q parsed as %q", value, senderid.ClassifyNumber(n))
			}
			continue
		}
		n, err := senderid.ParsePhone(value)
		if err != nil {
			t.Errorf("generated number %q does not parse: %v", value, err)
			continue
		}
		if n.Country != s.Country {
			t.Errorf("number %q country %q, want %q", value, n.Country, s.Country)
		}
		checked++
		got := senderid.ClassifyNumber(n)
		// NANP folding: the plan fallback cannot split mobile from
		// landline, so the authoritative registry's "mobile" reads back
		// as "mobile_or_landline" — not a generation error.
		if got == senderid.TypeMobileOrLandline && n.Country == "USA" {
			continue
		}
		if got != s.NumberType {
			mismatched++
		}
	}
	if checked == 0 {
		t.Fatal("no valid numbers generated")
	}
	if frac := float64(mismatched) / float64(checked); frac > 0.02 {
		t.Errorf("%.1f%% of generated numbers misclassify against plan rules", frac*100)
	}
}

func TestCountryMarginal(t *testing.T) {
	w := genWorld(t, 10000, 8)
	c := stats.NewCounter()
	for _, s := range w.Numbers {
		if s.Country != "" && s.NumberType == senderid.TypeMobile {
			c.Add(s.Country)
		}
	}
	top := c.TopK(3)
	if top[0].Key != "IND" {
		t.Errorf("top origin country = %q, want IND (Table 14)", top[0].Key)
	}
	found := map[string]bool{}
	for _, e := range c.TopK(10) {
		found[e.Key] = true
	}
	for _, want := range []string{"IND", "NLD", "GBR"} {
		if !found[want] {
			t.Errorf("%s missing from top-10 origin countries", want)
		}
	}
}

func TestForumMarginal(t *testing.T) {
	w := genWorld(t, 8000, 9)
	c := stats.NewCounter()
	for _, m := range w.Messages {
		c.Add(string(m.Forum))
	}
	if got := c.Share(string(ForumTwitter)); got < 0.85 {
		t.Errorf("twitter share = %.3f, want > 0.85 (Table 1: 92%%)", got)
	}
	for _, f := range Forums {
		if c.Count(string(f)) == 0 {
			t.Errorf("forum %s got no messages", f)
		}
	}
}

func TestShortenerMarginal(t *testing.T) {
	w := genWorld(t, 12000, 10)
	c := stats.NewCounter()
	for _, m := range w.Messages {
		if m.Shortener != "" {
			c.Add(m.Shortener)
		}
	}
	if c.Total() == 0 {
		t.Fatal("no shortened URLs generated")
	}
	if top := c.TopK(1); top[0].Key != "bit.ly" {
		t.Errorf("top shortener = %q, want bit.ly (Table 5)", top[0].Key)
	}
}

func TestTLDAndRegistrarMarginals(t *testing.T) {
	w := genWorld(t, 12000, 11)
	tlds := stats.NewCounter()
	regs := stats.NewCounter()
	cas := stats.NewCounter()
	for _, d := range w.Domains {
		tlds.Add(d.TLD)
		if d.Registrar != "" {
			regs.Add(d.Registrar)
		}
		cas.Add(d.CA)
	}
	if top := tlds.TopK(1); top[0].Key != "com" {
		t.Errorf("top TLD = %q, want com (Table 6)", top[0].Key)
	}
	if top := regs.TopK(2); top[0].Key != "GoDaddy" || top[1].Key != "NameCheap" {
		t.Errorf("registrar order = %v, want GoDaddy, NameCheap (Table 17)", top)
	}
	if top := cas.TopK(1); top[0].Key != "Let's Encrypt" {
		t.Errorf("top CA = %q, want Let's Encrypt (Table 7)", top[0].Key)
	}
}

func TestLetsEncryptCertInflation(t *testing.T) {
	w := genWorld(t, 12000, 12)
	perCA := map[string][]float64{}
	for _, d := range w.Domains {
		perCA[d.CA] = append(perCA[d.CA], float64(d.CertCount))
	}
	le, _ := stats.Mean(perCA["Let's Encrypt"])
	dc, _ := stats.Mean(perCA["DigiCert"])
	if le <= dc {
		t.Errorf("Let's Encrypt mean certs (%.1f) not above DigiCert (%.1f): 90-day renewals should inflate counts (§4.5)", le, dc)
	}
}

func TestASMarginal(t *testing.T) {
	w := genWorld(t, 16000, 13)
	ases := stats.NewCounter()
	resolving := 0
	for _, d := range w.Domains {
		if len(d.IPs) > 0 {
			resolving++
			ases.Add(d.ASName)
		}
	}
	if resolving == 0 {
		t.Fatal("no domains resolve in passive DNS")
	}
	if top := ases.TopK(1); top[0].Key != "Cloudflare" {
		t.Errorf("top AS = %q, want Cloudflare (§4.6)", top[0].Key)
	}
	// IP prefixes must match the ASN prefix contract.
	for _, d := range w.Domains {
		if d.ASN == 0 {
			continue
		}
		prefix := ASNPrefix(d.ASN)
		for _, ip := range d.IPs {
			if len(ip) < len(prefix) || ip[:len(prefix)] != prefix {
				t.Fatalf("domain %s ip %s outside ASN prefix %s", d.Name, ip, prefix)
			}
		}
	}
}

func TestSendTimeProfile(t *testing.T) {
	w := genWorld(t, 8000, 14)
	business, weekday := 0, 0
	for _, m := range w.Messages {
		h := m.SentAt.Hour()
		if h >= 9 && h < 20 {
			business++
		}
		wd := m.SentAt.Weekday()
		if wd != time.Saturday && wd != time.Sunday {
			weekday++
		}
	}
	n := float64(len(w.Messages))
	if frac := float64(business) / n; frac < 0.6 {
		t.Errorf("only %.2f of sends in 09:00-20:00, want > 0.6 (Fig. 2)", frac)
	}
	if frac := float64(weekday) / n; frac < 0.6 {
		t.Errorf("only %.2f of sends on weekdays", frac)
	}
}

func TestSBICampaignInjection(t *testing.T) {
	w := Generate(Config{Seed: 15, Messages: 8000})
	count := 0
	for _, m := range w.Messages {
		if m.Campaign == "c-sbi-2021" {
			count++
			if m.SentAt.Year() != 2021 || m.SentAt.Month() != time.August || m.SentAt.Day() != 3 {
				t.Fatalf("SBI campaign message at %v", m.SentAt)
			}
			if m.Brand != "State Bank of India" {
				t.Fatalf("SBI campaign brand = %q", m.Brand)
			}
		}
	}
	if count < 100 {
		t.Errorf("SBI campaign has %d messages, want >= 100", count)
	}
}

func TestBrandMarginal(t *testing.T) {
	w := genWorld(t, 12000, 16)
	c := stats.NewCounter()
	for _, m := range w.Messages {
		if m.Brand != "" {
			c.Add(m.Brand)
		}
	}
	if top := c.TopK(1); top[0].Key != "State Bank of India" {
		t.Errorf("top brand = %q, want State Bank of India (Table 12)", top[0].Key)
	}
}

func TestLureProfiles(t *testing.T) {
	w := genWorld(t, 12000, 17)
	byScam := map[ScamType]*stats.Counter{}
	totals := map[ScamType]int{}
	for _, m := range w.Messages {
		if byScam[m.ScamType] == nil {
			byScam[m.ScamType] = stats.NewCounter()
		}
		totals[m.ScamType]++
		for _, l := range m.Lures {
			byScam[m.ScamType].Add(string(l))
		}
	}
	// Banking leans on authority; hey mum/dad on kindness; dishonesty rare.
	bank := byScam[ScamBanking]
	if float64(bank.Count(string(LureAuthority)))/float64(totals[ScamBanking]) < 0.7 {
		t.Error("banking authority lure below 70%")
	}
	hmd := byScam[ScamHeyMumDad]
	if totals[ScamHeyMumDad] > 10 &&
		float64(hmd.Count(string(LureKindness)))/float64(totals[ScamHeyMumDad]) < 0.7 {
		t.Error("hey mum/dad kindness lure below 70%")
	}
	var dishonesty, all int
	for scam, c := range byScam {
		dishonesty += c.Count(string(LureDishonesty))
		all += totals[scam]
	}
	if frac := float64(dishonesty) / float64(all); frac > 0.02 {
		t.Errorf("dishonesty lure share %.3f, want < 0.02 (§5.5)", frac)
	}
}

func TestWorldConsistency(t *testing.T) {
	w := genWorld(t, 3000, 18)
	for _, m := range w.Messages {
		if m.Domain != "" {
			if _, ok := w.Domains[m.Domain]; !ok {
				t.Fatalf("message %s references unknown domain %s", m.ID, m.Domain)
			}
		}
		if m.Shortener != "" {
			// Shortened URL must exist in the link table.
			key := m.URL[len("https://"):]
			if _, ok := w.Links[key]; !ok {
				t.Fatalf("message %s short url %q missing from link table", m.ID, m.URL)
			}
			if w.Links[key].Target != m.FinalURL {
				t.Fatalf("short link target mismatch for %s", m.ID)
			}
		}
		if m.Sender.Kind == senderid.KindPhone {
			if _, ok := w.Numbers[m.Sender.Value]; !ok {
				t.Fatalf("phone sender %q not registered", m.Sender.Value)
			}
		}
		if m.ReportedAt.Before(m.SentAt) {
			t.Fatalf("message %s reported before sent", m.ID)
		}
		if m.Text == "" {
			t.Fatalf("message %s has empty text", m.ID)
		}
		if m.URL != "" && m.Text != "" && !m.RedactURL {
			// URL-bearing texts must actually contain the URL.
			if !contains(m.Text, m.URL) {
				t.Fatalf("message %s text does not contain its URL: %q / %q", m.ID, m.Text, m.URL)
			}
		}
	}
	if len(w.Campaigns) == 0 {
		t.Fatal("no campaigns recorded")
	}
	for _, f := range Forums {
		if w.NoisePosts[f] < 0 {
			t.Errorf("negative noise for %s", f)
		}
	}
}

func TestAPKCampaigns(t *testing.T) {
	w := genWorld(t, 16000, 19)
	families := stats.NewCounter()
	for _, d := range w.Domains {
		if d.ServesAPK {
			if len(d.APKHash) != 64 {
				t.Fatalf("APK hash %q not sha256 hex", d.APKHash)
			}
			families.Add(d.MalwareFamily)
		}
	}
	if families.Total() == 0 {
		t.Fatal("no APK-serving domains generated")
	}
	if top := families.TopK(1); top[0].Key != "SMSspy" {
		t.Errorf("dominant family = %q, want SMSspy (Table 19)", top[0].Key)
	}
}

func contains(haystack, needle string) bool {
	return len(needle) == 0 || len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}
