// Package avscan simulates the URL-reputation ecosystem of §3.3.4 and
// §4.7: a VirusTotal-style aggregate of ~70 antivirus vendors whose
// blocklists are built with different strategies and sensitivities, a
// Google-Safe-Browsing-style lookup API, and the GSB transparency-report
// website that blocks half of all programmatic queries. Verdicts are
// deterministic functions of (URL, vendor) so measurement runs reproduce.
package avscan

import (
	"fmt"
	"hash/fnv"
)

// Verdict is a single vendor's opinion of a URL.
type Verdict string

// Vendor verdicts as VirusTotal reports them.
const (
	VerdictMalicious  Verdict = "malicious"
	VerdictSuspicious Verdict = "suspicious"
	VerdictHarmless   Verdict = "harmless"
)

// Vendor models one AV engine's blocklist behaviour. Sensitivity scales how
// much of the detectable population the vendor flags; SuspBias shifts flags
// from "malicious" to "suspicious" (heuristic engines); Lag delays
// detection of fresh URLs (feed-driven engines).
type Vendor struct {
	Name        string
	Sensitivity float64
	SuspBias    float64
}

// vendorRoster builds the ~70-engine population: a long tail of
// low-coverage engines, a band of mid-tier engines, and a few aggressive
// blocklist leaders — the disagreement structure behind Table 9, where half
// the URLs get >= 1 flag but almost none get >= 15.
func vendorRoster() []Vendor {
	var vendors []Vendor
	add := func(n int, prefix string, sens, susp float64) {
		for i := 0; i < n; i++ {
			vendors = append(vendors, Vendor{
				Name:        fmt.Sprintf("%s-%02d", prefix, i+1),
				Sensitivity: sens,
				SuspBias:    susp,
			})
		}
	}
	add(40, "TailAV", 0.035, 0.22) // barely-maintained engines
	add(15, "MidAV", 0.085, 0.15)  // average engines
	add(10, "CoreAV", 0.25, 0.08)  // serious URL-feed engines
	add(4, "LeadAV", 0.80, 0.04)   // blocklist leaders
	vendors = append(vendors, Vendor{Name: "GoogleSafebrowsing", Sensitivity: 0.0, SuspBias: 0})
	return vendors
}

// Vendors is the fixed roster (70 engines + the GSB mirror entry).
var Vendors = vendorRoster()

// hashUnit maps (parts...) deterministically to [0, 1). FNV-1a alone has
// weak high-bit avalanche when inputs differ only in their final bytes
// (exactly our URL paths), so the sum is passed through a splitmix64-style
// finalizer before scaling.
func hashUnit(parts ...string) float64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0})
	}
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// detectionFloor is the detectability below which no engine flags a URL —
// the fresh/targeted campaigns that evade every blocklist (44.9% of the
// paper's URLs had zero detections).
const detectionFloor = 0.25

// verdictFor computes one vendor's deterministic verdict.
func verdictFor(v Vendor, url string, detectability float64) Verdict {
	if v.Name == "GoogleSafebrowsing" {
		// The GSB entry on VirusTotal lags GSB's own API (§4.7): a
		// slightly wider slice than the API detects.
		if detectability > 0.86 && hashUnit("vt-gsb", url) < 0.45 {
			return VerdictMalicious
		}
		return VerdictHarmless
	}
	if detectability <= detectionFloor {
		return VerdictHarmless
	}
	strength := (detectability - detectionFloor) / (1 - detectionFloor)
	p := strength * v.Sensitivity
	roll := hashUnit(v.Name, url)
	if roll < p {
		// A slice of each vendor's detections surface as "suspicious".
		if hashUnit(v.Name, "susp", url) < v.SuspBias {
			return VerdictSuspicious
		}
		return VerdictMalicious
	}
	// Heuristic engines mark some undetected-but-shady URLs suspicious.
	if detectability > 0.4 && hashUnit(v.Name, "heur", url) < 0.004 {
		return VerdictSuspicious
	}
	return VerdictHarmless
}

// GSBAPIDetects reports whether the Safe Browsing lookup API flags a URL.
// Calibrated to ~1% of smishing URLs (Table 18): the API tracks only
// long-lived, widely reported pages.
func GSBAPIDetects(url string, detectability float64) bool {
	return detectability > 0.90 && hashUnit("gsb-api", url) < 0.35
}

// TransparencyStatus is the GSB transparency-report site's answer.
type TransparencyStatus string

// Transparency-report states (Table 18).
const (
	TransparencyUnsafe     TransparencyStatus = "unsafe"
	TransparencyPartial    TransparencyStatus = "partially_unsafe"
	TransparencyNoData     TransparencyStatus = "no_available_data"
	TransparencyUndetected TransparencyStatus = "undetected"
)

// TransparencyBlocked reports whether the site refuses this programmatic
// query (the paper could not script 50% of its URLs).
func TransparencyBlocked(url string) bool {
	return hashUnit("transparency-block", url) < 0.50
}

// TransparencyLookup returns the report state for a queryable URL. The site
// sees more than the API (8.1% unsafe + 4.4% partial) but returns "no
// available data" for a big slice (28.5%).
func TransparencyLookup(url string, detectability float64) TransparencyStatus {
	switch {
	case detectability > 0.62 && hashUnit("transparency-unsafe", url) < 0.45:
		return TransparencyUnsafe
	case detectability > 0.55 && hashUnit("transparency-partial", url) < 0.30:
		return TransparencyPartial
	case hashUnit("transparency-nodata", url) < 0.31:
		return TransparencyNoData
	default:
		return TransparencyUndetected
	}
}

// DefaultDetectability assigns a deterministic pseudo-detectability to URLs
// the service has no ground truth for, keyed by the URL itself.
func DefaultDetectability(url string) float64 {
	u := hashUnit("detectability", url)
	return u * u // skew low: most unknown URLs are barely detected
}
