// Package monitor implements the active URL-lifetime measurement the paper
// motivates but could not run at scale: smishing URLs "have a short
// lifespan, ranging from a few minutes to a maximum of a few days" (§2,
// citing Liu et al.), and §7 argues that actively measuring smishing URLs
// would recover redirects and phishing kits before takedown. The monitor
// polls a URL set on a schedule, records when each target dies, and
// summarizes the lifespan distribution. Time is injectable, so simulations
// can sweep days of polling in milliseconds.
package monitor

import (
	"context"
	"sort"
	"time"

	"github.com/smishkit/smishkit/internal/crawler"
	"github.com/smishkit/smishkit/internal/stats"
)

// Status is one target's lifecycle state.
type Status string

// Target states.
const (
	StatusAlive Status = "alive"
	StatusDead  Status = "dead"
)

// Target tracks one monitored URL.
type Target struct {
	URL       string
	FirstSeen time.Time // first successful fetch
	LastAlive time.Time // most recent successful fetch
	DeadAt    time.Time // first failed fetch after being alive (zero if alive)
	Polls     int
	Status    Status
	// NeverUp marks targets that were already dead at the first poll.
	NeverUp bool
}

// Lifespan returns the observed alive duration; targets still alive return
// the span so far.
func (t *Target) Lifespan() time.Duration {
	if t.NeverUp {
		return 0
	}
	end := t.LastAlive
	if !t.DeadAt.IsZero() {
		end = t.DeadAt
	}
	return end.Sub(t.FirstSeen)
}

// Monitor polls URLs until they die or the deadline passes.
type Monitor struct {
	Crawler *crawler.Crawler
	// Interval between poll rounds (simulated time).
	Interval time.Duration
	// Clock returns current simulated time; Advance moves it. Defaults
	// drive a purely virtual clock starting at CLOCK epoch.
	Clock   func() time.Time
	Advance func(d time.Duration)
}

// NewVirtualTime returns a (clock, advance) pair over a virtual timeline.
func NewVirtualTime(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

// Run polls every URL each Interval until all targets are dead or rounds
// poll rounds have elapsed. It returns final target states keyed by URL.
func (m *Monitor) Run(ctx context.Context, urls []string, rounds int) (map[string]*Target, error) {
	targets := make(map[string]*Target, len(urls))
	for _, u := range urls {
		targets[u] = &Target{URL: u, Status: StatusAlive}
	}
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return targets, err
		}
		liveLeft := false
		now := m.Clock()
		for _, t := range targets {
			if t.Status == StatusDead {
				continue
			}
			t.Polls++
			res := m.Crawler.Crawl(ctx, t.URL, crawler.PersonaDesktop)
			switch res.Outcome {
			case crawler.OutcomePhishingPage, crawler.OutcomeAPKDownload:
				if t.FirstSeen.IsZero() {
					t.FirstSeen = now
				}
				t.LastAlive = now
				liveLeft = true
			default:
				if t.FirstSeen.IsZero() {
					t.Status = StatusDead
					t.NeverUp = true
				} else {
					t.Status = StatusDead
					t.DeadAt = now
				}
			}
		}
		if !liveLeft {
			break
		}
		m.Advance(m.Interval)
	}
	return targets, nil
}

// Summary condenses a monitoring run.
type Summary struct {
	Targets    int
	Died       int
	StillAlive int
	NeverUp    int
	Lifespans  stats.FiveNumber // hours, over targets that died
}

// Summarize aggregates target states.
func Summarize(targets map[string]*Target) Summary {
	var sum Summary
	var spans []float64
	urls := make([]string, 0, len(targets))
	for u := range targets {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		t := targets[u]
		sum.Targets++
		switch {
		case t.NeverUp:
			sum.NeverUp++
		case t.Status == StatusDead:
			sum.Died++
			spans = append(spans, t.Lifespan().Hours())
		default:
			sum.StillAlive++
		}
	}
	if len(spans) > 0 {
		if s, err := stats.Summarize(spans); err == nil {
			sum.Lifespans = s
		}
	}
	return sum
}
