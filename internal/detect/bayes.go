// Package detect implements the multi-class smishing detector the paper's
// §7.2 calls for: prior work trains binary spam/ham classifiers on
// decade-old corpora, while this model learns the paper's scam typology
// (plus a ham class) from the labeled dataset. The classifier is a
// multinomial Naive Bayes over normalized unigrams and bigrams with
// Laplace smoothing — the baseline family (§2) upgraded to multi-class.
package detect

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/smishkit/smishkit/internal/textnorm"
)

// Doc is one labeled training document.
type Doc struct {
	Text  string
	Label string
}

// Model is a trained multinomial Naive Bayes classifier. Construct with
// Train or Load; safe for concurrent Predict calls once built.
type Model struct {
	Labels      []string                  `json:"labels"`
	DocCount    map[string]int            `json:"doc_count"`    // per label
	TokenCount  map[string]int            `json:"token_count"`  // per label, total tokens
	TokenByWord map[string]map[string]int `json:"token_counts"` // label -> token -> count
	Vocabulary  int                       `json:"vocabulary"`
	TotalDocs   int                       `json:"total_docs"`
	// UseBigrams adds adjacent-token bigrams to the feature set.
	UseBigrams bool `json:"use_bigrams"`
}

// ErrNoTraining is returned for predictions on an untrained model.
var ErrNoTraining = errors.New("detect: model has no training data")

// Train fits a model on docs. An empty doc set returns an error.
func Train(docs []Doc, useBigrams bool) (*Model, error) {
	if len(docs) == 0 {
		return nil, ErrNoTraining
	}
	m := &Model{
		DocCount:    make(map[string]int),
		TokenCount:  make(map[string]int),
		TokenByWord: make(map[string]map[string]int),
		UseBigrams:  useBigrams,
	}
	vocab := make(map[string]bool)
	for _, d := range docs {
		if d.Label == "" {
			return nil, fmt.Errorf("detect: document with empty label: %.40q", d.Text)
		}
		if m.TokenByWord[d.Label] == nil {
			m.TokenByWord[d.Label] = make(map[string]int)
			m.Labels = append(m.Labels, d.Label)
		}
		m.DocCount[d.Label]++
		m.TotalDocs++
		for _, tok := range Features(d.Text, useBigrams) {
			m.TokenByWord[d.Label][tok]++
			m.TokenCount[d.Label]++
			vocab[tok] = true
		}
	}
	m.Vocabulary = len(vocab)
	sort.Strings(m.Labels)
	return m, nil
}

// Features extracts the token set used by the model: normalized unigrams
// plus (optionally) bigrams, with URL-bearing tokens mapped to structural
// markers so the model keys on "has a link / has a shortener" rather than
// memorizing hostnames.
func Features(text string, bigrams bool) []string {
	toks := textnorm.Tokenize(textnorm.CollapseRepeats(text))
	out := make([]string, 0, len(toks)*2)
	prev := ""
	for _, t := range toks {
		switch t {
		case "http", "https", "www":
			t = "__url__"
		}
		if len(t) > 24 {
			t = "__longtoken__" // split URLs, codes
		}
		out = append(out, t)
		if bigrams && prev != "" {
			out = append(out, prev+"_"+t)
		}
		prev = t
	}
	return out
}

// Score is one label's posterior (log-space and normalized probability).
type Score struct {
	Label   string
	LogProb float64
	Prob    float64
}

// Predict returns the best label and the full normalized posterior,
// most-probable first.
func (m *Model) Predict(text string) (string, []Score, error) {
	if m == nil || m.TotalDocs == 0 {
		return "", nil, ErrNoTraining
	}
	feats := Features(text, m.UseBigrams)
	scores := make([]Score, 0, len(m.Labels))
	for _, label := range m.Labels {
		lp := math.Log(float64(m.DocCount[label]) / float64(m.TotalDocs))
		denom := float64(m.TokenCount[label] + m.Vocabulary + 1)
		counts := m.TokenByWord[label]
		for _, f := range feats {
			lp += math.Log((float64(counts[f]) + 1) / denom)
		}
		scores = append(scores, Score{Label: label, LogProb: lp})
	}
	normalize(scores)
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].LogProb > scores[j].LogProb })
	return scores[0].Label, scores, nil
}

// normalize converts log-probabilities to a normalized distribution using
// the log-sum-exp trick.
func normalize(scores []Score) {
	maxLP := math.Inf(-1)
	for _, s := range scores {
		if s.LogProb > maxLP {
			maxLP = s.LogProb
		}
	}
	var sum float64
	for i := range scores {
		scores[i].Prob = math.Exp(scores[i].LogProb - maxLP)
		sum += scores[i].Prob
	}
	if sum > 0 {
		for i := range scores {
			scores[i].Prob /= sum
		}
	}
}

// Marshal serializes the model for storage.
func (m *Model) Marshal() ([]byte, error) { return json.Marshal(m) }

// Load deserializes a model.
func Load(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("detect: load model: %w", err)
	}
	if m.TotalDocs == 0 {
		return nil, ErrNoTraining
	}
	return &m, nil
}
