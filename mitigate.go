package smishkit

import (
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/detect"
	"github.com/smishkit/smishkit/internal/xdrfilter"
)

// The mitigation layer implements the paper's §7.2 recommendations as
// reusable components: a multi-class smishing detector trained on the
// labeled dataset, and an operator-side XDR filter that chains sender
// plausibility, shortened-URL expansion against a blocklist, and the
// detector.

// Re-exported mitigation types.
type (
	// DetectorDoc is one labeled training document.
	DetectorDoc = detect.Doc
	// Detector is a trained multi-class Naive Bayes model.
	Detector = detect.Model
	// DetectorEvaluation summarizes held-out performance.
	DetectorEvaluation = detect.Evaluation
	// Filter is the operator-side XDR filtering stage.
	Filter = xdrfilter.Filter
	// FilterConfig assembles a Filter.
	FilterConfig = xdrfilter.Config
	// FilterVerdict is one message's filtering outcome.
	FilterVerdict = xdrfilter.Verdict
)

// TrainDetector fits the multi-class model on labeled documents.
func TrainDetector(docs []DetectorDoc, bigrams bool) (*Detector, error) {
	return detect.Train(docs, bigrams)
}

// EvaluateDetector scores a model on held-out documents.
func EvaluateDetector(m *Detector, test []DetectorDoc) (DetectorEvaluation, error) {
	return detect.Evaluate(m, test)
}

// NewFilter builds an XDR filter.
func NewFilter(cfg FilterConfig) *Filter { return xdrfilter.New(cfg) }

// TrainingDocs converts a world's ground truth into detector training
// documents: every message labeled with its scam type plus hamCount benign
// texts labeled "ham".
func TrainingDocs(w *World, hamSeed int64, hamCount int) []DetectorDoc {
	docs := make([]DetectorDoc, 0, len(w.Messages)+hamCount)
	for _, m := range w.Messages {
		docs = append(docs, DetectorDoc{Text: m.Text, Label: string(m.ScamType)})
	}
	for _, ham := range corpus.GenerateHam(hamSeed, hamCount) {
		docs = append(docs, DetectorDoc{Text: ham, Label: "ham"})
	}
	return docs
}
