package urlinfo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	info, err := Parse("https://secure-login.sbi-kyc.top/verify?acc=1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Host != "secure-login.sbi-kyc.top" {
		t.Errorf("Host = %q", info.Host)
	}
	if info.Domain != "sbi-kyc.top" {
		t.Errorf("Domain = %q", info.Domain)
	}
	if info.TLD != "top" || info.Class != ClassGeneric {
		t.Errorf("TLD = %q class %q", info.TLD, info.Class)
	}
	if info.Shortener != "" || info.IsAPK {
		t.Errorf("unexpected flags: %+v", info)
	}
}

func TestParseSchemeless(t *testing.T) {
	info, err := Parse("bit.ly/3xYz")
	if err != nil {
		t.Fatal(err)
	}
	if info.Shortener != "bit.ly" {
		t.Errorf("Shortener = %q, want bit.ly", info.Shortener)
	}
	if info.Class != ClassCountryCode {
		t.Errorf("ly class = %q, want country-code", info.Class)
	}
}

func TestParseDefanged(t *testing.T) {
	info, err := Parse("hxxps://ceskaposta[.]online/PostaOnlineTracking.apk")
	if err != nil {
		t.Fatal(err)
	}
	if info.Domain != "ceskaposta.online" {
		t.Errorf("Domain = %q", info.Domain)
	}
	if !info.IsAPK {
		t.Error("IsAPK = false, want true")
	}
	if info.URL.Scheme != "https" {
		t.Errorf("Scheme = %q", info.URL.Scheme)
	}
}

func TestParseFreeHosting(t *testing.T) {
	info, err := Parse("https://sa-krs.web.app/?d=s1")
	if err != nil {
		t.Fatal(err)
	}
	if info.FreeHosting != "web.app" {
		t.Errorf("FreeHosting = %q", info.FreeHosting)
	}
	if info.Domain != "sa-krs.web.app" {
		t.Errorf("Domain = %q, want sa-krs.web.app", info.Domain)
	}
	if info.EffectiveTLD != "web.app" {
		t.Errorf("EffectiveTLD = %q", info.EffectiveTLD)
	}
}

func TestParseMessaging(t *testing.T) {
	info, err := Parse("https://wa.me/447700900123")
	if err != nil {
		t.Fatal(err)
	}
	if info.Messaging != "WhatsApp" {
		t.Errorf("Messaging = %q", info.Messaging)
	}
}

func TestParseMultiLabelCC(t *testing.T) {
	info, err := Parse("http://parcel.royalmail-fee.co.uk/pay")
	if err != nil {
		t.Fatal(err)
	}
	if info.Domain != "royalmail-fee.co.uk" {
		t.Errorf("Domain = %q", info.Domain)
	}
	if info.EffectiveTLD != "co.uk" {
		t.Errorf("EffectiveTLD = %q", info.EffectiveTLD)
	}
	if info.Class != ClassCountryCode {
		t.Errorf("Class = %q", info.Class)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "http://"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		tld  string
		want TLDClass
	}{
		{"com", ClassGeneric},
		{"info", ClassGeneric},
		{"online", ClassGeneric},
		{"uk", ClassCountryCode},
		{"in", ClassCountryCode},
		{"ly", ClassCountryCode},
		{"biz", ClassGenericRestricted},
		{"pro", ClassGenericRestricted},
		{"gov", ClassSponsored},
		{"museum", ClassSponsored},
		{"arpa", ClassInfrastructure},
		{"test", ClassTest},
		{"zz", ClassCountryCode},   // unlisted 2-letter
		{"newthing", ClassGeneric}, // unlisted long alpha
		{"x1", ClassUnknown},       // non-alpha short
		{".COM", ClassGeneric},     // case/dot tolerant
	}
	for _, c := range cases {
		if got := Classify(c.tld); got != c.want {
			t.Errorf("Classify(%q) = %q, want %q", c.tld, got, c.want)
		}
	}
}

func TestRefang(t *testing.T) {
	cases := map[string]string{
		"hxxp://evil[.]com/a":                        "http://evil.com/a",
		"example(dot)com":                            "example.com",
		"https://ok.com":                             "https://ok.com",
		"download[.]china-telecom[.]cn/internet.apk": "download.china-telecom.cn/internet.apk",
	}
	for in, want := range cases {
		if got := Refang(in); got != want {
			t.Errorf("Refang(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExtractURLsSimple(t *testing.T) {
	text := "Your parcel is held. Pay at https://evri-fee.top/pay now."
	urls := ExtractURLs(text)
	if len(urls) != 1 || urls[0] != "https://evri-fee.top/pay" {
		t.Errorf("ExtractURLs = %v", urls)
	}
}

func TestExtractURLsWrapped(t *testing.T) {
	// URL split across two lines like a phone-screenshot rendering.
	text := "SBI: your account is blocked, verify at https://sbi-verif\nication.top/kyc today"
	urls := ExtractURLs(text)
	if len(urls) != 1 {
		t.Fatalf("ExtractURLs = %v, want 1", urls)
	}
	if urls[0] != "https://sbi-verification.top/kyc" {
		t.Errorf("wrapped url = %q", urls[0])
	}
}

func TestExtractURLsBareDomain(t *testing.T) {
	urls := ExtractURLs("reply or visit cutt.ly/abc1 to stop")
	if len(urls) != 1 || urls[0] != "cutt.ly/abc1" {
		t.Errorf("ExtractURLs = %v", urls)
	}
}

func TestExtractURLsDedup(t *testing.T) {
	urls := ExtractURLs("go to bit.ly/x and again bit.ly/x")
	if len(urls) != 1 {
		t.Errorf("dedup failed: %v", urls)
	}
}

func TestExtractURLsFiltersNoise(t *testing.T) {
	urls := ExtractURLs("app v1.2.3 released, see report.pdf for 3.14 details")
	if len(urls) != 0 {
		t.Errorf("noise matched: %v", urls)
	}
}

func TestExtractURLsTrailingPunctuation(t *testing.T) {
	urls := ExtractURLs("Visit https://evil.com/a, now!")
	if len(urls) != 1 || urls[0] != "https://evil.com/a" {
		t.Errorf("ExtractURLs = %v", urls)
	}
}

func TestExtractURLsNone(t *testing.T) {
	if urls := ExtractURLs("Hi mum, my phone broke. Text me back"); len(urls) != 0 {
		t.Errorf("false positive: %v", urls)
	}
}

// Property: every extracted URL parses, and parsing is stable under refang.
func TestExtractThenParseProperty(t *testing.T) {
	samples := []string{
		"pay https://a-b.com/x?q=1 or http://c.co/y",
		"visit example[.]com now",
		"hxxps://bad.top/dl.apk asap",
		"plain text with no links at all",
		"wa.me/123456 conversation",
	}
	for _, s := range samples {
		for _, u := range ExtractURLs(s) {
			info, err := Parse(u)
			if err != nil {
				t.Errorf("extracted %q does not parse: %v", u, err)
				continue
			}
			if info.Host == "" || strings.Contains(info.Host, "[") {
				t.Errorf("bad host %q from %q", info.Host, u)
			}
		}
	}
}

// Property: Parse(Refang(x)) == Parse(x) for any defanged form.
func TestRefangIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		once := Refang(s)
		return Refang(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: registrable domain is always a suffix of the host.
func TestDomainSuffixProperty(t *testing.T) {
	hosts := []string{
		"a.b.c.example.com", "x.co.uk", "deep.sa-krs.web.app",
		"bit.ly", "single", "a.b.ngrok.io",
	}
	for _, h := range hosts {
		info, err := Parse("http://" + h + "/")
		if err != nil {
			t.Fatalf("parse %q: %v", h, err)
		}
		if !strings.HasSuffix(info.Host, info.Domain) {
			t.Errorf("domain %q not a suffix of host %q", info.Domain, info.Host)
		}
		if !strings.HasSuffix(info.Domain, info.EffectiveTLD) {
			t.Errorf("etld %q not a suffix of domain %q", info.EffectiveTLD, info.Domain)
		}
	}
}
