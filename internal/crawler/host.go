// Package crawler implements the §6 active-analysis case study: a crawler
// that follows shortened URLs through redirect chains with different device
// personas and captures drive-by APK downloads, plus a SiteServer that
// simulates the scammer hosting it crawls — phishing pages for desktop
// browsers, automatic APK delivery for Android user agents, and hard 404s
// after takedown.
package crawler

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/malware"
)

// SiteBehavior configures how one hosted domain responds.
type SiteBehavior struct {
	Domain        string
	Brand         string    // impersonated brand shown on the page
	ServesAPK     bool      // Android UAs get redirected to an APK download
	MalwareFamily string    // family of the dropped APK
	TakenDown     bool      // hosting revoked: everything 404s
	DownAt        time.Time // scheduled takedown instant (zero: none)
}

// SiteServer multiplexes many phishing domains behind one handler, selected
// by Host header or an explicit "?site=" override.
type SiteServer struct {
	mu    sync.RWMutex
	sites map[string]SiteBehavior
	clock func() time.Time
}

// NewSiteServer returns an empty host.
func NewSiteServer() *SiteServer {
	return &SiteServer{sites: make(map[string]SiteBehavior), clock: time.Now}
}

// SetClock overrides the takedown-schedule time source (simulated time).
func (s *SiteServer) SetClock(clock func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = clock
}

// down reports whether a site is dead at the server's current time.
func (s *SiteServer) down(b SiteBehavior) bool {
	if b.TakenDown {
		return true
	}
	return !b.DownAt.IsZero() && !s.clock().Before(b.DownAt)
}

// Add registers (or replaces) a domain's behavior.
func (s *SiteServer) Add(b SiteBehavior) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sites[strings.ToLower(b.Domain)] = b
}

// TakeDown flips a domain to 404s, reporting whether it existed.
func (s *SiteServer) TakeDown(domain string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.sites[strings.ToLower(domain)]
	if ok {
		b.TakenDown = true
		s.sites[strings.ToLower(domain)] = b
	}
	return ok
}

func (s *SiteServer) site(r *http.Request) (SiteBehavior, bool) {
	name := r.URL.Query().Get("site")
	if name == "" {
		name = r.Host
		if i := strings.LastIndex(name, ":"); i >= 0 {
			name = name[:i]
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Exact match, then registrable-suffix match for subdomain hosts.
	if b, ok := s.sites[strings.ToLower(name)]; ok {
		return b, true
	}
	labels := strings.Split(strings.ToLower(name), ".")
	for i := 1; i < len(labels)-1; i++ {
		if b, ok := s.sites[strings.Join(labels[i:], ".")]; ok {
			return b, true
		}
	}
	return SiteBehavior{}, false
}

// isAndroidUA reports whether the request announces an Android device.
func isAndroidUA(r *http.Request) bool {
	return strings.Contains(strings.ToLower(r.Header.Get("User-Agent")), "android")
}

// Handler serves the simulated phishing sites:
//
//	GET /<any path>        phishing page (desktop) | 302 to /?d=s1 (Android, APK sites)
//	GET /?d=s1             the APK payload (any UA)
func (s *SiteServer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.site(r)
		if !ok {
			http.NotFound(w, r)
			return
		}
		s.mu.RLock()
		dead := s.down(b)
		s.mu.RUnlock()
		if dead {
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("d") == "s1" && b.ServesAPK {
			payload := malware.APKPayload(b.Domain, b.MalwareFamily)
			w.Header().Set("Content-Type", "application/vnd.android.package-archive")
			w.Header().Set("Content-Disposition", `attachment; filename="s1.apk"`)
			_, _ = w.Write(payload)
			return
		}
		if b.ServesAPK && isAndroidUA(r) {
			// Device-dependent redirect: Android visitors are pushed to
			// the drive-by download (the sa-krs.web.app pattern from §6).
			q := "?d=s1"
			if site := r.URL.Query().Get("site"); site != "" {
				q += "&site=" + site
			}
			http.Redirect(w, r, "/"+q, http.StatusFound)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!doctype html><html><head><title>%s - Secure Login</title></head>
<body><h1>%s</h1><form method="post" action="/submit">
<input name="user" placeholder="Username"><input name="pass" type="password" placeholder="Password">
<button>Sign in</button></form></body></html>`, b.Brand, b.Brand)
	})
}
