// Package urlinfo parses and classifies the URLs found in smishing texts:
// registrable-domain extraction, top-level-domain classification against the
// IANA root-zone groups (§4.3, Tables 6 and 16), URL-shortener detection
// against the curated service list (§3.3.3, Table 5), and handling for the
// defanged forms users post ("hxxp", "example[.]com").
package urlinfo

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
)

// TLDClass is an IANA root-zone database group (§4.3, Table 16).
type TLDClass string

// The IANA classification groups. Test TLDs never appear in the root zone
// but the class exists in the taxonomy.
const (
	ClassGeneric           TLDClass = "generic"            // gTLD
	ClassCountryCode       TLDClass = "country-code"       // ccTLD
	ClassGenericRestricted TLDClass = "generic-restricted" // grTLD
	ClassSponsored         TLDClass = "sponsored"          // sTLD
	ClassInfrastructure    TLDClass = "infrastructure"     // iTLD
	ClassTest              TLDClass = "test"
	ClassUnknown           TLDClass = "unknown"
)

// ccTLDs is the country-code set relevant to the corpus plus the common
// ccTLDs repurposed by shortening services (ly, gd, de, co, ws, cc, fr...).
var ccTLDs = map[string]bool{
	"ac": true, "ae": true, "ar": true, "at": true, "au": true, "be": true,
	"bg": true, "br": true, "ca": true, "cc": true, "ch": true, "cl": true,
	"cn": true, "co": true, "cy": true, "cz": true, "de": true, "dk": true,
	"do": true, "es": true, "eu": true, "fi": true, "fr": true, "gd": true,
	"gh": true, "gl": true, "gr": true, "gy": true, "hk": true, "hu": true,
	"id": true, "ie": true, "il": true, "in": true, "io": true, "ir": true,
	"it": true, "jp": true, "ke": true, "kr": true, "lk": true, "lu": true,
	"ly": true, "ma": true, "me": true, "mw": true, "mx": true, "my": true,
	"ng": true, "nl": true, "no": true, "nz": true, "ph": true, "pk": true,
	"pl": true, "pt": true, "qa": true, "ro": true, "rs": true, "ru": true,
	"sa": true, "se": true, "sg": true, "sh": true, "sk": true, "th": true,
	"tk": true, "tr": true, "tv": true, "tw": true, "ua": true, "uk": true,
	"us": true, "vn": true, "za": true,
}

// genericRestricted and sponsored follow the IANA root-zone database.
var genericRestrictedTLDs = map[string]bool{"biz": true, "name": true, "pro": true}

var sponsoredTLDs = map[string]bool{
	"aero": true, "asia": true, "cat": true, "coop": true, "edu": true,
	"gov": true, "int": true, "jobs": true, "mil": true, "museum": true,
	"post": true, "tel": true, "travel": true, "xxx": true,
}

// gTLDs: legacy generics plus the new-gTLD set smishing abuses (Table 6).
var gTLDs = map[string]bool{
	"com": true, "net": true, "org": true, "info": true, "app": true,
	"online": true, "top": true, "xyz": true, "site": true, "club": true,
	"shop": true, "vip": true, "icu": true, "live": true, "link": true,
	"work": true, "buzz": true, "cyou": true, "rest": true, "support": true,
	"help": true, "click": true, "today": true, "world": true, "life": true,
	"store": true, "tech": true, "space": true, "fun": true, "website": true,
	"page": true, "dev": true, "cloud": true, "email": true, "digital": true,
	"finance": true, "bank": true, "money": true, "express": true, "services": true,
	"center": true, "one": true, "run": true, "best": true, "monster": true,
	"quest": true, "bar": true, "sbs": true, "pw": true, "win": true,
}

// multiLabelSuffixes are effective TLDs with two labels (a minimal embedded
// public-suffix list covering the corpus and the free-hosting platforms the
// paper highlights: web.app, ngrok.io, firebaseapp.com, herokuapp.com...).
var multiLabelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.in": true, "net.in": true, "org.in": true, "gov.in": true,
	"co.nz": true, "co.za": true, "com.br": true, "com.mx": true,
	"com.es": true, "com.cn": true, "com.hk": true, "com.sg": true,
	"co.jp": true, "ne.jp": true, "or.jp": true, "co.kr": true,
	"com.tr": true, "com.ph": true, "com.my": true, "com.pk": true,
	"web.app":         true,
	"firebaseapp.com": true,
	"ngrok.io":        true,
	"herokuapp.com":   true,
	"vercel.app":      true,
	"netlify.app":     true,
	"github.io":       true,
	"pages.dev":       true,
	"workers.dev":     true,
	"repl.co":         true,
	"glitch.me":       true,
	"weebly.com":      true,
	"wixsite.com":     true,
	"blogspot.com":    true,
	"duckdns.org":     true,
}

// FreeHostingSuffixes lists the free website-building platforms §4.3 calls
// out. Keys are effective suffixes matched against registrable domains.
var FreeHostingSuffixes = []string{
	"web.app", "firebaseapp.com", "ngrok.io", "herokuapp.com",
	"vercel.app", "netlify.app", "github.io", "pages.dev", "workers.dev",
	"repl.co", "glitch.me", "weebly.com", "wixsite.com", "blogspot.com",
}

// Shorteners is the curated list of URL shortening services (the paper
// manually assembled 33; Table 5 reports the top abused ones). Keyed by
// host, value is the service's display name.
var Shorteners = map[string]string{
	"bit.ly":      "bit.ly",
	"is.gd":       "is.gd",
	"cutt.ly":     "cutt.ly",
	"tinyurl.com": "tinyurl.com",
	"bit.do":      "bit.do",
	"shrtco.de":   "shrtco.de",
	"rb.gy":       "rb.gy",
	"t.ly":        "t.ly",
	"bitly.ws":    "bitly.ws",
	"t.co":        "t.co",
	"ow.ly":       "ow.ly",
	"buff.ly":     "buff.ly",
	"rebrand.ly":  "rebrand.ly",
	"shorturl.at": "shorturl.at",
	"tiny.cc":     "tiny.cc",
	"s.id":        "s.id",
	"v.gd":        "v.gd",
	"qr.ae":       "qr.ae",
	"lnkd.in":     "lnkd.in",
	"goo.gl":      "goo.gl",
	"u.to":        "u.to",
	"x.co":        "x.co",
	"clck.ru":     "clck.ru",
	"soo.gd":      "soo.gd",
	"urlz.fr":     "urlz.fr",
	"gg.gg":       "gg.gg",
	"shorte.st":   "shorte.st",
	"adf.ly":      "adf.ly",
	"chilp.it":    "chilp.it",
	"vu.fr":       "vu.fr",
	"lc.cx":       "lc.cx",
	"short.io":    "short.io",
	"kutt.it":     "kutt.it",
}

// MessagingHosts are hosts used to funnel victims into chat conversations
// rather than web phishing (wa.me in §4.2).
var MessagingHosts = map[string]string{
	"wa.me":     "WhatsApp",
	"t.me":      "Telegram",
	"m.me":      "Messenger",
	"signal.me": "Signal",
	"line.me":   "LINE",
}

// Info is the parsed classification of a single URL.
type Info struct {
	Raw          string   // input as given (possibly defanged)
	URL          *url.URL // parsed, after refanging
	Host         string   // lowercase host without port
	Domain       string   // registrable domain (eTLD+1), e.g. "sbi-kyc.top"
	TLD          string   // last label, e.g. "top"
	EffectiveTLD string   // effective suffix, e.g. "web.app" or "top"
	Class        TLDClass // IANA class of TLD
	Shortener    string   // shortener service name, "" if none
	Messaging    string   // messaging platform name, "" if none
	FreeHosting  string   // free-hosting suffix, "" if none
	IsAPK        bool     // path ends in .apk (direct malware drop, §6)
}

// ErrNoHost is returned for URLs without a parseable host.
var ErrNoHost = errors.New("urlinfo: url has no host")

// Refang undoes the defusing conventions of user reports:
// hxxp(s) -> http(s), [.]/(.)/{.} -> ., [:]/(:) -> :, spaces around dots.
func Refang(s string) string {
	r := strings.TrimSpace(s)
	for _, pair := range [][2]string{
		{"hxxps://", "https://"}, {"hxxp://", "http://"},
		{"hXXps://", "https://"}, {"hXXp://", "http://"},
		{"[.]", "."}, {"(.)", "."}, {"{.}", "."},
		{"[dot]", "."}, {"(dot)", "."},
		{"[:]", ":"}, {"(:)", ":"},
		{"[/]", "/"},
		{" . ", "."},
	} {
		r = strings.ReplaceAll(r, pair[0], pair[1])
	}
	return r
}

// Parse classifies a (possibly defanged, possibly scheme-less) URL string.
func Parse(raw string) (Info, error) {
	s := Refang(raw)
	if s == "" {
		return Info{}, ErrNoHost
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return Info{}, fmt.Errorf("urlinfo: parse %q: %w", raw, err)
	}
	host := strings.ToLower(u.Hostname())
	host = strings.TrimSuffix(host, ".")
	if host == "" {
		return Info{}, ErrNoHost
	}
	info := Info{Raw: raw, URL: u, Host: host}
	info.Domain, info.EffectiveTLD = registrable(host)
	if i := strings.LastIndex(host, "."); i >= 0 {
		info.TLD = host[i+1:]
	} else {
		info.TLD = host
	}
	info.Class = Classify(info.TLD)
	if name, ok := Shorteners[host]; ok {
		info.Shortener = name
	} else if name, ok := Shorteners[info.Domain]; ok {
		info.Shortener = name
	}
	if name, ok := MessagingHosts[host]; ok {
		info.Messaging = name
	}
	for _, suf := range FreeHostingSuffixes {
		if info.Domain == suf || strings.HasSuffix(host, "."+suf) {
			info.FreeHosting = suf
			break
		}
	}
	info.IsAPK = strings.HasSuffix(strings.ToLower(u.Path), ".apk")
	return info, nil
}

// registrable returns the eTLD+1 for host and the effective suffix used.
// For a bare suffix ("co.uk") or single label it returns the host itself.
func registrable(host string) (domain, suffix string) {
	labels := strings.Split(host, ".")
	if len(labels) <= 1 {
		return host, host
	}
	// Longest matching multi-label suffix first.
	for take := min(3, len(labels)-1); take >= 2; take-- {
		cand := strings.Join(labels[len(labels)-take:], ".")
		if multiLabelSuffixes[cand] {
			return strings.Join(labels[len(labels)-take-1:], "."), cand
		}
	}
	suffix = labels[len(labels)-1]
	return strings.Join(labels[len(labels)-2:], "."), suffix
}

// Classify returns the IANA group for a TLD label (without dot).
func Classify(tld string) TLDClass {
	t := strings.ToLower(strings.TrimPrefix(tld, "."))
	switch {
	case t == "arpa":
		return ClassInfrastructure
	case t == "test" || t == "example" || t == "invalid" || t == "localhost":
		return ClassTest
	case sponsoredTLDs[t]:
		return ClassSponsored
	case genericRestrictedTLDs[t]:
		return ClassGenericRestricted
	case ccTLDs[t]:
		return ClassCountryCode
	case gTLDs[t]:
		return ClassGeneric
	case len(t) == 2 && isAlpha(t):
		// Two-letter alphabetic TLDs are country codes by construction.
		return ClassCountryCode
	case len(t) > 2 && isAlpha(t):
		// Unlisted longer TLDs default to the (open) generic group.
		return ClassGeneric
	default:
		return ClassUnknown
	}
}

func isAlpha(s string) bool {
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return len(s) > 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
