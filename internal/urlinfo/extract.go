package urlinfo

import (
	"regexp"
	"strings"
)

// urlPattern matches http(s) URLs and bare domains with a known-looking TLD
// followed by an optional path. It is deliberately permissive: smishing URLs
// use exotic TLDs, and validation happens in Parse.
var urlPattern = regexp.MustCompile(
	`(?i)\b(?:(?:https?|hxxps?)://[^\s<>"']+|` +
		`(?:[a-z0-9](?:[a-z0-9-]*[a-z0-9])?\.)+[a-z]{2,24}(?:/[^\s<>"']*)?)`)

// trailingJunk strips punctuation that sentence context glues onto URLs.
const trailingJunk = ".,;:!?)]}'\"”’»"

// ExtractURLs finds URL candidates in free text. It first rejoins URLs that
// screenshots wrap across lines: a line ending mid-URL (no terminal
// punctuation) followed by a line starting with a path/domain continuation
// is fused before matching — the exact failure mode §3.2 reports for
// Google Vision output.
func ExtractURLs(text string) []string {
	fused := FuseWrappedLines(text)
	matches := urlPattern.FindAllString(fused, -1)
	seen := make(map[string]bool, len(matches))
	var out []string
	for _, m := range matches {
		m = strings.TrimRight(m, trailingJunk)
		if m == "" || seen[m] {
			continue
		}
		if looksLikeVersionOrNumber(m) || looksLikeFilename(m) {
			continue
		}
		seen[m] = true
		out = append(out, m)
	}
	return out
}

// FuseWrappedLines rejoins line-broken URLs: if a line ends inside a URL and
// the next line looks like its continuation (starts with url-safe characters
// and the fragment contains a slash or dot already), they are concatenated
// without whitespace.
func FuseWrappedLines(text string) string {
	lines := strings.Split(text, "\n")
	var b strings.Builder
	for i := 0; i < len(lines); i++ {
		line := strings.TrimRight(lines[i], " \t")
		for i+1 < len(lines) && endsInsideURL(line) && startsLikeContinuation(strings.TrimSpace(lines[i+1])) {
			i++
			line += strings.TrimSpace(lines[i])
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// endsInsideURL reports whether line's tail looks like an unterminated URL.
func endsInsideURL(line string) bool {
	idx := strings.LastIndexAny(line, " \t")
	tail := line[idx+1:]
	if tail == "" {
		return false
	}
	lower := strings.ToLower(tail)
	if strings.Contains(lower, "://") {
		return true
	}
	// A dotted token with no sentence-final punctuation, ending in a
	// letter, digit, slash, dot, or hyphen is likely a wrapped URL start.
	if !strings.Contains(tail, ".") {
		return false
	}
	last := tail[len(tail)-1]
	switch {
	case last == '/' || last == '.' || last == '-' || last == '=':
		return true
	case (last >= 'a' && last <= 'z') || (last >= 'A' && last <= 'Z') || (last >= '0' && last <= '9'):
		// Only treat as wrapped if the token already looks like a URL
		// (has a scheme or a path component); bare "end of sentence.com"
		// style false fusions are worse than missed fusions.
		return strings.Contains(tail, "/") || strings.HasPrefix(lower, "www.")
	}
	return false
}

// startsLikeContinuation reports whether s plausibly continues a URL.
func startsLikeContinuation(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '/' || c == '?' || c == '=' || c == '&' || c == '%' || c == '-' || c == '.' || c == '_') {
		return false
	}
	// Continuations are single URL-safe tokens, not prose.
	if strings.ContainsAny(s, " \t") {
		first := strings.Fields(s)[0]
		return len(first) >= 4 && !strings.ContainsAny(first, ",;")
	}
	return true
}

// looksLikeVersionOrNumber filters "v1.2.3"-style and decimal matches.
func looksLikeVersionOrNumber(s string) bool {
	stripped := strings.Map(func(r rune) rune {
		if r >= '0' && r <= '9' || r == '.' || r == 'v' || r == 'V' {
			return -1
		}
		return r
	}, s)
	return stripped == ""
}

// looksLikeFilename filters common non-URL dotted tokens ("report.pdf" with
// no slash or scheme). APK paths keep flowing through since drive-by links
// always carry a host.
func looksLikeFilename(s string) bool {
	if strings.Contains(s, "://") || strings.Contains(s, "/") {
		return false
	}
	lower := strings.ToLower(s)
	for _, ext := range []string{".pdf", ".doc", ".docx", ".xls", ".png", ".jpg", ".jpeg", ".txt", ".csv", ".zip"} {
		if strings.HasSuffix(lower, ext) {
			return true
		}
	}
	return false
}
