package smishkit

import (
	"io"

	"github.com/smishkit/smishkit/internal/cluster"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/monitor"
	"github.com/smishkit/smishkit/internal/release"
)

// Analysis-layer re-exports: campaign attribution, active URL-lifetime
// monitoring, and the published-dataset format.
type (
	// CampaignCluster is one attributed group of reports.
	CampaignCluster = cluster.Campaign
	// ClusterOptions selects the linking signals.
	ClusterOptions = cluster.Options
	// LifetimeMonitor polls URLs until takedown.
	LifetimeMonitor = monitor.Monitor
	// LifetimeSummary condenses a monitoring run.
	LifetimeSummary = monitor.Summary
	// ReleaseRecord is one row of the published dataset (Appendix C).
	ReleaseRecord = release.Record
)

// ClusterCampaigns groups curated records into campaigns by shared
// infrastructure (and optionally shared templates).
func ClusterCampaigns(ds *Dataset, opts ClusterOptions) []*CampaignCluster {
	return cluster.Cluster(ds.Records, opts)
}

// DefaultClusterOptions links on domains and senders.
func DefaultClusterOptions() ClusterOptions { return cluster.DefaultOptions() }

// WriteRelease exports a world in the paper's pseudo-anonymized dataset
// format; redaction is always on (use internal/release directly for raw
// debugging exports).
func WriteRelease(w io.Writer, world *World) (int, error) {
	return release.Write(w, world, release.Options{})
}

// ReadRelease loads a published dataset.
func ReadRelease(r io.Reader) ([]ReleaseRecord, error) { return release.Read(r) }

// ValidateRelease checks the anonymization invariants of a release.
func ValidateRelease(records []ReleaseRecord) error { return release.Validate(records, true) }

// GenerateHam produces benign SMS texts for detector training.
func GenerateHam(seed int64, n int) []string { return corpus.GenerateHam(seed, n) }
