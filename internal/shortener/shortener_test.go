package shortener

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func link() Link {
	return Link{
		Service:   "bit.ly",
		Code:      "3xYz9",
		Target:    "https://sbi-kyc.top/verify",
		CreatedAt: time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC),
	}
}

func TestResolve(t *testing.T) {
	s := NewService()
	s.Add(link())
	target, err := s.Resolve("bit.ly", "3xYz9")
	if err != nil {
		t.Fatal(err)
	}
	if target != "https://sbi-kyc.top/verify" {
		t.Errorf("target = %q", target)
	}
	// Case-insensitive service, case-sensitive code (bit.ly semantics).
	if _, err := s.Resolve("BIT.LY", "3xYz9"); err != nil {
		t.Errorf("service case: %v", err)
	}
	if _, err := s.Resolve("bit.ly", "3xyz9"); !errors.Is(err, ErrNotFound) {
		t.Errorf("code case folded: %v", err)
	}
}

func TestResolveUnknown(t *testing.T) {
	s := NewService()
	if _, err := s.Resolve("is.gd", "zz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestTakeDown(t *testing.T) {
	s := NewService()
	s.Add(link())
	if !s.TakeDown("bit.ly", "3xYz9") {
		t.Fatal("takedown missed existing link")
	}
	if _, err := s.Resolve("bit.ly", "3xYz9"); !errors.Is(err, ErrTakenDown) {
		t.Errorf("err = %v, want ErrTakenDown", err)
	}
	if s.TakeDown("bit.ly", "ghost") {
		t.Error("takedown of unknown code reported success")
	}
}

func TestClickCounting(t *testing.T) {
	s := NewService()
	s.Add(link())
	for i := 0; i < 5; i++ {
		if _, err := s.Resolve("bit.ly", "3xYz9"); err != nil {
			t.Fatal(err)
		}
	}
	_, _, clicks := s.Stats()
	if clicks != 5 {
		t.Errorf("clicks = %d", clicks)
	}
}

func TestStats(t *testing.T) {
	s := NewService()
	s.Add(link())
	s.Add(Link{Service: "is.gd", Code: "a", Target: "https://x.com", TakenDown: true})
	total, down, _ := s.Stats()
	if total != 2 || down != 1 {
		t.Errorf("stats = %d/%d", total, down)
	}
}

func TestHTTPRedirect(t *testing.T) {
	s := NewService()
	s.Add(link())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	client := &http.Client{CheckRedirect: func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse // don't follow
	}}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/3xYz9", nil)
	req.Host = "bit.ly"
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "https://sbi-kyc.top/verify" {
		t.Errorf("location = %q", loc)
	}
}

func TestHTTPHostQueryOverride(t *testing.T) {
	s := NewService()
	s.Add(link())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	client := &http.Client{CheckRedirect: func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/3xYz9?host=bit.ly")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestHTTPGoneAndNotFound(t *testing.T) {
	s := NewService()
	s.Add(Link{Service: "bit.ly", Code: "dead", Target: "https://x.com", TakenDown: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/dead?host=bit.ly")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("taken-down status = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/missing?host=bit.ly")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing status = %d", resp.StatusCode)
	}
}

func TestExpandClient(t *testing.T) {
	s := NewService()
	s.Add(link())
	s.Add(Link{Service: "is.gd", Code: "gone", Target: "https://x.com", TakenDown: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx := context.Background()
	target, err := c.Expand(ctx, "bit.ly", "3xYz9")
	if err != nil {
		t.Fatal(err)
	}
	if target != "https://sbi-kyc.top/verify" {
		t.Errorf("target = %q", target)
	}
	if _, err := c.Expand(ctx, "is.gd", "gone"); !errors.Is(err, ErrTakenDown) {
		t.Errorf("gone err = %v", err)
	}
	if _, err := c.Expand(ctx, "bit.ly", "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing err = %v", err)
	}
}
