package shard

import (
	"context"
	"fmt"

	"github.com/smishkit/smishkit/internal/batchmux"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/enrichcache"
	"github.com/smishkit/smishkit/internal/faultinject"
	"github.com/smishkit/smishkit/internal/resilience"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Enricher is one shard's processing seam: it enriches and annotates a
// routed slice of curated records and returns them in the same order. The
// local implementation is a Stack; the multi-process mode substitutes a
// RemoteEnricher that ships the slice to a worker process over localhost.
type Enricher interface {
	EnrichAnnotate(ctx context.Context, recs []core.Record) ([]core.Record, error)
}

// StackStats is one shard's tier scoreboard. The maps are nil for tiers
// the stack was built without.
type StackStats struct {
	// Enriched counts records this shard has enriched since start.
	Enriched int64 `json:"enriched"`
	// Cache is the shard's enrichment-cache scoreboard.
	Cache enrichcache.Stats `json:"cache,omitempty"`
	// Batch is the shard's batching scoreboard.
	Batch batchmux.Stats `json:"batch,omitempty"`
	// Resilience is the shard's circuit-breaker scoreboard.
	Resilience resilience.Stats `json:"resilience,omitempty"`
}

// StatsProvider is implemented by enrichers that can report tier stats
// (the local Stack directly, the RemoteEnricher by asking its worker).
type StatsProvider interface {
	Stats() (StackStats, bool)
}

// StackConfig assembles one shard's decorator stack. Tiers whose config is
// nil are omitted; Pipeline tunes the shard's enrichment workers and
// budgets (its Telemetry field is overwritten with the stack's registry).
type StackConfig struct {
	Faults     *faultinject.Config
	Batch      *batchmux.Config
	Cache      *enrichcache.Config
	Resilience *resilience.Config
	Pipeline   core.Options
}

// Stack is one shard's private tier set over a shared base Services value:
// its own enrichment cache, batchmux windows, breaker set, and pipeline,
// all recording into the registry the stack was built with (the facade
// hands each shard a Prefixed view, so instruments land under
// "shard.<i>.*" in the one global registry).
type Stack struct {
	pipe     *core.Pipeline
	cache    *enrichcache.Cache
	batch    *batchmux.Mux
	breakers *resilience.Breakers
	enriched *telemetry.Counter
}

// NewStack builds one shard's tiers around base, in the same decorator
// order as the facade: instrumented client <- faults <- batchmux <- cache
// <- breaker <- pipeline (see smishkit.NewStudy for why).
func NewStack(base core.Services, cfg StackConfig, reg *telemetry.Registry) (*Stack, error) {
	services := base
	if cfg.Faults != nil {
		services = faultinject.New(*cfg.Faults, reg).WrapServices(services)
	}
	st := &Stack{enriched: reg.Counter("enriched")}
	if cfg.Batch != nil {
		st.batch = batchmux.New(*cfg.Batch, reg)
		services = st.batch.WrapServices(services)
	}
	if cfg.Cache != nil {
		st.cache = enrichcache.New(*cfg.Cache, reg)
		services = st.cache.WrapServices(services)
	}
	if cfg.Resilience != nil {
		st.breakers = resilience.New(*cfg.Resilience, reg)
		services = st.breakers.WrapServices(services)
		r := cfg.Resilience
		if cfg.Pipeline.RecordBudget == 0 {
			cfg.Pipeline.RecordBudget = r.RecordBudget
		}
		if cfg.Pipeline.CallTimeout == 0 {
			cfg.Pipeline.CallTimeout = r.CallTimeout
		}
		if cfg.Pipeline.AbortFailureRate == 0 {
			cfg.Pipeline.AbortFailureRate = r.AbortFailureRate
		}
		if cfg.Pipeline.MinAbortCalls == 0 {
			cfg.Pipeline.MinAbortCalls = r.MinAbortCalls
		}
	}
	cfg.Pipeline.Telemetry = reg
	// Shards never curate or stream: they receive already-curated records
	// and run the barrier enrich+annotate path over them, which preserves
	// input order exactly.
	cfg.Pipeline.Streaming = false
	pipe, err := core.NewPipeline(services, cfg.Pipeline)
	if err != nil {
		return nil, fmt.Errorf("shard: build pipeline: %w", err)
	}
	st.pipe = pipe
	return st, nil
}

// EnrichAnnotate runs the shard's pipeline over a routed record slice,
// returning the records enriched and annotated in input order.
func (st *Stack) EnrichAnnotate(ctx context.Context, recs []core.Record) ([]core.Record, error) {
	if len(recs) == 0 {
		return recs, nil
	}
	ds := &core.Dataset{Records: recs}
	if err := st.pipe.Enrich(ctx, ds); err != nil {
		return nil, err
	}
	if err := st.pipe.Annotate(ctx, ds); err != nil {
		return nil, err
	}
	st.enriched.Add(int64(len(ds.Records)))
	return ds.Records, nil
}

// Healthy reports the stack as always live: an in-process stack shares the
// caller's fate, so there is no independent failure to detect. It exists so
// local and remote shard stacks satisfy the same HealthChecker seam.
func (st *Stack) Healthy(context.Context) error { return nil }

// Stats reports the shard's tier scoreboards.
func (st *Stack) Stats() (StackStats, bool) {
	out := StackStats{Enriched: st.enriched.Value()}
	if st.cache != nil {
		out.Cache = st.cache.Stats()
	}
	if st.batch != nil {
		out.Batch = st.batch.Stats()
	}
	if st.breakers != nil {
		out.Resilience = st.breakers.Stats()
	}
	return out, true
}
