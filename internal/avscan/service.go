package avscan

import (
	"context"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Report is a VirusTotal-style aggregate scan result.
type Report struct {
	URL      string             `json:"url"`
	Verdicts map[string]Verdict `json:"verdicts"` // vendor -> verdict
	Stats    ReportStats        `json:"stats"`
}

// ReportStats counts verdicts by class.
type ReportStats struct {
	Malicious  int `json:"malicious"`
	Suspicious int `json:"suspicious"`
	Harmless   int `json:"harmless"`
}

// Store holds per-domain ground-truth detectability, fed from the corpus.
type Store struct {
	mu            sync.RWMutex
	detectability map[string]float64 // by registrable domain
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{detectability: make(map[string]float64)} }

// SetDetectability registers a domain's ground-truth detectability.
func (s *Store) SetDetectability(domain string, d float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.detectability[strings.ToLower(domain)] = d
}

// detectabilityOf resolves the detectability for a URL: the registered
// value of the longest matching domain suffix, else a deterministic
// pseudo-value.
func (s *Store) detectabilityOf(rawURL string) float64 {
	host := hostOf(rawURL)
	s.mu.RLock()
	defer s.mu.RUnlock()
	labels := strings.Split(host, ".")
	for i := 0; i < len(labels)-1; i++ {
		if d, ok := s.detectability[strings.Join(labels[i:], ".")]; ok {
			return d
		}
	}
	return DefaultDetectability(rawURL)
}

func hostOf(rawURL string) string {
	s := rawURL
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return strings.ToLower(rawURL)
	}
	return strings.ToLower(u.Hostname())
}

// Scan produces the full multi-vendor report for a URL.
func (s *Store) Scan(rawURL string) Report {
	d := s.detectabilityOf(rawURL)
	rep := Report{URL: rawURL, Verdicts: make(map[string]Verdict, len(Vendors))}
	for _, v := range Vendors {
		verdict := verdictFor(v, rawURL, d)
		rep.Verdicts[v.Name] = verdict
		switch verdict {
		case VerdictMalicious:
			rep.Stats.Malicious++
		case VerdictSuspicious:
			rep.Stats.Suspicious++
		default:
			rep.Stats.Harmless++
		}
	}
	return rep
}

// GSBResult is the Safe Browsing API answer for one URL.
type GSBResult struct {
	URL     string `json:"url"`
	Matched bool   `json:"matched"`
	Threat  string `json:"threat,omitempty"` // SOCIAL_ENGINEERING when matched
}

// GSBLookup runs the Safe Browsing check.
func (s *Store) GSBLookup(rawURL string) GSBResult {
	d := s.detectabilityOf(rawURL)
	res := GSBResult{URL: rawURL, Matched: GSBAPIDetects(rawURL, d)}
	if res.Matched {
		res.Threat = "SOCIAL_ENGINEERING"
	}
	return res
}

// TransparencyResult is the transparency-report site's answer.
type TransparencyResult struct {
	URL    string             `json:"url"`
	Status TransparencyStatus `json:"status"`
}

// Transparency runs the transparency-report check; blocked reports whether
// the site refused the automated query.
func (s *Store) Transparency(rawURL string) (TransparencyResult, bool) {
	if TransparencyBlocked(rawURL) {
		return TransparencyResult{URL: rawURL}, true
	}
	d := s.detectabilityOf(rawURL)
	return TransparencyResult{URL: rawURL, Status: TransparencyLookup(rawURL, d)}, false
}

// Server exposes three endpoints mirroring the paper's three data paths:
//
//	GET /vt/v1/scan?url=...          VirusTotal-style aggregate
//	GET /gsb/v4/lookup?url=...       Safe Browsing API
//	GET /transparency/report?url=... GSB transparency site (often 403)
type Server struct {
	store   *Store
	apiKey  string
	limiter *netutil.TokenBucket
}

// NewServer wires the store into the HTTP service.
func NewServer(store *Store, apiKey string, ratePerSec float64) *Server {
	s := &Server{store: store, apiKey: apiKey}
	if ratePerSec > 0 {
		s.limiter = netutil.NewTokenBucket(int(ratePerSec*2)+1, ratePerSec)
	}
	return s
}

// Handler returns the routed handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /vt/v1/scan", s.withURL(func(w http.ResponseWriter, u string) {
		netutil.WriteJSON(w, http.StatusOK, s.store.Scan(u))
	}))
	mux.HandleFunc("GET /gsb/v4/lookup", s.withURL(func(w http.ResponseWriter, u string) {
		netutil.WriteJSON(w, http.StatusOK, s.store.GSBLookup(u))
	}))
	mux.HandleFunc("GET /transparency/report", s.withURL(func(w http.ResponseWriter, u string) {
		res, blocked := s.store.Transparency(u)
		if blocked {
			netutil.WriteError(w, http.StatusForbidden, "automated queries are not permitted")
			return
		}
		netutil.WriteJSON(w, http.StatusOK, res)
	}))
	return netutil.RequireKey(s.apiKey, mux)
}

func (s *Server) withURL(fn func(w http.ResponseWriter, u string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil && !s.limiter.Allow() {
			netutil.WriteRateLimited(w, s.limiter.RetryAfter(1))
			return
		}
		u := r.URL.Query().Get("url")
		if u == "" {
			netutil.WriteError(w, http.StatusBadRequest, "missing url parameter")
			return
		}
		fn(w, u)
	}
}

// ErrBlocked is returned by the transparency client when the site refuses
// an automated query.
var ErrBlocked = &netutil.APIError{Status: http.StatusForbidden, Body: "blocked"}

// Client consumes all three endpoints.
type Client struct {
	API netutil.Client
}

// NewClient builds a client for the service at baseURL.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{API: netutil.Client{BaseURL: baseURL, APIKey: apiKey}}
}

// Instrument records this client's calls, errors, retries, 429s, and
// latency into reg under the "avscan" service name. Returns c for chaining.
func (c *Client) Instrument(reg *telemetry.Registry) *Client {
	c.API.Metrics = telemetry.NewClientMetrics(reg, "avscan")
	return c
}

// Scan fetches the multi-vendor report.
func (c *Client) Scan(ctx context.Context, u string) (Report, error) {
	var out Report
	err := c.API.GetJSON(ctx, "/vt/v1/scan?url="+url.QueryEscape(u), &out)
	return out, err
}

// GSBLookup queries the Safe Browsing API.
func (c *Client) GSBLookup(ctx context.Context, u string) (GSBResult, error) {
	var out GSBResult
	err := c.API.GetJSON(ctx, "/gsb/v4/lookup?url="+url.QueryEscape(u), &out)
	return out, err
}

// Transparency queries the transparency report. blocked is true when the
// site refused the query (HTTP 403), mirroring the paper's inability to
// script half its URLs.
func (c *Client) Transparency(ctx context.Context, u string) (res TransparencyResult, blocked bool, err error) {
	err = c.API.GetJSON(ctx, "/transparency/report?url="+url.QueryEscape(u), &res)
	if netutil.IsStatus(err, http.StatusForbidden) {
		return TransparencyResult{URL: u}, true, nil
	}
	return res, false, err
}
