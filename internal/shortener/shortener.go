// Package shortener simulates the URL-shortening services scammers abuse
// (§4.2, Table 5). A single Service multiplexes many shortener hosts
// (bit.ly, is.gd, ...) from one redirect table; links can be taken down —
// by the service or the scammer — after which resolution fails exactly the
// way the paper describes losing redirect chains (§3.3.5).
package shortener

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Link is one shortened URL entry.
type Link struct {
	Service   string    `json:"service"` // host, e.g. "bit.ly"
	Code      string    `json:"code"`
	Target    string    `json:"target"`
	CreatedAt time.Time `json:"created_at"`
	TakenDown bool      `json:"taken_down"`
	Clicks    int       `json:"clicks"`
}

// Short returns the short URL.
func (l Link) Short() string { return "https://" + l.Service + "/" + l.Code }

// Resolution errors.
var (
	ErrNotFound  = errors.New("shortener: unknown short code")
	ErrTakenDown = errors.New("shortener: link has been taken down")
)

// Service is the in-memory redirect table for all shortener hosts.
type Service struct {
	mu    sync.RWMutex
	links map[string]*Link // key: "service/code"
}

// NewService returns an empty redirect table.
func NewService() *Service { return &Service{links: make(map[string]*Link)} }

// Add registers a link. Existing entries are overwritten.
func (s *Service) Add(l Link) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := l
	s.links[key(l.Service, l.Code)] = &cp
}

// Resolve returns the target for service/code, counting the click.
func (s *Service) Resolve(service, code string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.links[key(service, code)]
	if !ok {
		return "", ErrNotFound
	}
	if l.TakenDown {
		return "", ErrTakenDown
	}
	l.Clicks++
	return l.Target, nil
}

// TakeDown disables a link, reporting whether it existed.
func (s *Service) TakeDown(service, code string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.links[key(service, code)]
	if ok {
		l.TakenDown = true
	}
	return ok
}

// Stats returns (total links, taken down, total clicks).
func (s *Service) Stats() (total, down, clicks int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, l := range s.links {
		total++
		if l.TakenDown {
			down++
		}
		clicks += l.Clicks
	}
	return
}

func key(service, code string) string {
	return strings.ToLower(service) + "/" + code
}

// Handler serves the redirect front end. The shortener host is taken from
// the Host header (stripped of port), so one listener can impersonate every
// service; a "?host=bit.ly" override supports clients that cannot set Host.
//
//	GET /{code}         -> 301 to target | 404 | 410 (taken down)
//	GET /_api/expand?service=bit.ly&code=x -> JSON (admin/debug)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /_api/expand", func(w http.ResponseWriter, r *http.Request) {
		service := r.URL.Query().Get("service")
		code := r.URL.Query().Get("code")
		target, err := s.Resolve(service, code)
		switch {
		case errors.Is(err, ErrNotFound):
			netutil.WriteError(w, http.StatusNotFound, err.Error())
		case errors.Is(err, ErrTakenDown):
			netutil.WriteError(w, http.StatusGone, err.Error())
		default:
			netutil.WriteJSON(w, http.StatusOK, map[string]string{"target": target})
		}
	})
	mux.HandleFunc("GET /{code}", func(w http.ResponseWriter, r *http.Request) {
		service := r.URL.Query().Get("host")
		if service == "" {
			service = r.Host
			if i := strings.LastIndex(service, ":"); i >= 0 {
				service = service[:i]
			}
		}
		code := r.PathValue("code")
		target, err := s.Resolve(service, code)
		switch {
		case errors.Is(err, ErrNotFound):
			http.NotFound(w, r)
		case errors.Is(err, ErrTakenDown):
			http.Error(w, "this link has been disabled", http.StatusGone)
		default:
			http.Redirect(w, r, target, http.StatusMovedPermanently)
		}
	})
	return mux
}

// Client expands short links through the debug API (used by the enrichment
// pipeline when it only needs the mapping, not a full crawl).
type Client struct {
	API netutil.Client
}

// NewClient builds a client for the redirect service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{API: netutil.Client{BaseURL: baseURL}}
}

// Instrument records this client's calls, errors, retries, 429s, and
// latency into reg under the "shortener" service name. Returns c for
// chaining.
func (c *Client) Instrument(reg *telemetry.Registry) *Client {
	c.API.Metrics = telemetry.NewClientMetrics(reg, "shortener")
	return c
}

// Expand resolves service/code to its target.
func (c *Client) Expand(ctx context.Context, service, code string) (string, error) {
	var out map[string]string
	err := c.API.GetJSON(ctx, "/_api/expand?service="+service+"&code="+code, &out)
	if netutil.IsStatus(err, http.StatusNotFound) {
		return "", ErrNotFound
	}
	if netutil.IsStatus(err, http.StatusGone) {
		return "", ErrTakenDown
	}
	if err != nil {
		return "", err
	}
	return out["target"], nil
}
