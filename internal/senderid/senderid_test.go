package senderid

import (
	"errors"
	"strings"
	"testing"
)

func TestClassifyKinds(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
	}{
		{"+447700900123", KindPhone},
		{"07700 900123", KindPhone},
		{"+1 (202) 555-0175", KindPhone},
		{"567676", KindPhone}, // bank shortcode
		{"scam@icloud.com", KindEmail},
		{"SBIBNK", KindAlphanumeric},
		{"DHL-Info", KindAlphanumeric},
		{"EVRi", KindAlphanumeric},
		{"+44 74** ***123", KindRedacted},
		{"[redacted]", KindRedacted},
		{"", KindUnknown},
		{"this is far too long to be a sender id", KindUnknown},
	}
	for _, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("Classify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParsePhoneInternational(t *testing.T) {
	n, err := ParsePhone("+44 7700 900123")
	if err != nil {
		t.Fatal(err)
	}
	if n.Country != "GBR" || n.DialCode != "44" {
		t.Errorf("country = %q dial = %q", n.Country, n.DialCode)
	}
	if n.NSN != "7700900123" {
		t.Errorf("NSN = %q", n.NSN)
	}
	if n.E164 != "+447700900123" {
		t.Errorf("E164 = %q", n.E164)
	}
}

func TestParsePhoneIndia(t *testing.T) {
	n, err := ParsePhone("+919876543210")
	if err != nil {
		t.Fatal(err)
	}
	if n.Country != "IND" || n.NSN != "9876543210" {
		t.Errorf("parsed = %+v", n)
	}
}

func TestParsePhoneDoubleZeroPrefix(t *testing.T) {
	n, err := ParsePhone("0031612345678")
	if err != nil {
		t.Fatal(err)
	}
	if n.Country != "NLD" {
		t.Errorf("country = %q, want NLD", n.Country)
	}
}

func TestParsePhoneNationalFormat(t *testing.T) {
	n, err := ParsePhone("07700900123")
	if err != nil {
		t.Fatal(err)
	}
	if n.Country != "" {
		t.Errorf("national number attributed to %q", n.Country)
	}
	if n.NSN != "07700900123" {
		t.Errorf("NSN = %q", n.NSN)
	}
}

func TestParsePhoneBadFormats(t *testing.T) {
	cases := []string{
		"+4477009001234567890", // too many digits
		"+999123456789",        // unknown dial code
		"+44 771",              // too short NSN
		"12345",                // short code, no country
	}
	for _, in := range cases {
		if _, err := ParsePhone(in); !errors.Is(err, ErrBadFormat) {
			t.Errorf("ParsePhone(%q) err = %v, want ErrBadFormat", in, err)
		}
	}
}

func TestParsePhoneNotPhone(t *testing.T) {
	if _, err := ParsePhone("DHL-Info"); !errors.Is(err, ErrNotPhone) {
		t.Errorf("err = %v, want ErrNotPhone", err)
	}
}

func TestDialCodeLongestMatch(t *testing.T) {
	// +420 (CZE) must not match +42 or +4.
	n, err := ParsePhone("+420601234567")
	if err != nil {
		t.Fatal(err)
	}
	if n.Country != "CZE" || n.DialCode != "420" {
		t.Errorf("parsed = %+v", n)
	}
	// +1 matches before nothing.
	n, err = ParsePhone("+12025550175")
	if err != nil {
		t.Fatal(err)
	}
	if n.Country != "USA" {
		t.Errorf("country = %q", n.Country)
	}
}

func TestClassifyNumberGBR(t *testing.T) {
	cases := []struct {
		nsn  string
		want NumberType
	}{
		{"7700900123", TypeMobile},
		{"2079460000", TypeLandline},
		{"1632960000", TypeLandline},
		{"8001111000", TypeTollFree},
		{"9098790000", TypePremium},
		{"5600123456", TypeVOIP},
		{"7600123456", TypePager},
		{"7624123456", TypeMobile}, // Isle of Man inside 76
		{"7012345678", TypePersonal},
	}
	for _, c := range cases {
		n := Number{Country: "GBR", NSN: c.nsn}
		if got := ClassifyNumber(n); got != c.want {
			t.Errorf("GBR %s = %q, want %q", c.nsn, got, c.want)
		}
	}
}

func TestClassifyNumberNANP(t *testing.T) {
	cases := []struct {
		nsn  string
		want NumberType
	}{
		{"2025550175", TypeMobileOrLandline},
		{"8005550175", TypeTollFree},
		{"9005550175", TypePremium},
		{"5005550175", TypePersonal},
		{"0025550175", TypeBadFormat},
	}
	for _, c := range cases {
		n := Number{Country: "USA", NSN: c.nsn}
		if got := ClassifyNumber(n); got != c.want {
			t.Errorf("USA %s = %q, want %q", c.nsn, got, c.want)
		}
	}
}

func TestClassifyNumberIND(t *testing.T) {
	if got := ClassifyNumber(Number{Country: "IND", NSN: "9876543210"}); got != TypeMobile {
		t.Errorf("IND mobile = %q", got)
	}
	if got := ClassifyNumber(Number{Country: "IND", NSN: "1123456789"}); got != TypeLandline {
		t.Errorf("IND landline = %q", got)
	}
}

func TestClassifyNumberNLDVoicemail(t *testing.T) {
	if got := ClassifyNumber(Number{Country: "NLD", NSN: "841234567"}); got != TypeVoicemail {
		t.Errorf("NLD voicemail = %q", got)
	}
}

func TestClassifyNumberBadFormat(t *testing.T) {
	if got := ClassifyNumber(Number{}); got != TypeBadFormat {
		t.Errorf("empty = %q", got)
	}
	if got := ClassifyNumber(Number{Country: "IND", NSN: "123"}); got != TypeBadFormat {
		t.Errorf("short IND = %q", got)
	}
}

func TestNumberTypeValid(t *testing.T) {
	valid := []NumberType{TypeMobile, TypeMobileOrLandline, TypeVOIP, TypeTollFree, TypePager, TypeUAN, TypePersonal, TypeOther}
	for _, ty := range valid {
		if !ty.Valid() {
			t.Errorf("%q should be valid", ty)
		}
	}
	invalid := []NumberType{TypeBadFormat, TypeLandline, TypeVoicemail}
	for _, ty := range invalid {
		if ty.Valid() {
			t.Errorf("%q should be invalid", ty)
		}
	}
}

func TestCountriesAndDialCodeRoundTrip(t *testing.T) {
	countries := Countries()
	if len(countries) < 40 {
		t.Fatalf("only %d countries", len(countries))
	}
	for _, iso := range countries {
		code := DialCodeFor(iso)
		if code == "" {
			t.Errorf("no dial code for %s", iso)
			continue
		}
		// Round-trip: a well-formed number with this dial code resolves
		// back to a country owning that code.
		n, err := ParsePhone("+" + code + strings.Repeat("7", 9))
		if errors.Is(err, ErrBadFormat) {
			// Some plans reject 9-digit NSNs; length mismatch is fine,
			// country attribution must still work.
			if n.DialCode != code {
				t.Errorf("%s: dial code %q not recovered (%+v)", iso, code, n)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", iso, err)
			continue
		}
		if n.DialCode != code {
			t.Errorf("%s: got dial %q, want %q", iso, n.DialCode, code)
		}
	}
}

// Property: Classify never panics and returns a known kind for random junk.
func TestClassifyTotal(t *testing.T) {
	inputs := []string{
		"+++", "()()", "a@b", "@", "++44123456789", "0000000000000000000000",
		"\x00\x01", "ＳＢＩ", "....", "+4 4", "short", "1-800-FLOWERS",
	}
	known := map[Kind]bool{KindPhone: true, KindEmail: true, KindAlphanumeric: true, KindRedacted: true, KindUnknown: true}
	for _, in := range inputs {
		if k := Classify(in); !known[k] {
			t.Errorf("Classify(%q) = %q (unknown kind)", in, k)
		}
	}
}
