// Benchmark and pinning test for the windowed batching tier: on a skewed
// corpus (many records sharing few senders and domains, as in the paper's
// Tables 5-8) the batching decorators must cut backend requests to the
// batchable services by at least 3x while producing byte-identical
// enrichment output. Run with:
//
//	go test -run=NONE -bench=EnrichBatched -benchtime=1x -count=5 .
//
// When BENCH_BATCH_JSON names a file, BenchmarkEnrichBatched writes a
// machine-readable baseline there (backend calls per 1k records, batched
// vs unbatched); CI uploads it next to BENCH_enrich.json.
package smishkit

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/batchmux"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/urlinfo"
)

// The corpus is deliberately skewed: records outnumber both sender pools,
// so in-window coalescing and multi-key flushes have duplicates to exploit
// — the shape the paper reports for real smishing campaigns.
const (
	batchBenchRecords = 96
	batchBenchPhones  = 8
	batchBenchDomains = 12
)

// callCounter counts backend requests to the batchable endpoints (HLR
// lookup, pDNS resolutions, VT scan, GSB). One bulk request counts once,
// exactly like one HTTP round trip would.
type callCounter struct{ calls atomic.Int64 }

func (c *callCounter) hit() { c.calls.Add(1) }

// Deterministic per-key answers, shared by the single and bulk paths, so
// the batched and unbatched runs must produce identical records — any slot
// mix-up in the demultiplexer shows up as a dataset diff.

func bbHLRResult(msisdn string) hlr.Result {
	return hlr.Result{Known: true, Source: "hlr:" + msisdn}
}

func bbObservations(domain string) []dnsdb.Observation {
	return []dnsdb.Observation{
		{Domain: domain, IP: "192.0.2.10"},
		{Domain: domain, IP: "198.51.100.20"},
	}
}

func bbReport(u string) avscan.Report {
	return avscan.Report{URL: u, Stats: avscan.ReportStats{Malicious: 3, Harmless: len(u) % 5}}
}

func bbGSB(u string) avscan.GSBResult {
	return avscan.GSBResult{URL: u, Matched: true, Threat: "SOCIAL_ENGINEERING"}
}

type bbHLR struct{ c *callCounter }

func (s bbHLR) Lookup(_ context.Context, msisdn string) (hlr.Result, error) {
	s.c.hit()
	return bbHLRResult(msisdn), nil
}

func (s bbHLR) LookupBatch(_ context.Context, msisdns []string) ([]hlr.Result, []error) {
	s.c.hit()
	out := make([]hlr.Result, len(msisdns))
	for i, m := range msisdns {
		out[i] = bbHLRResult(m)
	}
	return out, make([]error, len(msisdns))
}

type bbDNS struct{ c *callCounter }

func (s bbDNS) Resolutions(_ context.Context, domain string) ([]dnsdb.Observation, error) {
	s.c.hit()
	return bbObservations(domain), nil
}

func (s bbDNS) ResolutionsBatch(_ context.Context, domains []string) ([][]dnsdb.Observation, []error) {
	s.c.hit()
	out := make([][]dnsdb.Observation, len(domains))
	for i, d := range domains {
		out[i] = bbObservations(d)
	}
	return out, make([]error, len(domains))
}

func (s bbDNS) ASOf(_ context.Context, ip string) (dnsdb.ASInfo, error) {
	// The IP->AS chain fans out from each record's own observations and is
	// never batched, so it is not counted.
	return dnsdb.ASInfo{ASN: 64500, Name: "BB-NET-" + ip, Country: "US"}, nil
}

type bbAV struct{ c *callCounter }

func (s bbAV) Scan(_ context.Context, u string) (avscan.Report, error) {
	s.c.hit()
	return bbReport(u), nil
}

func (s bbAV) ScanBatch(_ context.Context, urls []string) ([]avscan.Report, []error) {
	s.c.hit()
	out := make([]avscan.Report, len(urls))
	for i, u := range urls {
		out[i] = bbReport(u)
	}
	return out, make([]error, len(urls))
}

func (s bbAV) GSBLookup(_ context.Context, u string) (avscan.GSBResult, error) {
	s.c.hit()
	return bbGSB(u), nil
}

func (s bbAV) GSBLookupBatch(_ context.Context, urls []string) ([]avscan.GSBResult, []error) {
	s.c.hit()
	out := make([]avscan.GSBResult, len(urls))
	for i, u := range urls {
		out[i] = bbGSB(u)
	}
	return out, make([]error, len(urls))
}

func (s bbAV) Transparency(_ context.Context, u string) (avscan.TransparencyResult, bool, error) {
	return avscan.TransparencyResult{URL: u}, false, nil
}

func bbServices(c *callCounter) core.Services {
	return core.Services{
		HLR:    bbHLR{c},
		Whois:  benchWhois{},
		CTLog:  benchCT{},
		DNSDB:  bbDNS{c},
		AVScan: bbAV{c},
	}
}

// batchBenchSet builds the skewed record set: every record has a phone
// sender and a dedicated-domain URL, drawn from small pools.
func batchBenchSet(n int) []core.Record {
	recs := make([]core.Record, n)
	for i := range recs {
		u := fmt.Sprintf("https://evil-clinic-%d.xyz/login", i%batchBenchDomains)
		info, err := urlinfo.Parse(u)
		if err != nil {
			panic(err)
		}
		recs[i] = core.Record{
			ID:         fmt.Sprintf("bb-%d", i),
			Forum:      corpus.ForumSmishtank,
			Text:       "Your parcel is held, pay the fee: " + u,
			SenderRaw:  fmt.Sprintf("+44770090%04d", i%batchBenchPhones),
			SenderKind: senderid.KindPhone,
			ShownURL:   u,
			URLInfo:    info,
		}
	}
	return recs
}

// runBatchEnrich enriches one skewed record set, optionally through the
// batching tier, and returns the batchable backend call count plus the
// enriched dataset.
func runBatchEnrich(tb testing.TB, batched bool) (int64, *core.Dataset) {
	tb.Helper()
	c := &callCounter{}
	services := bbServices(c)
	if batched {
		mux := batchmux.New(batchmux.Config{Window: 16, FlushInterval: 2 * time.Millisecond}, nil)
		services = mux.WrapServices(services)
	}
	pipe, err := core.NewPipeline(services, core.Options{
		EnrichWorkers: 16,
		StepWorkers:   4,
	})
	if err != nil {
		tb.Fatal(err)
	}
	ds := &core.Dataset{Records: batchBenchSet(batchBenchRecords)}
	if err := pipe.Enrich(context.Background(), ds); err != nil {
		tb.Fatal(err)
	}
	return c.calls.Load(), ds
}

// TestBatchedEnrichmentFewerCallsSameOutput pins the tentpole acceptance
// criterion: on the skewed corpus the batching tier makes at least 3x
// fewer backend requests than per-key enrichment, and the enriched dataset
// is identical record for record.
func TestBatchedEnrichmentFewerCallsSameOutput(t *testing.T) {
	unCalls, unDS := runBatchEnrich(t, false)
	baCalls, baDS := runBatchEnrich(t, true)

	if want := int64(4 * batchBenchRecords); unCalls != want {
		t.Errorf("unbatched run made %d backend calls, want %d (4 per record)", unCalls, want)
	}
	if baCalls*3 > unCalls {
		t.Errorf("batched run made %d backend calls vs %d unbatched; want at least 3x fewer",
			baCalls, unCalls)
	}

	if len(unDS.Records) != len(baDS.Records) {
		t.Fatalf("record counts differ: %d unbatched vs %d batched",
			len(unDS.Records), len(baDS.Records))
	}
	// Enrich mutates records in place, so order is the input order in both
	// runs and the sets compare pairwise.
	for i := range unDS.Records {
		if unDS.Records[i].Degraded() || baDS.Records[i].Degraded() {
			t.Fatalf("record %d degraded: unbatched=%v batched=%v", i,
				unDS.Records[i].EnrichmentErrors, baDS.Records[i].EnrichmentErrors)
		}
		if !reflect.DeepEqual(unDS.Records[i], baDS.Records[i]) {
			t.Errorf("record %d differs between batched and unbatched enrichment:\nunbatched: %+v\nbatched:   %+v",
				i, unDS.Records[i], baDS.Records[i])
		}
	}
}

// BenchmarkEnrichBatched measures the batching tier's backend-call
// reduction on the skewed corpus. The headline metric is calls per 1k
// records, not wall time: partial windows deliberately trade a flush
// interval of latency for the bulk discount.
func BenchmarkEnrichBatched(b *testing.B) {
	var unbatched, batched float64
	run := func(useBatch bool) func(b *testing.B) {
		return func(b *testing.B) {
			var calls int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, _ := runBatchEnrich(b, useBatch)
				calls += n
			}
			b.StopTimer()
			per1k := float64(calls) / float64(b.N) / batchBenchRecords * 1000
			b.ReportMetric(per1k, "calls/1krec")
			if useBatch {
				batched = per1k
			} else {
				unbatched = per1k
			}
		}
	}
	b.Run("unbatched", run(false))
	b.Run("batched", run(true))
	if unbatched == 0 || batched == 0 {
		return
	}
	reduction := unbatched / batched
	b.Logf("backend calls per 1k records: unbatched=%.0f batched=%.0f reduction=%.1fx",
		unbatched, batched, reduction)
	writeBenchBatchJSON(b, unbatched, batched, reduction)
}

// writeBenchBatchJSON emits the machine-readable baseline when the
// BENCH_BATCH_JSON environment variable names a destination file.
func writeBenchBatchJSON(b *testing.B, unbatched, batched, reduction float64) {
	path := os.Getenv("BENCH_BATCH_JSON")
	if path == "" {
		return
	}
	doc := struct {
		Records              int     `json:"records"`
		Phones               int     `json:"distinct_phones"`
		Domains              int     `json:"distinct_domains"`
		UnbatchedCallsPer1k  float64 `json:"unbatched_calls_per_1k_records"`
		BatchedCallsPer1k    float64 `json:"batched_calls_per_1k_records"`
		ReductionUnoverBatch float64 `json:"reduction_unbatched_over_batched"`
	}{batchBenchRecords, batchBenchPhones, batchBenchDomains, unbatched, batched, reduction}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Errorf("writing %s: %v", path, err)
	}
}
