// Command loadgen drives the closed-loop benchmark harness's write side:
// it synthesizes smishing-report waves from an env-file profile and
// appends them to a running smishkit daemon through POST /inject.
//
// Usage:
//
//	loadgen -profile scripts/benchmark_profiles/smoke_1k.env \
//	        -status http://127.0.0.1:PORT [-duration D]
//
// The profile sets the steady rate (BENCH_BASE_RPS), burst windows
// (BENCH_BURST_RPS every BENCH_BURST_EVERY_SECONDS for
// BENCH_BURST_LEN_SECONDS), the wave size (BENCH_WAVE_MESSAGES), the
// forum mix (BENCH_FORUMS), and the fault mix's decoy share
// (BENCH_NOISE_FRACTION). loadgen spends its RPS budget in whole waves:
// it accumulates owed messages at the profile's current rate and posts
// one wave each time the debt covers BENCH_WAVE_MESSAGES.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/smishkit/smishkit/internal/bench"
	"github.com/smishkit/smishkit/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profilePath := flag.String("profile", "", "benchmark profile env file (required)")
	status := flag.String("status", "", "daemon status URL, e.g. http://127.0.0.1:PORT (required)")
	duration := flag.Duration("duration", 0, "override the profile's BENCH_DURATION_SECONDS")
	flag.Parse()
	if *profilePath == "" || *status == "" {
		return fmt.Errorf("both -profile and -status are required")
	}
	p, err := bench.LoadProfile(*profilePath)
	if err != nil {
		return err
	}
	if *duration > 0 {
		p.Duration = *duration
	}
	base := strings.TrimRight(*status, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	log.Printf("profile %s: %v at %g rps (burst %g rps), waves of %d",
		p.Name, p.Duration, p.BaseRPS, p.BurstRPS, p.WaveMessages)

	start := time.Now()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	var owed float64
	var waves, appended, failures int
	last := start
	for now := range tick.C {
		elapsed := now.Sub(start)
		if elapsed >= p.Duration {
			break
		}
		owed += p.RateAt(elapsed) * now.Sub(last).Seconds()
		last = now
		for owed >= float64(p.WaveMessages) {
			owed -= float64(p.WaveMessages)
			waves++
			n, err := inject(client, base, core.InjectSpec{
				Seed:          p.Seed + int64(waves),
				Messages:      p.WaveMessages,
				Forums:        p.Forums,
				NoiseFraction: p.NoiseFraction,
			})
			if err != nil {
				failures++
				log.Printf("wave %d: %v", waves, err)
				// An unreachable daemon fails the run outright; the CI gate
				// must see a hard error, not a quiet half-load.
				if failures > 5 && appended == 0 {
					return fmt.Errorf("no wave has landed after %d attempts; giving up", failures)
				}
				continue
			}
			appended += n
		}
	}

	rate := float64(appended) / time.Since(start).Seconds()
	log.Printf("done: %d waves, %d posts appended (%.1f posts/sec), %d failed",
		waves, appended, rate, failures)
	if appended == 0 {
		return fmt.Errorf("no posts appended")
	}
	if failures*2 > waves {
		return fmt.Errorf("%d of %d waves failed", failures, waves)
	}
	// Machine-readable trailer for the harness log.
	fmt.Fprintf(os.Stdout, `{"waves":%d,"appended_posts":%d,"failed_waves":%d}`+"\n",
		waves, appended, failures)
	return nil
}

// inject posts one wave and returns how many posts the daemon appended.
func inject(client *http.Client, base string, spec core.InjectSpec) (int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+"/inject", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("POST /inject: %s: %s", resp.Status, bytes.TrimSpace(payload))
	}
	var out struct {
		AppendedPosts int `json:"appended_posts"`
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return 0, fmt.Errorf("POST /inject: decode response: %w", err)
	}
	return out.AppendedPosts, nil
}
