package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct {
		q, want float64
	}{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
		{0.75, 3.25},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// input must not be mutated
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("q<0 accepted")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q>1 accepted")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN q accepted")
	}
}

func TestQuantileSingleton(t *testing.T) {
	got, err := Quantile([]float64{42}, 0.99)
	if err != nil || got != 42 {
		t.Errorf("singleton quantile = %v, %v", got, err)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m, _ := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m, _ := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{5, 1, 3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v, %v", s.Q1, s.Q3)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("empty summarize err = %v", err)
	}
}

func TestStdDev(t *testing.T) {
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if _, err := StdDev([]float64{1}); err != ErrEmpty {
		t.Errorf("short StdDev err = %v", err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		va, err1 := Quantile(xs, a)
		vb, err2 := Quantile(xs, b)
		if err1 != nil || err2 != nil {
			return false
		}
		lo, _ := Quantile(xs, 0)
		hi, _ := Quantile(xs, 1)
		return va <= vb && va >= lo && vb <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: five-number summary ordering Min <= Q1 <= Median <= Q3 <= Max.
func TestSummarizeOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s, err := Summarize(xs)
		if err != nil {
			t.Fatal(err)
		}
		if !(s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max) {
			t.Fatalf("summary out of order: %+v", s)
		}
	}
}
