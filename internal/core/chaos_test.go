// Chaos soak: the full pipeline against every enrichment service
// misbehaving at once. Lives in package core_test because the fault and
// breaker layers import core; the CI chaos job runs exactly this file:
//
//	go test -race -run TestChaosSoak -count=3 ./internal/core/
package core_test

import (
	"context"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/faultinject"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/resilience"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// chaosSeed fixes both the synthetic world and the injected fault
// sequence; a failing CI run reproduces locally from this one number.
const chaosSeed = 1337

// TestChaosSoak drives a study-sized run with ~30% of every service's
// calls failing (transport errors, 5xx, rate limits, latency spikes,
// hangs) plus a deterministic whois flap window, and asserts the
// resilience contract: the run completes, every lost field is recorded on
// its record, and the whois breaker demonstrably opened.
func TestChaosSoak(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: chaosSeed, Messages: 300})
	sim, err := core.StartSimulation(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	reports, _, err := forum.CollectAll(context.Background(), sim.Collectors())
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	faults := faultinject.New(faultinject.Config{
		Seed: chaosSeed,
		// ~30% of calls fail and another 10% are slowed, on every service.
		Default: faultinject.ServiceFaults{
			ErrorRate: 0.15,
			Rate429:   0.05,
			Rate5xx:   0.08,
			HangRate:  0.02,
			SlowRate:  0.10,
			Latency:   time.Millisecond,
		},
		// whois flaps in hard windows: 20 consecutive down calls guarantee
		// a breaker trip regardless of worker interleaving.
		PerService: map[string]faultinject.ServiceFaults{
			"whois": {FlapPeriod: 40, FlapDown: 20},
		},
	}, reg)
	breakers := resilience.New(resilience.Config{
		Breaker: resilience.BreakerConfig{FailureThreshold: 5, OpenTimeout: 50 * time.Millisecond},
		// Threshold 2: even with 7 in-flight successes from the previous
		// up-window interleaving into the 20-call down-window, some run of
		// failures reaches 2 (pigeonhole: 20 failures split into <= 8 runs).
		PerService: map[string]resilience.BreakerConfig{
			"whois": {FailureThreshold: 2, OpenTimeout: 20 * time.Millisecond},
		},
	}, reg)

	// Composition order is the production one: pipeline -> breaker ->
	// (cache would sit here) -> faults -> instrumented client.
	services := breakers.WrapServices(faults.WrapServices(sim.Services()))

	pipe, err := core.NewPipeline(services, core.Options{
		Telemetry:    reg,
		CallTimeout:  250 * time.Millisecond, // bounds injected hangs
		RecordBudget: 5 * time.Second,
		// Pin the DAG path explicitly (4 is also the default): the soak's
		// degradation, breaker, and abort-ratio assertions must hold with
		// a record's enrichment families racing each other.
		StepWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := pipe.Curate(reports)
	if len(ds.Records) == 0 {
		t.Fatal("no records curated")
	}
	if err := pipe.Enrich(context.Background(), ds); err != nil {
		t.Fatalf("Enrich aborted under 30%% chaos; want degraded completion: %v", err)
	}

	// Every record was processed, and the failures left their mark.
	snap := reg.Snapshot()
	if got := snap.Counters["pipeline.enrich.records"]; got != int64(len(ds.Records)) {
		t.Errorf("enriched %d of %d records", got, len(ds.Records))
	}
	var degradedFields, degradedRecs int64
	for _, r := range ds.Records {
		if r.Degraded() {
			degradedRecs++
		}
		for _, e := range r.EnrichmentErrors {
			degradedFields++
			if e.Field == "" || e.Service == "" || e.Err == "" {
				t.Fatalf("incomplete enrichment error on record %s: %+v", r.ID, e)
			}
		}
	}
	if degradedRecs == 0 {
		t.Fatal("30% fault mix degraded no records")
	}
	// Every degraded field carries an EnrichmentError: the telemetry
	// counter and the per-record lists are two views of the same events.
	if got := snap.Counters["pipeline.enrich.degraded_fields"]; got != degradedFields {
		t.Errorf("degraded_fields counter = %d, records carry %d errors", got, degradedFields)
	}
	if got := snap.Counters["pipeline.enrich.degraded_records"]; got != degradedRecs {
		t.Errorf("degraded_records counter = %d, want %d", got, degradedRecs)
	}

	// Faults really were injected on every service in the default mix.
	for _, svc := range []string{"hlr", "ctlog", "dnsdb", "avscan", "shortener"} {
		if snap.Counters["fault."+svc+".injected"] == 0 {
			t.Errorf("no faults injected for %s", svc)
		}
	}

	// Breaker transitions are visible: the whois flap windows must have
	// tripped its breaker at least once, and short-circuited calls must
	// never have reached the fault gate (gate calls = breaker admissions).
	if got := snap.Counters["breaker.whois.opens"]; got == 0 {
		t.Error("whois breaker never opened despite 50% flap windows")
	}
	bs := breakers.Stats()["whois"]
	if bs.ShortCircuits == 0 {
		t.Error("open whois breaker short-circuited no calls")
	}
	t.Logf("records=%d degraded=%d fields=%d whois: opens=%d shorts=%d",
		len(ds.Records), degradedRecs, degradedFields, bs.Opens, bs.ShortCircuits)
}
