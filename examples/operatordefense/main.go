// Operatordefense replays a synthetic world's SMS traffic through the
// operator-side gateway the paper's §7.2 asks MNOs to build: a three-stage
// XDR filter (sender plausibility, shortened-URL expansion against threat
// intel, content classifier) in front of subscriber inboxes, with the 7726
// reporting loop feeding confirmed domains back into the blocklist.
//
// The replay runs twice — filter off (status quo) and filter on — and
// prints the delta, plus how the feedback loop catches an evasive campaign
// that slips past the classifier.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/smishkit/smishkit"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/enrichcache"
	"github.com/smishkit/smishkit/internal/gateway"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/xdrfilter"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	world := smishkit.GenerateWorld(smishkit.WorldConfig{Seed: 99, Messages: 3000})
	sim, err := core.StartSimulation(world)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	// Train the detector on an earlier "labeled dataset" (a different
	// seed, so no message-level leakage), exactly the §7.2 proposal.
	training := smishkit.TrainingDocs(
		smishkit.GenerateWorld(smishkit.WorldConfig{Seed: 7, Messages: 3000}), 8, 800)
	model, err := smishkit.TrainDetector(training, true)
	if err != nil {
		log.Fatal(err)
	}

	// Threat-intel blocklist: domains already flagged widely by AV vendors.
	var blocklist []string
	for name, d := range world.Domains {
		if d.Detectability > 0.6 {
			blocklist = append(blocklist, name)
		}
	}
	fmt.Printf("world: %d messages, %d domains (%d on the intel blocklist)\n",
		len(world.Messages), len(world.Domains), len(blocklist))

	// One collector across every replay: the per-action latency histograms
	// below aggregate all three filter configurations.
	collector := smishkit.NewCollector()

	run := func(name string, f *xdrfilter.Filter) gateway.Stats {
		gw := gateway.New(f).Instrument(collector)
		for _, m := range world.Messages {
			if _, err := gw.Submit(ctx, m.Sender.Value, "+447700900000", m.Text); err != nil {
				log.Fatal(err)
			}
		}
		// Mix in benign traffic to measure collateral damage.
		hamBlocked := 0
		for _, ham := range corpus.GenerateHam(100, 500) {
			msg, err := gw.Submit(ctx, "+447700900123", "+447700900001", ham)
			if err != nil {
				log.Fatal(err)
			}
			if msg.Action == "blocked" {
				hamBlocked++
			}
		}
		st := gw.Snapshot()
		fmt.Printf("%-22s blocked %4d / flagged %4d of %d smishes; ham casualties %d/500\n",
			name+":", st.Blocked-hamBlocked, st.Flagged, len(world.Messages), hamBlocked)
		return st
	}

	// Status quo: no filtering at all.
	run("no filter", xdrfilter.New(xdrfilter.Config{}))
	// Blocklist only (no shortener expansion): hidden redirects slip by.
	run("blocklist only", xdrfilter.New(xdrfilter.Config{Blocklist: blocklist}))
	// Full stack: blocklist + expansion + classifier + sender checks. The
	// expander goes through the enrichment cache: repeated copies of a
	// smish resolve their short link locally, takedowns are negative-cached
	// instead of re-queried, and a shortener 5xx serves the last known
	// landing URL rather than letting the message through unexpanded.
	cache := enrichcache.New(enrichcache.Config{ServeStale: true}, collector)
	full := xdrfilter.New(xdrfilter.Config{
		Blocklist:       blocklist,
		Expander:        cache.Shortener(shortener.NewClient(sim.ShortenerURL)),
		Classifier:      model,
		BlockBadSenders: true,
	})
	run("full XDR stack", full)

	// The 7726 feedback loop: an evasive campaign the classifier misses.
	gw := gateway.New(xdrfilter.New(xdrfilter.Config{Classifier: model}))
	evasive := "weekend photos are up! https://fresh-album-host.top/a"
	first, _ := gw.Submit(ctx, "+447700900500", "+447700900002", evasive)
	fmt.Printf("\nevasive campaign, first copy: %s (%s)\n", first.Action, first.Reason)
	added := gw.Report("+447700900002", evasive) // subscriber forwards to 7726
	second, _ := gw.Submit(ctx, "+447700900501", "+447700900003", evasive)
	fmt.Printf("after one 7726 report (+%d blocklisted): second copy %s (%s)\n",
		added, second.Action, second.Reason)

	// How the gateway behaved across all replays: submit/deliver/block
	// latency percentiles and traffic counters.
	// No Study here — the gateway stack was assembled by hand — so build
	// the Stats value directly for the unified renderer.
	fmt.Println()
	stats := smishkit.Stats{Telemetry: collector.Snapshot(), Cache: cache.Stats()}
	if err := smishkit.WriteStats(os.Stdout, stats, smishkit.SectionTelemetry, smishkit.SectionCache); err != nil {
		log.Fatal(err)
	}
}
