package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/telemetry"
)

func mustPipeline(t *testing.T, services Services, opts Options) *Pipeline {
	t.Helper()
	pipe, err := NewPipeline(services, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

func TestNewPipelineRejectsNegativeWorkers(t *testing.T) {
	if _, err := NewPipeline(Services{}, Options{EnrichWorkers: -1}); err == nil {
		t.Fatal("negative EnrichWorkers accepted")
	}
}

// TestSplitShortStripsFragment is the regression for the shortener-lookup
// miss: codes must not retain ?query or #fragment suffixes.
func TestSplitShortStripsFragment(t *testing.T) {
	cases := []struct{ url, service, code string }{
		{"https://bit.ly/abc#x", "bit.ly", "abc"},
		{"https://bit.ly/abc?utm=1#frag", "bit.ly", "abc"},
		{"https://bit.ly/abc#", "bit.ly", "abc"},
		{"https://t.co/Zz9#sec:2", "t.co", "Zz9"},
		{"https://bit.ly/abc", "bit.ly", "abc"},
	}
	for _, c := range cases {
		service, code := splitShort(c.url)
		if service != c.service || code != c.code {
			t.Errorf("splitShort(%q) = (%q, %q), want (%q, %q)",
				c.url, service, code, c.service, c.code)
		}
	}
}

// TestEnrichAbortsOnTransportError drives the worker pool into its abort
// path: the HLR client points at a dead address, so the first record fails
// at the transport level and the whole pool must shut down promptly
// (run under -race in CI to catch shutdown races).
func TestEnrichAbortsOnTransportError(t *testing.T) {
	reg := telemetry.NewRegistry()
	dead := hlr.NewClient("http://127.0.0.1:1", "k").Instrument(reg)
	dead.API.MaxRetries = 1
	dead.API.Backoff = time.Millisecond
	pipe := mustPipeline(t, Services{HLR: dead}, Options{EnrichWorkers: 8, Telemetry: reg})

	ds := &Dataset{}
	for i := 0; i < 64; i++ {
		ds.Records = append(ds.Records, Record{
			SenderKind: senderid.KindPhone,
			SenderRaw:  "+447700900123",
		})
	}

	done := make(chan error, 1)
	go func() { done <- pipe.Enrich(context.Background(), ds) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("transport failure did not surface")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Enrich did not return after transport error (worker pool hung)")
	}

	snap := pipe.Telemetry().Snapshot()
	if snap.Counters["client.hlr.errors"] == 0 {
		t.Error("instrumented HLR client recorded no errors")
	}
	if snap.Gauges["pipeline.enrich.busy_workers"] != 0 {
		t.Errorf("busy_workers gauge = %d after shutdown, want 0",
			snap.Gauges["pipeline.enrich.busy_workers"])
	}
}

// shortCircuitHLR models a guard decorator (an open circuit breaker)
// shedding every call without reaching the service.
type shortCircuitHLR struct{ calls atomic.Int64 }

func (s *shortCircuitHLR) Lookup(context.Context, string) (hlr.Result, error) {
	s.calls.Add(1)
	return hlr.Result{}, fmt.Errorf("guard: %w", ErrShortCircuited)
}

// TestEnrichShortCircuitsDoNotAbort pins the abort-accounting contract:
// a guard shedding 100% of calls degrades every record's field but must
// stay out of the AbortFailureRate ratio — an open breaker protecting
// the sweep must not be what aborts it. (64 records is above the default
// MinAbortCalls, so counting shed calls as failures would abort here.)
func TestEnrichShortCircuitsDoNotAbort(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := &shortCircuitHLR{}
	pipe := mustPipeline(t, Services{HLR: svc}, Options{EnrichWorkers: 8, Telemetry: reg})

	ds := &Dataset{}
	for i := 0; i < 64; i++ {
		ds.Records = append(ds.Records, Record{
			SenderKind: senderid.KindPhone,
			SenderRaw:  "+447700900123",
		})
	}
	if err := pipe.Enrich(context.Background(), ds); err != nil {
		t.Fatalf("Enrich aborted on short-circuited calls: %v", err)
	}
	if got := svc.calls.Load(); got != 64 {
		t.Errorf("guard saw %d calls, want 64", got)
	}
	for i, r := range ds.Records {
		if len(r.EnrichmentErrors) != 1 || r.EnrichmentErrors[0].Field != "hlr" {
			t.Fatalf("record %d enrichment errors = %+v, want one degraded hlr field",
				i, r.EnrichmentErrors)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["pipeline.enrich.degraded_fields"]; got != 64 {
		t.Errorf("degraded_fields = %d, want 64", got)
	}
	if got := snap.Counters["pipeline.enrich.degraded_records"]; got != 64 {
		t.Errorf("degraded_records = %d, want 64", got)
	}
}

func TestEnrichAbortUsesInstrumentedClientTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	dead := hlr.NewClient("http://127.0.0.1:1", "k").Instrument(reg)
	dead.API.MaxRetries = 2
	dead.API.Backoff = time.Millisecond
	if _, err := dead.Lookup(context.Background(), "+447700900123"); err == nil {
		t.Fatal("lookup against dead address succeeded")
	}
	snap := reg.Snapshot()
	if snap.Counters["client.hlr.calls"] != 1 {
		t.Errorf("calls = %d, want 1", snap.Counters["client.hlr.calls"])
	}
	if snap.Counters["client.hlr.retries"] != 2 {
		t.Errorf("retries = %d, want 2", snap.Counters["client.hlr.retries"])
	}
	if snap.Counters["client.hlr.errors"] != 1 {
		t.Errorf("errors = %d, want 1", snap.Counters["client.hlr.errors"])
	}
	if snap.Histograms["client.hlr.latency"].Count != 1 {
		t.Errorf("latency observations = %d, want 1",
			snap.Histograms["client.hlr.latency"].Count)
	}
}

// TestPipelineRecordsStageSpans runs curate/enrich/annotate directly and
// checks the spans and curation-outcome counters land in the registry.
func TestPipelineRecordsStageSpans(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := mustPipeline(t, Services{}, Options{Telemetry: reg})
	ds := pipe.Curate(nil)
	if err := pipe.Enrich(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Annotate(context.Background(), ds); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, stage := range []string{"curate", "enrich", "annotate"} {
		if snap.Spans[stage].Count != 1 {
			t.Errorf("span %q count = %d, want 1", stage, snap.Spans[stage].Count)
		}
	}
	for name := range snap.Counters {
		if strings.HasPrefix(name, "pipeline.curate.") && snap.Counters[name] != 0 {
			t.Errorf("empty curate recorded %s = %d", name, snap.Counters[name])
		}
	}
}
