// Command forumsim boots the five simulated report forums and every
// intelligence service for a synthetic world, prints their addresses and
// credentials, and serves until interrupted — a standing target for
// developing collectors or demos.
//
// Usage:
//
//	forumsim [-seed N] [-messages N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/smishkit/smishkit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("forumsim: ")

	seed := flag.Int64("seed", 1, "world generation seed")
	messages := flag.Int("messages", 2000, "synthetic corpus size")
	flag.Parse()

	world := smishkit.GenerateWorld(smishkit.WorldConfig{Seed: *seed, Messages: *messages})
	sim, err := smishkit.StartSimulation(world)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	fmt.Println("forums:")
	fmt.Printf("  twitter      %s  (bearer: %s)\n", sim.TwitterURL, sim.TwitterBearer)
	fmt.Printf("  reddit       %s\n", sim.RedditURL)
	fmt.Printf("  smishtank    %s\n", sim.SmishtankURL)
	fmt.Printf("  smishing.eu  %s\n", sim.SmishingEUURL)
	fmt.Printf("  pastebin     %s\n", sim.PastebinURL)
	fmt.Println("services:")
	fmt.Printf("  hlr          %s  (key: %s)\n", sim.HLRURL, sim.HLRKey)
	fmt.Printf("  whois        %s  (key: %s)\n", sim.WhoisURL, sim.WhoisKey)
	fmt.Printf("  ctlog        %s\n", sim.CTLogURL)
	fmt.Printf("  dnsdb        %s  (key: %s)\n", sim.DNSDBURL, sim.DNSDBKey)
	fmt.Printf("  avscan       %s  (key: %s)\n", sim.AVScanURL, sim.AVScanKey)
	fmt.Printf("  shortener    %s\n", sim.ShortenerURL)
	fmt.Printf("  sites        %s\n", sim.SitesURL)
	fmt.Printf("telemetry:\n")
	fmt.Printf("  snapshot     %s/debug/telemetry\n", sim.DebugURL)
	fmt.Println("\nserving; ctrl-c to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
}
