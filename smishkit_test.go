package smishkit

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestStudyEndToEnd(t *testing.T) {
	study, err := NewStudy(Options{Seed: 7, Messages: 600})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("empty dataset")
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 10: scam categories") {
		t.Error("report missing scam categories")
	}
	if err := WriteReport(failingWriter{}, ds); err == nil {
		t.Error("WriteReport swallowed the writer error")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("pipe closed") }

// TestStudyTelemetryEndToEnd is the acceptance check for the telemetry
// subsystem: one full Run must produce a snapshot covering all four
// pipeline stages and all six enrichment services, retrievable both
// through Study.Telemetry and the simulation's /debug/telemetry endpoint.
func TestStudyTelemetryEndToEnd(t *testing.T) {
	collector := NewCollector()
	study, err := NewStudy(Options{Seed: 11, Messages: 600, Collector: collector})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	if _, err := study.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	snap := study.Telemetry()
	for _, stage := range []string{"collect", "curate", "enrich", "annotate"} {
		if snap.Spans[stage].Count < 1 {
			t.Errorf("stage %q has no span (spans: %v)", stage, snap.Spans)
		}
	}
	for _, svc := range []string{"hlr", "whois", "ctlog", "dnsdb", "avscan", "shortener"} {
		if snap.Counters["client."+svc+".calls"] == 0 {
			t.Errorf("service %q recorded no calls", svc)
		}
		if snap.Histograms["client."+svc+".latency"].Count == 0 {
			t.Errorf("service %q recorded no latencies", svc)
		}
	}
	if snap.Counters["pipeline.curate.ok"] == 0 || snap.Counters["pipeline.enrich.records"] == 0 {
		t.Errorf("pipeline counters empty: %v", snap.Counters)
	}
	// The user-supplied collector is the same registry the study records
	// into.
	if got := collector.Snapshot().Counters["pipeline.curate.ok"]; got != snap.Counters["pipeline.curate.ok"] {
		t.Errorf("Options.Collector diverges from Study.Telemetry: %d != %d",
			got, snap.Counters["pipeline.curate.ok"])
	}

	// Same numbers over the wire.
	resp, err := http.Get(study.Sim.DebugURL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire Telemetry
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Counters["pipeline.curate.ok"] != snap.Counters["pipeline.curate.ok"] {
		t.Errorf("/debug/telemetry curate.ok = %d, want %d",
			wire.Counters["pipeline.curate.ok"], snap.Counters["pipeline.curate.ok"])
	}

	var buf bytes.Buffer
	if err := WriteTelemetry(&buf, snap); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"collect", "client.hlr.calls", "p99"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered telemetry missing %q", want)
		}
	}

	// Close is idempotent and telemetry survives it.
	if err := study.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := study.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if after := study.Telemetry(); after.Counters["pipeline.curate.ok"] == 0 {
		t.Error("telemetry lost after Close")
	}
}

// TestStudyCacheEndToEnd is the acceptance check for the enrichment
// cache: a study built with Options.Cache must run the full pipeline
// through the decorated services, record cache.<service>.* counters into
// the same telemetry registry, and report a non-nil typed CacheStats with
// real key reuse (a synthetic corpus repeats campaigns, domains, and
// sender numbers heavily, so hits must dominate).
func TestStudyCacheEndToEnd(t *testing.T) {
	study, err := NewStudy(Options{Seed: 13, Messages: 600, Cache: &CacheConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("empty dataset")
	}

	stats := study.CacheStats()
	if stats == nil {
		t.Fatal("CacheStats = nil with Options.Cache set")
	}
	var hits, misses int64
	for svc, st := range stats {
		hits += st.Hits + st.Coalesced
		misses += st.Misses
		if st.Misses == 0 && st.Hits == 0 && st.Coalesced == 0 {
			t.Errorf("service %q saw no traffic", svc)
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("cache saw hits=%d misses=%d, want both > 0", hits, misses)
	}
	// Domain-keyed services see heavy key reuse (many messages per
	// campaign domain); URL-keyed ones (avscan, shortener) mostly don't.
	for _, svc := range []string{"whois", "ctlog", "dnsdb"} {
		st := stats[svc]
		if st.Hits+st.Coalesced <= st.Misses {
			t.Errorf("%s: hits+coalesced (%d) <= misses (%d): domain reuse should dominate",
				svc, st.Hits+st.Coalesced, st.Misses)
		}
	}

	// Cache counters live in the same registry as the client metrics, and
	// every upstream call the clients record is a cache miss (or a stale
	// probe) — the decorators absorb the rest.
	snap := study.Telemetry()
	if snap.Counters["cache.whois.hits"] != stats["whois"].Hits {
		t.Errorf("telemetry cache.whois.hits = %d, CacheStats = %d",
			snap.Counters["cache.whois.hits"], stats["whois"].Hits)
	}
	if calls, m := snap.Counters["client.whois.calls"], stats["whois"].Misses; calls != m {
		t.Errorf("client.whois.calls = %d, want %d (one upstream call per miss)", calls, m)
	}

	var buf bytes.Buffer
	if err := WriteCacheStats(&buf, stats); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"enrichment cache", "whois", "hit%"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered cache stats missing %q:\n%s", want, buf.String())
		}
	}
}

// TestStudyWithoutCache keeps the default path honest: no Options.Cache
// means nil CacheStats and no cache.* counters in telemetry.
func TestStudyWithoutCache(t *testing.T) {
	study, err := NewStudy(Options{Seed: 3, Messages: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	if study.CacheStats() != nil {
		t.Error("CacheStats non-nil without Options.Cache")
	}
	if study.ResilienceStats() != nil {
		t.Error("ResilienceStats non-nil without Options.Resilience")
	}
	for name := range study.Telemetry().Counters {
		if strings.HasPrefix(name, "cache.") {
			t.Errorf("unexpected cache counter %q without Options.Cache", name)
		}
		if strings.HasPrefix(name, "breaker.") || strings.HasPrefix(name, "fault.") {
			t.Errorf("unexpected counter %q without Options.Resilience/Faults", name)
		}
	}
}

// TestStudyResilienceOneServiceDown is the facade acceptance check for
// the resilience layer: with whois 100% down behind its breaker, a run
// must still complete; whois fields degrade (each loss recorded on its
// record), every other service's fields resolve, and ResilienceStats
// shows the whois breaker open with real short-circuits.
func TestStudyResilienceOneServiceDown(t *testing.T) {
	study, err := NewStudy(Options{
		Seed:     17,
		Messages: 600,
		Faults: &FaultConfig{
			Seed:       17,
			PerService: map[string]ServiceFaults{"whois": {ErrorRate: 1}},
		},
		Resilience: &ResilienceConfig{
			Breaker:     BreakerConfig{FailureThreshold: 5, OpenTimeout: 50 * time.Millisecond},
			CallTimeout: 2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatalf("run with one dead service aborted; want degraded completion: %v", err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("empty dataset")
	}

	var whoisLost, whoisResolved, otherLost, otherEnriched int
	for _, r := range ds.Records {
		if r.WhoisFound {
			whoisResolved++
		}
		if r.CT.Certs > 0 || r.HLRDone || r.VTMalicious > 0 {
			otherEnriched++
		}
		for _, e := range r.EnrichmentErrors {
			if e.Service == "whois" {
				whoisLost++
				if e.Field != "whois" || e.Err == "" {
					t.Fatalf("malformed whois enrichment error: %+v", e)
				}
			} else {
				otherLost++
			}
		}
	}
	if whoisResolved != 0 {
		t.Errorf("%d records resolved whois through a 100%% dead service", whoisResolved)
	}
	if whoisLost == 0 {
		t.Error("no whois fields recorded as lost")
	}
	if otherLost != 0 {
		t.Errorf("%d fields lost on healthy services", otherLost)
	}
	if otherEnriched == 0 {
		t.Error("healthy services enriched nothing")
	}

	stats := study.ResilienceStats()
	if stats == nil {
		t.Fatal("ResilienceStats = nil with Options.Resilience set")
	}
	w := stats["whois"]
	if w.Opens == 0 {
		t.Errorf("whois breaker never opened: %+v", w)
	}
	if w.ShortCircuits == 0 {
		t.Errorf("open whois breaker short-circuited nothing: %+v", w)
	}
	for _, svc := range []string{"hlr", "ctlog", "dnsdb", "avscan", "shortener"} {
		if s := stats[svc]; s.Opens != 0 {
			t.Errorf("healthy service %s breaker opened: %+v", svc, s)
		}
	}
	// Short-circuited calls never reach the fault gate, so the injected
	// count plus breaker admissions stay consistent in telemetry.
	snap := study.Telemetry()
	if snap.Gauges["breaker.whois.state"] == int64(0) && w.State == "open" {
		t.Error("breaker.whois.state gauge disagrees with Stats")
	}
	if snap.Counters["fault.whois.injected"] == 0 {
		t.Error("no whois faults injected")
	}

	var buf bytes.Buffer
	if err := WriteResilienceStats(&buf, stats); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"resilience breakers", "whois"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered resilience stats missing %q:\n%s", want, buf.String())
		}
	}
}

// TestNewStudyClosesSimOnPipelineFailure covers the no-leaked-listeners
// contract: pipeline construction failure must yield an error (and close
// the already-booted simulation internally).
func TestNewStudyClosesSimOnPipelineFailure(t *testing.T) {
	opts := Options{Seed: 1, Messages: 50}
	opts.Pipeline.EnrichWorkers = -1
	if _, err := NewStudy(opts); err == nil {
		t.Fatal("NewStudy accepted a negative worker count")
	}
}

func TestGenerateWorldDeterministic(t *testing.T) {
	a := GenerateWorld(WorldConfig{Seed: 3, Messages: 100})
	b := GenerateWorld(WorldConfig{Seed: 3, Messages: 100})
	if len(a.Messages) != len(b.Messages) || a.Messages[0].Text != b.Messages[0].Text {
		t.Error("world generation not deterministic")
	}
}

func TestExtractorLadderExported(t *testing.T) {
	for _, e := range []struct {
		name string
		ext  interface{ Name() string }
	}{
		{"naive-ocr", ExtractorNaiveOCR},
		{"vision-ocr", ExtractorVisionOCR},
		{"structured-vision", ExtractorStructuredVision},
	} {
		if e.ext.Name() != e.name {
			t.Errorf("extractor name = %q, want %q", e.ext.Name(), e.name)
		}
	}
}

func TestMitigationFacade(t *testing.T) {
	w := GenerateWorld(WorldConfig{Seed: 81, Messages: 1500})
	docs := TrainingDocs(w, 82, 300)
	model, err := TrainDetector(docs, true)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFilter(FilterConfig{Classifier: model, BlockBadSenders: true})
	v, err := f.Check(context.Background(), "+447700900123",
		"HSBC alert: your account has been suspended. Verify at https://hsbc-verify.top/kyc within 24 hours")
	if err != nil {
		t.Fatal(err)
	}
	if v.Action != "block" {
		t.Errorf("smish verdict = %+v", v)
	}
	v, _ = f.Check(context.Background(), "+447700900123", "running late, see you at 7")
	if v.Action != "allow" {
		t.Errorf("ham verdict = %+v", v)
	}
}

func TestAnalysisFacade(t *testing.T) {
	study, err := NewStudy(Options{Seed: 85, Messages: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	ds, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	campaigns := ClusterCampaigns(ds, DefaultClusterOptions())
	if len(campaigns) == 0 || campaigns[0].Size() == 0 {
		t.Fatal("no campaigns clustered")
	}

	var buf bytes.Buffer
	n, err := WriteRelease(&buf, study.World)
	if err != nil || n != 500 {
		t.Fatalf("release write: n=%d err=%v", n, err)
	}
	records, err := ReadRelease(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRelease(records); err != nil {
		t.Fatal(err)
	}
	if len(GenerateHam(1, 10)) != 10 {
		t.Error("ham generation broken")
	}
}
