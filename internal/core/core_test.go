package core

import (
	"context"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/crawler"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/monitor"
	"github.com/smishkit/smishkit/internal/screenshot"
	"github.com/smishkit/smishkit/internal/senderid"
)

func runPipeline(t *testing.T, n int, seed int64) (*corpus.World, *Dataset) {
	t.Helper()
	w := corpus.Generate(corpus.Config{Seed: seed, Messages: n})
	sim, err := StartSimulation(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sim.Close() })

	reports, _, err := forum.CollectAll(context.Background(), sim.Collectors())
	if err != nil {
		t.Fatal(err)
	}
	pipe := mustPipeline(t, sim.Services(), Options{})
	ds, err := pipe.Run(context.Background(), reports)
	if err != nil {
		t.Fatal(err)
	}
	return w, ds
}

func TestPipelineEndToEnd(t *testing.T) {
	w, ds := runPipeline(t, 1200, 99)

	if len(ds.Records) == 0 {
		t.Fatal("no records curated")
	}
	// The curated count should approach the world's message count: decoys
	// rejected, everything else kept.
	if len(ds.Records) < len(w.Messages)*9/10 {
		t.Errorf("records = %d of %d messages", len(ds.Records), len(w.Messages))
	}
	if ds.DecoysRejected == 0 {
		t.Error("no decoys rejected — noise posts should include posters")
	}

	var withHLR, withURL, withFinal, withWhois, withCT, withVT, annotated int
	for _, r := range ds.Records {
		if r.HLRDone {
			withHLR++
			if r.SenderKind != senderid.KindPhone {
				t.Fatalf("HLR ran on non-phone sender %q", r.SenderRaw)
			}
		}
		if r.HasURL() {
			withURL++
		}
		if r.FinalURL != "" {
			withFinal++
		}
		if r.WhoisFound {
			withWhois++
		}
		if r.CT.Certs > 0 {
			withCT++
		}
		if r.VTMalicious > 0 {
			withVT++
		}
		if r.Annotation.ScamType != "" {
			annotated++
		}
	}
	if withHLR == 0 || withURL == 0 || withWhois == 0 || withCT == 0 || withVT == 0 {
		t.Errorf("enrichment coverage: hlr=%d url=%d whois=%d ct=%d vt=%d",
			withHLR, withURL, withWhois, withCT, withVT)
	}
	if withFinal >= withURL {
		// Some short links are taken down; their chains must be lost.
		takenDown := 0
		for _, l := range w.Links {
			if l.TakenDown {
				takenDown++
			}
		}
		if takenDown > 0 {
			t.Errorf("no chains lost despite %d taken-down links", takenDown)
		}
	}
	if annotated != len(ds.Records) {
		t.Errorf("annotated %d of %d", annotated, len(ds.Records))
	}
}

func TestPipelineHLRAgreesWithGroundTruth(t *testing.T) {
	w, ds := runPipeline(t, 800, 101)
	truth := w.Numbers
	checked := 0
	for _, r := range ds.Records {
		if !r.HLRDone || !r.HLR.Known {
			continue
		}
		s, ok := truth[r.HLR.MSISDN]
		if !ok {
			continue
		}
		checked++
		if r.HLR.OriginalMNO != s.MNO || r.HLR.NumberType != s.NumberType {
			t.Fatalf("HLR mismatch for %s: %+v vs %+v", r.HLR.MSISDN, r.HLR.Record, s)
		}
	}
	if checked == 0 {
		t.Fatal("no registry-backed HLR results")
	}
}

func TestPipelineShortenerExpansion(t *testing.T) {
	w, ds := runPipeline(t, 1500, 103)
	expanded := 0
	for _, r := range ds.Records {
		if r.Shortener == "" || r.FinalURL == "" || r.FinalURL == r.ShownURL {
			continue
		}
		expanded++
		// The expansion must match the world's link table.
		service, code := splitShort(r.ShownURL)
		link, ok := w.Links[service+"/"+code]
		if !ok {
			t.Fatalf("expanded unknown link %s/%s", service, code)
		}
		if link.Target != r.FinalURL {
			t.Fatalf("expansion mismatch: %q vs %q", r.FinalURL, link.Target)
		}
	}
	if expanded == 0 {
		t.Error("no short links expanded")
	}
}

func TestPipelineNaiveExtractorDegrades(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 105, Messages: 600})
	sim, err := StartSimulation(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	reports, _, err := forum.CollectAll(context.Background(), sim.Collectors())
	if err != nil {
		t.Fatal(err)
	}

	structured := mustPipeline(t, Services{}, Options{Extractor: screenshot.StructuredVision{}}).Curate(reports)
	naive := mustPipeline(t, Services{}, Options{Extractor: screenshot.NaiveOCR{}}).Curate(reports)

	if len(naive.Records) >= len(structured.Records) {
		t.Errorf("naive OCR curated %d >= structured %d; custom themes should be lost",
			len(naive.Records), len(structured.Records))
	}
	// Structured vision separates sender IDs; naive OCR cannot.
	structSenders, naiveSenders := 0, 0
	for _, r := range structured.Records {
		if r.FromImage && r.SenderRaw != "" {
			structSenders++
		}
	}
	for _, r := range naive.Records {
		if r.FromImage && r.SenderRaw != "" {
			naiveSenders++
		}
	}
	if naiveSenders >= structSenders {
		t.Errorf("sender recovery: naive %d >= structured %d", naiveSenders, structSenders)
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 107, Messages: 400})
	sim, err := StartSimulation(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	reports, _, err := forum.CollectAll(context.Background(), sim.Collectors())
	if err != nil {
		t.Fatal(err)
	}
	pipe := mustPipeline(t, sim.Services(), Options{})
	ds := pipe.Curate(reports)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pipe.Enrich(ctx, ds); err == nil {
		t.Fatal("cancelled enrichment returned nil error")
	}
}

func TestParseQuotedBody(t *testing.T) {
	text, sender := parseQuotedBody(`Got this: "Your parcel is held" from +447700900123`)
	if text != "Your parcel is held" || sender != "+447700900123" {
		t.Errorf("parsed = %q, %q", text, sender)
	}
	if text, _ := parseQuotedBody("no quotes here"); text != "" {
		t.Errorf("phantom quote: %q", text)
	}
}

func TestSplitShort(t *testing.T) {
	service, code := splitShort("https://bit.ly/aB9x?utm=1")
	if service != "bit.ly" || code != "aB9x" {
		t.Errorf("split = %q, %q", service, code)
	}
	if s, c := splitShort("https://bit.ly"); s != "" || c != "" {
		t.Errorf("no-path split = %q, %q", s, c)
	}
}

func TestTakedownScheduleLifespans(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 111, Messages: 800})
	sim, err := StartSimulation(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()

	start := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	clock, advance := monitor.NewVirtualTime(start)
	sim.EnableTakedownSchedule(start, clock)

	c := crawler.NewCrawler()
	c.Rewrite = sim.CrawlRouter().Rewrite
	var urls []string
	for _, m := range w.Messages {
		if m.FinalURL != "" && m.Domain != "" {
			urls = append(urls, m.FinalURL)
			if len(urls) == 60 {
				break
			}
		}
	}
	m := &monitor.Monitor{Crawler: c, Interval: 2 * time.Hour, Clock: clock, Advance: advance}
	targets, err := m.Run(context.Background(), urls, 60) // 5 simulated days
	if err != nil {
		t.Fatal(err)
	}
	sum := monitor.Summarize(targets)
	if sum.Died == 0 {
		t.Fatal("no takedowns observed over 5 simulated days")
	}
	// Corpus schedules takedowns 6-102 hours out: the measured spread must
	// land inside that bracket (paper: minutes to a few days).
	if sum.Lifespans.Min < 0 || sum.Lifespans.Max > 104 {
		t.Errorf("lifespan hours = %+v", sum.Lifespans)
	}
	t.Logf("lifespans (h): min=%.1f med=%.1f max=%.1f died=%d/%d",
		sum.Lifespans.Min, sum.Lifespans.Median, sum.Lifespans.Max, sum.Died, sum.Targets)
}
