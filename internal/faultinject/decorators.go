package faultinject

import (
	"context"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/whois"
)

// Injector decorates the core.Services seam with per-service fault
// gates. Build one per chaos run; it is safe for concurrent use.
type Injector struct {
	gates map[string]*gate
}

// New builds an injector recording into reg (nil is allowed: counters
// become no-ops). Multi-method services (dnsdb, avscan) share one gate,
// so a flapping window covers every method of the service.
func New(cfg Config, reg *telemetry.Registry) *Injector {
	in := &Injector{gates: make(map[string]*gate, 6)}
	for _, name := range []string{"hlr", "whois", "ctlog", "dnsdb", "avscan", "shortener"} {
		in.gates[name] = newGate(name, cfg.forService(name), cfg.Seed, reg)
	}
	return in
}

// WrapServices decorates every non-nil service whose fault mix is
// non-empty. Nil services stay nil and fault-free services pass through
// undecorated, so a targeted single-service outage costs nothing on the
// healthy paths.
// Bulk-capable services keep their core.Bulk* seam through the fault
// layer: the bulk decorator variants gate each key individually, so a
// flapping window degrades some slots of a batch rather than hiding the
// batching tier's fast path entirely.
func (in *Injector) WrapServices(s core.Services) core.Services {
	if s.HLR != nil && in.gates["hlr"].f.enabled() {
		base := faultyHLR{next: s.HLR, g: in.gates["hlr"]}
		if bulk, ok := s.HLR.(core.BulkHLRLookuper); ok {
			s.HLR = &faultyBulkHLR{faultyHLR: base, bulk: bulk}
		} else {
			s.HLR = &base
		}
	}
	if s.Whois != nil && in.gates["whois"].f.enabled() {
		s.Whois = &faultyWhois{next: s.Whois, g: in.gates["whois"]}
	}
	if s.CTLog != nil && in.gates["ctlog"].f.enabled() {
		s.CTLog = &faultyCT{next: s.CTLog, g: in.gates["ctlog"]}
	}
	if s.DNSDB != nil && in.gates["dnsdb"].f.enabled() {
		base := faultyDNS{next: s.DNSDB, g: in.gates["dnsdb"]}
		if bulk, ok := s.DNSDB.(core.BulkDNSResolver); ok {
			s.DNSDB = &faultyBulkDNS{faultyDNS: base, bulk: bulk}
		} else {
			s.DNSDB = &base
		}
	}
	if s.AVScan != nil && in.gates["avscan"].f.enabled() {
		base := faultyAV{next: s.AVScan, g: in.gates["avscan"]}
		if bulk, ok := s.AVScan.(core.BulkAVScanner); ok {
			s.AVScan = &faultyBulkAV{faultyAV: base, bulk: bulk}
		} else {
			s.AVScan = &base
		}
	}
	if s.Shortener != nil && in.gates["shortener"].f.enabled() {
		s.Shortener = &faultyShort{next: s.Shortener, g: in.gates["shortener"]}
	}
	return s
}

// gateBatch applies one gate decision per key: keys the gate rejects get
// that fault as their slot error, the survivors go upstream as a smaller
// batch, and the answers demultiplex back into their original slots.
func gateBatch[V any](ctx context.Context, g *gate, keys []string,
	bulk func(ctx context.Context, keys []string) ([]V, []error)) ([]V, []error) {
	vals := make([]V, len(keys))
	errs := make([]error, len(keys))
	pass := make([]string, 0, len(keys))
	slots := make([]int, 0, len(keys))
	for i, k := range keys {
		if err := g.before(ctx); err != nil {
			errs[i] = err
			continue
		}
		pass = append(pass, k)
		slots = append(slots, i)
	}
	if len(pass) == 0 {
		return vals, errs
	}
	pvals, perrs := bulk(ctx, pass)
	for j, i := range slots {
		if j < len(perrs) && perrs[j] != nil {
			errs[i] = perrs[j]
			continue
		}
		if j < len(pvals) {
			vals[i] = pvals[j]
		}
	}
	return vals, errs
}

type faultyHLR struct {
	next core.HLRLookuper
	g    *gate
}

func (d *faultyHLR) Lookup(ctx context.Context, msisdn string) (hlr.Result, error) {
	if err := d.g.before(ctx); err != nil {
		return hlr.Result{}, err
	}
	return d.next.Lookup(ctx, msisdn)
}

type faultyBulkHLR struct {
	faultyHLR
	bulk core.BulkHLRLookuper
}

func (d *faultyBulkHLR) LookupBatch(ctx context.Context, msisdns []string) ([]hlr.Result, []error) {
	return gateBatch(ctx, d.g, msisdns, d.bulk.LookupBatch)
}

type faultyWhois struct {
	next core.WhoisLookuper
	g    *gate
}

func (d *faultyWhois) Lookup(ctx context.Context, domain string) (whois.Record, bool, error) {
	if err := d.g.before(ctx); err != nil {
		return whois.Record{}, false, err
	}
	return d.next.Lookup(ctx, domain)
}

type faultyCT struct {
	next core.CTSummarizer
	g    *gate
}

func (d *faultyCT) Summary(ctx context.Context, domain string) (ctlog.Summary, error) {
	if err := d.g.before(ctx); err != nil {
		return ctlog.Summary{}, err
	}
	return d.next.Summary(ctx, domain)
}

type faultyDNS struct {
	next core.DNSResolver
	g    *gate
}

func (d *faultyDNS) Resolutions(ctx context.Context, domain string) ([]dnsdb.Observation, error) {
	if err := d.g.before(ctx); err != nil {
		return nil, err
	}
	return d.next.Resolutions(ctx, domain)
}

func (d *faultyDNS) ASOf(ctx context.Context, ip string) (dnsdb.ASInfo, error) {
	if err := d.g.before(ctx); err != nil {
		return dnsdb.ASInfo{}, err
	}
	return d.next.ASOf(ctx, ip)
}

type faultyBulkDNS struct {
	faultyDNS
	bulk core.BulkDNSResolver
}

func (d *faultyBulkDNS) ResolutionsBatch(ctx context.Context, domains []string) ([][]dnsdb.Observation, []error) {
	return gateBatch(ctx, d.g, domains, d.bulk.ResolutionsBatch)
}

type faultyAV struct {
	next core.AVScanner
	g    *gate
}

func (d *faultyAV) Scan(ctx context.Context, u string) (avscan.Report, error) {
	if err := d.g.before(ctx); err != nil {
		return avscan.Report{}, err
	}
	return d.next.Scan(ctx, u)
}

func (d *faultyAV) GSBLookup(ctx context.Context, u string) (avscan.GSBResult, error) {
	if err := d.g.before(ctx); err != nil {
		return avscan.GSBResult{}, err
	}
	return d.next.GSBLookup(ctx, u)
}

func (d *faultyAV) Transparency(ctx context.Context, u string) (avscan.TransparencyResult, bool, error) {
	if err := d.g.before(ctx); err != nil {
		return avscan.TransparencyResult{}, false, err
	}
	return d.next.Transparency(ctx, u)
}

type faultyBulkAV struct {
	faultyAV
	bulk core.BulkAVScanner
}

func (d *faultyBulkAV) ScanBatch(ctx context.Context, urls []string) ([]avscan.Report, []error) {
	return gateBatch(ctx, d.g, urls, d.bulk.ScanBatch)
}

func (d *faultyBulkAV) GSBLookupBatch(ctx context.Context, urls []string) ([]avscan.GSBResult, []error) {
	return gateBatch(ctx, d.g, urls, d.bulk.GSBLookupBatch)
}

type faultyShort struct {
	next core.ShortExpander
	g    *gate
}

func (d *faultyShort) Expand(ctx context.Context, service, code string) (string, error) {
	if err := d.g.before(ctx); err != nil {
		return "", err
	}
	return d.next.Expand(ctx, service, code)
}
