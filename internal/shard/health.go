package shard

import (
	"context"
	"strconv"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/telemetry"
)

// Shard lifecycle: the prober maintains each shard's up/down state so the
// router can steer keys away from a dead shard before (probe-driven) or
// during (dispatch-failure-driven) a round, and the supervisor can tell a
// restarted worker has come back. State changes are cheap and local — the
// expensive part, re-dispatch, only happens for the routed subset of a
// shard that actually failed.

// HealthChecker is implemented by enrichers that can be probed for
// liveness (RemoteEnricher asks the worker's /healthz; the local Stack is
// trivially healthy). Enrichers without it are treated as always up.
type HealthChecker interface {
	Healthy(ctx context.Context) error
}

// ProbeConfig tunes a Prober. The zero value selects every documented
// default.
type ProbeConfig struct {
	// Interval is the probe cadence (default 2s).
	Interval time.Duration
	// Timeout bounds one probe request (default 1s).
	Timeout time.Duration
	// DownAfter is how many consecutive probe failures mark a shard down
	// (default 1). A single success always marks it back up.
	DownAfter int
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 1
	}
	return c
}

// Prober tracks per-shard up/down state: a background Run loop probes
// every target each Interval, and the Group feeds it dispatch outcomes
// (MarkDown on an enrich failure, MarkUp when the supervisor swaps in a
// fresh worker). State lands in telemetry as "shard.<i>.health" gauges
// (1 up, 0 down) and "shard.<i>.flaps" transition counters.
type Prober struct {
	cfg    ProbeConfig
	ticks  *telemetry.Counter
	health []*telemetry.Gauge
	flaps  []*telemetry.Counter

	mu     sync.Mutex
	source func() []Enricher
	up     []bool
	streak []int // consecutive probe failures while up
	flapsN []int64
}

// NewProber builds a prober for n shards, all initially up. Wire its
// probe targets with SetSource (Group.AttachProber does) before Run.
func NewProber(n int, cfg ProbeConfig, reg *telemetry.Registry) *Prober {
	p := &Prober{
		cfg:    cfg.withDefaults(),
		ticks:  reg.Counter("shard.probe.ticks"),
		health: make([]*telemetry.Gauge, n),
		flaps:  make([]*telemetry.Counter, n),
		up:     make([]bool, n),
		streak: make([]int, n),
		flapsN: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		p.health[i] = reg.Gauge("shard." + strconv.Itoa(i) + ".health")
		p.flaps[i] = reg.Counter("shard." + strconv.Itoa(i) + ".flaps")
		p.up[i] = true
		p.health[i].Set(1)
	}
	return p
}

// SetSource installs the function the prober pulls its current targets
// from — a pull seam rather than a stored slice, so enricher swaps
// (SetEnrichers, supervisor restarts) are picked up without re-wiring.
func (p *Prober) SetSource(f func() []Enricher) {
	p.mu.Lock()
	p.source = f
	p.mu.Unlock()
}

// Run probes every target each Interval until ctx is cancelled.
func (p *Prober) Run(ctx context.Context) {
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.ProbeOnce(ctx)
		}
	}
}

// ProbeOnce probes every target concurrently, each bounded by Timeout,
// and folds the results into the up/down state.
func (p *Prober) ProbeOnce(ctx context.Context) {
	p.mu.Lock()
	source := p.source
	p.mu.Unlock()
	if source == nil {
		return
	}
	targets := source()
	p.ticks.Inc()
	var wg sync.WaitGroup
	for i, t := range targets {
		if i >= len(p.up) {
			break
		}
		hc, ok := t.(HealthChecker)
		if !ok {
			// Not probeable (an in-process Stack without the interface):
			// always up.
			p.setState(i, true)
			continue
		}
		wg.Add(1)
		go func(i int, hc HealthChecker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
			defer cancel()
			p.setState(i, hc.Healthy(pctx) == nil)
		}(i, hc)
	}
	wg.Wait()
}

// setState folds one probe outcome into shard i's state.
func (p *Prober) setState(i int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ok {
		p.streak[i] = 0
		p.markLocked(i, true)
		return
	}
	p.streak[i]++
	if p.up[i] && p.streak[i] >= p.cfg.DownAfter {
		p.markLocked(i, false)
	}
}

// markLocked transitions shard i to the given state, counting the flap.
// Callers hold p.mu.
func (p *Prober) markLocked(i int, up bool) {
	if p.up[i] == up {
		return
	}
	p.up[i] = up
	p.flapsN[i]++
	p.flaps[i].Inc()
	if up {
		p.health[i].Set(1)
	} else {
		p.health[i].Set(0)
	}
}

// MarkDown forces shard i down immediately — the Group calls it when a
// dispatch fails, so routing steers around the shard without waiting for
// the next probe tick.
func (p *Prober) MarkDown(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.up) {
		return
	}
	p.streak[i] = p.cfg.DownAfter
	p.markLocked(i, false)
}

// MarkUp forces shard i up immediately — the supervisor calls it after a
// restarted worker passes its connect-time health check.
func (p *Prober) MarkUp(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.up) {
		return
	}
	p.streak[i] = 0
	p.markLocked(i, true)
}

// Up reports shard i's current state.
func (p *Prober) Up(i int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return i >= 0 && i < len(p.up) && p.up[i]
}

// AliveMask returns a copy of the per-shard up/down state.
func (p *Prober) AliveMask() []bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]bool, len(p.up))
	copy(out, p.up)
	return out
}

// Flaps returns how many up<->down transitions shard i has made.
func (p *Prober) Flaps(i int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.flapsN) {
		return 0
	}
	return p.flapsN[i]
}
