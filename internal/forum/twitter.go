package forum

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/checkpoint"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/netutil"
)

// TwitterServer speaks a faithful subset of the v2 full-archive search API
// the paper used through the Academic track (§3.1.1): Bearer-token auth,
// next_token pagination, since_id incremental queries, media expansion via
// includes, and rate limiting. Posts may be appended while the server is
// live (the daemon's continuously-arriving report stream), so all access
// goes through a read-write lock.
type TwitterServer struct {
	mu      sync.RWMutex
	posts   []post // sorted by CreatedAt; Append only adds at the tail
	bearer  string
	limiter *netutil.TokenBucket
}

// NewTwitterServer seeds the server. ratePerSec <= 0 disables limiting.
func NewTwitterServer(posts []post, bearer string, ratePerSec float64) *TwitterServer {
	sorted := make([]post, len(posts))
	copy(sorted, posts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].CreatedAt.Before(sorted[j].CreatedAt) })
	s := &TwitterServer{posts: sorted, bearer: bearer}
	if ratePerSec > 0 {
		s.limiter = netutil.NewTokenBucket(int(ratePerSec*2)+1, ratePerSec)
	}
	return s
}

// Append publishes new posts at the tail of the timeline. Batches must be
// chronologically at-or-after the existing posts (SplitFixtures guarantees
// this): pagination tokens and since_id positions are index-based, so
// inserting in the middle would corrupt live cursors.
func (s *TwitterServer) Append(posts []post) {
	batch := make([]post, len(posts))
	copy(batch, posts)
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].CreatedAt.Before(batch[j].CreatedAt) })
	s.mu.Lock()
	s.posts = append(s.posts, batch...)
	s.mu.Unlock()
}

// Twitter API wire types (subset).
type tweetObject struct {
	ID          string            `json:"id"`
	Text        string            `json:"text"`
	CreatedAt   time.Time         `json:"created_at"`
	Attachments *tweetAttachments `json:"attachments,omitempty"`
}

type tweetAttachments struct {
	MediaKeys []string `json:"media_keys"`
}

type mediaObject struct {
	MediaKey string `json:"media_key"`
	Type     string `json:"type"`
	URL      string `json:"url"`
}

type searchResponse struct {
	Data     []tweetObject `json:"data"`
	Includes struct {
		Media []mediaObject `json:"media,omitempty"`
	} `json:"includes"`
	Meta struct {
		ResultCount int    `json:"result_count"`
		NextToken   string `json:"next_token,omitempty"`
	} `json:"meta"`
}

// Handler returns the API routes.
func (s *TwitterServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /2/tweets/search/all", s.handleSearch)
	mux.HandleFunc("GET /2/media/{key}", s.handleMedia)
	return mux
}

func (s *TwitterServer) authorized(r *http.Request) bool {
	if s.bearer == "" {
		return true
	}
	return r.Header.Get("Authorization") == "Bearer "+s.bearer
}

func (s *TwitterServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		netutil.WriteError(w, http.StatusUnauthorized, "invalid bearer token")
		return
	}
	if s.limiter != nil && !s.limiter.Allow() {
		netutil.WriteRateLimited(w, s.limiter.RetryAfter(1))
		return
	}
	query := strings.ToLower(r.URL.Query().Get("query"))
	if query == "" {
		netutil.WriteError(w, http.StatusBadRequest, "missing query")
		return
	}
	query = strings.Trim(query, `"`)
	maxResults := 10
	if v := r.URL.Query().Get("max_results"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 10 && n <= 500 {
			maxResults = n
		}
	}

	s.mu.RLock()
	defer s.mu.RUnlock()

	start := 0
	// since_id restricts the search to tweets after the given ID — the v2
	// incremental-sync contract. Position-based: posts are append-only in
	// chronological order, so "after this ID" is "after its index".
	if sid := r.URL.Query().Get("since_id"); sid != "" {
		for i := range s.posts {
			if s.posts[i].ID == sid {
				start = i + 1
				break
			}
		}
	}
	if tok := r.URL.Query().Get("next_token"); tok != "" {
		n, err := strconv.Atoi(strings.TrimPrefix(tok, "pg-"))
		if err != nil {
			netutil.WriteError(w, http.StatusBadRequest, "bad next_token")
			return
		}
		if n > start {
			start = n
		}
	}

	var resp searchResponse
	resp.Data = []tweetObject{} // v2 returns an empty array, not null
	matched := 0
	for i := start; i < len(s.posts); i++ {
		p := s.posts[i]
		if !strings.Contains(strings.ToLower(p.Body), query) {
			continue
		}
		matched++
		tw := tweetObject{ID: p.ID, Text: p.Body, CreatedAt: p.CreatedAt}
		if len(p.Attachment) > 0 {
			key := "m-" + p.ID
			tw.Attachments = &tweetAttachments{MediaKeys: []string{key}}
			resp.Includes.Media = append(resp.Includes.Media, mediaObject{
				MediaKey: key, Type: "photo", URL: "/2/media/" + key,
			})
		}
		resp.Data = append(resp.Data, tw)
		if matched == maxResults {
			if i+1 < len(s.posts) {
				resp.Meta.NextToken = fmt.Sprintf("pg-%d", i+1)
			}
			break
		}
	}
	resp.Meta.ResultCount = len(resp.Data)
	netutil.WriteJSON(w, http.StatusOK, resp)
}

func (s *TwitterServer) handleMedia(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(r) {
		netutil.WriteError(w, http.StatusUnauthorized, "invalid bearer token")
		return
	}
	key := strings.TrimPrefix(r.PathValue("key"), "m-")
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.posts {
		if p.ID == key && len(p.Attachment) > 0 {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(p.Attachment)
			return
		}
	}
	http.NotFound(w, r)
}

// TwitterCollector drains the search API across all keywords.
type TwitterCollector struct {
	API      netutil.Client
	Bearer   string
	PageSize int // default 100
}

// NewTwitterCollector builds a collector for the API at baseURL.
func NewTwitterCollector(baseURL, bearer string) *TwitterCollector {
	c := &TwitterCollector{Bearer: bearer, PageSize: 100}
	c.API = netutil.Client{
		BaseURL: baseURL,
		Headers: map[string]string{"Authorization": "Bearer " + bearer},
	}
	return c
}

// Name implements Collector.
func (c *TwitterCollector) Name() corpus.Forum { return corpus.ForumTwitter }

// Collect implements Collector: a full-history sync from a zero cursor.
func (c *TwitterCollector) Collect(ctx ctxType, sink func(RawReport) error) error {
	_, err := c.CollectSince(ctx, checkpoint.Cursor{}, sink)
	return err
}

// CollectSince implements IncrementalCollector: each keyword resumes from
// its stored since_id (the newest tweet ID fully consumed for that
// keyword), follows next_token pagination within the round, downloads
// media, and deduplicates across keywords. Cross-round dedup falls out of
// the since_id contract: a tweet matching several keywords is covered by
// every one of their cursors after the round it appeared in.
func (c *TwitterCollector) CollectSince(ctx ctxType, cur checkpoint.Cursor, sink func(RawReport) error) (checkpoint.Cursor, error) {
	next := cur.Clone()
	next.Source = "twitter"
	seen := make(map[string]bool)
	size := c.PageSize
	if size <= 0 {
		size = 100
	}
	for _, kw := range Keywords {
		sinceID := cur.Token(kw)
		newest := sinceID
		pageTok := ""
		for {
			path := fmt.Sprintf("/2/tweets/search/all?query=%s&max_results=%d",
				strings.ReplaceAll(kw, " ", "%20"), size)
			if sinceID != "" {
				path += "&since_id=" + sinceID
			}
			if pageTok != "" {
				path += "&next_token=" + pageTok
			}
			var resp searchResponse
			if err := c.API.GetJSON(ctx, path, &resp); err != nil {
				return cur, fmt.Errorf("forum: twitter search %q: %w", kw, err)
			}
			mediaByKey := make(map[string]string, len(resp.Includes.Media))
			for _, m := range resp.Includes.Media {
				mediaByKey[m.MediaKey] = m.URL
			}
			for _, tw := range resp.Data {
				// Results arrive oldest-first, so the last tweet of the last
				// page is the keyword's new high-water mark.
				newest = tw.ID
				if seen[tw.ID] {
					continue
				}
				seen[tw.ID] = true
				rep := RawReport{
					Forum:    corpus.ForumTwitter,
					PostID:   tw.ID,
					PostedAt: tw.CreatedAt,
					Body:     tw.Text,
				}
				if tw.Attachments != nil {
					for _, key := range tw.Attachments.MediaKeys {
						if url, ok := mediaByKey[key]; ok {
							data, err := c.fetchMedia(ctx, url)
							if err != nil {
								return cur, fmt.Errorf("forum: twitter media %s: %w", key, err)
							}
							rep.Attachment = data
						}
					}
				}
				if err := sink(rep); err != nil {
					return cur, err
				}
			}
			if resp.Meta.NextToken == "" {
				break
			}
			pageTok = resp.Meta.NextToken
		}
		if newest != "" {
			next.SetToken(kw, newest)
		}
	}
	next.Updated = time.Now().UTC()
	return next, nil
}

func (c *TwitterCollector) fetchMedia(ctx ctxType, path string) ([]byte, error) {
	return fetchBytes(ctx, &c.API, path)
}
