package crawler

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/smishkit/smishkit/internal/malware"
	"github.com/smishkit/smishkit/internal/shortener"
)

// fabric wires a shortener and a site server behind a Router.
type fabric struct {
	sites *SiteServer
	short *shortener.Service
	crawl *Crawler
}

func newFabric(t *testing.T) *fabric {
	t.Helper()
	f := &fabric{sites: NewSiteServer(), short: shortener.NewService()}
	siteSrv := httptest.NewServer(f.sites.Handler())
	t.Cleanup(siteSrv.Close)
	shortSrv := httptest.NewServer(f.short.Handler())
	t.Cleanup(shortSrv.Close)

	router := &Router{
		ShortenerBase: shortSrv.URL,
		ShortenerHosts: map[string]bool{
			"bit.ly": true, "is.gd": true, "shrtco.de": true,
		},
		SiteBase: siteSrv.URL,
	}
	f.crawl = NewCrawler()
	f.crawl.Rewrite = router.Rewrite
	return f
}

func TestCrawlPhishingPageDesktop(t *testing.T) {
	f := newFabric(t)
	f.sites.Add(SiteBehavior{Domain: "sbi-kyc.top", Brand: "State Bank of India"})

	res := f.crawl.Crawl(context.Background(), "https://sbi-kyc.top/verify", PersonaDesktop)
	if res.Outcome != OutcomePhishingPage {
		t.Fatalf("outcome = %s (err %v)", res.Outcome, res.Err)
	}
	if !strings.Contains(res.PageTitle, "State Bank of India") {
		t.Errorf("title = %q", res.PageTitle)
	}
	if len(res.Chain) != 1 {
		t.Errorf("chain = %v", res.Chain)
	}
}

func TestCrawlDeviceDependentRedirect(t *testing.T) {
	f := newFabric(t)
	f.sites.Add(SiteBehavior{
		Domain: "sa-krs.web.app", Brand: "Bank",
		ServesAPK: true, MalwareFamily: "SMSspy",
	})

	desktop, android := f.crawl.CrawlBoth(context.Background(), "https://sa-krs.web.app/")
	if desktop.Outcome != OutcomePhishingPage {
		t.Fatalf("desktop outcome = %s (err %v)", desktop.Outcome, desktop.Err)
	}
	if android.Outcome != OutcomeAPKDownload {
		t.Fatalf("android outcome = %s (err %v)", android.Outcome, android.Err)
	}
	want := malware.HashBytes(malware.APKPayload("sa-krs.web.app", "SMSspy"))
	if android.APKSHA256 != want {
		t.Errorf("apk hash = %s, want %s", android.APKSHA256, want)
	}
	if android.APKSize == 0 {
		t.Error("apk size = 0")
	}
	if len(android.Chain) < 2 {
		t.Errorf("android chain = %v, want redirect hop", android.Chain)
	}
}

func TestCrawlThroughShortener(t *testing.T) {
	f := newFabric(t)
	f.sites.Add(SiteBehavior{Domain: "evri-fee.top", Brand: "Evri"})
	f.short.Add(shortener.Link{Service: "bit.ly", Code: "abc12", Target: "https://evri-fee.top/pay"})

	res := f.crawl.Crawl(context.Background(), "https://bit.ly/abc12", PersonaDesktop)
	if res.Outcome != OutcomePhishingPage {
		t.Fatalf("outcome = %s (err %v)", res.Outcome, res.Err)
	}
	if res.FinalURL != "https://evri-fee.top/pay" {
		t.Errorf("final = %q", res.FinalURL)
	}
	if len(res.Chain) != 2 {
		t.Errorf("chain = %v", res.Chain)
	}
}

func TestCrawlTakenDownShortLink(t *testing.T) {
	f := newFabric(t)
	f.short.Add(shortener.Link{Service: "bit.ly", Code: "gone1", Target: "https://x.top/", TakenDown: true})

	res := f.crawl.Crawl(context.Background(), "https://bit.ly/gone1", PersonaDesktop)
	if res.Outcome != OutcomeDead {
		t.Fatalf("outcome = %s", res.Outcome)
	}
}

func TestCrawlTakenDownSite(t *testing.T) {
	f := newFabric(t)
	f.sites.Add(SiteBehavior{Domain: "dead.top", Brand: "X", TakenDown: true})
	res := f.crawl.Crawl(context.Background(), "https://dead.top/x", PersonaAndroid)
	if res.Outcome != OutcomeDead {
		t.Fatalf("outcome = %s", res.Outcome)
	}
}

func TestCrawlUnknownHost(t *testing.T) {
	f := newFabric(t)
	res := f.crawl.Crawl(context.Background(), "https://never-registered.example/x", PersonaDesktop)
	if res.Outcome != OutcomeDead {
		t.Fatalf("outcome = %s", res.Outcome)
	}
}

func TestCrawlRedirectLoopBounded(t *testing.T) {
	loop := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/again", http.StatusFound)
	}))
	defer loop.Close()

	c := NewCrawler()
	c.MaxHops = 5
	res := c.Crawl(context.Background(), loop.URL+"/start", PersonaDesktop)
	if res.Outcome != OutcomeError || !errors.Is(res.Err, ErrTooManyHops) {
		t.Fatalf("outcome = %s err = %v", res.Outcome, res.Err)
	}
	if len(res.Chain) != 5 {
		t.Errorf("chain length = %d", len(res.Chain))
	}
}

func TestCrawlSubdomainRouting(t *testing.T) {
	f := newFabric(t)
	f.sites.Add(SiteBehavior{Domain: "evil.top", Brand: "Bank"})
	res := f.crawl.Crawl(context.Background(), "https://secure.evil.top/login", PersonaDesktop)
	if res.Outcome != OutcomePhishingPage {
		t.Fatalf("subdomain outcome = %s (err %v)", res.Outcome, res.Err)
	}
}

func TestRouterRewrite(t *testing.T) {
	r := &Router{
		ShortenerBase:  "http://127.0.0.1:1000",
		ShortenerHosts: map[string]bool{"bit.ly": true},
		SiteBase:       "http://127.0.0.1:2000",
	}
	cases := map[string]string{
		"https://bit.ly/abc":       "http://127.0.0.1:1000/abc?host=bit.ly",
		"https://evil.top/p?x=1":   "http://127.0.0.1:2000/p?x=1&site=evil.top",
		"https://evil.top":         "http://127.0.0.1:2000/?site=evil.top",
		"https://evil.top/?site=已": "http://127.0.0.1:2000/?site=已",
	}
	for in, want := range cases {
		if got := r.Rewrite(in); got != want {
			t.Errorf("Rewrite(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestResolveRef(t *testing.T) {
	cases := []struct {
		base, ref, want string
	}{
		{"https://a.com/x", "https://b.com/y", "https://b.com/y"},
		{"https://a.com/x?q=1", "/z", "https://a.com/z"},
		{"https://a.com/x", "z", "https://a.com/z"},
	}
	for _, c := range cases {
		if got := resolveRef(c.base, c.ref); got != c.want {
			t.Errorf("resolveRef(%q, %q) = %q, want %q", c.base, c.ref, got, c.want)
		}
	}
}

func TestExtractTitle(t *testing.T) {
	if got := extractTitle("<html><title>  Hello </title></html>"); got != "Hello" {
		t.Errorf("title = %q", got)
	}
	if got := extractTitle("no title here"); got != "" {
		t.Errorf("phantom title %q", got)
	}
}
