package forum

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/screenshot"
)

// Fixtures holds the seeded content for all five forum servers.
type Fixtures struct {
	Twitter    []post
	Reddit     []post
	Smishtank  []post
	SmishingEU []post
	Pastebin   []post
}

// commentary users attach around the screenshot; every variant carries at
// least one collection keyword so the simulated search finds it.
var commentaries = []string{
	"Got this smishing text today, be careful out there",
	"Another phishing sms impersonating @%s, reported",
	"Is this an sms scam? Received this morning",
	"PSA: sms fraud attempt going around, don't click",
	"This smishing attempt almost got my mum. Reporting here",
	"More phishing sms spam. When will carriers block this sms fraud?",
}

// noiseBodies are the awareness/chatter posts that match the keywords but
// are not reports — the curation stage must filter them (§3.2).
var noiseBodies = []string{
	"Our new blog post explains what smishing is and how to avoid sms fraud",
	"Reminder: forward any sms scam to 7726. Retweet to spread awareness",
	"We are hiring a researcher to study phishing sms campaigns",
	"Join our webinar on smishing and mobile threats this Thursday",
	"Thread: 10 red flags of an sms scam, number 7 will surprise you",
}

// redactSender is what privacy-minded reporters replace sender IDs with.
const redactSender = "+44 74** ***123"

// BuildFixtures routes every world message to its forum in the forum's
// native shape, appends keyword-matching noise posts, and renders
// screenshot attachments where the report has one.
func BuildFixtures(w *corpus.World) *Fixtures {
	rng := rand.New(rand.NewSource(w.Seed ^ 0x5eed))
	f := &Fixtures{}
	for _, m := range w.Messages {
		p := buildPost(rng, m)
		switch m.Forum {
		case corpus.ForumTwitter:
			f.Twitter = append(f.Twitter, p)
		case corpus.ForumReddit:
			p.Subreddit = pickSubreddit(rng)
			f.Reddit = append(f.Reddit, p)
		case corpus.ForumSmishtank:
			f.Smishtank = append(f.Smishtank, p)
		case corpus.ForumSmishingEU:
			f.SmishingEU = append(f.SmishingEU, p)
		case corpus.ForumPastebin:
			f.Pastebin = append(f.Pastebin, p)
		}
	}
	// Noise posts: only the screenshot-driven social forums carry them;
	// smishing.eu/Pastebin/Smishtank are purpose-built reporting channels.
	addNoise := func(forum corpus.Forum, out *[]post) {
		n := w.NoisePosts[forum]
		for i := 0; i < n; i++ {
			p := post{
				ID:        fmt.Sprintf("%s-noise-%05d", forum, i),
				CreatedAt: randomTime(rng),
				Body:      noiseBodies[rng.Intn(len(noiseBodies))],
				IsNoise:   true,
			}
			if rng.Float64() < 0.5 {
				// Half the noise posts attach a poster or unrelated image.
				if rng.Float64() < 0.7 {
					p.Attachment = screenshot.RenderPoster("Think before you click").Encode()
				} else {
					p.Attachment = screenshot.RenderUnrelated(i).Encode()
				}
			}
			if forum == corpus.ForumReddit {
				p.Subreddit = pickSubreddit(rng)
			}
			*out = append(*out, p)
		}
	}
	addNoise(corpus.ForumTwitter, &f.Twitter)
	addNoise(corpus.ForumReddit, &f.Reddit)
	return f
}

// SplitFixtures divides every forum's posts chronologically into an
// initial backlog plus `waves` later batches, modelling reports that keep
// arriving while the daemon runs. initialShare is the fraction of each
// forum's posts seeded up front (clamped to [0,1]); the remainder is split
// as evenly as possible across the waves. Ordering is deterministic
// (CreatedAt, then ID) so a split run and an unsplit run publish the same
// posts in the same relative order — the invariant the servers' append-only
// position-based cursors rely on.
func SplitFixtures(f *Fixtures, initialShare float64, waves int) (*Fixtures, []*Fixtures) {
	if initialShare < 0 {
		initialShare = 0
	}
	if initialShare > 1 {
		initialShare = 1
	}
	if waves < 0 {
		waves = 0
	}
	initial := &Fixtures{}
	out := make([]*Fixtures, waves)
	for i := range out {
		out[i] = &Fixtures{}
	}
	split := func(posts []post, init *[]post, pick func(w *Fixtures) *[]post) {
		sorted := make([]post, len(posts))
		copy(sorted, posts)
		sort.SliceStable(sorted, func(i, j int) bool {
			if !sorted[i].CreatedAt.Equal(sorted[j].CreatedAt) {
				return sorted[i].CreatedAt.Before(sorted[j].CreatedAt)
			}
			return sorted[i].ID < sorted[j].ID
		})
		n0 := int(float64(len(sorted)) * initialShare)
		if waves == 0 {
			n0 = len(sorted)
		}
		*init = sorted[:n0]
		rest := sorted[n0:]
		for i := 0; i < waves; i++ {
			lo := len(rest) * i / waves
			hi := len(rest) * (i + 1) / waves
			*pick(out[i]) = rest[lo:hi]
		}
	}
	split(f.Twitter, &initial.Twitter, func(w *Fixtures) *[]post { return &w.Twitter })
	split(f.Reddit, &initial.Reddit, func(w *Fixtures) *[]post { return &w.Reddit })
	split(f.Smishtank, &initial.Smishtank, func(w *Fixtures) *[]post { return &w.Smishtank })
	split(f.SmishingEU, &initial.SmishingEU, func(w *Fixtures) *[]post { return &w.SmishingEU })
	split(f.Pastebin, &initial.Pastebin, func(w *Fixtures) *[]post { return &w.Pastebin })
	return initial, out
}

// Len is the total post count across all five forums.
func (f *Fixtures) Len() int {
	return len(f.Twitter) + len(f.Reddit) + len(f.Smishtank) + len(f.SmishingEU) + len(f.Pastebin)
}

// each visits every post in place, forum by forum.
func (f *Fixtures) each(visit func(p *post)) {
	for _, slice := range [][]post{f.Twitter, f.Reddit, f.Smishtank, f.SmishingEU, f.Pastebin} {
		for i := range slice {
			visit(&slice[i])
		}
	}
}

// Filter returns a shallow copy keeping only the named forums' posts.
// Names are the checkpoint source names (Sources / corpus.Forum strings);
// unknown names select nothing — callers validate before filtering.
func Filter(f *Fixtures, keep map[string]bool) *Fixtures {
	out := &Fixtures{}
	if keep[string(corpus.ForumTwitter)] {
		out.Twitter = f.Twitter
	}
	if keep[string(corpus.ForumReddit)] {
		out.Reddit = f.Reddit
	}
	if keep[string(corpus.ForumSmishtank)] {
		out.Smishtank = f.Smishtank
	}
	if keep[string(corpus.ForumSmishingEU)] {
		out.SmishingEU = f.SmishingEU
	}
	if keep[string(corpus.ForumPastebin)] {
		out.Pastebin = f.Pastebin
	}
	return out
}

// Rebase re-stamps every post's CreatedAt onto a fresh timeline starting
// at base — preserving the fixtures' (CreatedAt, ID) order, one step
// apart — and prefixes every post ID with prefix. Load injection needs
// both: appended batches must be chronologically at-or-after the live
// servers' tails (the Append contract), and IDs from repeated synthetic
// worlds would otherwise collide with the ID-resolving cursors (Reddit
// `after`, Twitter since_id). It returns the first timestamp past the
// rebased range, the base for the next wave.
func Rebase(f *Fixtures, prefix string, base time.Time, step time.Duration) time.Time {
	if step <= 0 {
		step = time.Millisecond
	}
	var all []*post
	f.each(func(p *post) { all = append(all, p) })
	sort.SliceStable(all, func(i, j int) bool {
		if !all[i].CreatedAt.Equal(all[j].CreatedAt) {
			return all[i].CreatedAt.Before(all[j].CreatedAt)
		}
		return all[i].ID < all[j].ID
	})
	t := base
	for _, p := range all {
		p.ID = prefix + p.ID
		p.CreatedAt = t
		t = t.Add(step)
	}
	return t
}

// MaxCreatedAt returns the latest CreatedAt across every post (zero time
// when empty) — the tail an injected wave must be rebased past.
func MaxCreatedAt(f *Fixtures) time.Time {
	var max time.Time
	f.each(func(p *post) {
		if p.CreatedAt.After(max) {
			max = p.CreatedAt
		}
	})
	return max
}

func buildPost(rng *rand.Rand, m corpus.Message) post {
	p := post{
		ID:        string(m.Forum) + "-" + m.ID,
		CreatedAt: m.ReportedAt,
		Country:   m.Sender.Country,
	}
	displaySender := m.Sender.Value
	if m.RedactSender {
		displaySender = redactSender
	}
	displayText := m.Text
	if m.RedactURL && m.URL != "" {
		displayText = strings.ReplaceAll(displayText, m.URL, redactedURL(m.URL))
	}

	switch m.Forum {
	case corpus.ForumTwitter, corpus.ForumReddit:
		c := commentaries[rng.Intn(len(commentaries))]
		if strings.Contains(c, "%s") {
			brand := m.Brand
			if brand == "" {
				brand = "my bank"
			}
			c = fmt.Sprintf(c, strings.ReplaceAll(brand, " ", ""))
		}
		p.Body = c
		if m.HasScreenshot {
			p.Attachment = renderShot(rng, m, displaySender, displayText)
		} else {
			// No screenshot: the user quotes the SMS in the post body.
			p.Body = c + `: "` + displayText + `" from ` + displaySender
		}
	case corpus.ForumSmishtank:
		p.SMSText = displayText
		p.SenderID = displaySender
		p.Timestamp = m.SentAt.Format("2006-01-02T15:04:05Z")
		if m.HasScreenshot {
			p.Attachment = renderShot(rng, m, displaySender, displayText)
		}
	case corpus.ForumSmishingEU:
		p.SMSText = displayText
		p.SenderID = displaySender
		p.Brand = m.Brand
		p.Timestamp = m.SentAt.Format("2006-01-02") // date only (§3.3.2)
	case corpus.ForumPastebin:
		p.SMSText = displayText
		p.SenderID = displaySender
		p.Timestamp = m.SentAt.Format("2006-01-02") // date only
	}
	return p
}

func renderShot(rng *rand.Rand, m corpus.Message, sender, text string) []byte {
	spec := screenshot.Spec{
		Sender: sender,
		Body:   text,
		URL:    m.URL,
		Theme:  screenshot.Themes[rng.Intn(len(screenshot.Themes))],
	}
	if m.RedactURL {
		spec.URL = ""
	}
	spec.Timestamp = m.SentAt
	spec.TimeOnly = !m.ScreenshotTime
	return screenshot.Render(spec).Encode()
}

func redactedURL(u string) string {
	if i := strings.LastIndex(u, "/"); i > 8 {
		return u[:i+1] + "******"
	}
	return "https://********"
}

// subreddits follow §3.1.2: r/Scams dominates, then a long tail of
// one-post communities.
var subreddits = []string{
	"Scams", "Scams", "Scams", "Scams", "cybersecurity", "cybersecurity",
	"ledgerwallet", "phishing", "privacy", "uknews", "india", "Netherlands",
	"australia", "legaladvice", "personalfinance", "banking",
}

func pickSubreddit(rng *rand.Rand) string {
	if rng.Float64() < 0.35 {
		// Long tail: a fresh single-post community.
		return fmt.Sprintf("community%04d", rng.Intn(1200))
	}
	return subreddits[rng.Intn(len(subreddits))]
}

func randomTime(rng *rand.Rand) time.Time {
	return time.Unix(1500000000+rng.Int63n(190000000), 0).UTC()
}
