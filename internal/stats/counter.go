// Package stats provides the small statistical toolkit the measurement
// pipeline needs: frequency counters with top-k extraction, descriptive
// statistics and quantiles, the two-sample Kolmogorov–Smirnov test used for
// Fig. 2's weekday comparisons, and Cohen's kappa used in the annotation
// evaluation (§3.4 of the paper).
package stats

import (
	"fmt"
	"sort"
)

// Counter counts occurrences of string keys. The zero value is not usable;
// construct with NewCounter.
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add increments key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments key by n. Negative n is allowed and decrements; a key
// whose count reaches zero is retained (callers that care should use Prune).
func (c *Counter) AddN(key string, n int) {
	c.counts[key] += n
	c.total += n
}

// Count returns the count for key (zero if absent).
func (c *Counter) Count(key string) int { return c.counts[key] }

// Total returns the sum of all counts.
func (c *Counter) Total() int { return c.total }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Share returns key's fraction of the total, or 0 when the counter is empty.
func (c *Counter) Share(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// Prune removes keys whose count is <= 0.
func (c *Counter) Prune() {
	for k, v := range c.counts {
		if v <= 0 {
			c.total -= v
			delete(c.counts, k)
		}
	}
}

// Entry is a key with its count and its share of the counter total.
type Entry struct {
	Key   string
	Count int
	Share float64
}

func (e Entry) String() string {
	return fmt.Sprintf("%s: %d (%.1f%%)", e.Key, e.Count, e.Share*100)
}

// TopK returns the k most frequent entries in descending count order.
// Ties break lexicographically by key so output is deterministic.
// k <= 0 or k >= Len returns all entries.
func (c *Counter) TopK(k int) []Entry {
	entries := make([]Entry, 0, len(c.counts))
	for key, n := range c.counts {
		var share float64
		if c.total != 0 {
			share = float64(n) / float64(c.total)
		}
		entries = append(entries, Entry{Key: key, Count: n, Share: share})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
	if k > 0 && k < len(entries) {
		entries = entries[:k]
	}
	return entries
}

// Keys returns all keys in descending count order.
func (c *Counter) Keys() []string {
	top := c.TopK(0)
	keys := make([]string, len(top))
	for i, e := range top {
		keys[i] = e.Key
	}
	return keys
}

// Merge adds every count from other into c.
func (c *Counter) Merge(other *Counter) {
	for k, v := range other.counts {
		c.AddN(k, v)
	}
}

// CrossTab counts co-occurrences of (row, col) pairs, e.g. URL shortener ×
// scam type for Table 5 or lure × scam type for Table 13.
type CrossTab struct {
	cells map[string]map[string]int
	rows  *Counter
	cols  *Counter
}

// NewCrossTab returns an empty CrossTab.
func NewCrossTab() *CrossTab {
	return &CrossTab{
		cells: make(map[string]map[string]int),
		rows:  NewCounter(),
		cols:  NewCounter(),
	}
}

// Add increments the (row, col) cell by one.
func (t *CrossTab) Add(row, col string) {
	m := t.cells[row]
	if m == nil {
		m = make(map[string]int)
		t.cells[row] = m
	}
	m[col]++
	t.rows.Add(row)
	t.cols.Add(col)
}

// Cell returns the count at (row, col).
func (t *CrossTab) Cell(row, col string) int { return t.cells[row][col] }

// RowTotals returns a counter of row marginals.
func (t *CrossTab) RowTotals() *Counter { return t.rows }

// ColTotals returns a counter of column marginals.
func (t *CrossTab) ColTotals() *Counter { return t.cols }

// Total returns the grand total.
func (t *CrossTab) Total() int { return t.rows.Total() }

// RowShare returns the fraction of row's total falling in col.
func (t *CrossTab) RowShare(row, col string) float64 {
	rt := t.rows.Count(row)
	if rt == 0 {
		return 0
	}
	return float64(t.cells[row][col]) / float64(rt)
}
