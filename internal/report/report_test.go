package report

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/senderid"
)

var (
	dsOnce sync.Once
	dsVal  *core.Dataset
	dsErr  error
)

// sharedDataset runs the full simulated pipeline once for all tests.
func sharedDataset(t *testing.T) *core.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		w := corpus.Generate(corpus.Config{Seed: 404, Messages: 6000})
		sim, err := core.StartSimulation(w)
		if err != nil {
			dsErr = err
			return
		}
		defer sim.Close()
		reports, _, err := forum.CollectAll(context.Background(), sim.Collectors())
		if err != nil {
			dsErr = err
			return
		}
		pipe, err := core.NewPipeline(sim.Services(), core.Options{EnrichWorkers: 16})
		if err != nil {
			dsErr = err
			return
		}
		dsVal, dsErr = pipe.Run(context.Background(), reports)
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

func TestTable1Shape(t *testing.T) {
	ds := sharedDataset(t)
	rows := Table1(ds)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byForum := map[corpus.Forum]Table1Row{}
	for _, r := range rows {
		byForum[r.Forum] = r
	}
	tw := byForum[corpus.ForumTwitter]
	if tw.Posts == 0 || tw.Images == 0 {
		t.Fatalf("twitter row empty: %+v", tw)
	}
	// Twitter dominates (92% in Table 1).
	for _, f := range []corpus.Forum{corpus.ForumReddit, corpus.ForumSmishingEU, corpus.ForumPastebin} {
		if byForum[f].TotalTexts >= tw.TotalTexts {
			t.Errorf("%s (%d texts) >= twitter (%d)", f, byForum[f].TotalTexts, tw.TotalTexts)
		}
	}
	if tw.UniqueTexts > tw.TotalTexts || tw.UniqueURLs > tw.TotalURLs {
		t.Error("unique counts exceed totals")
	}
}

func TestTable3Shape(t *testing.T) {
	ds := sharedDataset(t)
	c := Table3(ds.Records)
	top := c.TopK(2)
	if len(top) < 2 {
		t.Fatalf("too few number types: %v", top)
	}
	if top[0].Key != string(senderid.TypeMobile) {
		t.Errorf("top type = %q, want mobile (Table 3: 66.7%%)", top[0].Key)
	}
	if top[1].Key != string(senderid.TypeBadFormat) {
		t.Errorf("second type = %q, want bad_format (24.3%%)", top[1].Key)
	}
}

func TestTable4Shape(t *testing.T) {
	ds := sharedDataset(t)
	rows := Table4(ds.Records, 10)
	if len(rows) < 5 {
		t.Fatalf("only %d MNO rows", len(rows))
	}
	// Vodafone must place top-3 and span the most countries (Table 4).
	vodafoneRank, maxCountries, vodafoneCountries := -1, 0, 0
	for i, r := range rows {
		if len(r.Countries) > maxCountries {
			maxCountries = len(r.Countries)
		}
		if r.MNO == "Vodafone" {
			vodafoneRank = i
			vodafoneCountries = len(r.Countries)
		}
	}
	if vodafoneRank < 0 || vodafoneRank > 2 {
		t.Errorf("Vodafone rank = %d, want top-3", vodafoneRank)
	}
	if vodafoneCountries < maxCountries {
		t.Errorf("Vodafone spans %d countries; another MNO spans %d", vodafoneCountries, maxCountries)
	}
	if vodafoneCountries < 8 {
		t.Errorf("Vodafone spans only %d countries; Table 4 shows 18", vodafoneCountries)
	}
}

func TestTable5Shape(t *testing.T) {
	ds := sharedDataset(t)
	ct := Table5(ds.Records)
	top := ct.RowTotals().TopK(1)
	if len(top) == 0 || top[0].Key != "bit.ly" {
		t.Fatalf("top shortener = %v, want bit.ly", top)
	}
	// is.gd is banking-heavy (Table 5): most of its URLs are banking.
	isgdBank := ct.RowShare("is.gd", string(corpus.ScamBanking))
	if ct.RowTotals().Count("is.gd") >= 20 && isgdBank < 0.6 {
		t.Errorf("is.gd banking share = %.2f, want >= 0.6", isgdBank)
	}
}

func TestTable6Shape(t *testing.T) {
	ds := sharedDataset(t)
	landing, shortened := Table6(ds.Records)
	if top := landing.TopK(1); top[0].Key != "com" {
		t.Errorf("top landing TLD = %q, want com", top[0].Key)
	}
	if top := shortened.TopK(1); top[0].Key != "ly" {
		t.Errorf("top shortened TLD = %q, want ly", top[0].Key)
	}
}

func TestTable7Shape(t *testing.T) {
	ds := sharedDataset(t)
	rows := Table7(ds.Records, 10)
	if len(rows) == 0 {
		t.Fatal("no CA rows")
	}
	if rows[0].CA != "Let's Encrypt" {
		t.Errorf("top CA = %q, want Let's Encrypt", rows[0].CA)
	}
	if rows[0].Certificates <= rows[0].Domains {
		t.Error("Let's Encrypt cert count should exceed its domain count (90-day renewals)")
	}
}

func TestTable8Shape(t *testing.T) {
	ds := sharedDataset(t)
	rows := Table8(ds.Records, 10)
	if len(rows) == 0 {
		t.Fatal("no AS rows")
	}
	if rows[0].ASName != "Cloudflare" {
		t.Errorf("top AS = %q, want Cloudflare (§4.6)", rows[0].ASName)
	}
}

func TestTable9Shape(t *testing.T) {
	ds := sharedDataset(t)
	res := Table9(ds.Records)
	if res.URLs == 0 {
		t.Fatal("no URLs scanned")
	}
	und := float64(res.Undetected) / float64(res.URLs)
	if und < 0.30 || und > 0.62 {
		t.Errorf("undetected share = %.2f, want ~0.45 (Table 9)", und)
	}
	if !(res.MaliciousGE[1] >= res.MaliciousGE[3] &&
		res.MaliciousGE[3] >= res.MaliciousGE[5] &&
		res.MaliciousGE[5] >= res.MaliciousGE[10] &&
		res.MaliciousGE[10] >= res.MaliciousGE[15]) {
		t.Error("malicious tiers not monotone")
	}
	if res.MaliciousGE[15] > res.URLs/20 {
		t.Errorf(">=15 flags on %d of %d URLs; should be rare", res.MaliciousGE[15], res.URLs)
	}
}

func TestTable10Shape(t *testing.T) {
	ds := sharedDataset(t)
	c, langs := Table10(ds.Records)
	top := c.TopK(1)
	if top[0].Key != string(corpus.ScamBanking) {
		t.Errorf("top category = %q, want banking (45.1%%)", top[0].Key)
	}
	if s := c.Share(string(corpus.ScamBanking)); s < 0.35 || s > 0.60 {
		t.Errorf("banking share = %.2f", s)
	}
	if len(langs[string(corpus.ScamBanking)]) == 0 || langs[string(corpus.ScamBanking)][0] != "en" {
		t.Errorf("banking top language = %v, want en first", langs[string(corpus.ScamBanking)])
	}
}

func TestTable11Shape(t *testing.T) {
	ds := sharedDataset(t)
	c := Table11(ds.Records)
	top := c.TopK(2)
	if top[0].Key != "en" {
		t.Errorf("top language = %q, want en (65.2%%)", top[0].Key)
	}
	if top[1].Key != "es" {
		t.Errorf("second language = %q, want es (13.7%%)", top[1].Key)
	}
	if c.Len() < 10 {
		t.Errorf("only %d languages detected", c.Len())
	}
}

func TestTable12Shape(t *testing.T) {
	ds := sharedDataset(t)
	c := Table12(ds.Records)
	if top := c.TopK(1); top[0].Key != "State Bank of India" {
		t.Errorf("top brand = %q, want State Bank of India (Table 12)", top[0].Key)
	}
	// Financial institutions dominate the top 10.
	banks := 0
	for _, e := range c.TopK(10) {
		switch e.Key {
		case "State Bank of India", "PayTM", "HDFC", "ICICI Bank", "Santander",
			"Rabobank", "BBVA", "CaixaBank", "HSBC", "Chase", "Barclays",
			"ING", "Sparkasse", "Intesa Sanpaolo", "Axis Bank", "Bank of America",
			"Punjab National Bank", "MUFG", "SMBC", "Bank BRI", "Crédit Agricole",
			"Wells Fargo", "Lloyds Bank", "Commonwealth Bank", "KBC":
			banks++
		}
	}
	if banks < 4 {
		t.Errorf("only %d banks in top-10 brands, want >= 4", banks)
	}
}

func TestTable13Shape(t *testing.T) {
	ds := sharedDataset(t)
	ct := Table13(ds.Records)
	// Authority applies to the four institutional scams and not to the
	// conversation scams (Table 13 checkmarks).
	if ct.Cell(string(corpus.LureAuthority), string(corpus.ScamBanking)) == 0 {
		t.Error("no authority lure in banking")
	}
	if ct.Cell(string(corpus.LureAuthority), string(corpus.ScamHeyMumDad)) > 2 {
		t.Error("authority lure leaked into hey mum/dad")
	}
	if ct.Cell(string(corpus.LureKindness), string(corpus.ScamHeyMumDad)) == 0 {
		t.Error("no kindness lure in hey mum/dad")
	}
	// Dishonesty is the rarest lure (§5.5: 0.5%).
	dish := ct.RowTotals().Count(string(corpus.LureDishonesty))
	if float64(dish) > 0.02*float64(ct.Total()) {
		t.Errorf("dishonesty lure count %d too high", dish)
	}
}

func TestTable14Shape(t *testing.T) {
	ds := sharedDataset(t)
	rows := Table14(ds.Records, 10)
	if len(rows) < 5 {
		t.Fatalf("only %d country rows", len(rows))
	}
	if rows[0].Country != "IND" {
		t.Errorf("top country = %q, want IND (Table 14)", rows[0].Country)
	}
	for _, r := range rows {
		if r.Live > r.Numbers {
			t.Errorf("%s: live %d > numbers %d", r.Country, r.Live, r.Numbers)
		}
	}
}

func TestTable15Shape(t *testing.T) {
	ds := sharedDataset(t)
	posts, images := Table15(ds.Records, corpus.ForumTwitter)
	if len(posts) < 4 {
		t.Fatalf("only %d years", len(posts))
	}
	// Reports grow over time (Table 15): 2022 > 2017.
	if posts[2022] <= posts[2017] {
		t.Errorf("2022 (%d) <= 2017 (%d)", posts[2022], posts[2017])
	}
	for y, n := range images {
		if n > posts[y] {
			t.Errorf("year %d: more images than posts", y)
		}
	}
}

func TestTable16Shape(t *testing.T) {
	ds := sharedDataset(t)
	urls, tlds := Table16(ds.Records)
	gShare := urls.Share("generic")
	ccShare := urls.Share("country-code")
	if gShare <= ccShare {
		t.Errorf("generic share %.2f <= ccTLD share %.2f (Table 16: 72%% vs 27%%)", gShare, ccShare)
	}
	if tlds["generic"] == 0 || tlds["country-code"] == 0 {
		t.Error("TLD diversity missing")
	}
}

func TestTable17Shape(t *testing.T) {
	ds := sharedDataset(t)
	c := Table17(ds.Records)
	top := c.TopK(2)
	if len(top) < 2 || top[0].Key != "GoDaddy" {
		t.Fatalf("top registrars = %v, want GoDaddy first (Table 17)", top)
	}
	if top[1].Key != "NameCheap" {
		t.Errorf("second registrar = %q, want NameCheap", top[1].Key)
	}
}

func TestTable18Shape(t *testing.T) {
	ds := sharedDataset(t)
	res := Table18(ds.Records)
	if res.URLs == 0 {
		t.Fatal("no URLs")
	}
	apiShare := float64(res.APIUnsafe) / float64(res.URLs)
	if apiShare > 0.05 {
		t.Errorf("GSB API share = %.3f, want ~0.01 (Table 18)", apiShare)
	}
	blockedShare := float64(res.TRBlocked) / float64(res.URLs)
	if blockedShare < 0.35 || blockedShare > 0.65 {
		t.Errorf("transparency blocked = %.2f, want ~0.50", blockedShare)
	}
	if res.TRUnsafe <= res.APIUnsafe {
		t.Errorf("transparency unsafe (%d) should exceed API unsafe (%d)", res.TRUnsafe, res.APIUnsafe)
	}
}

func TestFig2Shape(t *testing.T) {
	ds := sharedDataset(t)
	res := Fig2(ds.Records, true)
	if res.N == 0 {
		t.Fatal("no dated timestamps")
	}
	// Weekday medians land in business hours (Fig. 2: 12:26-14:38).
	for _, d := range []time.Weekday{time.Monday, time.Wednesday, time.Friday} {
		s, ok := res.ByWeekday[d]
		if !ok {
			continue
		}
		if s.Median < 9 || s.Median > 20 {
			t.Errorf("%s median send hour = %.1f, want business hours", d, s.Median)
		}
	}
}

func TestFig2CampaignExclusion(t *testing.T) {
	ds := sharedDataset(t)
	with := Fig2(ds.Records, false)
	without := Fig2(ds.Records, true)
	if without.N >= with.N {
		t.Errorf("campaign exclusion removed nothing: %d vs %d (SBI burst expected)", without.N, with.N)
	}
}

func TestFig3Shape(t *testing.T) {
	ds := sharedDataset(t)
	mix := Fig3(ds.Records, 10)
	ind, ok := mix["IND"]
	if !ok {
		t.Fatal("IND missing from Fig 3")
	}
	if ind[string(corpus.ScamBanking)] < 0.5 {
		t.Errorf("IND banking share = %.2f, want > 0.5 (Fig 3)", ind[string(corpus.ScamBanking)])
	}
	if usa, ok := mix["USA"]; ok {
		if usa[string(corpus.ScamBanking)] >= ind[string(corpus.ScamBanking)] {
			t.Error("USA banking share should be below IND's")
		}
	}
}

func TestSenderKindsShape(t *testing.T) {
	ds := sharedDataset(t)
	c := SenderKinds(ds.Records)
	phone := c.Share(string(senderid.KindPhone))
	alnum := c.Share(string(senderid.KindAlphanumeric))
	email := c.Share(string(senderid.KindEmail))
	if !(phone > alnum && alnum > email) {
		t.Errorf("kind ordering broken: phone=%.2f alnum=%.2f email=%.2f", phone, alnum, email)
	}
}

func TestRenderAllProducesEveryExhibit(t *testing.T) {
	ds := sharedDataset(t)
	var buf bytes.Buffer
	RenderAll(&buf, ds)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 3", "Table 4", "Table 5", "Table 6a", "Table 6b",
		"Table 7", "Table 8", "Table 9", "Table 10", "Table 11", "Table 12",
		"Table 13", "Table 14", "Table 15", "Table 16", "Table 17", "Table 18",
		"Fig 2", "Fig 3", "Sender-ID kinds",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("render missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("render suspiciously short: %d bytes", len(out))
	}
}

func TestFig2WeekdayDifferencesDetected(t *testing.T) {
	ds := sharedDataset(t)
	res := Fig2(ds.Records, true)
	// The generator shifts Wednesday/Saturday later than Monday/Tuesday
	// (Fig. 2's medians); KS must detect at least one weekday pair.
	if len(res.SignificantPairs) == 0 {
		t.Error("no KS-significant weekday pairs; per-day profiles should differ (§5.1)")
	}
	mon, okM := res.ByWeekday[time.Monday]
	wed, okW := res.ByWeekday[time.Wednesday]
	if okM && okW && wed.Median <= mon.Median {
		t.Errorf("Wednesday median (%.2f) not later than Monday (%.2f)", wed.Median, mon.Median)
	}
}

func TestOthersBreakdownShape(t *testing.T) {
	ds := sharedDataset(t)
	c := OthersBreakdown(ds.Records)
	if c.Total() == 0 {
		t.Fatal("no others messages")
	}
	// §5.2's manual sample: tech impersonation is the biggest cluster.
	if top := c.TopK(1); top[0].Key != string(corpus.SubTech) {
		t.Errorf("top others cluster = %q, want tech_impersonation", top[0].Key)
	}
	for _, sub := range []corpus.OtherSubType{corpus.SubJob, corpus.SubCrypto} {
		if c.Count(string(sub)) == 0 {
			t.Errorf("cluster %s missing", sub)
		}
	}
}
