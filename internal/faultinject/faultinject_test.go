package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// fakeHLR is a healthy downstream that counts how many calls get through.
type fakeHLR struct{ calls int }

func (f *fakeHLR) Lookup(context.Context, string) (hlr.Result, error) {
	f.calls++
	return hlr.Result{Known: true}, nil
}

func wrapHLR(cfg Config, reg *telemetry.Registry, next core.HLRLookuper) core.HLRLookuper {
	return New(cfg, reg).WrapServices(core.Services{HLR: next}).HLR
}

// TestDeterministicSequence is the reproducibility contract: two
// injectors with the same seed and config produce the same pass/fail
// decision at every call position.
func TestDeterministicSequence(t *testing.T) {
	cfg := Config{Seed: 42, Default: ServiceFaults{ErrorRate: 0.2, Rate5xx: 0.2}}
	run := func() []bool {
		svc := wrapHLR(cfg, nil, &fakeHLR{})
		outcomes := make([]bool, 500)
		for i := range outcomes {
			_, err := svc.Lookup(context.Background(), "+447700900123")
			outcomes[i] = err == nil
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different sequence somewhere.
	cfg.Seed = 43
	c := wrapHLR(cfg, nil, &fakeHLR{})
	diverged := false
	for i := range a {
		_, err := c.Lookup(context.Background(), "+447700900123")
		if (err == nil) != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("seed 43 reproduced seed 42's decision sequence exactly")
	}
}

// TestInjectionRateAndTelemetry drives enough calls through a 30% error
// mix to pin the realized rate near the configured one, and checks the
// fault.<svc>.* counters account for every injection.
func TestInjectionRateAndTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	next := &fakeHLR{}
	svc := wrapHLR(Config{Seed: 7, Default: ServiceFaults{ErrorRate: 0.2, Rate5xx: 0.1}}, reg, next)

	const calls = 3000
	failed := 0
	for i := 0; i < calls; i++ {
		if _, err := svc.Lookup(context.Background(), "+447700900123"); err != nil {
			failed++
		}
	}
	rate := float64(failed) / calls
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("realized failure rate = %.3f, want ~0.30", rate)
	}
	if next.calls != calls-failed {
		t.Errorf("downstream saw %d calls, want %d (failed calls must not reach it)",
			next.calls, calls-failed)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fault.hlr.injected"]; got != int64(failed) {
		t.Errorf("fault.hlr.injected = %d, want %d", got, failed)
	}
	if snap.Counters["fault.hlr.errors"]+snap.Counters["fault.hlr.server_errors"] != int64(failed) {
		t.Errorf("per-kind counters don't sum to injected: %v", snap.Counters)
	}
}

// TestFlappingWindowsAreDeterministic checks the call-counter windows: of
// every 10 calls the first 4 fail, exactly, regardless of seed.
func TestFlappingWindowsAreDeterministic(t *testing.T) {
	svc := wrapHLR(Config{Seed: 1, Default: ServiceFaults{FlapPeriod: 10, FlapDown: 4}}, nil, &fakeHLR{})
	for i := 0; i < 100; i++ {
		_, err := svc.Lookup(context.Background(), "+447700900123")
		wantDown := i%10 < 4
		if (err != nil) != wantDown {
			t.Fatalf("call %d: err=%v, want down=%v", i, err, wantDown)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("flap failure not marked ErrInjected: %v", err)
		}
	}
}

// TestInjectedStatusCodes verifies 429/5xx surface as netutil.APIError —
// the shape the cache's serve-stale path and the breaker classifier key on.
func TestInjectedStatusCodes(t *testing.T) {
	for _, tc := range []struct {
		faults ServiceFaults
		status int
	}{
		{ServiceFaults{Rate429: 1}, 429},
		{ServiceFaults{Rate5xx: 1}, 503},
	} {
		svc := wrapHLR(Config{Seed: 1, Default: tc.faults}, nil, &fakeHLR{})
		_, err := svc.Lookup(context.Background(), "+447700900123")
		var ae *netutil.APIError
		if !errors.As(err, &ae) || ae.Status != tc.status {
			t.Errorf("faults %+v: err = %v, want APIError status %d", tc.faults, err, tc.status)
		}
	}
}

// TestHangRespectsContext: a 100% hang rate must block until the context
// dies and return its error, never reaching the downstream.
func TestHangRespectsContext(t *testing.T) {
	next := &fakeHLR{}
	svc := wrapHLR(Config{Seed: 1, Default: ServiceFaults{HangRate: 1}}, nil, next)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := svc.Lookup(ctx, "+447700900123")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("hang returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("hang returned before the context deadline")
	}
	if next.calls != 0 {
		t.Errorf("hung call reached the downstream (%d calls)", next.calls)
	}
}

// TestLatencyInjection: SlowRate delays but still completes the call.
func TestLatencyInjection(t *testing.T) {
	next := &fakeHLR{}
	svc := wrapHLR(Config{Seed: 1, Default: ServiceFaults{SlowRate: 1, Latency: 10 * time.Millisecond}}, nil, next)
	start := time.Now()
	if _, err := svc.Lookup(context.Background(), "+447700900123"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("slow call took %v, want >= 10ms", d)
	}
	if next.calls != 1 {
		t.Errorf("downstream calls = %d, want 1", next.calls)
	}
}

// TestWrapServicesPreservesNilAndHealthy: nil services stay nil (stage
// skipping) and fault-free services pass through undecorated.
func TestWrapServicesPreservesNilAndHealthy(t *testing.T) {
	next := &fakeHLR{}
	in := New(Config{Seed: 1, PerService: map[string]ServiceFaults{"whois": {ErrorRate: 1}}}, nil)
	s := in.WrapServices(core.Services{HLR: next})
	if s.Whois != nil || s.CTLog != nil || s.DNSDB != nil || s.AVScan != nil || s.Shortener != nil {
		t.Error("nil services did not stay nil")
	}
	if s.HLR != core.HLRLookuper(next) {
		t.Error("fault-free HLR service was decorated")
	}
}
