// Package textnorm normalizes the adversarial text found in smishing
// messages. Scammers evade keyword filters with leetspeak ("N3tfl!x"),
// confusable Unicode homoglyphs ("РayРal" with Cyrillic Р), zero-width
// characters, and spacing tricks; the paper's §3.3.6 notes off-the-shelf NER
// fails on exactly these. This package provides the canonicalization layer
// the brand and scam-type annotators are built on.
package textnorm

import (
	"strings"
	"unicode"
)

// homoglyphs maps visually confusable runes to their ASCII skeleton.
// Sources: Unicode confusables (the subset attackers actually use in SMS),
// plus common Cyrillic/Greek lookalikes.
var homoglyphs = map[rune]rune{
	// Cyrillic lookalikes
	'а': 'a', 'е': 'e', 'о': 'o', 'р': 'p', 'с': 'c', 'х': 'x', 'у': 'y',
	'А': 'a', 'В': 'b', 'Е': 'e', 'К': 'k', 'М': 'm', 'Н': 'h', 'О': 'o',
	'Р': 'p', 'С': 'c', 'Т': 't', 'Х': 'x', 'і': 'i', 'ѕ': 's', 'ј': 'j',
	// Greek lookalikes
	'α': 'a', 'β': 'b', 'ε': 'e', 'ι': 'i', 'κ': 'k', 'ν': 'v', 'ο': 'o',
	'ρ': 'p', 'τ': 't', 'υ': 'u', 'Α': 'a', 'Β': 'b', 'Ε': 'e', 'Ζ': 'z',
	'Η': 'h', 'Ι': 'i', 'Κ': 'k', 'Μ': 'm', 'Ν': 'n', 'Ο': 'o', 'Ρ': 'p',
	'Τ': 't', 'Υ': 'y', 'Χ': 'x',
	// Fullwidth forms
	'ａ': 'a', 'ｂ': 'b', 'ｃ': 'c', 'ｄ': 'd', 'ｅ': 'e', 'ｆ': 'f',
	'ｇ': 'g', 'ｈ': 'h', 'ｉ': 'i', 'ｊ': 'j', 'ｋ': 'k', 'ｌ': 'l',
	'ｍ': 'm', 'ｎ': 'n', 'ｏ': 'o', 'ｐ': 'p', 'ｑ': 'q', 'ｒ': 'r',
	'ｓ': 's', 'ｔ': 't', 'ｕ': 'u', 'ｖ': 'v', 'ｗ': 'w', 'ｘ': 'x',
	'ｙ': 'y', 'ｚ': 'z',
}

// leet maps digit/symbol substitutions back to letters. Applied only inside
// words that already contain letters, so "7726" stays numeric.
var leet = map[rune]rune{
	'0': 'o', '1': 'l', '3': 'e', '4': 'a', '5': 's', '7': 't',
	'@': 'a', '$': 's', '!': 'i', '€': 'e', '£': 'l',
}

// diacritics strips accents from common Latin letters (enough for the
// languages in the corpus; full NFD decomposition is overkill offline).
var diacritics = map[rune]rune{
	'á': 'a', 'à': 'a', 'â': 'a', 'ä': 'a', 'ã': 'a', 'å': 'a', 'ā': 'a',
	'é': 'e', 'è': 'e', 'ê': 'e', 'ë': 'e', 'ē': 'e',
	'í': 'i', 'ì': 'i', 'î': 'i', 'ï': 'i', 'ī': 'i',
	'ó': 'o', 'ò': 'o', 'ô': 'o', 'ö': 'o', 'õ': 'o', 'ø': 'o', 'ō': 'o',
	'ú': 'u', 'ù': 'u', 'û': 'u', 'ü': 'u', 'ū': 'u',
	'ç': 'c', 'ñ': 'n', 'ß': 's', 'ý': 'y', 'ÿ': 'y',
	'Á': 'a', 'À': 'a', 'Â': 'a', 'Ä': 'a', 'Ã': 'a', 'Å': 'a',
	'É': 'e', 'È': 'e', 'Ê': 'e', 'Ë': 'e',
	'Í': 'i', 'Ì': 'i', 'Î': 'i', 'Ï': 'i',
	'Ó': 'o', 'Ò': 'o', 'Ô': 'o', 'Ö': 'o', 'Õ': 'o', 'Ø': 'o',
	'Ú': 'u', 'Ù': 'u', 'Û': 'u', 'Ü': 'u',
	'Ç': 'c', 'Ñ': 'n',
}

// zeroWidth contains invisible characters attackers splice into brand names.
var zeroWidth = map[rune]bool{
	'\u200b': true, // zero width space
	'\u200c': true, // zero width non-joiner
	'\u200d': true, // zero width joiner
	'\ufeff': true, // byte order mark
	'\u00ad': true, // soft hyphen
	'\u2060': true, // word joiner
}

// Fold lowercases s and collapses homoglyphs, diacritics, and zero-width
// characters into an ASCII-leaning skeleton. It does NOT apply leetspeak
// substitution; see Skeleton for the aggressive form used in brand matching.
func Fold(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if zeroWidth[r] {
			continue
		}
		// Lowercase first so fullwidth/Cyrillic/Greek capitals land on the
		// lowercase keys of the confusable tables; the tables emit ASCII,
		// which makes Fold idempotent.
		r = unicode.ToLower(r)
		if m, ok := homoglyphs[r]; ok {
			r = m
		}
		if m, ok := diacritics[r]; ok {
			r = m
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Skeleton applies Fold and then leetspeak de-substitution to letter-bearing
// words, producing the canonical form used for brand matching: both
// "N3tfl!x" and "netflix" skeletonize to "netflix".
func Skeleton(s string) string {
	folded := Fold(s)
	words := strings.FieldsFunc(folded, func(r rune) bool {
		return unicode.IsSpace(r)
	})
	for i, w := range words {
		if hasLetter(w) {
			words[i] = deLeet(w)
		}
	}
	return strings.Join(words, " ")
}

func hasLetter(w string) bool {
	for _, r := range w {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

func deLeet(w string) string {
	var b strings.Builder
	b.Grow(len(w))
	for _, r := range w {
		if m, ok := leet[r]; ok {
			r = m
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Tokenize splits s into lowercase word tokens after folding. Punctuation is
// dropped; digits are kept (amounts and short codes carry signal).
func Tokenize(s string) []string {
	folded := Fold(s)
	return strings.FieldsFunc(folded, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// CollapseRepeats squeezes runs of 3+ identical letters to 2 ("heeeelp" ->
// "heelp"), a cheap tactic-resistant canonicalization for keyword matching.
func CollapseRepeats(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	var prev rune
	run := 0
	for _, r := range s {
		if r == prev {
			run++
			if run >= 3 {
				continue
			}
		} else {
			prev, run = r, 1
		}
		b.WriteRune(r)
	}
	return b.String()
}

// StripSpacingTricks removes the separator characters scammers insert inside
// brand names ("P-a-y-P-a-l", "A m a z o n") when every fragment is short.
// It conservatively rejoins only single-rune fragments so normal hyphenated
// words survive.
func StripSpacingTricks(s string) string {
	for _, sep := range []string{"-", ".", " ", "_", "*"} {
		parts := strings.Split(s, sep)
		if len(parts) < 4 {
			continue
		}
		allSingle := true
		for _, p := range parts {
			if len([]rune(p)) != 1 {
				allSingle = false
				break
			}
		}
		if allSingle {
			return strings.Join(parts, "")
		}
	}
	return s
}
