// Package resilience keeps the measurement pipeline alive through
// enrichment-source outages: per-service circuit breakers over the
// interfaces in internal/core, plus the configuration for the pipeline's
// per-record deadline budgets and run-level failure-rate abort.
//
// A breaker is a three-state machine per service:
//
//   - closed: calls pass through; FailureThreshold consecutive failures
//     trip it open.
//   - open: calls short-circuit with ErrOpen (no network, no latency)
//     until OpenTimeout has elapsed.
//   - half-open: up to HalfOpenProbes concurrent calls are admitted as
//     probes; ProbeSuccesses consecutive probe successes close the
//     breaker, any probe failure re-opens it.
//
// Failure classification matters: value-level negatives (shortener
// takedowns, WHOIS not-found, unrouted IPs) and caller cancellation are
// not service failures and must never trip a breaker. See Classify.
//
// Breakers compose OUTSIDE the enrichment cache (pipeline -> breaker ->
// cache -> client): cache hits cost the breaker nothing, and an upstream
// 5xx reaches the cache first so its serve-stale degraded mode gets a
// chance before the failure is counted.
//
// State transitions surface as a "breaker.<service>.state" gauge
// (0 closed, 1 half-open, 2 open) plus opens / short_circuits / probes /
// failures / successes counters.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// ErrOpen is returned for calls short-circuited by an open breaker. The
// pipeline degrades the record's field on it like any other service
// failure — just without paying for a doomed network call. It wraps
// core.ErrShortCircuited so the pipeline's run-level abort accounting can
// exclude shed calls (each one echoes a failure the breaker already
// counted when it tripped).
var ErrOpen = fmt.Errorf("resilience: circuit open: %w", core.ErrShortCircuited)

// State is a breaker's position in the closed/half-open/open machine.
type State int

// Breaker states, in gauge order.
const (
	StateClosed State = iota
	StateHalfOpen
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// Outcome is a call's health verdict for breaker accounting.
type Outcome int

// Call outcomes.
const (
	// OutcomeSuccess: the service answered (including authoritative
	// negatives like not-found).
	OutcomeSuccess Outcome = iota
	// OutcomeFailure: the service is unhealthy (transport error, timeout,
	// 429, 5xx, hang).
	OutcomeFailure
	// OutcomeIgnore: the caller went away; says nothing about the service.
	OutcomeIgnore
)

// Classify is the default failure classifier. Authoritative negative
// answers and non-429 4xx responses are successes (the service is up and
// answering); caller cancellation is ignored; everything else — transport
// errors, deadline expiry, 429 storms, 5xx — is a failure.
func Classify(err error) Outcome {
	switch {
	case err == nil:
		return OutcomeSuccess
	case errors.Is(err, context.Canceled):
		return OutcomeIgnore
	case errors.Is(err, ErrOpen):
		return OutcomeIgnore
	case errors.Is(err, shortener.ErrNotFound),
		errors.Is(err, shortener.ErrTakenDown),
		errors.Is(err, dnsdb.ErrNoRoute):
		return OutcomeSuccess
	}
	var ae *netutil.APIError
	if errors.As(err, &ae) {
		if ae.Status == 429 || ae.Status >= 500 {
			return OutcomeFailure
		}
		return OutcomeSuccess
	}
	return OutcomeFailure
}

// BreakerConfig tunes one breaker. The zero value selects the documented
// defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// open (default 5).
	FailureThreshold int
	// OpenTimeout is how long an open breaker short-circuits before
	// admitting half-open probes (default 500ms).
	OpenTimeout time.Duration
	// HalfOpenProbes caps concurrent in-flight probes while half-open
	// (default 1).
	HalfOpenProbes int
	// ProbeSuccesses is how many consecutive probe successes close the
	// breaker (default 2).
	ProbeSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout == 0 {
		c.OpenTimeout = 500 * time.Millisecond
	}
	if c.HalfOpenProbes == 0 {
		c.HalfOpenProbes = 1
	}
	if c.ProbeSuccesses == 0 {
		c.ProbeSuccesses = 2
	}
	return c
}

// Breaker is one service's circuit breaker. Safe for concurrent use.
type Breaker struct {
	name     string
	cfg      BreakerConfig
	classify func(error) Outcome
	now      func() time.Time

	mu          sync.Mutex
	state       State
	consecFails int
	openedAt    time.Time
	probes      int // in-flight half-open probes
	probeOK     int // consecutive probe successes

	stateG                               *telemetry.Gauge
	opens, shorts, probesC, fails, succs *telemetry.Counter
}

// NewBreaker builds a breaker recording into reg (nil allowed) with the
// default classifier and clock.
func NewBreaker(name string, cfg BreakerConfig, reg *telemetry.Registry) *Breaker {
	cfg = cfg.withDefaults()
	prefix := "breaker." + name + "."
	b := &Breaker{
		name:     name,
		cfg:      cfg,
		classify: Classify,
		now:      time.Now,
		stateG:   reg.Gauge(prefix + "state"),
		opens:    reg.Counter(prefix + "opens"),
		shorts:   reg.Counter(prefix + "short_circuits"),
		probesC:  reg.Counter(prefix + "probes"),
		fails:    reg.Counter(prefix + "failures"),
		succs:    reg.Counter(prefix + "successes"),
	}
	b.stateG.Set(int64(StateClosed))
	return b
}

// SetClock overrides the time source (tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// SetClassifier overrides the failure classifier (nil restores Classify).
func (b *Breaker) SetClassifier(f func(error) Outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if f == nil {
		f = Classify
	}
	b.classify = f
}

// State reports the current state, transitioning open -> half-open if the
// open timeout has elapsed (so observers see what a caller would get).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		return StateHalfOpen
	}
	return b.state
}

// Allow reserves the right to make one call. A nil return means go ahead
// — and obligates exactly one matching Record call with the call's error.
// ErrOpen means the call is short-circuited; do not call Record for it.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return nil
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenTimeout {
			b.shorts.Inc()
			return ErrOpen
		}
		// Cooled off: admit probes.
		b.setState(StateHalfOpen)
		b.probes, b.probeOK = 0, 0
		fallthrough
	default: // StateHalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			b.shorts.Inc()
			return ErrOpen
		}
		b.probes++
		b.probesC.Inc()
		return nil
	}
}

// Record reports the outcome of a call admitted by Allow.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	classify := b.classify
	b.mu.Unlock()
	out := classify(err)

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen && b.probes > 0 {
		b.probes--
	}
	switch out {
	case OutcomeIgnore:
		return
	case OutcomeSuccess:
		b.succs.Inc()
		switch b.state {
		case StateClosed:
			b.consecFails = 0
		case StateHalfOpen:
			b.probeOK++
			if b.probeOK >= b.cfg.ProbeSuccesses {
				b.setState(StateClosed)
				b.consecFails, b.probes, b.probeOK = 0, 0, 0
			}
		}
		// StateOpen: a stale call finishing after a re-open; no transition.
	case OutcomeFailure:
		b.fails.Inc()
		switch b.state {
		case StateClosed:
			b.consecFails++
			if b.consecFails >= b.cfg.FailureThreshold {
				b.trip()
			}
		case StateHalfOpen:
			b.trip()
		}
		// StateOpen: already open; the clock keeps its original trip time.
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.setState(StateOpen)
	b.openedAt = b.now()
	b.opens.Inc()
	b.consecFails, b.probes, b.probeOK = 0, 0, 0
}

// setState transitions and mirrors the state into the gauge. Callers
// hold b.mu.
func (b *Breaker) setState(s State) {
	b.state = s
	b.stateG.Set(int64(s))
}
