package dnsdb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"
)

func mustPrefix(t testing.TB, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRadixLongestPrefixMatch(t *testing.T) {
	r := NewRadixTable()
	if err := r.Insert(mustPrefix(t, "10.0.0.0/8"), ASInfo{ASN: 1, Name: "big"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(mustPrefix(t, "10.1.0.0/16"), ASInfo{ASN: 2, Name: "mid"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(mustPrefix(t, "10.1.2.0/24"), ASInfo{ASN: 3, Name: "small"}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ip   string
		want int
	}{
		{"10.9.9.9", 1},
		{"10.1.9.9", 2},
		{"10.1.2.3", 3},
	}
	for _, c := range cases {
		info, err := r.Lookup(netip.MustParseAddr(c.ip))
		if err != nil {
			t.Fatalf("%s: %v", c.ip, err)
		}
		if info.ASN != c.want {
			t.Errorf("%s -> AS%d, want AS%d", c.ip, info.ASN, c.want)
		}
	}
}

func TestRadixNoRoute(t *testing.T) {
	r := NewRadixTable()
	_ = r.Insert(mustPrefix(t, "10.0.0.0/8"), ASInfo{ASN: 1})
	if _, err := r.Lookup(netip.MustParseAddr("11.0.0.1")); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestRadixRejectsIPv6(t *testing.T) {
	r := NewRadixTable()
	if err := r.Insert(netip.MustParsePrefix("2001:db8::/32"), ASInfo{}); err == nil {
		t.Error("ipv6 insert accepted")
	}
	if _, err := r.Lookup(netip.MustParseAddr("::1")); err == nil {
		t.Error("ipv6 lookup accepted")
	}
}

func TestRadixOverwrite(t *testing.T) {
	r := NewRadixTable()
	_ = r.Insert(mustPrefix(t, "10.0.0.0/8"), ASInfo{ASN: 1})
	_ = r.Insert(mustPrefix(t, "10.0.0.0/8"), ASInfo{ASN: 9})
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	info, _ := r.Lookup(netip.MustParseAddr("10.1.1.1"))
	if info.ASN != 9 {
		t.Errorf("overwrite lost: AS%d", info.ASN)
	}
}

func TestRadixZeroLengthPrefix(t *testing.T) {
	r := NewRadixTable()
	_ = r.Insert(mustPrefix(t, "0.0.0.0/0"), ASInfo{ASN: 42, Name: "default"})
	info, err := r.Lookup(netip.MustParseAddr("203.0.113.7"))
	if err != nil || info.ASN != 42 {
		t.Errorf("default route: %v %v", info, err)
	}
}

// Property: radix and linear-scan tables always agree.
func TestRadixMatchesLinearProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		radix := NewRadixTable()
		linear := &LinearTable{}
		for i := 0; i < 100; i++ {
			bits := 8 + rng.Intn(17)
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(223) + 1), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
			p, err := addr.Prefix(bits)
			if err != nil {
				t.Fatal(err)
			}
			info := ASInfo{ASN: i, Name: fmt.Sprintf("as-%d", i)}
			if err := radix.Insert(p, info); err != nil {
				t.Fatal(err)
			}
			if err := linear.Insert(p, info); err != nil {
				t.Fatal(err)
			}
		}
		for q := 0; q < 500; q++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
			ri, rerr := radix.Lookup(addr)
			li, lerr := linear.Lookup(addr)
			if (rerr == nil) != (lerr == nil) {
				t.Fatalf("%v: radix err %v, linear err %v", addr, rerr, lerr)
			}
			if rerr == nil && ri.ASN != li.ASN {
				// Equal-length duplicate prefixes may differ; verify both
				// prefixes have the same bits before failing.
				t.Fatalf("%v: radix AS%d, linear AS%d", addr, ri.ASN, li.ASN)
			}
		}
	}
}

func TestStoreObservations(t *testing.T) {
	s := NewStore()
	t0 := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	s.AddObservation(Observation{Domain: "Evil.Top", IP: "9.8.7.6", FirstSeen: t0.Add(time.Hour), LastSeen: t0.Add(2 * time.Hour)})
	s.AddObservation(Observation{Domain: "evil.top", IP: "9.8.7.5", FirstSeen: t0, LastSeen: t0.Add(time.Hour)})
	obs := s.Resolutions("EVIL.top")
	if len(obs) != 2 {
		t.Fatalf("obs = %d", len(obs))
	}
	if obs[0].IP != "9.8.7.5" {
		t.Error("not sorted by first seen")
	}
	if got := s.Resolutions("ghost.example"); len(got) != 0 {
		t.Errorf("phantom observations: %v", got)
	}
}

func TestStoreASOf(t *testing.T) {
	s := NewStore()
	if err := s.AddPrefix("104.16.0.0/16", ASInfo{ASN: 13335, Name: "Cloudflare", Country: "US"}); err != nil {
		t.Fatal(err)
	}
	info, err := s.ASOf("104.16.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "Cloudflare" {
		t.Errorf("info = %+v", info)
	}
	if _, err := s.ASOf("not-an-ip"); err == nil {
		t.Error("junk IP accepted")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	store := NewStore()
	t0 := time.Now().UTC().Truncate(time.Second)
	store.AddObservation(Observation{Domain: "evil.top", IP: "104.16.1.2", FirstSeen: t0, LastSeen: t0})
	_ = store.AddPrefix("104.16.0.0/16", ASInfo{ASN: 13335, Name: "Cloudflare", Country: "US"})
	srv := httptest.NewServer(NewServer(store, "pk", 0).Handler())
	defer srv.Close()

	c := NewClient(srv.URL, "pk")
	obs, err := c.Resolutions(context.Background(), "evil.top")
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].IP != "104.16.1.2" {
		t.Errorf("obs = %v", obs)
	}
	info, err := c.ASOf(context.Background(), "104.16.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if info.ASN != 13335 {
		t.Errorf("asn = %d", info.ASN)
	}
	if _, err := c.ASOf(context.Background(), "203.0.113.9"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("uncovered IP err = %v, want ErrNoRoute", err)
	}
}
