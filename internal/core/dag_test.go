// Tests for the intra-record enrichment DAG (Options.StepWorkers) and the
// streaming Run mode (Options.Streaming): error-list integrity under
// concurrent families, the record budget bounding a parallel scatter, and
// streaming/barrier record-set equality.
package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/urlinfo"
	"github.com/smishkit/smishkit/internal/whois"
)

// failingServices errors on every call, driving every family down its
// degradation path at once.
type failingServices struct{}

var errInjected = errors.New("injected failure")

func (failingServices) Lookup(context.Context, string) (hlr.Result, error) {
	return hlr.Result{}, errInjected
}
func (failingServices) WhoisLookup(context.Context, string) (whois.Record, bool, error) {
	return whois.Record{}, false, errInjected
}
func (failingServices) Summary(context.Context, string) (ctlog.Summary, error) {
	return ctlog.Summary{}, errInjected
}
func (failingServices) Resolutions(context.Context, string) ([]dnsdb.Observation, error) {
	return nil, errInjected
}
func (failingServices) ASOf(context.Context, string) (dnsdb.ASInfo, error) {
	return dnsdb.ASInfo{}, errInjected
}
func (failingServices) Scan(context.Context, string) (avscan.Report, error) {
	return avscan.Report{}, errInjected
}
func (failingServices) GSBLookup(context.Context, string) (avscan.GSBResult, error) {
	return avscan.GSBResult{}, errInjected
}
func (failingServices) Transparency(context.Context, string) (avscan.TransparencyResult, bool, error) {
	return avscan.TransparencyResult{}, false, errInjected
}

// whoisAdapter renames the interface method: core.WhoisLookuper wants
// Lookup, which failingServices already uses for HLR.
type whoisAdapter struct{ failingServices }

func (w whoisAdapter) Lookup(ctx context.Context, domain string) (whois.Record, bool, error) {
	return w.WhoisLookup(ctx, domain)
}

func allFailingServices() Services {
	f := failingServices{}
	return Services{HLR: f, Whois: whoisAdapter{f}, CTLog: f, DNSDB: f, AVScan: f}
}

// dagRecord builds a record that activates every enrichment family: a
// phone sender plus a non-shortened landing URL on scammer-owned
// infrastructure.
func dagRecord(i int) Record {
	u := fmt.Sprintf("https://evil-clinic-%d.xyz/login", i)
	rec := Record{
		ID:         fmt.Sprintf("rec-%04d", i),
		SenderKind: senderid.KindPhone,
		SenderRaw:  "+447700900123",
		ShownURL:   u,
	}
	if info, err := urlinfo.Parse(u); err == nil {
		rec.URLInfo = info
	}
	return rec
}

// dagFamilies is the full per-record family set when every service is
// wired and the pdns chain dies at its first hop.
var dagFamilies = []string{"hlr", "whois", "ct", "pdns", "vt", "gsb", "gsb_status"}

// TestEnrichParallelStepsErrorIntegrity drives every family of every
// record into its failure path with an 8-wide scatter and asserts the
// shared EnrichmentErrors list never interleaves corruptly: exactly one
// complete entry per family, no duplicates, no torn appends. Run under
// -race in CI, this is the data-race guard for the per-record mutex.
func TestEnrichParallelStepsErrorIntegrity(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := mustPipeline(t, allFailingServices(), Options{
		EnrichWorkers:    4,
		StepWorkers:      8,
		AbortFailureRate: -1, // a 100% failure world: the abort guard is not under test
		Telemetry:        reg,
	})
	ds := &Dataset{}
	for i := 0; i < 64; i++ {
		ds.Records = append(ds.Records, dagRecord(i))
	}
	if err := pipe.Enrich(context.Background(), ds); err != nil {
		t.Fatalf("Enrich aborted with the abort guard disabled: %v", err)
	}

	var total int64
	for _, r := range ds.Records {
		seen := map[string]int{}
		for _, e := range r.EnrichmentErrors {
			if e.Field == "" || e.Service == "" || e.Err == "" {
				t.Fatalf("record %s: torn enrichment error %+v", r.ID, e)
			}
			seen[e.Field]++
			total++
		}
		if len(r.EnrichmentErrors) != len(dagFamilies) {
			t.Fatalf("record %s: %d errors, want %d: %+v",
				r.ID, len(r.EnrichmentErrors), len(dagFamilies), r.EnrichmentErrors)
		}
		for _, fam := range dagFamilies {
			if seen[fam] != 1 {
				t.Fatalf("record %s: field %q appears %d times", r.ID, fam, seen[fam])
			}
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["pipeline.enrich.degraded_fields"]; got != total {
		t.Errorf("degraded_fields counter = %d, records carry %d errors", got, total)
	}
	if got := snap.Gauges["pipeline.record.step_par"]; got != 0 {
		t.Errorf("step_par gauge = %d after Enrich returned, want 0", got)
	}
	for _, fam := range dagFamilies {
		if snap.Histograms["pipeline.enrich.family."+fam].Count != 64 {
			t.Errorf("family %q latency observations = %d, want 64",
				fam, snap.Histograms["pipeline.enrich.family."+fam].Count)
		}
	}
}

// hangingServices blocks every call until its context dies — the step
// resolves exactly when a deadline fires, so the test below is driven by
// the budget clock rather than sleeps.
type hangingServices struct{}

func hang(ctx context.Context) error { <-ctx.Done(); return ctx.Err() }

func (hangingServices) Lookup(ctx context.Context, _ string) (hlr.Result, error) {
	return hlr.Result{}, hang(ctx)
}
func (hangingServices) WhoisLookup(ctx context.Context, _ string) (whois.Record, bool, error) {
	return whois.Record{}, false, hang(ctx)
}
func (hangingServices) Summary(ctx context.Context, _ string) (ctlog.Summary, error) {
	return ctlog.Summary{}, hang(ctx)
}
func (hangingServices) Resolutions(ctx context.Context, _ string) ([]dnsdb.Observation, error) {
	return nil, hang(ctx)
}
func (hangingServices) ASOf(ctx context.Context, _ string) (dnsdb.ASInfo, error) {
	return dnsdb.ASInfo{}, hang(ctx)
}
func (hangingServices) Scan(ctx context.Context, _ string) (avscan.Report, error) {
	return avscan.Report{}, hang(ctx)
}
func (hangingServices) GSBLookup(ctx context.Context, _ string) (avscan.GSBResult, error) {
	return avscan.GSBResult{}, hang(ctx)
}
func (hangingServices) Transparency(ctx context.Context, _ string) (avscan.TransparencyResult, bool, error) {
	return avscan.TransparencyResult{}, false, hang(ctx)
}

type hangingWhois struct{ hangingServices }

func (w hangingWhois) Lookup(ctx context.Context, domain string) (whois.Record, bool, error) {
	return w.WhoisLookup(ctx, domain)
}

// TestRecordBudgetBoundsParallelSteps pins the budget invariant on the DAG
// path: families running in parallel share ONE per-record deadline, so a
// record whose every step hangs resolves in ~RecordBudget — not
// families × budget, and not forever. The hanging services return exactly
// when the budget context fires (no sleeps), making the timing
// deadline-driven and scheduling-robust.
func TestRecordBudgetBoundsParallelSteps(t *testing.T) {
	const budget = 150 * time.Millisecond
	pipe := mustPipeline(t, Services{
		HLR:    hangingServices{},
		Whois:  hangingWhois{},
		CTLog:  hangingServices{},
		DNSDB:  hangingServices{},
		AVScan: hangingServices{},
	}, Options{
		EnrichWorkers:    1,
		StepWorkers:      8,
		RecordBudget:     budget,
		AbortFailureRate: -1,
	})
	ds := &Dataset{Records: []Record{dagRecord(0), dagRecord(1)}}

	start := time.Now()
	if err := pipe.Enrich(context.Background(), ds); err != nil {
		t.Fatalf("budget expiry aborted the run: %v", err)
	}
	elapsed := time.Since(start)

	// Two records, one at a time, each with 7 hanging families: a
	// sequential pipeline without the shared budget would sit in the first
	// call forever. The generous upper bound (5 budgets for 2 records)
	// keeps slow CI honest while still proving the per-record time box.
	if elapsed < budget {
		t.Errorf("Enrich returned in %v, before the %v budget could fire", elapsed, budget)
	}
	if elapsed > 5*budget {
		t.Errorf("Enrich took %v; budget %v per record did not bound the parallel scatter", elapsed, budget)
	}
	for _, r := range ds.Records {
		if len(r.EnrichmentErrors) != len(dagFamilies) {
			t.Fatalf("record %s: %d degraded fields, want %d: %+v",
				r.ID, len(r.EnrichmentErrors), len(dagFamilies), r.EnrichmentErrors)
		}
		for _, e := range r.EnrichmentErrors {
			if !strings.Contains(e.Err, context.DeadlineExceeded.Error()) {
				t.Errorf("record %s field %s: err = %q, want the budget deadline", r.ID, e.Field, e.Err)
			}
		}
	}
}

// TestStreamingMatchesBarrier runs the same collected reports through
// barrier mode and streaming mode against one healthy simulation and
// asserts the record SETS are equal: streaming reorders completion, it
// must never change content. Collection bookkeeping must match exactly.
func TestStreamingMatchesBarrier(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 211, Messages: 400})
	sim, err := StartSimulation(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	reports, _, err := forum.CollectAll(context.Background(), sim.Collectors())
	if err != nil {
		t.Fatal(err)
	}

	barrier := mustPipeline(t, sim.Services(), Options{StepWorkers: 4})
	streaming := mustPipeline(t, sim.Services(), Options{StepWorkers: 4, Streaming: true})

	dsBarrier, err := barrier.Run(context.Background(), reports)
	if err != nil {
		t.Fatal(err)
	}
	dsStream, err := streaming.Run(context.Background(), reports)
	if err != nil {
		t.Fatal(err)
	}

	if len(dsStream.Records) != len(dsBarrier.Records) {
		t.Fatalf("streaming curated %d records, barrier %d", len(dsStream.Records), len(dsBarrier.Records))
	}
	if dsStream.DecoysRejected != dsBarrier.DecoysRejected || dsStream.EmptyDropped != dsBarrier.EmptyDropped {
		t.Errorf("curation stats diverge: streaming decoys=%d empty=%d, barrier decoys=%d empty=%d",
			dsStream.DecoysRejected, dsStream.EmptyDropped, dsBarrier.DecoysRejected, dsBarrier.EmptyDropped)
	}
	if !reflect.DeepEqual(dsStream.PostsByForum, dsBarrier.PostsByForum) {
		t.Errorf("PostsByForum diverges: %v vs %v", dsStream.PostsByForum, dsBarrier.PostsByForum)
	}
	if !reflect.DeepEqual(dsStream.ImagesByForum, dsBarrier.ImagesByForum) {
		t.Errorf("ImagesByForum diverges: %v vs %v", dsStream.ImagesByForum, dsBarrier.ImagesByForum)
	}

	sortRecords := func(recs []Record) {
		sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	}
	sortRecords(dsBarrier.Records)
	sortRecords(dsStream.Records)
	for i := range dsBarrier.Records {
		if !reflect.DeepEqual(dsBarrier.Records[i], dsStream.Records[i]) {
			t.Fatalf("record %s differs between modes:\nbarrier:   %+v\nstreaming: %+v",
				dsBarrier.Records[i].ID, dsBarrier.Records[i], dsStream.Records[i])
		}
	}
}

// TestStreamingAbortsOnContextCancel mirrors the barrier-mode
// cancellation contract in streaming mode.
func TestStreamingAbortsOnContextCancel(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 213, Messages: 200})
	sim, err := StartSimulation(w)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	reports, _, err := forum.CollectAll(context.Background(), sim.Collectors())
	if err != nil {
		t.Fatal(err)
	}
	pipe := mustPipeline(t, sim.Services(), Options{Streaming: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pipe.Run(ctx, reports); err == nil {
		t.Fatal("cancelled streaming run returned nil error")
	}
}

// slowHLR answers every lookup successfully after a fixed delay, counting
// invocations. The delay keeps one worker pinned while the fail-latch
// fires elsewhere; the count then reveals whether queued records still
// reached the service afterwards.
type slowHLR struct {
	delay time.Duration
	calls *atomic.Int64
}

func (s slowHLR) Lookup(ctx context.Context, _ string) (hlr.Result, error) {
	s.calls.Add(1)
	select {
	case <-time.After(s.delay):
		return hlr.Result{}, nil
	case <-ctx.Done():
		return hlr.Result{}, ctx.Err()
	}
}

// slowFailingWhois fails every lookup after a fixed delay. The delay lets
// the curation producer run ahead of the draining worker, so the queue is
// full of not-yet-enriched records when the latch fires.
type slowFailingWhois struct{ delay time.Duration }

func (s slowFailingWhois) Lookup(ctx context.Context, _ string) (whois.Record, bool, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
	}
	return whois.Record{}, false, errInjected
}

// TestStreamingAbortLeavesNoPostFailureRecords pins the streamCtx fix:
// once the fail-latch fires, surviving workers must fail fast on queued
// records instead of enriching them against the still-live outer context
// and appending them to the Dataset.
//
// The schedule is forced: with two enrich workers and in-order curation,
// one worker blocks on a slow (healthy) HLR lookup while the other drains
// four failing WHOIS records, tripping the abort latch at 4/4 failures
// with the channel packed full of queued phone records. The blocked
// worker is the regression probe — before the fix its in-flight call
// succeeds, the failure ratio drops back under the threshold, and it
// drains that queue through the service; after the fix its call dies with
// streamCtx and nothing queued touches a service.
func TestStreamingAbortLeavesNoPostFailureRecords(t *testing.T) {
	var hlrCalls atomic.Int64
	services := Services{
		HLR:   slowHLR{delay: 200 * time.Millisecond, calls: &hlrCalls},
		Whois: slowFailingWhois{delay: 10 * time.Millisecond},
	}
	pipe := mustPipeline(t, services, Options{
		Streaming:        true,
		EnrichWorkers:    2,
		StageWorkers:     1, // curate in report order: the schedule below depends on it
		AbortFailureRate: 0.9,
		MinAbortCalls:    4,
	})

	base := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	report := func(i int, text, sender string) forum.RawReport {
		return forum.RawReport{
			Forum:    corpus.ForumSmishtank,
			PostID:   fmt.Sprintf("abort-%02d", i),
			PostedAt: base.Add(time.Duration(i) * time.Minute),
			SMSText:  text,
			SenderID: sender,
		}
	}
	phone := func(i int) forum.RawReport { // HLR family only: no URL
		return report(i, "Your parcel is held, reply YES to reschedule", "+447700900123")
	}
	domain := func(i int) forum.RawReport { // WHOIS family only: alpha sender
		return report(i, fmt.Sprintf("Account locked, verify: https://evil-clinic-%d.xyz/login", i), "EVILCO")
	}
	reports := []forum.RawReport{phone(0), domain(1), domain(2), domain(3), domain(4)}
	for i := 5; i < 15; i++ {
		reports = append(reports, phone(i)) // the queued tail that must never be enriched
	}

	ds, err := pipe.Run(context.Background(), reports)
	if err == nil {
		t.Fatal("latched streaming run returned nil error")
	}
	if !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("run failed with %v, want the abort error", err)
	}
	// Only phone(0) was in flight when the latch fired; every later phone
	// record must short-circuit before reaching the service.
	if got := hlrCalls.Load(); got > 2 {
		t.Errorf("healthy service saw %d calls, want <= 2: queued records were enriched after the fail-latch", got)
	}
	// Pre-latch the domain worker appended at most its three degraded
	// records; anything near the full report count means post-failure
	// records leaked into the Dataset.
	if got := len(ds.Records); got > 5 {
		t.Errorf("aborted run kept %d records, want <= 5 (pre-latch only)", got)
	}
}

// TestAnnotateStopsOnDeadContext pins the satellite fix: a dead run must
// not burn CPU annotating records it will discard.
func TestAnnotateStopsOnDeadContext(t *testing.T) {
	reg := telemetry.NewRegistry()
	pipe := mustPipeline(t, Services{}, Options{Telemetry: reg})
	ds := &Dataset{}
	for i := 0; i < 1024; i++ {
		ds.Records = append(ds.Records, Record{Text: "Your parcel is held, confirm at once"})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pipe.Annotate(ctx, ds); err == nil {
		t.Fatal("Annotate on a dead context returned nil")
	}
	// Workers check ctx between records: at most a worker's-worth of
	// records may have been labeled before the check, not the whole set.
	if got := reg.Snapshot().Counters["pipeline.annotate.records"]; got > 64 {
		t.Errorf("dead-context Annotate still labeled %d records", got)
	}
}

func TestNewPipelineRejectsNegativeStepAndStageWorkers(t *testing.T) {
	if _, err := NewPipeline(Services{}, Options{StepWorkers: -1}); err == nil {
		t.Error("negative StepWorkers accepted")
	}
	if _, err := NewPipeline(Services{}, Options{StageWorkers: -2}); err == nil {
		t.Error("negative StageWorkers accepted")
	}
}
