package shard

import (
	"fmt"
	"sync"
	"testing"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/urlinfo"
)

// syntheticKeys returns n distinct domain-style keys. Balance and remap
// properties only show over many distinct keys — real batches concentrate
// on a few hot domains, which is the point of key affinity, not a ring
// defect.
func syntheticKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("d:evil-clinic-%d.example.xyz", i)
	}
	return keys
}

func TestNewRingRejectsBadShape(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Error("NewRing(0, 0) accepted zero shards")
	}
	if _, err := NewRing(-3, 0); err == nil {
		t.Error("NewRing(-3, 0) accepted negative shards")
	}
	if _, err := NewRing(4, -1); err == nil {
		t.Error("NewRing(4, -1) accepted negative replicas")
	}
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.points); got != 4*DefaultReplicas {
		t.Errorf("replicas=0 built %d points, want %d (4*DefaultReplicas)", got, 4*DefaultReplicas)
	}
	if got := r.Shards(); got != 4 {
		t.Errorf("Shards() = %d, want 4", got)
	}
}

// TestRingBalance pins the distribution bound the DefaultReplicas choice
// buys: over many distinct keys, every shard's share stays within
// [0.5, 1.5] of the uniform mean.
func TestRingBalance(t *testing.T) {
	const shards, keys = 4, 20000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for _, k := range syntheticKeys(keys) {
		counts[r.Shard(k)]++
	}
	mean := float64(keys) / shards
	for s, c := range counts {
		if f := float64(c); f < 0.5*mean || f > 1.5*mean {
			t.Errorf("shard %d holds %d of %d keys, outside [%.0f, %.0f] (counts: %v)",
				s, c, keys, 0.5*mean, 1.5*mean, counts)
		}
	}
}

// TestRingRemapOnResize pins consistency: growing N -> N+1 shards moves at
// most 2/(N+1) of the keys. (The expectation is ~1/(N+1) — the share the
// new shard captures; 2x is slack for hash variance. A modulo assignment
// would remap ~N/(N+1), so the bound cleanly separates the two.)
func TestRingRemapOnResize(t *testing.T) {
	keys := syntheticKeys(20000)
	for _, n := range []int{2, 4, 8} {
		before, err := NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(n+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			if before.Shard(k) != after.Shard(k) {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		if limit := 2.0 / float64(n+1); frac > limit {
			t.Errorf("resize %d -> %d remapped %.3f of keys, want <= %.3f", n, n+1, frac, limit)
		}
		if moved == 0 {
			t.Errorf("resize %d -> %d remapped nothing: the new shard captured no keys", n, n+1)
		}
	}
}

// TestRingRoutingDeterminismConcurrent hammers one ring from many
// goroutines and checks every answer against a sequential baseline — run
// under -race this also proves the ring is read-only after construction.
func TestRingRoutingDeterminismConcurrent(t *testing.T) {
	r, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := syntheticKeys(2000)
	want := make([]int, len(keys))
	for i, k := range keys {
		want[i] = r.Shard(k)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine starts at a different offset so accesses
			// interleave rather than march in lockstep.
			for i := range keys {
				j := (i + g*251) % len(keys)
				if got := r.Shard(keys[j]); got != want[j] {
					select {
					case errs <- fmt.Sprintf("goroutine %d: key %q routed to %d, want %d", g, keys[j], got, want[j]):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestRingCrossInstanceDeterminism: two rings with identical shape must
// agree on every key — the multi-process mode relies on parent and worker
// computing the same assignment independently.
func TestRingCrossInstanceDeterminism(t *testing.T) {
	a, err := NewRing(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range syntheticKeys(5000) {
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("rings of identical shape disagree on %q: %d vs %d", k, a.Shard(k), b.Shard(k))
		}
	}
}

func TestKeyOf(t *testing.T) {
	cases := []struct {
		name string
		rec  core.Record
		want string
	}{
		{
			name: "domain wins over sender",
			rec: core.Record{
				ID:        "r1",
				SenderRaw: "+447700900123",
				URLInfo:   urlinfo.Info{Domain: "Evil-Clinic.XYZ"},
			},
			want: "d:evil-clinic.xyz",
		},
		{
			name: "sender fallback, trimmed and lowered",
			rec:  core.Record{ID: "r2", SenderRaw: "  EVILCO  "},
			want: "s:evilco",
		},
		{
			name: "record ID is the last resort",
			rec:  core.Record{ID: "r3"},
			want: "r:r3",
		},
		{
			name: "whitespace-only sender falls through to ID",
			rec:  core.Record{ID: "r4", SenderRaw: "   "},
			want: "r:r4",
		},
	}
	for _, tc := range cases {
		if got := KeyOf(&tc.rec); got != tc.want {
			t.Errorf("%s: KeyOf = %q, want %q", tc.name, got, tc.want)
		}
	}
}
