package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	r, err := KolmogorovSmirnov(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 0 {
		t.Errorf("D = %v, want 0 for identical samples", r.D)
	}
	if r.P < 0.99 {
		t.Errorf("P = %v, want ~1 for identical samples", r.P)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	r, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 1 {
		t.Errorf("D = %v, want 1 for disjoint samples", r.D)
	}
	if !r.Significant(0.05) {
		t.Errorf("P = %v, expected significant", r.P)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestKSSameDistributionNotSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	r, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant(0.001) {
		t.Errorf("same-distribution samples flagged significant: D=%v P=%v", r.D, r.P)
	}
}

func TestKSShiftedDistributionSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1.0
	}
	r, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.01) {
		t.Errorf("shifted distributions not detected: D=%v P=%v", r.D, r.P)
	}
}

func TestKSUnsortedInputUntouched(t *testing.T) {
	a := []float64{5, 1, 3}
	b := []float64{2, 9, 4}
	if _, err := KolmogorovSmirnov(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0] != 5 || b[1] != 9 {
		t.Error("KolmogorovSmirnov mutated its inputs")
	}
}

// Properties: D in [0,1], P in [0,1], symmetry in argument order.
func TestKSProperties(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		clean := func(raw []float64) []float64 {
			out := raw[:0:0]
			for _, x := range raw {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, x)
				}
			}
			return out
		}
		a, b := clean(rawA), clean(rawB)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		r1, err1 := KolmogorovSmirnov(a, b)
		r2, err2 := KolmogorovSmirnov(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if r1.D < 0 || r1.D > 1 || r1.P < 0 || r1.P > 1 {
			return false
		}
		return math.Abs(r1.D-r2.D) < 1e-12 && math.Abs(r1.P-r2.P) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
