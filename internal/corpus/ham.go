package corpus

import (
	"fmt"
	"math/rand"
)

// Benign SMS templates for training/evaluating detectors (§7.2: the paper
// recommends using the labeled dataset to build multi-class models, which
// need a ham class; prior work leaned on decade-old spam/ham corpora).
var hamTemplates = []string{
	"Hey, running 10 minutes late, see you soon",
	"Your verification code is {CODE}. Do not share it with anyone",
	"Reminder: your dentist appointment is tomorrow at {HOUR}:00",
	"Mum I'll be home for dinner around 7",
	"Your parcel was delivered to your front door. Thanks for shopping with us",
	"Lunch tomorrow? The usual place at noon",
	"Your taxi is arriving in 3 minutes",
	"Meeting moved to {HOUR}:30, same room",
	"Thanks for the birthday wishes everyone!",
	"Your monthly statement is now available in your banking app",
	"Don't forget to pick up milk on the way home",
	"Your table for 2 is confirmed for tonight at 8pm",
	"Happy anniversary! Love you",
	"The package you sent has been collected by the courier",
	"Your prescription is ready for collection at the pharmacy",
	"Train delayed by 15 min, will text when I'm close",
	"Great seeing you today, let's do it again soon",
	"Your flight BA{CODE4} is on time, gate B12",
	"School closed tomorrow due to weather, classes move online",
	"Your electricity bill of {AMOUNT} was paid successfully",
	"Track your order here https://shop.example.com/orders/{CODE4}",
	"Here are the photos from the weekend https://photos.example.com/album/{CODE4}",
	"Your boarding pass: https://airline.example.com/bp/{CODE4}",
	"Meeting notes are up at https://docs.example.com/d/{CODE4}",
	"New episode of the podcast you follow: https://podcasts.example.com/e/{CODE4}",
}

// GenerateHam produces n benign SMS texts, deterministically per seed.
func GenerateHam(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		t := hamTemplates[rng.Intn(len(hamTemplates))]
		t = replaceToken(t, "{CODE}", fmt.Sprintf("%06d", rng.Intn(1000000)))
		t = replaceToken(t, "{CODE4}", fmt.Sprintf("%04d", rng.Intn(10000)))
		t = replaceToken(t, "{HOUR}", fmt.Sprint(8+rng.Intn(11)))
		t = replaceToken(t, "{AMOUNT}", fakeAmount(rng, "GBR"))
		out[i] = t
	}
	return out
}

func replaceToken(s, tok, val string) string {
	for {
		i := indexOfSub(s, tok)
		if i < 0 {
			return s
		}
		s = s[:i] + val + s[i+len(tok):]
	}
}

func indexOfSub(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
