package annotate

import (
	"strings"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/textnorm"
)

// othersLexicons differentiate the "Others" category into the clusters the
// paper's manual sampling identified (§5.2): job-related conversation
// scams, investment conversations, cryptocurrency scams, OTP call-backs,
// and tech-company impersonation.
var othersLexicons = map[corpus.OtherSubType][]string{
	corpus.SubJob: {
		"part-time", "job offer", "per day", "remote work", "resume",
		"openings", "recruiters", "hr here", "reviewers", "apply",
		"oferta de trabajo", "al dia", "al día",
		"lowongan kerja", "paruh waktu",
		"kumita", "trabaho",
	},
	corpus.SubCrypto: {
		"crypto", "wallet", "btc", "bitcoin", "withdrawal", "seed",
		"mining rewards", "billetera", "retiro", "usdt", "token",
	},
	corpus.SubInvestment: {
		"trading group", "returns", "investment plan", "guaranteed returns",
		"trading", "profit", "grup trading", "modal minimal",
	},
	corpus.SubOTPCallback: {
		"verification code", "security code", "did not request",
		"call us immediately", "call support",
	},
}

// techBrands are the organizations whose impersonation defines the tech
// cluster.
var techBrands = map[string]bool{
	"Netflix": true, "Amazon": true, "Facebook": true, "Telegram": true,
	"WhatsApp": true, "Apple": true, "Coinbase": true,
}

// ClassifyOthersSubType labels an Others-category message. brand is the
// already-detected impersonated entity; a tech brand decides immediately.
// Returns "" when no cluster matches (the residue the paper leaves
// undifferentiated).
func ClassifyOthersSubType(text, brand string) corpus.OtherSubType {
	if techBrands[brand] {
		return corpus.SubTech
	}
	folded := textnorm.Fold(text)
	best := corpus.OtherSubType("")
	bestScore := 0
	for _, sub := range corpus.OtherSubTypes {
		score := 0
		for _, kw := range othersLexicons[sub] {
			if strings.Contains(folded, kw) {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = sub, score
		}
	}
	if best == "" && brand != "" {
		// Branded Others messages without conversation markers read as
		// impersonation of the (non-financial) organization.
		return corpus.SubTech
	}
	return best
}
