// Livewatch drives the toolkit's service mode: instead of one batch sweep,
// the study runs as a daemon that polls the five forums on an interval,
// resumes each forum from a durable cursor, and keeps the paper's tables
// continuously up to date while new reports arrive. The simulation holds
// back part of its fixtures and releases them in waves, so every round
// actually observes fresh posts.
//
// Run it, watch the per-round log lines, and curl the printed status URL
// while it runs:
//
//	go run ./examples/livewatch
//	curl <status-url>/status
//	curl <status-url>/debug/telemetry
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/smishkit/smishkit"
)

func main() {
	log.SetFlags(0)

	// Durable cursors: delete the directory to start from scratch, keep it
	// to resume. A real deployment would point this at persistent disk.
	dir, err := os.MkdirTemp("", "livewatch-cursors-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := smishkit.NewFileCheckpoints(dir)
	if err != nil {
		log.Fatal(err)
	}

	study, err := smishkit.NewStudy(smishkit.Options{
		Seed:     2025,
		Messages: 1500,
		// Service mode requires the streaming pipeline: each round's batch
		// flows through curation, enrichment, and annotation concurrently.
		Pipeline: smishkit.PipelineOptions{Streaming: true},
		Cache:    &smishkit.CacheConfig{},
		Service: &smishkit.ServiceConfig{
			PollInterval: 500 * time.Millisecond,
			Checkpoints:  store,
			// Four waves of held-back reports arrive while we watch; stop
			// two rounds later so the last projection is visibly idle.
			LiveWaves: 4,
			MaxRounds: 6,
			OnRound: func(info smishkit.RoundInfo) {
				if info.Err != nil {
					log.Printf("round %d: %v", info.Round, info.Err)
					return
				}
				log.Printf("round %d: +%d new reports, %d records projected",
					info.Round, info.NewReports, info.Records)
			},
			// OnReady fires once the status endpoint is listening, with its
			// URL — no need to poll StatusURL. Sample it once mid-run to
			// show the live gauges.
			OnReady: func(statusURL string) {
				log.Printf("status endpoint: %s/status", statusURL)
				go func() {
					time.Sleep(1200 * time.Millisecond)
					resp, err := http.Get(statusURL + "/status")
					if err != nil {
						return
					}
					defer resp.Body.Close()
					var probe struct {
						Rounds         int     `json:"rounds"`
						Records        int     `json:"records"`
						BacklogSeconds float64 `json:"backlog_seconds"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
						return
					}
					log.Printf("mid-run status: rounds=%d records=%d backlog=%.1fs",
						probe.Rounds, probe.Records, probe.BacklogSeconds)
				}()
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	// Ctrl-C drains the in-flight round and flushes the projection before
	// the final report prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ds, err := study.Serve(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndaemon done: %d records across %d forums\n",
		len(ds.Records), len(ds.PostsByForum))

	// The unified stats surface: one snapshot, sections on demand.
	stats := study.Stats()
	if err := smishkit.WriteStats(os.Stdout, stats, smishkit.SectionService); err != nil {
		log.Fatal(err)
	}

	// And the paper's tables, computed from the live projection.
	if err := smishkit.WriteReport(os.Stdout, ds); err != nil {
		log.Fatal(err)
	}
}
