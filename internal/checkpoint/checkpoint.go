// Package checkpoint persists the incremental-collection cursors that turn
// the one-shot forum sweep into a resumable, continuously-syncing daemon.
// Each forum source owns one Cursor whose fields mirror that source's
// native pagination contract (Twitter since-IDs per keyword, Reddit after
// tokens per keyword, offset counters for the offset-paginated APIs, the
// last fully-consumed Pastebin paste ID). A Store durably maps source
// names to cursors; the in-memory store backs tests and single-process
// runs, the file store survives process death so a restarted daemon
// resumes exactly where the previous one committed.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Cursor is one source's durable sync position. Which fields are
// meaningful depends on the source:
//
//   - Twitter: Tokens maps each search keyword to the newest tweet ID the
//     collector has fully consumed for that keyword (the v2 since_id).
//   - Reddit: Tokens maps each keyword to the last listing child ID seen
//     (resumed as after=t3_<id>).
//   - Smishtank: Offset counts consumed submissions (the API's offset).
//   - smishing.eu: Offset counts consumed table rows across pages.
//   - Pastebin: LastID is the last fully-consumed paste ID in archive
//     order.
//
// Updated is refreshed on every successful sync, including empty ones, so
// its age measures how long a source has gone without a completed sync —
// the collect.cursor_lag.<source> gauge.
type Cursor struct {
	Source  string            `json:"source"`
	Tokens  map[string]string `json:"tokens,omitempty"`
	Offset  int               `json:"offset,omitempty"`
	LastID  string            `json:"last_id,omitempty"`
	Updated time.Time         `json:"updated,omitempty"`
}

// IsZero reports whether the cursor carries no sync position at all — the
// state of a source that has never completed a sync.
func (c Cursor) IsZero() bool {
	return len(c.Tokens) == 0 && c.Offset == 0 && c.LastID == ""
}

// Clone returns a deep copy, so a collector can stage updates without
// mutating the committed cursor on a failed round.
func (c Cursor) Clone() Cursor {
	out := c
	if c.Tokens != nil {
		out.Tokens = make(map[string]string, len(c.Tokens))
		for k, v := range c.Tokens {
			out.Tokens[k] = v
		}
	}
	return out
}

// Token returns the token stored under key ("" when absent), tolerating a
// nil map.
func (c Cursor) Token(key string) string {
	if c.Tokens == nil {
		return ""
	}
	return c.Tokens[key]
}

// SetToken stores a token, allocating the map on first use.
func (c *Cursor) SetToken(key, value string) {
	if c.Tokens == nil {
		c.Tokens = make(map[string]string)
	}
	c.Tokens[key] = value
}

// Store durably maps source names to cursors. Implementations must be
// safe for concurrent use; Save must be atomic (a reader never observes a
// half-written cursor).
type Store interface {
	// Load returns the committed cursor for source and whether one exists.
	Load(source string) (Cursor, bool, error)
	// Save commits the cursor under cur.Source.
	Save(cur Cursor) error
	// All returns every committed cursor keyed by source.
	All() (map[string]Cursor, error)
}

// MemStore is an in-memory Store: fast, concurrency-safe, gone with the
// process. It is the default for Serve when no store is configured.
type MemStore struct {
	mu      sync.RWMutex
	cursors map[string]Cursor
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{cursors: make(map[string]Cursor)}
}

// Load implements Store.
func (s *MemStore) Load(source string) (Cursor, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.cursors[source]
	return c.Clone(), ok, nil
}

// Save implements Store.
func (s *MemStore) Save(cur Cursor) error {
	if cur.Source == "" {
		return errors.New("checkpoint: cursor has no source")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cursors[cur.Source] = cur.Clone()
	return nil
}

// All implements Store.
func (s *MemStore) All() (map[string]Cursor, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Cursor, len(s.cursors))
	for k, v := range s.cursors {
		out[k] = v.Clone()
	}
	return out, nil
}

// FileStore persists one JSON file per source under a directory, written
// via temp-file + rename so a crash mid-write never corrupts the committed
// cursor. A daemon restarted over the same directory resumes from the last
// committed position.
type FileStore struct {
	dir string
	mu  sync.Mutex
}

// NewFileStore opens (creating if needed) a cursor directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// path keeps source names filesystem-safe (sources are short identifiers
// like "twitter" or "smishing.eu").
func (s *FileStore) path(source string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, source)
	return filepath.Join(s.dir, safe+".cursor.json")
}

// Load implements Store.
func (s *FileStore) Load(source string) (Cursor, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.path(source))
	if errors.Is(err, os.ErrNotExist) {
		return Cursor{}, false, nil
	}
	if err != nil {
		return Cursor{}, false, fmt.Errorf("checkpoint: load %s: %w", source, err)
	}
	var c Cursor
	if err := json.Unmarshal(data, &c); err != nil {
		return Cursor{}, false, fmt.Errorf("checkpoint: decode %s: %w", source, err)
	}
	return c, true, nil
}

// Save implements Store: marshal, write + fsync a temp file in the same
// directory, atomically rename it over the committed path, then fsync the
// directory. The rename alone makes the swap atomic against readers, but
// not durable: after a crash the directory entry may still point at the
// old file (fine — the previous commit) or, without the temp-file fsync,
// at a zero-length new one (cursor lost). Both syncs together guarantee a
// Save that returned nil survives power loss.
func (s *FileStore) Save(cur Cursor) error {
	if cur.Source == "" {
		return errors.New("checkpoint: cursor has no source")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode %s: %w", cur.Source, err)
	}
	final := s.path(cur.Source)
	tmp, err := os.CreateTemp(s.dir, "."+cur.Source+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: write %s: %w", cur.Source, errors.Join(werr, serr, cerr))
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: commit %s: %w", cur.Source, err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("checkpoint: sync store dir: %w", err)
	}
	return nil
}

// syncDir fsyncs the store directory so a just-renamed cursor's directory
// entry is durable, not merely atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	return errors.Join(serr, cerr)
}

// All implements Store.
func (s *FileStore) All() (map[string]Cursor, error) {
	s.mu.Lock()
	entries, err := os.ReadDir(s.dir)
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list store: %w", err)
	}
	out := make(map[string]Cursor)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cursor.json") {
			continue
		}
		source := strings.TrimSuffix(e.Name(), ".cursor.json")
		c, ok, err := s.Load(source)
		if err != nil {
			return nil, err
		}
		if ok {
			out[c.Source] = c
		}
	}
	return out, nil
}
