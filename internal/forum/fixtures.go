package forum

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/screenshot"
)

// Fixtures holds the seeded content for all five forum servers.
type Fixtures struct {
	Twitter    []post
	Reddit     []post
	Smishtank  []post
	SmishingEU []post
	Pastebin   []post
}

// commentary users attach around the screenshot; every variant carries at
// least one collection keyword so the simulated search finds it.
var commentaries = []string{
	"Got this smishing text today, be careful out there",
	"Another phishing sms impersonating @%s, reported",
	"Is this an sms scam? Received this morning",
	"PSA: sms fraud attempt going around, don't click",
	"This smishing attempt almost got my mum. Reporting here",
	"More phishing sms spam. When will carriers block this sms fraud?",
}

// noiseBodies are the awareness/chatter posts that match the keywords but
// are not reports — the curation stage must filter them (§3.2).
var noiseBodies = []string{
	"Our new blog post explains what smishing is and how to avoid sms fraud",
	"Reminder: forward any sms scam to 7726. Retweet to spread awareness",
	"We are hiring a researcher to study phishing sms campaigns",
	"Join our webinar on smishing and mobile threats this Thursday",
	"Thread: 10 red flags of an sms scam, number 7 will surprise you",
}

// redactSender is what privacy-minded reporters replace sender IDs with.
const redactSender = "+44 74** ***123"

// BuildFixtures routes every world message to its forum in the forum's
// native shape, appends keyword-matching noise posts, and renders
// screenshot attachments where the report has one.
func BuildFixtures(w *corpus.World) *Fixtures {
	rng := rand.New(rand.NewSource(w.Seed ^ 0x5eed))
	f := &Fixtures{}
	for _, m := range w.Messages {
		p := buildPost(rng, m)
		switch m.Forum {
		case corpus.ForumTwitter:
			f.Twitter = append(f.Twitter, p)
		case corpus.ForumReddit:
			p.Subreddit = pickSubreddit(rng)
			f.Reddit = append(f.Reddit, p)
		case corpus.ForumSmishtank:
			f.Smishtank = append(f.Smishtank, p)
		case corpus.ForumSmishingEU:
			f.SmishingEU = append(f.SmishingEU, p)
		case corpus.ForumPastebin:
			f.Pastebin = append(f.Pastebin, p)
		}
	}
	// Noise posts: only the screenshot-driven social forums carry them;
	// smishing.eu/Pastebin/Smishtank are purpose-built reporting channels.
	addNoise := func(forum corpus.Forum, out *[]post) {
		n := w.NoisePosts[forum]
		for i := 0; i < n; i++ {
			p := post{
				ID:        fmt.Sprintf("%s-noise-%05d", forum, i),
				CreatedAt: randomTime(rng),
				Body:      noiseBodies[rng.Intn(len(noiseBodies))],
				IsNoise:   true,
			}
			if rng.Float64() < 0.5 {
				// Half the noise posts attach a poster or unrelated image.
				if rng.Float64() < 0.7 {
					p.Attachment = screenshot.RenderPoster("Think before you click").Encode()
				} else {
					p.Attachment = screenshot.RenderUnrelated(i).Encode()
				}
			}
			if forum == corpus.ForumReddit {
				p.Subreddit = pickSubreddit(rng)
			}
			*out = append(*out, p)
		}
	}
	addNoise(corpus.ForumTwitter, &f.Twitter)
	addNoise(corpus.ForumReddit, &f.Reddit)
	return f
}

func buildPost(rng *rand.Rand, m corpus.Message) post {
	p := post{
		ID:        string(m.Forum) + "-" + m.ID,
		CreatedAt: m.ReportedAt,
		Country:   m.Sender.Country,
	}
	displaySender := m.Sender.Value
	if m.RedactSender {
		displaySender = redactSender
	}
	displayText := m.Text
	if m.RedactURL && m.URL != "" {
		displayText = strings.ReplaceAll(displayText, m.URL, redactedURL(m.URL))
	}

	switch m.Forum {
	case corpus.ForumTwitter, corpus.ForumReddit:
		c := commentaries[rng.Intn(len(commentaries))]
		if strings.Contains(c, "%s") {
			brand := m.Brand
			if brand == "" {
				brand = "my bank"
			}
			c = fmt.Sprintf(c, strings.ReplaceAll(brand, " ", ""))
		}
		p.Body = c
		if m.HasScreenshot {
			p.Attachment = renderShot(rng, m, displaySender, displayText)
		} else {
			// No screenshot: the user quotes the SMS in the post body.
			p.Body = c + `: "` + displayText + `" from ` + displaySender
		}
	case corpus.ForumSmishtank:
		p.SMSText = displayText
		p.SenderID = displaySender
		p.Timestamp = m.SentAt.Format("2006-01-02T15:04:05Z")
		if m.HasScreenshot {
			p.Attachment = renderShot(rng, m, displaySender, displayText)
		}
	case corpus.ForumSmishingEU:
		p.SMSText = displayText
		p.SenderID = displaySender
		p.Brand = m.Brand
		p.Timestamp = m.SentAt.Format("2006-01-02") // date only (§3.3.2)
	case corpus.ForumPastebin:
		p.SMSText = displayText
		p.SenderID = displaySender
		p.Timestamp = m.SentAt.Format("2006-01-02") // date only
	}
	return p
}

func renderShot(rng *rand.Rand, m corpus.Message, sender, text string) []byte {
	spec := screenshot.Spec{
		Sender: sender,
		Body:   text,
		URL:    m.URL,
		Theme:  screenshot.Themes[rng.Intn(len(screenshot.Themes))],
	}
	if m.RedactURL {
		spec.URL = ""
	}
	spec.Timestamp = m.SentAt
	spec.TimeOnly = !m.ScreenshotTime
	return screenshot.Render(spec).Encode()
}

func redactedURL(u string) string {
	if i := strings.LastIndex(u, "/"); i > 8 {
		return u[:i+1] + "******"
	}
	return "https://********"
}

// subreddits follow §3.1.2: r/Scams dominates, then a long tail of
// one-post communities.
var subreddits = []string{
	"Scams", "Scams", "Scams", "Scams", "cybersecurity", "cybersecurity",
	"ledgerwallet", "phishing", "privacy", "uknews", "india", "Netherlands",
	"australia", "legaladvice", "personalfinance", "banking",
}

func pickSubreddit(rng *rand.Rand) string {
	if rng.Float64() < 0.35 {
		// Long tail: a fresh single-post community.
		return fmt.Sprintf("community%04d", rng.Intn(1200))
	}
	return subreddits[rng.Intn(len(subreddits))]
}

func randomTime(rng *rand.Rand) time.Time {
	return time.Unix(1500000000+rng.Int63n(190000000), 0).UTC()
}
