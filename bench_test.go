// Benchmarks regenerate every table and figure of the paper against the
// simulated world and measure the pipeline's moving parts. Run with:
//
//	go test -bench=. -benchmem
//
// Each exhibit benchmark logs the rows/series it reproduces (visible under
// -v or in benchmark output files) so paper-vs-measured comparisons can be
// recorded in EXPERIMENTS.md.
package smishkit

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/annotate"
	"github.com/smishkit/smishkit/internal/cluster"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/crawler"
	"github.com/smishkit/smishkit/internal/detect"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/enrichcache"
	"github.com/smishkit/smishkit/internal/faultinject"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/malware"
	"github.com/smishkit/smishkit/internal/monitor"
	"github.com/smishkit/smishkit/internal/report"
	"github.com/smishkit/smishkit/internal/resilience"
	"github.com/smishkit/smishkit/internal/screenshot"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/stats"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/textnorm"
	"github.com/smishkit/smishkit/internal/urlinfo"
	"github.com/smishkit/smishkit/internal/xdrfilter"
)

// benchScale is the corpus size the exhibit benchmarks run over.
const benchScale = 6000

var (
	benchOnce    sync.Once
	benchSim     *core.Simulation
	benchWorld   *corpus.World
	benchReports []forum.RawReport
	benchDS      *core.Dataset
	benchErr     error
)

// benchDataset builds the shared simulated dataset once.
func benchDataset(b *testing.B) *core.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchWorld = corpus.Generate(corpus.Config{Seed: 1861, Messages: benchScale})
		benchSim, benchErr = core.StartSimulation(benchWorld)
		if benchErr != nil {
			return
		}
		benchReports, _, benchErr = forum.CollectAll(context.Background(), benchSim.Collectors())
		if benchErr != nil {
			return
		}
		var pipe *core.Pipeline
		pipe, benchErr = core.NewPipeline(benchSim.Services(), core.Options{EnrichWorkers: 16})
		if benchErr != nil {
			return
		}
		benchDS, benchErr = pipe.Run(context.Background(), benchReports)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

// --- Exhibit benchmarks: one per table/figure ---

func BenchmarkTable01DatasetOverview(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []report.Table1Row
	for i := 0; i < b.N; i++ {
		rows = report.Table1(ds)
	}
	b.StopTimer()
	for _, r := range rows {
		b.Logf("%-12s posts=%d images=%d texts=%d/%d", r.Forum, r.Posts, r.Images, r.UniqueTexts, r.TotalTexts)
	}
}

func BenchmarkTable03PhoneNumberTypes(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var c *stats.Counter
	for i := 0; i < b.N; i++ {
		c = report.Table3(ds.Records)
	}
	b.StopTimer()
	for _, e := range c.TopK(5) {
		b.Logf("%s", e)
	}
}

func BenchmarkTable04TopMNOs(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []report.MNORow
	for i := 0; i < b.N; i++ {
		rows = report.Table4(ds.Records, 10)
	}
	b.StopTimer()
	for _, r := range rows[:min(5, len(rows))] {
		b.Logf("%-20s %d numbers, %d countries", r.MNO, r.Numbers, len(r.Countries))
	}
}

func BenchmarkTable05Shorteners(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var ct *stats.CrossTab
	for i := 0; i < b.N; i++ {
		ct = report.Table5(ds.Records)
	}
	b.StopTimer()
	for _, e := range ct.RowTotals().TopK(5) {
		b.Logf("%-14s total=%d banking=%d delivery=%d", e.Key, e.Count,
			ct.Cell(e.Key, "banking"), ct.Cell(e.Key, "delivery"))
	}
}

func BenchmarkTable06TLDs(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var landing, short *stats.Counter
	for i := 0; i < b.N; i++ {
		landing, short = report.Table6(ds.Records)
	}
	b.StopTimer()
	b.Logf("landing top: %v", landing.TopK(5))
	b.Logf("shortened top: %v", short.TopK(5))
}

func BenchmarkTable07TLSCAs(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []report.CARow
	for i := 0; i < b.N; i++ {
		rows = report.Table7(ds.Records, 10)
	}
	b.StopTimer()
	for _, r := range rows[:min(4, len(rows))] {
		b.Logf("%-24s %d certs / %d domains", r.CA, r.Certificates, r.Domains)
	}
}

func BenchmarkTable08ASes(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []report.ASRow
	for i := 0; i < b.N; i++ {
		rows = report.Table8(ds.Records, 10)
	}
	b.StopTimer()
	for _, r := range rows[:min(4, len(rows))] {
		b.Logf("%-24s %d IPs %v", r.ASName, r.IPs, r.Countries)
	}
}

func BenchmarkTable09VirusTotal(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var res report.Table9Result
	for i := 0; i < b.N; i++ {
		res = report.Table9(ds.Records)
	}
	b.StopTimer()
	b.Logf("urls=%d undetected=%d >=1:%d >=5:%d >=15:%d susp>=1:%d",
		res.URLs, res.Undetected, res.MaliciousGE[1], res.MaliciousGE[5],
		res.MaliciousGE[15], res.SuspiciousGE[1])
}

func BenchmarkTable10ScamCategories(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var c *stats.Counter
	for i := 0; i < b.N; i++ {
		c, _ = report.Table10(ds.Records)
	}
	b.StopTimer()
	for _, e := range c.TopK(4) {
		b.Logf("%s", e)
	}
}

func BenchmarkTable11Languages(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var c *stats.Counter
	for i := 0; i < b.N; i++ {
		c = report.Table11(ds.Records)
	}
	b.StopTimer()
	for _, e := range c.TopK(5) {
		b.Logf("%s", e)
	}
}

func BenchmarkTable12Brands(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var c *stats.Counter
	for i := 0; i < b.N; i++ {
		c = report.Table12(ds.Records)
	}
	b.StopTimer()
	for _, e := range c.TopK(5) {
		b.Logf("%s", e)
	}
}

func BenchmarkTable13Lures(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var ct *stats.CrossTab
	for i := 0; i < b.N; i++ {
		ct = report.Table13(ds.Records)
	}
	b.StopTimer()
	for _, e := range ct.RowTotals().TopK(4) {
		b.Logf("%-14s total=%d banking=%d heymum=%d", e.Key, e.Count,
			ct.Cell(e.Key, "banking"), ct.Cell(e.Key, "hey_mum_dad"))
	}
}

func BenchmarkTable14Countries(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var rows []report.CountryRow
	for i := 0; i < b.N; i++ {
		rows = report.Table14(ds.Records, 10)
	}
	b.StopTimer()
	for _, r := range rows[:min(5, len(rows))] {
		b.Logf("%-4s %d numbers (%d live, %d MNOs)", r.Country, r.Numbers, r.Live, r.MNOs)
	}
}

func BenchmarkTable15AnnualTweets(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var posts map[int]int
	for i := 0; i < b.N; i++ {
		posts, _ = report.Table15(ds.Records, corpus.ForumTwitter)
	}
	b.StopTimer()
	for y := 2017; y <= 2023; y++ {
		if n, ok := posts[y]; ok {
			b.Logf("%d: %d posts", y, n)
		}
	}
}

func BenchmarkTable16IANAClasses(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var urls *stats.Counter
	for i := 0; i < b.N; i++ {
		urls, _ = report.Table16(ds.Records)
	}
	b.StopTimer()
	for _, e := range urls.TopK(0) {
		b.Logf("%s", e)
	}
}

func BenchmarkTable17Registrars(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var c *stats.Counter
	for i := 0; i < b.N; i++ {
		c = report.Table17(ds.Records)
	}
	b.StopTimer()
	for _, e := range c.TopK(5) {
		b.Logf("%s", e)
	}
}

func BenchmarkTable18GSB(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var res report.Table18Result
	for i := 0; i < b.N; i++ {
		res = report.Table18(ds.Records)
	}
	b.StopTimer()
	b.Logf("urls=%d api=%d tr-unsafe=%d tr-partial=%d tr-nodata=%d blocked=%d",
		res.URLs, res.APIUnsafe, res.TRUnsafe, res.TRPartial, res.TRNoData, res.TRBlocked)
}

// BenchmarkTable19CaseStudyAPKs runs the §6 active-analysis loop: crawl a
// 200-URL sample with both personas, capture APKs, unify labels.
func BenchmarkTable19CaseStudyAPKs(b *testing.B) {
	ds := benchDataset(b)
	var sample []core.Record
	rng := rand.New(rand.NewSource(5))
	for _, r := range ds.Records {
		if r.HasURL() {
			sample = append(sample, r)
		}
	}
	rng.Shuffle(len(sample), func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })
	if len(sample) > 200 {
		sample = sample[:200]
	}
	c := crawler.NewCrawler()
	c.Rewrite = benchSim.CrawlRouter().Rewrite
	ctx := context.Background()

	b.ResetTimer()
	var families *stats.Counter
	for i := 0; i < b.N; i++ {
		families = stats.NewCounter()
		for _, rec := range sample {
			_, android := c.CrawlBoth(ctx, rec.ShownURL)
			if android.Outcome != crawler.OutcomeAPKDownload {
				continue
			}
			truth := benchWorld.Domains[domainKey(android.FinalURL)]
			labels := malware.ScanLabels(malware.Sample{SHA256: android.APKSHA256, Family: truth.MalwareFamily}, 10)
			if fam := malware.Unify(labels); fam != "" {
				families.Add(fam)
			}
		}
	}
	b.StopTimer()
	for _, e := range families.TopK(0) {
		b.Logf("%s", e)
	}
}

func BenchmarkFig02Timestamps(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var res report.Fig2Result
	for i := 0; i < b.N; i++ {
		res = report.Fig2(ds.Records, true)
	}
	b.StopTimer()
	b.Logf("n=%d significant-pairs=%d", res.N, len(res.SignificantPairs))
	if s, ok := res.ByWeekday[time.Monday]; ok {
		b.Logf("Monday median send hour: %.2f", s.Median)
	}
}

func BenchmarkFig03CountryScamMix(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var mix map[string]map[string]float64
	for i := 0; i < b.N; i++ {
		mix = report.Fig3(ds.Records, 10)
	}
	b.StopTimer()
	if ind, ok := mix["IND"]; ok {
		b.Logf("IND banking share: %.2f", ind["banking"])
	}
	if usa, ok := mix["USA"]; ok {
		b.Logf("USA others share: %.2f", usa["others"])
	}
}

func BenchmarkSenderIDKinds(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var c *stats.Counter
	for i := 0; i < b.N; i++ {
		c = report.SenderKinds(ds.Records)
	}
	b.StopTimer()
	for _, e := range c.TopK(0) {
		b.Logf("%s", e)
	}
}

// --- Methodology benchmarks ---

// BenchmarkExtractorLadder compares the three extraction rungs on the same
// screenshot corpus: throughput here, field yield in the logs (§3.2).
func BenchmarkExtractorLadder(b *testing.B) {
	benchDataset(b)
	var images []screenshot.Image
	for _, rep := range benchReports {
		if rep.HasAttachment() {
			if img, err := screenshot.Decode(rep.Attachment); err == nil {
				images = append(images, img)
				if len(images) == 500 {
					break
				}
			}
		}
	}
	engines := []screenshot.Extractor{
		screenshot.NaiveOCR{}, screenshot.VisionOCR{}, screenshot.StructuredVision{},
	}
	for _, eng := range engines {
		b.Run(eng.Name(), func(b *testing.B) {
			var okCount, urlCount, urlTotal int
			for i := 0; i < b.N; i++ {
				okCount, urlCount, urlTotal = 0, 0, 0
				for _, img := range images {
					ext, err := eng.Extract(img)
					if err != nil || !ext.OK {
						continue
					}
					okCount++
					if img.TruthURL == "" {
						continue
					}
					urlTotal++
					// A URL counts as recovered if the engine isolated it
					// exactly, or if it survives contiguously in the text.
					joined := ""
					for _, r := range ext.Text {
						if r != '\n' {
							joined += string(r)
						}
					}
					if ext.URL == img.TruthURL || contains(joined, img.TruthURL) {
						urlCount++
					}
				}
			}
			b.StopTimer()
			b.Logf("%s: %d/%d readable, %d/%d URLs recovered", eng.Name(), okCount, len(images), urlCount, urlTotal)
		})
	}
}

// BenchmarkKappaEvaluation runs the §3.4 protocol: annotate a golden set
// and compute the four agreement kappas.
func BenchmarkKappaEvaluation(b *testing.B) {
	w := corpus.Generate(corpus.Config{Seed: 314, Messages: 150})
	golden := make([]annotate.Annotation, len(w.Messages))
	texts := make([]string, len(w.Messages))
	urls := make([]string, len(w.Messages))
	for i, m := range w.Messages {
		golden[i] = annotate.Annotation{ScamType: m.ScamType, Language: m.Language, Brand: m.Brand, Lures: m.Lures}
		texts[i], urls[i] = m.Text, m.URL
	}
	b.ResetTimer()
	var agr annotate.Agreement
	for i := 0; i < b.N; i++ {
		predicted := make([]annotate.Annotation, len(texts))
		for j := range texts {
			predicted[j] = annotate.Annotate(texts[j], urls[j])
		}
		var err error
		agr, err = annotate.Evaluate(golden, predicted)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("scam κ=%.2f brand κ=%.2f lure κ=%.2f lang κ=%.2f (paper: 0.93 / 0.85 / 0.70)",
		agr.ScamKappa, agr.BrandKappa, agr.LureKappa, agr.LangKappa)
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// BenchmarkEnrichmentFanout sweeps the enrichment worker count.
func BenchmarkEnrichmentFanout(b *testing.B) {
	benchDataset(b)
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			pipe, err := core.NewPipeline(benchSim.Services(), core.Options{EnrichWorkers: workers})
			if err != nil {
				b.Fatal(err)
			}
			// A fixed 400-report slice keeps iterations comparable.
			slice := benchReports
			if len(slice) > 400 {
				slice = slice[:400]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds := pipe.Curate(slice)
				if err := pipe.Enrich(context.Background(), ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnrichmentCache is the before/after for the caching tier: the
// same curated reports enriched through bare service clients vs through
// the singleflight/TTL/LRU decorators. Reports collapse onto far fewer
// distinct domains and numbers, so the cached runs answer most lookups
// locally; the reported hit% is the realized reuse.
func BenchmarkEnrichmentCache(b *testing.B) {
	benchDataset(b)
	slice := benchReports
	if len(slice) > 800 {
		slice = slice[:800]
	}

	enrich := func(b *testing.B, services core.Services) {
		pipe, err := core.NewPipeline(services, core.Options{EnrichWorkers: 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ds := pipe.Curate(slice)
			b.StartTimer()
			if err := pipe.Enrich(context.Background(), ds); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("uncached", func(b *testing.B) {
		enrich(b, benchSim.Services())
	})
	b.Run("cached", func(b *testing.B) {
		cache := enrichcache.New(enrichcache.Config{TTL: time.Hour}, telemetry.NewRegistry())
		enrich(b, cache.WrapServices(benchSim.Services()))
		var hits, misses int64
		for _, st := range cache.Stats() {
			hits += st.Hits + st.Coalesced
			misses += st.Misses
		}
		if total := hits + misses; total > 0 {
			b.ReportMetric(float64(hits)/float64(total)*100, "hit%")
		}
	})
}

// BenchmarkEnrichDegraded measures the cost of degraded-mode enrichment:
// whois erroring on half its calls behind a circuit breaker, against the
// healthy baseline. The degraded run pays for failed calls and breaker
// bookkeeping but sheds load once the breaker opens; the logged counters
// show how much of the sweep ran short-circuited.
func BenchmarkEnrichDegraded(b *testing.B) {
	benchDataset(b)
	slice := benchReports
	if len(slice) > 800 {
		slice = slice[:800]
	}

	enrich := func(b *testing.B, services core.Services) (degraded int64) {
		pipe, err := core.NewPipeline(services, core.Options{EnrichWorkers: 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ds := pipe.Curate(slice)
			b.StartTimer()
			if err := pipe.Enrich(context.Background(), ds); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			degraded = 0
			for _, r := range ds.Records {
				degraded += int64(len(r.EnrichmentErrors))
			}
			b.StartTimer()
		}
		return degraded
	}

	b.Run("healthy", func(b *testing.B) {
		if degraded := enrich(b, benchSim.Services()); degraded != 0 {
			b.Fatalf("healthy run degraded %d fields", degraded)
		}
	})
	b.Run("whois-50pct-errors", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		faults := faultinject.New(faultinject.Config{
			Seed:       1861,
			PerService: map[string]faultinject.ServiceFaults{"whois": {ErrorRate: 0.5}},
		}, reg)
		breakers := resilience.New(resilience.Config{}, reg)
		degraded := enrich(b, breakers.WrapServices(faults.WrapServices(benchSim.Services())))
		if degraded == 0 {
			b.Fatal("50% whois errors degraded nothing")
		}
		st := breakers.Stats()["whois"]
		b.ReportMetric(float64(degraded), "degraded-fields")
		b.Logf("whois breaker: opens=%d short-circuits=%d failures=%d successes=%d",
			st.Opens, st.ShortCircuits, st.Failures, st.Successes)
	})
}

// BenchmarkBrandNERNormalization measures the homoglyph/leet folding's
// effect on brand recovery over obfuscated mentions.
func BenchmarkBrandNERNormalization(b *testing.B) {
	obfuscated := []string{
		"N3tfl!x: your subscription failed",
		"РayРal: account limited",           // Cyrillic
		"Ａｍａｚｏｎ: unusual sign-in",           // fullwidth
		"P-a-y-P-a-l verification needed",   // spacing
		"Your $antander card is locked",     // leet
		"HSBC alert: confirm your identity", // clean control
	}
	b.Run("with-normalization", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			hits = 0
			for _, s := range obfuscated {
				if annotate.DetectBrand(s, "") != "" {
					hits++
				}
			}
		}
		b.StopTimer()
		b.Logf("recovered %d/%d obfuscated brands", hits, len(obfuscated))
	})
	b.Run("fold-only-baseline", func(b *testing.B) {
		// Baseline: plain lowercase contains-match, no skeletonization.
		brands := []string{"netflix", "paypal", "amazon", "santander", "hsbc"}
		hits := 0
		for i := 0; i < b.N; i++ {
			hits = 0
			for _, s := range obfuscated {
				low := textnorm.Fold(s)
				for _, br := range brands {
					if contains(low, br) {
						hits++
						break
					}
				}
			}
		}
		b.StopTimer()
		b.Logf("recovered %d/%d obfuscated brands", hits, len(obfuscated))
	})
}

// BenchmarkDedupStrategies compares exact-text dedup with normalized
// template dedup on corpus texts.
func BenchmarkDedupStrategies(b *testing.B) {
	ds := benchDataset(b)
	texts := make([]string, len(ds.Records))
	for i, r := range ds.Records {
		texts[i] = r.Text
	}
	b.Run("exact", func(b *testing.B) {
		var unique int
		for i := 0; i < b.N; i++ {
			seen := make(map[string]bool, len(texts))
			for _, t := range texts {
				seen[t] = true
			}
			unique = len(seen)
		}
		b.StopTimer()
		b.Logf("%d unique of %d", unique, len(texts))
	})
	b.Run("normalized-template", func(b *testing.B) {
		var unique int
		for i := 0; i < b.N; i++ {
			seen := make(map[string]bool, len(texts))
			for _, t := range texts {
				seen[templateKey(t)] = true
			}
			unique = len(seen)
		}
		b.StopTimer()
		b.Logf("%d unique of %d (campaign templates)", unique, len(texts))
	})
}

// BenchmarkASNLookup compares the radix tree against the linear scan.
func BenchmarkASNLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	radix := dnsdb.NewRadixTable()
	linear := &dnsdb.LinearTable{}
	for i := 0; i < 5000; i++ {
		addr := netip.AddrFrom4([4]byte{byte(1 + rng.Intn(220)), byte(rng.Intn(250)), 0, 0})
		p, err := addr.Prefix(12 + rng.Intn(13))
		if err != nil {
			b.Fatal(err)
		}
		info := dnsdb.ASInfo{ASN: i}
		if err := radix.Insert(p, info); err != nil {
			b.Fatal(err)
		}
		if err := linear.Insert(p, info); err != nil {
			b.Fatal(err)
		}
	}
	queries := make([]netip.Addr, 1000)
	for i := range queries {
		queries[i] = netip.AddrFrom4([4]byte{byte(1 + rng.Intn(220)), byte(rng.Intn(250)), byte(rng.Intn(250)), byte(rng.Intn(250))})
	}
	b.Run("radix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				_, _ = radix.Lookup(q)
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				_, _ = linear.Lookup(q)
			}
		}
	})
}

// BenchmarkFullPipeline measures the complete collect->report path at a
// smaller scale (fresh world each run would defeat caching; collection
// reuses the booted simulation).
func BenchmarkFullPipeline(b *testing.B) {
	benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe, err := core.NewPipeline(benchSim.Services(), core.Options{EnrichWorkers: 16})
		if err != nil {
			b.Fatal(err)
		}
		slice := benchReports
		if len(slice) > 600 {
			slice = slice[:600]
		}
		if _, err := pipe.Run(context.Background(), slice); err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers ---

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// templateKey collapses digits and URLs so messages from one campaign
// template share a key.
func templateKey(s string) string {
	out := make([]rune, 0, len(s))
	inURL := false
	for _, r := range textnorm.Fold(s) {
		switch {
		case r == ' ':
			inURL = false
			out = append(out, r)
		case inURL:
		case r >= '0' && r <= '9':
			out = append(out, '#')
		case r == '/':
			inURL = true
			out = append(out, '~')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// domainKey extracts the registrable domain from a landing URL.
func domainKey(u string) string {
	info, err := urlinfo.Parse(u)
	if err != nil {
		return ""
	}
	return info.Domain
}

// --- §7.2 mitigation benchmarks ---

// BenchmarkDetector measures the multi-class detector (train + inference).
func BenchmarkDetector(b *testing.B) {
	w := corpus.Generate(corpus.Config{Seed: 71, Messages: 3000})
	docs := make([]detect.Doc, 0, 3800)
	for _, m := range w.Messages {
		docs = append(docs, detect.Doc{Text: m.Text, Label: string(m.ScamType)})
	}
	for _, ham := range corpus.GenerateHam(72, 800) {
		docs = append(docs, detect.Doc{Text: ham, Label: "ham"})
	}
	train, test := detect.Split(docs, 0.25, 3)

	b.Run("train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := detect.Train(train, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	model, err := detect.Train(train, true)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("infer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range test[:200] {
				if _, _, err := model.Predict(d.Text); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	ev, err := detect.Evaluate(model, test)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("multiclass accuracy=%.3f macroF1=%.3f over %d held-out docs", ev.Accuracy, ev.MacroF1, ev.N)
}

// BenchmarkXDRFilter compares the operator filter with and without the
// paper's recommended shortener-expansion check: the block rate on
// shortened smishing is the "who wins" number.
func BenchmarkXDRFilter(b *testing.B) {
	benchDataset(b)
	// Blocklist: every world domain flagged by threat intel (detectability
	// above the median) — the feed an operator could realistically buy.
	var blocklist []string
	for name, d := range benchWorld.Domains {
		if d.Detectability > 0.4 {
			blocklist = append(blocklist, name)
		}
	}
	var shortened []struct{ Sender, Text string }
	for _, m := range benchWorld.Messages {
		if m.Shortener != "" {
			shortened = append(shortened, struct{ Sender, Text string }{m.Sender.Value, m.Text})
			if len(shortened) == 400 {
				break
			}
		}
	}
	expander := shortener.NewClient(benchSim.ShortenerURL)

	for _, mode := range []struct {
		name string
		exp  xdrfilter.Expander
	}{{"without-expansion", nil}, {"with-expansion", expander}} {
		b.Run(mode.name, func(b *testing.B) {
			f := xdrfilter.New(xdrfilter.Config{Blocklist: blocklist, Expander: mode.exp})
			var st xdrfilter.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				st, err = f.Run(context.Background(), shortened)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.Logf("%s: blocked %d + flagged %d of %d shortened smishes",
				mode.name, st.Blocked, st.Flagged, st.Total)
		})
	}
}

// BenchmarkCampaignClustering measures the union-find attribution layer
// and logs the consolidation it achieves.
func BenchmarkCampaignClustering(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var campaigns []*cluster.Campaign
	for i := 0; i < b.N; i++ {
		campaigns = cluster.Cluster(ds.Records, cluster.DefaultOptions())
	}
	b.StopTimer()
	b.Logf("%d records -> %d campaigns; largest: %d reports (%s / %s)",
		len(ds.Records), len(campaigns), campaigns[0].Size(), campaigns[0].Brand, campaigns[0].ScamType)
}

// BenchmarkURLLifespans runs the active lifetime monitor over simulated
// days (virtual clock) and logs the lifespan distribution — the paper's
// "minutes to a few days" claim measured.
func BenchmarkURLLifespans(b *testing.B) {
	ds := benchDataset(b)
	start := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	var urls []string
	seen := map[string]bool{}
	for _, r := range ds.Records {
		if r.FinalURL != "" && r.Domain != "" && !seen[r.Domain] {
			seen[r.Domain] = true
			urls = append(urls, r.FinalURL)
			if len(urls) == 100 {
				break
			}
		}
	}
	b.ResetTimer()
	var sum monitor.Summary
	for i := 0; i < b.N; i++ {
		clock, advance := monitor.NewVirtualTime(start)
		benchSim.EnableTakedownSchedule(start, clock)
		c := crawler.NewCrawler()
		c.Rewrite = benchSim.CrawlRouter().Rewrite
		m := &monitor.Monitor{Crawler: c, Interval: 3 * time.Hour, Clock: clock, Advance: advance}
		targets, err := m.Run(context.Background(), urls, 40)
		if err != nil {
			b.Fatal(err)
		}
		sum = monitor.Summarize(targets)
	}
	b.StopTimer()
	b.Logf("died %d/%d; lifespan hours min=%.1f med=%.1f max=%.1f",
		sum.Died, sum.Targets, sum.Lifespans.Min, sum.Lifespans.Median, sum.Lifespans.Max)
}
