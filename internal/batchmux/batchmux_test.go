package batchmux

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// recordingBulk is a bulk backend that logs every batch it receives and
// answers each key with "v:<key>".
type recordingBulk struct {
	mu      sync.Mutex
	batches [][]string
	errFor  map[string]error // keys answered with an error instead
	short   bool             // answer one slot fewer than asked
}

func (r *recordingBulk) call(_ context.Context, keys []string) ([]string, []error) {
	r.mu.Lock()
	r.batches = append(r.batches, append([]string(nil), keys...))
	r.mu.Unlock()
	vals := make([]string, len(keys))
	errs := make([]error, len(keys))
	for i, k := range keys {
		if err := r.errFor[k]; err != nil {
			errs[i] = err
			continue
		}
		vals[i] = "v:" + k
	}
	if r.short && len(vals) > 0 {
		vals = vals[:len(vals)-1]
		errs = errs[:len(errs)-1]
	}
	return vals, errs
}

func (r *recordingBulk) batchCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.batches)
}

func testBatcher(t *testing.T, sc ServiceConfig, reg *telemetry.Registry, bulk *recordingBulk) *batcher[string] {
	t.Helper()
	return newBatcher(sc, time.Second, nil, newMetrics(reg, "test"), bulk.call)
}

// concurrentGets issues one get per key from its own goroutine and returns
// the values and errors in key order.
func concurrentGets(ctx context.Context, b *batcher[string], keys []string) ([]string, []error) {
	vals := make([]string, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals[i], errs[i] = b.get(ctx, k)
		}()
	}
	wg.Wait()
	return vals, errs
}

func TestWindowFlushesOnSize(t *testing.T) {
	t.Parallel()
	bulk := &recordingBulk{}
	reg := telemetry.NewRegistry()
	// The interval is effectively infinite: only the size trigger can
	// flush within the test's lifetime.
	b := testBatcher(t, ServiceConfig{Window: 3, FlushInterval: time.Hour}, reg, bulk)

	vals, errs := concurrentGets(context.Background(), b, []string{"a", "b", "c"})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	want := []string{"v:a", "v:b", "v:c"}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("get %d = %q, want %q", i, vals[i], want[i])
		}
	}
	if got := bulk.batchCount(); got != 1 {
		t.Fatalf("bulk called %d times, want 1", got)
	}
	if got := len(bulk.batches[0]); got != 3 {
		t.Errorf("flush carried %d keys, want 3", got)
	}
	if got := reg.Snapshot().Counters["batch.test.flushes"]; got != 1 {
		t.Errorf("batch.test.flushes = %d, want 1", got)
	}
	if got := reg.Snapshot().Counters["batch.test.batch_size"]; got != 3 {
		t.Errorf("batch.test.batch_size = %d, want 3", got)
	}
}

func TestPartialWindowFlushesOnTimer(t *testing.T) {
	t.Parallel()
	bulk := &recordingBulk{}
	reg := telemetry.NewRegistry()
	// The window can never fill: only the timer can flush.
	b := testBatcher(t, ServiceConfig{Window: 100, FlushInterval: 10 * time.Millisecond}, reg, bulk)

	start := time.Now()
	vals, errs := concurrentGets(context.Background(), b, []string{"a", "b"})
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("gets failed: %v %v", errs[0], errs[1])
	}
	if vals[0] != "v:a" || vals[1] != "v:b" {
		t.Errorf("got (%q, %q), want (v:a, v:b)", vals[0], vals[1])
	}
	if got := bulk.batchCount(); got != 1 {
		t.Fatalf("bulk called %d times, want 1", got)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("partial window flushed after %v, before the 10ms interval", elapsed)
	}
}

func TestDuplicateKeysCoalesceInWindow(t *testing.T) {
	t.Parallel()
	bulk := &recordingBulk{}
	reg := telemetry.NewRegistry()
	b := testBatcher(t, ServiceConfig{Window: 100, FlushInterval: 10 * time.Millisecond}, reg, bulk)

	vals, errs := concurrentGets(context.Background(), b, []string{"a", "a", "a", "b"})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	for _, i := range []int{0, 1, 2} {
		if vals[i] != "v:a" {
			t.Errorf("duplicate waiter %d got %q, want v:a", i, vals[i])
		}
	}
	if vals[3] != "v:b" {
		t.Errorf("distinct waiter got %q, want v:b", vals[3])
	}
	if got := bulk.batchCount(); got != 1 {
		t.Fatalf("bulk called %d times, want 1", got)
	}
	if got := len(bulk.batches[0]); got != 2 {
		t.Errorf("flush carried %d keys, want 2 distinct", got)
	}
	if got := reg.Snapshot().Counters["batch.test.coalesced"]; got != 2 {
		t.Errorf("batch.test.coalesced = %d, want 2", got)
	}
}

func TestPerKeyErrorDegradesOneSlot(t *testing.T) {
	t.Parallel()
	boom := errors.New("bad key")
	bulk := &recordingBulk{errFor: map[string]error{"b": boom}}
	b := testBatcher(t, ServiceConfig{Window: 3, FlushInterval: time.Hour}, nil, bulk)

	vals, errs := concurrentGets(context.Background(), b, []string{"a", "b", "c"})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy keys failed: %v %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], boom) {
		t.Errorf("bad key error = %v, want %v", errs[1], boom)
	}
	if vals[0] != "v:a" || vals[2] != "v:c" {
		t.Errorf("healthy keys got (%q, %q), want (v:a, v:c)", vals[0], vals[2])
	}
}

func TestShortBulkResultDegradesMissingSlot(t *testing.T) {
	t.Parallel()
	bulk := &recordingBulk{short: true}
	b := testBatcher(t, ServiceConfig{Window: 2, FlushInterval: time.Hour}, nil, bulk)

	_, errs := concurrentGets(context.Background(), b, []string{"a", "b"})
	var missing, healthy int
	for _, err := range errs {
		switch {
		case err == nil:
			healthy++
		case errors.Is(err, errShape):
			missing++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if missing != 1 || healthy != 1 {
		t.Errorf("got %d healthy and %d missing slots, want 1 and 1", healthy, missing)
	}
}

func TestGetHonorsContextWhileWaiting(t *testing.T) {
	t.Parallel()
	bulk := &recordingBulk{}
	b := testBatcher(t, ServiceConfig{Window: 100, FlushInterval: time.Hour}, nil, bulk)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.get(ctx, "a")
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the get park in its window
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("get returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("get did not return after its context was cancelled")
	}
}

// bulkCapableHLR implements both the per-key and the bulk seam.
type bulkCapableHLR struct{ calls atomic.Int64 }

func (s *bulkCapableHLR) Lookup(context.Context, string) (hlr.Result, error) {
	s.calls.Add(1)
	return hlr.Result{Known: true}, nil
}

func (s *bulkCapableHLR) LookupBatch(_ context.Context, msisdns []string) ([]hlr.Result, []error) {
	s.calls.Add(1)
	out := make([]hlr.Result, len(msisdns))
	for i := range out {
		out[i] = hlr.Result{Known: true, Source: msisdns[i]}
	}
	return out, make([]error, len(msisdns))
}

// perKeyOnlyHLR has no bulk seam, so the mux must fall through.
type perKeyOnlyHLR struct{ calls atomic.Int64 }

func (s *perKeyOnlyHLR) Lookup(context.Context, string) (hlr.Result, error) {
	s.calls.Add(1)
	return hlr.Result{Known: true}, nil
}

func TestMuxBatchesBulkCapableService(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	m := New(Config{Window: 4, FlushInterval: time.Hour}, reg)
	backend := &bulkCapableHLR{}
	wrapped := m.HLR(backend)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := wrapped.Lookup(context.Background(), fmt.Sprintf("+4477009001%02d", i))
			if err != nil {
				t.Errorf("lookup %d: %v", i, err)
				return
			}
			if want := fmt.Sprintf("+4477009001%02d", i); res.Source != want {
				t.Errorf("lookup %d answered for key %q, want %q", i, res.Source, want)
			}
		}()
	}
	wg.Wait()
	if got := backend.calls.Load(); got != 1 {
		t.Errorf("backend saw %d calls, want 1 bulk call", got)
	}
	if got := m.Stats()["hlr"].Flushes; got != 1 {
		t.Errorf("hlr flushes = %d, want 1", got)
	}
	if got := m.Stats()["hlr"].BatchedKeys; got != 4 {
		t.Errorf("hlr batched keys = %d, want 4", got)
	}
}

func TestMuxFallsThroughWithoutBulkSeam(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	m := New(Config{}, reg)
	backend := &perKeyOnlyHLR{}
	wrapped := m.HLR(backend)

	for i := 0; i < 3; i++ {
		if _, err := wrapped.Lookup(context.Background(), "+447700900123"); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	if got := backend.calls.Load(); got != 3 {
		t.Errorf("backend saw %d calls, want 3 per-key calls", got)
	}
	st := m.Stats()["hlr"]
	if st.Fallthrough != 3 {
		t.Errorf("fallthrough = %d, want 3", st.Fallthrough)
	}
	if st.Flushes != 0 {
		t.Errorf("flushes = %d, want 0", st.Flushes)
	}
	if got := reg.Snapshot().Counters["batch.hlr.fallthrough"]; got != 3 {
		t.Errorf("batch.hlr.fallthrough = %d, want 3", got)
	}
}

func TestWrapServicesLeavesUnbatchableServicesAlone(t *testing.T) {
	t.Parallel()
	m := New(Config{}, nil)
	s := m.WrapServices(core.Services{HLR: &bulkCapableHLR{}})
	if _, ok := s.HLR.(*batchedHLR); !ok {
		t.Errorf("bulk-capable HLR wrapped as %T, want *batchedHLR", s.HLR)
	}
	if s.Whois != nil || s.DNSDB != nil || s.AVScan != nil || s.Shortener != nil {
		t.Error("WrapServices invented services that were nil")
	}
	s2 := m.WrapServices(core.Services{HLR: &perKeyOnlyHLR{}})
	if _, ok := s2.HLR.(*fallthroughHLR); !ok {
		t.Errorf("per-key HLR wrapped as %T, want *fallthroughHLR", s2.HLR)
	}
}

// The real clients must keep satisfying the bulk seams the mux asserts on;
// a silent regression here would turn every study into fallthrough.
var (
	_ core.BulkHLRLookuper = (*hlr.Client)(nil)
	_ core.BulkDNSResolver = (*dnsdb.Client)(nil)
	_ core.BulkAVScanner   = (*avscan.Client)(nil)
)

func TestWriteRendersAllServices(t *testing.T) {
	t.Parallel()
	stats := Stats{
		"hlr":   {Flushes: 2, BatchedKeys: 10, Coalesced: 3},
		"dnsdb": {Fallthrough: 7},
	}
	var sb strings.Builder
	if err := Write(&sb, stats); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"request batching", "hlr", "dnsdb", "5.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaultsAndOverrides(t *testing.T) {
	t.Parallel()
	c := Config{PerService: map[string]ServiceConfig{"hlr": {Window: 8}}}.withDefaults()
	if c.Window != 32 || c.FlushInterval != 5*time.Millisecond || c.MaxInFlight != 4 {
		t.Errorf("withDefaults = %+v, want documented defaults", c)
	}
	sc := c.forService("hlr")
	if sc.Window != 8 || sc.FlushInterval != 5*time.Millisecond {
		t.Errorf("forService(hlr) = %+v, want window override with inherited interval", sc)
	}
	if sc := c.forService("dnsdb"); sc.Window != 32 {
		t.Errorf("forService(dnsdb).Window = %d, want inherited 32", sc.Window)
	}
}
