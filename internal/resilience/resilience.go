package resilience

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/whois"
)

// Config assembles the resilience layer: one breaker per enrichment
// service plus the pipeline-side budget and abort knobs (consumed by
// core.Options, wired by the facade). The zero value selects defaults
// everywhere.
type Config struct {
	// Breaker is the default per-service breaker tuning.
	Breaker BreakerConfig
	// PerService overrides Breaker for one service (keyed hlr, whois,
	// ctlog, dnsdb, avscan, shortener; full replacement).
	PerService map[string]BreakerConfig
	// Classify overrides the failure classifier (default Classify).
	Classify func(error) Outcome

	// RecordBudget bounds one record's total enrichment wall time; an
	// expired budget degrades the record's remaining fields rather than
	// aborting the run (0 = unbounded).
	RecordBudget time.Duration
	// CallTimeout bounds each individual service call, so one hung
	// connection can't consume a whole record budget (0 = unbounded).
	CallTimeout time.Duration
	// AbortFailureRate is the fraction of failed service calls above
	// which the run aborts — degradation is for partial outages, not for
	// a world where everything is down. 0 selects the pipeline default
	// (0.9); negative disables the abort.
	AbortFailureRate float64
	// MinAbortCalls is the minimum call sample before the abort check
	// fires (0 selects the pipeline default of 50).
	MinAbortCalls int
}

func (c Config) forService(name string) BreakerConfig {
	if bc, ok := c.PerService[name]; ok {
		return bc
	}
	return c.Breaker
}

// Breakers is the per-service breaker set decorating a core.Services.
type Breakers struct {
	perService map[string]*Breaker
}

// New builds one breaker per enrichment service, recording into reg (nil
// allowed).
func New(cfg Config, reg *telemetry.Registry) *Breakers {
	bs := &Breakers{perService: make(map[string]*Breaker, 6)}
	for _, name := range []string{"hlr", "whois", "ctlog", "dnsdb", "avscan", "shortener"} {
		b := NewBreaker(name, cfg.forService(name), reg)
		if cfg.Classify != nil {
			b.SetClassifier(cfg.Classify)
		}
		bs.perService[name] = b
	}
	return bs
}

// Breaker returns the named service's breaker (nil for unknown names).
func (bs *Breakers) Breaker(name string) *Breaker { return bs.perService[name] }

// WrapServices decorates every non-nil service with its breaker. Nil
// services stay nil, preserving stage-skipping. Multi-method services
// (dnsdb, avscan) share one breaker: an outage takes the whole service
// down, not one endpoint.
func (bs *Breakers) WrapServices(s core.Services) core.Services {
	if s.HLR != nil {
		s.HLR = &guardedHLR{next: s.HLR, b: bs.perService["hlr"]}
	}
	if s.Whois != nil {
		s.Whois = &guardedWhois{next: s.Whois, b: bs.perService["whois"]}
	}
	if s.CTLog != nil {
		s.CTLog = &guardedCT{next: s.CTLog, b: bs.perService["ctlog"]}
	}
	if s.DNSDB != nil {
		s.DNSDB = &guardedDNS{next: s.DNSDB, b: bs.perService["dnsdb"]}
	}
	if s.AVScan != nil {
		s.AVScan = &guardedAV{next: s.AVScan, b: bs.perService["avscan"]}
	}
	if s.Shortener != nil {
		s.Shortener = &guardedShort{next: s.Shortener, b: bs.perService["shortener"]}
	}
	return s
}

type guardedHLR struct {
	next core.HLRLookuper
	b    *Breaker
}

func (d *guardedHLR) Lookup(ctx context.Context, msisdn string) (hlr.Result, error) {
	if err := d.b.Allow(); err != nil {
		return hlr.Result{}, err
	}
	res, err := d.next.Lookup(ctx, msisdn)
	d.b.Record(err)
	return res, err
}

type guardedWhois struct {
	next core.WhoisLookuper
	b    *Breaker
}

func (d *guardedWhois) Lookup(ctx context.Context, domain string) (whois.Record, bool, error) {
	if err := d.b.Allow(); err != nil {
		return whois.Record{}, false, err
	}
	rec, found, err := d.next.Lookup(ctx, domain)
	d.b.Record(err)
	return rec, found, err
}

type guardedCT struct {
	next core.CTSummarizer
	b    *Breaker
}

func (d *guardedCT) Summary(ctx context.Context, domain string) (ctlog.Summary, error) {
	if err := d.b.Allow(); err != nil {
		return ctlog.Summary{}, err
	}
	sum, err := d.next.Summary(ctx, domain)
	d.b.Record(err)
	return sum, err
}

type guardedDNS struct {
	next core.DNSResolver
	b    *Breaker
}

func (d *guardedDNS) Resolutions(ctx context.Context, domain string) ([]dnsdb.Observation, error) {
	if err := d.b.Allow(); err != nil {
		return nil, err
	}
	obs, err := d.next.Resolutions(ctx, domain)
	d.b.Record(err)
	return obs, err
}

func (d *guardedDNS) ASOf(ctx context.Context, ip string) (dnsdb.ASInfo, error) {
	if err := d.b.Allow(); err != nil {
		return dnsdb.ASInfo{}, err
	}
	info, err := d.next.ASOf(ctx, ip)
	d.b.Record(err)
	return info, err
}

type guardedAV struct {
	next core.AVScanner
	b    *Breaker
}

func (d *guardedAV) Scan(ctx context.Context, u string) (avscan.Report, error) {
	if err := d.b.Allow(); err != nil {
		return avscan.Report{}, err
	}
	rep, err := d.next.Scan(ctx, u)
	d.b.Record(err)
	return rep, err
}

func (d *guardedAV) GSBLookup(ctx context.Context, u string) (avscan.GSBResult, error) {
	if err := d.b.Allow(); err != nil {
		return avscan.GSBResult{}, err
	}
	res, err := d.next.GSBLookup(ctx, u)
	d.b.Record(err)
	return res, err
}

func (d *guardedAV) Transparency(ctx context.Context, u string) (avscan.TransparencyResult, bool, error) {
	if err := d.b.Allow(); err != nil {
		return avscan.TransparencyResult{}, false, err
	}
	res, blocked, err := d.next.Transparency(ctx, u)
	d.b.Record(err)
	return res, blocked, err
}

type guardedShort struct {
	next core.ShortExpander
	b    *Breaker
}

func (d *guardedShort) Expand(ctx context.Context, service, code string) (string, error) {
	if err := d.b.Allow(); err != nil {
		return "", err
	}
	target, err := d.next.Expand(ctx, service, code)
	d.b.Record(err)
	return target, err
}

// BreakerStats is one service breaker's scoreboard.
type BreakerStats struct {
	State         string `json:"state"`
	Opens         int64  `json:"opens"`
	ShortCircuits int64  `json:"short_circuits"`
	Probes        int64  `json:"probes"`
	Failures      int64  `json:"failures"`
	Successes     int64  `json:"successes"`
}

// Stats maps service name to its breaker scoreboard.
type Stats map[string]BreakerStats

// Stats snapshots every breaker.
func (bs *Breakers) Stats() Stats {
	out := make(Stats, len(bs.perService))
	for name, b := range bs.perService {
		out[name] = BreakerStats{
			State:         b.State().String(),
			Opens:         b.opens.Value(),
			ShortCircuits: b.shorts.Value(),
			Probes:        b.probesC.Value(),
			Failures:      b.fails.Value(),
			Successes:     b.succs.Value(),
		}
	}
	return out
}

// Write renders stats as an aligned text table, services sorted by name.
func Write(w io.Writer, stats Stats) error {
	if _, err := fmt.Fprintf(w, "resilience breakers\n  %-10s %-9s %7s %9s %7s %9s %10s\n",
		"service", "state", "opens", "shorted", "probes", "failures", "successes"); err != nil {
		return err
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := stats[name]
		if _, err := fmt.Fprintf(w, "  %-10s %-9s %7d %9d %7d %9d %10d\n",
			name, s.State, s.Opens, s.ShortCircuits, s.Probes, s.Failures, s.Successes); err != nil {
			return err
		}
	}
	return nil
}
