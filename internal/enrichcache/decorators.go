package enrichcache

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/whois"
)

// whoisAnswer and transAnswer bundle multi-value client results into one
// cacheable value.
type whoisAnswer struct {
	rec   whois.Record
	found bool
}

type transAnswer struct {
	res     avscan.TransparencyResult
	blocked bool
}

// Cache is one shared enrichment cache: a per-service set of
// singleflight-coalesced TTL/LRU lookup tables that decorate the
// core.Services seam. Build one per study (or share across studies that
// share a telemetry registry) and attach it with WrapServices.
type Cache struct {
	hlrC   *lookupCache[hlr.Result]
	whoisC *lookupCache[whoisAnswer]
	ctC    *lookupCache[ctlog.Summary]
	pdnsC  *lookupCache[[]dnsdb.Observation]
	asnC   *lookupCache[dnsdb.ASInfo]
	scanC  *lookupCache[avscan.Report]
	gsbC   *lookupCache[avscan.GSBResult]
	transC *lookupCache[transAnswer]
	shortC *lookupCache[string]

	perService map[string]*serviceState
}

// serviceState joins one service's metric bundle with the entry counters
// of every table recorded under that service name.
type serviceState struct {
	met  *metrics
	lens []func() int
}

// New builds a cache recording into reg (nil is allowed: counters become
// no-ops and Stats still works off zero values — but pair it with the
// study's registry so hit rates land next to the client metrics).
func New(cfg Config, reg *telemetry.Registry) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{perService: make(map[string]*serviceState, 6)}
	svc := func(name string) (*metrics, ServiceConfig) {
		met := newMetrics(reg, name)
		c.perService[name] = &serviceState{met: met}
		return met, cfg.forService(name)
	}
	track := func(name string, length func() int) {
		st := c.perService[name]
		st.lens = append(st.lens, length)
	}

	met, sc := svc("hlr")
	c.hlrC = newLookupCache[hlr.Result](sc, cfg.ServeStale, cfg.Clock, met)
	track("hlr", c.hlrC.len)

	met, sc = svc("whois")
	c.whoisC = newLookupCache[whoisAnswer](sc, cfg.ServeStale, cfg.Clock, met)
	// WHOIS not-found is a value-level negative: cache it, but let it age
	// with NegativeTTL since the domain may get registered.
	c.whoisC.isNegVal = func(a whoisAnswer) bool { return !a.found }
	track("whois", c.whoisC.len)

	met, sc = svc("ctlog")
	c.ctC = newLookupCache[ctlog.Summary](sc, cfg.ServeStale, cfg.Clock, met)
	track("ctlog", c.ctC.len)

	met, sc = svc("dnsdb")
	c.pdnsC = newLookupCache[[]dnsdb.Observation](sc, cfg.ServeStale, cfg.Clock, met)
	c.asnC = newLookupCache[dnsdb.ASInfo](sc, cfg.ServeStale, cfg.Clock, met)
	c.asnC.isNegErr = func(err error) bool { return errors.Is(err, dnsdb.ErrNoRoute) }
	track("dnsdb", c.pdnsC.len)
	track("dnsdb", c.asnC.len)

	met, sc = svc("avscan")
	c.scanC = newLookupCache[avscan.Report](sc, cfg.ServeStale, cfg.Clock, met)
	c.gsbC = newLookupCache[avscan.GSBResult](sc, cfg.ServeStale, cfg.Clock, met)
	c.transC = newLookupCache[transAnswer](sc, cfg.ServeStale, cfg.Clock, met)
	track("avscan", c.scanC.len)
	track("avscan", c.gsbC.len)
	track("avscan", c.transC.len)

	met, sc = svc("shortener")
	c.shortC = newLookupCache[string](sc, cfg.ServeStale, cfg.Clock, met)
	c.shortC.isNegErr = func(err error) bool {
		return errors.Is(err, shortener.ErrNotFound) || errors.Is(err, shortener.ErrTakenDown)
	}
	track("shortener", c.shortC.len)

	return c
}

// WrapServices decorates every non-nil service with its cache. Nil
// services stay nil, so stage-skipping semantics are preserved.
func (c *Cache) WrapServices(s core.Services) core.Services {
	if s.HLR != nil {
		s.HLR = c.HLR(s.HLR)
	}
	if s.Whois != nil {
		s.Whois = c.Whois(s.Whois)
	}
	if s.CTLog != nil {
		s.CTLog = c.CTLog(s.CTLog)
	}
	if s.DNSDB != nil {
		s.DNSDB = c.DNSDB(s.DNSDB)
	}
	if s.AVScan != nil {
		s.AVScan = c.AVScan(s.AVScan)
	}
	if s.Shortener != nil {
		s.Shortener = c.Shortener(s.Shortener)
	}
	return s
}

// HLR caches next by normalized MSISDN.
func (c *Cache) HLR(next core.HLRLookuper) core.HLRLookuper {
	return &cachedHLR{next: next, c: c.hlrC}
}

// Whois caches next by lowercase domain, including not-found answers.
func (c *Cache) Whois(next core.WhoisLookuper) core.WhoisLookuper {
	return &cachedWhois{next: next, c: c.whoisC}
}

// CTLog caches next by lowercase domain.
func (c *Cache) CTLog(next core.CTSummarizer) core.CTSummarizer {
	return &cachedCT{next: next, c: c.ctC}
}

// DNSDB caches next's pDNS history by domain and AS answers by IP
// (ErrNoRoute cached as a negative).
func (c *Cache) DNSDB(next core.DNSResolver) core.DNSResolver {
	return &cachedDNS{next: next, pdns: c.pdnsC, asn: c.asnC}
}

// AVScan caches next's three reputation paths by URL.
func (c *Cache) AVScan(next core.AVScanner) core.AVScanner {
	return &cachedAV{next: next, scan: c.scanC, gsb: c.gsbC, trans: c.transC}
}

// Shortener caches next by service/code, with ErrNotFound and
// ErrTakenDown cached as negatives (takedowns stay down).
func (c *Cache) Shortener(next core.ShortExpander) core.ShortExpander {
	return &cachedShort{next: next, c: c.shortC}
}

type cachedHLR struct {
	next core.HLRLookuper
	c    *lookupCache[hlr.Result]
}

func (d *cachedHLR) Lookup(ctx context.Context, msisdn string) (hlr.Result, error) {
	return d.c.get(ctx, normalizeKey(msisdn), func(ctx context.Context) (hlr.Result, error) {
		return d.next.Lookup(ctx, msisdn)
	})
}

type cachedWhois struct {
	next core.WhoisLookuper
	c    *lookupCache[whoisAnswer]
}

func (d *cachedWhois) Lookup(ctx context.Context, domain string) (whois.Record, bool, error) {
	a, err := d.c.get(ctx, normalizeKey(domain), func(ctx context.Context) (whoisAnswer, error) {
		rec, found, err := d.next.Lookup(ctx, domain)
		return whoisAnswer{rec: rec, found: found}, err
	})
	return a.rec, a.found, err
}

type cachedCT struct {
	next core.CTSummarizer
	c    *lookupCache[ctlog.Summary]
}

func (d *cachedCT) Summary(ctx context.Context, domain string) (ctlog.Summary, error) {
	return d.c.get(ctx, normalizeKey(domain), func(ctx context.Context) (ctlog.Summary, error) {
		return d.next.Summary(ctx, domain)
	})
}

type cachedDNS struct {
	next core.DNSResolver
	pdns *lookupCache[[]dnsdb.Observation]
	asn  *lookupCache[dnsdb.ASInfo]
}

func (d *cachedDNS) Resolutions(ctx context.Context, domain string) ([]dnsdb.Observation, error) {
	return d.pdns.get(ctx, normalizeKey(domain), func(ctx context.Context) ([]dnsdb.Observation, error) {
		return d.next.Resolutions(ctx, domain)
	})
}

func (d *cachedDNS) ASOf(ctx context.Context, ip string) (dnsdb.ASInfo, error) {
	return d.asn.get(ctx, normalizeKey(ip), func(ctx context.Context) (dnsdb.ASInfo, error) {
		return d.next.ASOf(ctx, ip)
	})
}

type cachedAV struct {
	next  core.AVScanner
	scan  *lookupCache[avscan.Report]
	gsb   *lookupCache[avscan.GSBResult]
	trans *lookupCache[transAnswer]
}

func (d *cachedAV) Scan(ctx context.Context, u string) (avscan.Report, error) {
	return d.scan.get(ctx, u, func(ctx context.Context) (avscan.Report, error) {
		return d.next.Scan(ctx, u)
	})
}

func (d *cachedAV) GSBLookup(ctx context.Context, u string) (avscan.GSBResult, error) {
	return d.gsb.get(ctx, u, func(ctx context.Context) (avscan.GSBResult, error) {
		return d.next.GSBLookup(ctx, u)
	})
}

func (d *cachedAV) Transparency(ctx context.Context, u string) (avscan.TransparencyResult, bool, error) {
	a, err := d.trans.get(ctx, u, func(ctx context.Context) (transAnswer, error) {
		res, blocked, err := d.next.Transparency(ctx, u)
		return transAnswer{res: res, blocked: blocked}, err
	})
	return a.res, a.blocked, err
}

type cachedShort struct {
	next core.ShortExpander
	c    *lookupCache[string]
}

func (d *cachedShort) Expand(ctx context.Context, service, code string) (string, error) {
	key := normalizeKey(service) + "/" + code
	return d.c.get(ctx, key, func(ctx context.Context) (string, error) {
		return d.next.Expand(ctx, service, code)
	})
}

// normalizeKey folds case and whitespace so "Bit.ly" and "bit.ly " share
// an entry, matching the case-insensitive stores behind the services.
func normalizeKey(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// ServiceStats is one service's cache scoreboard.
type ServiceStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Coalesced   int64 `json:"coalesced"`
	NegativeHit int64 `json:"negative_hits"`
	StaleServed int64 `json:"stale_served"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
}

// HitRate is hits over total lookups (0 when the service was never asked).
func (s ServiceStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats maps service name (hlr, whois, ctlog, dnsdb, avscan, shortener)
// to its scoreboard.
type Stats map[string]ServiceStats

// Stats snapshots every service's counters and live entry counts.
func (c *Cache) Stats() Stats {
	out := make(Stats, len(c.perService))
	for name, st := range c.perService {
		s := ServiceStats{
			Hits:        st.met.hits.Value(),
			Misses:      st.met.misses.Value(),
			Coalesced:   st.met.coalesced.Value(),
			NegativeHit: st.met.negatives.Value(),
			StaleServed: st.met.stale.Value(),
			Evictions:   st.met.evictions.Value(),
		}
		for _, l := range st.lens {
			s.Entries += l()
		}
		out[name] = s
	}
	return out
}

// Write renders stats as an aligned text table, services sorted by name.
func Write(w io.Writer, stats Stats) error {
	if _, err := fmt.Fprintf(w, "enrichment cache\n  %-10s %9s %9s %9s %9s %9s %9s %8s %7s\n",
		"service", "hits", "misses", "coalesced", "negative", "stale", "evicted", "entries", "hit%"); err != nil {
		return err
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := stats[name]
		if _, err := fmt.Fprintf(w, "  %-10s %9d %9d %9d %9d %9d %9d %8d %6.1f%%\n",
			name, s.Hits, s.Misses, s.Coalesced, s.NegativeHit, s.StaleServed,
			s.Evictions, s.Entries, 100*s.HitRate()); err != nil {
			return err
		}
	}
	return nil
}
