package forum

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/screenshot"
)

func testWorld(t testing.TB, n int) *corpus.World {
	t.Helper()
	return corpus.Generate(corpus.Config{Seed: 55, Messages: n})
}

func TestBuildFixturesRouting(t *testing.T) {
	w := testWorld(t, 3000)
	f := BuildFixtures(w)
	total := len(f.Twitter) + len(f.Reddit) + len(f.Smishtank) + len(f.SmishingEU) + len(f.Pastebin)
	noiseTotal := w.NoisePosts[corpus.ForumTwitter] + w.NoisePosts[corpus.ForumReddit]
	if total != len(w.Messages)+noiseTotal {
		t.Fatalf("fixtures total = %d, want %d + %d noise", total, len(w.Messages), noiseTotal)
	}
	if len(f.Twitter) < len(f.Reddit) {
		t.Error("twitter smaller than reddit; Table 1 says 92% vs 1%")
	}
	// Every twitter/reddit post body must match at least one keyword.
	for _, p := range append(append([]post{}, f.Twitter...), f.Reddit...) {
		low := strings.ToLower(p.Body)
		found := false
		for _, kw := range Keywords {
			if strings.Contains(low, kw) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("post %s matches no keyword: %q", p.ID, p.Body)
		}
	}
}

func TestTwitterServerAndCollector(t *testing.T) {
	w := testWorld(t, 1200)
	f := BuildFixtures(w)
	srv := httptest.NewServer(NewTwitterServer(f.Twitter, "bearer-token", 0).Handler())
	defer srv.Close()

	c := NewTwitterCollector(srv.URL, "bearer-token")
	c.PageSize = 50
	var reports []RawReport
	err := c.Collect(context.Background(), func(r RawReport) error {
		reports = append(reports, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(f.Twitter) {
		t.Fatalf("collected %d, fixtures %d", len(reports), len(f.Twitter))
	}
	withShots := 0
	for _, r := range reports {
		if r.HasAttachment() {
			withShots++
			if _, err := screenshot.Decode(r.Attachment); err != nil {
				t.Fatalf("attachment not decodable: %v", err)
			}
		}
	}
	if withShots == 0 {
		t.Error("no screenshots collected")
	}
}

func TestTwitterServerAuth(t *testing.T) {
	srv := httptest.NewServer(NewTwitterServer(nil, "secret", 0).Handler())
	defer srv.Close()
	c := NewTwitterCollector(srv.URL, "wrong")
	err := c.Collect(context.Background(), func(RawReport) error { return nil })
	if err == nil {
		t.Fatal("expected auth failure")
	}
}

func TestTwitterServerSurvivesRateLimit(t *testing.T) {
	w := testWorld(t, 400)
	f := BuildFixtures(w)
	// Tight rate limit: collector must retry and still finish.
	srv := httptest.NewServer(NewTwitterServer(f.Twitter, "", 200).Handler())
	defer srv.Close()
	c := NewTwitterCollector(srv.URL, "")
	c.API.MaxRetries = 8
	count := 0
	if err := c.Collect(context.Background(), func(RawReport) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != len(f.Twitter) {
		t.Errorf("collected %d of %d under rate limiting", count, len(f.Twitter))
	}
}

func TestRedditServerAndCollector(t *testing.T) {
	w := testWorld(t, 3000)
	f := BuildFixtures(w)
	if len(f.Reddit) == 0 {
		t.Skip("no reddit posts at this seed")
	}
	srv := httptest.NewServer(NewRedditServer(f.Reddit, 0).Handler())
	defer srv.Close()

	c := NewRedditCollector(srv.URL)
	c.PageSize = 7 // force pagination
	var reports []RawReport
	if err := c.Collect(context.Background(), func(r RawReport) error {
		reports = append(reports, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(f.Reddit) {
		t.Fatalf("collected %d, fixtures %d", len(reports), len(f.Reddit))
	}
}

func TestSmishtankServerAndCollector(t *testing.T) {
	w := testWorld(t, 3000)
	f := BuildFixtures(w)
	if len(f.Smishtank) == 0 {
		t.Skip("no smishtank posts at this seed")
	}
	srv := httptest.NewServer(NewSmishtankServer(f.Smishtank).Handler())
	defer srv.Close()

	var reports []RawReport
	if err := NewSmishtankCollector(srv.URL).Collect(context.Background(), func(r RawReport) error {
		reports = append(reports, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(f.Smishtank) {
		t.Fatalf("collected %d, fixtures %d", len(reports), len(f.Smishtank))
	}
	for _, r := range reports {
		if r.SMSText == "" || r.SenderID == "" {
			t.Fatalf("structured fields missing: %+v", r)
		}
	}
}

func TestSmishingEUServerAndCollector(t *testing.T) {
	w := testWorld(t, 6000)
	f := BuildFixtures(w)
	if len(f.SmishingEU) == 0 {
		t.Skip("no smishing.eu posts at this seed")
	}
	srv := httptest.NewServer(NewSmishingEUServer(f.SmishingEU).Handler())
	defer srv.Close()

	var reports []RawReport
	if err := NewSmishingEUCollector(srv.URL).Collect(context.Background(), func(r RawReport) error {
		reports = append(reports, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(f.SmishingEU) {
		t.Fatalf("scraped %d, fixtures %d", len(reports), len(f.SmishingEU))
	}
	for _, r := range reports {
		if r.Timestamp == "" {
			t.Fatal("date column lost")
		}
	}
}

func TestPastebinServerAndCollector(t *testing.T) {
	w := testWorld(t, 6000)
	f := BuildFixtures(w)
	if len(f.Pastebin) == 0 {
		t.Skip("no pastebin posts at this seed")
	}
	srv := httptest.NewServer(NewPastebinServer(f.Pastebin).Handler())
	defer srv.Close()

	var reports []RawReport
	if err := NewPastebinCollector(srv.URL).Collect(context.Background(), func(r RawReport) error {
		reports = append(reports, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(f.Pastebin) {
		t.Fatalf("parsed %d, fixtures %d", len(reports), len(f.Pastebin))
	}
}

func TestCollectAllEndToEnd(t *testing.T) {
	w := testWorld(t, 2500)
	f := BuildFixtures(w)

	tw := httptest.NewServer(NewTwitterServer(f.Twitter, "b", 0).Handler())
	defer tw.Close()
	rd := httptest.NewServer(NewRedditServer(f.Reddit, 0).Handler())
	defer rd.Close()
	st := httptest.NewServer(NewSmishtankServer(f.Smishtank).Handler())
	defer st.Close()
	se := httptest.NewServer(NewSmishingEUServer(f.SmishingEU).Handler())
	defer se.Close()
	pb := httptest.NewServer(NewPastebinServer(f.Pastebin).Handler())
	defer pb.Close()

	collectors := []Collector{
		NewTwitterCollector(tw.URL, "b"),
		NewRedditCollector(rd.URL),
		NewSmishtankCollector(st.URL),
		NewSmishingEUCollector(se.URL),
		NewPastebinCollector(pb.URL),
	}
	reports, counts, err := CollectAll(context.Background(), collectors)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := len(f.Twitter) + len(f.Reddit) + len(f.Smishtank) + len(f.SmishingEU) + len(f.Pastebin)
	if len(reports) != wantTotal {
		t.Fatalf("collected %d, want %d (per-forum: %v)", len(reports), wantTotal, counts)
	}
	if counts[corpus.ForumTwitter] != len(f.Twitter) {
		t.Errorf("twitter count = %d, want %d", counts[corpus.ForumTwitter], len(f.Twitter))
	}
}

func TestCollectCancellation(t *testing.T) {
	w := testWorld(t, 800)
	f := BuildFixtures(w)
	srv := httptest.NewServer(NewTwitterServer(f.Twitter, "", 0).Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := NewTwitterCollector(srv.URL, "")
	n := 0
	err := c.Collect(ctx, func(RawReport) error {
		n++
		if n == 5 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Fatal("cancelled collection finished without error")
	}
}
