package detect

import (
	"math/rand"
	"sort"

	"github.com/smishkit/smishkit/internal/stats"
)

// Split shuffles docs deterministically and divides them into train/test
// with the given test fraction.
func Split(docs []Doc, testFrac float64, seed int64) (train, test []Doc) {
	shuffled := make([]Doc, len(docs))
	copy(shuffled, docs)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cut := int(float64(len(shuffled)) * (1 - testFrac))
	if cut <= 0 || cut >= len(shuffled) {
		return shuffled, nil
	}
	return shuffled[:cut], shuffled[cut:]
}

// Evaluation summarizes held-out performance.
type Evaluation struct {
	N         int
	Accuracy  float64
	MacroF1   float64
	PerLabel  map[string]LabelMetrics
	Confusion *stats.CrossTab // rows: truth, cols: prediction
}

// LabelMetrics holds one class's precision/recall/F1.
type LabelMetrics struct {
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// Evaluate scores a model on held-out docs.
func Evaluate(m *Model, test []Doc) (Evaluation, error) {
	ev := Evaluation{Confusion: stats.NewCrossTab(), PerLabel: map[string]LabelMetrics{}}
	correct := 0
	tp := map[string]int{}
	fp := map[string]int{}
	fn := map[string]int{}
	support := map[string]int{}
	for _, d := range test {
		pred, _, err := m.Predict(d.Text)
		if err != nil {
			return ev, err
		}
		ev.N++
		ev.Confusion.Add(d.Label, pred)
		support[d.Label]++
		if pred == d.Label {
			correct++
			tp[d.Label]++
		} else {
			fp[pred]++
			fn[d.Label]++
		}
	}
	if ev.N == 0 {
		return ev, ErrNoTraining
	}
	ev.Accuracy = float64(correct) / float64(ev.N)

	labels := make([]string, 0, len(support))
	for l := range support {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var f1Sum float64
	for _, l := range labels {
		prec := safeDiv(tp[l], tp[l]+fp[l])
		rec := safeDiv(tp[l], tp[l]+fn[l])
		f1 := 0.0
		if prec+rec > 0 {
			f1 = 2 * prec * rec / (prec + rec)
		}
		ev.PerLabel[l] = LabelMetrics{Precision: prec, Recall: rec, F1: f1, Support: support[l]}
		f1Sum += f1
	}
	ev.MacroF1 = f1Sum / float64(len(labels))
	return ev, nil
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// SplitByGroup divides docs into train/test with whole groups (e.g.
// campaigns) kept on one side, preventing template leakage between splits —
// the honest protocol for campaign-generated corpora.
func SplitByGroup(docs []Doc, groups []string, testFrac float64, seed int64) (train, test []Doc) {
	distinct := make([]string, 0)
	seen := map[string]bool{}
	for _, g := range groups {
		if !seen[g] {
			seen[g] = true
			distinct = append(distinct, g)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(distinct), func(i, j int) { distinct[i], distinct[j] = distinct[j], distinct[i] })
	cut := int(float64(len(distinct)) * (1 - testFrac))
	trainGroups := map[string]bool{}
	for _, g := range distinct[:cut] {
		trainGroups[g] = true
	}
	for i, d := range docs {
		if i < len(groups) && trainGroups[groups[i]] {
			train = append(train, d)
		} else {
			test = append(test, d)
		}
	}
	return train, test
}
