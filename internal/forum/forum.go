// Package forum implements the paper's data-collection layer (§3.1): five
// online forums where users report smishing, each speaking its own wire
// format — Twitter's v2 search API with pagination tokens and media
// includes, Reddit's listing JSON, smishing.eu's HTML report tables,
// Pastebin's raw pastes, and Smishtank's submission API — plus one
// collector per forum that paginates, retries, rate-limit-backs-off, and
// normalizes everything into RawReports.
package forum

import (
	"time"

	"github.com/smishkit/smishkit/internal/corpus"
)

// Keywords are the four search terms the paper found most productive
// (§3.1.1). Forum servers index posts under these.
var Keywords = []string{"smishing", "phishing sms", "sms scam", "sms fraud"}

// RawReport is the normalized unit of collection: one user post that may
// contain a screenshot attachment and/or structured text fields.
type RawReport struct {
	Forum    corpus.Forum
	PostID   string
	PostedAt time.Time
	// Body is the post's own text (user commentary; may embed the SMS).
	Body string
	// Attachment is the raw screenshot bytes ("" length 0 when absent).
	Attachment []byte
	// Structured fields for forums whose reports are forms rather than
	// images (smishing.eu, Pastebin, Smishtank text reports).
	SMSText   string
	SenderID  string
	Timestamp string // as reported, needs parsing
	Brand     string // smishing.eu asks reporters for the impersonated brand
	Country   string
}

// HasAttachment reports whether the post carries an image.
func (r RawReport) HasAttachment() bool { return len(r.Attachment) > 0 }

// post is the internal seeded representation shared by all forum servers.
type post struct {
	ID         string
	CreatedAt  time.Time
	Body       string
	Attachment []byte
	SMSText    string
	SenderID   string
	Timestamp  string
	Brand      string
	Country    string
	Subreddit  string // reddit only
	IsNoise    bool   // awareness/chatter, not a genuine report
}
