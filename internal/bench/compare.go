package bench

import "fmt"

// DefaultMaxRegressionPct is the allowed baseline-vs-latest drift before
// the CI gate fails, overridable via BENCH_MAX_REGRESSION_PCT.
const DefaultMaxRegressionPct = 5.0

// Regression is one metric that moved past the allowed drift.
type Regression struct {
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Latest   float64 `json:"latest"`
	// DeltaPct is the relative change in the "worse" direction, percent.
	DeltaPct float64 `json:"delta_pct"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: baseline %.3f -> latest %.3f (%+.1f%% worse, limit %s)",
		r.Metric, r.Baseline, r.Latest, r.DeltaPct, "BENCH_MAX_REGRESSION_PCT")
}

// compareMetric describes how one summary field regresses. For a
// zero-valued baseline a relative comparison is meaningless, so each
// metric carries an absolute floor the latest value must cross before it
// counts as a regression at all.
type compareMetric struct {
	name string
	get  func(Summary) float64
	// higherWorse: latest > baseline is the bad direction (latencies,
	// backlogs). When false, latest < baseline is bad (throughput).
	higherWorse bool
	// zeroFloor is the absolute value latest must exceed (higherWorse) for
	// a zero baseline to register; lower-is-worse metrics with a zero
	// baseline are skipped outright (a baseline that measured no
	// throughput can't anchor a throughput regression).
	zeroFloor float64
}

var compareMetrics = []compareMetric{
	{"projection_backlog_p95_seconds", func(s Summary) float64 { return s.ProjectionBacklogP95Seconds }, true, 1.0},
	{"projection_backlog_p99_seconds", func(s Summary) float64 { return s.ProjectionBacklogP99Seconds }, true, 1.0},
	{"round_p95_ms", func(s Summary) float64 { return s.RoundP95Ms }, true, 50},
	{"enrich_p95_ms_max", func(s Summary) float64 { return s.EnrichP95MsMax }, true, 50},
	{"reports_per_sec_avg", func(s Summary) float64 { return s.ReportsPerSecAvg }, false, 0},
}

// Compare reports every metric where latest is worse than baseline by
// strictly more than maxRegressionPct percent. A drift of exactly
// maxRegressionPct passes — the env knob names the worst tolerated
// value, not the first rejected one. Pass maxRegressionPct < 0 to use
// DefaultMaxRegressionPct.
func Compare(baseline, latest Summary, maxRegressionPct float64) []Regression {
	if maxRegressionPct < 0 {
		maxRegressionPct = DefaultMaxRegressionPct
	}
	var out []Regression
	for _, m := range compareMetrics {
		b, l := m.get(baseline), m.get(latest)
		if m.higherWorse {
			if b == 0 {
				if l > m.zeroFloor {
					out = append(out, Regression{m.name, b, l, 100})
				}
				continue
			}
			delta := (l - b) / b * 100
			if delta > maxRegressionPct {
				out = append(out, Regression{m.name, b, l, delta})
			}
		} else {
			if b == 0 {
				continue
			}
			delta := (b - l) / b * 100
			if delta > maxRegressionPct {
				out = append(out, Regression{m.name, b, l, delta})
			}
		}
	}
	return out
}
