// Package recordlog makes the enriched dataset durable. The service daemon
// loses every in-memory structure on exit; cursors (internal/checkpoint)
// already let a restarted daemon resume *collection* without duplicates,
// but the enriched records themselves had to be rebuilt by re-enriching
// the world. This package closes that gap with an append-only record log
// plus periodic snapshots:
//
//   - Every committed round appends one length-prefixed, CRC-framed batch
//     of enriched records to records.log, fsynced before the round's
//     cursors are saved. A crash between the append and the cursor save
//     therefore re-collects (and re-enriches) at most one round — and the
//     log deduplicates the re-appended records by ID, so the dataset never
//     double-counts.
//   - Injected load waves (core.InjectSpec) are journaled in the same log.
//     A restarted process replays them into its freshly booted simulation,
//     so the forum servers regain the injected posts the durable cursors
//     already point past.
//   - Periodic snapshots (snapshot.json, atomic rename + dir sync) bound
//     restart cost: open loads the snapshot and replays only the log tail
//     appended after it. When the log outgrows CompactThreshold the log is
//     snapshotted and truncated — restart cost stays one snapshot + tail
//     no matter how long the daemon has been running.
//
// Frame format, little-endian:
//
//	[1 byte kind][4 byte payload length][4 byte IEEE CRC32 of payload][payload]
//
// Payloads are JSON. Batch frames carry the round's *fresh* records plus
// the cumulative curation totals after the frame, so replaying a log with
// duplicated frames (the crash window above) still reconstructs exact
// totals: records dedup by ID, totals are absolute, and frames covered by
// the snapshot are skipped by sequence number.
//
// On open, a torn final frame (the write the crash interrupted) is
// truncated away and counted in recordlog.truncated_tail; a frame whose
// CRC does not match its payload is rejected — it and everything after it
// are truncated, counted in recordlog.corrupt_frames — because nothing
// beyond a corrupt frame can be trusted.
package recordlog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Config tunes the durable record log (the facade's Options.Durability).
type Config struct {
	// Dir holds records.log and snapshot.json; created if missing.
	Dir string
	// SnapshotInterval is how often an append also refreshes the snapshot
	// (default 30s). Snapshots bound the tail a restart must replay.
	SnapshotInterval time.Duration
	// CompactThreshold is the log size in bytes that triggers compaction:
	// snapshot everything, then truncate the log (default 8 MiB).
	CompactThreshold int64
}

func (c Config) withDefaults() Config {
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.CompactThreshold == 0 {
		c.CompactThreshold = 8 << 20
	}
	return c
}

// Stats is the log's scoreboard, mirrored into the telemetry registry
// under "recordlog.*".
type Stats struct {
	// Appends counts frames written (record batches plus inject journal
	// entries) since open.
	Appends int64 `json:"appends"`
	// Replayed counts records restored on open (snapshot + log tail).
	Replayed int64 `json:"replayed"`
	// Deduped counts appended records dropped because their ID was already
	// in the log — the crash-window double-count protection firing.
	Deduped int64 `json:"deduped"`
	// Snapshots counts snapshot files written since open.
	Snapshots int64 `json:"snapshots"`
	// Compactions counts snapshot-plus-truncate cycles since open.
	Compactions int64 `json:"compactions"`
	// TruncatedTail counts torn final frames discarded on open (0 or 1).
	TruncatedTail int64 `json:"truncated_tail"`
	// CorruptFrames counts CRC-mismatched or undecodable frames rejected
	// on open.
	CorruptFrames int64 `json:"corrupt_frames"`
	// Records is the dataset size the log currently holds.
	Records int `json:"records"`
	// Injects is the journaled injection count (replayed + new).
	Injects int `json:"injects"`
	// LogBytes is the live log file size; SnapshotBytes the last written
	// snapshot's size (0 before the first snapshot).
	LogBytes      int64 `json:"log_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// LastSnapshot is when the newest snapshot was written (zero when the
	// directory has none).
	LastSnapshot time.Time `json:"last_snapshot"`
}

// Frame kinds.
const (
	kindBatch  = 1 // one committed round's fresh records + cumulative totals
	kindInject = 2 // one journaled core.InjectSpec
)

const (
	logName      = "records.log"
	snapshotName = "snapshot.json"
	frameHeader  = 1 + 4 + 4 // kind + length + crc
	// maxFrame bounds a single frame payload; anything larger in a header
	// is corruption, not data (the largest real batch is a few MiB).
	maxFrame = 256 << 20
)

// totals is the cumulative curation bookkeeping after a frame. Values are
// absolute, not deltas, so re-applied frames cannot inflate them.
type totals struct {
	PostsByForum   map[corpus.Forum]int `json:"posts_by_forum,omitempty"`
	ImagesByForum  map[corpus.Forum]int `json:"images_by_forum,omitempty"`
	DecoysRejected int                  `json:"decoys_rejected"`
	EmptyDropped   int                  `json:"empty_dropped"`
}

func (t totals) clone() totals {
	out := t
	out.PostsByForum = cloneForumMap(t.PostsByForum)
	out.ImagesByForum = cloneForumMap(t.ImagesByForum)
	return out
}

func cloneForumMap(m map[corpus.Forum]int) map[corpus.Forum]int {
	out := make(map[corpus.Forum]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// batchFrame is the payload of a kindBatch frame.
type batchFrame struct {
	Seq         uint64        `json:"seq"`
	CommittedAt time.Time     `json:"committed_at"`
	Records     []core.Record `json:"records"`
	Totals      totals        `json:"totals"`
}

// injectFrame is the payload of a kindInject frame.
type injectFrame struct {
	Seq  uint64          `json:"seq"`
	At   time.Time       `json:"at"`
	Spec core.InjectSpec `json:"spec"`
}

// snapshot is the full durable state as of frame Seq; frames with lower or
// equal sequence numbers are skipped during tail replay.
type snapshot struct {
	Seq     uint64            `json:"seq"`
	SavedAt time.Time         `json:"saved_at"`
	Injects []core.InjectSpec `json:"injects,omitempty"`
	Records []core.Record     `json:"records"`
	Totals  totals            `json:"totals"`
}

// counters bundles the telemetry instruments the log maintains.
type counters struct {
	appends, replayed, deduped, snapshots, compactions *telemetry.Counter
	truncatedTail, corruptFrames                       *telemetry.Counter
	logBytes                                           *telemetry.Gauge
}

func newCounters(reg *telemetry.Registry) counters {
	return counters{
		appends:       reg.Counter("recordlog.appends"),
		replayed:      reg.Counter("recordlog.replayed"),
		deduped:       reg.Counter("recordlog.deduped"),
		snapshots:     reg.Counter("recordlog.snapshots"),
		compactions:   reg.Counter("recordlog.compactions"),
		truncatedTail: reg.Counter("recordlog.truncated_tail"),
		corruptFrames: reg.Counter("recordlog.corrupt_frames"),
		logBytes:      reg.Gauge("recordlog.log_bytes"),
	}
}

// Log is the durable record log: single-writer, safe for concurrent use.
type Log struct {
	cfg Config
	ctr counters

	mu       sync.Mutex
	f        *os.File
	size     int64
	seq      uint64
	seen     map[string]struct{}
	records  []core.Record
	totals   totals
	injects  []core.InjectSpec
	lastSnap time.Time
	stats    Stats
	closed   bool
	closeErr error
}

// Open opens (creating if needed) the log directory, loads the newest
// snapshot, and replays the log tail: torn final frames are truncated,
// corrupt frames rejected (with everything after them), records deduped by
// ID, and totals taken from the last valid frame. reg may be nil (metrics
// go to a private registry).
func Open(cfg Config, reg *telemetry.Registry) (*Log, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("recordlog: Config.Dir is empty")
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("recordlog: create dir: %w", err)
	}
	l := &Log{
		cfg:  cfg,
		ctr:  newCounters(reg),
		seen: make(map[string]struct{}),
		totals: totals{
			PostsByForum:  make(map[corpus.Forum]int),
			ImagesByForum: make(map[corpus.Forum]int),
		},
	}
	if err := l.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := l.openAndReplay(); err != nil {
		return nil, err
	}
	l.stats.Replayed = int64(len(l.records))
	l.ctr.replayed.Add(l.stats.Replayed)
	l.ctr.logBytes.Set(l.size)
	return l, nil
}

// loadSnapshot restores state from snapshot.json when present. A snapshot
// that cannot be decoded is an error: silently starting empty would let a
// later snapshot overwrite the only durable copy of the dataset.
func (l *Log) loadSnapshot() error {
	path := filepath.Join(l.cfg.Dir, snapshotName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("recordlog: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("recordlog: decode snapshot %s: %w", path, err)
	}
	l.seq = snap.Seq
	l.records = snap.Records
	l.injects = snap.Injects
	if snap.Totals.PostsByForum != nil || snap.Totals.ImagesByForum != nil ||
		snap.Totals.DecoysRejected != 0 || snap.Totals.EmptyDropped != 0 {
		l.totals = snap.Totals.clone()
		if l.totals.PostsByForum == nil {
			l.totals.PostsByForum = make(map[corpus.Forum]int)
		}
		if l.totals.ImagesByForum == nil {
			l.totals.ImagesByForum = make(map[corpus.Forum]int)
		}
	}
	for _, r := range snap.Records {
		l.seen[r.ID] = struct{}{}
	}
	l.lastSnap = snap.SavedAt
	l.stats.LastSnapshot = snap.SavedAt
	l.stats.SnapshotBytes = int64(len(data))
	return nil
}

// openAndReplay opens records.log, replays every frame past the snapshot,
// and truncates torn or corrupt tails so the file ends on a clean frame
// boundary ready for appends.
func (l *Log) openAndReplay() error {
	path := filepath.Join(l.cfg.Dir, logName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("recordlog: open log: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("recordlog: read log: %w", err)
	}

	snapSeq := l.seq
	var lastTotals *totals
	off := 0
	valid := 0 // bytes covered by fully valid frames
	for off < len(data) {
		if len(data)-off < frameHeader {
			l.stats.TruncatedTail++
			l.ctr.truncatedTail.Inc()
			break
		}
		kind := data[off]
		length := binary.LittleEndian.Uint32(data[off+1 : off+5])
		sum := binary.LittleEndian.Uint32(data[off+5 : off+9])
		if length > maxFrame {
			// A length this large is a scribbled header, not a frame.
			l.stats.CorruptFrames++
			l.ctr.corruptFrames.Inc()
			break
		}
		end := off + frameHeader + int(length)
		if end > len(data) {
			// The final append never completed: a torn tail, not corruption.
			l.stats.TruncatedTail++
			l.ctr.truncatedTail.Inc()
			break
		}
		payload := data[off+frameHeader : end]
		if crc32.ChecksumIEEE(payload) != sum {
			l.stats.CorruptFrames++
			l.ctr.corruptFrames.Inc()
			break
		}
		switch kind {
		case kindBatch:
			var fr batchFrame
			if err := json.Unmarshal(payload, &fr); err != nil {
				l.stats.CorruptFrames++
				l.ctr.corruptFrames.Inc()
				off = len(data) + 1 // force truncation at `valid`
				break
			}
			if fr.Seq > l.seq {
				l.seq = fr.Seq
			}
			if fr.Seq > snapSeq {
				for _, r := range fr.Records {
					if _, dup := l.seen[r.ID]; dup {
						continue
					}
					l.seen[r.ID] = struct{}{}
					l.records = append(l.records, r)
				}
				t := fr.Totals.clone()
				lastTotals = &t
			}
		case kindInject:
			var fr injectFrame
			if err := json.Unmarshal(payload, &fr); err != nil {
				l.stats.CorruptFrames++
				l.ctr.corruptFrames.Inc()
				off = len(data) + 1
				break
			}
			if fr.Seq > l.seq {
				l.seq = fr.Seq
			}
			if fr.Seq > snapSeq {
				l.injects = append(l.injects, fr.Spec)
			}
		default:
			l.stats.CorruptFrames++
			l.ctr.corruptFrames.Inc()
			off = len(data) + 1
		}
		if off > len(data) { // corrupt payload detected inside the switch
			break
		}
		off = end
		valid = end
	}
	if lastTotals != nil {
		l.totals = *lastTotals
		if l.totals.PostsByForum == nil {
			l.totals.PostsByForum = make(map[corpus.Forum]int)
		}
		if l.totals.ImagesByForum == nil {
			l.totals.ImagesByForum = make(map[corpus.Forum]int)
		}
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return fmt.Errorf("recordlog: truncate damaged tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("recordlog: sync truncated log: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("recordlog: seek log tail: %w", err)
	}
	l.f = f
	l.size = int64(valid)
	return nil
}

// Append logs one committed round. Records whose ID the log already holds
// are dropped (and counted in recordlog.deduped) — the protection that
// makes a crash between a log append and the round's cursor save safe to
// replay. The returned dataset holds only the fresh records (plus the
// batch's curation bookkeeping) and is what the caller should feed to the
// live projection; it is empty when the whole batch was a replay, in which
// case nothing is written.
func (l *Log) Append(ds *core.Dataset, at time.Time) (*core.Dataset, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, errors.New("recordlog: log closed")
	}
	fresh := &core.Dataset{
		PostsByForum:  cloneForumMap(ds.PostsByForum),
		ImagesByForum: cloneForumMap(ds.ImagesByForum),
	}
	for _, r := range ds.Records {
		if _, dup := l.seen[r.ID]; dup {
			l.stats.Deduped++
			l.ctr.deduped.Inc()
			continue
		}
		fresh.Records = append(fresh.Records, r)
	}
	if len(ds.Records) > 0 && len(fresh.Records) == 0 {
		// Every record was already logged: this is a re-collected round from
		// the crash window (appended, cursors never saved). Its bookkeeping
		// was counted when the records first landed, so drop it whole.
		return &core.Dataset{
			PostsByForum:  make(map[corpus.Forum]int),
			ImagesByForum: make(map[corpus.Forum]int),
		}, nil
	}
	fresh.DecoysRejected = ds.DecoysRejected
	fresh.EmptyDropped = ds.EmptyDropped
	if len(fresh.Records) == 0 && datasetEmpty(fresh) {
		return fresh, nil // nothing worth a frame
	}

	for f, n := range ds.PostsByForum {
		l.totals.PostsByForum[f] += n
	}
	for f, n := range ds.ImagesByForum {
		l.totals.ImagesByForum[f] += n
	}
	l.totals.DecoysRejected += ds.DecoysRejected
	l.totals.EmptyDropped += ds.EmptyDropped

	frame := batchFrame{
		Seq:         l.seq + 1,
		CommittedAt: at,
		Records:     fresh.Records,
		Totals:      l.totals,
	}
	payload, err := json.Marshal(frame)
	if err != nil {
		return nil, fmt.Errorf("recordlog: encode batch: %w", err)
	}
	if err := l.writeFrameLocked(kindBatch, payload); err != nil {
		return nil, err
	}
	l.seq = frame.Seq
	for _, r := range fresh.Records {
		l.seen[r.ID] = struct{}{}
	}
	l.records = append(l.records, fresh.Records...)
	if err := l.maybeSnapshotLocked(at); err != nil {
		return nil, err
	}
	return fresh, nil
}

// AppendInject journals one injection so a restarted process can replay it
// into its fresh simulation — without it, durable cursors would point past
// posts the rebooted forum servers never heard of.
func (l *Log) AppendInject(spec core.InjectSpec, at time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("recordlog: log closed")
	}
	frame := injectFrame{Seq: l.seq + 1, At: at, Spec: spec}
	payload, err := json.Marshal(frame)
	if err != nil {
		return fmt.Errorf("recordlog: encode inject: %w", err)
	}
	if err := l.writeFrameLocked(kindInject, payload); err != nil {
		return err
	}
	l.seq = frame.Seq
	l.injects = append(l.injects, spec)
	return nil
}

// writeFrameLocked frames, writes, and fsyncs one payload.
func (l *Log) writeFrameLocked(kind byte, payload []byte) error {
	var hdr [frameHeader]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("recordlog: write frame header: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("recordlog: write frame payload: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("recordlog: sync log: %w", err)
	}
	l.size += int64(frameHeader + len(payload))
	l.stats.Appends++
	l.ctr.appends.Inc()
	l.ctr.logBytes.Set(l.size)
	return nil
}

// maybeSnapshotLocked refreshes the snapshot on the configured interval
// and compacts (snapshot + truncate) when the log crosses the threshold.
func (l *Log) maybeSnapshotLocked(now time.Time) error {
	if l.size >= l.cfg.CompactThreshold {
		return l.compactLocked(now)
	}
	if l.cfg.SnapshotInterval > 0 && now.Sub(l.lastSnap) >= l.cfg.SnapshotInterval {
		return l.snapshotLocked(now)
	}
	return nil
}

// snapshotLocked writes the full state as snapshot.json via temp file +
// fsync + atomic rename + directory sync, so a crash at any point leaves
// either the old snapshot or the new one, never a torn mix.
func (l *Log) snapshotLocked(now time.Time) error {
	snap := snapshot{
		Seq:     l.seq,
		SavedAt: now.UTC(),
		Injects: l.injects,
		Records: l.records,
		Totals:  l.totals,
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("recordlog: encode snapshot: %w", err)
	}
	final := filepath.Join(l.cfg.Dir, snapshotName)
	tmp, err := os.CreateTemp(l.cfg.Dir, ".snapshot.tmp-*")
	if err != nil {
		return fmt.Errorf("recordlog: snapshot temp file: %w", err)
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("recordlog: write snapshot: %w", errors.Join(werr, serr, cerr))
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("recordlog: commit snapshot: %w", err)
	}
	if err := syncDir(l.cfg.Dir); err != nil {
		return fmt.Errorf("recordlog: sync snapshot dir: %w", err)
	}
	l.lastSnap = now
	l.stats.Snapshots++
	l.stats.LastSnapshot = snap.SavedAt
	l.stats.SnapshotBytes = int64(len(data))
	l.ctr.snapshots.Inc()
	return nil
}

// compactLocked snapshots then truncates the log. The snapshot lands
// durably first, so a crash between the two steps merely leaves frames the
// next open skips by sequence number.
func (l *Log) compactLocked(now time.Time) error {
	if err := l.snapshotLocked(now); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("recordlog: compact truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("recordlog: compact seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("recordlog: compact sync: %w", err)
	}
	l.size = 0
	l.stats.Compactions++
	l.ctr.compactions.Inc()
	l.ctr.logBytes.Set(0)
	return nil
}

// Snapshot forces a snapshot now, regardless of interval or size.
func (l *Log) Snapshot() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("recordlog: log closed")
	}
	return l.snapshotLocked(time.Now())
}

// Dataset returns a copy of the full durable dataset (replayed + appended
// this run) — what a restarted daemon seeds its projection from.
func (l *Log) Dataset() *core.Dataset {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := &core.Dataset{
		Records:        make([]core.Record, len(l.records)),
		PostsByForum:   cloneForumMap(l.totals.PostsByForum),
		ImagesByForum:  cloneForumMap(l.totals.ImagesByForum),
		DecoysRejected: l.totals.DecoysRejected,
		EmptyDropped:   l.totals.EmptyDropped,
	}
	copy(out.Records, l.records)
	return out
}

// Injects returns the journaled injection specs in append order.
func (l *Log) Injects() []core.InjectSpec {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]core.InjectSpec, len(l.injects))
	copy(out, l.injects)
	return out
}

// Stats returns the log scoreboard.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Records = len(l.records)
	st.Injects = len(l.injects)
	st.LogBytes = l.size
	return st
}

// Close snapshots once more (so the next open replays an empty tail) and
// closes the file. Idempotent: the first call does the work, every call
// reports its error.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.closeErr
	}
	l.closed = true
	var errs []error
	if l.stats.Appends > 0 {
		if err := l.snapshotLocked(time.Now()); err != nil {
			errs = append(errs, err)
		}
	}
	if err := l.f.Close(); err != nil {
		errs = append(errs, fmt.Errorf("recordlog: close log: %w", err))
	}
	l.closeErr = errors.Join(errs...)
	return l.closeErr
}

// datasetEmpty reports whether a dataset carries nothing durable.
func datasetEmpty(ds *core.Dataset) bool {
	if len(ds.Records) > 0 || ds.DecoysRejected != 0 || ds.EmptyDropped != 0 {
		return false
	}
	for _, n := range ds.PostsByForum {
		if n != 0 {
			return false
		}
	}
	for _, n := range ds.ImagesByForum {
		if n != 0 {
			return false
		}
	}
	return true
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	return errors.Join(serr, cerr)
}

// Write renders a Stats snapshot as aligned human-readable text — the
// SectionDurability renderer.
func Write(w io.Writer, st Stats) error {
	if _, err := fmt.Fprintf(w, "recordlog\n  records=%d injects=%d log=%dB snapshot=%dB\n",
		st.Records, st.Injects, st.LogBytes, st.SnapshotBytes); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  appends=%d replayed=%d deduped=%d snapshots=%d compactions=%d\n",
		st.Appends, st.Replayed, st.Deduped, st.Snapshots, st.Compactions); err != nil {
		return err
	}
	if st.TruncatedTail > 0 || st.CorruptFrames > 0 {
		if _, err := fmt.Fprintf(w, "  damage: truncated_tail=%d corrupt_frames=%d\n",
			st.TruncatedTail, st.CorruptFrames); err != nil {
			return err
		}
	}
	if !st.LastSnapshot.IsZero() {
		if _, err := fmt.Fprintf(w, "  last_snapshot=%s\n", st.LastSnapshot.Format(time.RFC3339)); err != nil {
			return err
		}
	}
	return nil
}
