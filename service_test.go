package smishkit

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// recFingerprint identifies a record by content. Pastebin paste grouping
// (and thus PostIDs) legitimately differs between a one-shot seed and a
// waved seed, so identity comparisons across run shapes key off content.
func recFingerprint(r Record) string {
	return fmt.Sprintf("%s|%v|%s|%s|%s", r.Forum, r.FromImage, r.Text, r.SenderRaw, r.ShownURL)
}

func recMultiset(ds *Dataset) map[string]int {
	out := make(map[string]int, len(ds.Records))
	for _, r := range ds.Records {
		out[recFingerprint(r)]++
	}
	return out
}

func diffMultisets(t *testing.T, label string, got, want map[string]int) {
	t.Helper()
	for fp, n := range want {
		if got[fp] != n {
			t.Fatalf("%s: record %.80q count %d, want %d", label, fp, got[fp], n)
		}
	}
	for fp, n := range got {
		if want[fp] == 0 {
			t.Fatalf("%s: unexpected record %.80q (count %d)", label, fp, n)
		}
	}
}

// TestServiceSoak runs the daemon for several rounds against a live world
// (fixture waves released while it polls) and pins the tentpole's
// acceptance criteria: the projection ends caught up (backlog ~0), the
// status endpoint serves the gauges, and the incrementally-maintained
// dataset matches a one-shot batch run of the same seed.
func TestServiceSoak(t *testing.T) {
	ctx := context.Background()
	seed, msgs := int64(29), 500

	// Reference: the classic batch study over the same world.
	batchStudy, err := NewStudy(Options{Seed: seed, Messages: msgs})
	if err != nil {
		t.Fatal(err)
	}
	defer batchStudy.Close()
	want, err := batchStudy.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var statusChecked atomic.Bool
	var study *Study
	opts := Options{
		Seed:     seed,
		Messages: msgs,
		Pipeline: PipelineOptions{Streaming: true},
		Service: &ServiceConfig{
			PollInterval: 10 * time.Millisecond,
			MaxRounds:    3,
			LiveWaves:    2,
			OnRound: func(info RoundInfo) {
				if info.Err != nil {
					t.Errorf("round %d: %v", info.Round, info.Err)
				}
				if statusChecked.Load() {
					return
				}
				statusChecked.Store(true)
				// The status endpoint must be live while the daemon runs.
				var st ServiceStats
				resp, err := http.Get(study.StatusURL() + "/status")
				if err != nil {
					t.Errorf("status endpoint: %v", err)
					return
				}
				defer resp.Body.Close()
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Errorf("status decode: %v", err)
					return
				}
				if st.Rounds < 1 || len(st.Cursors) == 0 {
					t.Errorf("status stats = %+v, want >=1 round and cursors", st)
				}
				// /debug/telemetry rides alongside and exposes the new
				// gauges' names.
				tresp, err := http.Get(study.StatusURL() + "/debug/telemetry")
				if err != nil {
					t.Errorf("telemetry endpoint: %v", err)
					return
				}
				defer tresp.Body.Close()
				var buf bytes.Buffer
				if _, err := buf.ReadFrom(tresp.Body); err != nil {
					t.Errorf("telemetry read: %v", err)
					return
				}
				body := buf.String()
				for _, name := range []string{"projection.backlog_seconds", "collect.cursor_lag.twitter"} {
					if !strings.Contains(body, name) {
						t.Errorf("telemetry snapshot missing %q", name)
					}
				}
			},
		},
	}
	study, err = NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	got, err := study.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !statusChecked.Load() {
		t.Error("OnRound never fired")
	}

	// The daemon observed all three waves of the same world, so its
	// projection must hold exactly the batch run's records.
	diffMultisets(t, "serve vs batch", recMultiset(got), recMultiset(want))
	if got.DecoysRejected != want.DecoysRejected || got.EmptyDropped != want.EmptyDropped {
		t.Fatalf("curation bookkeeping diverged: serve %d/%d batch %d/%d",
			got.DecoysRejected, got.EmptyDropped, want.DecoysRejected, want.EmptyDropped)
	}
	for f, n := range want.PostsByForum {
		if got.PostsByForum[f] != n {
			t.Fatalf("forum %s: serve saw %d posts, batch %d", f, got.PostsByForum[f], n)
		}
	}

	// After the graceful drain the projection is caught up.
	st := study.Stats()
	if st.Service == nil {
		t.Fatal("Stats().Service nil after Serve")
	}
	if st.Service.BacklogSeconds > 1 {
		t.Fatalf("projection backlog %.1fs after drain, want ~0", st.Service.BacklogSeconds)
	}
	if st.Service.PendingBatches != 0 {
		t.Fatalf("%d batches still pending after drain", st.Service.PendingBatches)
	}
	if g := st.Telemetry.Gauges["projection.backlog_seconds"]; g != 0 {
		t.Fatalf("backlog gauge = %d after drain, want 0", g)
	}
	if st.Service.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", st.Service.Rounds)
	}

	// WriteStats renders the service section.
	var out bytes.Buffer
	if err := WriteStats(&out, st, SectionService); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rounds=3") {
		t.Fatalf("WriteStats service section missing rounds: %q", out.String())
	}
}

// TestServeKillResume cancels a daemon mid-run, restarts it from the same
// persisted checkpoint store, and asserts the two runs together produce
// exactly the record set of an uninterrupted daemon — nothing duplicated,
// nothing dropped.
func TestServeKillResume(t *testing.T) {
	seed, msgs := int64(31), 400
	mkOpts := func(store CheckpointStore, onRound func(RoundInfo)) Options {
		return Options{
			Seed:     seed,
			Messages: msgs,
			Pipeline: PipelineOptions{Streaming: true},
			Service: &ServiceConfig{
				PollInterval: 10 * time.Millisecond,
				MaxRounds:    3,
				LiveWaves:    2,
				Checkpoints:  store,
				OnRound:      onRound,
			},
		}
	}

	// Uninterrupted reference daemon.
	ref, err := NewStudy(mkOpts(NewMemCheckpoints(), nil))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Records) == 0 {
		t.Fatal("reference run produced no records")
	}

	// Interrupted daemon: kill after round 2 (initial backlog + wave 1
	// committed), resume from the surviving file-store cursors.
	store, err := NewFileCheckpoints(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx1, kill := context.WithCancel(context.Background())
	defer kill()
	var killed atomic.Bool
	study, err := NewStudy(mkOpts(store, func(info RoundInfo) {
		if info.Round == 2 && !killed.Swap(true) {
			kill()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	first, err := study.Serve(ctx1)
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Load() {
		t.Fatal("daemon completed before the kill fired")
	}
	if len(first.Records) == 0 {
		t.Fatal("killed run committed nothing; kill landed before any round")
	}

	// Resume: same study, same store, fresh context. The remaining wave is
	// still pending inside the simulation.
	second, err := study.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	union := recMultiset(first)
	for fp, n := range recMultiset(second) {
		union[fp] += n
	}
	diffMultisets(t, "killed+resumed vs uninterrupted", union, recMultiset(want))
}

// TestServeRestartNewStudy models a process restart: a brand-new Study
// (fresh simulation from the same seed) pointed at the cursors a completed
// daemon left behind must re-collect nothing — including when the dead
// daemon's LiveWaves would otherwise re-stage already-consumed fixtures.
func TestServeRestartNewStudy(t *testing.T) {
	seed, msgs := int64(37), 300
	store, err := NewFileCheckpoints(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mkOpts := func() Options {
		return Options{
			Seed:     seed,
			Messages: msgs,
			Pipeline: PipelineOptions{Streaming: true},
			Service: &ServiceConfig{
				PollInterval: 10 * time.Millisecond,
				MaxRounds:    3,
				LiveWaves:    2,
				Checkpoints:  store,
			},
		}
	}

	first, err := NewStudy(mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	ds, err := first.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("first daemon produced no records")
	}

	restarted, err := NewStudy(mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	var recollected atomic.Int64
	restarted.opts.Service.OnRound = func(info RoundInfo) {
		recollected.Add(int64(info.NewReports))
	}
	ds2, err := restarted.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n := recollected.Load(); n != 0 {
		t.Fatalf("restarted daemon re-collected %d reports, want 0", n)
	}
	if len(ds2.Records) != 0 {
		t.Fatalf("restarted daemon projected %d records, want 0", len(ds2.Records))
	}
}

// TestOptionsValidate pins the descriptive rejections.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error ("" = valid)
	}{
		{"zero value", Options{}, ""},
		{"negative messages", Options{Messages: -1}, "Messages"},
		{"negative step workers", Options{Pipeline: PipelineOptions{StepWorkers: -2}}, "StepWorkers"},
		{"negative stream buffer", Options{Pipeline: PipelineOptions{Streaming: true, StreamBuffer: -1}}, "StreamBuffer"},
		{"buffer without streaming", Options{Pipeline: PipelineOptions{StreamBuffer: 8}}, "Streaming is off"},
		{"service without streaming", Options{Service: &ServiceConfig{}}, "streaming pipeline"},
		{"negative poll interval", Options{
			Pipeline: PipelineOptions{Streaming: true},
			Service:  &ServiceConfig{PollInterval: -time.Second},
		}, "PollInterval"},
		{"bad initial share", Options{
			Pipeline: PipelineOptions{Streaming: true},
			Service:  &ServiceConfig{InitialShare: 1.5},
		}, "InitialShare"},
		{"valid service", Options{
			Pipeline: PipelineOptions{Streaming: true},
			Service:  &ServiceConfig{LiveWaves: 2},
		}, ""},
		{"durability without service", Options{
			Pipeline:   PipelineOptions{Streaming: true},
			Durability: &DurabilityConfig{Dir: "/tmp/x"},
		}, "Options.Service is nil"},
		{"durability without dir", Options{
			Pipeline:   PipelineOptions{Streaming: true},
			Service:    &ServiceConfig{},
			Durability: &DurabilityConfig{},
		}, "Durability.Dir"},
		{"negative snapshot interval", Options{
			Pipeline:   PipelineOptions{Streaming: true},
			Service:    &ServiceConfig{},
			Durability: &DurabilityConfig{Dir: "/tmp/x", SnapshotInterval: -time.Second},
		}, "SnapshotInterval"},
		{"negative compact threshold", Options{
			Pipeline:   PipelineOptions{Streaming: true},
			Service:    &ServiceConfig{},
			Durability: &DurabilityConfig{Dir: "/tmp/x", CompactThreshold: -1},
		}, "CompactThreshold"},
		{"valid durability", Options{
			Pipeline:   PipelineOptions{Streaming: true},
			Service:    &ServiceConfig{},
			Durability: &DurabilityConfig{Dir: "/tmp/x"},
		}, ""},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// NewStudy surfaces the same rejection without leaking sockets.
	if _, err := NewStudy(Options{Messages: -5}); err == nil {
		t.Fatal("NewStudy accepted negative Messages")
	}
	if _, err := NewStudy(Options{Service: &ServiceConfig{}}); err == nil {
		t.Fatal("NewStudy accepted service mode without streaming")
	}
}

// TestServeRequiresStreaming covers the Serve-side guard for studies built
// before Options.Service existed (Service nil, Streaming off).
func TestServeRequiresStreaming(t *testing.T) {
	study, err := NewStudy(Options{Seed: 5, Messages: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	if _, err := study.Serve(context.Background()); err == nil {
		t.Fatal("Serve without streaming succeeded")
	}
}
