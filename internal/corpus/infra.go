package corpus

import (
	"fmt"
	"math"
	"time"

	"github.com/smishkit/smishkit/internal/malware"
)

// domainKeywords are the host-name fragments campaigns combine with the
// brand slug ("sbi-kyc.top", "royalmail-redelivery.com", ...).
var domainKeywords = map[ScamType][]string{
	ScamBanking:    {"kyc", "verify", "secure", "login", "account", "netbank", "update"},
	ScamDelivery:   {"track", "redelivery", "parcel", "delivery", "fee", "schedule"},
	ScamGovernment: {"refund", "tax", "penalty", "claim", "rebate"},
	ScamTelecom:    {"bill", "topup", "sim", "reward", "points"},
	ScamOthers:     {"account", "support", "login", "app", "wallet", "prize"},
	ScamSpam:       {"win", "deals", "bonus", "offer"},
}

// pathKeywords build the landing path.
var pathKeywords = map[ScamType][]string{
	ScamBanking:    {"verify", "kyc", "login", "secure"},
	ScamDelivery:   {"track", "pay", "redeliver"},
	ScamGovernment: {"refund", "pay", "claim"},
	ScamTelecom:    {"billing", "renew"},
	ScamOthers:     {"account", "confirm", "app"},
	ScamSpam:       {"claim", "win"},
}

// ASNPrefix returns the deterministic /16-style prefix ("a.b.") every IP in
// the given AS draws from. The passive-DNS substrate registers the same
// prefixes, so IP-to-ASN resolution round-trips.
func ASNPrefix(asn int) string {
	// Spread ASNs over 2..223 x 0..249 avoiding 10.x, 127.x, 192.x.
	a := 2 + asn%200
	switch a {
	case 10, 127, 192, 172:
		a += 13
	}
	b := (asn / 7) % 250
	return fmt.Sprintf("%d.%d.", a, b)
}

// makeDomain fabricates one landing domain with full infrastructure truth.
func (g *generator) makeDomain(scam ScamType, slug string, start time.Time) Domain {
	rng := g.rng
	kws := domainKeywords[scam]
	if len(kws) == 0 {
		kws = domainKeywords[ScamOthers]
	}
	kw := kws[rng.Intn(len(kws))]
	if slug == "" {
		slug = pick(rng, "user", "customer", "service", "online", "mobile")
	}

	var name, tld string
	freeHost := rng.Float64() < freeHostProb
	if freeHost {
		platform := freeHostWeights.sample(rng)
		name = fmt.Sprintf("%s-%s.%s", slug, kw, platform)
		tld = platform[len(platform)-3:] // "app", "io" etc; refined below
		if i := lastDot(platform); i >= 0 {
			tld = platform[i+1:]
		}
	} else {
		tld = tldWeights.sample(rng)
		switch rng.Intn(3) {
		case 0:
			name = fmt.Sprintf("%s-%s.%s", slug, kw, tld)
		case 1:
			name = fmt.Sprintf("%s-%s.%s", kw, slug, tld)
		default:
			name = fmt.Sprintf("%s%s.%s", slug, kw, tld)
		}
	}
	// Ensure uniqueness.
	if _, exists := g.world.Domains[name]; exists {
		base := name[:len(name)-len(tld)-1]
		for n := 2; ; n++ {
			cand := fmt.Sprintf("%s%d.%s", base, n, tld)
			if _, exists := g.world.Domains[cand]; !exists {
				name = cand
				break
			}
		}
	}

	d := Domain{
		Name:          name,
		TLD:           tld,
		FreeHost:      freeHost,
		Registered:    start.Add(-time.Duration(1+rng.Intn(21)) * 24 * time.Hour),
		TakedownAfter: time.Duration(6+rng.Intn(96)) * time.Hour,
		Detectability: math.Pow(rng.Float64(), 1.6),
	}
	if !freeHost {
		d.Registrar = pickRegistrar(rng, scam)
	}
	// TLS: nearly all phishing pages are HTTPS now.
	d.CA = caWeights.sample(rng)
	d.FirstCert = d.Registered.Add(time.Duration(rng.Intn(48)) * time.Hour)
	renew := caRenewalDays[d.CA]
	if renew == 0 {
		renew = 365
	}
	lifetimeDays := 30 + rng.Intn(700) // how long certs keep being renewed
	d.CertCount = 1 + lifetimeDays/renew
	if rng.Float64() < 0.05 {
		// A few domains accumulate pathological renewal counts (§4.5
		// observed up to 4,681 certificates on one URL).
		d.CertCount *= 10 + rng.Intn(40)
	}

	// Passive DNS visibility and hosting.
	if rng.Float64() < pdnsProb {
		entry := asWeights.sample(rng)
		d.ASN = entry.ASNs[rng.Intn(len(entry.ASNs))]
		d.ASName = entry.Name
		d.ASCountry = entry.Country
		nIPs := 1 + rng.Intn(4)
		prefix := ASNPrefix(d.ASN)
		for i := 0; i < nIPs; i++ {
			d.IPs = append(d.IPs, fmt.Sprintf("%s%d.%d", prefix, rng.Intn(250), 1+rng.Intn(250)))
		}
	}
	return d
}

func pickRegistrar(rng rngT, scam ScamType) string {
	aff := registrarScamAffinity[scam]
	if aff == nil {
		return registrarWeights.sample(rng)
	}
	w := newWeighted[string]()
	for i, reg := range registrarWeights.values {
		mult := 1.0
		if m, ok := aff[reg]; ok {
			mult = m
		}
		w.add(reg, registrarWeights.weights[i]*mult)
	}
	return w.sample(rng)
}

func pickShortener(rng rngT, scam ScamType) string {
	aff := shortenerScamAffinity[scam]
	if aff == nil {
		return shortenerWeights.sample(rng)
	}
	w := newWeighted[string]()
	for i, svc := range shortenerWeights.values {
		mult := 1.0
		if m, ok := aff[svc]; ok {
			mult = m
		}
		w.add(svc, shortenerWeights.weights[i]*mult)
	}
	return w.sample(rng)
}

// attachAPK stages an Android drive-by on the domain (§6). The hash is
// the canonical payload hash, so a crawler downloading from a simulated
// host recovers exactly this value.
func (g *generator) attachAPK(d *Domain) {
	d.ServesAPK = true
	d.MalwareFamily = malwareFamilyWeights.sample(g.rng)
	d.APKHash = malware.HashBytes(malware.APKPayload(d.Name, d.MalwareFamily))
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// shortCode mints a deterministic-per-rng shortener path code.
func shortCode(rng rngT) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := 6 + rng.Intn(3)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}
