package bench

import "testing"

func baselineSummary() Summary {
	return Summary{
		ProjectionBacklogP95Seconds: 10,
		ProjectionBacklogP99Seconds: 12,
		RoundP95Ms:                  100,
		EnrichP95MsMax:              40,
		ReportsPerSecAvg:            20,
	}
}

func TestCompareNoRegression(t *testing.T) {
	b := baselineSummary()
	if regs := Compare(b, b, 5); len(regs) != 0 {
		t.Errorf("identical summaries regressed: %v", regs)
	}
	better := b
	better.ProjectionBacklogP95Seconds = 5
	better.ReportsPerSecAvg = 40
	if regs := Compare(b, better, 5); len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareBoundaryExactlyAtPctPasses(t *testing.T) {
	b := baselineSummary()
	l := b
	l.ProjectionBacklogP95Seconds = 10.5 // exactly +5%
	if regs := Compare(b, l, 5); len(regs) != 0 {
		t.Errorf("drift of exactly the limit flagged: %v", regs)
	}
	l.ProjectionBacklogP95Seconds = 10.51 // just over
	regs := Compare(b, l, 5)
	if len(regs) != 1 || regs[0].Metric != "projection_backlog_p95_seconds" {
		t.Errorf("drift just over the limit not flagged: %v", regs)
	}
}

func TestCompareLowerIsWorseThroughput(t *testing.T) {
	b := baselineSummary()
	l := b
	l.ReportsPerSecAvg = 19 // -5% exactly: tolerated
	if regs := Compare(b, l, 5); len(regs) != 0 {
		t.Errorf("throughput at limit flagged: %v", regs)
	}
	l.ReportsPerSecAvg = 18.9 // -5.5%: regression
	regs := Compare(b, l, 5)
	if len(regs) != 1 || regs[0].Metric != "reports_per_sec_avg" {
		t.Errorf("throughput drop not flagged: %v", regs)
	}
	// Higher throughput must never count against the run.
	l.ReportsPerSecAvg = 100
	if regs := Compare(b, l, 5); len(regs) != 0 {
		t.Errorf("throughput gain flagged: %v", regs)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	var b Summary // all-zero baseline (idle smoke run)
	l := Summary{ProjectionBacklogP95Seconds: 0.5, RoundP95Ms: 30}
	if regs := Compare(b, l, 5); len(regs) != 0 {
		t.Errorf("small absolute values over zero baseline flagged: %v", regs)
	}
	l = Summary{ProjectionBacklogP95Seconds: 2, RoundP95Ms: 80}
	regs := Compare(b, l, 5)
	if len(regs) != 2 {
		t.Errorf("zero-baseline floor breaches: got %v, want backlog+round", regs)
	}
	// Zero-baseline throughput cannot anchor a throughput regression.
	l = Summary{}
	if regs := Compare(b, l, 5); len(regs) != 0 {
		t.Errorf("zero-baseline throughput flagged: %v", regs)
	}
}

func TestCompareDefaultPct(t *testing.T) {
	b := baselineSummary()
	l := b
	l.RoundP95Ms = 104 // +4% < default 5%
	if regs := Compare(b, l, -1); len(regs) != 0 {
		t.Errorf("+4%% flagged under default limit: %v", regs)
	}
	l.RoundP95Ms = 106 // +6% > default 5%
	if regs := Compare(b, l, -1); len(regs) != 1 {
		t.Errorf("+6%% not flagged under default limit: %v", regs)
	}
}
