package recordlog

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/extract"
	"github.com/smishkit/smishkit/internal/telemetry"
)

func testRecord(id string) core.Record {
	return core.Record{
		ID:        id,
		Forum:     corpus.ForumTwitter,
		Text:      "your parcel is held, pay at example.test",
		Domain:    "example.test",
		SenderRaw: "+15550001111",
		Timestamp: extract.ParsedTime{Time: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC), HasDate: true},
	}
}

func testBatch(ids ...string) *core.Dataset {
	ds := &core.Dataset{
		PostsByForum:  map[corpus.Forum]int{corpus.ForumTwitter: len(ids)},
		ImagesByForum: map[corpus.Forum]int{},
	}
	for _, id := range ids {
		ds.Records = append(ds.Records, testRecord(id))
	}
	return ds
}

func ids(ds *core.Dataset) []string {
	out := make([]string, 0, len(ds.Records))
	for _, r := range ds.Records {
		out = append(out, r.ID)
	}
	sort.Strings(out)
	return out
}

func mustOpen(t *testing.T, dir string, reg *telemetry.Registry) *Log {
	t.Helper()
	l, err := Open(Config{Dir: dir}, reg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// TestAppendReplayRoundTrip pins the basic contract: records appended
// across several rounds come back identical (records, totals, injects)
// from a fresh Open of the same directory.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, nil)
	at := time.Date(2026, 8, 2, 9, 0, 0, 0, time.UTC)
	if _, err := l.Append(testBatch("a", "b"), at); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.AppendInject(core.InjectSpec{Seed: 7, Messages: 10}, at); err != nil {
		t.Fatalf("AppendInject: %v", err)
	}
	if _, err := l.Append(testBatch("c"), at.Add(time.Second)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	want := l.Dataset()
	// Close without relying on its snapshot: re-open must replay the log.
	if err := l.f.Close(); err != nil {
		t.Fatalf("close file: %v", err)
	}

	l2 := mustOpen(t, dir, nil)
	defer l2.Close()
	got := l2.Dataset()
	if !reflect.DeepEqual(ids(got), ids(want)) {
		t.Fatalf("replayed IDs = %v, want %v", ids(got), ids(want))
	}
	if got.PostsByForum[corpus.ForumTwitter] != 3 {
		t.Fatalf("replayed posts = %d, want 3", got.PostsByForum[corpus.ForumTwitter])
	}
	inj := l2.Injects()
	if len(inj) != 1 || inj[0].Seed != 7 || inj[0].Messages != 10 {
		t.Fatalf("replayed injects = %+v", inj)
	}
	if st := l2.Stats(); st.Replayed != 3 {
		t.Fatalf("Stats.Replayed = %d, want 3", st.Replayed)
	}
}

// TestAppendDedupsByRecordID pins the crash-window protection: a batch
// whose records are already logged writes nothing and returns an empty
// fresh set, so neither the log nor the projection double-counts.
func TestAppendDedupsByRecordID(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	l := mustOpen(t, dir, reg)
	defer l.Close()
	at := time.Now()
	if _, err := l.Append(testBatch("a", "b"), at); err != nil {
		t.Fatalf("Append: %v", err)
	}
	sizeBefore := l.Stats().LogBytes

	// Same round again — the re-collection after a crash between append
	// and cursor save.
	fresh, err := l.Append(testBatch("a", "b"), at)
	if err != nil {
		t.Fatalf("replay Append: %v", err)
	}
	if len(fresh.Records) != 0 {
		t.Fatalf("replayed batch returned %d fresh records, want 0", len(fresh.Records))
	}
	st := l.Stats()
	if st.LogBytes != sizeBefore {
		t.Fatalf("replayed batch grew the log: %d -> %d", sizeBefore, st.LogBytes)
	}
	if st.Deduped != 2 {
		t.Fatalf("Stats.Deduped = %d, want 2", st.Deduped)
	}
	if ds := l.Dataset(); len(ds.Records) != 2 || ds.PostsByForum[corpus.ForumTwitter] != 2 {
		t.Fatalf("dataset after replayed batch: records=%d posts=%d, want 2/2",
			len(ds.Records), ds.PostsByForum[corpus.ForumTwitter])
	}

	// Mixed batch (partial overlap) keeps only the fresh record.
	fresh, err = l.Append(testBatch("b", "c"), at.Add(time.Second))
	if err != nil {
		t.Fatalf("mixed Append: %v", err)
	}
	if got := ids(fresh); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("mixed batch fresh IDs = %v, want [c]", got)
	}
}

// TestTornTailTruncatedOnOpen pins the crash-mid-append path: a final
// frame cut off mid-payload is discarded on open, counted in
// recordlog.truncated_tail, and the log is usable for appends again.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, nil)
	if _, err := l.Append(testBatch("a", "b"), time.Now()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(testBatch("c"), time.Now()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	intact := l.Stats().LogBytes
	if err := l.f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the final frame: keep its header and half its payload.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	if int64(len(data)) != intact {
		t.Fatalf("log size = %d, stats said %d", len(data), intact)
	}
	// Find the second frame's start by decoding the first header.
	first := int(binary.LittleEndian.Uint32(data[1:5])) + frameHeader
	torn := first + frameHeader + (len(data)-first-frameHeader)/2
	if err := os.WriteFile(path, data[:torn], 0o644); err != nil {
		t.Fatalf("tear log: %v", err)
	}

	reg := telemetry.NewRegistry()
	l2 := mustOpen(t, dir, reg)
	defer l2.Close()
	if got := ids(l2.Dataset()); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("after torn tail, IDs = %v, want [a b]", got)
	}
	st := l2.Stats()
	if st.TruncatedTail != 1 {
		t.Fatalf("Stats.TruncatedTail = %d, want 1", st.TruncatedTail)
	}
	if got := reg.Snapshot().CounterValue("recordlog.truncated_tail"); got != 1 {
		t.Fatalf("recordlog.truncated_tail counter = %d, want 1", got)
	}
	if int64(first) != st.LogBytes {
		t.Fatalf("log not truncated to frame boundary: size=%d want=%d", st.LogBytes, first)
	}

	// The torn record can land again — its ID was never committed.
	if _, err := l2.Append(testBatch("c"), time.Now()); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	if got := ids(l2.Dataset()); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("after re-append, IDs = %v", got)
	}
}

// TestCorruptFrameRejectedOnOpen pins the bit-rot path: a frame whose
// payload no longer matches its CRC is rejected together with everything
// after it, counted in recordlog.corrupt_frames.
func TestCorruptFrameRejectedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, nil)
	if _, err := l.Append(testBatch("a"), time.Now()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(testBatch("b"), time.Now()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(testBatch("c"), time.Now()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Flip one payload byte inside the SECOND frame; its CRC now lies.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	first := int(binary.LittleEndian.Uint32(data[1:5])) + frameHeader
	data[first+frameHeader+4] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt log: %v", err)
	}

	reg := telemetry.NewRegistry()
	l2 := mustOpen(t, dir, reg)
	defer l2.Close()
	// Frame 2 and the (valid) frame 3 behind it are both gone: nothing
	// past a corrupt frame can be trusted.
	if got := ids(l2.Dataset()); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("after corrupt frame, IDs = %v, want [a]", got)
	}
	st := l2.Stats()
	if st.CorruptFrames != 1 {
		t.Fatalf("Stats.CorruptFrames = %d, want 1", st.CorruptFrames)
	}
	if got := reg.Snapshot().CounterValue("recordlog.corrupt_frames"); got != 1 {
		t.Fatalf("recordlog.corrupt_frames counter = %d, want 1", got)
	}
	if int64(first) != st.LogBytes {
		t.Fatalf("log not truncated at corrupt frame: size=%d want=%d", st.LogBytes, first)
	}
}

// TestGarbageHeaderRejected pins the scribbled-header path: an absurd
// length field is treated as corruption, not as a 3 GiB allocation.
func TestGarbageHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	var hdr [frameHeader]byte
	hdr[0] = kindBatch
	binary.LittleEndian.PutUint32(hdr[1:5], maxFrame+1)
	if err := os.WriteFile(filepath.Join(dir, logName), hdr[:], 0o644); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	l := mustOpen(t, dir, nil)
	defer l.Close()
	if st := l.Stats(); st.CorruptFrames != 1 || st.LogBytes != 0 {
		t.Fatalf("garbage header: corrupt=%d size=%d, want 1/0", st.CorruptFrames, st.LogBytes)
	}
}

// TestUnknownKindRejected pins forward-compatibility handling: a frame
// kind this build does not know is corruption (the log is private to one
// binary version), truncated like any other damage.
func TestUnknownKindRejected(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"seq":1}`)
	var hdr [frameHeader]byte
	hdr[0] = 99
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(filepath.Join(dir, logName), append(hdr[:], payload...), 0o644); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	l := mustOpen(t, dir, nil)
	defer l.Close()
	if st := l.Stats(); st.CorruptFrames != 1 || st.LogBytes != 0 {
		t.Fatalf("unknown kind: corrupt=%d size=%d, want 1/0", st.CorruptFrames, st.LogBytes)
	}
}

// TestSnapshotPlusTailEqualsUninterrupted pins the restart-cost contract:
// a directory holding a snapshot plus a post-snapshot log tail replays to
// exactly the dataset an uninterrupted log yields.
func TestSnapshotPlusTailEqualsUninterrupted(t *testing.T) {
	at := time.Date(2026, 8, 3, 10, 0, 0, 0, time.UTC)
	batches := [][]string{{"a", "b"}, {"c"}, {"d", "e"}, {"f"}}

	// Uninterrupted: one log, never snapshotted, full replay.
	plain := t.TempDir()
	lp := mustOpen(t, plain, nil)
	for i, b := range batches {
		if _, err := lp.Append(testBatch(b...), at.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatalf("plain Append: %v", err)
		}
	}
	want := lp.Dataset()
	lp.f.Close()

	// Snapshotted: same batches, forced snapshot midway, then a tail.
	snapped := t.TempDir()
	ls := mustOpen(t, snapped, nil)
	for i, b := range batches {
		if _, err := ls.Append(testBatch(b...), at.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatalf("snap Append: %v", err)
		}
		if i == 1 {
			if err := ls.Snapshot(); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
		}
	}
	ls.f.Close()

	for _, dir := range []string{plain, snapped} {
		l := mustOpen(t, dir, nil)
		got := l.Dataset()
		if !reflect.DeepEqual(ids(got), ids(want)) {
			t.Errorf("%s: IDs = %v, want %v", dir, ids(got), ids(want))
		}
		if got.PostsByForum[corpus.ForumTwitter] != want.PostsByForum[corpus.ForumTwitter] {
			t.Errorf("%s: posts = %d, want %d", dir,
				got.PostsByForum[corpus.ForumTwitter], want.PostsByForum[corpus.ForumTwitter])
		}
		l.Close()
	}
}

// TestCompactionTruncatesLogAndSurvivesReopen pins the bounded-restart
// contract: crossing CompactThreshold snapshots and empties the log, and
// a reopen of the compacted directory still holds everything.
func TestCompactionTruncatesLogAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	l, err := Open(Config{Dir: dir, CompactThreshold: 1}, reg) // every append compacts
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testBatch("a", "b"), time.Now()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	st := l.Stats()
	if st.Compactions != 1 {
		t.Fatalf("Stats.Compactions = %d, want 1", st.Compactions)
	}
	if st.LogBytes != 0 {
		t.Fatalf("log not truncated by compaction: %d bytes", st.LogBytes)
	}
	if got := reg.Snapshot().CounterValue("recordlog.compactions"); got != 1 {
		t.Fatalf("recordlog.compactions counter = %d, want 1", got)
	}
	if _, err := l.Append(testBatch("c"), time.Now()); err != nil {
		t.Fatalf("post-compaction Append: %v", err)
	}
	l.f.Close()

	l2 := mustOpen(t, dir, nil)
	defer l2.Close()
	if got := ids(l2.Dataset()); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("after compaction+reopen, IDs = %v", got)
	}
}

// TestDuplicatedFrameReplayIsIdempotent pins why frames carry cumulative
// totals: replaying a log that contains the same round twice (the crash
// window re-append, with the dedup map lost in between) must not inflate
// records or totals.
func TestDuplicatedFrameReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, nil)
	if _, err := l.Append(testBatch("a", "b"), time.Now()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.f.Close()

	// Duplicate the single frame byte-for-byte with a bumped Seq — what a
	// re-collected round would have written had the dedup map been empty.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	var fr batchFrame
	if err := json.Unmarshal(data[frameHeader:], &fr); err != nil {
		t.Fatalf("decode frame: %v", err)
	}
	fr.Seq++
	payload, err := json.Marshal(fr)
	if err != nil {
		t.Fatalf("encode frame: %v", err)
	}
	var hdr [frameHeader]byte
	hdr[0] = kindBatch
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	data = append(data, hdr[:]...)
	data = append(data, payload...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write duplicated log: %v", err)
	}

	l2 := mustOpen(t, dir, nil)
	defer l2.Close()
	ds := l2.Dataset()
	if got := ids(ds); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("duplicated frame inflated records: %v", got)
	}
	if ds.PostsByForum[corpus.ForumTwitter] != 2 {
		t.Fatalf("duplicated frame inflated totals: posts=%d, want 2", ds.PostsByForum[corpus.ForumTwitter])
	}
}

// TestCorruptSnapshotIsAnError pins that a damaged snapshot refuses to
// open rather than silently starting empty (which would let the next
// snapshot destroy the only durable copy).
func TestCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("{not json"), 0o644); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	if _, err := Open(Config{Dir: dir}, nil); err == nil {
		t.Fatal("Open succeeded over a corrupt snapshot")
	}
}

// TestCloseSnapshotsDirtyState pins that Close leaves a fresh snapshot so
// the next open replays an empty tail.
func TestCloseSnapshotsDirtyState(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, nil)
	if _, err := l.Append(testBatch("a"), time.Now()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot after Close: %v", err)
	}
	l2 := mustOpen(t, dir, nil)
	defer l2.Close()
	if got := ids(l2.Dataset()); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("after Close+reopen, IDs = %v", got)
	}
}
