package shard

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// WorkerHandle is one running worker as the supervisor sees it. Starter
// implementations produce it; the supervisor never cares whether the
// worker is an OS process (cmd/smishctl) or a goroutine (tests).
type WorkerHandle struct {
	// URL is the worker's base URL, as it printed on startup.
	URL string
	// Exited receives the worker's exit outcome exactly once and is then
	// closed, so any number of waiters unblock.
	Exited <-chan error
	// Stop asks the worker to exit (SIGTERM for a process, context cancel
	// for a goroutine). Must be safe to call more than once.
	Stop func()
}

// Starter launches worker index and returns its handle. It is called for
// the initial bring-up and again for every restart, so it must be safe to
// invoke repeatedly for the same index.
type Starter func(ctx context.Context, index int) (WorkerHandle, error)

// SupervisorConfig tunes worker restart behavior. The zero value selects
// every documented default.
type SupervisorConfig struct {
	// InitialBackoff is the delay before the first restart attempt
	// (default 200ms). Each subsequent attempt doubles it.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// MaxRestarts bounds restart attempts per worker over the supervisor's
	// lifetime (default 5). Past it the worker is left dead — the group's
	// prober keeps it marked down and failover routes around it.
	MaxRestarts int
	// OnRestart, when non-nil, is called after a worker restarts with its
	// fresh URL — the re-registration seam (Study wires it to health-check
	// the URL and swap it into the Group). A non-nil error abandons the
	// worker as if MaxRestarts were exhausted.
	OnRestart func(index int, url string) error
	// Logf, when non-nil, receives human-oriented lifecycle messages.
	Logf func(format string, args ...any)
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.InitialBackoff <= 0 {
		c.InitialBackoff = 200 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
	return c
}

// Supervisor keeps n shard workers alive: Start brings them up and
// collects their URLs, Run watches for exits and restarts the dead with
// capped exponential backoff, Stop tears everything down. It owns worker
// lifecycle only — registering a restarted worker's URL with the routing
// layer is the OnRestart callback's job, so the supervisor composes with
// any Group without holding a reference to one.
type Supervisor struct {
	n     int
	start Starter
	cfg   SupervisorConfig

	mu       sync.Mutex
	workers  []WorkerHandle
	restarts []int64
	gaveUp   []bool
	started  bool
}

// NewSupervisor builds a supervisor for n workers launched through start.
func NewSupervisor(n int, start Starter, cfg SupervisorConfig) (*Supervisor, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: supervisor needs at least one worker (got %d)", n)
	}
	if start == nil {
		return nil, fmt.Errorf("shard: supervisor needs a starter")
	}
	return &Supervisor{
		n:        n,
		start:    start,
		cfg:      cfg.withDefaults(),
		workers:  make([]WorkerHandle, n),
		restarts: make([]int64, n),
		gaveUp:   make([]bool, n),
	}, nil
}

// Start launches every worker and returns their base URLs in index order.
// On any failure the already-started workers are stopped and reaped
// before the error returns.
func (s *Supervisor) Start(ctx context.Context) ([]string, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return nil, fmt.Errorf("shard: supervisor already started")
	}
	s.started = true
	s.mu.Unlock()

	urls := make([]string, s.n)
	for i := 0; i < s.n; i++ {
		h, err := s.start(ctx, i)
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("shard: start worker %d: %w", i, err)
		}
		s.mu.Lock()
		s.workers[i] = h
		s.mu.Unlock()
		urls[i] = h.URL
	}
	return urls, nil
}

// Run supervises until ctx is cancelled: each worker's exit (for any
// reason while ctx is live) triggers a restart after a capped exponential
// backoff, re-registered through OnRestart. Run does not stop the workers
// on return — call Stop for teardown, after cancelling Run's ctx.
func (s *Supervisor) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for i := 0; i < s.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.superviseWorker(ctx, i)
		}(i)
	}
	wg.Wait()
}

func (s *Supervisor) superviseWorker(ctx context.Context, i int) {
	for {
		s.mu.Lock()
		exited := s.workers[i].Exited
		s.mu.Unlock()
		if exited == nil {
			return // never started (Start failed) — nothing to watch
		}
		select {
		case <-ctx.Done():
			return
		case <-exited:
		}
		if ctx.Err() != nil {
			return
		}
		if !s.restartWorker(ctx, i) {
			return
		}
	}
}

// restartWorker brings worker i back with capped exponential backoff.
// Returns false when the worker is abandoned (restart budget exhausted,
// OnRestart rejected it, or ctx ended).
func (s *Supervisor) restartWorker(ctx context.Context, i int) bool {
	backoff := s.cfg.InitialBackoff
	for attempt := 1; ; attempt++ {
		s.mu.Lock()
		if s.restarts[i] >= int64(s.cfg.MaxRestarts) {
			s.gaveUp[i] = true
			s.mu.Unlock()
			s.logf("shard worker %d: restart budget (%d) exhausted, leaving it down", i, s.cfg.MaxRestarts)
			return false
		}
		s.restarts[i]++
		s.mu.Unlock()

		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return false
		case <-t.C:
		}
		if backoff *= 2; backoff > s.cfg.MaxBackoff {
			backoff = s.cfg.MaxBackoff
		}

		h, err := s.start(ctx, i)
		if err != nil {
			s.logf("shard worker %d: restart attempt %d failed: %v", i, attempt, err)
			continue
		}
		if s.cfg.OnRestart != nil {
			if err := s.cfg.OnRestart(i, h.URL); err != nil {
				h.Stop()
				<-h.Exited
				s.mu.Lock()
				s.gaveUp[i] = true
				s.mu.Unlock()
				s.logf("shard worker %d: re-registration rejected, abandoning: %v", i, err)
				return false
			}
		}
		s.mu.Lock()
		s.workers[i] = h
		s.mu.Unlock()
		s.logf("shard worker %d: restarted at %s (attempt %d)", i, h.URL, attempt)
		return true
	}
}

// Stop asks every live worker to exit and waits for them. Safe to call
// more than once and concurrently with a cancelled Run.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	workers := make([]WorkerHandle, len(s.workers))
	copy(workers, s.workers)
	s.mu.Unlock()
	for _, w := range workers {
		if w.Stop != nil {
			w.Stop()
		}
	}
	for _, w := range workers {
		if w.Exited != nil {
			<-w.Exited
		}
	}
}

// Restarts returns per-worker restart counts in index order.
func (s *Supervisor) Restarts() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.restarts))
	copy(out, s.restarts)
	return out
}

// GaveUp reports whether worker i was abandoned after exhausting its
// restart budget (or failing re-registration).
func (s *Supervisor) GaveUp(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return i >= 0 && i < len(s.gaveUp) && s.gaveUp[i]
}

// logf forwards to the configured logger, if any.
func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
