package faultinject

import (
	"context"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/whois"
)

// Injector decorates the core.Services seam with per-service fault
// gates. Build one per chaos run; it is safe for concurrent use.
type Injector struct {
	gates map[string]*gate
}

// New builds an injector recording into reg (nil is allowed: counters
// become no-ops). Multi-method services (dnsdb, avscan) share one gate,
// so a flapping window covers every method of the service.
func New(cfg Config, reg *telemetry.Registry) *Injector {
	in := &Injector{gates: make(map[string]*gate, 6)}
	for _, name := range []string{"hlr", "whois", "ctlog", "dnsdb", "avscan", "shortener"} {
		in.gates[name] = newGate(name, cfg.forService(name), cfg.Seed, reg)
	}
	return in
}

// WrapServices decorates every non-nil service whose fault mix is
// non-empty. Nil services stay nil and fault-free services pass through
// undecorated, so a targeted single-service outage costs nothing on the
// healthy paths.
func (in *Injector) WrapServices(s core.Services) core.Services {
	if s.HLR != nil && in.gates["hlr"].f.enabled() {
		s.HLR = &faultyHLR{next: s.HLR, g: in.gates["hlr"]}
	}
	if s.Whois != nil && in.gates["whois"].f.enabled() {
		s.Whois = &faultyWhois{next: s.Whois, g: in.gates["whois"]}
	}
	if s.CTLog != nil && in.gates["ctlog"].f.enabled() {
		s.CTLog = &faultyCT{next: s.CTLog, g: in.gates["ctlog"]}
	}
	if s.DNSDB != nil && in.gates["dnsdb"].f.enabled() {
		s.DNSDB = &faultyDNS{next: s.DNSDB, g: in.gates["dnsdb"]}
	}
	if s.AVScan != nil && in.gates["avscan"].f.enabled() {
		s.AVScan = &faultyAV{next: s.AVScan, g: in.gates["avscan"]}
	}
	if s.Shortener != nil && in.gates["shortener"].f.enabled() {
		s.Shortener = &faultyShort{next: s.Shortener, g: in.gates["shortener"]}
	}
	return s
}

type faultyHLR struct {
	next core.HLRLookuper
	g    *gate
}

func (d *faultyHLR) Lookup(ctx context.Context, msisdn string) (hlr.Result, error) {
	if err := d.g.before(ctx); err != nil {
		return hlr.Result{}, err
	}
	return d.next.Lookup(ctx, msisdn)
}

type faultyWhois struct {
	next core.WhoisLookuper
	g    *gate
}

func (d *faultyWhois) Lookup(ctx context.Context, domain string) (whois.Record, bool, error) {
	if err := d.g.before(ctx); err != nil {
		return whois.Record{}, false, err
	}
	return d.next.Lookup(ctx, domain)
}

type faultyCT struct {
	next core.CTSummarizer
	g    *gate
}

func (d *faultyCT) Summary(ctx context.Context, domain string) (ctlog.Summary, error) {
	if err := d.g.before(ctx); err != nil {
		return ctlog.Summary{}, err
	}
	return d.next.Summary(ctx, domain)
}

type faultyDNS struct {
	next core.DNSResolver
	g    *gate
}

func (d *faultyDNS) Resolutions(ctx context.Context, domain string) ([]dnsdb.Observation, error) {
	if err := d.g.before(ctx); err != nil {
		return nil, err
	}
	return d.next.Resolutions(ctx, domain)
}

func (d *faultyDNS) ASOf(ctx context.Context, ip string) (dnsdb.ASInfo, error) {
	if err := d.g.before(ctx); err != nil {
		return dnsdb.ASInfo{}, err
	}
	return d.next.ASOf(ctx, ip)
}

type faultyAV struct {
	next core.AVScanner
	g    *gate
}

func (d *faultyAV) Scan(ctx context.Context, u string) (avscan.Report, error) {
	if err := d.g.before(ctx); err != nil {
		return avscan.Report{}, err
	}
	return d.next.Scan(ctx, u)
}

func (d *faultyAV) GSBLookup(ctx context.Context, u string) (avscan.GSBResult, error) {
	if err := d.g.before(ctx); err != nil {
		return avscan.GSBResult{}, err
	}
	return d.next.GSBLookup(ctx, u)
}

func (d *faultyAV) Transparency(ctx context.Context, u string) (avscan.TransparencyResult, bool, error) {
	if err := d.g.before(ctx); err != nil {
		return avscan.TransparencyResult{}, false, err
	}
	return d.next.Transparency(ctx, u)
}

type faultyShort struct {
	next core.ShortExpander
	g    *gate
}

func (d *faultyShort) Expand(ctx context.Context, service, code string) (string, error) {
	if err := d.g.before(ctx); err != nil {
		return "", err
	}
	return d.next.Expand(ctx, service, code)
}
