// Package batchmux is the windowed batching/coalescing tier between the
// enrichment cache and the fault layer: pipeline → breaker → cache →
// batchmux → faults → client. The paper's 27.7k messages collapse onto a
// few hundred domains, shorteners, and sender prefixes (Tables 5–8), so
// even after caching, a cold sweep still pays one HTTP round trip per
// distinct key; this tier turns those misses into bulk requests.
//
// Per batchable lookup (HLR MSISDNs, VirusTotal scans, passive-DNS
// resolutions, GSB status) it provides:
//
//   - windowed accumulation: concurrent single-key calls park in a
//     per-service window that flushes as one bulk request when it reaches
//     Window distinct keys or FlushInterval elapses, whichever is first;
//   - singleflight dedup inside the window: identical keys share one
//     slot and one answer;
//   - per-key error demultiplexing: the bulk transports carry one error
//     slot per key, so one bad key degrades one record, never the batch;
//   - graceful fallthrough: services whose client doesn't implement the
//     core.Bulk* seam pass through per-key, counted but untouched.
//
// Every decision increments flushes/batch_size/coalesced/fallthrough
// counters in the study's telemetry registry under
// "batch.<service>.<metric>", so batching effectiveness shows up next to
// the client metrics it eliminates.
package batchmux

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/telemetry"
)

// Config tunes the mux. The zero value is usable: every field falls back
// to the documented default.
type Config struct {
	// Window flushes a service's pending keys once this many distinct
	// keys have accumulated (default 32).
	Window int
	// FlushInterval flushes a partial window this long after its first
	// key arrived, so stragglers never wait on a window that no one else
	// will fill (default 5ms).
	FlushInterval time.Duration
	// BatchTimeout bounds each bulk call. The call runs under a detached
	// context because its waiters span many records — one record's
	// cancellation must not void everyone else's answers (default 30s).
	BatchTimeout time.Duration
	// MaxInFlight caps concurrent bulk calls across all services, keeping
	// a burst of flushes from stampeding the backends (default 4).
	MaxInFlight int
	// PerService overrides Window/FlushInterval for one service, keyed by
	// the service names used in telemetry: hlr, dnsdb, avscan.
	PerService map[string]ServiceConfig
}

// ServiceConfig overrides batching bounds for a single service. Zero
// fields inherit the Config-level value.
type ServiceConfig struct {
	Window        int
	FlushInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 5 * time.Millisecond
	}
	if c.BatchTimeout == 0 {
		c.BatchTimeout = 30 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4
	}
	return c
}

// forService resolves the effective bounds for one named service.
func (c Config) forService(name string) ServiceConfig {
	sc := c.PerService[name]
	if sc.Window == 0 {
		sc.Window = c.Window
	}
	if sc.FlushInterval == 0 {
		sc.FlushInterval = c.FlushInterval
	}
	return sc
}

// metrics is the per-service instrument bundle. All batchers of one
// service (e.g. avscan's scan and gsb windows) share one set.
type metrics struct {
	flushes     *telemetry.Counter
	batchSize   *telemetry.Counter // cumulative keys flushed; mean batch = batchSize/flushes
	coalesced   *telemetry.Counter
	fellThrough *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry, service string) *metrics {
	prefix := "batch." + service + "."
	return &metrics{
		flushes:     reg.Counter(prefix + "flushes"),
		batchSize:   reg.Counter(prefix + "batch_size"),
		coalesced:   reg.Counter(prefix + "coalesced"),
		fellThrough: reg.Counter(prefix + "fallthrough"),
	}
}

// errShape marks a bulk implementation that answered fewer slots than it
// was asked; the missing slots degrade individually instead of panicking.
var errShape = errors.New("batchmux: bulk result missing its slot")

// window is one accumulating batch: distinct keys in arrival order, and
// the parallel result/error slices populated at flush. done is closed
// once vals/errs are final; until then waiters must not read them.
type window[V any] struct {
	keys  []string
	index map[string]int
	done  chan struct{}
	vals  []V
	errs  []error
}

// batcher coalesces single-key gets over one key space into bulk calls.
// Safe for concurrent use.
type batcher[V any] struct {
	bulk     func(ctx context.Context, keys []string) ([]V, []error)
	window   int
	interval time.Duration
	timeout  time.Duration
	sem      chan struct{} // shared MaxInFlight cap; nil disables
	met      *metrics

	mu  sync.Mutex
	cur *window[V]
}

func newBatcher[V any](sc ServiceConfig, timeout time.Duration, sem chan struct{}, met *metrics,
	bulk func(ctx context.Context, keys []string) ([]V, []error)) *batcher[V] {
	return &batcher[V]{
		bulk:     bulk,
		window:   sc.Window,
		interval: sc.FlushInterval,
		timeout:  timeout,
		sem:      sem,
		met:      met,
	}
}

// get parks the key in the current window and waits for its flush. The
// caller that completes the window runs the flush inline (it was going to
// wait anyway); partial windows are flushed by the interval timer armed
// when their first key arrives — essential, because a window's waiters
// may be fewer than its size, and nobody else would ever flush it.
func (b *batcher[V]) get(ctx context.Context, key string) (V, error) {
	b.mu.Lock()
	w := b.cur
	if w == nil {
		w = &window[V]{index: make(map[string]int, b.window), done: make(chan struct{})}
		b.cur = w
		time.AfterFunc(b.interval, func() { b.flushIfCurrent(w) })
	}
	i, ok := w.index[key]
	if !ok {
		i = len(w.keys)
		w.keys = append(w.keys, key)
		w.index[key] = i
	} else {
		b.met.coalesced.Inc()
	}
	if len(w.keys) >= b.window {
		b.cur = nil
		b.mu.Unlock()
		b.flush(w)
	} else {
		b.mu.Unlock()
	}

	select {
	case <-w.done:
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err()
	}
	if err := w.errs[i]; err != nil {
		var zero V
		return zero, err
	}
	return w.vals[i], nil
}

// flushIfCurrent is the timer path: a window that already flushed on size
// was detached from b.cur, so the generation check makes the timer a
// no-op for it.
func (b *batcher[V]) flushIfCurrent(w *window[V]) {
	b.mu.Lock()
	if b.cur != w {
		b.mu.Unlock()
		return
	}
	b.cur = nil
	b.mu.Unlock()
	b.flush(w)
}

func (b *batcher[V]) flush(w *window[V]) {
	if b.sem != nil {
		b.sem <- struct{}{}
		defer func() { <-b.sem }()
	}
	ctx := context.Background()
	if b.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.timeout)
		defer cancel()
	}
	vals, errs := b.bulk(ctx, w.keys)
	w.vals = make([]V, len(w.keys))
	w.errs = make([]error, len(w.keys))
	for i := range w.keys {
		switch {
		case i < len(errs) && errs[i] != nil:
			w.errs[i] = errs[i]
		case i < len(vals):
			w.vals[i] = vals[i]
		default:
			w.errs[i] = errShape
		}
	}
	b.met.flushes.Inc()
	b.met.batchSize.Add(int64(len(w.keys)))
	close(w.done)
}

// ServiceStats is one service's batching scoreboard.
type ServiceStats struct {
	// Flushes counts bulk requests sent upstream.
	Flushes int64 `json:"flushes"`
	// BatchedKeys is the cumulative key count across those flushes.
	BatchedKeys int64 `json:"batched_keys"`
	// Coalesced counts in-window duplicate keys that shared a slot.
	Coalesced int64 `json:"coalesced"`
	// Fallthrough counts per-key calls made because the wrapped client
	// has no bulk seam.
	Fallthrough int64 `json:"fallthrough"`
}

// AvgBatch is the mean keys per flush (0 when nothing flushed).
func (s ServiceStats) AvgBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.BatchedKeys) / float64(s.Flushes)
}

// Stats maps service name (hlr, dnsdb, avscan) to its scoreboard.
type Stats map[string]ServiceStats

// Write renders stats as an aligned text table, services sorted by name.
func Write(w io.Writer, stats Stats) error {
	if _, err := fmt.Fprintf(w, "request batching\n  %-10s %9s %12s %9s %12s %9s\n",
		"service", "flushes", "batched", "coalesced", "fallthrough", "avg/batch"); err != nil {
		return err
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := stats[name]
		if _, err := fmt.Fprintf(w, "  %-10s %9d %12d %9d %12d %9.1f\n",
			name, s.Flushes, s.BatchedKeys, s.Coalesced, s.Fallthrough, s.AvgBatch()); err != nil {
			return err
		}
	}
	return nil
}
