package core

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/urlinfo"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/crawler"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/malware"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/whois"
)

// Simulation is a fully booted world: five forum servers, six intelligence
// services, the shortener redirect front end, and the scammer hosting —
// all listening on loopback, all seeded from one corpus.World.
type Simulation struct {
	World *World

	// Base URLs of every server.
	TwitterURL    string
	RedditURL     string
	SmishtankURL  string
	SmishingEUURL string
	PastebinURL   string
	HLRURL        string
	WhoisURL      string
	CTLogURL      string
	DNSDBURL      string
	AVScanURL     string
	ShortenerURL  string
	SitesURL      string
	// DebugURL serves GET /debug/telemetry: a live JSON snapshot of the
	// simulation's telemetry registry.
	DebugURL string

	// Credentials the clients need.
	TwitterBearer string
	HLRKey        string
	WhoisKey      string
	DNSDBKey      string
	AVScanKey     string

	// Direct handles for case studies and tests.
	Sites    *crawler.SiteServer
	ShortSvc *shortener.Service
	AndroZoo *malware.HashDB

	// Forum server handles, used by ReleaseWave to publish held-back
	// fixtures while the daemon runs.
	TwitterSrv    *forum.TwitterServer
	RedditSrv     *forum.RedditServer
	SmishtankSrv  *forum.SmishtankServer
	SmishingEUSrv *forum.SmishingEUServer
	PastebinSrv   *forum.PastebinServer

	mu    sync.Mutex
	waves []*forum.Fixtures // fixture batches not yet published
	// Injection timeline: injected waves are re-stamped monotonically past
	// every fixture ever seeded (held-back waves included) so the forum
	// servers' append-only contract holds however generation and injection
	// interleave.
	injectAt    time.Time
	injectWaves int
	injected    int

	// Telemetry aggregates client and pipeline metrics; Services() wires
	// every enrichment client into it, and DebugURL exposes it over HTTP.
	Telemetry *telemetry.Registry

	servers   []*http.Server
	lns       []net.Listener
	closeOnce sync.Once
	closeErr  error
}

// World aliases the corpus ground truth for callers of the public facade.
type World = corpus.World

// SimConfig tunes how the simulation publishes its fixtures.
type SimConfig struct {
	// HoldbackWaves > 0 seeds the forums with only an initial share of the
	// fixtures and keeps the rest as that many chronological waves, released
	// one at a time via ReleaseWave — a live world for the service daemon.
	// 0 (the default) publishes everything up front.
	HoldbackWaves int
	// InitialShare is the fraction of fixtures seeded up front when waves
	// are held back. 0 means the default of 0.5.
	InitialShare float64
}

// StartSimulation generates (or accepts) a world and boots every server
// with a private telemetry registry.
func StartSimulation(w *corpus.World) (*Simulation, error) {
	return StartSimulationWithTelemetry(w, nil)
}

// StartSimulationWithTelemetry boots every server recording into reg (a
// fresh registry when nil), so a facade can share one collector between
// the simulation's debug endpoint and the pipeline.
func StartSimulationWithTelemetry(w *corpus.World, reg *telemetry.Registry) (*Simulation, error) {
	return StartSimulationCfg(w, reg, SimConfig{})
}

// StartSimulationCfg boots every server with full control over fixture
// publication (see SimConfig).
func StartSimulationCfg(w *corpus.World, reg *telemetry.Registry, cfg SimConfig) (*Simulation, error) {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	sim := &Simulation{
		World:         w,
		Telemetry:     reg,
		TwitterBearer: "sim-bearer",
		HLRKey:        "sim-hlr",
		WhoisKey:      "sim-whois",
		DNSDBKey:      "sim-dnsdb",
		AVScanKey:     "sim-avscan",
	}

	fixtures := forum.BuildFixtures(w)
	sim.injectAt = forum.MaxCreatedAt(fixtures).Add(time.Second)
	if cfg.HoldbackWaves > 0 {
		share := cfg.InitialShare
		if share == 0 {
			share = 0.5
		}
		fixtures, sim.waves = forum.SplitFixtures(fixtures, share, cfg.HoldbackWaves)
	}

	// Intelligence stores seeded from ground truth.
	hlrStore := hlr.NewStore()
	for msisdn, s := range w.Numbers {
		status := hlr.StatusInactive
		if s.Live {
			status = hlr.StatusLive
		}
		hlrStore.Add(hlr.Record{
			MSISDN:      msisdn,
			NumberType:  s.NumberType,
			OriginalMNO: s.MNO,
			CurrentMNO:  s.MNO,
			Country:     s.Country,
			Status:      status,
		})
	}

	whoisStore := whois.NewStore()
	ctStore := ctlog.NewStore()
	dnsStore := dnsdb.NewStore()
	avStore := avscan.NewStore()
	sim.Sites = crawler.NewSiteServer()
	sim.AndroZoo = malware.NewHashDB()
	seedAndroZoo(sim.AndroZoo)

	registeredPrefix := map[int]bool{}
	for _, d := range w.Domains {
		if !d.FreeHost && d.Registrar != "" {
			whoisStore.Add(whois.Record{
				Domain:     d.Name,
				Registrar:  d.Registrar,
				Registered: d.Registered,
				Expires:    d.Registered.AddDate(1, 0, 0),
				NameServer: "ns1." + d.Name,
				Status:     "clientTransferProhibited",
			})
		}
		validity := 365 * 24 * time.Hour
		switch d.CA {
		case "Let's Encrypt", "cPanel", "Google Trust Services", "Cloudflare":
			validity = 90 * 24 * time.Hour
		}
		ctStore.IssueChain(d.Name, d.CA, ctlog.IssuerID(d.CA), d.FirstCert, validity, d.CertCount)
		for _, ip := range d.IPs {
			dnsStore.AddObservation(dnsdb.Observation{
				Domain:    d.Name,
				IP:        ip,
				FirstSeen: d.Registered,
				LastSeen:  d.Registered.Add(d.TakedownAfter),
			})
		}
		if d.ASN != 0 && !registeredPrefix[d.ASN] {
			registeredPrefix[d.ASN] = true
			prefix := corpus.ASNPrefix(d.ASN) // "a.b."
			cidr := prefix + "0.0/16"
			if err := dnsStore.AddPrefix(cidr, dnsdb.ASInfo{ASN: d.ASN, Name: d.ASName, Country: d.ASCountry}); err != nil {
				return nil, fmt.Errorf("core: register prefix %s: %w", cidr, err)
			}
		}
		avStore.SetDetectability(d.Name, d.Detectability)
		sim.Sites.Add(crawler.SiteBehavior{
			Domain:        d.Name,
			Brand:         brandForDomain(w, d.Name),
			ServesAPK:     d.ServesAPK,
			MalwareFamily: d.MalwareFamily,
		})
	}

	sim.ShortSvc = shortener.NewService()
	for _, l := range w.Links {
		sim.ShortSvc.Add(shortener.Link{
			Service:   l.Service,
			Code:      l.Code,
			Target:    l.Target,
			CreatedAt: l.CreatedAt,
			TakenDown: l.TakenDown,
		})
	}

	// Boot order mirrors dependency order; any failure tears down.
	boot := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = srv.Serve(ln) }()
		sim.servers = append(sim.servers, srv)
		sim.lns = append(sim.lns, ln)
		return "http://" + ln.Addr().String(), nil
	}
	var err error
	bootOrDie := func(h http.Handler) string {
		if err != nil {
			return ""
		}
		var url string
		url, err = boot(h)
		return url
	}
	sim.TwitterSrv = forum.NewTwitterServer(fixtures.Twitter, sim.TwitterBearer, 0)
	sim.RedditSrv = forum.NewRedditServer(fixtures.Reddit, 0)
	sim.SmishtankSrv = forum.NewSmishtankServer(fixtures.Smishtank)
	sim.SmishingEUSrv = forum.NewSmishingEUServer(fixtures.SmishingEU)
	sim.PastebinSrv = forum.NewPastebinServer(fixtures.Pastebin)
	sim.TwitterURL = bootOrDie(sim.TwitterSrv.Handler())
	sim.RedditURL = bootOrDie(sim.RedditSrv.Handler())
	sim.SmishtankURL = bootOrDie(sim.SmishtankSrv.Handler())
	sim.SmishingEUURL = bootOrDie(sim.SmishingEUSrv.Handler())
	sim.PastebinURL = bootOrDie(sim.PastebinSrv.Handler())
	sim.HLRURL = bootOrDie(hlr.NewServer(hlrStore, sim.HLRKey, 0).Handler())
	sim.WhoisURL = bootOrDie(whois.NewServer(whoisStore, sim.WhoisKey, 0).Handler())
	sim.CTLogURL = bootOrDie(ctlog.NewServer(ctStore, 0).Handler())
	sim.DNSDBURL = bootOrDie(dnsdb.NewServer(dnsStore, sim.DNSDBKey, 0).Handler())
	sim.AVScanURL = bootOrDie(avscan.NewServer(avStore, sim.AVScanKey, 0).Handler())
	sim.ShortenerURL = bootOrDie(sim.ShortSvc.Handler())
	sim.SitesURL = bootOrDie(sim.Sites.Handler())
	sim.DebugURL = bootOrDie(telemetry.Handler(reg))
	if err != nil {
		_ = sim.Close()
		return nil, fmt.Errorf("core: boot simulation: %w", err)
	}
	return sim, nil
}

// Close shuts down every server and releases its listener. It is
// idempotent: the first call does the work and its (joined) error is
// returned by every subsequent call.
func (s *Simulation) Close() error {
	s.closeOnce.Do(func() {
		var errs []error
		for _, srv := range s.servers {
			if err := srv.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		s.closeErr = errors.Join(errs...)
	})
	return s.closeErr
}

// Collectors returns ready-to-run collectors for all five forums.
func (s *Simulation) Collectors() []forum.Collector {
	return []forum.Collector{
		forum.NewTwitterCollector(s.TwitterURL, s.TwitterBearer),
		forum.NewRedditCollector(s.RedditURL),
		forum.NewSmishtankCollector(s.SmishtankURL),
		forum.NewSmishingEUCollector(s.SmishingEUURL),
		forum.NewPastebinCollector(s.PastebinURL),
	}
}

// ReleaseWave publishes the next held-back fixture wave to all five forum
// servers, modelling new user reports arriving while the daemon polls. It
// reports whether a wave was released (false once all waves are out).
func (s *Simulation) ReleaseWave() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.waves) == 0 {
		return false
	}
	wv := s.waves[0]
	s.waves = s.waves[1:]
	if s.injectWaves > 0 {
		// Injected posts already advanced the timeline past this wave's
		// original timestamps; re-stamp it onto the injection timeline (IDs
		// untouched — held-back fixtures are unique by construction) so the
		// servers' at-or-after append contract keeps holding.
		s.injectAt = forum.Rebase(wv, "", s.injectAt, time.Millisecond)
	}
	s.appendLocked(wv)
	return true
}

// appendLocked publishes one fixture batch to all five forum servers.
// Callers hold s.mu.
func (s *Simulation) appendLocked(f *forum.Fixtures) {
	s.TwitterSrv.Append(f.Twitter)
	s.RedditSrv.Append(f.Reddit)
	s.SmishtankSrv.Append(f.Smishtank)
	s.SmishingEUSrv.Append(f.SmishingEU)
	s.PastebinSrv.Append(f.Pastebin)
}

// InjectSpec describes one synthetic report wave for load injection: a
// deterministic mini-world generated from Seed whose posts are appended to
// the live forum servers, exactly as if that many users had just reported.
type InjectSpec struct {
	// Seed drives the wave's world generation. Reusing a seed republishes
	// equivalent content under fresh post IDs — IDs are namespaced per
	// injection, so cursors never see duplicates.
	Seed int64 `json:"seed"`
	// Messages is the wave's synthetic report count (1..MaxInjectMessages).
	Messages int `json:"messages"`
	// Forums restricts the wave to a subset of the five sources (checkpoint
	// source names); empty means all five, in the paper's mix.
	Forums []string `json:"forums,omitempty"`
	// NoiseFraction is the wave's decoy share — keyword-matching awareness
	// posts curation must reject — as a fraction of real reports (0 selects
	// the generator default of 0.12).
	NoiseFraction float64 `json:"noise_fraction,omitempty"`
}

// MaxInjectMessages bounds one injected wave; larger loads are repeated
// waves (how cmd/loadgen drives sustained RPS).
const MaxInjectMessages = 50000

// Inject synthesizes the wave described by spec and appends its posts to
// the live forum servers. The posts are re-stamped past every previously
// published fixture and their IDs are namespaced by an injection counter,
// so live collection cursors observe them exactly like genuinely new user
// reports. Returns the number of posts appended (reports plus noise).
func (s *Simulation) Inject(spec InjectSpec) (int, error) {
	if spec.Messages <= 0 || spec.Messages > MaxInjectMessages {
		return 0, fmt.Errorf("core: inject: Messages must be in [1,%d] (got %d)", MaxInjectMessages, spec.Messages)
	}
	if spec.NoiseFraction < 0 || spec.NoiseFraction > 1 {
		return 0, fmt.Errorf("core: inject: NoiseFraction must be in [0,1] (got %v)", spec.NoiseFraction)
	}
	keep := make(map[string]bool, len(spec.Forums))
	for _, name := range spec.Forums {
		valid := false
		for _, src := range forum.Sources {
			if name == src {
				valid = true
				break
			}
		}
		if !valid {
			return 0, fmt.Errorf("core: inject: unknown forum %q (valid: %v)", name, forum.Sources)
		}
		keep[name] = true
	}

	w := corpus.Generate(corpus.Config{
		Seed:          spec.Seed,
		Messages:      spec.Messages,
		NoiseFraction: spec.NoiseFraction,
	})
	wave := forum.BuildFixtures(w)
	if len(keep) > 0 {
		wave = forum.Filter(wave, keep)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.injectWaves++
	prefix := fmt.Sprintf("inj%d-", s.injectWaves)
	s.injectAt = forum.Rebase(wave, prefix, s.injectAt, time.Millisecond)
	s.appendLocked(wave)
	n := wave.Len()
	s.injected += n
	s.Telemetry.Counter("sim.injected_posts").Add(int64(n))
	s.Telemetry.Counter("sim.injected_waves").Inc()
	return n, nil
}

// InjectedPosts reports how many posts Inject has appended in total.
func (s *Simulation) InjectedPosts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// PendingWaves reports how many fixture waves are still held back.
func (s *Simulation) PendingWaves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waves)
}

// Services returns enrichment clients wired to the simulation's servers,
// each instrumented into the simulation's telemetry registry. Instruments
// are named, so clients from repeated calls share the same counters.
func (s *Simulation) Services() Services {
	return Services{
		HLR:       hlr.NewClient(s.HLRURL, s.HLRKey).Instrument(s.Telemetry),
		Whois:     whois.NewClient(s.WhoisURL, s.WhoisKey).Instrument(s.Telemetry),
		CTLog:     ctlog.NewClient(s.CTLogURL).Instrument(s.Telemetry),
		DNSDB:     dnsdb.NewClient(s.DNSDBURL, s.DNSDBKey).Instrument(s.Telemetry),
		AVScan:    avscan.NewClient(s.AVScanURL, s.AVScanKey).Instrument(s.Telemetry),
		Shortener: shortener.NewClient(s.ShortenerURL).Instrument(s.Telemetry),
	}
}

// CrawlRouter returns a crawler Router that dispatches logical smishing
// URLs onto the simulation's shortener and hosting servers.
func (s *Simulation) CrawlRouter() *crawler.Router {
	hosts := make(map[string]bool, len(urlShortenerHosts))
	for h := range urlShortenerHosts {
		hosts[h] = true
	}
	return &crawler.Router{
		ShortenerBase:  s.ShortenerURL,
		ShortenerHosts: hosts,
		SiteBase:       s.SitesURL,
	}
}

// brandForDomain recovers the impersonated brand of a domain's campaign.
func brandForDomain(w *corpus.World, domain string) string {
	for _, c := range w.Campaigns {
		for _, d := range c.Domains {
			if d == domain {
				return c.Brand
			}
		}
	}
	return "Secure Portal"
}

// seedAndroZoo fills the hash registry with "previously known" apps so
// lookups exercise both hit and miss paths. Fresh smishing droppers are
// absent by construction (§3.3.5 found none of its 18 hashes).
func seedAndroZoo(db *malware.HashDB) {
	for i := 0; i < 500; i++ {
		payload := []byte(fmt.Sprintf("known-app-%d", i))
		family := ""
		if i%5 == 0 {
			family = []string{"FluBot", "MoqHao", "HQWar"}[i%3]
		}
		db.Add(malware.Sample{
			SHA256:  malware.HashBytes(payload),
			Package: fmt.Sprintf("com.example.app%d", i),
			Size:    1000 + i,
			Family:  family,
		})
	}
}

// urlShortenerHosts mirrors urlinfo.Shorteners for router construction.
var urlShortenerHosts = shortenerHostSet()

func shortenerHostSet() map[string]bool {
	out := make(map[string]bool, len(urlinfo.Shorteners))
	for host := range urlinfo.Shorteners {
		out[host] = true
	}
	return out
}

// EnableTakedownSchedule re-anchors every hosted domain's takedown to a
// virtual timeline starting at start and installs clock as the site
// server's time source. Use with internal/monitor to measure URL lifespans
// without waiting real days.
func (s *Simulation) EnableTakedownSchedule(start time.Time, clock func() time.Time) {
	for _, d := range s.World.Domains {
		s.Sites.Add(crawler.SiteBehavior{
			Domain:        d.Name,
			Brand:         brandForDomain(s.World, d.Name),
			ServesAPK:     d.ServesAPK,
			MalwareFamily: d.MalwareFamily,
			DownAt:        start.Add(d.TakedownAfter),
		})
	}
	s.Sites.SetClock(clock)
}
