package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// stubBackend is a worker backend the tests control: it can block until
// released (drain tests) and tags records so output is recognizable.
type stubBackend struct {
	started chan struct{} // closed when the first call begins (may be nil)
	release chan struct{} // blocks the call until closed (may be nil)
	once    sync.Once
}

func (s *stubBackend) EnrichAnnotate(ctx context.Context, recs []core.Record) ([]core.Record, error) {
	if s.started != nil {
		s.once.Do(func() { close(s.started) })
	}
	if s.release != nil {
		select {
		case <-s.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([]core.Record, len(recs))
	for i, r := range recs {
		r.GSBStatus = "stub-enriched"
		out[i] = r
	}
	return out, nil
}

func (s *stubBackend) Stats() (StackStats, bool) { return StackStats{Enriched: 1}, true }

func testRecords(n int) []core.Record {
	recs := make([]core.Record, n)
	for i := range recs {
		recs[i] = core.Record{ID: fmt.Sprintf("wrk-%03d", i)}
	}
	return recs
}

func TestRemoteEnricherTimesOutOnHungWorker(t *testing.T) {
	// The worker accepts the connection and never answers — the regression
	// this guards against is the zero-value http.Client waiting forever
	// when the round context has no deadline.
	stop := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hang until the test ends (the close(stop) defer runs before
		// srv.Close, so Close never waits on this handler).
		select {
		case <-stop:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(stop)

	re := NewRemoteEnricher(srv.URL).WithTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err := re.EnrichAnnotate(context.Background(), testRecords(3))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("EnrichAnnotate succeeded against a never-responding worker")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("error %q does not report the bounded retry", err)
	}
	// Two 50ms attempts plus the retry delay: well under a second. The old
	// client would have hung until the test timeout.
	if elapsed > 5*time.Second {
		t.Errorf("EnrichAnnotate took %v, want bounded by the per-request timeout", elapsed)
	}
}

func TestRemoteEnricherRetriesConnectionErrorOnce(t *testing.T) {
	// First request: the server slams the connection before any response —
	// a transport-level failure. Second request: a normal answer. The
	// client must absorb exactly one such failure.
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		var in enrichEnvelope
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			t.Errorf("decode: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(enrichEnvelope{Records: in.Records})
	}))
	defer srv.Close()

	re := NewRemoteEnricher(srv.URL).WithTimeout(5 * time.Second)
	out, err := re.EnrichAnnotate(context.Background(), testRecords(4))
	if err != nil {
		t.Fatalf("EnrichAnnotate did not recover from one connection failure: %v", err)
	}
	if len(out) != 4 || out[0].ID != "wrk-000" {
		t.Errorf("retried response returned %d records (first %q), want the 4 sent", len(out), out[0].ID)
	}
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Errorf("worker saw %d requests, want 2 (one failed, one retried)", got)
	}
}

func TestRemoteEnricherDoesNotRetryWorkerErrors(t *testing.T) {
	// An HTTP-level error is an authoritative worker answer: no retry.
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		writeWorkerError(w, http.StatusInternalServerError, fmt.Errorf("enrich blew up"))
	}))
	defer srv.Close()

	re := NewRemoteEnricher(srv.URL)
	_, err := re.EnrichAnnotate(context.Background(), testRecords(2))
	if err == nil {
		t.Fatal("EnrichAnnotate swallowed a worker error")
	}
	if !strings.Contains(err.Error(), "enrich blew up") {
		t.Errorf("error %q does not carry the worker's message", err)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("worker saw %d requests, want 1 (no retry on HTTP errors)", got)
	}
}

func TestWorkerRejectsOversizedBody(t *testing.T) {
	// The cap sits just above a one-record envelope, so one record passes
	// and two hundred are rejected.
	small, err := json.Marshal(enrichEnvelope{Records: testRecords(1)})
	if err != nil {
		t.Fatal(err)
	}
	limit := int64(len(small) + 64)
	wk := &Worker{stack: &stubBackend{}, reg: telemetry.NewRegistry(), maxBody: limit, drain: time.Second}
	srv := httptest.NewServer(wk.Handler())
	defer srv.Close()

	big, err := json.Marshal(enrichEnvelope{Records: testRecords(200)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/enrich", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body got %d, want 413", resp.StatusCode)
	}
	var werr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&werr); err != nil {
		t.Fatalf("413 response is not the standard error envelope: %v", err)
	}
	if !strings.Contains(werr.Error, fmt.Sprint(limit)) {
		t.Errorf("413 error %q does not name the limit %d", werr.Error, limit)
	}

	// A body under the cap still works.
	resp2, err := http.Post(srv.URL+"/enrich", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("small body got %d, want 200", resp2.StatusCode)
	}
}

func TestWorkerServeDrainsInFlightRequests(t *testing.T) {
	// A SIGTERM (ctx cancel) mid-request must not hand the parent a
	// truncated response: Serve switches to graceful shutdown and the
	// in-flight /enrich completes.
	started := make(chan struct{})
	release := make(chan struct{})
	wk := &Worker{
		stack:   &stubBackend{started: started, release: release},
		reg:     telemetry.NewRegistry(),
		maxBody: DefaultMaxEnrichBytes,
		drain:   5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	urlCh := make(chan string, 1)
	serveDone := make(chan error, 1)
	go func() { serveDone <- wk.Serve(ctx, func(u string) { urlCh <- u }) }()
	base := <-urlCh

	body, _ := json.Marshal(enrichEnvelope{Records: testRecords(5)})
	type result struct {
		code int
		recs int
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/enrich", "application/json", bytes.NewReader(body))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var out enrichEnvelope
		derr := json.NewDecoder(resp.Body).Decode(&out)
		resCh <- result{code: resp.StatusCode, recs: len(out.Records), err: derr}
	}()

	<-started // request is in the backend
	cancel()  // SIGTERM arrives mid-request
	time.Sleep(20 * time.Millisecond)
	close(release) // backend finishes after shutdown began

	select {
	case res := <-resCh:
		if res.err != nil {
			t.Fatalf("in-flight request aborted by shutdown: %v", res.err)
		}
		if res.code != http.StatusOK || res.recs != 5 {
			t.Fatalf("in-flight request got status %d with %d records, want 200 with 5", res.code, res.recs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after ctx cancel")
	}
}

func TestNewWorkerAppliesSpecDefaults(t *testing.T) {
	addr := ServiceAddr{URL: "http://127.0.0.1:1"}
	spec := WorkerSpec{HLR: addr, Whois: addr, CTLog: addr, DNSDB: addr, AVScan: addr, Shortener: addr}
	wk, err := NewWorker(spec)
	if err != nil {
		t.Fatal(err)
	}
	if wk.maxBody != DefaultMaxEnrichBytes {
		t.Errorf("maxBody = %d, want DefaultMaxEnrichBytes", wk.maxBody)
	}
	if wk.drain != defaultDrainTimeout {
		t.Errorf("drain = %v, want %v", wk.drain, defaultDrainTimeout)
	}
	spec.MaxEnrichBytes = 1 << 10
	spec.DrainTimeout = 2 * time.Second
	wk, err = NewWorker(spec)
	if err != nil {
		t.Fatal(err)
	}
	if wk.maxBody != 1<<10 || wk.drain != 2*time.Second {
		t.Errorf("spec overrides not applied: maxBody=%d drain=%v", wk.maxBody, wk.drain)
	}
}
